(* Experiment harness: regenerates every table/figure of EXPERIMENTS.md.

   The demo paper has no numbered result tables; the experiment ids T1-T8
   and F1 index the quantitative claims of its sections (see DESIGN.md).

     dune exec bench/main.exe                 -- all experiments
     dune exec bench/main.exe -- --exp T3     -- one experiment
     dune exec bench/main.exe -- --quick      -- reduced sweeps
     dune exec bench/main.exe -- --bechamel   -- micro-benchmarks
     dune exec bench/main.exe -- --sql        -- SQL compile-vs-interpret
                                                 suite; writes --sql-json
                                                 (default BENCH_sql.json)
     dune exec bench/main.exe -- --paql-scale -- SketchRefine vs whole-
                                                 relation ILP over 10k..1M
                                                 rows; writes --paql-json
                                                 (default BENCH_paql.json)
     dune exec bench/main.exe -- --metrics-out FILE
                                              -- also write per-experiment
                                                 Pb_obs.Metrics deltas as JSON
     dune exec bench/main.exe -- --domains 4  -- size of the Pb_par domain
                                                 pool (default: PB_DOMAINS
                                                 or 1)

   Load generator (serving-path numbers, run against a live pb_server):

     dune exec bench/main.exe -- --loadgen --port 7878 \
       --clients 8 --requests 200 --workload bench/workloads/net_mixed.txt \
       --label d1 --json-out out.json

   Each of N clients opens one connection and replays the workload file
   round-robin (starting at a per-client offset so clients interleave
   differently); reported are throughput and p50/p95/p99 latency. *)

module Engine = Pb_core.Engine
module Coeffs = Pb_core.Coeffs
module Pruning = Pb_core.Pruning
module Local_search = Pb_core.Local_search
module Package = Pb_paql.Package
module Semantics = Pb_paql.Semantics
module Table = Pb_util.Table
module Stats = Pb_util.Stats

let quick = ref false
let selected : string list ref = ref []
let run_bechamel = ref false
let metrics_out : string option ref = ref None

let wants id = !selected = [] || List.mem id !selected

(* --metrics-out: per-experiment Pb_obs.Metrics snapshot deltas, written
   as one JSON document when the run finishes. *)
let metric_records : (string * (string * float) list) list ref = ref []

let with_metrics id f =
  match !metrics_out with
  | None -> f ()
  | Some _ ->
      let before = Pb_obs.Metrics.snapshot () in
      f ();
      let after = Pb_obs.Metrics.snapshot () in
      let deltas =
        List.filter_map
          (fun (name, v) ->
            let v0 = Option.value (List.assoc_opt name before) ~default:0.0 in
            if v <> v0 then Some (name, v -. v0) else None)
          after
      in
      metric_records := (id, deltas) :: !metric_records

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let write_metrics path =
  let oc = open_out path in
  let experiment (id, deltas) =
    Printf.sprintf "{\"experiment\":\"%s\",\"metrics\":{%s}}" (json_escape id)
      (String.concat ","
         (List.map
            (fun (name, v) ->
              Printf.sprintf "\"%s\":%s" (json_escape name) (json_num v))
            deltas))
  in
  output_string oc
    ("{\"quick\":" ^ string_of_bool !quick ^ ",\"domains\":"
    ^ string_of_int (Pb_par.Pool.size (Pb_par.Pool.get_default ()))
    ^ ",\"experiments\":[\n"
    ^ String.concat ",\n" (List.rev_map experiment !metric_records)
    ^ "\n]}\n");
  close_out oc;
  Printf.printf "metric snapshots written to %s\n" path

let header id title claim =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s: %s\n" id title;
  Printf.printf "paper anchor: %s\n" claim;
  Printf.printf "================================================================\n"

let recipes_db ?(seed = 7) n =
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "recipes" (Pb_workload.Workload.recipes ~seed ~n ());
  db

let meal_query ?(lo = 2000) ?(hi = 2500) ?(count = 3) () =
  Pb_paql.Parser.parse
    (Printf.sprintf
       "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH \
        THAT COUNT(*) = %d AND SUM(P.calories) BETWEEN %d AND %d MAXIMIZE \
        SUM(P.protein)"
       count lo hi)

let fmt_seconds s =
  if s < 0.001 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let fmt_log10 x =
  if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else Printf.sprintf "10^%.1f" x

(* ---- T1: cardinality-based pruning (sec 4.1) ------------------------- *)

let exp_t1 () =
  header "T1" "search-space reduction from cardinality pruning"
    "sec 4.1: 2^n -> sum_{c=l..u} C(n,c), bounds l = ceil(L/max), u = floor(U/min)";
  let sizes = if !quick then [ 10; 100; 1000 ] else [ 10; 100; 1000; 10_000 ] in
  (* Constraint sets of decreasing tightness: the paper's COUNT=3 query,
     then SUM-only windows whose derived bounds widen as the window does. *)
  let constraint_sets =
    [
      ("COUNT=3 + SUM in [2000,2500]",
       "COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500");
      ("SUM in [2000,2500]", "SUM(P.calories) BETWEEN 2000 AND 2500");
      ("SUM in [2000,6000]", "SUM(P.calories) BETWEEN 2000 AND 6000");
      ("SUM in [500,12000]", "SUM(P.calories) BETWEEN 500 AND 12000");
    ]
  in
  let rows = ref [] in
  List.iter
    (fun n ->
      let db = recipes_db n in
      List.iter
        (fun (label, such_that) ->
          let query =
            Pb_paql.Parser.parse
              (Printf.sprintf
                 "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = \
                  'free' SUCH THAT %s MAXIMIZE SUM(P.protein)"
                 such_that)
          in
          let c = Coeffs.make db query in
          let b = Pruning.cardinality_bounds c in
          let unpruned_log10 = Pruning.log2_unpruned c *. log 2.0 /. log 10.0 in
          let pruned_log10 = Pruning.log2_pruned c b *. log 2.0 /. log 10.0 in
          rows :=
            [
              string_of_int n;
              string_of_int c.Coeffs.n;
              label;
              Pruning.bounds_to_string b;
              fmt_log10 unpruned_log10;
              fmt_log10 pruned_log10;
              fmt_log10 (Pruning.reduction_factor_log10 c b);
            ]
            :: !rows)
        constraint_sets)
    sizes;
  Table.print
    ~align:[ Table.Right; Table.Right; Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:
      [ "n"; "candidates"; "global constraints"; "card bounds"; "unpruned"; "pruned"; "reduction" ]
    (List.rev !rows);
  print_endline
    "shape check: reduction factor grows with n and with constraint tightness;\n\
     no valid package is lost (pruning soundness is property-tested)."

(* ---- T2: strategy runtime comparison ---------------------------------- *)

let exp_t2 () =
  header "T2" "strategy runtime comparison and crossover"
    "sec 4: brute force is 'impractical'; solvers and heuristics have \
     'different strengths and weaknesses'";
  let sizes =
    if !quick then [ 8; 12; 16; 50; 200 ]
    else [ 8; 12; 16; 20; 50; 100; 300; 1000; 2000 ]
  in
  let rows = ref [] in
  List.iter
    (fun n ->
      let db = recipes_db n in
      let query = meal_query () in
      let c = Coeffs.make db query in
      let cell strategy enabled =
        if not enabled then ("-", "-")
        else begin
          let r = Engine.run_coeffs ~strategy db c in
          ( fmt_seconds r.Engine.elapsed,
            match r.Engine.objective with
            | Some v -> Printf.sprintf "%g" v
            | None -> "none" )
        end
      in
      let bf_plain_t, bf_plain_obj =
        cell (Engine.Brute_force { use_pruning = false }) (n <= 16)
      in
      let bf_prune_t, bf_prune_obj =
        cell (Engine.Brute_force { use_pruning = true }) (n <= 20)
      in
      let ilp_t, ilp_obj = cell Engine.Ilp true in
      let ls_t, ls_obj =
        cell (Engine.Local_search Local_search.default_params) true
      in
      rows :=
        [
          string_of_int n;
          string_of_int c.Coeffs.n;
          bf_plain_t; bf_plain_obj;
          bf_prune_t; bf_prune_obj;
          ilp_t; ilp_obj;
          ls_t; ls_obj;
        ]
        :: !rows)
    sizes;
  Table.print
    ~align:(List.init 10 (fun _ -> Table.Right))
    ~header:
      [
        "n"; "cands"; "bf time"; "bf obj"; "bf+prune t"; "obj"; "ilp t";
        "obj"; "ls t"; "obj";
      ]
    (List.rev !rows);
  print_endline
    "shape check: plain brute force explodes first, pruning extends its range,\n\
     ILP stays exact at every size, local search is fast but approximate."

(* ---- T3: k-replacement neighbourhood = 2k-way join -------------------- *)

let exp_t3 () =
  header "T3" "local-search neighbourhood cost versus k"
    "sec 4.2: 'for k replacements this method would require a 2k-way \
     join, which quickly becomes intractable'";
  let cases =
    if !quick then [ (1, [ 50; 100; 200 ]); (2, [ 30; 60 ]); (3, [ 10; 14 ]) ]
    else [ (1, [ 50; 100; 200; 400 ]); (2, [ 30; 60; 120 ]); (3, [ 8; 12; 14 ]) ]
  in
  let rows = ref [] in
  List.iter
    (fun (k, sizes) ->
      List.iter
        (fun n ->
          let db = recipes_db n in
          (* A deliberately loose query so every size has valid packages. *)
          let query = meal_query ~lo:1000 ~hi:6000 ~count:6 () in
          let c = Coeffs.make db query in
          let start = Engine.run_coeffs ~strategy:Engine.Ilp db c in
          match start.Engine.package with
          | None -> ()
          | Some pkg ->
              let card = Package.cardinality pkg in
              let join_rows =
                float_of_int card ** float_of_int k
                *. (float_of_int c.Coeffs.n ** float_of_int k)
              in
              let (moves, _sql), elapsed =
                Stats.timeit (fun () -> Local_search.sql_replacements db c pkg ~k)
              in
              rows :=
                [
                  string_of_int k;
                  string_of_int n;
                  string_of_int c.Coeffs.n;
                  string_of_int card;
                  Printf.sprintf "%.2e" join_rows;
                  fmt_seconds elapsed;
                  string_of_int (List.length moves);
                ]
                :: !rows)
        sizes)
    cases;
  Table.print
    ~align:(List.init 7 (fun _ -> Table.Right))
    ~header:
      [ "k"; "n"; "cands"; "|P0|"; "join rows"; "query time"; "valid moves" ]
    (List.rev !rows);
  print_endline
    "shape check: time tracks the 2k-way join size (|P0|^k * n^k); k=1 is \n\
     cheap at any n while k=3 is already intractable at tiny n."

(* ---- T4: local-search quality vs exact optimum ------------------------ *)

let exp_t4 () =
  header "T4" "heuristic solution quality"
    "sec 4.2: 'as with any heuristic, there is no guarantee that all \
     valid solutions will be found'";
  let sizes = if !quick then [ 50 ] else [ 50; 200 ] in
  let seeds = if !quick then [ 1; 2; 3; 4; 5 ] else List.init 10 (fun i -> i + 1) in
  let rows = ref [] in
  List.iter
    (fun n ->
      let ratios = ref [] and found = ref 0 in
      List.iter
        (fun seed ->
          let db = recipes_db ~seed n in
          let query = meal_query () in
          let c = Coeffs.make db query in
          let exact = Engine.run_coeffs ~strategy:Engine.Ilp db c in
          let params = { Local_search.default_params with seed } in
          let heur =
            Engine.run_coeffs ~strategy:(Engine.Local_search params) db c
          in
          match (exact.Engine.objective, heur.Engine.objective) with
          | Some e, Some h when e > 0.0 ->
              incr found;
              ratios := (h /. e) :: !ratios
          | Some _, Some _ | Some _, None | None, _ -> ())
        seeds;
      rows :=
        [
          string_of_int n;
          string_of_int (List.length seeds);
          Printf.sprintf "%d/%d" !found (List.length seeds);
          Table.float_cell (Stats.mean !ratios);
          Table.float_cell (Stats.minimum !ratios);
        ]
        :: !rows)
    sizes;
  Table.print
    ~align:(List.init 5 (fun _ -> Table.Right))
    ~header:[ "n"; "trials"; "valid found"; "mean obj ratio"; "worst ratio" ]
    (List.rev !rows);
  print_endline
    "shape check: local search finds valid packages in (nearly) every trial\n\
     and lands at or within a few percent of the exact ILP optimum, without\n\
     an optimality proof."

(* ---- T5: the three motivating scenarios -------------------------------- *)

let exp_t5 () =
  header "T5" "motivating scenarios end-to-end"
    "sec 1: meal planner, vacation planner, investment portfolio; sec 6: \
     course packages with prerequisite constraints (CourseRank)";
  let db = Pb_sql.Database.create () in
  Pb_workload.Workload.install ~seed:7
    ~recipes_n:(if !quick then 150 else 400)
    ~destinations:4
    ~stocks_n:(if !quick then 80 else 150)
    db;
  let destination =
    match
      Pb_sql.Executor.execute_sql db
        "SELECT destination FROM travel_items ORDER BY destination LIMIT 1"
    with
    | Pb_sql.Executor.Rows rel when Pb_relation.Relation.cardinality rel > 0 ->
        Pb_relation.Value.to_string (Pb_relation.Relation.row rel 0).(0)
    | _ -> "maui"
  in
  let scenarios =
    [
      ( "meal planner",
        "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH \
         THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
         MAXIMIZE SUM(P.protein)" );
      ( "vacation planner",
        Printf.sprintf
          "SELECT PACKAGE(T) AS V FROM travel_items T WHERE T.destination = \
           '%s' SUCH THAT SUM(V.is_flight) = 1 AND SUM(V.is_hotel) = 1 AND \
           SUM(V.is_car) <= 1 AND SUM(V.price) <= 2000 AND \
           (MAX(V.beach_distance) <= 1.5 OR SUM(V.is_car) = 1) MAXIMIZE \
           SUM(V.rating)"
          destination );
      ( "portfolio",
        "SELECT PACKAGE(S) AS F FROM stocks S WHERE S.risk <= 0.7 SUCH THAT \
         COUNT(*) BETWEEN 5 AND 12 AND SUM(F.price) <= 50000 AND \
         SUM(F.price * F.is_tech) - 0.3 * SUM(F.price) >= 0 AND \
         SUM(F.is_short) - SUM(F.is_long) BETWEEN -1 AND 1 MAXIMIZE \
         SUM(F.expected_return)" );
      ( "courses (sec 6)",
        "SELECT PACKAGE(C) AS S FROM courses C SUCH THAT COUNT(*) = 5 AND \
         SUM(S.credits) BETWEEN 14 AND 20 AND SUM(S.is_cs201) <= \
         SUM(S.is_cs101) AND SUM(S.is_cs301) <= SUM(S.is_cs201) AND \
         SUM(S.is_cs301) = 1 MAXIMIZE SUM(S.rating)" );
    ]
  in
  let rows =
    List.map
      (fun (name, src) ->
        let query = Pb_paql.Parser.parse src in
        let r = Engine.run db query in
        [
          name;
          r.Engine.strategy_used;
          (match r.Engine.package with
          | Some pkg -> string_of_int (Package.cardinality pkg)
          | None -> "-");
          (match r.Engine.objective with
          | Some v -> Printf.sprintf "%g" v
          | None -> "-");
          string_of_bool (r.Engine.proof = Engine.Optimal);
          fmt_seconds r.Engine.elapsed;
        ])
      scenarios
  in
  Table.print
    ~header:[ "scenario"; "strategy"; "tuples"; "objective"; "optimal"; "time" ]
    rows;
  print_endline
    "shape check: every scenario returns a proven-optimal package; the\n\
     disjunctive vacation query, the ratio-style portfolio constraint and\n\
     the course-prerequisite chain all stay on the exact solver path."

(* ---- T6: successive packages via no-good cuts -------------------------- *)

let exp_t6 () =
  header "T6" "next-package retrieval by re-evaluation"
    "sec 5: 'solvers are typically limited to returning a single package \
     solution at a time, and retrieving more packages requires modifying \
     and re-evaluating the query'";
  let n = if !quick then 60 else 120 in
  let db = recipes_db n in
  let query = meal_query () in
  let limit = 10 in
  let packages, elapsed =
    Stats.timeit (fun () -> Engine.next_packages ~limit db query)
  in
  let rows =
    List.mapi
      (fun i pkg ->
        [
          string_of_int (i + 1);
          (match Semantics.objective_value ~db query pkg with
          | Some v -> Printf.sprintf "%g" v
          | None -> "-");
          String.concat "," (List.map string_of_int (Package.support pkg));
        ])
      packages
  in
  Table.print ~align:[ Table.Right; Table.Right; Table.Left ]
    ~header:[ "rank"; "objective"; "candidate indices" ] rows;
  Printf.printf "%d packages in %s (%.1f ms per re-solve)\n"
    (List.length packages) (fmt_seconds elapsed)
    (elapsed *. 1000.0 /. float_of_int (max 1 (List.length packages)));
  print_endline
    "shape check: objectives are non-increasing with rank, all supports\n\
     are distinct, and each additional package costs one more solver run."

(* ---- T7: adaptive exploration convergence ------------------------------ *)

let exp_t7 () =
  header "T7" "adaptive exploration convergence"
    "sec 3.3: 'users can repeat this process until they reach the ideal \
     package'";
  let n = if !quick then 40 else 60 in
  let seeds = if !quick then [ 1; 2; 3; 4; 5 ] else List.init 10 (fun i -> i + 1) in
  let db = recipes_db n in
  let query = meal_query () in
  (* The simulated user's hidden ideal must differ from the system's
     first answer, or exploration converges trivially: take a lower-rank
     package from the top-k enumeration as the target. *)
  let target =
    match List.rev (Engine.next_packages ~limit:4 db query) with
    | pkg :: _ -> Package.support pkg
    | [] -> []
  in
  let rows = ref [] and rounds_all = ref [] and converged_count = ref 0 in
  List.iter
    (fun seed ->
      match Pb_explore.Session.simulate ~seed db query ~target with
      | Some (rounds, converged) ->
          if converged then begin
            incr converged_count;
            rounds_all := float_of_int rounds :: !rounds_all
          end;
          rows :=
            [ string_of_int seed; string_of_int rounds; string_of_bool converged ]
            :: !rows
      | None -> rows := [ string_of_int seed; "-"; "no start" ] :: !rows)
    seeds;
  Table.print ~align:[ Table.Right; Table.Right; Table.Left ]
    ~header:[ "seed"; "rounds"; "converged" ]
    (List.rev !rows);
  Printf.printf "converged %d/%d, median rounds %.1f\n" !converged_count
    (List.length seeds)
    (Stats.median !rounds_all);
  print_endline
    "shape check: the keep-and-resample loop reaches the ideal package in\n\
     a handful of rounds because every kept tuple is pinned thereafter."

(* ---- T8: ILP scaling with constraints and REPEAT ------------------------ *)

let exp_t8 () =
  header "T8" "ILP model scaling"
    "sec 4/5: queries are 'translated into a linear program'; solver cost \
     grows with constraints and with the REPEAT multiplicity bound";
  let n = if !quick then 80 else 150 in
  let constraint_sets =
    [
      (1, "COUNT(*) = 3");
      (2, "COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500");
      ( 3,
        "COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 AND \
         SUM(P.fat) <= 90" );
      ( 4,
        "COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 AND \
         SUM(P.fat) <= 90 AND SUM(P.cost) <= 40" );
      ( 5,
        "COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 AND \
         SUM(P.fat) <= 90 AND SUM(P.cost) <= 40 AND AVG(P.rating) >= 2" );
    ]
  in
  let repeats = [ 0; 1; 3 ] in
  let rows = ref [] in
  List.iter
    (fun (k, such_that) ->
      List.iter
        (fun repeat ->
          let db = recipes_db n in
          let src =
            Printf.sprintf
              "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
               %s SUCH THAT %s MAXIMIZE SUM(P.protein)"
              (if repeat = 0 then "" else Printf.sprintf "REPEAT %d" repeat)
              such_that
          in
          (* REPEAT belongs in FROM; rebuild properly *)
          let src =
            if repeat = 0 then src
            else
              Printf.sprintf
                "SELECT PACKAGE(R) AS P FROM recipes R REPEAT %d WHERE \
                 R.gluten = 'free' SUCH THAT %s MAXIMIZE SUM(P.protein)"
                repeat such_that
          in
          let query = Pb_paql.Parser.parse src in
          let c = Coeffs.make db query in
          let r, elapsed =
            Stats.timeit (fun () -> Engine.run_coeffs ~strategy:Engine.Ilp db c)
          in
          let stat name =
            match List.assoc_opt name r.Engine.stats with
            | Some v -> v
            | None -> "-"
          in
          rows :=
            [
              string_of_int k;
              string_of_int repeat;
              string_of_int c.Coeffs.n;
              stat "bb_nodes";
              stat "lp_iterations";
              (match r.Engine.objective with
              | Some v -> Printf.sprintf "%g" v
              | None -> "-");
              fmt_seconds elapsed;
            ]
            :: !rows)
        repeats)
    constraint_sets;
  Table.print
    ~align:(List.init 7 (fun _ -> Table.Right))
    ~header:
      [ "constraints"; "repeat"; "cands"; "bb nodes"; "lp iters"; "objective"; "time" ]
    (List.rev !rows);
  print_endline
    "shape check: node counts and simplex iterations grow with the number\n\
     of global constraints; REPEAT widens variable domains and the search."

(* ---- T9: SQL generation vs solver translation ----------------------------- *)

let exp_t9 () =
  header "T9" "the paper's two evaluation modes: SQL generation vs ILP"
    "sec 4: 'The system either: (i) uses SQL statements to generate and \
     validate candidate packages; or (ii) translates package queries to \
     constraint optimization problems'";
  let sizes = if !quick then [ 20; 40; 80 ] else [ 20; 40; 80; 120; 160 ] in
  let rows = ref [] in
  List.iter
    (fun n ->
      let db = recipes_db n in
      let query = meal_query () in
      let c = Coeffs.make db query in
      let gen =
        Engine.run_coeffs
          ~strategy:(Engine.Sql_generation Pb_core.Sql_generate.default_params)
          db c
      in
      let ilp = Engine.run_coeffs ~strategy:Engine.Ilp db c in
      let cell (r : Engine.result) =
        ( fmt_seconds r.Engine.elapsed,
          match r.Engine.objective with
          | Some v -> Printf.sprintf "%g" v
          | None ->
              if List.mem_assoc "not_applicable" r.Engine.stats then "n/a"
              else "none" )
      in
      let gen_t, gen_obj = cell gen in
      let ilp_t, ilp_obj = cell ilp in
      rows :=
        [
          string_of_int n;
          string_of_int c.Coeffs.n;
          gen_t; gen_obj; ilp_t; ilp_obj;
        ]
        :: !rows)
    sizes;
  Table.print
    ~align:(List.init 6 (fun _ -> Table.Right))
    ~header:[ "n"; "cands"; "sql-gen t"; "obj"; "ilp t"; "obj" ]
    (List.rev !rows);
  print_endline
    "shape check: both modes are exact and agree; the SQL path's c-way\n\
     self-join grows as n^c while the solver's cost grows mildly, so the\n\
     solver overtakes as n grows — the reason the system has both."

(* ---- F1: the interface abstractions (Figure 1) -------------------------- *)

let exp_f1 () =
  header "F1" "interface abstractions (Figure 1, in the terminal)"
    "Figure 1: package template, constraint suggestions, natural-language \
     descriptions, visual summary with the current package highlighted";
  let db = recipes_db (if !quick then 40 else 60) in
  let query = meal_query () in
  let template = Pb_explore.Template.create db query in
  print_string (Pb_explore.Template.render ~show_summary:true db template);
  match template.Pb_explore.Template.sample with
  | None -> ()
  | Some sample ->
      print_endline "\n-- suggestions for a highlighted 'fat' cell --";
      List.iter
        (fun s ->
          Printf.printf "  %-40s %s\n" s.Pb_explore.Suggest.paql_fragment
            s.Pb_explore.Suggest.description)
        (Pb_explore.Suggest.suggest query ~sample
           (Pb_explore.Suggest.Cell { row = 0; column = "fat" }))

(* ---- A1: planner ablation (hash join + pushdown vs naive product) ------- *)

let exp_a1 () =
  header "A1" "SQL planner ablation: hash join + pushdown vs naive product"
    "substrate ablation (DESIGN.md): the DBMS the engine talks to — note \
     the 4.2 neighbourhood query joins on inequalities, so it does NOT \
     benefit, preserving the paper's 2k-way-join claim";
  let sizes = if !quick then [ 40; 80 ] else [ 40; 80; 160 ] in
  let rows = ref [] in
  List.iter
    (fun destinations ->
      let db = Pb_sql.Database.create () in
      Pb_workload.Workload.install ~seed:5 ~recipes_n:10 ~destinations
        ~stocks_n:10 db;
      (* Equi-join pairing flights and hotels per destination under a
         price filter. *)
      let q =
        Pb_sql.Parser.parse_select
          "SELECT f.id, h.id FROM travel_items f, travel_items h WHERE \
           f.destination = h.destination AND f.is_flight = 1 AND h.is_hotel \
           = 1 AND f.price + h.price <= 2500"
      in
      let eval schema row e = Pb_sql.Executor.eval_expr ~db schema row e in
      let (planned, stats), planned_t =
        Stats.timeit (fun () ->
            Pb_sql.Planner.execute db ~eval ~from:q.Pb_sql.Ast.from
              ~where:q.Pb_sql.Ast.where)
      in
      let naive, naive_t =
        Stats.timeit (fun () ->
            Pb_sql.Planner.naive db ~eval ~from:q.Pb_sql.Ast.from
              ~where:q.Pb_sql.Ast.where)
      in
      assert (
        Pb_relation.Relation.cardinality planned
        = Pb_relation.Relation.cardinality naive);
      rows :=
        [
          string_of_int destinations;
          string_of_int
            (Pb_relation.Relation.cardinality
               (Pb_sql.Database.find_exn db "travel_items"));
          string_of_int (Pb_relation.Relation.cardinality planned);
          fmt_seconds naive_t;
          fmt_seconds planned_t;
          Printf.sprintf "%.1fx" (naive_t /. Float.max 1e-9 planned_t);
          Printf.sprintf "%d hash join, %d pushdowns"
            stats.Pb_sql.Planner.hash_joins
            stats.Pb_sql.Planner.pushed_predicates;
        ]
        :: !rows)
    sizes;
  Table.print
    ~align:(List.init 7 (fun _ -> Table.Right))
    ~header:
      [ "destinations"; "rows"; "result"; "naive"; "planned"; "speedup"; "plan" ]
    (List.rev !rows);
  print_endline
    "shape check: the equi-join speedup grows with table size (hash join is\n\
     linear where the product is quadratic); inequality joins are unaffected."

(* ---- A2: solver ablation (node order, presolve) -------------------------- *)

let exp_a2 () =
  header "A2" "MILP ablation: DFS vs best-bound, presolve on/off"
    "substrate ablation (DESIGN.md): the constraint solver of sec 4";
  let n = if !quick then 80 else 150 in
  let db = recipes_db n in
  (* The 5-constraint query from T8 — enough structure for node counts to
     differ across configurations. *)
  (* A disjunctive query: the OR introduces indicator variables and real
     branching, so node-order differences become visible. *)
  let query =
    Pb_paql.Parser.parse
      "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH \
       THAT SUM(P.fat) <= 90 AND SUM(P.cost) <= 40 AND ((COUNT(*) = 3 AND \
       SUM(P.calories) BETWEEN 2000 AND 2500) OR (COUNT(*) = 5 AND \
       SUM(P.calories) BETWEEN 3300 AND 3600)) MAXIMIZE SUM(P.protein)"
  in
  let c = Coeffs.make db query in
  let rows = ref [] in
  List.iter
    (fun (label, node_order, presolve) ->
      let t = Pb_core.Translate.build c in
      let sol, elapsed =
        Stats.timeit (fun () ->
            Pb_lp.Milp.solve ~node_order ~presolve t.Pb_core.Translate.model)
      in
      rows :=
        [
          label;
          string_of_int sol.Pb_lp.Milp.nodes;
          string_of_int sol.Pb_lp.Milp.lp_iterations;
          Printf.sprintf "%g" sol.Pb_lp.Milp.objective;
          fmt_seconds elapsed;
        ]
        :: !rows)
    [
      ("dfs", Pb_lp.Milp.Dfs, false);
      ("dfs + presolve", Pb_lp.Milp.Dfs, true);
      ("best-bound", Pb_lp.Milp.Best_bound, false);
      ("best-bound + presolve", Pb_lp.Milp.Best_bound, true);
    ];
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "configuration"; "bb nodes"; "lp iters"; "objective"; "time" ]
    (List.rev !rows);
  print_endline
    "shape check: all configurations agree on the optimum; best-bound\n\
     typically explores no more nodes than DFS; presolve pays a small\n\
     fixed cost that only matters on models this size."

(* ---- A3: heuristic ablation (hill climbing vs annealing) ----------------- *)

let exp_a3 () =
  header "A3" "heuristic ablation: greedy local search vs simulated annealing"
    "sec 4.2/5: heuristics trade completeness for speed in different ways";
  let n = if !quick then 60 else 120 in
  let seeds = if !quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6 ] in
  (* An equality-rich query: hill climbing risks stalling on the narrow
     feasible band, annealing can cross it. *)
  let src =
    "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 4 AND \
     SUM(P.calories) BETWEEN 2400 AND 2600 AND SUM(P.fat) BETWEEN 60 AND 90 \
     MAXIMIZE SUM(P.protein)"
  in
  let query = Pb_paql.Parser.parse src in
  let rows = ref [] in
  let run label make_strategy =
    let found = ref 0 and ratios = ref [] and times = ref [] in
    List.iter
      (fun seed ->
        let db = recipes_db ~seed n in
        let c = Coeffs.make db query in
        let exact = Engine.run_coeffs ~strategy:Engine.Ilp db c in
        let r = Engine.run_coeffs ~strategy:(make_strategy seed) db c in
        times := r.Engine.elapsed :: !times;
        match (exact.Engine.objective, r.Engine.objective) with
        | Some e, Some h when e > 0.0 ->
            incr found;
            ratios := (h /. e) :: !ratios
        | _ -> ())
      seeds;
    rows :=
      [
        label;
        Printf.sprintf "%d/%d" !found (List.length seeds);
        Table.float_cell (Stats.mean !ratios);
        Table.float_cell (Stats.minimum !ratios);
        fmt_seconds (Stats.mean !times);
      ]
      :: !rows
  in
  run "greedy local search (sec 4.2)" (fun seed ->
      Engine.Local_search { Local_search.default_params with seed });
  run "simulated annealing" (fun seed ->
      Engine.Anneal { Pb_core.Annealing.default_params with seed });
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "heuristic"; "valid found"; "mean ratio"; "worst ratio"; "mean time" ]
    (List.rev !rows);
  print_endline
    "shape check: both heuristics find valid packages on every seed and\n\
     land within a few percent of the optimum; multi-start greedy search\n\
     edges out annealing here, and neither carries an optimality proof."

(* ---- P1: parallel evaluation scaling ------------------------------------ *)

let exp_p1 () =
  header "P1" "parallel evaluation scaling across domain-pool sizes"
    "infrastructure (DESIGN.md): partitioned brute-force enumeration and \
     the hybrid exact-vs-local-search race on a Pb_par domain pool; \
     results are bit-identical at every pool size";
  let pool_sizes = [ 1; 2; 4 ] in
  let workloads =
    [
      ( "brute force (pruned)",
        Engine.Brute_force { use_pruning = true },
        (if !quick then 16 else 20),
        200_000 );
      ( "hybrid race (starved ILP)",
        Engine.Hybrid,
        (if !quick then 40 else 80),
        25 );
    ]
  in
  let rows = ref [] in
  List.iter
    (fun (label, strategy, n, ilp_max_nodes) ->
      let db = recipes_db n in
      let c = Coeffs.make db (meal_query ()) in
      let runs =
        List.map
          (fun size ->
            Pb_par.Pool.with_pool size (fun pool ->
                let gov = Pb_util.Gov.create ~milp_nodes:ilp_max_nodes () in
                let r = Engine.run_coeffs ~pool ~gov ~strategy db c in
                (size, r)))
          pool_sizes
      in
      let _, base = List.hd runs in
      List.iter
        (fun (size, (r : Engine.result)) ->
          (* determinism: the answer must not depend on the pool size *)
          assert (r.Engine.objective = base.Engine.objective);
          assert (r.Engine.proof = base.Engine.proof);
          rows :=
            [
              label;
              string_of_int size;
              fmt_seconds r.Engine.elapsed;
              Printf.sprintf "%.2fx"
                (base.Engine.elapsed /. Float.max 1e-9 r.Engine.elapsed);
              (match r.Engine.objective with
              | Some v -> Printf.sprintf "%g" v
              | None -> "-");
              r.Engine.strategy_used;
            ]
            :: !rows)
        runs)
    workloads;
  Table.print
    ~align:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
    ~header:[ "workload"; "domains"; "time"; "speedup"; "objective"; "strategy" ]
    (List.rev !rows);
  Printf.printf
    "recommended cores: %d available on this host\n"
    (Domain.recommended_domain_count ());
  print_endline
    "shape check: objectives and proofs are identical at every pool size;\n\
     speedup tracks the host's physical core count (a single-core host\n\
     shows ~1x with a small coordination overhead)."

(* ---- bechamel micro-benchmarks ------------------------------------------ *)

let micro_benchmarks () =
  header "MICRO" "bechamel micro-benchmarks"
    "per-operation costs of the substrates the experiments are built on";
  let open Bechamel in
  let db = recipes_db 200 in
  let query = meal_query () in
  let c = Coeffs.make db query in
  let pkg =
    match (Engine.run_coeffs ~strategy:Engine.Ilp db c).Engine.package with
    | Some pkg -> pkg
    | None -> failwith "no package for micro-benchmarks"
  in
  let mult = Package.multiplicities pkg in
  let lp_model () =
    let t = Pb_core.Translate.build c in
    t.Pb_core.Translate.model
  in
  let model = lp_model () in
  let tests =
    [
      Test.make ~name:"T1:pruning_bounds"
        (Staged.stage (fun () -> ignore (Pruning.cardinality_bounds c)));
      Test.make ~name:"T2:simplex_relaxation"
        (Staged.stage (fun () -> ignore (Pb_lp.Simplex.solve model)));
      Test.make ~name:"T2:milp_solve"
        (Staged.stage (fun () -> ignore (Pb_lp.Milp.solve (lp_model ()))));
      Test.make ~name:"T3:sql_neighborhood_k1"
        (Staged.stage (fun () ->
             ignore (Local_search.sql_replacements db c pkg ~k:1)));
      Test.make ~name:"T4:compiled_validity_check"
        (Staged.stage (fun () -> ignore (Coeffs.check_mult c mult)));
      Test.make ~name:"T5:sql_aggregate_query"
        (Staged.stage (fun () ->
             ignore
               (Pb_sql.Executor.execute_sql db
                  "SELECT COUNT(*), SUM(calories) FROM recipes WHERE gluten \
                   = 'free'")));
      Test.make ~name:"T6:translate_to_ilp"
        (Staged.stage (fun () -> ignore (Pb_core.Translate.build c)));
      Test.make ~name:"T7:session_resample_oneshot"
        (Staged.stage (fun () ->
             match Pb_explore.Session.start db query with
             | Ok _ -> ()
             | Error _ -> ()));
      Test.make ~name:"T8:paql_parse"
        (Staged.stage (fun () ->
             ignore
               (Pb_paql.Parser.parse
                  "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = \
                   'free' SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN \
                   2000 AND 2500 MAXIMIZE SUM(P.protein)")));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let name = Test.Elt.name (List.hd (Test.elements test)) in
        let analysis =
          Analyze.all ols instance results
        in
        let estimate =
          match Hashtbl.fold (fun _ v acc -> v :: acc) analysis [] with
          | v :: _ -> (
              match Analyze.OLS.estimates v with
              | Some [ est ] -> Printf.sprintf "%.1f ns" est
              | _ -> "?")
          | [] -> "?"
        in
        [ name; estimate ])
      tests
  in
  Table.print ~align:[ Table.Left; Table.Right ]
    ~header:[ "operation"; "time/run" ] rows

(* ---- SQL expression-compilation micro-benchmarks ------------------------ *)

let sql_json_out = ref "BENCH_sql.json"

(* Four hot paths of the SQL layer, each timed with expression compilation
   off (tree-walking interpreter) and on (pre-resolved closures), plus the
   prepared-plan cache cold vs warm. Medians of repeated runs after one
   warm-up; results land in a table and in --sql-json (BENCH_sql.json). *)
let sql_bench () =
  header "SQL" "expression compilation: interpreted vs compiled hot paths"
    "perf substrate (DESIGN.md): one-pass expr->closure compilation, \
     memoized schema resolution, and the server-side prepared-plan cache";
  let median_time ?(repeat = 5) f =
    ignore (f ());
    let ts =
      List.sort compare (List.init repeat (fun _ -> snd (Stats.timeit f)))
    in
    List.nth ts (repeat / 2)
  in
  (* (case, [metric name, seconds], speedup) *)
  let results : (string * (string * float) list * float) list ref = ref [] in
  let was_enabled = Pb_sql.Compile.is_enabled () in
  let was_mode = Pb_store.Mode.current () in
  (* The interpreted-vs-compiled duels measure the row engine; pin row
     storage so the columnar fast path doesn't short-circuit both sides. *)
  Pb_store.Mode.set Pb_store.Mode.Row;
  let duel name ?repeat f =
    Pb_sql.Compile.set_enabled false;
    let interp = median_time ?repeat f in
    Pb_sql.Compile.set_enabled true;
    let compiled = median_time ?repeat f in
    let speedup = interp /. Float.max 1e-9 compiled in
    results :=
      (name, [ ("interpreted_s", interp); ("compiled_s", compiled) ], speedup)
      :: !results
  in
  (* Row-vs-columnar duels: the row side keeps expression compilation on
     (the row engine at its best), the columnar side runs the batch
     kernels. The warm-up call inside [median_time] builds the columnar
     image, so timings exclude the one-off conversion. *)
  let store_duel name ?repeat f =
    Pb_sql.Compile.set_enabled true;
    Pb_store.Mode.set Pb_store.Mode.Row;
    let row = median_time ?repeat f in
    Pb_store.Mode.set Pb_store.Mode.Columnar;
    let columnar = median_time ?repeat f in
    Pb_store.Mode.set Pb_store.Mode.Row;
    let speedup = row /. Float.max 1e-9 columnar in
    results :=
      (name, [ ("row_s", row); ("columnar_s", columnar) ], speedup) :: !results
  in
  let scan_n = if !quick then 4000 else 20_000 in
  let db = recipes_db scan_n in
  (* expression-heavy single-table predicate: arithmetic, OR, LIKE *)
  duel "filter_scan" (fun () ->
      ignore
        (Pb_sql.Executor.execute_sql db
           "SELECT id FROM recipes WHERE calories * 2 + protein - fat > 420 \
            AND (cost / 2.0 < 6.5 OR rating >= 4.5) AND name LIKE '%ra%' AND \
            gluten = 'free'"));
  (* inequality join predicates cannot use the hash join, so every surviving
     product row evaluates the compiled conjuncts; a narrow projection of
     the recipes table keeps product-row materialization from drowning out
     predicate evaluation *)
  let join_n = if !quick then 40 else 70 in
  let jdb = Pb_sql.Database.create () in
  let () =
    let module R = Pb_relation.Relation in
    let module S = Pb_relation.Schema in
    let src = Pb_workload.Workload.recipes ~seed:7 ~n:join_n () in
    let sch = R.schema src in
    let keep = [ "id"; "calories"; "protein"; "fat"; "cost" ] in
    let idxs =
      List.map
        (fun c ->
          match S.index_of sch c with Some i -> i | None -> assert false)
        keep
    in
    let narrow_schema =
      S.make (List.map (fun i -> List.nth (S.columns sch) i) idxs)
    in
    let rows =
      Array.to_list
        (Array.map
           (fun row -> Array.of_list (List.map (fun i -> row.(i)) idxs))
           (R.rows src))
    in
    Pb_sql.Database.put jdb "meals" (R.create narrow_schema rows)
  in
  duel "three_way_ineq_join" ~repeat:3 (fun () ->
      ignore
        (Pb_sql.Executor.execute_sql jdb
           "SELECT a.id, b.id, c.id FROM meals a, meals b, meals c WHERE \
            (a.calories - b.calories) * (b.protein - c.protein) + abs(a.fat \
            - b.fat) * 3 - abs(b.fat - c.fat) > -90000 AND b.protein < \
            c.protein AND a.cost + b.cost + c.cost < 18.0 AND a.calories < \
            b.calories"));
  duel "grouped_aggregate" (fun () ->
      ignore
        (Pb_sql.Executor.execute_sql db
           "SELECT cuisine, COUNT(*), SUM(calories), AVG(cost) FROM recipes \
            WHERE protein > 10 GROUP BY cuisine ORDER BY cuisine"));
  (* Storage-engine duels (PB_STORE row vs columnar), same statements. *)
  store_duel "store_filter_scan" (fun () ->
      ignore
        (Pb_sql.Executor.execute_sql db
           "SELECT id FROM recipes WHERE calories * 2 + protein - fat > 420 \
            AND (cost / 2.0 < 6.5 OR rating >= 4.5) AND name LIKE '%ra%' AND \
            gluten = 'free'"));
  store_duel "store_grouped_aggregate" (fun () ->
      ignore
        (Pb_sql.Executor.execute_sql db
           "SELECT cuisine, COUNT(*), SUM(calories), AVG(cost) FROM recipes \
            WHERE protein > 10 GROUP BY cuisine ORDER BY cuisine"));
  (* Duplicate-heavy table: each distinct recipe appears 10 times, so the
     columnar image collapses to a tenth of the rows and aggregates run
     multiplicity-weighted — the case compression exists for. *)
  let dup_copies = 10 in
  let ddb =
    let src = Pb_workload.Workload.recipes ~seed:7 ~n:(scan_n / dup_copies) () in
    let module R = Pb_relation.Relation in
    let base = Array.to_list (R.rows src) in
    let rows = List.concat (List.init dup_copies (fun _ -> base)) in
    let d = Pb_sql.Database.create () in
    Pb_sql.Database.put d "dup_recipes" (R.create (R.schema src) rows);
    d
  in
  store_duel "store_grouped_agg_duplicates" (fun () ->
      ignore
        (Pb_sql.Executor.execute_sql ddb
           "SELECT cuisine, COUNT(*), SUM(calories), MAX(protein) FROM \
            dup_recipes WHERE protein > 10 GROUP BY cuisine ORDER BY cuisine"));
  (* Tracing-overhead toggle: the filter scan bare vs inside an active
     request trace context whose completed span tree lands in a trace
     store — the exact per-request work pb_server does when
     --trace-capacity > 0. Span cost is per operator, not per row, so
     the two should be within a few percent. *)
  let scan () =
    ignore
      (Pb_sql.Executor.execute_sql db
         "SELECT id FROM recipes WHERE calories * 2 + protein - fat > 420 \
          AND (cost / 2.0 < 6.5 OR rating >= 4.5) AND name LIKE '%ra%' AND \
          gluten = 'free'")
  in
  let untraced = median_time scan in
  let store = Pb_obs.Trace_store.create ~capacity:64 () in
  let bench_tid = String.make 32 'b' in
  let traced =
    median_time (fun () ->
        let started = Unix.gettimeofday () in
        let (), spans =
          Pb_obs.Trace.with_context ~trace_id:bench_tid (fun () -> scan ())
        in
        Pb_obs.Trace_store.add store
          {
            Pb_obs.Trace_store.trace_id = bench_tid;
            started;
            elapsed = Unix.gettimeofday () -. started;
            status = "ok";
            spans;
            progress = [];
          })
  in
  results :=
    ( "filter_scan_trace_store",
      [ ("traced_s", traced); ("untraced_s", untraced) ],
      traced /. Float.max 1e-9 untraced )
    :: !results;
  Pb_sql.Compile.set_enabled was_enabled;
  (* prepared-statement repetition on a small table, so lex/parse/compile
     dominates execution: cold clears the plan cache before every request,
     warm reuses the cached (AST, closure memo) entry *)
  let reps = if !quick then 100 else 400 in
  let pdb = recipes_db 64 in
  let cache = Pb_sql.Plan_cache.create () in
  let parse_heavy =
    "SELECT cuisine, COUNT(*), SUM(calories), SUM(protein), AVG(cost) FROM \
     recipes WHERE gluten = 'free' AND (calories BETWEEN 200 AND 900 OR name \
     LIKE '%curry%') GROUP BY cuisine ORDER BY cuisine"
  in
  let run () =
    let stmts, memo =
      Pb_sql.Plan_cache.lookup cache pdb ~parse:Pb_sql.Parser.parse_script
        parse_heavy
    in
    List.iter (fun s -> ignore (Pb_sql.Executor.execute ~memo pdb s)) stmts
  in
  let cold =
    median_time ~repeat:3 (fun () ->
        for _ = 1 to reps do
          Pb_sql.Plan_cache.clear cache;
          run ()
        done)
  in
  let warm =
    median_time ~repeat:3 (fun () ->
        for _ = 1 to reps do
          run ()
        done)
  in
  results :=
    ( Printf.sprintf "prepared_repeat_x%d" reps,
      [ ("cold_s", cold); ("warm_s", warm) ],
      cold /. Float.max 1e-9 warm )
    :: !results;
  Pb_store.Mode.set was_mode;
  let results = List.rev !results in
  Table.print
    ~align:[ Table.Left; Table.Left; Table.Right; Table.Left; Table.Right; Table.Right ]
    ~header:[ "case"; "baseline"; "time"; "optimized"; "time"; "speedup" ]
    (List.map
       (fun (name, metrics, speedup) ->
         match metrics with
         | [ (bl, bv); (ol, ov) ] ->
             [
               name; bl; fmt_seconds bv; ol; fmt_seconds ov;
               Printf.sprintf "%.1fx" speedup;
             ]
         | _ -> [ name; "?"; "?"; "?"; "?"; "?" ])
       results);
  let oc = open_out !sql_json_out in
  Printf.fprintf oc
    "{\"quick\":%b,\"domains\":%d,\"store_mode\":\"%s\",\"cases\":[\n%s\n]}\n"
    !quick
    (Pb_par.Pool.size (Pb_par.Pool.get_default ()))
    (Pb_store.Mode.to_string (Pb_store.Mode.current ()))
    (String.concat ",\n"
       (List.map
          (fun (name, metrics, speedup) ->
            Printf.sprintf "{\"name\":\"%s\",%s,\"speedup\":%s}"
              (json_escape name)
              (String.concat ","
                 (List.map
                    (fun (k, v) -> Printf.sprintf "\"%s\":%s" k (json_num v))
                    metrics))
              (json_num speedup))
          results));
  close_out oc;
  Printf.printf "sql bench results written to %s\n" !sql_json_out;
  print_endline
    "shape check: compiled closures beat the interpreter most where the\n\
     same expression runs over many rows (scan, inequality join); the plan\n\
     cache removes lex/parse/compile entirely from repeated statements."

(* ---- S1: SketchRefine scaling over synthetic candidate relations -------- *)

let paql_json_out = ref "BENCH_paql.json"

(* Correlated-knapsack candidate relation: weight a ~ U(1,50), value
   b = 1000a + U(0,500). The LP relaxation of MAXIMIZE SUM(b) under a
   tight SUM(a) cap is fractional almost everywhere, so whole-relation
   branch-and-bound has to fight for its optimum over n variables with
   an O(n)-per-iteration simplex — while SketchRefine's representative
   MILPs stay small and its wall clock is bound by the node budget, not
   by n. *)
let paql_scale_db n =
  let st = Random.State.make [| 42 |] in
  let schema =
    Pb_relation.Schema.make
      [
        { Pb_relation.Schema.name = "id"; ty = Pb_relation.Value.T_int };
        { Pb_relation.Schema.name = "a"; ty = Pb_relation.Value.T_int };
        { Pb_relation.Schema.name = "b"; ty = Pb_relation.Value.T_int };
      ]
  in
  let rows =
    List.init n (fun i ->
        let a = 1 + Random.State.int st 50 in
        let b = (a * 1000) + Random.State.int st 500 in
        [|
          Pb_relation.Value.Int (i + 1);
          Pb_relation.Value.Int a;
          Pb_relation.Value.Int b;
        |])
  in
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "t" (Pb_relation.Relation.create schema rows);
  db

let paql_scale_query =
  "SELECT PACKAGE(R) AS P FROM t R SUCH THAT COUNT(*) BETWEEN 8 AND 10 AND \
   SUM(P.a) <= 120 MAXIMIZE SUM(P.b)"

let paql_scale () =
  header "S1"
    "SketchRefine scaling: partition-sketch-refine vs whole-relation ILP"
    "SIGMOD'16 SketchRefine follow-up: partitioning makes million-tuple \
     package queries answerable where the whole-relation MILP is hopeless \
     under the same time/node budget";
  let sizes = if !quick then [ 5_000; 20_000 ] else [ 10_000; 100_000; 1_000_000 ] in
  let node_budget = if !quick then 5_000 else 20_000 in
  let deadline = if !quick then 5.0 else 30.0 in
  let pool = Pb_par.Pool.get_default () in
  let records : string list ref = ref [] in
  let table_rows : string list list ref = ref [] in
  let fnum = function None -> "-" | Some v -> Printf.sprintf "%.6g" v in
  let record fields = records := Printf.sprintf "{%s}" (String.concat "," fields) :: !records in
  List.iter
    (fun n ->
      let db = paql_scale_db n in
      let q = Pb_paql.Parser.parse paql_scale_query in
      let c = Pb_core.Coeffs.make db q in
      (* sketch-refine across partition counts (None = ~sqrt n) *)
      List.iter
        (fun parts ->
          let params = { Pb_core.Sketch_refine.partitions = parts; fanout = 4; prepartition = None } in
          let gov = Pb_util.Gov.create ~deadline_in:deadline ~milp_nodes:node_budget () in
          let t0 = Unix.gettimeofday () in
          let out = Pb_core.Sketch_refine.search ~params ~pool ~gov c in
          let wall = Unix.gettimeofday () -. t0 in
          let valid =
            match out.best with Some p -> Pb_core.Coeffs.check c p | None -> false
          in
          let label =
            match parts with None -> "sqrt" | Some k -> string_of_int k
          in
          table_rows :=
            [
              string_of_int n;
              "sketch-refine/" ^ label;
              fmt_seconds wall;
              fnum out.best_objective;
              fnum out.bound;
              fnum out.gap;
              Printf.sprintf "%d/%d ref" out.refined_partitions out.partitions_built;
            ]
            :: !table_rows;
          record
            [
              Printf.sprintf "\"name\":\"sketch_refine\"";
              Printf.sprintf "\"rows\":%d" n;
              Printf.sprintf "\"partitions\":%d" out.partitions_built;
              Printf.sprintf "\"fanout\":%d" params.fanout;
              Printf.sprintf "\"wall_s\":%s" (json_num wall);
              Printf.sprintf "\"partition_s\":%s" (json_num out.partition_seconds);
              Printf.sprintf "\"sketch_s\":%s" (json_num out.sketch_seconds);
              Printf.sprintf "\"refine_s\":%s" (json_num out.refine_seconds);
              Printf.sprintf "\"objective\":%s"
                (match out.best_objective with None -> "null" | Some v -> json_num v);
              Printf.sprintf "\"bound\":%s"
                (match out.bound with None -> "null" | Some v -> json_num v);
              Printf.sprintf "\"gap\":%s"
                (match out.gap with None -> "null" | Some v -> json_num v);
              Printf.sprintf "\"proven_optimal\":%b" out.proven_optimal;
              Printf.sprintf "\"valid_package\":%b" valid;
              Printf.sprintf "\"refine_steps\":%d" out.refine_steps;
              Printf.sprintf "\"refined_partitions\":%d" out.refined_partitions;
              Printf.sprintf "\"sketch_status\":\"%s\"" (json_escape out.sketch_status);
            ])
        [ None; Some 64; Some 1024 ];
      (* whole-relation ILP under the same budget *)
      let gov = Pb_util.Gov.create ~deadline_in:deadline ~milp_nodes:node_budget () in
      let t0 = Unix.gettimeofday () in
      let r = Engine.run_coeffs ~gov ~strategy:Engine.Ilp db c in
      let wall = Unix.gettimeofday () -. t0 in
      table_rows :=
        [
          string_of_int n;
          "ilp (whole relation)";
          fmt_seconds wall;
          fnum r.Engine.objective;
          "-";
          "-";
          Engine.proof_to_string r.Engine.proof;
        ]
        :: !table_rows;
      record
        [
          Printf.sprintf "\"name\":\"ilp\"";
          Printf.sprintf "\"rows\":%d" n;
          Printf.sprintf "\"wall_s\":%s" (json_num wall);
          Printf.sprintf "\"objective\":%s"
            (match r.Engine.objective with None -> "null" | Some v -> json_num v);
          Printf.sprintf "\"proof\":\"%s\"" (Engine.proof_to_string r.Engine.proof);
          Printf.sprintf "\"stopped\":%b" (List.mem_assoc "stopped" r.Engine.stats);
        ])
    sizes;
  Table.print
    ~align:[ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
    ~header:[ "rows"; "method"; "wall"; "objective"; "bound"; "gap"; "outcome" ]
    (List.rev !table_rows);
  let oc = open_out !paql_json_out in
  Printf.fprintf oc
    "{\"quick\":%b,\"domains\":%d,\"store_mode\":\"%s\",\"node_budget\":%d,\"deadline_s\":%s,\"query\":\"%s\",\"runs\":[\n%s\n]}\n"
    !quick
    (Pb_par.Pool.size pool)
    (Pb_store.Mode.to_string (Pb_store.Mode.current ()))
    node_budget (json_num deadline)
    (json_escape paql_scale_query)
    (String.concat ",\n" (List.rev !records));
  close_out oc;
  Printf.printf "paql scale results written to %s\n" !paql_json_out;
  print_endline
    "shape check: sketch-refine wall clock is dominated by the node budget\n\
     and the O(n log n) partitioning pass, so it lands a valid package with\n\
     a sound bound at every size; the whole-relation ILP's per-iteration\n\
     cost grows with n and it leaves the budget window without a proof."

(* ---- loadgen: concurrent clients against a live pb_server --------------- *)

let loadgen_host = ref "127.0.0.1"
let loadgen_port = ref 7878
let loadgen_clients = ref 4
let loadgen_requests = ref 100
let loadgen_connections = ref 0
let loadgen_rate = ref 0.0
let loadgen_duration = ref 10.0
let loadgen_workload : string option ref = ref None
let loadgen_deadline = ref 0.0
let loadgen_label = ref "loadgen"
let loadgen_json_out : string option ref = ref None

let default_workload_lines =
  [
    "SELECT COUNT(*) FROM recipes";
    "SELECT COUNT(*), SUM(calories) FROM recipes WHERE gluten = 'free'";
    "\\tables";
    "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
     COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
     SUM(P.protein)";
  ]

let read_workload_file path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then loop acc else loop (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  loop []

(* One worker = one connection; replays the workload round-robin starting at
   a per-client offset so concurrent clients hit different statements at the
   same instant. Latencies are collected per request; a request that comes
   back as a protocol error (e.g. deadline) still counts as a completed
   round-trip but is tallied separately. *)
let loadgen () =
  let lines =
    match !loadgen_workload with
    | Some path -> read_workload_file path
    | None -> default_workload_lines
  in
  if lines = [] then failwith "loadgen: workload file has no statements";
  let statements = Array.of_list lines in
  let n_stmts = Array.length statements in
  let clients = max 1 !loadgen_clients in
  let per_client = max 1 !loadgen_requests in
  let deadline =
    if !loadgen_deadline > 0.0 then Some !loadgen_deadline else None
  in
  let latencies = Array.make clients [] in
  let errors = Atomic.make 0 in
  let busy = Atomic.make 0 in
  let cancelled = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let worker i () =
    match Pb_net.Client.connect ~host:!loadgen_host ~port:!loadgen_port () with
    | exception _ ->
        Atomic.incr failures;
        Printf.eprintf "loadgen: client %d could not connect to %s:%d\n%!" i
          !loadgen_host !loadgen_port
    | c ->
        Fun.protect
          ~finally:(fun () -> Pb_net.Client.close c)
          (fun () ->
            let acc = ref [] in
            (try
               for r = 0 to per_client - 1 do
                 let stmt = statements.((i + r) mod n_stmts) in
                 let t0 = Unix.gettimeofday () in
                 let resp = Pb_net.Client.request ?deadline c stmt in
                 let dt = Unix.gettimeofday () -. t0 in
                 acc := dt :: !acc;
                 match resp.Pb_net.Protocol.status with
                 | Pb_net.Protocol.Ok -> ()
                 | Pb_net.Protocol.Busy ->
                     Atomic.incr busy;
                     Atomic.incr errors
                 | Pb_net.Protocol.Deadline_exceeded | Pb_net.Protocol.Cancelled
                   ->
                     Atomic.incr cancelled;
                     Atomic.incr errors
                 | _ -> Atomic.incr errors
               done
             with Pb_net.Client.Net_error msg ->
               Atomic.incr failures;
               Printf.eprintf "loadgen: client %d dropped: %s\n%!" i msg);
            latencies.(i) <- !acc)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let all = Array.to_list latencies |> List.concat in
  let completed = List.length all in
  if completed = 0 then failwith "loadgen: no request completed";
  let sorted = List.sort compare all in
  let p q = Stats.percentile q sorted in
  let throughput = float_of_int completed /. wall in
  Printf.printf "loadgen %s: %d clients x %d requests against %s:%d\n"
    !loadgen_label clients per_client !loadgen_host !loadgen_port;
  Printf.printf
    "  completed %d round-trips in %s (%d error statuses: %d busy, %d \
     deadline/cancelled; %d dropped clients)\n"
    completed (fmt_seconds wall) (Atomic.get errors) (Atomic.get busy)
    (Atomic.get cancelled) (Atomic.get failures);
  Printf.printf "  throughput: %.1f req/s\n" throughput;
  Printf.printf "  latency: p50 %s  p95 %s  p99 %s  max %s\n"
    (fmt_seconds (p 50.0)) (fmt_seconds (p 95.0)) (fmt_seconds (p 99.0))
    (fmt_seconds (p 100.0));
  (* Full cumulative histogram over the same bucket bounds the server's
     pb_net_*_request_seconds histograms use, so client-observed and
     server-observed latency distributions line up bucket for bucket. *)
  let bucket_bounds = [ 0.0005; 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 ] in
  let cumulative le = List.length (List.filter (fun v -> v <= le) all) in
  let latency_sum = List.fold_left ( +. ) 0.0 all in
  (* End-to-end trace check: send one traced request with a fresh
     client-generated id and require the server to hand the span tree
     back under exactly that id. *)
  let trace_check =
    match Pb_net.Client.connect ~host:!loadgen_host ~port:!loadgen_port () with
    | exception _ -> "unavailable"
    | c ->
        Fun.protect
          ~finally:(fun () -> Pb_net.Client.close c)
          (fun () ->
            let id = Pb_net.Protocol.fresh_trace_id () in
            match Pb_net.Client.request ~trace:id c statements.(0) with
            | exception Pb_net.Client.Net_error _ -> "unavailable"
            | _ -> (
                match Pb_net.Client.request c ("\\traces " ^ id) with
                | exception Pb_net.Client.Net_error _ -> "unavailable"
                | resp ->
                    let prefix = "trace " ^ id in
                    let b = resp.Pb_net.Protocol.body in
                    if
                      resp.Pb_net.Protocol.status = Pb_net.Protocol.Ok
                      && String.length b >= String.length prefix
                      && String.sub b 0 (String.length prefix) = prefix
                    then "ok"
                    else "missing"))
  in
  Printf.printf "  traced sample: %s\n" trace_check;
  match !loadgen_json_out with
  | None -> ()
  | Some path ->
      let buckets_json =
        String.concat ","
          (List.map
             (fun le ->
               Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_num le)
                 (cumulative le))
             bucket_bounds
          @ [ Printf.sprintf "{\"le\":\"+Inf\",\"count\":%d}" completed ])
      in
      let oc = open_out path in
      Printf.fprintf oc
        "{\"label\":\"%s\",\"mode\":\"closed\",\"store_mode\":\"%s\",\
         \"clients\":%d,\
         \"requests_per_client\":%d,\
         \"nproc\":%d,\"completed\":%d,\"protocol_errors\":%d,\"busy\":%d,\
         \"cancelled\":%d,\"dropped_clients\":%d,\
         \"wall_seconds\":%s,\"throughput_rps\":%s,\"p50_s\":%s,\"p95_s\":%s,\
         \"p99_s\":%s,\"max_s\":%s,\"latency_sum_s\":%s,\
         \"latency_buckets\":[%s],\"trace_check\":\"%s\"}\n"
        (json_escape !loadgen_label)
        (Pb_store.Mode.to_string (Pb_store.Mode.current ()))
        clients per_client
        (Domain.recommended_domain_count ())
        completed (Atomic.get errors) (Atomic.get busy) (Atomic.get cancelled)
        (Atomic.get failures) (json_num wall)
        (json_num throughput) (json_num (p 50.0)) (json_num (p 95.0))
        (json_num (p 99.0)) (json_num (p 100.0)) (json_num latency_sum)
        buckets_json trace_check;
      close_out oc;
      Printf.printf "  json written to %s\n" path

(* ---- open-loop loadgen: one thread, a pool of non-blocking connections --- *)

(* The closed-loop generator above measures the system at its natural
   concurrency: every worker waits for its response before sending again,
   so offered load collapses when the server slows down — latency hides.
   The open-loop generator decouples arrivals from completions: requests
   arrive on a Poisson process at --rate regardless of how the server is
   doing, each grabbing an idle connection from a pool of --connections
   persistent non-blocking connections multiplexed on one Poller. An
   arrival that finds every connection busy is *dropped and counted* —
   under overload the drop counter grows instead of the latency lying.
   Without --rate the pool runs closed-loop (each connection re-issues on
   completion), which is the apples-to-apples shape for comparing server
   modes at high connection counts without spawning thousands of client
   threads. *)

type oconn = {
  oc_fd : Unix.file_descr;
  oc_asm : Pb_net.Assembler.t;
  mutable oc_wbuf : string;  (* unwritten tail of the current frame *)
  mutable oc_busy : bool;
  mutable oc_t0 : float;
  mutable oc_dead : bool;
}

let frame payload = Printf.sprintf "%d\n%s" (String.length payload) payload

let resolve_addr host port =
  let inet =
    match Unix.inet_addr_of_string host with
    | addr -> addr
    | exception _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  Unix.ADDR_INET (inet, port)

let rec handshake_read fd asm buf =
  match Pb_net.Assembler.next asm with
  | `Frame f -> f
  | `Bad msg -> failwith ("handshake: " ^ msg)
  | `Awaiting ->
      let n = Unix.read fd buf 0 (Bytes.length buf) in
      if n = 0 then failwith "handshake: connection closed";
      Pb_net.Assembler.feed asm ~len:n (Bytes.unsafe_to_string buf);
      handshake_read fd asm buf

let connect_nonblocking addr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd addr;
    let asm = Pb_net.Assembler.create () in
    Pb_net.Client.write_all fd
      (frame (Pb_net.Protocol.encode_hello Pb_net.Protocol.version));
    let buf = Bytes.create 4096 in
    let reply = handshake_read fd asm buf in
    (match Pb_net.Protocol.decode_hello reply with
    | Ok _ -> ()
    | Error _ ->
        (* not a hello: the server turned the connection away *)
        let msg =
          match Pb_net.Protocol.decode_response reply with
          | Ok r -> r.Pb_net.Protocol.body
          | Error e -> e
        in
        failwith ("rejected: " ^ msg));
    Unix.set_nonblock fd;
    { oc_fd = fd; oc_asm = asm; oc_wbuf = ""; oc_busy = false;
      oc_t0 = 0.0; oc_dead = false }
  with
  | conn -> Some conn
  | exception _ ->
      (try Unix.close fd with _ -> ());
      None

let loadgen_open () =
  let lines =
    match !loadgen_workload with
    | Some path -> read_workload_file path
    | None -> default_workload_lines
  in
  if lines = [] then failwith "loadgen: workload file has no statements";
  let statements = Array.of_list lines in
  let n_stmts = Array.length statements in
  let want_conns = max 1 !loadgen_connections in
  let rate = !loadgen_rate in
  let duration = max 0.1 !loadgen_duration in
  let deadline =
    if !loadgen_deadline > 0.0 then Some !loadgen_deadline else None
  in
  let addr = resolve_addr !loadgen_host !loadgen_port in
  let prng = Pb_util.Prng.create 42 in
  (* connect phase: sequential and blocking — predictable, and it doubles
     as a connection-storm test of the server's accept path *)
  let t_conn0 = Unix.gettimeofday () in
  let conns =
    Array.of_list
      (List.filter_map
         (fun _ -> connect_nonblocking addr)
         (List.init want_conns (fun i -> i)))
  in
  let n_conns = Array.length conns in
  let connect_seconds = Unix.gettimeofday () -. t_conn0 in
  if n_conns = 0 then failwith "loadgen: no connection could be established";
  Printf.printf "loadgen %s (open pool): %d/%d connections up in %s\n%!"
    !loadgen_label n_conns want_conns (fmt_seconds connect_seconds);
  let poller = Pb_net.Poller.create () in
  let by_fd = Hashtbl.create (2 * n_conns) in
  Array.iter
    (fun c ->
      Hashtbl.replace by_fd c.oc_fd c;
      Pb_net.Poller.add poller c.oc_fd ~read:true ~write:false)
    conns;
  let latencies = ref [] in
  let completed = ref 0 in
  let errors = ref 0 in
  let busy = ref 0 in
  let cancelled = ref 0 in
  let dropped_arrivals = ref 0 in
  let dead_conns = ref 0 in
  let stmt_i = ref 0 in
  let cursor = ref 0 in
  let update_interest c =
    if not c.oc_dead then
      Pb_net.Poller.modify poller c.oc_fd ~read:true
        ~write:(c.oc_wbuf <> "")
  in
  let kill c =
    if not c.oc_dead then begin
      c.oc_dead <- true;
      incr dead_conns;
      Pb_net.Poller.remove poller c.oc_fd;
      Hashtbl.remove by_fd c.oc_fd;
      (try Unix.close c.oc_fd with _ -> ())
    end
  in
  let flush_writes c =
    let s = c.oc_wbuf in
    let len = String.length s in
    let off = ref 0 in
    (try
       while !off < len do
         let n =
           Unix.write_substring c.oc_fd s !off (len - !off)
         in
         off := !off + n
       done
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | Unix.Unix_error _ -> kill c);
    if not c.oc_dead then begin
      c.oc_wbuf <- String.sub s !off (len - !off);
      update_interest c
    end
  in
  let send c =
    let text = statements.(!stmt_i mod n_stmts) in
    incr stmt_i;
    let payload =
      Pb_net.Protocol.encode_request
        { Pb_net.Protocol.text; deadline; trace = None; data = false }
    in
    c.oc_busy <- true;
    c.oc_t0 <- Unix.gettimeofday ();
    c.oc_wbuf <- c.oc_wbuf ^ frame payload;
    flush_writes c
  in
  let closed_loop = rate <= 0.0 in
  let t_start = Unix.gettimeofday () in
  let t_end = t_start +. duration in
  let next_arrival = ref t_start in
  let advance_arrival () =
    let u = Pb_util.Prng.float prng 1.0 in
    next_arrival := !next_arrival +. (-.log (1.0 -. u) /. rate)
  in
  let dispatch_arrival () =
    (* round-robin scan for an idle connection; none idle = drop *)
    let n = Array.length conns in
    let rec scan k =
      if k >= n then incr dropped_arrivals
      else
        let c = conns.((!cursor + k) mod n) in
        if c.oc_dead || c.oc_busy then scan (k + 1)
        else begin
          cursor := (!cursor + k + 1) mod n;
          send c
        end
    in
    scan 0
  in
  if closed_loop then Array.iter (fun c -> if not c.oc_dead then send c) conns;
  let on_response c body_frame =
    match Pb_net.Protocol.decode_response body_frame with
    | Error _ -> kill c
    | Ok resp ->
        let dt = Unix.gettimeofday () -. c.oc_t0 in
        latencies := dt :: !latencies;
        incr completed;
        c.oc_busy <- false;
        (match resp.Pb_net.Protocol.status with
        | Pb_net.Protocol.Ok -> ()
        | Pb_net.Protocol.Busy ->
            incr busy;
            incr errors
        | Pb_net.Protocol.Deadline_exceeded | Pb_net.Protocol.Cancelled ->
            incr cancelled;
            incr errors
        | _ -> incr errors);
        if closed_loop && Unix.gettimeofday () < t_end then send c
  in
  let rbuf = Bytes.create 65536 in
  let on_readable c =
    match Unix.read c.oc_fd rbuf 0 (Bytes.length rbuf) with
    | 0 -> kill c
    | n ->
        Pb_net.Assembler.feed c.oc_asm ~len:n (Bytes.unsafe_to_string rbuf);
        let rec drain () =
          if not c.oc_dead then
            match Pb_net.Assembler.next c.oc_asm with
            | `Frame f ->
                on_response c f;
                drain ()
            | `Awaiting -> ()
            | `Bad _ -> kill c
        in
        drain ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> kill c
  in
  let in_flight () =
    Array.fold_left
      (fun acc c -> if (not c.oc_dead) && c.oc_busy then acc + 1 else acc)
      0 conns
  in
  let grace_end = ref infinity in
  let running = ref true in
  while !running do
    let now = Unix.gettimeofday () in
    if (not closed_loop) && now < t_end then
      while !next_arrival <= Unix.gettimeofday () && rate > 0.0 do
        dispatch_arrival ();
        advance_arrival ()
      done;
    let now = Unix.gettimeofday () in
    if now >= t_end then begin
      if !grace_end = infinity then grace_end := now +. 10.0;
      if in_flight () = 0 || now >= !grace_end then running := false
    end;
    if !running then begin
      let timeout =
        if closed_loop || now >= t_end then 0.05
        else Float.max 0.0 (Float.min 0.05 (!next_arrival -. now))
      in
      let events = Pb_net.Poller.wait poller ~timeout in
      List.iter
        (fun ev ->
          match Hashtbl.find_opt by_fd ev.Pb_net.Poller.fd with
          | None -> ()
          | Some c ->
              if ev.Pb_net.Poller.error then kill c
              else begin
                if ev.Pb_net.Poller.writable && c.oc_wbuf <> "" then
                  flush_writes c;
                if ev.Pb_net.Poller.readable then on_readable c
              end)
        events
    end
  done;
  let wall = Unix.gettimeofday () -. t_start in
  let died = !dead_conns in
  Array.iter kill conns;
  Pb_net.Poller.close poller;
  let all = !latencies in
  if !completed = 0 then failwith "loadgen: no request completed";
  let sorted = List.sort compare all in
  let p q = Stats.percentile q sorted in
  let throughput = float_of_int !completed /. wall in
  let mode = if closed_loop then "closed" else "open" in
  Printf.printf
    "loadgen %s: %s-loop, %d connections%s against %s:%d for %s\n"
    !loadgen_label mode n_conns
    (if closed_loop then "" else Printf.sprintf " at %g req/s offered" rate)
    !loadgen_host !loadgen_port (fmt_seconds wall);
  Printf.printf
    "  completed %d round-trips (%d error statuses: %d busy, %d \
     deadline/cancelled); %d arrivals dropped, %d connections died\n"
    !completed !errors !busy !cancelled !dropped_arrivals died;
  Printf.printf "  throughput: %.1f req/s\n" throughput;
  Printf.printf "  latency: p50 %s  p95 %s  p99 %s  max %s\n"
    (fmt_seconds (p 50.0)) (fmt_seconds (p 95.0)) (fmt_seconds (p 99.0))
    (fmt_seconds (p 100.0));
  match !loadgen_json_out with
  | None -> ()
  | Some path ->
      let bucket_bounds =
        [ 0.0005; 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 ]
      in
      let cumulative le = List.length (List.filter (fun v -> v <= le) all) in
      let buckets_json =
        String.concat ","
          (List.map
             (fun le ->
               Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_num le)
                 (cumulative le))
             bucket_bounds
          @ [ Printf.sprintf "{\"le\":\"+Inf\",\"count\":%d}" !completed ])
      in
      let oc = open_out path in
      Printf.fprintf oc
        "{\"label\":\"%s\",\"mode\":\"%s\",\"store_mode\":\"%s\",\
         \"connections\":%d,\"connections_requested\":%d,\
         \"offered_rate_rps\":%s,\"duration_s\":%s,\
         \"connect_seconds\":%s,\"nproc\":%d,\"completed\":%d,\
         \"protocol_errors\":%d,\"busy\":%d,\"cancelled\":%d,\
         \"dropped_arrivals\":%d,\"dead_connections\":%d,\
         \"wall_seconds\":%s,\"throughput_rps\":%s,\"p50_s\":%s,\
         \"p95_s\":%s,\"p99_s\":%s,\"max_s\":%s,\"latency_buckets\":[%s]}\n"
        (json_escape !loadgen_label) mode
        (Pb_store.Mode.to_string (Pb_store.Mode.current ()))
        n_conns want_conns (json_num rate) (json_num duration)
        (json_num connect_seconds)
        (Domain.recommended_domain_count ())
        !completed !errors !busy !cancelled !dropped_arrivals died
        (json_num wall) (json_num throughput) (json_num (p 50.0))
        (json_num (p 95.0)) (json_num (p 99.0)) (json_num (p 100.0))
        buckets_json;
      close_out oc;
      Printf.printf "  json written to %s\n" path

(* ---- driver -------------------------------------------------------------- *)

let all_experiments =
  [
    ("T1", exp_t1); ("T2", exp_t2); ("T3", exp_t3); ("T4", exp_t4);
    ("T5", exp_t5); ("T6", exp_t6); ("T7", exp_t7); ("T8", exp_t8);
    ("T9", exp_t9); ("F1", exp_f1); ("A1", exp_a1); ("A2", exp_a2); ("A3", exp_a3);
    ("P1", exp_p1);
  ]

let run_loadgen = ref false
let run_sql_bench = ref false
let run_paql_scale = ref false

let () =
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--bechamel" :: rest ->
        run_bechamel := true;
        parse rest
    | "--loadgen" :: rest ->
        run_loadgen := true;
        parse rest
    | "--sql" :: rest ->
        run_sql_bench := true;
        parse rest
    | "--sql-json" :: path :: rest ->
        sql_json_out := path;
        parse rest
    | "--paql-scale" :: rest ->
        run_paql_scale := true;
        parse rest
    | "--paql-json" :: path :: rest ->
        paql_json_out := path;
        parse rest
    | "--host" :: h :: rest ->
        loadgen_host := h;
        parse rest
    | "--port" :: n :: rest ->
        (match int_of_string_opt n with
        | Some p when p > 0 -> loadgen_port := p
        | _ -> prerr_endline ("ignoring invalid --port value: " ^ n));
        parse rest
    | "--clients" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> loadgen_clients := k
        | _ -> prerr_endline ("ignoring invalid --clients value: " ^ n));
        parse rest
    | "--requests" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> loadgen_requests := k
        | _ -> prerr_endline ("ignoring invalid --requests value: " ^ n));
        parse rest
    | "--connections" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> loadgen_connections := k
        | _ -> prerr_endline ("ignoring invalid --connections value: " ^ n));
        parse rest
    | "--rate" :: s :: rest ->
        (match float_of_string_opt s with
        | Some r when r > 0.0 -> loadgen_rate := r
        | _ -> prerr_endline ("ignoring invalid --rate value: " ^ s));
        parse rest
    | "--duration" :: s :: rest ->
        (match float_of_string_opt s with
        | Some d when d > 0.0 -> loadgen_duration := d
        | _ -> prerr_endline ("ignoring invalid --duration value: " ^ s));
        parse rest
    | "--workload" :: path :: rest ->
        loadgen_workload := Some path;
        parse rest
    | "--deadline" :: s :: rest ->
        (match float_of_string_opt s with
        | Some d when d >= 0.0 -> loadgen_deadline := d
        | _ -> prerr_endline ("ignoring invalid --deadline value: " ^ s));
        parse rest
    | "--label" :: l :: rest ->
        loadgen_label := l;
        parse rest
    | "--json-out" :: path :: rest ->
        loadgen_json_out := Some path;
        parse rest
    | "--exp" :: id :: rest ->
        selected := String.uppercase_ascii id :: !selected;
        parse rest
    | "--metrics-out" :: path :: rest ->
        metrics_out := Some path;
        parse rest
    | "--domains" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> Pb_par.Pool.set_default_size k
        | _ -> prerr_endline ("ignoring invalid --domains value: " ^ n));
        parse rest
    | _ :: rest -> parse rest
  in
  parse args;
  if !run_loadgen then
    if !loadgen_connections > 0 then loadgen_open () else loadgen ()
  else if !run_paql_scale then paql_scale ()
  else if !run_sql_bench then sql_bench ()
  else if !run_bechamel then micro_benchmarks ()
  else begin
    List.iter
      (fun (id, f) -> if wants id then with_metrics id f)
      all_experiments;
    print_newline ()
  end;
  match !metrics_out with None -> () | Some path -> write_metrics path
