(** Fixed-size domain pool for deterministic data parallelism.

    A pool of size [k] owns [k - 1] worker domains plus the submitting
    domain, which always participates in the work it submits.  A pool of
    size 1 spawns no domains at all and runs everything inline, so the
    sequential code path is untouched when parallelism is off.

    Determinism contract: [map_chunks] / [map_reduce] split the index
    range [0, n) into contiguous chunks and deliver (or reduce) the
    chunk results in ascending chunk order, regardless of which domain
    finished first.  Any fold whose merge is insensitive to chunk
    granularity — order-preserving concatenation, "first best wins"
    selection over an ordered walk — therefore produces bit-identical
    results at every pool size. *)

type t

val create : int -> t
(** [create k] makes a pool of size [max k 1].  [create 1] spawns no
    domains. *)

val size : t -> int

val shutdown : t -> unit
(** Signal the workers to exit and join them.  Idempotent.  Submitting
    work to a pool after [shutdown] runs it inline on the caller. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool k f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises. *)

(** {1 Default pool}

    The default pool is sized by the [PB_DOMAINS] environment variable
    (default 1, anything unparseable or < 1 is treated as 1) and is
    created lazily on first use.  [set_default_size] replaces it, which
    is how the bench driver implements [--domains N]. *)

val env_size : unit -> int
val get_default : unit -> t
val set_default_size : int -> unit

(** {1 Parallel regions} *)

val parallel_for :
  t -> ?chunk_size:int -> ?should_stop:(unit -> bool) -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f i] for every [i] in [0, n), split
    into contiguous chunks across the pool.  Returns once every call
    has finished.  [f] must only write to disjoint state per index.

    [should_stop] (default: never) is polled once at each chunk head;
    after it first answers [true], chunks that have not yet started are
    skipped entirely — how a governance token stops queued work without
    tearing down the pool.  Indexes inside skipped chunks are simply
    never visited; callers that must distinguish "ran" from "skipped"
    record completion per index themselves. *)

val map_chunks : t -> ?chunk_size:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** [map_chunks pool ~n f] covers [0, n) with contiguous ranges
    [lo, hi) and returns the chunk results in ascending chunk order.
    With pool size 1 (or [n] = 0 handled as []), a single chunk
    [f ~lo:0 ~hi:n] is used. *)

val map_reduce :
  t ->
  ?chunk_size:int ->
  n:int ->
  map:(lo:int -> hi:int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  'a ->
  'a
(** [map_reduce pool ~n ~map ~reduce init]: chunked map over [0, n)
    followed by a left fold of [reduce], seeded with [init], over the
    chunk results in ascending chunk order — deterministic whenever the
    fold is insensitive to where the chunk boundaries fall. *)

val race : t -> ((unit -> bool) -> 'a * bool) list -> 'a list
(** [race pool legs] runs every leg concurrently.  Each leg receives a
    [cancelled] poll function and returns [(value, won)]; as soon as
    some leg returns [won = true] the poll starts answering [true] so
    the remaining legs can bail out cooperatively.  All legs are joined
    before [race] returns (so no leg can mutate shared counters after
    the call completes) and the values come back in input order.  With
    pool size 1 the legs run sequentially in input order. *)
