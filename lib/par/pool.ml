(* Fixed-size domain pool with a helping scheduler.

   Layout: a pool of size [k] spawns [k - 1] worker domains that loop
   on a shared FIFO of thunks.  Every parallel region is submitted by
   some domain (the main domain, or a worker running a nested region);
   the submitter enqueues all but the first chunk, runs the first chunk
   itself, then *helps*: it keeps draining the shared queue until its
   own region's pending count reaches zero.  Because a submitter never
   blocks while runnable work exists, nested regions cannot deadlock —
   in the worst case a region's submitter executes every one of its own
   chunks inline.

   All cross-domain signalling goes through one mutex and one condition
   variable: the condition is broadcast when work is enqueued, when a
   region completes, and on shutdown.  Spurious wakeups are handled by
   re-checking state in a loop. *)

type t = {
  size : int;
  mu : Mutex.t;
  cond : Condition.t;
  q : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

let rec worker_body pool =
  Mutex.lock pool.mu;
  let rec next () =
    if pool.stopping then None
    else
      match Queue.take_opt pool.q with
      | Some task -> Some task
      | None ->
          Condition.wait pool.cond pool.mu;
          next ()
  in
  let task = next () in
  Mutex.unlock pool.mu;
  match task with
  | None -> ()
  | Some task ->
      (* Region wrappers catch their own exceptions; a raise here would
         kill the domain, so guard anyway. *)
      (try task () with _ -> ());
      worker_body pool

let create k =
  let size = max k 1 in
  let pool =
    {
      size;
      mu = Mutex.create ();
      cond = Condition.create ();
      q = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  if size > 1 then
    pool.workers <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_body pool));
  pool

let shutdown pool =
  Mutex.lock pool.mu;
  let ws = pool.workers in
  pool.workers <- [];
  pool.stopping <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mu;
  List.iter Domain.join ws

let with_pool k f =
  let pool = create k in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Default pool (sized by PB_DOMAINS, overridable via set_default_size) *)

let env_size () =
  match Sys.getenv_opt "PB_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

let default_mu = Mutex.create ()
let default_pool : t option ref = ref None

let get_default () =
  Mutex.lock default_mu;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create (env_size ()) in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mu;
  pool

let set_default_size n =
  Mutex.lock default_mu;
  let old = !default_pool in
  default_pool := Some (create n);
  Mutex.unlock default_mu;
  Option.iter shutdown old

let () =
  at_exit (fun () ->
      Mutex.lock default_mu;
      let old = !default_pool in
      default_pool := None;
      Mutex.unlock default_mu;
      Option.iter shutdown old)

(* ------------------------------------------------------------------ *)
(* Parallel regions *)

(* Run every thunk, using the pool's workers plus the calling domain;
   returns once all have finished.  Re-raises the lowest-indexed
   exception, if any, for a deterministic failure. *)
let run_region pool (thunks : (unit -> unit) array) =
  let n = Array.length thunks in
  if n = 0 then ()
  else begin
    let exns = Array.make n None in
    let guarded i () =
      try thunks.(i) () with e -> exns.(i) <- Some e
    in
    (if pool.size <= 1 || pool.stopping || n = 1 then
       for i = 0 to n - 1 do
         guarded i ()
       done
     else begin
       let remaining = ref n in
       let finish () =
         Mutex.lock pool.mu;
         decr remaining;
         if !remaining = 0 then Condition.broadcast pool.cond;
         Mutex.unlock pool.mu
       in
       let wrap i () =
         guarded i ();
         finish ()
       in
       Mutex.lock pool.mu;
       for i = 1 to n - 1 do
         Queue.add (wrap i) pool.q
       done;
       Condition.broadcast pool.cond;
       Mutex.unlock pool.mu;
       wrap 0 ();
       (* Help until this region is fully drained.  We may execute
          chunks of other in-flight regions here; that is fine — they
          complete strictly sooner and their submitters get woken. *)
       let rec help () =
         Mutex.lock pool.mu;
         if !remaining = 0 then Mutex.unlock pool.mu
         else
           match Queue.take_opt pool.q with
           | Some task ->
               Mutex.unlock pool.mu;
               task ();
               help ()
           | None ->
               Condition.wait pool.cond pool.mu;
               Mutex.unlock pool.mu;
               help ()
       in
       help ()
     end);
    Array.iter (function Some e -> raise e | None -> ()) exns
  end

let ranges ?chunk_size pool n =
  let csize =
    match chunk_size with
    | Some c -> max 1 c
    | None ->
        (* Oversubscribe 4x for load balance; chunk order keeps
           determinism regardless of granularity. *)
        max 1 ((n + (pool.size * 4) - 1) / (pool.size * 4))
  in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else
      let hi = min n (lo + csize) in
      go hi ((lo, hi) :: acc)
  in
  go 0 []

let map_chunks pool ?chunk_size ~n f =
  if n <= 0 then []
  else if pool.size <= 1 && chunk_size = None then [ f ~lo:0 ~hi:n ]
  else begin
    let rs = ranges ?chunk_size pool n in
    let out = Array.make (List.length rs) None in
    let thunks =
      Array.of_list
        (List.mapi (fun i (lo, hi) () -> out.(i) <- Some (f ~lo ~hi)) rs)
    in
    run_region pool thunks;
    Array.to_list out
    |> List.map (function Some v -> v | None -> assert false)
  end

let map_reduce pool ?chunk_size ~n ~map ~reduce init =
  List.fold_left reduce init (map_chunks pool ?chunk_size ~n map)

let parallel_for pool ?chunk_size ?(should_stop = fun () -> false) n f =
  map_chunks pool ?chunk_size ~n (fun ~lo ~hi ->
      (* One poll per chunk: queued chunks of an already-stopped region
         are skipped wholesale instead of running to completion.  The
         caller is responsible for noticing which indexes never ran. *)
      if not (should_stop ()) then
        for i = lo to hi - 1 do
          f i
        done)
  |> ignore

let race pool legs =
  let n = List.length legs in
  let won = Atomic.make false in
  let poll () = Atomic.get won in
  let results = Array.make n None in
  let thunks =
    Array.of_list
      (List.mapi
         (fun i leg () ->
           let v, winner = leg poll in
           if winner then Atomic.set won true;
           results.(i) <- Some v)
         legs)
  in
  run_region pool thunks;
  Array.to_list results
  |> List.map (function Some v -> v | None -> assert false)
