module Trace = Pb_obs.Trace
module Metrics = Pb_obs.Metrics
module Progress = Pb_obs.Progress
module Gov = Pb_util.Gov

let m_bb_nodes =
  Metrics.counter ~help:"Branch-and-bound nodes explored"
    "pb_milp_nodes_total"

let m_incumbents =
  Metrics.counter ~help:"Incumbent (best integral point) updates"
    "pb_milp_incumbent_updates_total"

let m_solves =
  Metrics.counter ~help:"MILP solves started" "pb_milp_solves_total"

type status = Optimal | Feasible | Infeasible | Unbounded

type solution = {
  status : status;
  x : float array;
  objective : float;
  nodes : int;
  lp_iterations : int;
}

type node_order = Dfs | Best_bound

(* A node is a set of tightened bounds layered over the base model,
   carrying its parent's relaxation bound for best-first selection. *)
type node = {
  nbounds : (int * float * float) list;
  depth : int;
  parent_bound : float;  (* in maximization sense *)
}

let fractional_part x = Float.abs (x -. Float.round x)

let most_fractional model ~eps x =
  let best = ref (-1) and best_frac = ref eps in
  for i = 0 to Array.length x - 1 do
    if Model.is_integer model i then begin
      let f = fractional_part x.(i) in
      if f > !best_frac then begin
        best_frac := f;
        best := i
      end
    end
  done;
  !best

(* Try to turn an LP point into an integral feasible point by rounding
   each integer variable both ways greedily. *)
let rounding_heuristic model ~eps x =
  let n = Array.length x in
  let candidate = Array.copy x in
  for i = 0 to n - 1 do
    if Model.is_integer model i then begin
      let lo, hi = Model.bounds model i in
      let r = Float.round candidate.(i) in
      (* Clamp onto the integer lattice inside the bounds. *)
      let r = Float.max (Float.ceil lo) (Float.min (Float.floor hi) r) in
      candidate.(i) <- r
    end
  done;
  if
    (* The feasibility tolerance here must stay below any strict-
       inequality epsilon a translator bakes into the rhs (pb_core uses
       1e-6), or rounding could admit points that violate a strict
       constraint by exactly that margin. *)
    Model.check_feasible ~eps:1e-7 model candidate
    && Model.check_integral ~eps model candidate
  then Some candidate
  else None

let maximization_sense model =
  match Model.objective model with
  | Model.Maximize _ -> true
  | Model.Minimize _ -> false

let rec solve_impl ~gov ?(eps = 1e-6) ?(node_order = Dfs) ?(presolve = false)
    model =
  if presolve then
    match Presolve.presolve model with
    | Presolve.Proven_infeasible ->
        {
          status = Infeasible;
          x = [||];
          objective = nan;
          nodes = 0;
          lp_iterations = 0;
        }
    | Presolve.Reduced { model = reduced; _ } ->
        solve_impl ~gov ~eps ~node_order ~presolve:false reduced
  else
  let n = Model.num_vars model in
  let saved_bounds = Array.init n (Model.bounds model) in
  let restore () =
    Array.iteri (fun i (lo, hi) -> Model.set_bounds model i lo hi) saved_bounds
  in
  let maximize = maximization_sense model in
  let better a b = if maximize then a > b +. 1e-9 else a < b -. 1e-9 in
  let incumbent = ref None in
  let incumbent_obj = ref (if maximize then neg_infinity else infinity) in
  let nodes_explored = ref 0 in
  let lp_iterations = ref 0 in
  let saw_unbounded = ref false in
  let budget_hit = ref false in
  let apply node =
    restore ();
    (* nbounds is child-first; apply ancestors before descendants so the
       tightest (deepest) bound on a re-branched variable wins. *)
    List.iter
      (fun (i, lo, hi) -> Model.set_bounds model i lo hi)
      (List.rev node.nbounds)
  in
  let root_bound = if maximize then infinity else neg_infinity in
  let stack = ref [ { nbounds = []; depth = 0; parent_bound = root_bound } ] in
  (* [bound] is the current node's relaxation objective; the global dual
     bound reported to the progress stream also folds in every node
     still awaiting exploration, so it is monotone (non-increasing when
     maximizing) even as the stack drains. *)
  let record ~bound x =
    let obj = Model.objective_value model x in
    if better obj !incumbent_obj then begin
      incumbent := Some (Array.copy x);
      incumbent_obj := obj;
      Metrics.incr m_incumbents;
      let global_bound =
        List.fold_left
          (fun acc n ->
            if maximize then Float.max acc n.parent_bound
            else Float.min acc n.parent_bound)
          bound !stack
      in
      Progress.incumbent ~key:(Gov.family_id gov) ~strategy:"ilp"
        ~bound:global_bound ~nodes:!nodes_explored obj
    end
  in
  (* Pop according to the node order: head for DFS, best parent bound for
     best-first (maximization sense; parent_bound is already signed). *)
  let pop () =
    match (node_order, !stack) with
    | _, [] -> None
    | Dfs, node :: rest ->
        stack := rest;
        Some node
    | Best_bound, first :: _ ->
        let better_bound a b =
          if maximize then a.parent_bound > b.parent_bound
          else a.parent_bound < b.parent_bound
        in
        let best =
          List.fold_left
            (fun acc node -> if better_bound node acc then node else acc)
            first !stack
        in
        stack := List.filter (fun node -> node != best) !stack;
        Some best
  in
  while !stack <> [] && (not !budget_hit) do
    match pop () with
    | None -> ()
    | Some node ->
        (* One governance poll per node pop: cancellation/deadline stop
           the whole solve, the node budget stops just this strategy;
           either way the best incumbent found so far is returned with
           [Feasible] rather than a proof claim. *)
        if Gov.check ~resource:Gov.Milp_nodes gov <> None then
          budget_hit := true
        else begin
          incr nodes_explored;
          Gov.spend gov Gov.Milp_nodes 1;
          Metrics.incr m_bb_nodes;
          apply node;
          let relax = Simplex.solve model in
          lp_iterations := !lp_iterations + relax.iterations;
          match relax.status with
          | Simplex.Infeasible -> ()
          | Simplex.Iteration_limit -> budget_hit := true
          | Simplex.Unbounded ->
              (* An unbounded relaxation at the root means the MILP is
                 unbounded or infeasible; deeper down we conservatively
                 treat it the same way. *)
              saw_unbounded := true;
              budget_hit := true
          | Simplex.Optimal ->
              let bound = relax.objective in
              let dominated =
                !incumbent <> None && not (better bound !incumbent_obj)
              in
              if not dominated then begin
                let branch_var = most_fractional model ~eps relax.x in
                (* An "integral within tolerance" point must be snapped to
                   the lattice and re-verified: the snapped point can
                   violate a strict-inequality row by its epsilon (the
                   relaxation answered e.g. x = 0.9999997 to stay inside
                   rhs - 1e-6). When the snap is infeasible, branch on the
                   least-integral variable instead of recording. *)
                let branch_var =
                  if branch_var >= 0 then branch_var
                  else
                    match rounding_heuristic model ~eps relax.x with
                    | Some snapped ->
                        record ~bound snapped;
                        -1
                    | None -> most_fractional model ~eps:1e-12 relax.x
                in
                if branch_var < 0 then ()
                else begin
                  (match rounding_heuristic model ~eps relax.x with
                  | Some point -> record ~bound point
                  | None -> ());
                  let v = relax.x.(branch_var) in
                  let lo, hi = Model.bounds model branch_var in
                  let fl = Float.floor v and ce = Float.ceil v in
                  (* Children with an empty domain are dropped outright. *)
                  let child lo hi =
                    {
                      nbounds = (branch_var, lo, hi) :: node.nbounds;
                      depth = node.depth + 1;
                      parent_bound = bound;
                    }
                  in
                  let down = if fl < lo then [] else [ child lo fl ] in
                  let up = if ce > hi then [] else [ child ce hi ] in
                  (* Explore the rounding-preferred side first. *)
                  if v -. fl > 0.5 then stack := up @ down @ !stack
                  else stack := down @ up @ !stack
                end
              end
        end
  done;
  restore ();
  let nodes = !nodes_explored and lp_iterations = !lp_iterations in
  match !incumbent with
  | Some x ->
      {
        status = (if !budget_hit then Feasible else Optimal);
        x;
        objective = !incumbent_obj;
        nodes;
        lp_iterations;
      }
  | None ->
      let status =
        if !saw_unbounded then Unbounded
        else if !budget_hit then Feasible
        else Infeasible
      in
      { status; x = [||]; objective = nan; nodes; lp_iterations }

let solve ?gov ?eps ?node_order ?presolve model =
  let gov = match gov with Some g -> g | None -> Gov.create () in
  Trace.with_span ~name:"milp.solve" (fun () ->
      Metrics.incr m_solves;
      let sol = solve_impl ~gov ?eps ?node_order ?presolve model in
      Trace.add_count "bb_nodes" sol.nodes;
      Trace.add_count "lp_pivots" sol.lp_iterations;
      sol)

let solve_all ?(max_solutions = 10) ?gov model =
  let n = Model.num_vars model in
  for i = 0 to n - 1 do
    if Model.is_integer model i then begin
      let lo, hi = Model.bounds model i in
      if not (lo >= -1e-9 && hi <= 1.0 +. 1e-9) then
        invalid_arg "Milp.solve_all: integer variables must be binary"
    end
  done;
  let added = ref 0 in
  let rec loop acc k =
    if k = 0 then List.rev acc
    else
      let sol = solve ?gov model in
      match sol.status with
      | Optimal | Feasible when Array.length sol.x > 0 ->
          (* No-good cut: sum of selected complements + unselected vars
             >= 1 excludes exactly this 0/1 point. *)
          let terms = ref [] and ones = ref 0 in
          for i = 0 to n - 1 do
            if Model.is_integer model i then
              if Float.round sol.x.(i) >= 0.5 then begin
                terms := (-1.0, i) :: !terms;
                incr ones
              end
              else terms := (1.0, i) :: !terms
          done;
          incr added;
          Model.add_constr model
            ~name:(Printf.sprintf "nogood%d" !added)
            !terms Model.Ge
            (1.0 -. float_of_int !ones);
          loop ((sol.x, sol.objective) :: acc) (k - 1)
      | _ -> List.rev acc
  in
  loop [] max_solutions
