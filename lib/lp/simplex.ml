type status = Optimal | Infeasible | Unbounded | Iteration_limit

type solution = {
  status : status;
  x : float array;
  objective : float;
  iterations : int;
}

let eps_pivot = 1e-9
let eps_cost = 1e-7
let eps_feas = 1e-7

(* Internal tableau state. Columns: structural vars, then one slack per
   row, then artificials appended as needed. *)
type tableau = {
  m : int;
  ncols : int;
  a : float array array;      (* m x ncols, kept as B^-1 * A *)
  lo : float array;
  hi : float array;
  xval : float array;         (* current value of every column *)
  basis : int array;          (* m basic column indices *)
  is_basic : bool array;
  at_upper : bool array;      (* for nonbasic columns *)
}

let build model =
  let n = Model.num_vars model in
  let constrs = Model.constraints model in
  let m = List.length constrs in
  let base_cols = n + m in
  (* Artificials are at most one per row. *)
  let ncols_max = base_cols + m in
  let a = Array.make_matrix m ncols_max 0.0 in
  let lo = Array.make ncols_max 0.0 in
  let hi = Array.make ncols_max infinity in
  let xval = Array.make ncols_max 0.0 in
  let basis = Array.make m (-1) in
  let is_basic = Array.make ncols_max false in
  let at_upper = Array.make ncols_max false in
  (* Structural variables: nonbasic at the finite bound nearest zero. *)
  for j = 0 to n - 1 do
    let l, u = Model.bounds model j in
    lo.(j) <- l;
    hi.(j) <- u;
    if Float.is_finite l then (
      xval.(j) <- l;
      at_upper.(j) <- false)
    else if Float.is_finite u then (
      xval.(j) <- u;
      at_upper.(j) <- true)
    else
      invalid_arg
        (Printf.sprintf "Simplex: variable %s is free on both sides"
           (Model.var_name model j))
  done;
  let rhs = Array.make m 0.0 in
  List.iteri
    (fun i (c : Model.constr) ->
      List.iter (fun (coef, v) -> a.(i).(v) <- a.(i).(v) +. coef) c.terms;
      rhs.(i) <- c.rhs;
      let slack = n + i in
      a.(i).(slack) <- 1.0;
      (match c.sense with
      | Model.Le ->
          lo.(slack) <- 0.0;
          hi.(slack) <- infinity
      | Model.Ge ->
          lo.(slack) <- neg_infinity;
          hi.(slack) <- 0.0
      | Model.Eq ->
          lo.(slack) <- 0.0;
          hi.(slack) <- 0.0))
    constrs;
  (* Choose an initial basis row by row: use the slack when the residual
     fits its bounds, otherwise clamp the slack and add an artificial. *)
  let next_art = ref base_cols in
  for i = 0 to m - 1 do
    let residual = ref rhs.(i) in
    for j = 0 to n - 1 do
      if a.(i).(j) <> 0.0 then residual := !residual -. (a.(i).(j) *. xval.(j))
    done;
    let slack = n + i in
    if !residual >= lo.(slack) -. eps_feas && !residual <= hi.(slack) +. eps_feas
    then begin
      basis.(i) <- slack;
      is_basic.(slack) <- true;
      xval.(slack) <- !residual
    end
    else begin
      (* Clamp the slack to its nearest bound, keep it nonbasic there. *)
      let clamped =
        if !residual < lo.(slack) then lo.(slack) else hi.(slack)
      in
      xval.(slack) <- clamped;
      at_upper.(slack) <- clamped = hi.(slack) && Float.is_finite hi.(slack);
      let leftover = !residual -. clamped in
      let art = !next_art in
      incr next_art;
      a.(i).(art) <- (if leftover >= 0.0 then 1.0 else -1.0);
      (* The tableau must carry B^-1·A: with the artificial basic, its
         column has to be +1, so scale the whole row by its sign. *)
      if leftover < 0.0 then
        for k = 0 to ncols_max - 1 do
          a.(i).(k) <- -.a.(i).(k)
        done;
      lo.(art) <- 0.0;
      hi.(art) <- infinity;
      xval.(art) <- Float.abs leftover;
      basis.(i) <- art;
      is_basic.(art) <- true
    end
  done;
  let ncols = !next_art in
  ( { m; ncols; a; lo; hi; xval; basis; is_basic; at_upper },
    n,
    base_cols )

(* One simplex phase: maximize cost over the current tableau. Returns
   `Optimal | `Unbounded | `Limit and the pivot count. *)
let run_phase t cost max_iterations =
  let m = t.m and ncols = t.ncols in
  let iterations = ref 0 in
  let bland_threshold = (max_iterations / 2) + 100 in
  let reduced = Array.make ncols 0.0 in
  let finished = ref None in
  while !finished = None do
    if !iterations >= max_iterations then finished := Some `Limit
    else begin
      (* Reduced costs d_j = c_j - c_B . (column j of the tableau). *)
      for j = 0 to ncols - 1 do
        reduced.(j) <- cost.(j)
      done;
      for i = 0 to m - 1 do
        let cb = cost.(t.basis.(i)) in
        if cb <> 0.0 then begin
          let row = t.a.(i) in
          for j = 0 to ncols - 1 do
            reduced.(j) <- reduced.(j) -. (cb *. row.(j))
          done
        end
      done;
      (* Entering variable. *)
      let use_bland = !iterations > bland_threshold in
      let enter = ref (-1) and enter_dir = ref 1.0 and best = ref eps_cost in
      (try
         for j = 0 to ncols - 1 do
           if not t.is_basic.(j) then begin
             let d = reduced.(j) in
             let eligible_up = (not t.at_upper.(j)) && d > eps_cost in
             let eligible_down =
               t.at_upper.(j) && d < -.eps_cost
             in
             if eligible_up || eligible_down then
               if use_bland then begin
                 enter := j;
                 enter_dir := (if eligible_up then 1.0 else -1.0);
                 raise Exit
               end
               else if Float.abs d > !best then begin
                 best := Float.abs d;
                 enter := j;
                 enter_dir := (if eligible_up then 1.0 else -1.0)
               end
           end
         done
       with Exit -> ());
      if !enter < 0 then finished := Some `Optimal
      else begin
        let j = !enter and dir = !enter_dir in
        (* Ratio test: entering moves by t >= 0 in direction dir; basic i
           changes at rate -dir * a.(i).(j). *)
        let t_best = ref (t.hi.(j) -. t.lo.(j)) in
        let leave_row = ref (-1) in
        for i = 0 to m - 1 do
          let rate = -.dir *. t.a.(i).(j) in
          let b = t.basis.(i) in
          if rate < -.eps_pivot then begin
            let room = t.xval.(b) -. t.lo.(b) in
            if Float.is_finite t.lo.(b) then begin
              let ti = room /. -.rate in
              if ti < !t_best -. eps_pivot
                 || (ti < !t_best +. eps_pivot
                     && (!leave_row < 0 || b < t.basis.(!leave_row)))
              then begin
                t_best := max 0.0 ti;
                leave_row := i
              end
            end
          end
          else if rate > eps_pivot then begin
            if Float.is_finite t.hi.(b) then begin
              let room = t.hi.(b) -. t.xval.(b) in
              let ti = room /. rate in
              if ti < !t_best -. eps_pivot
                 || (ti < !t_best +. eps_pivot
                     && (!leave_row < 0 || b < t.basis.(!leave_row)))
              then begin
                t_best := max 0.0 ti;
                leave_row := i
              end
            end
          end
        done;
        if Float.is_finite !t_best = false then finished := Some `Unbounded
        else begin
          let step = !t_best in
          (* Move entering variable and update basic values. *)
          t.xval.(j) <- t.xval.(j) +. (dir *. step);
          for i = 0 to m - 1 do
            let rate = -.dir *. t.a.(i).(j) in
            if rate <> 0.0 then
              t.xval.(t.basis.(i)) <- t.xval.(t.basis.(i)) +. (rate *. step)
          done;
          if !leave_row < 0 then begin
            (* Bound flip: entering stays nonbasic at the other bound. *)
            t.at_upper.(j) <- not t.at_upper.(j);
            t.xval.(j) <- (if t.at_upper.(j) then t.hi.(j) else t.lo.(j))
          end
          else begin
            let r = !leave_row in
            let leaving = t.basis.(r) in
            (* Snap the leaving variable exactly onto the bound it hit. *)
            let rate = -.dir *. t.a.(r).(j) in
            if rate < 0.0 then begin
              t.xval.(leaving) <- t.lo.(leaving);
              t.at_upper.(leaving) <- false
            end
            else begin
              t.xval.(leaving) <- t.hi.(leaving);
              t.at_upper.(leaving) <- true
            end;
            t.is_basic.(leaving) <- false;
            t.is_basic.(j) <- true;
            t.basis.(r) <- j;
            (* Gauss-Jordan pivot on (r, j). *)
            let pivot = t.a.(r).(j) in
            let row_r = t.a.(r) in
            if Float.abs pivot < eps_pivot then
              (* Numerically degenerate; treat as stalled iteration. *)
              ()
            else begin
              for k = 0 to ncols - 1 do
                row_r.(k) <- row_r.(k) /. pivot
              done;
              for i = 0 to m - 1 do
                if i <> r then begin
                  let f = t.a.(i).(j) in
                  if f <> 0.0 then begin
                    let row_i = t.a.(i) in
                    for k = 0 to ncols - 1 do
                      row_i.(k) <- row_i.(k) -. (f *. row_r.(k))
                    done
                  end
                end
              done
            end
          end;
          incr iterations
        end
      end
    end
  done;
  (Option.get !finished, !iterations)

let m_lp_solves =
  Pb_obs.Metrics.counter ~help:"LP relaxations solved"
    "pb_lp_solves_total"

let m_lp_pivots =
  Pb_obs.Metrics.counter ~help:"Simplex pivots across both phases"
    "pb_lp_pivots_total"

let solve_raw ?max_iterations model =
  let n = Model.num_vars model in
  let crossed = ref false in
  for i = 0 to n - 1 do
    let lo, hi = Model.bounds model i in
    if lo > hi then crossed := true
  done;
  if !crossed then
    (* Branch-and-bound can tighten a variable into an empty domain. *)
    { status = Infeasible; x = Array.make n 0.0; objective = nan; iterations = 0 }
  else
  let t, nstruct, base_cols = build model in
  assert (nstruct = n);
  let max_iterations =
    match max_iterations with
    | Some k -> k
    | None -> (200 * (t.m + n)) + 1000
  in
  let extract status iters =
    let x = Array.sub t.xval 0 n in
    { status; x; objective = Model.objective_value model x; iterations = iters }
  in
  (* Phase 1: drive artificials to zero (maximize their negated sum). *)
  let iters1 =
    if t.ncols > base_cols then begin
      let cost = Array.make t.ncols 0.0 in
      for j = base_cols to t.ncols - 1 do
        cost.(j) <- -1.0
      done;
      let outcome, iters = run_phase t cost max_iterations in
      let infeasibility = ref 0.0 in
      for j = base_cols to t.ncols - 1 do
        infeasibility := !infeasibility +. t.xval.(j)
      done;
      match outcome with
      | `Limit -> Error (extract Iteration_limit iters)
      | `Unbounded ->
          (* Phase-1 objective is bounded by construction. *)
          Error (extract Infeasible iters)
      | `Optimal ->
          if !infeasibility > 1e-6 then Error (extract Infeasible iters)
          else begin
            (* Pin artificials at zero for phase 2. *)
            for j = base_cols to t.ncols - 1 do
              t.lo.(j) <- 0.0;
              t.hi.(j) <- 0.0;
              if not t.is_basic.(j) then t.at_upper.(j) <- false
            done;
            Ok iters
          end
    end
    else Ok 0
  in
  match iters1 with
  | Error sol -> sol
  | Ok iters1 ->
      let cost = Array.make t.ncols 0.0 in
      let dense = Model.objective_terms model in
      Array.blit dense 0 cost 0 n;
      let outcome, iters2 = run_phase t cost max_iterations in
      let total = iters1 + iters2 in
      (match outcome with
      | `Optimal -> extract Optimal total
      | `Unbounded -> extract Unbounded total
      | `Limit -> extract Iteration_limit total)

let solve ?max_iterations model =
  let sol = solve_raw ?max_iterations model in
  Pb_obs.Metrics.incr m_lp_solves;
  Pb_obs.Metrics.incr ~by:sol.iterations m_lp_pivots;
  sol
