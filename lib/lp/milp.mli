(** Branch-and-bound mixed-integer solver over {!Simplex}.

    Depth-first search with best-bound tie-breaking, most-fractional
    branching, an LP-rounding primal heuristic to obtain early incumbents,
    and resource governance through {!Pb_util.Gov}: one token poll per
    node pop, so a cancellation, deadline, or node-budget stop returns
    the best incumbent found so far as [Feasible]. This is the
    "state-of-the-art constraint optimization solver" role of §4 — exact
    on the instance sizes the experiments use. *)

type status =
  | Optimal         (** proven optimal integer solution *)
  | Feasible
      (** stopped early (node budget, deadline, or cancellation via the
          governance token); best incumbent returned *)
  | Infeasible
  | Unbounded

type solution = {
  status : status;
  x : float array;        (** incumbent (integral) point, model order *)
  objective : float;      (** original-sense objective at [x] *)
  nodes : int;            (** branch-and-bound nodes explored *)
  lp_iterations : int;    (** total simplex pivots *)
}

type node_order =
  | Dfs  (** depth-first (stack); low memory, good with strong incumbents *)
  | Best_bound
      (** always expand the frontier node with the best parent relaxation
          bound; typically fewer nodes, more frontier bookkeeping *)

val solve :
  ?gov:Pb_util.Gov.t ->
  ?eps:float ->
  ?node_order:node_order ->
  ?presolve:bool ->
  Model.t ->
  solution
(** [solve model] finds an optimal integral assignment. [gov] governs
    the search — its [Milp_nodes] budget replaces the old ad-hoc
    [max_nodes], its deadline the old [time_limit], and cancelling it
    stops the solve at the next node pop; all three return the best
    incumbent as {!Feasible}. When omitted, a private
    [Pb_util.Gov.create ()] supplies the historical default of 200_000
    nodes and no deadline. [eps] is the integrality tolerance (default
    1e-6); [node_order] defaults to {!Dfs}; [presolve] (default false)
    runs {!Presolve} first and solves the reduced model (same variable
    indexing, so the solution vector needs no translation). The model's
    variable bounds are mutated during the search and restored before
    returning. *)

val solve_all :
  ?max_solutions:int ->
  ?gov:Pb_util.Gov.t ->
  Model.t ->
  (float array * float) list
(** Enumerate successive optimal-then-suboptimal solutions of a pure
    binary model by re-solving with no-good cuts (§5 "solvers return a
    single package solution at a time"): after each solve, a constraint
    excluding exactly that 0/1 assignment is added and the model is solved
    again, until infeasible or [max_solutions] (default 10) is reached.
    Returns (point, objective) in discovery order. Requires every integer
    variable to be binary; raises [Invalid_argument] otherwise. *)
