(** Static analysis of PaQL queries: classification of constraints and
    linearization of SUCH THAT formulas.

    The evaluation engine (pb_core) decides between solver-based and
    search-based strategies by asking this module whether the global
    constraints and the objective are {e linearizable}: expressible as
    Boolean combinations of comparisons between linear combinations of
    package aggregates and constants. COUNT and SUM are directly linear in
    the tuple-multiplicity variables; AVG(e) cmp c is linearized as
    SUM(e) - c·COUNT cmp 0 (plus COUNT ≥ 1); MIN/MAX comparisons become
    per-tuple restrictions or at-least-one-witness constraints. Anything
    else (subqueries, LIKE over aggregates, products of aggregates, ...)
    is reported as opaque, and the engine falls back to validator-driven
    search — mirroring the paper's observation that "solvers cannot
    usually handle non-linear global constraints; hence evaluating such
    queries requires different methods" (§5). *)

type cmp = Le | Ge | Lt | Gt

type term = Count_term | Sum_term of Pb_sql.Ast.expr
(** [Sum_term e]: Σ over package tuples of the per-tuple value of [e]. *)

type atom =
  | Linear of { terms : (float * term) list; cmp : cmp; rhs : float }
  | Avg_atom of { arg : Pb_sql.Ast.expr; cmp : cmp; rhs : float }
  | Extremum of {
      maximum : bool;  (** true = MAX, false = MIN *)
      arg : Pb_sql.Ast.expr;
      cmp : cmp;
      rhs : float;
    }

type formula =
  | True
  | False
  | Atom of atom
  | And of formula list
  | Or of formula list

val cmp_to_string : cmp -> string
val atom_to_string : atom -> string
val formula_to_string : formula -> string

val eval_cmp : cmp -> float -> float -> bool
(** [eval_cmp c lhs rhs] applies the comparison. *)

val linearize : Pb_sql.Ast.expr -> (formula, string) result
(** Linearize a SUCH THAT expression; NOT is pushed onto atoms (flipping
    comparisons), BETWEEN and = expand to conjunctions, <> to a
    disjunction. The [Error] carries the first non-linearizable fragment. *)

val linearize_objective :
  Pb_sql.Ast.expr -> ((float * term) list, string) result
(** Objectives must be a linear combination of COUNT/SUM aggregates. *)

val check_base_constraint : Ast.t -> (unit, string) result
(** WHERE must be aggregate-free and reference only the input alias. *)

val check_global_constraint : Ast.t -> (unit, string) result
(** Column references inside SUCH THAT / objective aggregates must resolve
    against the package alias (or be unqualified). *)

val validate_query : Ast.t -> (unit, string) result
(** Both checks. *)

val aggregate_arguments : Ast.t -> Pb_sql.Ast.expr list
(** The distinct aggregate argument expressions (the [e] of SUM(e),
    AVG(e), MIN(e), MAX(e)) appearing in SUCH THAT and the objective, in
    first-appearance order (SUCH THAT first). These are the attributes a
    package's global constraints actually depend on — the partitioning
    key of the SketchRefine strategy: tuples that agree on all of them
    are interchangeable for every global constraint. COUNT contributes
    nothing (it is attribute-free). *)
