module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Value = Pb_relation.Value
module Executor = Pb_sql.Executor
module Table = Pb_store.Table

(* Candidates in columnar form: the input table's image plus the selected
   distinct-row ids in original row order (candidate index i is row
   [positions.(i)]), so PaQL coefficient extraction can run batch kernels
   instead of per-tuple interpretation. *)
type batch = {
  table : Table.t;
  schema : Schema.t;  (* input-alias-qualified *)
  positions : int array;  (* candidate index -> distinct row id *)
}

let candidates_batch db (q : Ast.t) =
  if not (Pb_store.Mode.columnar ()) then None
  else
    match Pb_sql.Database.find db q.input_relation with
    | None -> None (* let [candidates] raise its usual error *)
    | Some rel -> (
        let table = Pb_sql.Database.columnar db q.input_relation rel in
        let schema = Schema.qualify q.input_alias (Relation.schema rel) in
        let keep =
          match q.where with
          | None -> Some None
          | Some pred -> (
              match Pb_sql.Columnar.bool_kernel schema table pred with
              | Some k -> Some (Some (Pb_sql.Columnar.selection table k))
              | None -> None)
        in
        match keep with
        | None -> None
        | Some sel ->
            let hit id =
              match sel with
              | None -> true
              | Some s -> Bytes.get s id = '\001'
            in
            let out = ref [] in
            (match Table.order table with
            | Some ord ->
                Array.iter (fun id -> if hit id then out := id :: !out) ord
            | None ->
                for id = 0 to Table.distinct table - 1 do
                  if hit id then out := id :: !out
                done);
            Some { table; schema; positions = Array.of_list (List.rev !out) })

let batch_candidates b =
  let mat = Table.row_materializer b.table in
  Relation.create b.schema (Array.to_list (Array.map mat b.positions))

let batch_values b ~schema expr =
  match Pb_sql.Batch.compile schema b.table expr with
  | None -> None
  | Some k -> (
      let module B = Pb_sql.Batch in
      match k.B.kind with
      | B.K_str ->
          (* The row path warns per non-numeric tuple before substituting
             0; keep that diagnostic by falling back. *)
          None
      | B.K_num | B.K_bool ->
          let n = Table.distinct b.table in
          let vals = Array.make n 0.0 in
          let lo = ref 0 and chunks = ref 0 in
          while !lo < n do
            let len = min B.chunk (n - !lo) in
            incr chunks;
            (match k.B.run ~lo:!lo ~len with
            | B.Num (v, nulls) ->
                (* NULL maps to 0, exactly like the row path's
                   [Value.to_float = None] substitution. *)
                for i = 0 to len - 1 do
                  if not (B.null_at nulls i) then vals.(!lo + i) <- v.(i)
                done
            | B.B3 bits ->
                for i = 0 to len - 1 do
                  if Bytes.get bits i = '\001' then vals.(!lo + i) <- 1.0
                done
            | B.Sv _ -> assert false);
            lo := !lo + len
          done;
          Table.tick_chunks !chunks;
          Some (Array.map (fun id -> vals.(id)) b.positions))

let candidates db (q : Ast.t) =
  match candidates_batch db q with
  | Some b -> batch_candidates b
  | None -> (
      let rel = Pb_sql.Database.find_exn db q.input_relation in
      let qualified = Relation.rename q.input_alias rel in
      match q.where with
      | None -> qualified
      | Some pred ->
          let schema = Relation.schema qualified in
          (* The base predicate runs once per input tuple: compile it,
             keeping the interpreter (with db, for subqueries) as
             fallback. *)
          let pred_fn =
            Pb_sql.Compile.predicate
              ~fallback:(fun row e -> Executor.eval_expr ~db schema row e)
              schema pred
          in
          Relation.filter pred_fn qualified)

let empty_package db (q : Ast.t) =
  Package.create (candidates db q) ~alias:q.package_alias

let respects_multiplicity (q : Ast.t) pkg =
  let cap = Ast.max_multiplicity q in
  List.for_all (fun i -> Package.multiplicity pkg i <= cap) (Package.support pkg)

let eval_over_package ?db (q : Ast.t) pkg expr =
  ignore q;
  let materialized = Package.materialize pkg in
  let schema = Relation.schema materialized in
  let group = Relation.to_list materialized in
  Executor.eval_agg_expr ?db schema group expr

let satisfies_global ?db (q : Ast.t) pkg =
  match q.such_that with
  | None -> true
  | Some pred -> Value.truthy (eval_over_package ?db q pkg pred)

let is_valid ?db q pkg = respects_multiplicity q pkg && satisfies_global ?db q pkg

let objective_value ?db (q : Ast.t) pkg =
  match q.objective with
  | None -> None
  | Some (_, e) -> Value.to_float (eval_over_package ?db q pkg e)

let better dir a b =
  match dir with Ast.Maximize -> a > b | Ast.Minimize -> a < b

let compare_quality (q : Ast.t) a b =
  match q.objective with
  | None -> 0
  | Some (dir, _) -> (
      match (objective_value q a, objective_value q b) with
      | None, None -> 0
      | None, Some _ -> -1
      | Some _, None -> 1
      | Some va, Some vb ->
          if better dir va vb then 1 else if better dir vb va then -1 else 0)
