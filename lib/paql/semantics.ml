module Relation = Pb_relation.Relation
module Value = Pb_relation.Value
module Executor = Pb_sql.Executor

let candidates db (q : Ast.t) =
  let rel = Pb_sql.Database.find_exn db q.input_relation in
  let qualified = Relation.rename q.input_alias rel in
  match q.where with
  | None -> qualified
  | Some pred ->
      let schema = Relation.schema qualified in
      (* The base predicate runs once per input tuple: compile it, keeping
         the interpreter (with db, for subqueries) as fallback. *)
      let pred_fn =
        Pb_sql.Compile.predicate
          ~fallback:(fun row e -> Executor.eval_expr ~db schema row e)
          schema pred
      in
      Relation.filter pred_fn qualified

let empty_package db (q : Ast.t) =
  Package.create (candidates db q) ~alias:q.package_alias

let respects_multiplicity (q : Ast.t) pkg =
  let cap = Ast.max_multiplicity q in
  List.for_all (fun i -> Package.multiplicity pkg i <= cap) (Package.support pkg)

let eval_over_package ?db (q : Ast.t) pkg expr =
  ignore q;
  let materialized = Package.materialize pkg in
  let schema = Relation.schema materialized in
  let group = Relation.to_list materialized in
  Executor.eval_agg_expr ?db schema group expr

let satisfies_global ?db (q : Ast.t) pkg =
  match q.such_that with
  | None -> true
  | Some pred -> Value.truthy (eval_over_package ?db q pkg pred)

let is_valid ?db q pkg = respects_multiplicity q pkg && satisfies_global ?db q pkg

let objective_value ?db (q : Ast.t) pkg =
  match q.objective with
  | None -> None
  | Some (_, e) -> Value.to_float (eval_over_package ?db q pkg e)

let better dir a b =
  match dir with Ast.Maximize -> a > b | Ast.Minimize -> a < b

let compare_quality (q : Ast.t) a b =
  match q.objective with
  | None -> 0
  | Some (dir, _) -> (
      match (objective_value q a, objective_value q b) with
      | None, None -> 0
      | None, Some _ -> -1
      | Some _, None -> 1
      | Some va, Some vb ->
          if better dir va vb then 1 else if better dir vb va then -1 else 0)
