module Sql = Pb_sql.Ast
module Value = Pb_relation.Value

type cmp = Le | Ge | Lt | Gt

type term = Count_term | Sum_term of Sql.expr

type atom =
  | Linear of { terms : (float * term) list; cmp : cmp; rhs : float }
  | Avg_atom of { arg : Sql.expr; cmp : cmp; rhs : float }
  | Extremum of { maximum : bool; arg : Sql.expr; cmp : cmp; rhs : float }

type formula =
  | True
  | False
  | Atom of atom
  | And of formula list
  | Or of formula list

let cmp_to_string = function Le -> "<=" | Ge -> ">=" | Lt -> "<" | Gt -> ">"

let term_to_string = function
  | Count_term -> "COUNT(*)"
  | Sum_term e -> "SUM(" ^ Sql.expr_to_string e ^ ")"

let atom_to_string = function
  | Linear { terms; cmp; rhs } ->
      let part (c, t) =
        if c = 1.0 then term_to_string t
        else Printf.sprintf "%g*%s" c (term_to_string t)
      in
      Printf.sprintf "%s %s %g"
        (String.concat " + " (List.map part terms))
        (cmp_to_string cmp) rhs
  | Avg_atom { arg; cmp; rhs } ->
      Printf.sprintf "AVG(%s) %s %g" (Sql.expr_to_string arg)
        (cmp_to_string cmp) rhs
  | Extremum { maximum; arg; cmp; rhs } ->
      Printf.sprintf "%s(%s) %s %g"
        (if maximum then "MAX" else "MIN")
        (Sql.expr_to_string arg) (cmp_to_string cmp) rhs

let rec formula_to_string = function
  | True -> "TRUE"
  | False -> "FALSE"
  | Atom a -> atom_to_string a
  | And fs ->
      "(" ^ String.concat " AND " (List.map formula_to_string fs) ^ ")"
  | Or fs -> "(" ^ String.concat " OR " (List.map formula_to_string fs) ^ ")"

let eval_cmp cmp lhs rhs =
  match cmp with
  | Le -> lhs <= rhs
  | Ge -> lhs >= rhs
  | Lt -> lhs < rhs
  | Gt -> lhs > rhs

(* Negation: NOT (a <= b) is a > b. *)
let flip_cmp = function Le -> Gt | Ge -> Lt | Lt -> Ge | Gt -> Le

(* Division by a negative: k*a <= b with k < 0 is a >= b/k. *)
let mirror_cmp = function Le -> Ge | Ge -> Le | Lt -> Gt | Gt -> Lt

(* ---- Linear combinations of aggregates ---------------------------- *)

type agg_ref = A_count | A_sum of Sql.expr | A_avg of Sql.expr | A_min of Sql.expr | A_max of Sql.expr

type combo = { const : float; aggs : (float * agg_ref) list }

let ( let* ) = Result.bind

let const_only c = { const = c; aggs = [] }

let combo_add a b = { const = a.const +. b.const; aggs = a.aggs @ b.aggs }

let combo_scale k c =
  { const = k *. c.const; aggs = List.map (fun (x, a) -> (k *. x, a)) c.aggs }

let rec combo_of_expr (e : Sql.expr) : (combo, string) result =
  match e with
  | Sql.Lit v -> (
      match Value.to_float v with
      | Some x -> Ok (const_only x)
      | None -> Error ("non-numeric literal " ^ Value.to_string v))
  | Sql.Agg (Sql.Count_star, _) -> Ok { const = 0.0; aggs = [ (1.0, A_count) ] }
  | Sql.Agg (Sql.Count, Some _) ->
      (* COUNT(arg) counts non-NULL values; for package evaluation over a
         NULL-free candidate relation it coincides with COUNT over all. *)
      Ok { const = 0.0; aggs = [ (1.0, A_count) ] }
  | Sql.Agg (Sql.Sum, Some arg) -> Ok { const = 0.0; aggs = [ (1.0, A_sum arg) ] }
  | Sql.Agg (Sql.Avg, Some arg) -> Ok { const = 0.0; aggs = [ (1.0, A_avg arg) ] }
  | Sql.Agg (Sql.Min, Some arg) -> Ok { const = 0.0; aggs = [ (1.0, A_min arg) ] }
  | Sql.Agg (Sql.Max, Some arg) -> Ok { const = 0.0; aggs = [ (1.0, A_max arg) ] }
  | Sql.Agg (f, None) -> Error (Sql.agg_to_string f ^ " without argument")
  | Sql.Unary_minus e ->
      let* c = combo_of_expr e in
      Ok (combo_scale (-1.0) c)
  | Sql.Binop (Sql.Add, a, b) ->
      let* ca = combo_of_expr a in
      let* cb = combo_of_expr b in
      Ok (combo_add ca cb)
  | Sql.Binop (Sql.Sub, a, b) ->
      let* ca = combo_of_expr a in
      let* cb = combo_of_expr b in
      Ok (combo_add ca (combo_scale (-1.0) cb))
  | Sql.Binop (Sql.Mul, a, b) -> (
      let* ca = combo_of_expr a in
      let* cb = combo_of_expr b in
      match (ca.aggs, cb.aggs) with
      | [], _ -> Ok (combo_scale ca.const cb)
      | _, [] -> Ok (combo_scale cb.const ca)
      | _ -> Error "product of aggregates is not linear")
  | Sql.Binop (Sql.Div, a, b) -> (
      let* ca = combo_of_expr a in
      let* cb = combo_of_expr b in
      match cb.aggs with
      | [] when cb.const <> 0.0 -> Ok (combo_scale (1.0 /. cb.const) ca)
      | [] -> Error "division by zero in global constraint"
      | _ -> Error "division by an aggregate is not linear")
  | Sql.Col c -> Error ("bare column " ^ c ^ " in a global constraint")
  | e -> Error ("non-linear fragment: " ^ Sql.expr_to_string e)

(* Classify [lhs cmp rhs] (both combos) into an atom. *)
let atom_of_combos lhs cmp rhs =
  (* Move everything to the left: terms cmp rhs_const. *)
  let moved = combo_add lhs (combo_scale (-1.0) rhs) in
  let rhs_const = -.moved.const in
  let has_special =
    List.exists
      (fun (_, a) ->
        match a with A_avg _ | A_min _ | A_max _ -> true | _ -> false)
      moved.aggs
  in
  if not has_special then
    let terms =
      List.map
        (fun (c, a) ->
          match a with
          | A_count -> (c, Count_term)
          | A_sum e -> (c, Sum_term e)
          | A_avg _ | A_min _ | A_max _ -> assert false)
        moved.aggs
    in
    if terms = [] then
      (* Constant comparison: decide now. *)
      Ok (if eval_cmp cmp 0.0 rhs_const then `Const true else `Const false)
    else Ok (`Atom (Linear { terms; cmp; rhs = rhs_const }))
  else
    match moved.aggs with
    | [ (coef, special) ] when coef <> 0.0 ->
        let rhs = rhs_const /. coef in
        let cmp = if coef > 0.0 then cmp else mirror_cmp cmp in
        (match special with
        | A_avg arg -> Ok (`Atom (Avg_atom { arg; cmp; rhs }))
        | A_min arg -> Ok (`Atom (Extremum { maximum = false; arg; cmp; rhs }))
        | A_max arg -> Ok (`Atom (Extremum { maximum = true; arg; cmp; rhs }))
        | A_count | A_sum _ -> assert false)
    | _ -> Error "AVG/MIN/MAX may not be combined with other aggregates"

let comparison lhs cmp rhs negated =
  let cmp = if negated then flip_cmp cmp else cmp in
  let* l = combo_of_expr lhs in
  let* r = combo_of_expr rhs in
  let* a = atom_of_combos l cmp r in
  match a with
  | `Const true -> Ok True
  | `Const false -> Ok False
  | `Atom a -> Ok (Atom a)

let rec linearize_neg negated (e : Sql.expr) : (formula, string) result =
  match e with
  | Sql.Lit (Value.Bool b) ->
      Ok (if b <> negated then True else False)
  | Sql.Not e -> linearize_neg (not negated) e
  | Sql.Binop (Sql.And, a, b) ->
      let* fa = linearize_neg negated a in
      let* fb = linearize_neg negated b in
      Ok (if negated then Or [ fa; fb ] else And [ fa; fb ])
  | Sql.Binop (Sql.Or, a, b) ->
      let* fa = linearize_neg negated a in
      let* fb = linearize_neg negated b in
      Ok (if negated then And [ fa; fb ] else Or [ fa; fb ])
  | Sql.Binop (Sql.Le, a, b) -> comparison a Le b negated
  | Sql.Binop (Sql.Lt, a, b) -> comparison a Lt b negated
  | Sql.Binop (Sql.Ge, a, b) -> comparison a Ge b negated
  | Sql.Binop (Sql.Gt, a, b) -> comparison a Gt b negated
  | Sql.Binop (Sql.Eq, a, b) ->
      if negated then
        let* lt = comparison a Lt b false in
        let* gt = comparison a Gt b false in
        Ok (Or [ lt; gt ])
      else
        let* le = comparison a Le b false in
        let* ge = comparison a Ge b false in
        Ok (And [ le; ge ])
  | Sql.Binop (Sql.Neq, a, b) -> linearize_neg (not negated) (Sql.Binop (Sql.Eq, a, b))
  | Sql.Between (e, lo, hi) ->
      if negated then
        let* below = comparison e Lt lo false in
        let* above = comparison e Gt hi false in
        Ok (Or [ below; above ])
      else
        let* ge = comparison e Ge lo false in
        let* le = comparison e Le hi false in
        Ok (And [ ge; le ])
  | e -> Error ("non-linearizable global constraint: " ^ Sql.expr_to_string e)

(* Collapse True/False through the Boolean structure so constant-foldable
   inputs yield the canonical True/False. *)
let rec simplify = function
  | And fs ->
      let fs = List.map simplify fs in
      if List.mem False fs then False
      else (
        match List.filter (fun f -> f <> True) fs with
        | [] -> True
        | [ f ] -> f
        | fs -> And fs)
  | Or fs ->
      let fs = List.map simplify fs in
      if List.mem True fs then True
      else (
        match List.filter (fun f -> f <> False) fs with
        | [] -> False
        | [ f ] -> f
        | fs -> Or fs)
  | (True | False | Atom _) as f -> f

let linearize e = Result.map simplify (linearize_neg false e)

let linearize_objective e =
  let* c = combo_of_expr e in
  let* terms =
    List.fold_left
      (fun acc (coef, a) ->
        let* acc = acc in
        match a with
        | A_count -> Ok ((coef, Count_term) :: acc)
        | A_sum arg -> Ok ((coef, Sum_term arg) :: acc)
        | A_avg _ | A_min _ | A_max _ ->
            Error "AVG/MIN/MAX objectives are not linear")
      (Ok []) c.aggs
  in
  (* The constant offset does not affect the argmax; drop it. *)
  Ok (List.rev terms)

(* ---- Well-formedness checks --------------------------------------- *)

let rec iter_expr f (e : Sql.expr) =
  f e;
  match e with
  | Sql.Lit _ | Sql.Col _ -> ()
  | Sql.Unary_minus x | Sql.Not x | Sql.Is_null (x, _) | Sql.Like (x, _, _) ->
      iter_expr f x
  | Sql.Binop (_, a, b) -> iter_expr f a; iter_expr f b
  | Sql.Between (a, b, c) -> iter_expr f a; iter_expr f b; iter_expr f c
  | Sql.In_list (x, xs, _) -> iter_expr f x; List.iter (iter_expr f) xs
  | Sql.In_query (x, _, _) -> iter_expr f x
  | Sql.Exists _ -> ()
  | Sql.Agg (_, Some x) -> iter_expr f x
  | Sql.Agg (_, None) -> ()
  | Sql.Func (_, xs) -> List.iter (iter_expr f) xs
  | Sql.Case (branches, default) ->
      List.iter
        (fun (c, e) ->
          iter_expr f c;
          iter_expr f e)
        branches;
      Option.iter (iter_expr f) default

let qualifier name =
  match String.index_opt name '.' with
  | Some i -> Some (String.sub name 0 i)
  | None -> None

let check_base_constraint (q : Ast.t) =
  match q.where with
  | None -> Ok ()
  | Some e -> (
      let bad = ref None in
      iter_expr
        (fun node ->
          if !bad = None then
            match node with
            | Sql.Agg _ -> bad := Some "aggregate in WHERE (use SUCH THAT)"
            | Sql.Col name -> (
                match qualifier name with
                | Some qual
                  when qual <> q.input_alias
                       && qual <> String.lowercase_ascii q.input_relation ->
                    bad :=
                      Some
                        (Printf.sprintf
                           "WHERE references %s, but base constraints may \
                            only use the input alias %s"
                           name q.input_alias)
                | _ -> ())
            | _ -> ())
        e;
      match !bad with None -> Ok () | Some msg -> Error msg)

let check_global_constraint (q : Ast.t) =
  let check_expr e =
    let bad = ref None in
    iter_expr
      (fun node ->
        if !bad = None then
          match node with
          | Sql.Col name -> (
              match qualifier name with
              | Some qual when qual <> q.package_alias ->
                  bad :=
                    Some
                      (Printf.sprintf
                         "global constraint references %s, but package \
                          columns are qualified by %s"
                         name q.package_alias)
              | _ -> ())
          | _ -> ())
      e;
    !bad
  in
  let exprs =
    Option.to_list q.such_that
    @ match q.objective with Some (_, e) -> [ e ] | None -> []
  in
  match List.find_map check_expr exprs with
  | Some msg -> Error msg
  | None -> Ok ()

let validate_query q =
  let* () = check_base_constraint q in
  check_global_constraint q

(* ---- Constraint-attribute extraction ------------------------------ *)

let aggregate_arguments (q : Ast.t) =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let visit e =
    iter_expr
      (fun node ->
        match node with
        | Sql.Agg (_, Some arg) ->
            let key = Sql.expr_to_string arg in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              out := arg :: !out
            end
        | _ -> ())
      e
  in
  Option.iter visit q.such_that;
  (match q.objective with Some (_, e) -> visit e | None -> ());
  List.rev !out
