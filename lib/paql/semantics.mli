(** Reference semantics of PaQL: candidate generation, package validation
    and objective evaluation.

    Validation evaluates the SUCH THAT clause with SQL aggregate semantics
    by treating the whole package as a single group — exactly how the
    paper's system "uses SQL statements to generate and validate candidate
    packages" (§4 option i). Every evaluation strategy in pb_core is
    checked against this oracle in the test suite. *)

val candidates : Pb_sql.Database.t -> Ast.t -> Pb_relation.Relation.t
(** Input relation restricted to rows satisfying the base constraints,
    with the schema qualified by the input alias. Row order (hence
    candidate indices) follows the stored relation. Raises [Failure] if
    the input table does not exist. Under columnar storage the base
    predicate runs as a batch kernel when it compiles; the result is
    identical either way. *)

type batch = {
  table : Pb_store.Table.t;
  schema : Pb_relation.Schema.t;  (** input-alias-qualified *)
  positions : int array;  (** candidate index -> distinct row id *)
}
(** Columnar view of the candidate set: candidate [i] is distinct row
    [positions.(i)] of [table] (duplicates repeat the id). *)

val candidates_batch : Pb_sql.Database.t -> Ast.t -> batch option
(** Columnar candidate generation; [None] when the storage mode is [Row],
    the input table is missing, or the base predicate doesn't compile to
    a batch kernel. *)

val batch_candidates : batch -> Pb_relation.Relation.t
(** Materialize the batch into exactly what {!candidates} returns. *)

val batch_values :
  batch -> schema:Pb_relation.Schema.t -> Pb_sql.Ast.expr -> float array option
(** Per-candidate float image of [expr] (the {!Pb_core} coefficient
    vectors), evaluated by batch kernels against [schema] (the
    package-alias-qualified view — column positions must align with the
    table). NULLs map to 0 like the row path; [None] when the expression
    doesn't compile or is string-valued (the row path owns its warning). *)

val empty_package : Pb_sql.Database.t -> Ast.t -> Package.t
(** Empty package over [candidates]. *)

val respects_multiplicity : Ast.t -> Package.t -> bool
(** Every multiplicity is at most {!Ast.max_multiplicity}. *)

val satisfies_global : ?db:Pb_sql.Database.t -> Ast.t -> Package.t -> bool
(** SUCH THAT holds (vacuously true when absent). NULL-valued constraints
    (e.g. SUM over an empty package) count as not satisfied, following SQL
    filter semantics. [db] is needed only for subqueries. *)

val is_valid : ?db:Pb_sql.Database.t -> Ast.t -> Package.t -> bool
(** Multiplicity bound + global constraints. Base constraints hold by
    construction for packages built over [candidates]. *)

val objective_value : ?db:Pb_sql.Database.t -> Ast.t -> Package.t -> float option
(** Value of the MAXIMIZE/MINIMIZE expression over the package; [None]
    when the query has no objective or the aggregate is NULL (empty
    package). *)

val better : Ast.direction -> float -> float -> bool
(** [better dir a b]: is objective [a] strictly preferable to [b]? *)

val compare_quality : Ast.t -> Package.t -> Package.t -> int
(** Order two {e valid} packages by the query's objective (positive when
    the first is better); 0 for objective-less queries. Uses SQL NULL
    semantics: a package with a NULL objective loses. *)
