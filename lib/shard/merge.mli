(** Distributed-aggregate planning for the shard router.

    [plan ~table q] decides whether the single-table SELECT [q] over the
    hash-partitioned [table] can be answered by shipping a {e partial}
    aggregation to every shard and merging the partials at the router,
    instead of pulling the shard's rows. When it can, the returned plan
    gives:

    - [partial]: the query each shard runs (in data mode) — the original
      FROM/WHERE, grouped by the original GROUP BY expressions shipped as
      [__g<i>] columns, with each distinct aggregate node shipped as a
      partial [__a<j>];
    - [final]: the query the router runs over the concatenated partials
      installed as table [scratch]. COUNT and COUNT(e) merge by SUM of
      the per-shard counts; SUM, MIN, MAX merge by themselves (SUM skips
      NULL partials, so a shard whose group has only NULLs contributes
      nothing — matching single-node NULL-skipping semantics). HAVING,
      ORDER BY, LIMIT and OFFSET run at the router, on merged values.
      Final items are aliased with the single-node inferred names, so
      headers match byte-for-byte.

    Soundness relies on hash partitioning being disjoint and complete:
    every base row is counted on exactly one shard. Because group keys
    ship by value, a group split across shards merges correctly.

    Returns [None] — the caller falls back to scan-pull — for anything
    whose merged value could differ from the single-node answer: AVG
    (per-shard AVG of partials is not the global AVG, and reconstructing
    it as SUM/COUNT would re-associate float division), DISTINCT,
    compound selects, subqueries, joins, Star items, group-representative
    column references (a bare column that is neither grouped nor
    aggregated reads "the group's first row", which depends on physical
    row order), duplicate output names, ORDER BY on output aliases.

    Float caveat, documented rather than hidden: a merged SUM over
    floats adds per-shard subtotals, re-associating the addition order;
    the result can differ from the single-node sum in the last ulps. *)

type plan = {
  partial : Pb_sql.Ast.select;  (** per-shard query (data mode) *)
  scratch : string;  (** router-side table name holding the partials *)
  final : Pb_sql.Ast.select;  (** merging query over [scratch] *)
}

val scratch_name : string

val plan : table:string -> Pb_sql.Ast.select -> plan option
