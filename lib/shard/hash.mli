(** Stable row-to-shard hash partitioning.

    The whole shared-nothing deployment hangs off one contract: {e every
    participant computes the same shard for the same row, forever}. The
    router routes INSERTs with it, [pb_server --shard i/N] filters its
    tables with it at load, and the PaQL path regroups pulled candidate
    rows with it to rebuild shard-local refine legs — three independent
    computations that must agree. Hence a fixed, self-contained FNV-1a
    (64-bit) over a canonical tagged rendering of the row's values:
    no dependence on [Hashtbl.hash] (whose output may change across
    compiler versions), column names, or schema order beyond the row's
    own value order. Floats hash their IEEE-754 bits, matching the
    data-mode codec's bit-exact float round trip. *)

val hash_row : Pb_relation.Value.t array -> int64

val shard_of_row : shards:int -> Pb_relation.Value.t array -> int
(** Unsigned remainder of {!hash_row} by [shards]; 0 when [shards <= 1]. *)

val filter_shard :
  shards:int -> shard:int -> Pb_relation.Relation.t -> Pb_relation.Relation.t
(** Keep exactly the rows this shard owns. Applying it for every [shard]
    in [0, shards) partitions the relation. *)
