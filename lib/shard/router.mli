(** Shared-nothing shard router.

    A router owns no base data: it speaks wire v2 {e both ways},
    accepting REPL sessions like a [pb_server] and fanning work out to a
    fixed, ordered set of shard servers (each started with
    [pb_server --shard i/N], so shard [i] holds exactly the rows with
    {!Hash.shard_of_row}[ = i]). The shard set is discovered once at
    startup by asking shard 0 for its table list; tables created through
    the router afterwards live in the router-local database only.

    Per-shard traffic flows over one pooled connection protected by a
    per-shard mutex, so the router's descriptor count is O(shards)
    regardless of client count; the trade-off — per-shard serialization
    of in-flight requests — is discussed in DESIGN.md. Every hop
    propagates the surrounding request's remaining deadline
    ({!Pb_util.Gov.remaining_time}) and trace id, so a trace started at
    a client is visible in each shard's [\traces] store, and a deadline
    set at the router cuts shard work short too.

    SQL semantics: the router mirrors the single-node REPL's rendering
    byte-for-byte. SELECTs whose sharded part admits a partial-aggregate
    plan ({!Merge.plan}) ship the partial to every shard in data mode
    and merge at the router; everything else falls back to pulling the
    referenced sharded tables whole ([SELECT *] per shard, concatenated
    in shard order) and executing locally. INSERT routes literal rows by
    {!Hash.shard_of_row} of the evaluated full row; DELETE / UPDATE /
    CREATE INDEX / DROP TABLE broadcast. Note that without an ORDER BY a
    merged or pulled SELECT may order rows differently than a single
    node would — the transcript-identity guarantee is for deterministic
    (ordered) output.

    PaQL: a query over a sharded input pulls the input table, builds
    {!Pb_core.Coeffs} at the router (the sketch side), regroups the
    candidate rows by home shard with the same hash, and runs
    {!Pb_core.Engine} under a [Sketch_refine] strategy whose
    prepartition is exactly those shard groups — refine legs correspond
    to shard-local subproblems while bound/gap proof semantics remain
    SketchRefine's own (the bound sketch is sound for {e any}
    partitioning). *)

type t

exception Shard_error of string
(** Transport failure or non-ok/non-deadline status from a shard;
    rendered in session output as ["shard error: ..."]. *)

val create :
  ?connect_timeout:float -> shards:(string * int) array -> Pb_sql.Database.t -> t
(** [create ~shards local] builds a router over the ordered shard
    endpoints (index in the array {e is} the shard id; it must match
    each server's [--shard i/N]). Blocks until shard 0 answers
    [\tables] (bounded retry, ~5 s), then serves. [local] holds
    router-only tables. [connect_timeout] bounds each shard connect. *)

val session_factory : t -> Pb_net.Server.t -> Pb_net.Server.session_handler
(** Plug into {!Pb_net.Server.start}'s [?session_factory]: sessions are
    stateless closures over the shared router, so any number of
    concurrent clients share the per-shard connection pool. *)

val handle : t -> gov:Pb_util.Gov.t -> string -> Pb_shell.Repl.reaction
(** One REPL input line (SQL script, PaQL query, or [\ ] command),
    rendered exactly like the single-node REPL. Never raises: errors
    become output (["sql error: ..."], ["paql error: ..."],
    ["shard error: ..."], ["cancelled: ..."]). *)

val health_json : t -> string
(** Aggregated health for the router's [/healthz] endpoint:
    [{"status":"ok"|"degraded","shards":[...]}] with one entry per
    shard, each probed over a fresh short-lived wire connection so a
    busy pooled connection cannot mask a live shard or vice versa. *)

val close : t -> unit
(** Drop pooled shard connections (idempotent). *)
