module Ast = Pb_sql.Ast
module Database = Pb_sql.Database
module Executor = Pb_sql.Executor
module Parser = Pb_sql.Parser
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Gov = Pb_util.Gov
module Trace = Pb_obs.Trace
module Metrics = Pb_obs.Metrics
module Client = Pb_net.Client
module Protocol = Pb_net.Protocol
module Wire_data = Pb_net.Wire_data
module Repl = Pb_shell.Repl

exception Shard_error of string

(* ---- state ------------------------------------------------------------ *)

type shard_slot = {
  s_host : string;
  s_port : int;
  s_mu : Mutex.t;
  mutable s_conn : Client.t option;
  s_hist : Metrics.histogram;
}

type t = {
  shards : shard_slot array;
  connect_timeout : float option;
  local : Database.t;  (* router-created tables live only here *)
  mutable sharded : string list;  (* lowercase shard-resident table names *)
  mu : Mutex.t;
}

let fanout_buckets = [ 0.0005; 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 ]

let m_shard_requests =
  Metrics.counter ~help:"requests fanned out to shards"
    "pb_router_shard_requests_total"

let m_merged =
  Metrics.counter ~help:"SELECTs answered by partial-aggregate merge"
    "pb_router_merged_selects_total"

let m_scanpull =
  Metrics.counter ~help:"statements answered by pulling shard rows"
    "pb_router_scanpull_total"

let m_shard_errors =
  Metrics.counter ~help:"shard transport or status failures"
    "pb_router_shard_errors_total"

let is_sharded t name =
  let name = String.lowercase_ascii name in
  Mutex.lock t.mu;
  let r = List.mem name t.sharded in
  Mutex.unlock t.mu;
  r

let shard_count t = Array.length t.shards

(* ---- one request to one shard ----------------------------------------- *)

(* One pooled connection per shard, serialized by a per-shard mutex:
   sessions share it, so the router's fd count stays O(shards) no matter
   how many clients it serves. A transport error drops the connection;
   the next request reconnects. *)
let shard_request t ~gov ?(data = false) i text =
  let slot = t.shards.(i) in
  (match Gov.remaining_time gov with
  | Some d when d <= 0.0 -> raise (Gov.Interrupted Gov.Deadline)
  | _ -> ());
  Mutex.lock slot.s_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock slot.s_mu)
    (fun () ->
      let conn =
        match slot.s_conn with
        | Some c -> c
        | None -> (
            match
              Client.connect ~host:slot.s_host
                ?connect_timeout:t.connect_timeout ~port:slot.s_port ()
            with
            | c ->
                slot.s_conn <- Some c;
                c
            | exception e ->
                Metrics.incr m_shard_errors;
                raise
                  (Shard_error
                     (Printf.sprintf "shard %d (%s:%d) unreachable: %s" i
                        slot.s_host slot.s_port (Printexc.to_string e))))
      in
      Metrics.incr m_shard_requests;
      let deadline = Gov.remaining_time gov in
      let trace = Trace.current_trace_id () in
      let t0 = Unix.gettimeofday () in
      let resp =
        match Client.request ?deadline ?trace ~data conn text with
        | resp -> resp
        | exception e ->
            (* the stream may be desynchronized; reconnect next time *)
            slot.s_conn <- None;
            (try Client.close conn with _ -> ());
            Metrics.incr m_shard_errors;
            raise
              (Shard_error
                 (Printf.sprintf "shard %d request failed: %s" i
                    (Printexc.to_string e)))
      in
      Metrics.observe slot.s_hist (Unix.gettimeofday () -. t0);
      match resp.Protocol.status with
      | Protocol.Ok -> resp.Protocol.body
      | Protocol.Deadline_exceeded -> raise (Gov.Interrupted Gov.Deadline)
      | Protocol.Cancelled -> raise (Gov.Interrupted Gov.Cancelled)
      | status ->
          Metrics.incr m_shard_errors;
          raise
            (Shard_error
               (Printf.sprintf "shard %d answered %s: %s" i
                  (Protocol.status_to_string status) resp.Protocol.body)))

(* Data-mode statement on one shard. SQL-level failures on the shard
   come back as [err] bodies and re-raise here as [Eval_error], so the
   router renders them exactly like a local "sql error: ...". *)
let shard_exec t ~gov i sql =
  let body = shard_request t ~gov ~data:true i sql in
  match Wire_data.decode_error body with
  | Some (_kind, msg) -> raise (Executor.Eval_error msg)
  | None -> (
      match Wire_data.decode_result body with
      | Ok r -> r
      | Error msg ->
          Metrics.incr m_shard_errors;
          raise
            (Shard_error
               (Printf.sprintf "shard %d: bad data-mode body: %s" i msg)))

let shard_exec_rows t ~gov i sql =
  match shard_exec t ~gov i sql with
  | Executor.Rows rel -> rel
  | Executor.Affected _ | Executor.Created ->
      raise (Shard_error (Printf.sprintf "shard %d: expected rows for %s" i sql))

(* Pull a sharded table whole: SELECT * from every shard, concatenated
   in shard order (deterministic). *)
let pull_table t ~gov name =
  Metrics.incr m_scanpull;
  let sql = "SELECT * FROM " ^ name in
  let rels =
    List.init (shard_count t) (fun i -> shard_exec_rows t ~gov i sql)
  in
  match rels with
  | [] -> failwith "router has no shards"
  | first :: _ ->
      Relation.create (Relation.schema first)
        (List.concat_map Relation.to_list rels)

(* ---- referenced tables ------------------------------------------------ *)

let rec tables_of_select acc (q : Ast.select) =
  let acc =
    List.fold_left (fun acc tr -> tr.Ast.rel_name :: acc) acc q.Ast.from
  in
  let exprs =
    List.filter_map
      (function Ast.Star_item -> None | Ast.Expr_item (e, _) -> Some e)
      q.Ast.items
    @ q.Ast.group_by
    @ Option.to_list q.Ast.where
    @ Option.to_list q.Ast.having
    @ List.map fst q.Ast.order_by
  in
  let acc = List.fold_left tables_of_expr acc exprs in
  List.fold_left (fun acc (_, rhs) -> tables_of_select acc rhs) acc q.Ast.compound

and tables_of_expr acc (e : Ast.expr) =
  match e with
  | Ast.Lit _ | Ast.Col _ -> acc
  | Ast.Unary_minus a | Ast.Not a | Ast.Is_null (a, _) | Ast.Like (a, _, _) ->
      tables_of_expr acc a
  | Ast.Binop (_, a, b) -> tables_of_expr (tables_of_expr acc a) b
  | Ast.Between (a, b, c) ->
      tables_of_expr (tables_of_expr (tables_of_expr acc a) b) c
  | Ast.In_list (a, es, _) ->
      List.fold_left tables_of_expr (tables_of_expr acc a) es
  | Ast.In_query (a, q, _) -> tables_of_select (tables_of_expr acc a) q
  | Ast.Exists q -> tables_of_select acc q
  | Ast.Agg (_, eo) -> Option.fold ~none:acc ~some:(tables_of_expr acc) eo
  | Ast.Func (_, es) -> List.fold_left tables_of_expr acc es
  | Ast.Case (arms, eo) ->
      let acc =
        List.fold_left
          (fun acc (c, v) -> tables_of_expr (tables_of_expr acc c) v)
          acc arms
      in
      Option.fold ~none:acc ~some:(tables_of_expr acc) eo

let dedup names =
  List.fold_left
    (fun acc n ->
      let l = String.lowercase_ascii n in
      if List.mem l acc then acc else l :: acc)
    [] names
  |> List.rev

(* ---- SQL over shards --------------------------------------------------- *)

(* Scratch database for the fallback path: pulled copies of every
   referenced sharded table plus references to the local tables (cheap:
   relations are immutable). *)
let scratch_with_tables t ~gov names =
  let db = Database.create () in
  List.iter
    (fun n ->
      if is_sharded t n then Database.put db n (pull_table t ~gov n)
      else
        match Database.find t.local n with
        | Some rel -> Database.put db n rel
        | None -> () (* the executor reports the missing table *))
    names;
  db

let run_select t ~gov q =
  let refs = dedup (tables_of_select [] q) in
  let sharded_refs = List.filter (is_sharded t) refs in
  if sharded_refs = [] then Executor.execute ~gov t.local (Ast.Select_stmt q)
  else
    let merge_plan =
      match sharded_refs with
      | [ table ] when List.length refs = 1 -> Merge.plan ~table q
      | _ -> None
    in
    match merge_plan with
    | Some plan ->
        Metrics.incr m_merged;
        let partial_sql = Ast.select_to_string plan.Merge.partial in
        let partials =
          List.init (shard_count t) (fun i ->
              shard_exec_rows t ~gov i partial_sql)
        in
        let scratch = Database.create () in
        (match partials with
        | [] -> failwith "router has no shards"
        | first :: _ ->
            Database.put scratch plan.Merge.scratch
              (Relation.create (Relation.schema first)
                 (List.concat_map Relation.to_list partials)));
        Executor.execute ~gov scratch (Ast.Select_stmt plan.Merge.final)
    | None ->
        let db = scratch_with_tables t ~gov refs in
        Executor.execute ~gov db (Ast.Select_stmt q)

(* Schema of a sharded table, from shard 0 without moving rows. *)
let sharded_schema t ~gov name =
  Relation.schema (shard_exec_rows t ~gov 0 ("SELECT * FROM " ^ name ^ " LIMIT 0"))

(* Multi-shard DML is NOT atomic: statements apply shard-by-shard with
   no two-phase commit, so a failure (or deadline) at shard k leaves
   the shards that already ran the statement applied while the client
   sees only an error. We cannot undo that without 2PC — out of scope —
   but we make it diagnosable: the error is annotated with exactly
   which shards applied the statement, so an operator can reconcile or
   re-run idempotently. See DESIGN.md, "Serving architecture". *)
let partial_dml_note applied =
  match List.rev applied with
  | [] -> ""
  | l ->
      Printf.sprintf
        " [multi-shard DML is not atomic: shard(s) %s already applied this \
         statement]"
        (String.concat "," (List.map string_of_int l))

let with_partial_dml_note applied f =
  try f () with
  | Shard_error msg -> raise (Shard_error (msg ^ partial_dml_note !applied))
  | Executor.Eval_error msg ->
      raise (Executor.Eval_error (msg ^ partial_dml_note !applied))
  | Gov.Interrupted r when !applied <> [] ->
      (* the fate stays latched on the token, so the response status is
         still deadline/cancelled; this only improves the body *)
      raise
        (Shard_error
           (Printf.sprintf "cancelled (%s)%s" (Gov.reason_to_string r)
              (partial_dml_note !applied)))

let broadcast_statement t ~gov stmt =
  let sql = Ast.statement_to_string stmt in
  let applied = ref [] in
  (* explicit ascending recursion: shard order is part of the error
     contract above, so don't rely on List.init's evaluation order *)
  let rec fan i acc =
    if i = shard_count t then List.rev acc
    else begin
      let r = shard_exec t ~gov i sql in
      applied := i :: !applied;
      fan (i + 1) (r :: acc)
    end
  in
  let results = with_partial_dml_note applied (fun () -> fan 0 []) in
  let affected =
    List.fold_left
      (fun acc r -> match r with Executor.Affected n -> acc + n | _ -> acc)
      0 results
  in
  match results with
  | Executor.Affected _ :: _ -> Executor.Affected affected
  | r :: _ -> r
  | [] -> failwith "router has no shards"

(* Route INSERT ... VALUES rows by the shard hash of the full stored
   row: evaluate each literal row against the table's schema (missing
   columns are NULL, matching single-node INSERT), hash, and send each
   shard one INSERT carrying exactly its rows. *)
let route_insert t ~gov name cols rows =
  let columns = Schema.columns (sharded_schema t ~gov name) in
  let full_row exprs =
    match cols with
    | None ->
        if List.length exprs <> List.length columns then
          raise
            (Executor.Eval_error
               (Printf.sprintf "INSERT arity mismatch for table %s" name));
        Array.of_list (List.map (fun e -> Executor.eval_const e) exprs)
    | Some cs ->
        if List.length cs <> List.length exprs then
          raise
            (Executor.Eval_error
               (Printf.sprintf "INSERT arity mismatch for table %s" name));
        let assoc =
          List.map2 (fun c e -> (String.lowercase_ascii c, e)) cs exprs
        in
        Array.of_list
          (List.map
             (fun { Schema.name = cname; _ } ->
               match List.assoc_opt (String.lowercase_ascii cname) assoc with
               | Some e -> Executor.eval_const e
               | None -> Pb_relation.Value.Null)
             columns)
  in
  let shards = shard_count t in
  let buckets = Array.make shards [] in
  List.iter
    (fun exprs ->
      let s = Hash.shard_of_row ~shards (full_row exprs) in
      buckets.(s) <- exprs :: buckets.(s))
    rows;
  let total = ref 0 in
  let applied = ref [] in
  with_partial_dml_note applied (fun () ->
      Array.iteri
        (fun i bucket ->
          match List.rev bucket with
          | [] -> ()
          | rows_i ->
              let sql =
                Ast.statement_to_string (Ast.Insert (name, cols, rows_i))
              in
              let r = shard_exec t ~gov i sql in
              applied := i :: !applied;
              (match r with
              | Executor.Affected n -> total := !total + n
              | _ -> ()))
        buckets);
  Executor.Affected !total

let run_statement t ~gov stmt =
  match stmt with
  | Ast.Select_stmt q -> run_select t ~gov q
  | Ast.Insert (name, cols, rows) when is_sharded t name ->
      route_insert t ~gov name cols rows
  | (Ast.Delete (name, _) | Ast.Update (name, _, _)) when is_sharded t name ->
      broadcast_statement t ~gov stmt
  | Ast.Create_index { table; _ } when is_sharded t table ->
      broadcast_statement t ~gov stmt
  | Ast.Drop_table name when is_sharded t name ->
      let r = broadcast_statement t ~gov stmt in
      Mutex.lock t.mu;
      t.sharded <-
        List.filter (fun n -> n <> String.lowercase_ascii name) t.sharded;
      Mutex.unlock t.mu;
      r
  | Ast.Create_table (name, _) when is_sharded t name ->
      raise (Executor.Eval_error ("table already exists on shards: " ^ name))
  | stmt -> Executor.execute ~gov t.local stmt

let render_result buf = function
  | Executor.Rows rel ->
      Buffer.add_string buf (Relation.to_table ~max_rows:40 rel)
  | Executor.Affected n ->
      Buffer.add_string buf (Printf.sprintf "%d row(s) affected\n" n)
  | Executor.Created -> Buffer.add_string buf "ok\n"

let ok output = { Repl.output; quit = false }

let run_script t ~gov text =
  match Parser.parse_script text with
  | exception Pb_sql.Parser.Parse_error msg -> ok ("sql error: " ^ msg)
  | statements -> (
      let buf = Buffer.create 256 in
      match
        List.iter (fun stmt -> render_result buf (run_statement t ~gov stmt))
          statements
      with
      | () -> ok (String.trim (Buffer.contents buf))
      | exception Executor.Eval_error msg -> ok ("sql error: " ^ msg)
      | exception Gov.Interrupted r -> ok ("cancelled: " ^ Gov.reason_to_string r)
      | exception Shard_error msg -> ok ("shard error: " ^ msg))

(* ---- PaQL over shards -------------------------------------------------- *)

let proof_suffix = function
  | Pb_core.Engine.Optimal | Pb_core.Engine.Infeasible -> " (proven optimal)"
  | Pb_core.Engine.Feasible -> ""
  | Pb_core.Engine.Cancelled -> " (cancelled)"

let render_paql_result (result : Pb_core.Engine.result) =
  let buf = Buffer.create 256 in
  (match result.Pb_core.Engine.package with
  | Some pkg -> Buffer.add_string buf (Pb_paql.Package.to_string pkg)
  | None -> Buffer.add_string buf "no valid package\n");
  (match result.Pb_core.Engine.objective with
  | Some v -> Buffer.add_string buf (Printf.sprintf "objective: %g\n" v)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "strategy: %s%s, %.3fs" result.Pb_core.Engine.strategy_used
       (proof_suffix result.Pb_core.Engine.proof)
       result.Pb_core.Engine.elapsed);
  ok (Buffer.contents buf)

(* Router-level sketch, shard-level refine: pull the input table, group
   the candidate tuples by their {e home shard} (recomputing the same
   hash the data was partitioned with — the data-mode codec's bit-exact
   values make this agree with shard residency), and hand those groups
   to SketchRefine as its prepartition. Refine legs then correspond to
   shard-local subproblems; the strict-improvement merge and the bound
   sketch's proof semantics are SketchRefine's own. *)
let run_paql t ~gov text =
  match Pb_paql.Parser.parse text with
  | exception Pb_paql.Parser.Parse_error msg -> ok ("paql error: " ^ msg)
  | query -> (
      let input = query.Pb_paql.Ast.input_relation in
      if not (is_sharded t input) then
        match Pb_core.Engine.run ~gov t.local query with
        | exception Failure msg -> ok ("error: " ^ msg)
        | result -> render_paql_result result
      else
        match
          let scratch = Database.create () in
          Database.put scratch input (pull_table t ~gov input);
          let coeffs = Pb_core.Coeffs.make scratch query in
          let shards = shard_count t in
          let buckets = Array.make shards [] in
          let rows = Relation.rows coeffs.Pb_core.Coeffs.candidates in
          Array.iteri
            (fun i row ->
              let s = Hash.shard_of_row ~shards row in
              buckets.(s) <- i :: buckets.(s))
            rows;
          let groups =
            Array.to_list buckets
            |> List.filter_map (fun b ->
                   match List.rev b with
                   | [] -> None
                   | l -> Some (Array.of_list l))
            |> Array.of_list
          in
          let params =
            {
              Pb_core.Sketch_refine.default_params with
              prepartition = (if Array.length groups = 0 then None else Some groups);
            }
          in
          Pb_core.Engine.run ~gov
            ~strategy:(Pb_core.Engine.Sketch_refine params)
            scratch query
        with
        | exception Failure msg -> ok ("error: " ^ msg)
        | exception Shard_error msg -> ok ("shard error: " ^ msg)
        | result -> render_paql_result result)

(* ---- commands ---------------------------------------------------------- *)

let help_text =
  String.concat "\n"
    [
      "pb_router: PaQL and SQL are fanned out over the shard set.";
      "Commands:";
      "  \\help                 this list";
      "  \\tables               sharded tables (union) plus router-local ones";
      "  \\schema TABLE         show a table's columns";
      "  \\shards               list shard endpoints and health";
      "  \\quit                 leave";
    ]

let local_schema t table =
  match Database.find t.local table with
  | None -> ok ("no such table: " ^ table)
  | Some rel ->
      ok
        (String.concat "\n"
           (List.map
              (fun { Schema.name; ty } ->
                Printf.sprintf "%-16s %s" name
                  (Pb_relation.Value.ty_to_string ty))
              (Schema.columns (Relation.schema rel))))

(* Aggregated health: ask every shard its server-level \healthz over the
   query wire (a fresh short-lived connection, so a wedged pooled
   connection cannot make a healthy shard look dead). Degraded when any
   shard is unreachable or non-ok. *)
let health_json t =
  let timeout = Option.value t.connect_timeout ~default:2.0 in
  let entries =
    Array.to_list
      (Array.mapi
         (fun i slot ->
           match
             Client.with_connection ~host:slot.s_host ~connect_timeout:timeout
               ~port:slot.s_port (fun c -> Client.request c "\\healthz")
           with
           | { Protocol.status = Protocol.Ok; body } ->
               (true, Printf.sprintf "{\"shard\":%d,\"health\":%s}" i body)
           | { Protocol.status; body } ->
               ( false,
                 Printf.sprintf "{\"shard\":%d,\"status\":%S,\"error\":%S}" i
                   (Protocol.status_to_string status)
                   body )
           | exception _ ->
               ( false,
                 Printf.sprintf "{\"shard\":%d,\"status\":\"unreachable\"}" i ))
         t.shards)
  in
  let all_ok = List.for_all fst entries in
  Printf.sprintf "{\"status\":%S,\"shards\":[%s]}"
    (if all_ok then "ok" else "degraded")
    (String.concat "," (List.map snd entries))

let shards_text t =
  String.concat "\n"
    (Array.to_list
       (Array.mapi
          (fun i slot -> Printf.sprintf "shard %d  %s:%d" i slot.s_host slot.s_port)
          t.shards))

let list_tables t ~gov =
  (* live union; also refresh the sharded set so tables created on the
     shards after startup become routable *)
  let shard_names =
    String.split_on_char '\n' (shard_request t ~gov 0 "\\tables")
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map String.lowercase_ascii
  in
  Mutex.lock t.mu;
  t.sharded <- shard_names;
  Mutex.unlock t.mu;
  let names =
    List.sort_uniq String.compare (shard_names @ Database.table_names t.local)
  in
  ok (String.concat "\n" names)

let command t ~gov name arg =
  match (name, String.trim arg) with
  | "help", _ -> ok help_text
  | ("quit" | "q"), _ -> { Repl.output = ""; quit = true }
  | "tables", _ -> list_tables t ~gov
  | "schema", table ->
      if is_sharded t table then
        ok (shard_request t ~gov 0 ("\\schema " ^ table))
      else local_schema t table
  | "shards", _ -> ok (shards_text t)
  | "healthz", _ -> ok (health_json t)
  | name, _ -> ok (Printf.sprintf "command not supported by pb_router: \\%s" name)

(* Same dispatch heuristic as the REPL. *)
let is_paql line =
  match Pb_sql.Lexer.tokenize line with
  | exception Pb_sql.Lexer.Lex_error _ -> false
  | tokens ->
      List.exists
        (function Pb_sql.Lexer.Keyword "PACKAGE" -> true | _ -> false)
        tokens

let handle t ~gov line =
  let trimmed = String.trim line in
  if trimmed = "" then ok ""
  else if trimmed.[0] = '\\' then begin
    let body = String.sub trimmed 1 (String.length trimmed - 1) in
    match String.index_opt body ' ' with
    | Some i ->
        command t ~gov (String.sub body 0 i)
          (String.sub body (i + 1) (String.length body - i - 1))
    | None -> command t ~gov body ""
  end
  else
    let line =
      let n = String.length trimmed in
      if n > 0 && trimmed.[n - 1] = ';' then String.sub trimmed 0 (n - 1)
      else trimmed
    in
    try
      if is_paql line then run_paql t ~gov line else run_script t ~gov line
    with Shard_error msg -> ok ("shard error: " ^ msg)

(* ---- construction ------------------------------------------------------ *)

let discover_sharded ~host ~port ~connect_timeout =
  (* bounded retry: in a fresh deployment the router often races the
     shards' listen sockets by a few hundred milliseconds *)
  let rec go attempt =
    match
      Client.with_connection ~host
        ?connect_timeout:(Some (Option.value connect_timeout ~default:2.0))
        ~port
        (fun c -> Client.request c "\\tables")
    with
    | { Protocol.status = Protocol.Ok; body } ->
        String.split_on_char '\n' body
        |> List.filter (fun s -> String.trim s <> "")
        |> List.map String.lowercase_ascii
    | { Protocol.body; _ } -> failwith ("shard 0 refused \\tables: " ^ body)
    | exception e ->
        if attempt >= 20 then
          failwith
            (Printf.sprintf "cannot reach shard 0 at %s:%d: %s" host port
               (Printexc.to_string e))
        else begin
          Thread.delay 0.25;
          go (attempt + 1)
        end
  in
  go 0

let create ?connect_timeout ~shards local =
  if Array.length shards = 0 then failwith "pb_router needs at least one shard";
  let host0, port0 = shards.(0) in
  let sharded = discover_sharded ~host:host0 ~port:port0 ~connect_timeout in
  let slots =
    Array.mapi
      (fun i (host, port) ->
        {
          s_host = host;
          s_port = port;
          s_mu = Mutex.create ();
          s_conn = None;
          s_hist =
            Metrics.histogram
              ~help:(Printf.sprintf "router fan-out latency to shard %d" i)
              ~buckets:fanout_buckets
              (Printf.sprintf "pb_shard_%d_fanout_seconds" i);
        })
      shards
  in
  { shards = slots; connect_timeout; local; sharded; mu = Mutex.create () }

let session_factory t (_ : Pb_net.Server.t) : Pb_net.Server.session_handler =
  fun ~gov line -> handle t ~gov line

let close t =
  Array.iter
    (fun slot ->
      Mutex.lock slot.s_mu;
      (match slot.s_conn with
      | Some c ->
          (try Client.close c with _ -> ());
          slot.s_conn <- None
      | None -> ());
      Mutex.unlock slot.s_mu)
    t.shards
