module Value = Pb_relation.Value
module Relation = Pb_relation.Relation

(* FNV-1a, 64-bit. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fold_byte h c =
  Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) fnv_prime

let fold_string h s = String.fold_left fold_byte h s

(* Canonical tagged rendering: every value maps to one byte string, with
   type tags and a length prefix on strings so distinct rows cannot
   collide by concatenation ("ab","c" vs "a","bc"). Floats hash their
   IEEE bits — the data-mode codec round-trips floats bit-exactly, so a
   row pulled from a shard hashes identically to the row the shard
   stored. *)
let fold_value h v =
  match v with
  | Value.Null -> fold_string h "N"
  | Value.Bool b -> fold_string h (if b then "B1" else "B0")
  | Value.Int i -> fold_string h ("I" ^ string_of_int i)
  | Value.Float f ->
      fold_string h ("F" ^ Int64.to_string (Int64.bits_of_float f))
  | Value.Str s ->
      fold_string h ("S" ^ string_of_int (String.length s) ^ ":" ^ s)

let hash_row row = Array.fold_left fold_value fnv_offset row

let shard_of_row ~shards row =
  if shards <= 1 then 0
  else Int64.to_int (Int64.unsigned_rem (hash_row row) (Int64.of_int shards))

let filter_shard ~shards ~shard rel =
  Relation.filter (fun row -> shard_of_row ~shards row = shard) rel
