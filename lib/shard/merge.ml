module Ast = Pb_sql.Ast
module Shape = Pb_sql.Shape

type plan = {
  partial : Ast.select;
  scratch : string;
  final : Ast.select;
}

let scratch_name = "__partials"

(* ---- expression walks ------------------------------------------------- *)

let rec exists_expr p (e : Ast.expr) =
  p e
  ||
  match e with
  | Ast.Lit _ | Ast.Col _ -> false
  | Ast.Unary_minus a | Ast.Not a | Ast.Is_null (a, _) | Ast.Like (a, _, _) ->
      exists_expr p a
  | Ast.Binop (_, a, b) -> exists_expr p a || exists_expr p b
  | Ast.Between (a, b, c) ->
      exists_expr p a || exists_expr p b || exists_expr p c
  | Ast.In_list (a, es, _) -> exists_expr p a || List.exists (exists_expr p) es
  | Ast.In_query (a, _, _) -> exists_expr p a
  | Ast.Exists _ -> false
  | Ast.Agg (_, eo) -> Option.fold ~none:false ~some:(exists_expr p) eo
  | Ast.Func (_, es) -> List.exists (exists_expr p) es
  | Ast.Case (arms, eo) ->
      List.exists (fun (c, v) -> exists_expr p c || exists_expr p v) arms
      || Option.fold ~none:false ~some:(exists_expr p) eo

let has_subquery =
  exists_expr (function Ast.In_query _ | Ast.Exists _ -> true | _ -> false)

let rec collect_aggs acc (e : Ast.expr) =
  match e with
  | Ast.Agg _ ->
      if List.exists (fun a -> compare a e = 0) acc then acc else acc @ [ e ]
  | Ast.Lit _ | Ast.Col _ -> acc
  | Ast.Unary_minus a | Ast.Not a | Ast.Is_null (a, _) | Ast.Like (a, _, _) ->
      collect_aggs acc a
  | Ast.Binop (_, a, b) -> collect_aggs (collect_aggs acc a) b
  | Ast.Between (a, b, c) ->
      collect_aggs (collect_aggs (collect_aggs acc a) b) c
  | Ast.In_list (a, es, _) -> List.fold_left collect_aggs (collect_aggs acc a) es
  | Ast.In_query (a, _, _) -> collect_aggs acc a
  | Ast.Exists _ -> acc
  | Ast.Func (_, es) -> List.fold_left collect_aggs acc es
  | Ast.Case (arms, eo) ->
      let acc =
        List.fold_left
          (fun acc (c, v) -> collect_aggs (collect_aggs acc c) v)
          acc arms
      in
      Option.fold ~none:acc ~some:(collect_aggs acc) eo

(* Structural rewrite for the router-side final query: a subtree equal
   to a GROUP BY expression becomes its shipped [__g<i>] column, an
   aggregate node becomes the merging aggregate over its shipped
   [__a<j>] partial (both COUNT forms merge by SUM; SUM/MIN/MAX merge
   by themselves). Everything else is mapped structurally. *)
let rewrite ~groups ~aggs e =
  let rec go e =
    match List.find_opt (fun (g, _) -> compare g e = 0) groups with
    | Some (_, name) -> Ast.Col name
    | None -> (
        match e with
        | Ast.Agg (f, _) -> (
            match List.find_opt (fun (a, _) -> compare a e = 0) aggs with
            | None -> e (* unreachable: collect_aggs saw every Agg node *)
            | Some (_, name) ->
                let f' =
                  match f with
                  | Ast.Count_star | Ast.Count -> Ast.Sum
                  | Ast.Sum -> Ast.Sum
                  | Ast.Min -> Ast.Min
                  | Ast.Max -> Ast.Max
                  | Ast.Avg -> Ast.Avg (* filtered out before rewrite *)
                in
                Ast.Agg (f', Some (Ast.Col name)))
        | Ast.Lit _ | Ast.Col _ -> e
        | Ast.Unary_minus a -> Ast.Unary_minus (go a)
        | Ast.Not a -> Ast.Not (go a)
        | Ast.Binop (op, a, b) -> Ast.Binop (op, go a, go b)
        | Ast.Between (a, b, c) -> Ast.Between (go a, go b, go c)
        | Ast.In_list (a, es, n) -> Ast.In_list (go a, List.map go es, n)
        | Ast.In_query (a, q, n) -> Ast.In_query (go a, q, n)
        | Ast.Exists q -> Ast.Exists q
        | Ast.Is_null (a, n) -> Ast.Is_null (go a, n)
        | Ast.Like (a, p, n) -> Ast.Like (go a, p, n)
        | Ast.Func (f, es) -> Ast.Func (f, List.map go es)
        | Ast.Case (arms, eo) ->
            Ast.Case
              (List.map (fun (c, v) -> (go c, go v)) arms, Option.map go eo))
  in
  go e

(* After rewriting, a merged expression may only touch the shipped
   columns: a surviving bare column is a group-representative reference
   ("first row of the group"), whose value depends on physical row order
   and cannot be reproduced from partials. *)
let shipped_cols_only =
  let ok c =
    String.length c >= 3
    && (String.sub c 0 3 = "__g" || String.sub c 0 3 = "__a")
  in
  fun e ->
    not
      (exists_expr (function Ast.Col c -> not (ok c) | _ -> false) e)

let rec dedup_names = function
  | [] -> false
  | x :: xs -> List.mem x xs || dedup_names xs

let plan ~table (q : Ast.select) : plan option =
  let same_table a b = String.lowercase_ascii a = String.lowercase_ascii b in
  match q.Ast.from with
  | [ { Ast.rel_name; alias = _ } ]
    when same_table rel_name table
         && (not q.Ast.distinct)
         && q.Ast.compound = []
         && not (List.exists (function Ast.Star_item -> true | _ -> false) q.Ast.items) ->
      let item_exprs =
        List.filter_map
          (function Ast.Star_item -> None | Ast.Expr_item (e, _) -> Some e)
          q.Ast.items
      in
      let order_exprs = List.map fst q.Ast.order_by in
      let all_exprs =
        item_exprs @ q.Ast.group_by
        @ Option.to_list q.Ast.where
        @ Option.to_list q.Ast.having
        @ order_exprs
      in
      if List.exists has_subquery all_exprs then None
      else
        let aggs =
          List.fold_left collect_aggs []
            (item_exprs @ Option.to_list q.Ast.having @ order_exprs)
        in
        let mergeable_agg = function
          | Ast.Agg ((Ast.Count_star | Ast.Count | Ast.Sum | Ast.Min | Ast.Max), _)
            ->
              true
          | _ -> false
        in
        if aggs = [] && q.Ast.group_by = [] then None
        else if not (List.for_all mergeable_agg aggs) then None
        else
          let groups =
            List.mapi (fun i g -> (g, Printf.sprintf "__g%d" i)) q.Ast.group_by
          in
          let agg_names =
            List.mapi (fun j a -> (a, Printf.sprintf "__a%d" j)) aggs
          in
          let partial_items =
            List.map (fun (g, n) -> Ast.Expr_item (g, Some n)) groups
            @ List.map (fun (a, n) -> Ast.Expr_item (a, Some n)) agg_names
          in
          let partial =
            {
              q with
              Ast.distinct = false;
              items = partial_items;
              having = None;
              order_by = [];
              limit = None;
              offset = None;
            }
          in
          let final_names =
            List.mapi
              (fun i item ->
                match item with
                | Ast.Expr_item (_, Some a) -> a
                | item -> Shape.infer_item_name i item)
              q.Ast.items
          in
          if dedup_names final_names then None
          else
            let rw = rewrite ~groups ~aggs:agg_names in
            let final_items =
              List.map2
                (fun item name ->
                  match item with
                  | Ast.Expr_item (e, _) -> Ast.Expr_item (rw e, Some name)
                  | Ast.Star_item -> assert false)
                q.Ast.items final_names
            in
            let final_having = Option.map rw q.Ast.having in
            let final_order = List.map (fun (e, d) -> (rw e, d)) q.Ast.order_by in
            let rewritten_exprs =
              List.filter_map
                (function Ast.Expr_item (e, _) -> Some e | _ -> None)
                final_items
              @ Option.to_list final_having
              @ List.map fst final_order
            in
            if not (List.for_all shipped_cols_only rewritten_exprs) then None
            else
              let final =
                {
                  Ast.distinct = false;
                  items = final_items;
                  from = [ { Ast.rel_name = scratch_name; alias = None } ];
                  where = None;
                  group_by = List.map (fun (_, n) -> Ast.Col n) groups;
                  having = final_having;
                  order_by = final_order;
                  limit = q.Ast.limit;
                  offset = q.Ast.offset;
                  compound = [];
                }
              in
              Some { partial; scratch = scratch_name; final }
  | _ -> None
