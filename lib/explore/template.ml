module Ast = Pb_paql.Ast
module Package = Pb_paql.Package

type t = { query : Ast.t; sample : Package.t option }

let create db query =
  let result = Pb_core.Engine.run db query in
  { query; sample = result.Pb_core.Engine.package }

let refine db t query =
  let result = Pb_core.Engine.run db query in
  match result.Pb_core.Engine.package with
  | Some pkg -> { query; sample = Some pkg }
  | None -> { t with query }

let render ?(show_summary = false) db t =
  let buf = Buffer.create 1024 in
  let section title = Buffer.add_string buf ("== " ^ title ^ " ==\n") in
  section "Sample package";
  (match t.sample with
  | Some pkg -> Buffer.add_string buf (Package.to_string pkg)
  | None -> Buffer.add_string buf "(no valid package for this query)\n");
  section "Base constraints (each tuple)";
  (match t.query.where with
  | None -> Buffer.add_string buf "(none)\n"
  | Some e ->
      Buffer.add_string buf ("  " ^ Pb_sql.Ast.expr_to_string e ^ "\n");
      List.iter
        (fun s -> Buffer.add_string buf ("  - " ^ s ^ "\n"))
        (Describe.describe_base ~input_alias:t.query.input_alias e));
  section "Global constraints (whole package)";
  (match t.query.such_that with
  | None -> Buffer.add_string buf "(none)\n"
  | Some e ->
      Buffer.add_string buf ("  " ^ Pb_sql.Ast.expr_to_string e ^ "\n");
      List.iter
        (fun s -> Buffer.add_string buf ("  - " ^ s ^ "\n"))
        (Describe.describe_global e));
  section "Objective";
  (match t.query.objective with
  | None -> Buffer.add_string buf "(none)\n"
  | Some ((dir, e) as obj) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %s\n"
           (match dir with Ast.Maximize -> "MAXIMIZE" | Ast.Minimize -> "MINIMIZE")
           (Pb_sql.Ast.expr_to_string e));
      Buffer.add_string buf ("  - " ^ Describe.describe_objective obj ^ "\n"));
  if show_summary then begin
    section "Result space";
    let summary = Summary.build ?current:t.sample db t.query in
    Buffer.add_string buf (Summary.render summary)
  end;
  Buffer.contents buf
