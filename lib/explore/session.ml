module Ast = Pb_paql.Ast
module Package = Pb_paql.Package
module Semantics = Pb_paql.Semantics
module Coeffs = Pb_core.Coeffs
module Model = Pb_lp.Model
module Milp = Pb_lp.Milp
module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation
module Prng = Pb_util.Prng

type t = {
  db : Pb_sql.Database.t;
  query : Ast.t;
  coeffs : Coeffs.t;
  rng : Prng.t;
  current : Package.t;
  history : Package.t list;  (* most recent first, includes current *)
  rounds : int;
}

let start ?(seed = 11) db query =
  let result = Pb_core.Engine.run db query in
  match result.Pb_core.Engine.package with
  | None -> Error "query has no valid package"
  | Some pkg ->
      Ok
        {
          db;
          query;
          coeffs = Coeffs.make db query;
          rng = Prng.create seed;
          current = pkg;
          history = [ pkg ];
          rounds = 0;
        }

let current t = t.current
let rounds t = t.rounds
let seen t = t.history

let linearizable (c : Coeffs.t) =
  Result.is_ok c.formula
  && match c.objective with None | Some (Some _) -> true | Some None -> false

(* Solver-based resample: pin kept tuples via lower bounds, exclude every
   package in the history with a no-good cut, re-solve. Binary queries
   only (no REPEAT) — cuts are binary. *)
let resample_ilp t ~keep =
  let c = t.coeffs in
  let translated = Pb_core.Translate.build c in
  let model = translated.Pb_core.Translate.model in
  let vars = translated.Pb_core.Translate.vars in
  List.iter
    (fun i ->
      let m = float_of_int (Package.multiplicity t.current i) in
      if m > 0.0 then
        let _, hi = Model.bounds model vars.(i) in
        Model.set_bounds model vars.(i) m hi)
    keep;
  List.iteri
    (fun cut_id prev ->
      let terms = ref [] and ones = ref 0 in
      Array.iteri
        (fun i v ->
          if Package.multiplicity prev i > 0 then begin
            terms := (-1.0, v) :: !terms;
            incr ones
          end
          else terms := (1.0, v) :: !terms)
        vars;
      Model.add_constr model
        ~name:(Printf.sprintf "seen%d" cut_id)
        !terms Model.Ge
        (1.0 -. float_of_int !ones))
    t.history;
  let sol = Milp.solve ~gov:(Pb_util.Gov.create ~milp_nodes:50_000 ()) model in
  match sol.Milp.status with
  | Milp.Optimal | Milp.Feasible when Array.length sol.Milp.x > 0 ->
      let pkg = Pb_core.Translate.package_of_solution c translated sol.Milp.x in
      if Semantics.is_valid ~db:t.db t.query pkg then Some pkg else None
  | _ -> None

(* Randomized resample for non-linearizable queries: replace unkept
   tuples at random and keep the first unseen valid package. *)
let resample_random t ~keep =
  let c = t.coeffs in
  let keep_set = List.sort_uniq compare keep in
  let is_kept i = List.mem i keep_set in
  let base_mult = Package.multiplicities t.current in
  let seen_mults = List.map Package.multiplicities t.history in
  let attempt () =
    let mult = Array.copy base_mult in
    (* Drop unkept tuples, then refill to the same cardinality. *)
    let removed = ref 0 in
    Array.iteri
      (fun i m ->
        if m > 0 && not (is_kept i) then begin
          removed := !removed + m;
          mult.(i) <- 0
        end)
      mult;
    let attempts = ref 0 in
    while !removed > 0 && !attempts < 50 * (!removed + 1) do
      incr attempts;
      let i = Prng.int t.rng c.Coeffs.n in
      if mult.(i) < c.Coeffs.max_mult then begin
        mult.(i) <- mult.(i) + 1;
        decr removed
      end
    done;
    if !removed > 0 then None
    else if List.exists (fun prev -> prev = mult) seen_mults then None
    else if Coeffs.check_mult c mult then Some (Coeffs.package_of_mult c mult)
    else None
  in
  let rec try_n k = if k = 0 then None else
    match attempt () with Some pkg -> Some pkg | None -> try_n (k - 1)
  in
  try_n 200

let keep_and_resample t ~keep =
  let fresh =
    if linearizable t.coeffs && t.coeffs.Coeffs.max_mult = 1 then
      resample_ilp t ~keep
    else resample_random t ~keep
  in
  match fresh with
  | Some pkg ->
      ( {
          t with
          current = pkg;
          history = pkg :: t.history;
          rounds = t.rounds + 1;
        },
        `Fresh )
  | None -> ({ t with rounds = t.rounds + 1 }, `Exhausted)

let base_name name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let infer_constraints t ~keep =
  match keep with
  | [] -> []
  | _ ->
      let rel = Package.base t.current in
      let schema = Relation.schema rel in
      let alias = t.query.Ast.input_alias in
      let mk_suggestion pred description =
        {
          Suggest.kind = Suggest.Base_constraint;
          paql_fragment = Pb_sql.Ast.expr_to_string pred;
          description;
          refined = Suggest.apply_base t.query pred;
        }
      in
      List.concat_map
        (fun { Schema.name; ty } ->
          let col = base_name name in
          let idx = Schema.index_of_exn schema name in
          let values = List.map (fun i -> (Relation.row rel i).(idx)) keep in
          match ty with
          | Value.T_str -> (
              (* All kept tuples share this categorical value? *)
              match values with
              | v :: rest
                when (not (Value.is_null v)) && List.for_all (Value.equal v) rest
                ->
                  let pred =
                    Pb_sql.Ast.Binop
                      (Pb_sql.Ast.Eq, Pb_sql.Ast.Col (alias ^ "." ^ col), Pb_sql.Ast.Lit v)
                  in
                  [
                    mk_suggestion pred
                      (Printf.sprintf
                         "all kept tuples share %s = %s; restrict every %s to it"
                         col (Value.to_string v) alias);
                  ]
              | _ -> [])
          | Value.T_int | Value.T_float -> (
              (* A tight numeric band across the kept tuples suggests a
                 per-tuple range constraint. *)
              let kept = List.filter_map Value.to_float values in
              match (kept, Relation.column_stats rel name) with
              | x :: _ :: _, Some (rel_lo, rel_hi, _) ->
                  let k_lo = List.fold_left Float.min x kept in
                  let k_hi = List.fold_left Float.max x kept in
                  let spread = rel_hi -. rel_lo in
                  if spread > 0.0 && (k_hi -. k_lo) /. spread < 0.5 then
                    let pred =
                      Pb_sql.Ast.Between
                        ( Pb_sql.Ast.Col (alias ^ "." ^ col),
                          Pb_sql.Ast.Lit (Value.Float k_lo),
                          Pb_sql.Ast.Lit (Value.Float k_hi) )
                    in
                    [
                      mk_suggestion pred
                        (Printf.sprintf
                           "kept tuples cluster in %s ∈ [%g, %g]; restrict \
                            every %s to that band"
                           col k_lo k_hi alias);
                    ]
                  else []
              | _ -> [])
          | Value.T_bool -> [])
        (Schema.columns schema)

let simulate ?(seed = 17) ?(max_rounds = 50) db query ~target =
  match start ~seed db query with
  | Error _ -> None
  | Ok session ->
      let target_set = List.sort_uniq compare target in
      let subset_of_target pkg =
        List.for_all
          (fun i -> List.mem i target_set)
          (Package.support pkg)
      in
      let rec loop session n =
        if subset_of_target (current session) then Some (n, true)
        else if n >= max_rounds then Some (n, false)
        else begin
          let keep =
            List.filter
              (fun i -> List.mem i target_set)
              (Package.support (current session))
          in
          let session, status = keep_and_resample session ~keep in
          match status with
          | `Fresh -> loop session (n + 1)
          | `Exhausted -> Some (n + 1, subset_of_target (current session))
        end
      in
      loop session 0
