type column = { name : string; ty : Value.ty }

(* [index_of] used to scan [cols] per lookup — O(arity) string compares on
   every column reference the executor evaluates. The scan is now done once
   per schema into [lookup], a name -> resolution table covering both exact
   and base-name-suffix matches with the original ambiguity semantics.

   The table is built lazily and published through an [Atomic]: concurrent
   lookups from pool worker domains may race to build it, in which case each
   builds an identical table and one CAS wins — the table is never mutated
   after publication, so readers need no lock. *)
type resolution = Exact of int | Suffix of int | Ambiguous

type t = {
  cols : column array;
  lookup : (string, resolution) Hashtbl.t option Atomic.t;
}

let normalize name = String.lowercase_ascii name

let of_cols cols = { cols; lookup = Atomic.make None }

let make cols =
  let cols = List.map (fun c -> { c with name = normalize c.name }) cols in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name)
      else Hashtbl.add seen c.name ())
    cols;
  of_cols (Array.of_list cols)

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols

let base_name name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let build_lookup cols =
  let tbl = Hashtbl.create (2 * Array.length cols) in
  (* Exact names first: an exact match always wins, wherever it sits. *)
  Array.iteri (fun i c -> Hashtbl.replace tbl c.name (Exact i)) cols;
  (* Base-name suffixes: a qualified column [r.id] answers for [id] only
     when no column is literally named [id] and no sibling shares the
     suffix (same semantics as the old per-lookup scan). *)
  Array.iteri
    (fun i c ->
      let b = base_name c.name in
      if b <> c.name then
        match Hashtbl.find_opt tbl b with
        | Some (Exact _) | Some Ambiguous -> ()
        | Some (Suffix _) -> Hashtbl.replace tbl b Ambiguous
        | None -> Hashtbl.replace tbl b (Suffix i))
    cols;
  tbl

let lookup_table t =
  match Atomic.get t.lookup with
  | Some tbl -> tbl
  | None ->
      let tbl = build_lookup t.cols in
      (* Publish fully built; on a lost race adopt the winner's table. *)
      if Atomic.compare_and_set t.lookup None (Some tbl) then tbl
      else (match Atomic.get t.lookup with Some tbl -> tbl | None -> tbl)

let index_of t name =
  match Hashtbl.find_opt (lookup_table t) (normalize name) with
  | Some (Exact i) | Some (Suffix i) -> Some i
  | Some Ambiguous | None -> None

let index_of_exn t name =
  match index_of t name with
  | Some i -> i
  | None ->
      failwith
        (Printf.sprintf "unknown or ambiguous column %S (have: %s)" name
           (String.concat ", " (Array.to_list (Array.map (fun c -> c.name) t.cols))))

let column_ty t name =
  match index_of t name with Some i -> Some t.cols.(i).ty | None -> None

let names t = Array.to_list (Array.map (fun c -> c.name) t.cols)

let qualify alias t =
  let alias = normalize alias in
  of_cols
    (Array.map
       (fun c -> { c with name = alias ^ "." ^ base_name c.name })
       t.cols)

let concat a b = make (columns a @ columns b)

let equal a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a.cols b.cols

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (List.map
          (fun c -> c.name ^ ":" ^ Value.ty_to_string c.ty)
          (columns t)))
