(* Solver progress telemetry: the incumbent trajectory of a run.

   Recorders are keyed by the governance-token family id rather than by
   thread: the hybrid strategy races its legs on separate pool domains,
   so a thread-keyed stream would miss every incumbent a raced leg
   finds, while the Gov token — child tokens included — travels through
   every strategy loop already.  Emission is a no-op (one atomic load)
   while no recorder is installed anywhere, and a mutex-guarded
   registry lookup plus per-recorder append when one is; incumbent
   improvements are rare by definition (each one strictly improves the
   objective), so the slow path never sits on a per-candidate edge. *)

type event = {
  seq : int;
  elapsed : float;
  objective : float;
  bound : float option;
  gap : float option;
  nodes : int;
  strategy : string;
}

type recorder = {
  r_mu : Mutex.t;
  r_start : float;
  r_capacity : int;
  mutable r_events : event list;  (* newest first *)
  mutable r_count : int;  (* events ever appended (also the next seq) *)
}

let default_capacity = 512

(* Registry: family id -> stack of recorders (innermost first). Nested
   scopes — the server's per-request recorder outside, the engine's
   per-run recorder inside — each receive every event. *)
let registry_mu = Mutex.create ()
let registry : (int, recorder list) Hashtbl.t = Hashtbl.create 16
let active = Atomic.make 0

let events r =
  Mutex.lock r.r_mu;
  let evs = List.rev r.r_events in
  Mutex.unlock r.r_mu;
  evs

let with_recorder ?(capacity = default_capacity) ~key f =
  let r =
    {
      r_mu = Mutex.create ();
      r_start = Clock.now ();
      r_capacity = max 1 capacity;
      r_events = [];
      r_count = 0;
    }
  in
  Mutex.lock registry_mu;
  Hashtbl.replace registry key
    (r :: Option.value (Hashtbl.find_opt registry key) ~default:[]);
  Mutex.unlock registry_mu;
  Atomic.incr active;
  let finally () =
    Mutex.lock registry_mu;
    (match Hashtbl.find_opt registry key with
    | Some rs -> (
        match List.filter (fun r' -> r' != r) rs with
        | [] -> Hashtbl.remove registry key
        | rs' -> Hashtbl.replace registry key rs')
    | None -> ());
    Mutex.unlock registry_mu;
    Atomic.decr active
  in
  let v = Fun.protect ~finally f in
  (v, events r)

let gap_of ~objective bound =
  match bound with
  | Some b -> Some (Float.abs (b -. objective) /. Float.max 1.0 (Float.abs objective))
  | None -> None

(* Keep the newest [r_capacity] events: the tail of the trajectory is
   what an anytime consumer cares about.  The O(capacity) trim only
   runs once the ring is full. *)
let append r ev =
  Mutex.lock r.r_mu;
  let ev = { ev with seq = r.r_count; elapsed = Clock.now () -. r.r_start } in
  r.r_count <- r.r_count + 1;
  r.r_events <- ev :: r.r_events;
  if r.r_count > r.r_capacity then
    r.r_events <- List.filteri (fun i _ -> i < r.r_capacity) r.r_events;
  Mutex.unlock r.r_mu

let incumbent ~key ~strategy ?bound ~nodes objective =
  if Atomic.get active > 0 then begin
    Mutex.lock registry_mu;
    let rs = Option.value (Hashtbl.find_opt registry key) ~default:[] in
    Mutex.unlock registry_mu;
    if rs <> [] then begin
      let bound =
        match bound with
        | Some b when Float.is_finite b -> Some b
        | Some _ | None -> None
      in
      let ev =
        {
          seq = 0;
          elapsed = 0.0;
          objective;
          bound;
          gap = gap_of ~objective bound;
          nodes;
          strategy;
        }
      in
      List.iter (fun r -> append r ev) rs
    end
  end

(* ---- rendering ------------------------------------------------------- *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let event_to_string ev =
  Printf.sprintf "#%d +%.3fs %s obj=%s%s%s nodes=%d" ev.seq ev.elapsed
    ev.strategy (fnum ev.objective)
    (match ev.bound with Some b -> " bound=" ^ fnum b | None -> "")
    (match ev.gap with Some g -> Printf.sprintf " gap=%.4f" g | None -> "")
    ev.nodes

let render evs =
  String.concat "" (List.map (fun ev -> event_to_string ev ^ "\n") evs)

let event_to_json ev =
  let opt = function Some v -> Printf.sprintf "%.9g" v | None -> "null" in
  Printf.sprintf
    "{\"seq\":%d,\"elapsed_s\":%.6f,\"objective\":%.9g,\"bound\":%s,\"gap\":%s,\
     \"nodes\":%d,\"strategy\":\"%s\"}"
    ev.seq ev.elapsed ev.objective (opt ev.bound) (opt ev.gap) ev.nodes
    (Trace.json_escape ev.strategy)

let to_json evs =
  "[" ^ String.concat "," (List.map event_to_json evs) ^ "]"
