(** Bounded store of completed request traces, keyed by trace id.

    The server files every traced request here — the span tree its
    thread produced plus the run's {!Progress} trajectory — and the
    shell ([\traces]), the HTTP endpoint ([/traces/<id>]) and
    [pb_client --trace] read it back. FIFO eviction caps memory: once
    [capacity] entries are stored, adding evicts the oldest. Capacity 0
    disables storage entirely ({!add} becomes a no-op) — the toggle the
    tracing-overhead benchmark flips.

    All operations are thread-safe; entries are immutable once added. *)

type entry = {
  trace_id : string;  (** wire trace id (32 lowercase hex chars) *)
  started : float;  (** wall-clock start (seconds since epoch) *)
  elapsed : float;  (** request wall time in seconds *)
  status : string;  (** wire status the request was answered with *)
  spans : Trace.span list;
      (** completed spans in open order; the root is the request span *)
  progress : Progress.event list;  (** incumbent trajectory, oldest first *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 256 entries. *)

val default : t
(** The process-global store shared by {!Pb_net.Server}, the shell's
    [\traces] command and the HTTP trace endpoint. *)

val capacity : t -> int
val set_capacity : t -> int -> unit
(** Shrinking evicts oldest entries immediately; [<= 0] disables. *)

val add : t -> entry -> unit
(** Store an entry, evicting the oldest past capacity. Re-adding an
    existing id replaces that entry. No-op when capacity is 0. *)

val find : t -> string -> entry option
val ids : t -> string list
(** Stored ids, oldest first. *)

val length : t -> int
val clear : t -> unit

val render : entry -> string
(** Header line, indented span tree, and the progress trajectory —
    the [\traces <id>] output. The root span renders under the wire
    trace id. *)

val to_json : entry -> string
(** One JSON object: [{"trace_id":…,"started":…,"elapsed_s":…,
    "status":…,"spans":[…],"progress":[…]}]. Span ids are strings; the
    root span's id {e is} the trace id, so a client can check the tree
    it retrieves is rooted at the id it generated. *)
