let default () = Unix.gettimeofday ()
let source = ref default
let now () = !source ()
let set_source f = source := f
let reset_source () = source := default
