(** Wall-clock time source for the observability layer.

    Centralised so that spans, slow-query entries and metric snapshots
    all share one notion of "now", and so tests can substitute a
    deterministic clock without touching [Unix] directly. *)

val now : unit -> float
(** Seconds since the epoch, from the active time source. *)

val set_source : (unit -> float) -> unit
(** Replace the time source (tests only). *)

val reset_source : unit -> unit
(** Restore [Unix.gettimeofday]. *)
