type entry = { query : string; elapsed : float; at : float }

let capacity = 100
let threshold_ref : float option ref = ref None
let log : entry list ref = ref []  (* most recent first *)
let count = ref 0

let set_threshold t = threshold_ref := t
let threshold () = !threshold_ref

let truncate k xs =
  List.filteri (fun i _ -> i < k) xs

let observe ~query ~elapsed =
  match !threshold_ref with
  | Some t when elapsed >= t ->
      log := { query; elapsed; at = Clock.now () } :: !log;
      incr count;
      if !count > capacity then begin
        log := truncate capacity !log;
        count := capacity
      end;
      true
  | Some _ | None -> false

let entries () = !log

let clear () =
  log := [];
  count := 0

let render () =
  match !log with
  | [] -> "(slow-query log is empty)"
  | entries ->
      String.concat "\n"
        (List.map
           (fun e ->
             let ms = e.elapsed *. 1e3 in
             Printf.sprintf "%8.1fms  %s" ms e.query)
           entries)
