(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    Instruments are registered once by name (repeat registration with the
    same name and kind returns the existing instrument) and updated with
    O(1) hot-path operations — a counter bump is one atomic fetch-and-add,
    no hashing. A process-global {!default} registry backs the engine's
    instrumentation; tests create private registries.

    All operations are safe under concurrent use from multiple domains
    (the {!Pb_par} pool bumps counters from worker domains): counters
    and gauges are atomics, histograms and registration take a mutex,
    so no update is ever lost.

    Metric naming convention: [pb_<layer>_<what>[_total]], lowercase with
    underscores, Prometheus style — ["pb_sql_rows_scanned_total"],
    ["pb_milp_nodes_total"], ["pb_engine_runs_total"]. Counters end in
    [_total]; gauges and histograms name the quantity directly. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry
val default : registry

val counter : ?registry:registry -> ?help:string -> string -> counter
(** Register (or look up) a monotonically increasing counter.
    Raises [Invalid_argument] if the name is taken by another kind. *)

val gauge : ?registry:registry -> ?help:string -> string -> gauge

val histogram :
  ?registry:registry -> ?help:string -> buckets:float list -> string -> histogram
(** [buckets] are inclusive upper bounds (Prometheus [le] semantics);
    they are sorted, and a [+Inf] bucket is always appended. Repeat
    registration ignores [buckets] and returns the existing histogram.
    Raises [Invalid_argument] on an empty bucket list or a name clash. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to the counter. Raises [Invalid_argument] on a
    negative increment. *)

val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one observation into its bucket (first bound [>= v]). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float * int) list
(** Per-bucket (upper-bound, count) pairs — {e non}-cumulative, the
    [+Inf] bucket last as [(infinity, n)]. *)

val snapshot : ?registry:registry -> unit -> (string * float) list
(** Flat name→value view in registration order: counters and gauges by
    name; histograms contribute [name_count] and [name_sum]. Used for
    before/after deltas (EXPLAIN ANALYZE, bench scenarios). *)

val escape_help : string -> string
(** Exposition-format HELP escaping: [\ ] as [\\], newline as [\n]. *)

val escape_label : string -> string
(** Exposition-format label-value escaping: like {!escape_help} plus
    the double-quote character, which gains a backslash. *)

val dump : ?registry:registry -> unit -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] headers, then
    sample lines; histograms expose cumulative [name_bucket{le="…"}]
    series (the [+Inf] bucket always present and equal to [name_count])
    plus [name_sum] and [name_count]. HELP text and label values are
    escaped per the format ({!escape_help}, {!escape_label}). *)

val reset : ?registry:registry -> unit -> unit
(** Zero every instrument's value (registrations are kept). *)
