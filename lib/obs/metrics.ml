(* Instruments must stay correct when bumped from several domains at
   once (the Pb_par pool runs strategy legs and operator chunks
   concurrently): counters and gauges are Atomics, histograms take a
   tiny per-instrument mutex, and registration/iteration goes through a
   per-registry mutex. *)

type counter = { c_name : string; c_help : string; count : int Atomic.t }
type gauge = { g_name : string; g_help : string; value : float Atomic.t }

type histogram = {
  h_name : string;
  h_help : string;
  h_mu : Mutex.t;
  bounds : float array;  (* sorted inclusive upper bounds, +Inf excluded *)
  buckets : int array;  (* length = Array.length bounds + 1 (the +Inf one) *)
  mutable sum : float;
  mutable observations : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registry = {
  mu : Mutex.t;
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* registration order, newest first *)
}

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64; order = [] }
let default = create ()

let locked registry f =
  Mutex.lock registry.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.mu) f

let register registry name make =
  locked registry (fun () ->
      match Hashtbl.find_opt registry.tbl name with
      | Some existing -> existing
      | None ->
          let m = make () in
          Hashtbl.add registry.tbl name m;
          registry.order <- name :: registry.order;
          m)

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered as another kind" name)

let counter ?(registry = default) ?(help = "") name =
  match
    register registry name (fun () ->
        Counter { c_name = name; c_help = help; count = Atomic.make 0 })
  with
  | Counter c -> c
  | Gauge _ | Histogram _ -> kind_clash name

let gauge ?(registry = default) ?(help = "") name =
  match
    register registry name (fun () ->
        Gauge { g_name = name; g_help = help; value = Atomic.make 0.0 })
  with
  | Gauge g -> g
  | Counter _ | Histogram _ -> kind_clash name

let histogram ?(registry = default) ?(help = "") ~buckets name =
  if buckets = [] then invalid_arg "Metrics.histogram: empty bucket list";
  match
    register registry name (fun () ->
        let bounds = Array.of_list (List.sort_uniq compare buckets) in
        Histogram
          {
            h_name = name;
            h_help = help;
            h_mu = Mutex.create ();
            bounds;
            buckets = Array.make (Array.length bounds + 1) 0;
            sum = 0.0;
            observations = 0;
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> kind_clash name

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  ignore (Atomic.fetch_and_add c.count by)

let counter_value c = Atomic.get c.count
let set g v = Atomic.set g.value v
let gauge_value g = Atomic.get g.value

let observe h v =
  Mutex.lock h.h_mu;
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  h.buckets.(slot 0) <- h.buckets.(slot 0) + 1;
  h.sum <- h.sum +. v;
  h.observations <- h.observations + 1;
  Mutex.unlock h.h_mu

let histogram_count h =
  Mutex.lock h.h_mu;
  let n = h.observations in
  Mutex.unlock h.h_mu;
  n

let histogram_sum h =
  Mutex.lock h.h_mu;
  let s = h.sum in
  Mutex.unlock h.h_mu;
  s

let bucket_counts h =
  Mutex.lock h.h_mu;
  let out =
    Array.to_list
      (Array.mapi
         (fun i count ->
           let bound =
             if i < Array.length h.bounds then h.bounds.(i) else infinity
           in
           (bound, count))
         h.buckets)
  in
  Mutex.unlock h.h_mu;
  out

let in_order registry =
  locked registry (fun () ->
      List.filter_map
        (fun name -> Hashtbl.find_opt registry.tbl name)
        (List.rev registry.order))

let snapshot ?(registry = default) () =
  List.concat_map
    (function
      | Counter c -> [ (c.c_name, float_of_int (Atomic.get c.count)) ]
      | Gauge g -> [ (g.g_name, Atomic.get g.value) ]
      | Histogram h ->
          [
            (h.h_name ^ "_count", float_of_int (histogram_count h));
            (h.h_name ^ "_sum", histogram_sum h);
          ])
    (in_order registry)

(* Prometheus-compatible float rendering: integral values print without
   an exponent or trailing zeros, the rest use shortest-roundtrip %g. *)
let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* Exposition-format escaping. HELP text escapes backslash and newline;
   label values additionally escape the double quote.  (A raw newline in
   either would desynchronise every line-oriented consumer of the
   exposition, which is why the format mandates these.) *)
let escape ~quote s =
  let needs c = c = '\\' || c = '\n' || (quote && c = '"') in
  if not (String.exists needs s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '"' when quote -> Buffer.add_string buf "\\\""
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let escape_help = escape ~quote:false
let escape_label = escape ~quote:true

let dump ?(registry = default) () =
  let buf = Buffer.create 1024 in
  let header name help kind =
    if help <> "" then
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (function
      | Counter c ->
          header c.c_name c.c_help "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" c.c_name (Atomic.get c.count))
      | Gauge g ->
          header g.g_name g.g_help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" g.g_name (fnum (Atomic.get g.value)))
      | Histogram h ->
          header h.h_name h.h_help "histogram";
          Mutex.lock h.h_mu;
          let cumulative = ref 0 in
          Array.iteri
            (fun i count ->
              cumulative := !cumulative + count;
              let le =
                if i < Array.length h.bounds then fnum h.bounds.(i) else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name
                   (escape_label le) !cumulative))
            h.buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" h.h_name (fnum h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" h.h_name h.observations);
          Mutex.unlock h.h_mu)
    (in_order registry);
  Buffer.contents buf

let reset ?(registry = default) () =
  locked registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.count 0
          | Gauge g -> Atomic.set g.value 0.0
          | Histogram h ->
              Mutex.lock h.h_mu;
              Array.fill h.buckets 0 (Array.length h.buckets) 0;
              h.sum <- 0.0;
              h.observations <- 0;
              Mutex.unlock h.h_mu)
        registry.tbl)
