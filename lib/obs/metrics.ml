type counter = { c_name : string; c_help : string; mutable count : int }
type gauge = { g_name : string; g_help : string; mutable value : float }

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;  (* sorted inclusive upper bounds, +Inf excluded *)
  buckets : int array;  (* length = Array.length bounds + 1 (the +Inf one) *)
  mutable sum : float;
  mutable observations : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registry = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* registration order, newest first *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }
let default = create ()

let register registry name make =
  match Hashtbl.find_opt registry.tbl name with
  | Some existing -> existing
  | None ->
      let m = make () in
      Hashtbl.add registry.tbl name m;
      registry.order <- name :: registry.order;
      m

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered as another kind" name)

let counter ?(registry = default) ?(help = "") name =
  match
    register registry name (fun () ->
        Counter { c_name = name; c_help = help; count = 0 })
  with
  | Counter c -> c
  | Gauge _ | Histogram _ -> kind_clash name

let gauge ?(registry = default) ?(help = "") name =
  match
    register registry name (fun () ->
        Gauge { g_name = name; g_help = help; value = 0.0 })
  with
  | Gauge g -> g
  | Counter _ | Histogram _ -> kind_clash name

let histogram ?(registry = default) ?(help = "") ~buckets name =
  if buckets = [] then invalid_arg "Metrics.histogram: empty bucket list";
  match
    register registry name (fun () ->
        let bounds = Array.of_list (List.sort_uniq compare buckets) in
        Histogram
          {
            h_name = name;
            h_help = help;
            bounds;
            buckets = Array.make (Array.length bounds + 1) 0;
            sum = 0.0;
            observations = 0;
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> kind_clash name

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c.count <- c.count + by

let counter_value c = c.count
let set g v = g.value <- v
let gauge_value g = g.value

let observe h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  h.buckets.(slot 0) <- h.buckets.(slot 0) + 1;
  h.sum <- h.sum +. v;
  h.observations <- h.observations + 1

let histogram_count h = h.observations
let histogram_sum h = h.sum

let bucket_counts h =
  Array.to_list
    (Array.mapi
       (fun i count ->
         let bound =
           if i < Array.length h.bounds then h.bounds.(i) else infinity
         in
         (bound, count))
       h.buckets)

let in_order registry =
  List.filter_map
    (fun name -> Hashtbl.find_opt registry.tbl name)
    (List.rev registry.order)

let snapshot ?(registry = default) () =
  List.concat_map
    (function
      | Counter c -> [ (c.c_name, float_of_int c.count) ]
      | Gauge g -> [ (g.g_name, g.value) ]
      | Histogram h ->
          [
            (h.h_name ^ "_count", float_of_int h.observations);
            (h.h_name ^ "_sum", h.sum);
          ])
    (in_order registry)

(* Prometheus-compatible float rendering: integral values print without
   an exponent or trailing zeros, the rest use shortest-roundtrip %g. *)
let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let dump ?(registry = default) () =
  let buf = Buffer.create 1024 in
  let header name help kind =
    if help <> "" then
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (function
      | Counter c ->
          header c.c_name c.c_help "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" c.c_name c.count)
      | Gauge g ->
          header g.g_name g.g_help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" g.g_name (fnum g.value))
      | Histogram h ->
          header h.h_name h.h_help "histogram";
          let cumulative = ref 0 in
          Array.iteri
            (fun i count ->
              cumulative := !cumulative + count;
              let le =
                if i < Array.length h.bounds then fnum h.bounds.(i) else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name le
                   !cumulative))
            h.buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" h.h_name (fnum h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" h.h_name h.observations))
    (in_order registry);
  Buffer.contents buf

let reset ?(registry = default) () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.value <- 0.0
      | Histogram h ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.sum <- 0.0;
          h.observations <- 0)
    registry.tbl
