(* Bounded FIFO store of completed request traces, keyed by wire trace
   id.  One mutex guards the table and the eviction queue; entries are
   immutable once added, so readers copy nothing but the list spine. *)

type entry = {
  trace_id : string;
  started : float;
  elapsed : float;
  status : string;
  spans : Trace.span list;  (* open order; exactly one "request" root *)
  progress : Progress.event list;
}

type t = {
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order, oldest first *)
  mutable cap : int;
}

let create ?(capacity = 256) () =
  { mu = Mutex.create (); tbl = Hashtbl.create 64; order = Queue.create ();
    cap = capacity }

let default = create ()

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let capacity t = locked t (fun () -> t.cap)

let evict_to t cap =
  while Queue.length t.order > cap do
    let victim = Queue.pop t.order in
    Hashtbl.remove t.tbl victim
  done

let set_capacity t cap =
  locked t (fun () ->
      t.cap <- max 0 cap;
      evict_to t t.cap)

let add t entry =
  locked t (fun () ->
      if t.cap > 0 then begin
        (* Re-adding an id (a client reusing a trace id) replaces the
           old entry but keeps one eviction-queue slot per live id. *)
        if Hashtbl.mem t.tbl entry.trace_id then begin
          let keep = Queue.create () in
          Queue.iter
            (fun id -> if id <> entry.trace_id then Queue.push id keep)
            t.order;
          Queue.clear t.order;
          Queue.transfer keep t.order
        end;
        Hashtbl.replace t.tbl entry.trace_id entry;
        Queue.push entry.trace_id t.order;
        evict_to t t.cap
      end)

let find t id = locked t (fun () -> Hashtbl.find_opt t.tbl id)

let ids t =
  locked t (fun () -> List.rev (Queue.fold (fun acc id -> id :: acc) [] t.order))

let length t = locked t (fun () -> Queue.length t.order)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      Queue.clear t.order)

(* ---- rendering ------------------------------------------------------- *)

(* The root span of a stored trace is rendered under the wire trace id
   rather than its process-local int id, so the server-side tree a
   client retrieves is rooted at exactly the id it generated. *)
let root_span_id entry =
  let rec first = function
    | [] -> None
    | (sp : Trace.span) :: rest -> if sp.parent < 0 then Some sp.id else first rest
  in
  first entry.spans

let render entry =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "trace %s  status=%s  %.3fs  %d span(s)\n" entry.trace_id
       entry.status entry.elapsed (List.length entry.spans));
  Buffer.add_string buf (Trace.render_spans entry.spans);
  if entry.progress <> [] then begin
    Buffer.add_string buf "progress:\n";
    List.iter
      (fun ev ->
        Buffer.add_string buf ("  " ^ Progress.event_to_string ev ^ "\n"))
      entry.progress
  end;
  Buffer.contents buf

let to_json entry =
  let root = root_span_id entry in
  let id_name i =
    if Some i = root then entry.trace_id else string_of_int i
  in
  Printf.sprintf
    "{\"trace_id\":\"%s\",\"started\":%.6f,\"elapsed_s\":%.6f,\"status\":\"%s\",\
     \"spans\":[%s],\"progress\":%s}"
    (Trace.json_escape entry.trace_id)
    entry.started entry.elapsed
    (Trace.json_escape entry.status)
    (String.concat "," (List.map (Trace.span_to_json ~id_name) entry.spans))
    (Progress.to_json entry.progress)
