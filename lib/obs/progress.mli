(** Solver progress telemetry: the incumbent trajectory of a run.

    Every time a strategy improves its best-so-far answer — a
    branch-and-bound incumbent, a brute-force first/best candidate, a
    local-search accepted move — it emits one {!event} carrying the
    elapsed time, the new objective, the best proven bound (when the
    strategy has one), the relative gap, and the work done so far. This
    is the (time, quality) trajectory the paper's interactive story
    needs and the data model a future anytime serving mode will stream.

    Events are routed to {e recorders} keyed by the {!Pb_util.Gov}
    family id of the run's governance token (not by thread: the hybrid
    race runs legs on pool domains, and their child tokens share the
    request family). Recorders nest — the engine installs one per run,
    the server one per request — and each receives every event of its
    family. With no recorder installed anywhere, {!incumbent} is one
    atomic load. *)

type event = {
  seq : int;  (** 0-based index within the recorder *)
  elapsed : float;  (** seconds since the recorder was installed *)
  objective : float;  (** the new incumbent's objective value *)
  bound : float option;
      (** best proven bound on the optimum at emit time (branch-and-bound
          only); [None] for heuristics and for infinite root bounds *)
  gap : float option;
      (** [|bound - objective| / max(1, |objective|)]; [None] without a
          bound *)
  nodes : int;  (** strategy work units so far (B&B nodes popped,
                    candidates examined, search rounds) *)
  strategy : string;  (** emitting strategy, e.g. ["ilp"] *)
}

val with_recorder :
  ?capacity:int -> key:int -> (unit -> 'a) -> 'a * event list
(** Install a recorder for governance family [key] around the thunk and
    return the events it captured, oldest first. [capacity] (default
    512) bounds the buffer; once full, the {e oldest} events are
    dropped ([seq] exposes the loss). Reentrant and exception-safe (on
    a raise the recorder is uninstalled and its events are lost with
    the return value). *)

val incumbent :
  key:int -> strategy:string -> ?bound:float -> nodes:int -> float -> unit
(** [incumbent ~key ~strategy ?bound ~nodes objective] appends one event
    to every recorder installed for [key]; no-op when there is none.
    Non-finite bounds are recorded as no bound. Safe from any thread or
    domain. *)

val gap_of : objective:float -> float option -> float option
(** The gap formula used for {!event.gap}, exposed for tests. *)

val event_to_string : event -> string
(** One line: ["#seq +1.234s strategy obj=… bound=… gap=… nodes=…"]. *)

val render : event list -> string
(** {!event_to_string} per line. *)

val to_json : event list -> string
(** JSON array of event objects ([bound]/[gap] are [null] when absent). *)
