type span = {
  id : int;
  parent : int;
  name : string;
  attrs : (string * string) list;
  mutable counters : (string * int) list;
  start : float;
  mutable elapsed : float;
}

(* Concurrency: the open-span stack is thread-local, keyed by Thread.id
   in a mutex-guarded table (Domain.DLS would be shared by every
   systhread of a domain, so two server connection threads tracing
   concurrently would interleave their stacks).  Worker domains of the
   Pb_par pool open and close spans of their own — a span opened on a
   worker has no parent from the submitting thread and renders as an
   extra root.  The completed-span ring and the id source are shared:
   the ring behind a mutex, the id an atomic.  [add_count] touches only
   the top of the calling thread's own stack and needs no lock: a span
   is published (to the ring or a request context) only at close.

   A thread's state is touched only by that thread; the table mutex
   guards just the id->state mapping.  Entries are removed as soon as a
   thread's stack empties with no context installed, so the table does
   not grow with the server's one-thread-per-connection lifetime. *)

let enabled = Atomic.make false
let set_enabled v = Atomic.set enabled v
let is_enabled () = Atomic.get enabled

(* A request context collects every span the owning thread closes while
   it is installed, tagged with the request's trace id — the server
   wraps each request in [with_context] and files the result in the
   trace store.  Context spans bypass the global ring (unless tracing is
   also globally enabled), so concurrent requests never mix. *)
type context = { ctx_trace_id : string; mutable ctx_spans : span list }

type tstate = { mutable st_stack : span list; mutable st_ctx : context option }

(* Count of installed contexts, for the [with_span] fast path: when zero
   and global tracing is off, instrumentation stays two atomic loads. *)
let active_contexts = Atomic.make 0

let tls_mu = Mutex.create ()
let tls : (int, tstate) Hashtbl.t = Hashtbl.create 64

let tstate () =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock tls_mu;
  let st =
    match Hashtbl.find_opt tls id with
    | Some st -> st
    | None ->
        let st = { st_stack = []; st_ctx = None } in
        Hashtbl.add tls id st;
        st
  in
  Mutex.unlock tls_mu;
  st

let find_tstate () =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock tls_mu;
  let st = Hashtbl.find_opt tls id in
  Mutex.unlock tls_mu;
  st

let forget_tstate st =
  if st.st_stack = [] && st.st_ctx = None then begin
    let id = Thread.id (Thread.self ()) in
    Mutex.lock tls_mu;
    (match Hashtbl.find_opt tls id with
    | Some cur when cur == st -> Hashtbl.remove tls id
    | Some _ | None -> ());
    Mutex.unlock tls_mu
  end

(* Ring buffer of completed spans. [next] is the write cursor; [total]
   counts every record ever written, so [total - capacity] (clamped) is
   the number of overwritten spans.  All four cells are guarded by
   [ring_mu]. *)
let ring_mu = Mutex.create ()
let capacity = ref 4096
let ring : span option array ref = ref (Array.make !capacity None)
let next = ref 0
let total = ref 0
let fresh_id = Atomic.make 0

let reset ?capacity:cap () =
  Mutex.lock ring_mu;
  (match cap with
  | Some c when c > 0 -> capacity := c
  | Some _ | None -> ());
  ring := Array.make !capacity None;
  next := 0;
  total := 0;
  Atomic.set fresh_id 0;
  Mutex.unlock ring_mu;
  (* Only the calling thread's dangling stack can be cleared; worker
     threads never leave spans open between parallel regions. *)
  match find_tstate () with
  | Some st ->
      st.st_stack <- [];
      forget_tstate st
  | None -> ()

let record sp =
  Mutex.lock ring_mu;
  !ring.(!next) <- Some sp;
  next := (!next + 1) mod !capacity;
  incr total;
  Mutex.unlock ring_mu

let dropped () =
  Mutex.lock ring_mu;
  let d = max 0 (!total - !capacity) in
  Mutex.unlock ring_mu;
  d

let open_span st ~attrs name =
  let parent = match st.st_stack with sp :: _ -> sp.id | [] -> -1 in
  let sp =
    {
      id = Atomic.fetch_and_add fresh_id 1;
      parent;
      name;
      attrs;
      counters = [];
      start = Clock.now ();
      elapsed = 0.0;
    }
  in
  st.st_stack <- sp :: st.st_stack;
  sp

let close_span st sp =
  sp.elapsed <- Clock.now () -. sp.start;
  (match st.st_stack with
  | top :: rest when top == sp -> st.st_stack <- rest
  | _ ->
      (* An exception unwound past intermediate spans: drop everything
         down to (and including) this span so nesting stays consistent. *)
      let rec pop = function
        | top :: rest -> if top == sp then rest else pop rest
        | [] -> []
      in
      st.st_stack <- pop st.st_stack);
  (match st.st_ctx with
  | Some ctx -> ctx.ctx_spans <- sp :: ctx.ctx_spans
  | None -> ());
  if Atomic.get enabled then record sp;
  forget_tstate st

let with_span ?(attrs = []) ~name f =
  let globally = Atomic.get enabled in
  if (not globally) && Atomic.get active_contexts = 0 then f ()
  else
    let st_opt =
      if globally then Some (tstate ())
      else
        (* Some request is tracing, but possibly not on this thread. *)
        match find_tstate () with
        | Some st when st.st_ctx <> None -> Some st
        | Some _ | None -> None
    in
    match st_opt with
    | None -> f ()
    | Some st -> (
        let sp = open_span st ~attrs name in
        match f () with
        | v ->
            close_span st sp;
            v
        | exception e ->
            close_span st sp;
            raise e)

let timed ?attrs ~name f =
  let t0 = Clock.now () in
  let v = with_span ?attrs ~name f in
  (v, Clock.now () -. t0)

let add_count key v =
  if Atomic.get enabled || Atomic.get active_contexts > 0 then
    match find_tstate () with
    | Some { st_stack = sp :: _; _ } ->
        let prev = Option.value (List.assoc_opt key sp.counters) ~default:0 in
        sp.counters <- (key, prev + v) :: List.remove_assoc key sp.counters
    | Some _ | None -> ()

let with_context ~trace_id f =
  let st = tstate () in
  let saved_stack = st.st_stack and saved_ctx = st.st_ctx in
  let ctx = { ctx_trace_id = trace_id; ctx_spans = [] } in
  st.st_stack <- [];
  st.st_ctx <- Some ctx;
  Atomic.incr active_contexts;
  let finally () =
    st.st_stack <- saved_stack;
    st.st_ctx <- saved_ctx;
    Atomic.decr active_contexts;
    forget_tstate st
  in
  let v =
    Fun.protect ~finally (fun () ->
        let root =
          open_span st ~attrs:[ ("trace_id", trace_id) ] "request"
        in
        match f () with
        | v ->
            close_span st root;
            v
        | exception e ->
            close_span st root;
            raise e)
  in
  (v, List.sort (fun a b -> compare a.id b.id) ctx.ctx_spans)

let current_trace_id () =
  match find_tstate () with
  | Some { st_ctx = Some ctx; _ } -> Some ctx.ctx_trace_id
  | Some _ | None -> None

let spans () =
  Mutex.lock ring_mu;
  let out = ref [] in
  Array.iter (function Some sp -> out := sp :: !out | None -> ()) !ring;
  Mutex.unlock ring_mu;
  List.sort (fun a b -> compare a.id b.id) !out

(* ---- rendering ------------------------------------------------------- *)

let fmt_elapsed s =
  if s < 0.001 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let render_spans ?(dropped = 0) all =
  let known = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace known sp.id ()) all;
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  (* [all] is in open order; building child lists backwards keeps them
     in open order too. *)
  List.iter
    (fun sp ->
      if sp.parent >= 0 && Hashtbl.mem known sp.parent then
        Hashtbl.replace children sp.parent
          (sp
          :: Option.value (Hashtbl.find_opt children sp.parent) ~default:[])
      else roots := sp :: !roots)
    (List.rev all);
  let buf = Buffer.create 512 in
  let rec emit depth sp =
    let kvs =
      List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) sp.attrs
      @ List.map
          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          (List.sort compare sp.counters)
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %8s%s\n" (String.make (2 * depth) ' ')
         (max 1 (34 - (2 * depth)))
         sp.name (fmt_elapsed sp.elapsed)
         (match kvs with [] -> "" | _ -> "  " ^ String.concat " " kvs));
    List.iter (emit (depth + 1))
      (Option.value (Hashtbl.find_opt children sp.id) ~default:[])
  in
  List.iter (emit 0) !roots;
  if dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "(%d older span(s) dropped)\n" dropped);
  Buffer.contents buf

let render_tree () = render_spans ~dropped:(dropped ()) (spans ())

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [id_name] lets callers substitute a stable external id for the
   process-local span id — the trace store renders a request's root span
   under its wire trace id. *)
let span_to_json ?id_name sp =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let obj_of kvs =
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) kvs)
    ^ "}"
  in
  let ident i =
    match id_name with
    | None -> string_of_int i
    | Some f -> if i < 0 then "null" else str (f i)
  in
  obj_of
    [
      ("id", ident sp.id);
      ("parent", ident sp.parent);
      ("name", str sp.name);
      ("start", Printf.sprintf "%.6f" sp.start);
      ("elapsed_s", Printf.sprintf "%.6f" sp.elapsed);
      ("attrs", obj_of (List.map (fun (k, v) -> (k, str v)) sp.attrs));
      ( "counters",
        obj_of (List.map (fun (k, v) -> (k, string_of_int v)) sp.counters) );
    ]

let to_json_lines () = String.concat "\n" (List.map span_to_json (spans ()))
