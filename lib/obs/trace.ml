type span = {
  id : int;
  parent : int;
  name : string;
  attrs : (string * string) list;
  mutable counters : (string * int) list;
  start : float;
  mutable elapsed : float;
}

(* Concurrency: worker domains of the Pb_par pool open and close spans
   of their own, so the open-span stack is domain-local (a span opened
   on a worker has no parent from the submitting domain and renders as
   an extra root), while the completed-span ring and the id source are
   shared — the ring behind a mutex, the id an atomic.  [add_count]
   touches only the top of the calling domain's own stack and needs no
   lock: a span is published to the ring (and hence visible to other
   domains) only at close. *)

let enabled = Atomic.make false
let set_enabled v = Atomic.set enabled v
let is_enabled () = Atomic.get enabled

(* Ring buffer of completed spans. [next] is the write cursor; [total]
   counts every record ever written, so [total - capacity] (clamped) is
   the number of overwritten spans.  All four cells are guarded by
   [ring_mu]. *)
let ring_mu = Mutex.create ()
let capacity = ref 4096
let ring : span option array ref = ref (Array.make !capacity None)
let next = ref 0
let total = ref 0
let fresh_id = Atomic.make 0
let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let stack () = Domain.DLS.get stack_key

let reset ?capacity:cap () =
  Mutex.lock ring_mu;
  (match cap with
  | Some c when c > 0 -> capacity := c
  | Some _ | None -> ());
  ring := Array.make !capacity None;
  next := 0;
  total := 0;
  Atomic.set fresh_id 0;
  Mutex.unlock ring_mu;
  (* Only the calling domain's dangling stack can be cleared; worker
     domains never leave spans open between parallel regions. *)
  stack () := []

let record sp =
  Mutex.lock ring_mu;
  !ring.(!next) <- Some sp;
  next := (!next + 1) mod !capacity;
  incr total;
  Mutex.unlock ring_mu

let dropped () =
  Mutex.lock ring_mu;
  let d = max 0 (!total - !capacity) in
  Mutex.unlock ring_mu;
  d

let open_span ~attrs name =
  let stack = stack () in
  let parent = match !stack with sp :: _ -> sp.id | [] -> -1 in
  let sp =
    {
      id = Atomic.fetch_and_add fresh_id 1;
      parent;
      name;
      attrs;
      counters = [];
      start = Clock.now ();
      elapsed = 0.0;
    }
  in
  stack := sp :: !stack;
  sp

let close_span sp =
  sp.elapsed <- Clock.now () -. sp.start;
  let stack = stack () in
  (match !stack with
  | top :: rest when top == sp -> stack := rest
  | _ ->
      (* An exception unwound past intermediate spans: drop everything
         down to (and including) this span so nesting stays consistent. *)
      let rec pop = function
        | top :: rest -> if top == sp then rest else pop rest
        | [] -> []
      in
      stack := pop !stack);
  record sp

let with_span ?(attrs = []) ~name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let sp = open_span ~attrs name in
    match f () with
    | v ->
        close_span sp;
        v
    | exception e ->
        close_span sp;
        raise e
  end

let timed ?attrs ~name f =
  let t0 = Clock.now () in
  let v = with_span ?attrs ~name f in
  (v, Clock.now () -. t0)

let add_count key v =
  if Atomic.get enabled then
    match !(stack ()) with
    | sp :: _ ->
        let prev = Option.value (List.assoc_opt key sp.counters) ~default:0 in
        sp.counters <- (key, prev + v) :: List.remove_assoc key sp.counters
    | [] -> ()

let spans () =
  Mutex.lock ring_mu;
  let out = ref [] in
  Array.iter (function Some sp -> out := sp :: !out | None -> ()) !ring;
  Mutex.unlock ring_mu;
  List.sort (fun a b -> compare a.id b.id) !out

(* ---- rendering ------------------------------------------------------- *)

let fmt_elapsed s =
  if s < 0.001 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let render_tree () =
  let all = spans () in
  let known = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace known sp.id ()) all;
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  (* [all] is in open order; building child lists backwards keeps them
     in open order too. *)
  List.iter
    (fun sp ->
      if sp.parent >= 0 && Hashtbl.mem known sp.parent then
        Hashtbl.replace children sp.parent
          (sp
          :: Option.value (Hashtbl.find_opt children sp.parent) ~default:[])
      else roots := sp :: !roots)
    (List.rev all);
  let buf = Buffer.create 512 in
  let rec emit depth sp =
    let kvs =
      List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) sp.attrs
      @ List.map
          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          (List.sort compare sp.counters)
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %8s%s\n" (String.make (2 * depth) ' ')
         (max 1 (34 - (2 * depth)))
         sp.name (fmt_elapsed sp.elapsed)
         (match kvs with [] -> "" | _ -> "  " ^ String.concat " " kvs));
    List.iter (emit (depth + 1))
      (Option.value (Hashtbl.find_opt children sp.id) ~default:[])
  in
  List.iter (emit 0) !roots;
  let d = dropped () in
  if d > 0 then
    Buffer.add_string buf (Printf.sprintf "(%d older span(s) dropped)\n" d);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_lines () =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let obj_of kvs =
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) kvs)
    ^ "}"
  in
  String.concat "\n"
    (List.map
       (fun sp ->
         obj_of
           [
             ("id", string_of_int sp.id);
             ("parent", string_of_int sp.parent);
             ("name", str sp.name);
             ("start", Printf.sprintf "%.6f" sp.start);
             ("elapsed_s", Printf.sprintf "%.6f" sp.elapsed);
             ("attrs", obj_of (List.map (fun (k, v) -> (k, str v)) sp.attrs));
             ( "counters",
               obj_of
                 (List.map (fun (k, v) -> (k, string_of_int v)) sp.counters) );
           ])
       (spans ()))
