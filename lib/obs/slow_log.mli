(** Slow-query log: record query texts whose execution exceeds a
    configurable wall-clock threshold.

    Off by default ([threshold () = None]). The log is a bounded
    in-memory buffer (most recent {!val-capacity} entries); surfaces like
    the REPL's [\slowlog] command render it. *)

type entry = {
  query : string;
  elapsed : float;  (** wall-clock seconds *)
  at : float;  (** completion time, seconds since epoch *)
}

val capacity : int
(** Maximum retained entries (oldest dropped first). *)

val set_threshold : float option -> unit
(** [Some seconds] enables the log; [None] (the default) disables it. *)

val threshold : unit -> float option

val observe : query:string -> elapsed:float -> bool
(** Record the query if the log is enabled and [elapsed] meets the
    threshold; returns whether it was logged. *)

val entries : unit -> entry list
(** Logged entries, most recent first. *)

val clear : unit -> unit
(** Drop all entries (the threshold is kept). *)

val render : unit -> string
(** Human-readable listing of {!entries}, most recent first. *)
