(* Minimal HTTP/1.1 exposition endpoint: GET only, one response per
   connection, Connection: close.  Deliberately tiny — it exists so
   operators can scrape /metrics and /healthz without occupying the
   package-query wire protocol, not to be a web server.  Thread per
   connection, same select-polled accept loop and graceful stop shape
   as Pb_net.Server. *)

type response = { code : int; content_type : string; body : string }

type handler = string -> response option

type t = {
  listen : Unix.file_descr;
  bound_port : int;
  stop : bool Atomic.t;
  live : int Atomic.t;
  mutable accept_thread : Thread.t option;
  poll_interval : float;
}

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let write_response oc { code; content_type; body } =
  Printf.fprintf oc
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n"
    code (reason_phrase code) content_type (String.length body);
  output_string oc body;
  flush oc

let not_found = { code = 404; content_type = "text/plain"; body = "not found\n" }

(* "GET /path HTTP/1.1" -> `GET "/path"; tolerate a query string (it is
   dropped — no route here takes parameters). *)
let parse_request_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "GET"; target; _version ] ->
      let path =
        match String.index_opt target '?' with
        | Some i -> String.sub target 0 i
        | None -> target
      in
      `Get path
  | [ _; _; _ ] -> `Other
  | _ -> `Bad

let serve_connection handler fd =
  (* A scraper that connects and never sends a request line must not
     park this thread forever. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
   with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let respond r = try write_response oc r with Sys_error _ -> () in
  (try
     match input_line ic with
     | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
     | line -> (
         (* Drain headers up to the blank line; none are interpreted. *)
         (try
            while String.trim (input_line ic) <> "" do
              ()
            done
          with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
         match parse_request_line line with
         | `Bad ->
             respond
               { code = 400; content_type = "text/plain"; body = "bad request\n" }
         | `Other ->
             respond
               {
                 code = 405;
                 content_type = "text/plain";
                 body = "method not allowed\n";
               }
         | `Get path -> (
             match handler path with
             | Some r -> respond r
             | None -> respond not_found
             | exception _ ->
                 respond
                   {
                     code = 500;
                     content_type = "text/plain";
                     body = "internal error\n";
                   }))
   with Sys_error _ -> ());
  close_out_noerr oc

let accept_loop t handler =
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ t.listen ] [] [] t.poll_interval with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ ->
          (match Unix.accept ~cloexec:true t.listen with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              Atomic.incr t.live;
              ignore
                (Thread.create
                   (fun () ->
                     Fun.protect
                       ~finally:(fun () -> Atomic.decr t.live)
                       (fun () -> serve_connection handler fd))
                   ()));
          loop ()
  in
  loop ()

let start ?(host = "127.0.0.1") ?(poll_interval = 0.05) ~port handler =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen Unix.SO_REUSEADDR true;
     Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen listen 16
   with e ->
     (try Unix.close listen with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      listen;
      bound_port;
      stop = Atomic.make false;
      live = Atomic.make 0;
      accept_thread = None;
      poll_interval;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t handler) ());
  t

let port t = t.bound_port

let stop t =
  Atomic.set t.stop true;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  while Atomic.get t.live > 0 do
    Thread.delay 0.01
  done;
  try Unix.close t.listen with Unix.Unix_error _ -> ()
