(** Structured tracing: nestable, wall-clock-timed spans.

    A span covers one dynamic region of execution ([with_span] brackets
    it); spans opened inside it become its children, giving a per-run
    tree. Completed spans land in a bounded ring buffer (oldest entries
    are overwritten), so tracing can stay on for long sessions without
    unbounded memory growth.

    Tracing is {e off} by default. When disabled and no request context
    is installed, [with_span] is two atomic loads plus a tail call — no
    allocation, no clock read — so instrumentation can be left in hot
    paths permanently.

    The open-span stack is {e thread}-local (keyed by [Thread.id], not
    [Domain.DLS], so concurrent server connection threads trace without
    interleaving): spans opened on a {!Pb_par} worker domain form their
    own tree rooted at that domain (they render as extra roots), while
    the completed-span ring is shared and mutex-guarded, so concurrent
    strategy legs can trace safely.  [timed] always measures (two clock
    reads) and additionally records a span when tracing is active; use
    it where the caller needs the elapsed time regardless (e.g.
    {!Pb_core.Engine} report timings).

    {b Request contexts.} [with_context ~trace_id f] installs a
    per-thread collector: every span the thread closes while [f] runs is
    captured and returned (wrapped under a root ["request"] span), keyed
    by the request's wire trace id. Context spans bypass the global ring
    unless tracing is also globally enabled, so concurrent requests
    never mix; spans opened on worker domains during the request are
    {e not} captured (they have no context) — a documented limit of the
    per-thread design.

    Span naming convention: [layer.operation], lowercase, dot-separated —
    ["sql.scan"], ["milp.solve"], ["strategy.local-search"],
    ["engine.evaluate"]. Attributes carry static context (table name);
    counters carry per-span work tallies (rows scanned, nodes explored). *)

type span = {
  id : int;  (** monotonically increasing; orders spans by open time *)
  parent : int;  (** id of the enclosing span, or [-1] for a root *)
  name : string;
  attrs : (string * string) list;  (** static context, set at open *)
  mutable counters : (string * int) list;  (** work tallies, via {!add_count} *)
  start : float;  (** wall-clock open time (seconds since epoch) *)
  mutable elapsed : float;  (** seconds between open and close *)
}

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val reset : ?capacity:int -> unit -> unit
(** Clear recorded spans (and any dangling open stack of the calling
    thread). [capacity] resizes the ring buffer (default 4096, kept
    across resets unless given). *)

val with_span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a new span. When tracing is inactive (globally
    disabled and no context on this thread) this is just the thunk
    call. The span is recorded even if the thunk raises. *)

val timed : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a * float
(** Like {!with_span}, but always returns the wall-clock elapsed seconds,
    whether or not tracing is active. *)

val add_count : string -> int -> unit
(** Accumulate [v] into a named counter on the innermost open span of
    the calling thread. No-op when tracing is inactive or no span is
    open. *)

val with_context : trace_id:string -> (unit -> 'a) -> 'a * span list
(** Run the thunk under a request trace context: a root span named
    ["request"] (carrying a [trace_id] attribute) is opened around it,
    and every span the calling thread closes inside — the root included
    — is returned in open order. Always collects, independent of
    {!set_enabled}; reentrant (the previous context is restored on
    exit); exception-safe (the context is uninstalled, though the spans
    collected up to the raise are lost with the return value). *)

val current_trace_id : unit -> string option
(** Trace id of the context installed on the calling thread, if any. *)

val spans : unit -> span list
(** Completed spans surviving in the ring, in open order. *)

val dropped : unit -> int
(** Completed spans overwritten because the ring was full. *)

val render_spans : ?dropped:int -> span list -> string
(** Indented tree of the given spans (open order expected): name,
    attributes, elapsed time, counters. Spans whose parent is not in the
    list render as roots. *)

val render_tree : unit -> string
(** {!render_spans} over the global ring. *)

val json_escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val span_to_json : ?id_name:(int -> string) -> span -> string
(** One span as a JSON object. [id_name] substitutes an external name
    for span ids — the trace store maps a request's root span id to its
    wire trace id; with it, a root's [-1] parent becomes [null]. *)

val to_json_lines : unit -> string
(** One JSON object per completed span in the ring, newline-separated,
    in open order: [{"id":…,"parent":…,"name":…,"start":…,
    "elapsed_s":…,"attrs":{…},"counters":{…}}]. *)
