(** Structured tracing: nestable, wall-clock-timed spans.

    A span covers one dynamic region of execution ([with_span] brackets
    it); spans opened inside it become its children, giving a per-run
    tree. Completed spans land in a bounded ring buffer (oldest entries
    are overwritten), so tracing can stay on for long sessions without
    unbounded memory growth.

    Tracing is {e off} by default. When disabled, [with_span] is a single
    branch on an atomic flag plus a tail call — no allocation, no clock
    read — so instrumentation can be left in hot paths permanently.

    The open-span stack is domain-local: spans opened on a {!Pb_par}
    worker domain form their own tree rooted at that domain (they render
    as extra roots), while the completed-span ring is shared and
    mutex-guarded, so concurrent strategy legs can trace safely.
    [timed] always measures (two clock reads) and additionally records a
    span when tracing is enabled; use it where the caller needs the
    elapsed time regardless (e.g. {!Pb_core.Engine} report timings).

    Span naming convention: [layer.operation], lowercase, dot-separated —
    ["sql.scan"], ["milp.solve"], ["strategy.local-search"],
    ["engine.evaluate"]. Attributes carry static context (table name);
    counters carry per-span work tallies (rows scanned, nodes explored). *)

type span = {
  id : int;  (** monotonically increasing; orders spans by open time *)
  parent : int;  (** id of the enclosing span, or [-1] for a root *)
  name : string;
  attrs : (string * string) list;  (** static context, set at open *)
  mutable counters : (string * int) list;  (** work tallies, via {!add_count} *)
  start : float;  (** wall-clock open time (seconds since epoch) *)
  mutable elapsed : float;  (** seconds between open and close *)
}

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val reset : ?capacity:int -> unit -> unit
(** Clear recorded spans (and any dangling open stack). [capacity]
    resizes the ring buffer (default 4096, kept across resets unless
    given). *)

val with_span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a new span. When tracing is disabled this is
    just the thunk call. The span is recorded even if the thunk raises. *)

val timed : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a * float
(** Like {!with_span}, but always returns the wall-clock elapsed seconds,
    whether or not tracing is enabled. *)

val add_count : string -> int -> unit
(** Accumulate [v] into a named counter on the innermost open span.
    No-op when tracing is disabled or no span is open. *)

val spans : unit -> span list
(** Completed spans surviving in the ring, in open order. *)

val dropped : unit -> int
(** Completed spans overwritten because the ring was full. *)

val render_tree : unit -> string
(** Indented tree of the recorded spans: name, attributes, elapsed time,
    counters. Spans whose parent was dropped from the ring render as
    roots. *)

val to_json_lines : unit -> string
(** One JSON object per completed span, newline-separated, in open
    order: [{"id":…,"parent":…,"name":…,"start":…,"elapsed_s":…,
    "attrs":{…},"counters":{…}}]. *)
