(** Minimal HTTP/1.1 server for pull-based exposition.

    Serves GET requests only, one response per connection
    ([Connection: close]), no keep-alive, no TLS — just enough for a
    Prometheus scraper or a curl to pull [/metrics], [/healthz] and
    [/traces/<id>] without occupying the package-query wire protocol.
    One accept thread plus a short-lived thread per connection; idle
    connections are cut by a 5s receive timeout. *)

type response = { code : int; content_type : string; body : string }

type handler = string -> response option
(** Maps a request path (query string stripped) to a response; [None]
    answers 404. An exception from the handler answers 500. *)

type t

val start : ?host:string -> ?poll_interval:float -> port:int -> handler -> t
(** Bind (default host [127.0.0.1]; port [0] picks an ephemeral one, see
    {!port}), spawn the accept thread, return immediately. Ignores
    [SIGPIPE] process-wide. Raises [Unix.Unix_error] if the port is
    taken. [poll_interval] (default 50ms) bounds stop latency. *)

val port : t -> int
(** The actually bound port. *)

val stop : t -> unit
(** Stop accepting, wait for in-flight responses, close the socket. *)
