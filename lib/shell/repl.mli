(** The interactive shell's engine, factored out of the CLI so the whole
    command surface is unit-testable: one call maps an input line to its
    textual response plus the updated session state.

    Input forms:

    - PaQL queries (any line whose first keyword sequence contains
      [PACKAGE]) — evaluated with the session's sticky strategy
      (hybrid until [\strategy] changes it); the result is remembered
      for [\save];
    - SQL statements — executed against the session database;
    - backslash commands:
      {v
      \help                 this list
      \tables               list tables
      \schema TABLE         show a table's columns
      \packages             list saved packages
      \save NAME            save the last query's package
      \revalidate NAME      re-check a saved package
      \drop NAME            delete a saved package
      \explain QUERY        pruning bounds, cost model, plan
      \explain analyze QUERY run the query; print span tree + counters
      \metrics              dump the metrics registry (Prometheus text)
      \slowlog [S|off|clear] slow-query log; S = threshold in seconds
      \strategy [NAME]      show or set the evaluation strategy
      \complete PREFIX      auto-suggest next tokens
      \next K QUERY         top-K packages
      \dump DIR             persist the database to a directory
      \quit                 leave (the CLI handles the actual exit)
      v} *)

type state

val create : ?cache:Pb_sql.Plan_cache.t -> Pb_sql.Database.t -> state
(** [cache] is the prepared-plan cache consulted for every SQL line; it
    defaults to a fresh private cache. The server passes one shared cache
    so all connections benefit from each other's prepared statements. *)

val database : state -> Pb_sql.Database.t

type reaction = {
  output : string;  (** text to print (may be multi-line, "" for quiet) *)
  quit : bool;  (** true after [\quit] *)
}

val handle : ?gov:Pb_util.Gov.t -> state -> string -> reaction
(** Process one input line. The state is mutated in place (the database
    is shared); errors of any kind are reported in [output] rather than
    raised. Blank lines produce empty output.

    [gov] governs the evaluation: PaQL queries run under it through
    {!Pb_core.Engine.run} (a stop yields the best incumbent with a
    "(cancelled)" footer), SQL statements poll it inside every operator
    loop (a stop reports ["cancelled: <reason>"] as the output), and
    [\next] shares it across its successive solves. The server passes a
    per-request token carrying the request deadline; the interactive
    CLI passes none. *)
