module Store = Pb_paql.Package_store
module Trace = Pb_obs.Trace
module Trace_store = Pb_obs.Trace_store
module Progress = Pb_obs.Progress
module Metrics = Pb_obs.Metrics
module Slow_log = Pb_obs.Slow_log
module Gov = Pb_util.Gov

type state = {
  db : Pb_sql.Database.t;
  cache : Pb_sql.Plan_cache.t;
  mutable last_query : Pb_paql.Ast.t option;
  mutable last_package : Pb_paql.Package.t option;
  mutable strategy : Pb_core.Engine.strategy;
      (* sticky per-session evaluation strategy, set by \strategy *)
}

let create ?cache db =
  let cache =
    match cache with Some c -> c | None -> Pb_sql.Plan_cache.create ()
  in
  {
    db;
    cache;
    last_query = None;
    last_package = None;
    strategy = Pb_core.Engine.Hybrid;
  }

let database st = st.db

type reaction = { output : string; quit : bool }

let ok output = { output; quit = false }

let help_text =
  String.concat "\n"
    [
      "PaQL queries (mentioning PACKAGE) and SQL statements run directly.";
      "Commands:";
      "  \\help                 this list";
      "  \\tables               list tables";
      "  \\schema TABLE         show a table's columns";
      "  \\packages             list saved packages";
      "  \\save NAME            save the last query's package";
      "  \\revalidate NAME      re-check a saved package";
      "  \\drop NAME            delete a saved package";
      "  \\explain QUERY        pruning bounds, cost model, plan";
      "  \\explain analyze QUERY run the query; print span tree + counters";
      "  \\metrics              dump the metrics registry (Prometheus text)";
      "  \\traces [ID]          list retained request traces / show one";
      "  \\slowlog [S|off|clear] slow-query log; S = threshold in seconds";
      "  \\plan SQL             show the SQL planner's decisions";
      "  \\strategy [NAME]      show or set the evaluation strategy";
      "  \\complete PREFIX      auto-suggest next tokens";
      "  \\next K QUERY         top-K packages";
      "  \\dump DIR             persist the database to a directory";
      "  \\quit                 leave";
    ]

let strip s = String.trim s

(* Heuristic dispatch: a statement that mentions the PACKAGE keyword is
   PaQL; anything else starting with a keyword is SQL. *)
let is_paql line =
  match Pb_sql.Lexer.tokenize line with
  | exception Pb_sql.Lexer.Lex_error _ -> false
  | tokens ->
      List.exists (function Pb_sql.Lexer.Keyword "PACKAGE" -> true | _ -> false) tokens

(* The sticky \strategy command: every name the engine knows, using the
   same spellings Engine.strategy_name prints in result footers. *)
let strategies =
  [
    ("hybrid", Pb_core.Engine.Hybrid);
    ("ilp", Pb_core.Engine.Ilp);
    ("brute-force", Pb_core.Engine.Brute_force { use_pruning = false });
    ("brute-force+pruning", Pb_core.Engine.Brute_force { use_pruning = true });
    ("local-search", Pb_core.Engine.Local_search Pb_core.Local_search.default_params);
    ("annealing", Pb_core.Engine.Anneal Pb_core.Annealing.default_params);
    ("sql-generation", Pb_core.Engine.Sql_generation Pb_core.Sql_generate.default_params);
    ("sketch-refine", Pb_core.Engine.Sketch_refine Pb_core.Sketch_refine.default_params);
  ]

let strategy_names = String.concat ", " (List.map fst strategies)

(* Proof annotation in the one-line strategy footer: proven outcomes
   keep the historical "(proven optimal)" wording, a governed stop is
   called out, a plain feasible answer stays bare. *)
let proof_suffix = function
  | Pb_core.Engine.Optimal | Pb_core.Engine.Infeasible -> " (proven optimal)"
  | Pb_core.Engine.Feasible -> ""
  | Pb_core.Engine.Cancelled -> " (cancelled)"

let run_paql ?gov st text =
  match Pb_paql.Parser.parse text with
  | exception Pb_paql.Parser.Parse_error msg -> ok ("paql error: " ^ msg)
  | query -> (
      match Pb_core.Engine.run ?gov ~strategy:st.strategy st.db query with
      | exception Failure msg -> ok ("error: " ^ msg)
      | result ->
          st.last_query <- Some query;
          st.last_package <- result.Pb_core.Engine.package;
          ignore
            (Slow_log.observe ~query:text
               ~elapsed:result.Pb_core.Engine.elapsed);
          let buf = Buffer.create 256 in
          (match result.Pb_core.Engine.package with
          | Some pkg -> Buffer.add_string buf (Pb_paql.Package.to_string pkg)
          | None -> Buffer.add_string buf "no valid package\n");
          (match result.Pb_core.Engine.objective with
          | Some v -> Buffer.add_string buf (Printf.sprintf "objective: %g\n" v)
          | None -> ());
          Buffer.add_string buf
            (Printf.sprintf "strategy: %s%s, %.3fs"
               result.Pb_core.Engine.strategy_used
               (proof_suffix result.Pb_core.Engine.proof)
               result.Pb_core.Engine.elapsed);
          ok (Buffer.contents buf))

let run_sql ?gov st text =
  (* Prepared-statement path: repeat text skips lex/parse/resolve and
     reuses the cached statement's compiled closures via [memo]. *)
  match
    Pb_sql.Plan_cache.lookup st.cache st.db ~parse:Pb_sql.Parser.parse_script
      text
  with
  | exception Pb_sql.Parser.Parse_error msg -> ok ("sql error: " ^ msg)
  | statements, memo -> (
      let buf = Buffer.create 256 in
      match
        Trace.timed ~name:"sql.script" (fun () ->
            List.iter
              (fun stmt ->
                match Pb_sql.Executor.execute ~memo ?gov st.db stmt with
                | Pb_sql.Executor.Rows rel ->
                    Buffer.add_string buf
                      (Pb_relation.Relation.to_table ~max_rows:40 rel)
                | Pb_sql.Executor.Affected n ->
                    Buffer.add_string buf
                      (Printf.sprintf "%d row(s) affected\n" n)
                | Pb_sql.Executor.Created -> Buffer.add_string buf "ok\n")
              statements)
      with
      | (), elapsed ->
          ignore (Slow_log.observe ~query:text ~elapsed);
          ok (String.trim (Buffer.contents buf))
      | exception Pb_sql.Executor.Eval_error msg -> ok ("sql error: " ^ msg)
      | exception Gov.Interrupted r ->
          ok ("cancelled: " ^ Gov.reason_to_string r))

(* EXPLAIN ANALYZE: actually run the query with tracing on, then print
   the span tree plus the engine/SQL counter deltas the run caused. *)
let explain_analyze ?gov st text =
  match Pb_paql.Parser.parse text with
  | exception Pb_paql.Parser.Parse_error msg -> ok ("paql error: " ^ msg)
  | query -> (
      let was_enabled = Trace.is_enabled () in
      Trace.reset ();
      Trace.set_enabled true;
      let before = Metrics.snapshot () in
      match Pb_core.Engine.run ?gov ~strategy:st.strategy st.db query with
      | exception e ->
          Trace.set_enabled was_enabled;
          (match e with
          | Failure msg -> ok ("error: " ^ msg)
          | e -> raise e)
      | result ->
          let after = Metrics.snapshot () in
          let tree = Trace.render_tree () in
          Trace.set_enabled was_enabled;
          st.last_query <- Some query;
          st.last_package <- result.Pb_core.Engine.package;
          ignore
            (Slow_log.observe ~query:text
               ~elapsed:result.Pb_core.Engine.elapsed);
          let buf = Buffer.create 512 in
          Buffer.add_string buf tree;
          let deltas =
            List.filter_map
              (fun (name, v) ->
                let v0 =
                  Option.value (List.assoc_opt name before) ~default:0.0
                in
                if v > v0 then Some (name, v -. v0) else None)
              after
          in
          if deltas <> [] then begin
            Buffer.add_string buf "counters:\n";
            List.iter
              (fun (name, d) ->
                Buffer.add_string buf (Printf.sprintf "  %s +%g\n" name d))
              deltas
          end;
          (match result.Pb_core.Engine.progress with
          | [] -> ()
          | events ->
              Buffer.add_string buf "progress:\n";
              List.iter
                (fun e ->
                  Buffer.add_string buf
                    ("  " ^ Progress.event_to_string e ^ "\n"))
                events);
          (match result.Pb_core.Engine.objective with
          | Some v -> Buffer.add_string buf (Printf.sprintf "objective: %g\n" v)
          | None -> ());
          Buffer.add_string buf
            (Printf.sprintf "strategy: %s%s, %.3fs"
               result.Pb_core.Engine.strategy_used
               (proof_suffix result.Pb_core.Engine.proof)
               result.Pb_core.Engine.elapsed);
          ok (Buffer.contents buf))

(* "\explain analyze Q" routes to explain_analyze; bare "\explain Q"
   keeps the static pruning/cost-model report. *)
let split_analyze text =
  let lower = String.lowercase_ascii text in
  let prefix = "analyze" in
  let n = String.length prefix in
  if
    String.length lower > n
    && String.sub lower 0 n = prefix
    && (lower.[n] = ' ' || lower.[n] = '\t')
  then Some (strip (String.sub text n (String.length text - n)))
  else None

let command ?gov st name raw_arg =
  (* \complete is whitespace-sensitive: "SELECT " and "SELECT" sit in
     different grammatical positions. Everything else trims. *)
  if name = "complete" then
    match Pb_explore.Complete.suggest st.db raw_arg with
    | [] -> ok "(no suggestions)"
    | suggestions -> ok (String.concat "\n" suggestions)
  else
  match (name, strip raw_arg) with
  | "help", _ -> ok help_text
  | "quit", _ | "q", _ -> { output = ""; quit = true }
  | "tables", _ ->
      ok (String.concat "\n" (Pb_sql.Database.table_names st.db))
  | "schema", table -> (
      match Pb_sql.Database.find st.db table with
      | None -> ok ("no such table: " ^ table)
      | Some rel ->
          ok
            (String.concat "\n"
               (List.map
                  (fun { Pb_relation.Schema.name; ty } ->
                    Printf.sprintf "%-16s %s" name
                      (Pb_relation.Value.ty_to_string ty))
                  (Pb_relation.Schema.columns (Pb_relation.Relation.schema rel)))))
  | "packages", _ -> (
      match Store.list_saved st.db with
      | [] -> ok "(no saved packages)"
      | entries ->
          ok
            (String.concat "\n"
               (List.map
                  (fun e ->
                    Printf.sprintf "%-16s %d tuple(s) from %-12s %s"
                      e.Store.name e.Store.cardinality e.Store.source_relation
                      e.Store.query_text)
                  entries)))
  | "save", name -> (
      match (st.last_query, st.last_package) with
      | Some query, Some pkg -> (
          match Store.save st.db ~name ~query pkg with
          | () -> ok (Printf.sprintf "saved as %s (table pkg_%s)" name name)
          | exception Failure msg -> ok msg)
      | _ -> ok "nothing to save: run a PaQL query that finds a package first")
  | "revalidate", name -> (
      match Store.revalidate st.db ~name with
      | Ok true -> ok "still valid"
      | Ok false -> ok "NO LONGER valid against the current data"
      | Error msg -> ok msg)
  | "drop", name ->
      if Store.delete st.db ~name then ok ("dropped " ^ name)
      else ok ("no saved package named " ^ name)
  | "explain", text when split_analyze text <> None -> (
      match split_analyze text with
      | Some query_text -> explain_analyze ?gov st query_text
      | None -> assert false)
  | "explain", text -> (
      match Pb_paql.Parser.parse text with
      | exception Pb_paql.Parser.Parse_error msg -> ok ("paql error: " ^ msg)
      | query -> (
          match Pb_core.Coeffs.make st.db query with
          | exception Failure msg -> ok ("error: " ^ msg)
          | c ->
              let b = Pb_core.Pruning.cardinality_bounds c in
              ok
                (Printf.sprintf
                   "candidates: %d\ncardinality bounds: %s\nsearch space: \
                    2^%.1f -> 2^%.1f\n%s"
                   c.Pb_core.Coeffs.n
                   (Pb_core.Pruning.bounds_to_string b)
                   (Pb_core.Pruning.log2_unpruned c)
                   (Pb_core.Pruning.log2_pruned c b)
                   (String.trim (Pb_core.Cost_model.to_table c)))))
  | "strategy", "" ->
      ok
        (Printf.sprintf "strategy: %s\navailable: %s"
           (Pb_core.Engine.strategy_name st.strategy)
           strategy_names)
  | "strategy", name -> (
      match List.assoc_opt (String.lowercase_ascii name) strategies with
      | Some s ->
          st.strategy <- s;
          ok ("strategy set to " ^ Pb_core.Engine.strategy_name s)
      | None ->
          ok
            (Printf.sprintf "unknown strategy: %s\navailable: %s" name
               strategy_names))
  | "next", rest -> (
      match String.index_opt rest ' ' with
      | None -> ok "usage: \\next K QUERY"
      | Some i -> (
          let k = String.sub rest 0 i in
          let text = String.sub rest (i + 1) (String.length rest - i - 1) in
          match (int_of_string_opt k, Pb_paql.Parser.parse text) with
          | None, _ -> ok "usage: \\next K QUERY"
          | Some k, query ->
              let packages =
                Pb_core.Engine.next_packages ?gov ~limit:k st.db query
              in
              if packages = [] then ok "no valid package"
              else
                ok
                  (String.concat "\n"
                     (List.mapi
                        (fun i pkg ->
                          Printf.sprintf "#%d objective=%s tuples=%s" (i + 1)
                            (match
                               Pb_paql.Semantics.objective_value ~db:st.db query
                                 pkg
                             with
                            | Some v -> Printf.sprintf "%g" v
                            | None -> "-")
                            (String.concat ","
                               (List.map string_of_int
                                  (Pb_paql.Package.support pkg))))
                        packages))
          | exception Pb_paql.Parser.Parse_error msg -> ok ("paql error: " ^ msg)))
  | "plan", sql -> (
      match Pb_sql.Parser.parse_select sql with
      | exception Pb_sql.Parser.Parse_error msg -> ok ("sql error: " ^ msg)
      | q -> (
          let eval schema row e = Pb_sql.Executor.eval_expr ~db:st.db schema row e in
          match
            Pb_sql.Planner.execute st.db ~eval ~from:q.Pb_sql.Ast.from
              ~where:q.Pb_sql.Ast.where
          with
          | exception Failure msg -> ok ("plan error: " ^ msg)
          | rel, stats ->
              ok
                (Printf.sprintf
                   "source rows after plan: %d\nindex scans: %d\nhash joins: \
                    %d\nnested products: %d\npushed predicates: %d"
                   (Pb_relation.Relation.cardinality rel)
                   stats.Pb_sql.Planner.index_scans
                   stats.Pb_sql.Planner.hash_joins
                   stats.Pb_sql.Planner.nested_products
                   stats.Pb_sql.Planner.pushed_predicates)))
  | "metrics", _ -> ok (String.trim (Metrics.dump ()))
  | "traces", "" -> (
      match Trace_store.ids Trace_store.default with
      | [] -> ok "(no retained traces)"
      | ids ->
          ok
            (String.concat "\n"
               (List.filter_map
                  (fun id ->
                    Option.map
                      (fun e ->
                        Printf.sprintf "%s  %-9s %8.3fs  %d span(s)"
                          e.Trace_store.trace_id e.Trace_store.status
                          e.Trace_store.elapsed
                          (List.length e.Trace_store.spans))
                      (Trace_store.find Trace_store.default id))
                  ids)))
  | "traces", id -> (
      match Trace_store.find Trace_store.default id with
      | Some entry -> ok (String.trim (Trace_store.render entry))
      | None -> ok ("no retained trace with id " ^ id))
  (* Undocumented crash lever for the error-path regression tests: the
     server must answer [internal] and its admission gauges must return
     to zero after the handler raises. *)
  | "panic", msg -> failwith (if msg = "" then "panic" else msg)
  | "slowlog", "" ->
      let header =
        match Slow_log.threshold () with
        | None -> "slow-query log is off (\\slowlog SECONDS to enable)"
        | Some t -> Printf.sprintf "slow-query log threshold: %gs" t
      in
      ok (header ^ "\n" ^ Slow_log.render ())
  | "slowlog", "off" ->
      Slow_log.set_threshold None;
      ok "slow-query log disabled"
  | "slowlog", "clear" ->
      Slow_log.clear ();
      ok "slow-query log cleared"
  | "slowlog", arg -> (
      match float_of_string_opt arg with
      | Some t when t >= 0.0 ->
          Slow_log.set_threshold (Some t);
          ok (Printf.sprintf "logging queries slower than %gs" t)
      | Some _ | None -> ok "usage: \\slowlog [SECONDS|off|clear]")
  | "dump", dir -> (
      match Pb_sql.Persist.save_dir st.db dir with
      | () -> ok ("database written to " ^ dir)
      | exception Sys_error msg -> ok ("dump failed: " ^ msg)
      | exception Failure msg -> ok ("dump failed: " ^ msg))
  | name, _ -> ok (Printf.sprintf "unknown command \\%s (try \\help)" name)

let left_trim s =
  let n = String.length s in
  let rec go i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then go (i + 1) else i in
  let i = go 0 in
  String.sub s i (n - i)

let handle ?gov st line =
  let trimmed = strip line in
  if trimmed = "" then ok ""
  else if trimmed.[0] = '\\' then begin
    (* Keep trailing whitespace: \complete is sensitive to it. *)
    let body =
      let lt = left_trim line in
      String.sub lt 1 (String.length lt - 1)
    in
    match String.index_opt body ' ' with
    | Some i ->
        command ?gov st
          (String.sub body 0 i)
          (String.sub body (i + 1) (String.length body - i - 1))
    | None -> command ?gov st body ""
  end
  else
    let line = trimmed in
    let line =
      (* allow a trailing semicolon on interactive input *)
      let n = String.length line in
      if n > 0 && line.[n - 1] = ';' then String.sub line 0 (n - 1) else line
    in
    if is_paql line then run_paql ?gov st line else run_sql ?gov st line
