(** Wire protocol for the PackageBuilder server: a length-delimited text
    framing with a one-line header inside each frame.

    {2 Framing}

    Every message, in both directions, is one {e frame}:

    {v <decimal byte length of payload>\n<payload> v}

    The length header is plain ASCII digits (no sign, no padding)
    terminated by a single [\n]; the payload follows verbatim — it may
    contain any bytes, including newlines. Frames larger than
    {!max_frame} are rejected without reading the payload, because a
    reader that has seen an oversized header can no longer trust the
    stream.

    {2 Requests}

    A request payload is a header line followed by the input text:

    {v REQ [<deadline seconds>]\n<input line for the REPL> v}

    The optional deadline is a positive float; when present the server
    aborts the request with a [deadline] error once that much wall-clock
    time has elapsed. Without it the server's default applies.

    {2 Responses}

    {v OK\n<output text> v}
    {v ERR <code>\n<message> v}

    where [<code>] is one of [busy], [deadline], [proto], [shutdown],
    [internal] — see {!error_code}. The codec never raises on malformed
    input; decoders return [Error] and {!read_frame} returns {!Bad}. *)

val max_frame : int
(** Maximum accepted payload size in bytes (8 MiB). *)

type request = {
  text : string;  (** the REPL input line (PaQL, SQL, or \ command) *)
  deadline : float option;
      (** per-request wall-clock budget in seconds; [None] = server default *)
}

type error_code =
  | Busy  (** connection limit reached; retry later *)
  | Deadline_exceeded  (** the request ran past its deadline *)
  | Bad_request  (** unparseable frame or header *)
  | Shutting_down  (** server is draining; no new requests *)
  | Internal  (** unexpected server-side exception *)

type response = (string, error_code * string) result

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

(** {1 Framing} *)

type frame =
  | Frame of string  (** one complete payload *)
  | Eof  (** clean end of stream (before any header byte) *)
  | Bad of string  (** truncated, oversized, or malformed — close the
                       connection, the stream is out of sync *)

val write_frame : out_channel -> string -> unit
(** Write one frame and flush. *)

val read_frame : in_channel -> frame

val read_frame_gen :
  read_byte:(unit -> char option) ->
  read_exact:(int -> string option) ->
  frame
(** Framing over caller-supplied byte sources ([None] = end of stream) —
    the server reads straight from the socket fd with no input
    buffering, so a pipelined second request is never stranded in a
    channel buffer the poll loop cannot see. *)

(** {1 Payload codecs} *)

val encode_request : request -> string
val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result
