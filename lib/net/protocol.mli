(** Wire protocol for the PackageBuilder server, version 2: a
    length-delimited text framing with a versioned one-line header inside
    each frame.

    {2 Framing}

    Every message, in both directions, is one {e frame}:

    {v <decimal byte length of payload>\n<payload> v}

    The length header is plain ASCII digits (no sign, no padding)
    terminated by a single [\n]; the payload follows verbatim — it may
    contain any bytes, including newlines. Frames larger than
    {!max_frame} are rejected without reading the payload, because a
    reader that has seen an oversized header can no longer trust the
    stream. The framing layer is unchanged from protocol v1; versioning
    lives in the payload headers.

    {2 Handshake}

    A client opens with a hello frame and the server answers with its
    own:

    {v PB2 HELLO <version> v}

    Each side refuses to proceed when the versions differ; a v1 peer
    (headers [REQ]/[OK]/[ERR] without the [PB2] magic) is detected and
    named explicitly in the error.

    {2 Requests}

    {v PB2 REQ [<deadline seconds>] [trace=<id>]\n<input line for the REPL> v}

    The optional deadline is a positive float; when present the server
    cancels the request's governance token once that much wall-clock
    time has elapsed and answers with the [deadline] status (carrying
    whatever partial output the evaluation produced). Without it the
    server's default applies.

    The optional [trace=] field carries the request's distributed trace
    context: a client-generated id of 16 random bytes as 32 lowercase
    hex characters. The server adopts it as the root of the request's
    span tree, retrievable afterwards by that id ([\traces <id>] over
    the wire, [/traces/<id>] over HTTP). A v2 peer predating the field
    simply omits it and the server generates an id — backward
    compatible within v2; both fields are accepted in either order.

    {2 Responses}

    {v PB2 <status>\n<body> v}

    where [<status>] is one of [ok], [busy], [deadline], [cancelled],
    [proto], [shutdown], [internal] — see {!status}. The codec never
    raises on malformed input; decoders return [Error] and {!read_frame}
    returns {!Bad}. *)

val max_frame : int
(** Maximum accepted payload size in bytes (8 MiB). *)

val max_header_digits : int
(** Maximum digits in a frame-length header (8; [max_frame < 10^8]) —
    shared with {!Assembler} so both readers reject the same prefixes. *)

val version : int
(** Protocol version spoken by this build (2). *)

val magic : string
(** Payload-header magic, ["PB2"]. *)

type request = {
  text : string;  (** the REPL input line (PaQL, SQL, or \ command) *)
  deadline : float option;
      (** per-request wall-clock budget in seconds; [None] = server default *)
  trace : string option;
      (** client-generated trace id ({!valid_trace_id}); [None] lets the
          server generate one *)
  data : bool;
      (** [mode=data] header field: [text] is one SQL statement, executed
          directly (no REPL session) with the result encoded by
          {!Wire_data} — the machine-readable path the shard router uses
          to pull rows and partial aggregates. Omitted on the wire when
          false, so plain clients are unchanged. *)
}

val valid_trace_id : string -> bool
(** 32 lowercase hex characters (16 bytes), nothing else. *)

val fresh_trace_id : unit -> string
(** A new random trace id. Thread-safe; self-seeded on first use. *)

type status =
  | Ok  (** request evaluated; body is the REPL output *)
  | Busy  (** admission queue full or connection limit reached; retry *)
  | Deadline_exceeded
      (** the request's deadline passed and its evaluation was
          cooperatively cancelled; body may carry partial output *)
  | Cancelled  (** the request's governance token was cancelled *)
  | Bad_request  (** unparseable frame or header, or version mismatch *)
  | Shutting_down  (** server is draining; no new requests *)
  | Internal  (** unexpected server-side exception *)

type response = { status : status; body : string }

type client_frame =
  | Hello of int  (** handshake carrying the client's protocol version *)
  | Req of request

val status_to_string : status -> string
val status_of_string : string -> status option

val is_error : status -> bool
(** Everything but {!Ok}. *)

(** {1 Framing} *)

type frame =
  | Frame of string  (** one complete payload *)
  | Eof  (** clean end of stream (before any header byte) *)
  | Bad of string  (** truncated, oversized, or malformed — close the
                       connection, the stream is out of sync *)

val write_frame : out_channel -> string -> unit
(** Write one frame and flush. *)

val read_frame : in_channel -> frame

val read_frame_gen :
  read_byte:(unit -> char option) ->
  read_exact:(int -> string option) ->
  frame
(** Framing over caller-supplied byte sources ([None] = end of stream) —
    the server reads straight from the socket fd with no input
    buffering, so a pipelined second request is never stranded in a
    channel buffer the poll loop cannot see. *)

(** {1 Payload codecs} *)

val split_first_line : string -> string * string
(** [(header, rest)] at the first newline; no newline means
    [(s, "")]. *)

val encode_hello : int -> string
(** Hello payload, sent by both sides during the handshake. *)

val decode_hello : string -> (int, string) result

val encode_request : request -> string

val decode_client_frame : string -> (client_frame, string) result
(** Server-side decoding of either hello or request payloads. A v1
    [REQ] header decodes to a version-mismatch error naming both
    protocols. *)

val encode_response : response -> string
val decode_response : string -> (response, string) result
