/* Readiness-polling stubs for Pb_net.Poller.
 *
 * On Linux the handle wraps an epoll instance: add/modify/remove are
 * O(1) kernel calls and wait returns only ready descriptors, so the
 * per-wakeup cost is O(ready), not O(open connections).  Elsewhere the
 * handle keeps its own interest table and waits with poll(2) — same
 * semantics, O(open) per wait — so the OCaml side never branches on
 * the platform.
 *
 * Event bits shared with poller.ml: 1 = readable, 2 = writable,
 * 4 = error/hangup.  The wait stub releases the OCaml runtime lock,
 * letting worker threads run while the event loop blocks.
 */

#include <caml/alloc.h>
#include <caml/custom.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#define PB_EV_IN 1
#define PB_EV_OUT 2
#define PB_EV_ERR 4

/* Ready events are staged here between wait() returning and the OCaml
   wrapper copying them out; bounded per wait call. */
#define PB_MAX_EVENTS 1024

#ifdef __linux__
#include <sys/epoll.h>

typedef struct {
  int epfd;
  /* malloc'd, NOT inline: epoll_wait fills this while the runtime lock
     is released, during which a GC compaction may move the custom
     block.  The kernel must write into memory that cannot move. */
  struct epoll_event *ready;
} pb_poller;

static void pb_poller_finalize(value v) {
  pb_poller *p = (pb_poller *)Data_custom_val(v);
  if (p->epfd >= 0) close(p->epfd);
  p->epfd = -1;
  free(p->ready);
  p->ready = NULL;
}

static struct custom_operations pb_poller_ops = {
    "pb_net.poller",          pb_poller_finalize,
    custom_compare_default,   custom_hash_default,
    custom_serialize_default, custom_deserialize_default,
    custom_compare_ext_default, custom_fixed_length_default};

CAMLprim value pb_poller_create(value unit) {
  CAMLparam1(unit);
  CAMLlocal1(res);
  int epfd = epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) uerror("epoll_create1", Nothing);
  struct epoll_event *ready = malloc(PB_MAX_EVENTS * sizeof(struct epoll_event));
  if (!ready) {
    close(epfd);
    caml_raise_out_of_memory();
  }
  res = caml_alloc_custom(&pb_poller_ops, sizeof(pb_poller), 0, 1);
  pb_poller *p = (pb_poller *)Data_custom_val(res);
  p->epfd = epfd;
  p->ready = ready;
  CAMLreturn(res);
}

static uint32_t pb_to_epoll(int bits) {
  uint32_t ev = 0;
  if (bits & PB_EV_IN) ev |= EPOLLIN;
  if (bits & PB_EV_OUT) ev |= EPOLLOUT;
  return ev;
}

/* op: 0 = add, 1 = modify, 2 = remove */
CAMLprim value pb_poller_ctl(value vp, value vop, value vfd, value vbits) {
  CAMLparam4(vp, vop, vfd, vbits);
  pb_poller *p = (pb_poller *)Data_custom_val(vp);
  int op = Int_val(vop) == 0 ? EPOLL_CTL_ADD
           : Int_val(vop) == 1 ? EPOLL_CTL_MOD
                               : EPOLL_CTL_DEL;
  struct epoll_event ev;
  memset(&ev, 0, sizeof ev);
  ev.events = pb_to_epoll(Int_val(vbits));
  ev.data.fd = Int_val(vfd);
  if (epoll_ctl(p->epfd, op, Int_val(vfd), &ev) < 0)
    uerror("epoll_ctl", Nothing);
  CAMLreturn(Val_unit);
}

CAMLprim value pb_poller_wait(value vp, value vtimeout_ms) {
  CAMLparam2(vp, vtimeout_ms);
  CAMLlocal2(arr, pair);
  pb_poller *p = (pb_poller *)Data_custom_val(vp);
  /* Copy out of the custom block before releasing the lock: a GC
     compaction may move the block while we wait, so neither p nor
     &p->ready may be used until the lock is re-held (and even then p
     is stale).  epfd and the malloc'd buffer themselves never move. */
  int epfd = p->epfd;
  struct epoll_event *ready = p->ready;
  int timeout = Int_val(vtimeout_ms);
  int n;
  caml_release_runtime_system();
  n = epoll_wait(epfd, ready, PB_MAX_EVENTS, timeout);
  caml_acquire_runtime_system();
  if (n < 0) {
    if (errno == EINTR) n = 0;
    else uerror("epoll_wait", Nothing);
  }
  if (n == 0) CAMLreturn(caml_alloc(0, 0)); /* the empty array atom */
  arr = caml_alloc(n, 0);
  for (int i = 0; i < n; i++) {
    int bits = 0;
    uint32_t ev = ready[i].events;
    if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLPRI)) bits |= PB_EV_IN;
    if (ev & EPOLLOUT) bits |= PB_EV_OUT;
    if (ev & (EPOLLERR | EPOLLHUP)) bits |= PB_EV_ERR;
    pair = caml_alloc_tuple(2);
    Field(pair, 0) = Val_int(ready[i].data.fd);
    Field(pair, 1) = Val_int(bits);
    Store_field(arr, i, pair);
  }
  CAMLreturn(arr);
}

CAMLprim value pb_poller_close(value vp) {
  CAMLparam1(vp);
  pb_poller *p = (pb_poller *)Data_custom_val(vp);
  if (p->epfd >= 0) close(p->epfd);
  p->epfd = -1;
  CAMLreturn(Val_unit);
}

#else /* !__linux__: portable poll(2) backend with an interest table */

#include <poll.h>

typedef struct {
  struct pollfd *fds; /* interest table, compacted */
  int n;
  int cap;
  int closed;
} pb_poller;

static void pb_poller_finalize(value v) {
  pb_poller *p = (pb_poller *)Data_custom_val(v);
  free(p->fds);
  p->fds = NULL;
}

static struct custom_operations pb_poller_ops = {
    "pb_net.poller",          pb_poller_finalize,
    custom_compare_default,   custom_hash_default,
    custom_serialize_default, custom_deserialize_default,
    custom_compare_ext_default, custom_fixed_length_default};

CAMLprim value pb_poller_create(value unit) {
  CAMLparam1(unit);
  CAMLlocal1(res);
  res = caml_alloc_custom(&pb_poller_ops, sizeof(pb_poller), 0, 1);
  pb_poller *p = (pb_poller *)Data_custom_val(res);
  p->cap = 64;
  p->n = 0;
  p->closed = 0;
  p->fds = malloc(p->cap * sizeof(struct pollfd));
  if (!p->fds) caml_raise_out_of_memory();
  CAMLreturn(res);
}

static short pb_to_poll(int bits) {
  short ev = 0;
  if (bits & PB_EV_IN) ev |= POLLIN;
  if (bits & PB_EV_OUT) ev |= POLLOUT;
  return ev;
}

CAMLprim value pb_poller_ctl(value vp, value vop, value vfd, value vbits) {
  CAMLparam4(vp, vop, vfd, vbits);
  pb_poller *p = (pb_poller *)Data_custom_val(vp);
  int fd = Int_val(vfd), op = Int_val(vop);
  int idx = -1;
  for (int i = 0; i < p->n; i++)
    if (p->fds[i].fd == fd) { idx = i; break; }
  if (op == 0) { /* add */
    if (idx >= 0) unix_error(EEXIST, "poller_add", Nothing);
    if (p->n == p->cap) {
      p->cap *= 2;
      struct pollfd *nf = realloc(p->fds, p->cap * sizeof(struct pollfd));
      if (!nf) caml_raise_out_of_memory();
      p->fds = nf;
    }
    p->fds[p->n].fd = fd;
    p->fds[p->n].events = pb_to_poll(Int_val(vbits));
    p->n++;
  } else if (op == 1) { /* modify */
    if (idx < 0) unix_error(ENOENT, "poller_modify", Nothing);
    p->fds[idx].events = pb_to_poll(Int_val(vbits));
  } else { /* remove */
    if (idx < 0) unix_error(ENOENT, "poller_remove", Nothing);
    p->fds[idx] = p->fds[p->n - 1];
    p->n--;
  }
  CAMLreturn(Val_unit);
}

CAMLprim value pb_poller_wait(value vp, value vtimeout_ms) {
  CAMLparam2(vp, vtimeout_ms);
  CAMLlocal2(arr, pair);
  pb_poller *p = (pb_poller *)Data_custom_val(vp);
  int timeout = Int_val(vtimeout_ms);
  /* snapshot so the table can't move under the released lock */
  int n = p->n;
  struct pollfd *snap = malloc((n > 0 ? n : 1) * sizeof(struct pollfd));
  if (!snap) caml_raise_out_of_memory();
  memcpy(snap, p->fds, n * sizeof(struct pollfd));
  int r;
  caml_release_runtime_system();
  r = poll(snap, n, timeout);
  caml_acquire_runtime_system();
  if (r < 0 && errno != EINTR) {
    free(snap);
    uerror("poll", Nothing);
  }
  int ready = 0;
  if (r > 0)
    for (int i = 0; i < n; i++)
      if (snap[i].revents) ready++;
  if (ready > PB_MAX_EVENTS) ready = PB_MAX_EVENTS;
  if (ready == 0) {
    free(snap);
    CAMLreturn(caml_alloc(0, 0)); /* the empty array atom */
  }
  arr = caml_alloc(ready, 0);
  int k = 0;
  for (int i = 0; i < n && k < ready; i++) {
    if (!snap[i].revents) continue;
    int bits = 0;
    if (snap[i].revents & (POLLIN | POLLPRI)) bits |= PB_EV_IN;
    if (snap[i].revents & POLLOUT) bits |= PB_EV_OUT;
    if (snap[i].revents & (POLLERR | POLLHUP | POLLNVAL)) bits |= PB_EV_ERR;
    pair = caml_alloc_tuple(2);
    Field(pair, 0) = Val_int(snap[i].fd);
    Field(pair, 1) = Val_int(bits);
    Store_field(arr, k++, pair);
  }
  free(snap);
  CAMLreturn(arr);
}

CAMLprim value pb_poller_close(value vp) {
  CAMLparam1(vp);
  pb_poller *p = (pb_poller *)Data_custom_val(vp);
  p->n = 0;
  p->closed = 1;
  CAMLreturn(Val_unit);
}

#endif
