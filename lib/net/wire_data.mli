(** Machine-readable result codec for [mode=data] requests.

    The shard router needs exact values back from shards — the REPL's
    rendered tables truncate at 40 rows and lose types — so a data-mode
    response body carries the {!Pb_sql.Executor.result} itself:

    {v
    rel <nrows>
    <name>:<ty>\t<name>:<ty>...        (schema line, tab-separated)
    <value>\t<value>...                (one line per row)
    v}

    or [affected <n>] / [created]. Values are tagged so NULL, type and
    content survive the trip: [N] (null), [B:true]/[B:false],
    [I:<int>], [F:<hex float>] ([%h] — bit-exact round trip, so a
    router-side rendering prints the same [%g] digits as the shard
    would), [S:<text>] with [\\]/[\t]/[\n] escaped. *)

val encode_result : Pb_sql.Executor.result -> string

val encode_error : kind:string -> string -> string
(** SQL-level failure body, [err <kind>\n<message>] with [kind] one of
    ["parse"] or ["eval"]. Carried under the wire status [ok] — wire
    statuses stay reserved for transport/admission outcomes, exactly as
    the REPL renders SQL errors as ordinary output. *)

val decode_error : string -> (string * string) option
(** [(kind, message)] when the body is an {!encode_error} frame. Check
    before {!decode_result}. *)

val decode_result : string -> (Pb_sql.Executor.result, string) result
(** Inverse of {!encode_result}; [Error] describes the first malformed
    line. *)
