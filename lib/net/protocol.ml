let max_frame = 8 * 1024 * 1024
let version = 2
let magic = "PB2"

type request = {
  text : string;
  deadline : float option;
  trace : string option;
  data : bool;
}

(* Trace ids are 16 bytes as 32 lowercase hex chars, client-generated.
   Validation is strict so the id can be embedded verbatim in shell
   commands, URLs and exposition labels. *)
let valid_trace_id s =
  String.length s = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let hex = "0123456789abcdef"
let rng_mu = Mutex.create ()
let rng = lazy (Random.State.make_self_init ())

let fresh_trace_id () =
  Mutex.lock rng_mu;
  let st = Lazy.force rng in
  let b = Bytes.create 32 in
  for i = 0 to 31 do
    Bytes.set b i hex.[Random.State.int st 16]
  done;
  Mutex.unlock rng_mu;
  Bytes.unsafe_to_string b

type status =
  | Ok
  | Busy
  | Deadline_exceeded
  | Cancelled
  | Bad_request
  | Shutting_down
  | Internal

type response = { status : status; body : string }
type client_frame = Hello of int | Req of request

let status_to_string = function
  | Ok -> "ok"
  | Busy -> "busy"
  | Deadline_exceeded -> "deadline"
  | Cancelled -> "cancelled"
  | Bad_request -> "proto"
  | Shutting_down -> "shutdown"
  | Internal -> "internal"

let status_of_string = function
  | "ok" -> Some Ok
  | "busy" -> Some Busy
  | "deadline" -> Some Deadline_exceeded
  | "cancelled" -> Some Cancelled
  | "proto" -> Some Bad_request
  | "shutdown" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

let is_error = function Ok -> false | _ -> true

(* ---- framing --------------------------------------------------------- *)

type frame = Frame of string | Eof | Bad of string

let write_frame oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

(* The length header is at most 8 digits (max_frame < 10^8); anything
   longer is oversized or garbage, so we can bound the header read. *)
let max_header_digits = 8

let read_frame_gen ~read_byte ~read_exact =
  let rec header acc ndigits =
    match read_byte () with
    | None -> if ndigits = 0 then `Eof else `Bad "truncated frame header"
    | Some '\n' -> if ndigits = 0 then `Bad "empty frame header" else `Len acc
    | Some ('0' .. '9' as c) ->
        if ndigits >= max_header_digits then `Bad "oversized frame header"
        else header ((acc * 10) + (Char.code c - Char.code '0')) (ndigits + 1)
    | Some c -> `Bad (Printf.sprintf "bad byte %C in frame header" c)
  in
  match header 0 0 with
  | `Eof -> Eof
  | `Bad msg -> Bad msg
  | `Len len ->
      if len > max_frame then
        Bad (Printf.sprintf "frame of %d bytes exceeds max_frame %d" len max_frame)
      else (
        match read_exact len with
        | Some payload -> Frame payload
        | None -> Bad "truncated frame payload")

let read_frame ic =
  read_frame_gen
    ~read_byte:(fun () ->
      match input_char ic with
      | c -> Some c
      | exception End_of_file -> None)
    ~read_exact:(fun n ->
      match really_input_string ic n with
      | s -> Some s
      | exception End_of_file -> None)

(* ---- payload codecs -------------------------------------------------- *)

let split_first_line s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(* A peer still speaking the unversioned (v1) protocol sends headers
   beginning with REQ / OK / ERR. Recognizing them lets both sides name
   the mismatch instead of reporting line noise. *)
let v1_header header =
  match String.split_on_char ' ' header with
  | "REQ" :: _ | "OK" :: _ | "ERR" :: _ -> true
  | _ -> false

let version_mismatch header =
  if v1_header header then
    Printf.sprintf
      "protocol version mismatch: peer speaks the unversioned v1 protocol, \
       this side requires %s (v%d)"
      magic version
  else Printf.sprintf "bad header %S (expected a %s payload)" header magic

let encode_hello v = Printf.sprintf "%s HELLO %d" magic v

let decode_hello payload =
  let header, _ = split_first_line payload in
  match String.split_on_char ' ' header with
  | [ m; "HELLO"; v ] when m = magic -> (
      match int_of_string_opt v with
      | Some v -> Stdlib.Ok v
      | None -> Stdlib.Error (Printf.sprintf "bad hello version %S" v))
  | _ -> Stdlib.Error (version_mismatch header)

let encode_request { text; deadline; trace; data } =
  let header =
    String.concat " "
      (magic :: "REQ"
      :: ((match deadline with Some d -> [ Printf.sprintf "%g" d ] | None -> [])
         @ (match trace with Some id -> [ "trace=" ^ id ] | None -> [])
         @ if data then [ "mode=data" ] else []))
  in
  header ^ "\n" ^ text

(* REQ header fields after the verb, in any order: a bare positive float
   is the deadline, [trace=<32 lowercase hex>] the trace context,
   [mode=data] the machine-readable single-statement mode. All are
   optional (a v2 peer predating a field simply omits it); duplicates
   and malformed values reject the frame. *)
let decode_req_fields text fields =
  let rec go deadline trace data = function
    | [] -> Stdlib.Ok (Req { text; deadline; trace; data })
    | "mode=data" :: rest ->
        if data then Stdlib.Error "duplicate mode field in request header"
        else go deadline trace true rest
    | tok :: rest ->
        let n = String.length tok in
        if n > 6 && String.sub tok 0 6 = "trace=" then
          let id = String.sub tok 6 (n - 6) in
          if trace <> None then
            Stdlib.Error "duplicate trace field in request header"
          else if not (valid_trace_id id) then
            Stdlib.Error (Printf.sprintf "bad trace id %S" id)
          else go deadline (Some id) data rest
        else if deadline <> None then
          Stdlib.Error (Printf.sprintf "bad request field %S" tok)
        else
          match float_of_string_opt tok with
          | Some d when d > 0.0 && Float.is_finite d -> go (Some d) trace data rest
          | Some _ | None ->
              Stdlib.Error (Printf.sprintf "bad deadline %S" tok)
  in
  go None None false fields

let decode_client_frame payload =
  let header, text = split_first_line payload in
  match String.split_on_char ' ' header with
  | [ m; "HELLO"; v ] when m = magic -> (
      match int_of_string_opt v with
      | Some v -> Stdlib.Ok (Hello v)
      | None -> Stdlib.Error (Printf.sprintf "bad hello version %S" v))
  | m :: "REQ" :: fields when m = magic -> decode_req_fields text fields
  | _ -> Stdlib.Error (version_mismatch header)

let encode_response { status; body } =
  Printf.sprintf "%s %s\n%s" magic (status_to_string status) body

let decode_response payload =
  let header, body = split_first_line payload in
  match String.split_on_char ' ' header with
  | [ m; code ] when m = magic -> (
      match status_of_string code with
      | Some status -> Stdlib.Ok { status; body }
      | None -> Stdlib.Error (Printf.sprintf "unknown status code %S" code))
  | _ -> Stdlib.Error (version_mismatch header)
