let max_frame = 8 * 1024 * 1024

type request = { text : string; deadline : float option }

type error_code =
  | Busy
  | Deadline_exceeded
  | Bad_request
  | Shutting_down
  | Internal

type response = (string, error_code * string) result

let error_code_to_string = function
  | Busy -> "busy"
  | Deadline_exceeded -> "deadline"
  | Bad_request -> "proto"
  | Shutting_down -> "shutdown"
  | Internal -> "internal"

let error_code_of_string = function
  | "busy" -> Some Busy
  | "deadline" -> Some Deadline_exceeded
  | "proto" -> Some Bad_request
  | "shutdown" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

(* ---- framing --------------------------------------------------------- *)

type frame = Frame of string | Eof | Bad of string

let write_frame oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

(* The length header is at most 8 digits (max_frame < 10^8); anything
   longer is oversized or garbage, so we can bound the header read. *)
let max_header_digits = 8

let read_frame_gen ~read_byte ~read_exact =
  let rec header acc ndigits =
    match read_byte () with
    | None -> if ndigits = 0 then `Eof else `Bad "truncated frame header"
    | Some '\n' -> if ndigits = 0 then `Bad "empty frame header" else `Len acc
    | Some ('0' .. '9' as c) ->
        if ndigits >= max_header_digits then `Bad "oversized frame header"
        else header ((acc * 10) + (Char.code c - Char.code '0')) (ndigits + 1)
    | Some c -> `Bad (Printf.sprintf "bad byte %C in frame header" c)
  in
  match header 0 0 with
  | `Eof -> Eof
  | `Bad msg -> Bad msg
  | `Len len ->
      if len > max_frame then
        Bad (Printf.sprintf "frame of %d bytes exceeds max_frame %d" len max_frame)
      else (
        match read_exact len with
        | Some payload -> Frame payload
        | None -> Bad "truncated frame payload")

let read_frame ic =
  read_frame_gen
    ~read_byte:(fun () ->
      match input_char ic with
      | c -> Some c
      | exception End_of_file -> None)
    ~read_exact:(fun n ->
      match really_input_string ic n with
      | s -> Some s
      | exception End_of_file -> None)

(* ---- payload codecs -------------------------------------------------- *)

let split_first_line s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let encode_request { text; deadline } =
  let header =
    match deadline with
    | None -> "REQ"
    | Some d -> Printf.sprintf "REQ %g" d
  in
  header ^ "\n" ^ text

let decode_request payload =
  let header, text = split_first_line payload in
  match String.split_on_char ' ' header with
  | [ "REQ" ] -> Ok { text; deadline = None }
  | [ "REQ"; d ] -> (
      match float_of_string_opt d with
      | Some d when d > 0.0 && Float.is_finite d ->
          Ok { text; deadline = Some d }
      | Some _ | None -> Error (Printf.sprintf "bad deadline %S" d))
  | _ -> Error (Printf.sprintf "bad request header %S" header)

let encode_response = function
  | Ok body -> "OK\n" ^ body
  | Error (code, msg) ->
      Printf.sprintf "ERR %s\n%s" (error_code_to_string code) msg

let decode_response payload =
  let header, body = split_first_line payload in
  match String.split_on_char ' ' header with
  | [ "OK" ] -> Ok (Ok body)
  | [ "ERR"; code ] -> (
      match error_code_of_string code with
      | Some code -> Ok (Error (code, body))
      | None -> Error (Printf.sprintf "unknown error code %S" code))
  | _ -> Error (Printf.sprintf "bad response header %S" header)
