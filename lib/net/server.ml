module Repl = Pb_shell.Repl
module Metrics = Pb_obs.Metrics
module Slow_log = Pb_obs.Slow_log
module Trace = Pb_obs.Trace
module Trace_store = Pb_obs.Trace_store
module Progress = Pb_obs.Progress
module Http = Pb_obs.Http
module Gov = Pb_util.Gov

type serve_mode = Threads | Event

type config = {
  host : string;
  port : int;
  max_connections : int;
  max_inflight : int;
  max_queue : int;
  default_deadline : float option;
  poll_interval : float;
  plan_cache_capacity : int;
  trace_capacity : int;
  serve_mode : serve_mode;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7878;
    max_connections = 64;
    max_inflight = 64;
    max_queue = 128;
    default_deadline = None;
    poll_interval = 0.05;
    plan_cache_capacity = 128;
    trace_capacity = 256;
    serve_mode = Event;
  }

type session_handler = gov:Gov.t -> string -> Repl.reaction

(* ---- request admission (threads mode) --------------------------------- *)

(* Bounded two-stage admission: at most [max_inflight] requests evaluate
   concurrently; up to [max_queue] more wait on a condition variable;
   past that, the request is rejected with [busy] immediately
   (backpressure, not unbounded buffering). Connection threads block
   here, so the queue costs one parked thread per waiter — bounded by
   [max_connections]. Event mode enforces the same two limits without
   parking: its bounded job queue is the admission queue. *)
type admission = {
  adm_mu : Mutex.t;
  adm_nonfull : Condition.t;
  adm_max_inflight : int;
  adm_max_queue : int;
  mutable adm_inflight : int;
  mutable adm_queued : int;
}

let admission_create ~max_inflight ~max_queue =
  {
    adm_mu = Mutex.create ();
    adm_nonfull = Condition.create ();
    adm_max_inflight = max max_inflight 1;
    adm_max_queue = max max_queue 0;
    adm_inflight = 0;
    adm_queued = 0;
  }

type t = {
  config : config;
  admission : admission;
  db : Pb_sql.Database.t;
  (* One prepared-plan cache for the whole server: sessions are per
     connection, but the cache (and the memos inside it) is thread-safe,
     so every connection benefits from statements any of them prepared. *)
  plan_cache : Pb_sql.Plan_cache.t;
  session_factory : t -> session_handler;
  listen : Unix.file_descr;
  bound_port : int;
  stop : bool Atomic.t;
  active : int Atomic.t;
  mutable accept_thread : Thread.t option;
  finish_mu : Mutex.t;
  mutable finished : bool;
}

(* ---- metrics --------------------------------------------------------- *)

let latency_buckets =
  [ 0.0005; 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 ]

let m_requests =
  Metrics.counter ~help:"requests received over the wire"
    "pb_net_requests_total"

let m_connections =
  Metrics.counter ~help:"connections admitted" "pb_net_connections_total"

let m_busy =
  Metrics.counter
    ~help:"requests or connections rejected with busy (admission queue or \
           connection limit full)"
    "pb_net_busy_rejections_total"

let m_cancelled =
  Metrics.counter
    ~help:"requests whose governance token was cancelled (deadline included)"
    "pb_net_cancelled_total"

let m_deadline =
  Metrics.counter ~help:"requests aborted past their deadline"
    "pb_net_deadline_exceeded_total"

let m_errors =
  Metrics.counter ~help:"protocol or internal request errors"
    "pb_net_errors_total"

let m_active =
  Metrics.gauge ~help:"currently admitted connections"
    "pb_net_active_connections"

let m_open =
  Metrics.gauge
    ~help:"connections registered with the event loop (admitted plus \
           rejects still flushing)"
    "pb_net_open_connections"

let m_wakeups =
  Metrics.counter ~help:"event-loop readiness wakeups"
    "pb_net_eventloop_wakeups_total"

let m_inflight =
  Metrics.gauge ~help:"requests currently evaluating"
    "pb_net_inflight_requests"

let m_queue_depth =
  Metrics.gauge ~help:"requests parked in the admission queue"
    "pb_net_queue_depth"

let m_paql_seconds =
  Metrics.histogram ~help:"wall time of PaQL requests"
    ~buckets:latency_buckets "pb_net_paql_request_seconds"

let m_sql_seconds =
  Metrics.histogram ~help:"wall time of SQL requests"
    ~buckets:latency_buckets "pb_net_sql_request_seconds"

let m_command_seconds =
  Metrics.histogram ~help:"wall time of backslash-command requests"
    ~buckets:latency_buckets "pb_net_command_request_seconds"

(* Same dispatch heuristic as the REPL, reduced to metrics granularity:
   backslash commands, PaQL (mentions the PACKAGE keyword), else SQL. *)
let latency_histogram text =
  let trimmed = String.trim text in
  if trimmed = "" || trimmed.[0] = '\\' then m_command_seconds
  else
    let upper = String.uppercase_ascii trimmed in
    let has_package =
      let kw = "PACKAGE" and n = String.length upper in
      let k = String.length kw in
      let rec scan i = i + k <= n && (String.sub upper i k = kw || scan (i + 1)) in
      scan 0
    in
    if has_package then m_paql_seconds else m_sql_seconds

let set_active_gauge t = Metrics.set m_active (float_of_int (Atomic.get t.active))

(* call with adm_mu held *)
let admission_gauges a =
  Metrics.set m_inflight (float_of_int a.adm_inflight);
  Metrics.set m_queue_depth (float_of_int a.adm_queued)

let admit a =
  Mutex.lock a.adm_mu;
  let verdict =
    if a.adm_inflight < a.adm_max_inflight then begin
      a.adm_inflight <- a.adm_inflight + 1;
      `Admitted
    end
    else if a.adm_queued >= a.adm_max_queue then `Busy
    else begin
      a.adm_queued <- a.adm_queued + 1;
      admission_gauges a;
      while a.adm_inflight >= a.adm_max_inflight do
        Condition.wait a.adm_nonfull a.adm_mu
      done;
      a.adm_queued <- a.adm_queued - 1;
      a.adm_inflight <- a.adm_inflight + 1;
      `Admitted
    end
  in
  admission_gauges a;
  Mutex.unlock a.adm_mu;
  verdict

let release a =
  Mutex.lock a.adm_mu;
  a.adm_inflight <- a.adm_inflight - 1;
  admission_gauges a;
  Condition.signal a.adm_nonfull;
  Mutex.unlock a.adm_mu

let busy_text t =
  Printf.sprintf
    "server busy: %d requests in flight and %d queued; retry later"
    t.admission.adm_max_inflight t.admission.adm_max_queue

(* ---- request handling ------------------------------------------------- *)

(* Deadlines are enforced cooperatively: each request evaluates under a
   fresh governance token carrying the deadline. Every engine and SQL
   loop polls the token, so an overrun request stops within a few
   hundred loop iterations of the deadline — it is cancelled, not
   abandoned: no worker thread keeps burning CPU behind the client's
   back (the v1 watchdog did exactly that), and the slot frees as soon
   as the cancelled evaluation returns its best incumbent. *)

(* Data mode: one SQL statement, executed straight against the shared
   database (no REPL session, no rendering) with the result encoded for
   the shard router. Uses the shared plan cache, so a router fanning
   the same rewritten statement out repeatedly hits prepared plans. *)
let run_data t ~gov text =
  let reaction output = Stdlib.Ok { Repl.output; quit = false } in
  match
    Pb_sql.Plan_cache.lookup t.plan_cache t.db
      ~parse:Pb_sql.Parser.parse_script text
  with
  | exception Pb_sql.Parser.Parse_error msg ->
      reaction (Wire_data.encode_error ~kind:"parse" msg)
  | statements, memo -> (
      match
        List.fold_left
          (fun _ stmt -> Some (Pb_sql.Executor.execute ~memo ~gov t.db stmt))
          None statements
      with
      | None -> reaction (Wire_data.encode_error ~kind:"parse" "empty statement")
      | Some result -> reaction (Wire_data.encode_result result)
      | exception Pb_sql.Executor.Eval_error msg ->
          reaction (Wire_data.encode_error ~kind:"eval" msg)
      | exception Failure msg -> reaction (Wire_data.encode_error ~kind:"eval" msg)
      | exception Gov.Interrupted _ ->
          (* the fate latched on the token downgrades the status below *)
          reaction ""
      | exception e -> Stdlib.Error e)

(* Returns (response, close_connection_after). *)
let handle_request t (session : session_handler) (req : Protocol.request) =
  Metrics.incr m_requests;
  let deadline =
    match req.Protocol.deadline with
    | Some _ as d -> d
    | None -> t.config.default_deadline
  in
  let gov = Gov.create ?deadline_in:deadline () in
  let start = Unix.gettimeofday () in
  (* Tracing: adopt the client's trace id (or mint one) as the root of
     this request's span tree, and record solver incumbents under the
     governance token's family so progress events survive the hop onto
     pool worker domains. Both are skipped entirely when the store is
     disabled ([trace_capacity = 0]) — evaluation then runs without any
     context and span creation stays on its two-atomic-load fast path. *)
  let tracing = t.config.trace_capacity > 0 in
  let trace_id =
    match req.Protocol.trace with
    | Some id -> id
    | None -> Protocol.fresh_trace_id ()
  in
  let run () =
    if req.Protocol.data then run_data t ~gov req.Protocol.text
    else
      match session ~gov req.Protocol.text with
      | reaction -> Ok reaction
      | exception e -> Error e
  in
  let outcome, spans, progress =
    if tracing then
      let (outcome, progress), spans =
        Trace.with_context ~trace_id (fun () ->
            Progress.with_recorder ~key:(Gov.family_id gov) run)
      in
      (outcome, spans, progress)
    else (run (), [], [])
  in
  let elapsed = Unix.gettimeofday () -. start in
  Metrics.observe (latency_histogram req.Protocol.text) elapsed;
  ignore (Slow_log.observe ~query:("net " ^ req.Protocol.text) ~elapsed);
  let resp, close_after =
    match outcome with
    | Ok reaction -> (
        let body = reaction.Repl.output in
        match Gov.fate gov with
        | None -> ({ Protocol.status = Protocol.Ok; body }, reaction.Repl.quit)
        | Some Gov.Deadline ->
            Metrics.incr m_deadline;
            Metrics.incr m_cancelled;
            let d = match deadline with Some d -> d | None -> 0.0 in
            ( {
                Protocol.status = Protocol.Deadline_exceeded;
                body =
                  Printf.sprintf
                    "request exceeded its %gs deadline (evaluation \
                     cancelled)\n%s"
                    d body;
              },
              reaction.Repl.quit )
        | Some reason ->
            Metrics.incr m_cancelled;
            ( {
                Protocol.status = Protocol.Cancelled;
                body =
                  Printf.sprintf "request cancelled (%s)\n%s"
                    (Gov.reason_to_string reason) body;
              },
              reaction.Repl.quit ))
    | Error e ->
        Metrics.incr m_errors;
        ( { Protocol.status = Protocol.Internal; body = Printexc.to_string e },
          false )
  in
  if tracing then
    Trace_store.add Trace_store.default
      {
        Trace_store.trace_id;
        started = start;
        elapsed;
        status = Protocol.status_to_string resp.Protocol.status;
        spans;
        progress;
      };
  (resp, close_after)

(* ---- health ----------------------------------------------------------- *)

(* Both serve modes keep the admission counters current: threads mode
   maintains them in admit/release, the event loop mirrors its
   executing/queued counts into them (see [job_gauges]), so this reads
   real load either way. The saturation test is mode-agnostic: threads
   mode only queues while inflight is full, and the event loop bounds
   the two jointly, so "no room left" is inflight + queued at the
   combined limit in both. *)
let health_json t =
  let a = t.admission in
  Mutex.lock a.adm_mu;
  let inflight = a.adm_inflight and queued = a.adm_queued in
  Mutex.unlock a.adm_mu;
  let active = Atomic.get t.active in
  let status =
    if Atomic.get t.stop then "draining"
    else if
      inflight + queued >= a.adm_max_inflight + a.adm_max_queue
      || active >= t.config.max_connections
    then "saturated"
    else "ok"
  in
  Printf.sprintf
    "{\"status\":%S,\"inflight\":%d,\"max_inflight\":%d,\"queued\":%d,\
     \"max_queue\":%d,\"active_connections\":%d,\"max_connections\":%d}"
    status inflight a.adm_max_inflight queued a.adm_max_queue active
    t.config.max_connections

(* The server-level health command: answered before admission (a
   saturated server must still report itself saturated) and invisible to
   the REPL — the router uses it to aggregate per-shard health over the
   query wire without an HTTP hop. *)
let is_health_command text = String.trim text = "\\healthz"

(* ---- connection lifecycle (threads mode) ------------------------------ *)

(* Read one request frame straight off the fd. The stop flag is polled
   only while waiting for a frame to BEGIN: once the first byte is in,
   the frame is read to completion and the request it carries is served
   (drain semantics). No input buffering — a pipelined second request
   stays in the kernel socket buffer where select can see it. *)
let read_request_frame t fd =
  let one = Bytes.create 1 in
  let block_read_byte () =
    match Unix.read fd one 0 1 with
    | 0 -> None
    | _ -> Some (Bytes.get one 0)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> None
  in
  let rec first_byte () =
    if Atomic.get t.stop then `Stop
    else
      match Unix.select [ fd ] [] [] t.config.poll_interval with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> first_byte ()
      | [], _, _ -> first_byte ()
      | _ -> ( match block_read_byte () with
               | None -> `Eof
               | Some c -> `First c)
  in
  match first_byte () with
  | (`Stop | `Eof) as r -> r
  | `First first ->
      let pending = ref (Some first) in
      let read_byte () =
        match !pending with
        | Some c ->
            pending := None;
            Some c
        | None -> block_read_byte ()
      in
      let read_exact n =
        let buf = Bytes.create n in
        let rec fill off =
          if off = n then Some (Bytes.unsafe_to_string buf)
          else
            match Unix.read fd buf off (n - off) with
            | 0 -> None
            | k -> fill (off + k)
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              ->
                None
        in
        fill 0
      in
      (match Protocol.read_frame_gen ~read_byte ~read_exact with
      | Protocol.Frame payload -> `Frame payload
      | Protocol.Eof -> `Eof
      | Protocol.Bad msg -> `Bad msg)

let conn_main t fd =
  let oc = Unix.out_channel_of_descr fd in
  let session = lazy (t.session_factory t) in
  let respond resp =
    match Protocol.write_frame oc (Protocol.encode_response resp) with
    | () -> true
    | exception Sys_error _ -> false
  in
  let send_hello () =
    match Protocol.write_frame oc (Protocol.encode_hello Protocol.version) with
    | () -> true
    | exception Sys_error _ -> false
  in
  let finally () =
    close_out_noerr oc;
    (* close_out closes the underlying fd *)
    Atomic.decr t.active;
    set_active_gauge t
  in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        match read_request_frame t fd with
        | `Stop | `Eof -> ()
        | `Bad msg ->
            (* The stream is out of sync; report once and hang up. *)
            Metrics.incr m_errors;
            ignore
              (respond
                 {
                   Protocol.status = Protocol.Bad_request;
                   body = "framing error: " ^ msg;
                 })
        | `Frame payload -> (
            match Protocol.decode_client_frame payload with
            | Error msg ->
                Metrics.incr m_errors;
                if
                  respond
                    { Protocol.status = Protocol.Bad_request; body = msg }
                then loop ()
            | Ok (Protocol.Hello v) ->
                (* Answer with our version either way; on mismatch the
                   client refuses to proceed, so hang up after telling
                   it who we are. *)
                if send_hello () && v = Protocol.version then loop ()
            | Ok (Protocol.Req req) when is_health_command req.Protocol.text ->
                if respond { Protocol.status = Protocol.Ok; body = health_json t }
                then loop ()
            | Ok (Protocol.Req req) -> (
                match admit t.admission with
                | `Busy ->
                    Metrics.incr m_busy;
                    if
                      respond
                        { Protocol.status = Protocol.Busy; body = busy_text t }
                    then loop ()
                | `Admitted ->
                    let resp, close_after =
                      Fun.protect
                        ~finally:(fun () -> release t.admission)
                        (fun () ->
                          handle_request t (Lazy.force session) req)
                    in
                    if respond resp && not close_after then loop ()))
      in
      loop ())

let reject fd status msg =
  let oc = Unix.out_channel_of_descr fd in
  (try
     Protocol.write_frame oc
       (Protocol.encode_response { Protocol.status; body = msg })
   with Sys_error _ -> ());
  close_out_noerr oc

(* ---- accept loop (threads mode) --------------------------------------- *)

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ t.listen ] [] [] t.config.poll_interval with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ ->
          (match Unix.accept ~cloexec:true t.listen with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              if Atomic.get t.stop then
                reject fd Protocol.Shutting_down "server is shutting down"
              else if Atomic.get t.active >= t.config.max_connections then begin
                Metrics.incr m_busy;
                reject fd Protocol.Busy
                  (Printf.sprintf "server busy: %d connections are live"
                     t.config.max_connections)
              end
              else begin
                Atomic.incr t.active;
                set_active_gauge t;
                Metrics.incr m_connections;
                ignore (Thread.create (fun () -> conn_main t fd) ())
              end);
          loop ()
  in
  loop ()

(* ---- event-driven serving core ---------------------------------------- *)

(* One event-loop thread multiplexes every connection over a Poller:
   per-connection read bytes feed an incremental Assembler, complete
   requests go to a bounded job queue executed by [max_inflight] worker
   threads, and responses come back through a completion queue drained
   when a worker tickles the self-pipe. An idle connection costs its
   buffers — no thread, no stack.

   Invariants:
   - only the event-loop thread touches fds, the poller, the conn table
     and conn mutable state (workers see a conn only as an opaque handle
     carried through the queues; they read nothing from it);
   - at most one request per connection is queued or executing
     ([c_busy]); while busy the connection's read interest is dropped,
     so pipelined frames wait in the assembler/kernel exactly like the
     blocking reader left them in the socket buffer;
   - write interest is registered exactly while the write buffer is
     nonempty; a connection closes only with an empty buffer (or on
     error), so responses are never truncated by a local close. *)
module Event_loop = struct
  type conn = {
    c_fd : Unix.file_descr;
    c_asm : Assembler.t;
    c_wbuf : Buffer.t;
    mutable c_woff : int;  (* bytes of c_wbuf already written *)
    mutable c_busy : bool;
    mutable c_close_after_flush : bool;
    mutable c_closed : bool;
    c_counted : bool;  (* admitted (vs a reject still flushing) *)
    c_session : session_handler Lazy.t;
    (* interest bits currently registered with the poller *)
    mutable c_reg_read : bool;
    mutable c_reg_write : bool;
    (* interest bits wanted now *)
    mutable c_want_read : bool;
  }

  type es = {
    t : t;
    poller : Poller.t;
    conns : (Unix.file_descr, conn) Hashtbl.t;
    wake_r : Unix.file_descr;
    wake_w : Unix.file_descr;
    jobs : (conn * Protocol.request) Queue.t;
    mutable jobs_len : int;
    mutable executing : int;
    jobs_mu : Mutex.t;
    jobs_nonempty : Condition.t;
    mutable workers_stop : bool;
    completions : (conn * Protocol.response * bool) Queue.t;
    comp_mu : Mutex.t;
    scratch : Bytes.t;
  }

  (* Called with jobs_mu held at every queue/executing transition.
     Besides the gauges, mirror the counts into the admission struct
     (its mutex nests inside jobs_mu; nothing takes them in the other
     order) so health_json reports event-mode load — otherwise \healthz
     would claim inflight=0 forever and saturation could never show. *)
  let job_gauges es =
    Metrics.set m_inflight (float_of_int es.executing);
    Metrics.set m_queue_depth (float_of_int es.jobs_len);
    let a = es.t.admission in
    Mutex.lock a.adm_mu;
    a.adm_inflight <- es.executing;
    a.adm_queued <- es.jobs_len;
    Mutex.unlock a.adm_mu

  let wake es =
    try ignore (Unix.write_substring es.wake_w "x" 0 1)
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
      ()

  let worker es () =
    let rec loop () =
      Mutex.lock es.jobs_mu;
      while Queue.is_empty es.jobs && not es.workers_stop do
        Condition.wait es.jobs_nonempty es.jobs_mu
      done;
      if Queue.is_empty es.jobs then Mutex.unlock es.jobs_mu
      else begin
        let conn, req = Queue.pop es.jobs in
        es.jobs_len <- es.jobs_len - 1;
        es.executing <- es.executing + 1;
        job_gauges es;
        Mutex.unlock es.jobs_mu;
        let resp, close_after =
          try handle_request es.t (Lazy.force conn.c_session) req
          with e ->
            Metrics.incr m_errors;
            ( { Protocol.status = Protocol.Internal; body = Printexc.to_string e },
              false )
        in
        Mutex.lock es.jobs_mu;
        es.executing <- es.executing - 1;
        job_gauges es;
        Mutex.unlock es.jobs_mu;
        Mutex.lock es.comp_mu;
        Queue.add (conn, resp, close_after) es.completions;
        Mutex.unlock es.comp_mu;
        wake es;
        loop ()
      end
    in
    loop ()

  let set_open_gauge es =
    Metrics.set m_open (float_of_int (Hashtbl.length es.conns))

  let update_interest es conn =
    if not conn.c_closed then begin
      let want_read = conn.c_want_read && not conn.c_close_after_flush in
      let want_write = Buffer.length conn.c_wbuf > conn.c_woff in
      if want_read <> conn.c_reg_read || want_write <> conn.c_reg_write then begin
        (try Poller.modify es.poller conn.c_fd ~read:want_read ~write:want_write
         with Unix.Unix_error _ -> ());
        conn.c_reg_read <- want_read;
        conn.c_reg_write <- want_write
      end
    end

  let close_conn es conn =
    if not conn.c_closed then begin
      conn.c_closed <- true;
      Hashtbl.remove es.conns conn.c_fd;
      (try Poller.remove es.poller conn.c_fd with Unix.Unix_error _ -> ());
      (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
      if conn.c_counted then begin
        Atomic.decr es.t.active;
        set_active_gauge es.t
      end;
      set_open_gauge es
    end

  (* Queue bytes; actual writing happens on writability (plus one
     immediate attempt to save a round trip through the poller). *)
  let send es conn payload =
    if not conn.c_closed then begin
      Buffer.add_string conn.c_wbuf (string_of_int (String.length payload));
      Buffer.add_char conn.c_wbuf '\n';
      Buffer.add_string conn.c_wbuf payload
    end;
    ignore es

  let respond es conn resp = send es conn (Protocol.encode_response resp)

  let flush_writes es conn =
    if (not conn.c_closed) && Buffer.length conn.c_wbuf > conn.c_woff then begin
      let s = Buffer.contents conn.c_wbuf in
      let n = String.length s in
      let rec go off =
        if off >= n then off
        else
          match Unix.write_substring conn.c_fd s off (n - off) with
          | k -> go (off + k)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              off
          | exception Unix.Unix_error _ ->
              (* peer is gone; drop the rest *)
              conn.c_close_after_flush <- true;
              n
      in
      let off = go conn.c_woff in
      if off >= n then begin
        Buffer.clear conn.c_wbuf;
        conn.c_woff <- 0
      end
      else conn.c_woff <- off
    end;
    if
      (not conn.c_closed)
      && conn.c_close_after_flush
      && Buffer.length conn.c_wbuf <= conn.c_woff
    then close_conn es conn

  (* Decode and dispatch every complete frame the assembler holds,
     stopping as soon as a request goes in flight (strictly one at a
     time per connection, same as the blocking server). *)
  let rec drain_frames es conn =
    if (not conn.c_closed) && (not conn.c_busy) && not conn.c_close_after_flush
    then
      match Assembler.next conn.c_asm with
      | `Awaiting -> ()
      | `Bad msg ->
          Metrics.incr m_errors;
          respond es conn
            { Protocol.status = Protocol.Bad_request;
              body = "framing error: " ^ msg;
            };
          conn.c_close_after_flush <- true
      | `Frame payload ->
          (match Protocol.decode_client_frame payload with
          | Error msg ->
              Metrics.incr m_errors;
              respond es conn { Protocol.status = Protocol.Bad_request; body = msg }
          | Ok (Protocol.Hello v) ->
              send es conn (Protocol.encode_hello Protocol.version);
              if v <> Protocol.version then conn.c_close_after_flush <- true
          | Ok (Protocol.Req req) when is_health_command req.Protocol.text ->
              respond es conn
                { Protocol.status = Protocol.Ok; body = health_json es.t }
          | Ok (Protocol.Req req) ->
              let admitted =
                Mutex.lock es.jobs_mu;
                let room =
                  es.executing + es.jobs_len
                  < es.t.admission.adm_max_inflight
                    + es.t.admission.adm_max_queue
                in
                if room then begin
                  Queue.add (conn, req) es.jobs;
                  es.jobs_len <- es.jobs_len + 1;
                  job_gauges es;
                  Condition.signal es.jobs_nonempty
                end;
                Mutex.unlock es.jobs_mu;
                room
              in
              if admitted then begin
                conn.c_busy <- true;
                (* Drop read interest while the request is in flight so
                   a pipelining client's bytes stay in the kernel socket
                   buffer (backpressure) instead of accumulating
                   unboundedly in the assembler. Restored on
                   completion in drain_completions. *)
                conn.c_want_read <- false
              end
              else begin
                Metrics.incr m_busy;
                respond es conn
                  { Protocol.status = Protocol.Busy; body = busy_text es.t }
              end);
          drain_frames es conn

  let on_readable es conn =
    match Unix.read conn.c_fd es.scratch 0 (Bytes.length es.scratch) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn es conn
    | 0 ->
        (* EOF. A busy connection finishes its request first (drain
           semantics); its completion path will notice the flag. *)
        if conn.c_busy then conn.c_close_after_flush <- true
        else close_conn es conn
    | n ->
        Assembler.feed conn.c_asm ~len:n (Bytes.unsafe_to_string es.scratch);
        drain_frames es conn

  let drain_completions es =
    let batch =
      Mutex.lock es.comp_mu;
      let b = List.of_seq (Queue.to_seq es.completions) in
      Queue.clear es.completions;
      Mutex.unlock es.comp_mu;
      b
    in
    List.iter
      (fun (conn, resp, close_after) ->
        if not conn.c_closed then begin
          respond es conn resp;
          conn.c_busy <- false;
          (* re-arm reads dropped at admission; drain_frames below may
             drop them again if a buffered frame goes straight in flight *)
          conn.c_want_read <- true;
          if close_after then conn.c_close_after_flush <- true;
          if Atomic.get es.t.stop then
            (* drain: one response per in-flight request, then close *)
            conn.c_close_after_flush <- true;
          if not conn.c_close_after_flush then drain_frames es conn;
          flush_writes es conn;
          update_interest es conn
        end)
      batch

  let on_acceptable es =
    let rec loop () =
      match Unix.accept ~cloexec:true es.t.listen with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
          Unix.set_nonblock fd;
          let counted, rejection =
            if Atomic.get es.t.stop then
              (false, Some (Protocol.Shutting_down, "server is shutting down"))
            else if Atomic.get es.t.active >= es.t.config.max_connections then begin
              Metrics.incr m_busy;
              ( false,
                Some
                  ( Protocol.Busy,
                    Printf.sprintf "server busy: %d connections are live"
                      es.t.config.max_connections ) )
            end
            else (true, None)
          in
          let conn =
            {
              c_fd = fd;
              c_asm = Assembler.create ();
              c_wbuf = Buffer.create 256;
              c_woff = 0;
              c_busy = false;
              c_close_after_flush = rejection <> None;
              c_closed = false;
              c_counted = counted;
              c_session = lazy (es.t.session_factory es.t);
              c_reg_read = counted;
              c_reg_write = false;
              c_want_read = counted;
            }
          in
          Hashtbl.replace es.conns fd conn;
          (try Poller.add es.poller fd ~read:counted ~write:false
           with Unix.Unix_error _ -> ());
          if counted then begin
            Atomic.incr es.t.active;
            set_active_gauge es.t;
            Metrics.incr m_connections
          end
          else begin
            (match rejection with
            | Some (status, msg) ->
                respond es conn { Protocol.status; body = msg }
            | None -> ());
            flush_writes es conn;
            if not conn.c_closed then update_interest es conn
          end;
          set_open_gauge es;
          loop ()
    in
    loop ()

  let run t =
    let poller = Poller.create () in
    let wake_r, wake_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock wake_r;
    Unix.set_nonblock wake_w;
    Unix.set_nonblock t.listen;
    let es =
      {
        t;
        poller;
        conns = Hashtbl.create 1024;
        wake_r;
        wake_w;
        jobs = Queue.create ();
        jobs_len = 0;
        executing = 0;
        jobs_mu = Mutex.create ();
        jobs_nonempty = Condition.create ();
        workers_stop = false;
        completions = Queue.create ();
        comp_mu = Mutex.create ();
        scratch = Bytes.create 65536;
      }
    in
    Poller.add poller t.listen ~read:true ~write:false;
    Poller.add poller wake_r ~read:true ~write:false;
    let workers =
      List.init t.admission.adm_max_inflight (fun _ ->
          Thread.create (worker es) ())
    in
    let stopping = ref false in
    let drain_wake_pipe () =
      let b = Bytes.create 256 in
      let rec go () =
        match Unix.read wake_r b 0 256 with
        | exception Unix.Unix_error _ -> ()
        | 0 -> ()
        | 256 -> go ()
        | _ -> ()
      in
      go ()
    in
    let begin_stop () =
      stopping := true;
      (try Poller.remove poller t.listen with Unix.Unix_error _ -> ());
      (* close idle connections now; busy ones drain their request *)
      let idle =
        Hashtbl.fold
          (fun _ c acc ->
            if (not c.c_busy) && Buffer.length c.c_wbuf <= c.c_woff then
              c :: acc
            else acc)
          es.conns []
      in
      List.iter (close_conn es) idle;
      Hashtbl.iter (fun _ c -> c.c_close_after_flush <- true) es.conns
    in
    let rec loop () =
      if Atomic.get t.stop && not !stopping then begin_stop ();
      let done_ =
        !stopping
        && Hashtbl.length es.conns = 0
        &&
        (Mutex.lock es.jobs_mu;
         let d = es.jobs_len = 0 && es.executing = 0 in
         Mutex.unlock es.jobs_mu;
         d)
      in
      if not done_ then begin
        let events = Poller.wait poller ~timeout:t.config.poll_interval in
        Metrics.incr m_wakeups;
        List.iter
          (fun { Poller.fd; readable; writable; error } ->
            if fd = t.listen then (if readable then on_acceptable es)
            else if fd = wake_r then begin
              drain_wake_pipe ();
              drain_completions es
            end
            else
              match Hashtbl.find_opt es.conns fd with
              | None -> ()
              | Some conn ->
                  if error then
                    if conn.c_busy then conn.c_close_after_flush <- true
                    else close_conn es conn
                  else begin
                    if readable then on_readable es conn;
                    if writable && not conn.c_closed then flush_writes es conn;
                    if not conn.c_closed then begin
                      flush_writes es conn;
                      update_interest es conn
                    end
                  end)
          events;
        (* completions may land while we were handling events *)
        drain_completions es;
        loop ()
      end
    in
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock es.jobs_mu;
        es.workers_stop <- true;
        Condition.broadcast es.jobs_nonempty;
        Mutex.unlock es.jobs_mu;
        List.iter Thread.join workers;
        Hashtbl.iter (fun _ c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) es.conns;
        Hashtbl.reset es.conns;
        (try Unix.close wake_r with Unix.Unix_error _ -> ());
        (try Unix.close wake_w with Unix.Unix_error _ -> ());
        Poller.close poller;
        Metrics.set m_open 0.0)
      loop
end

(* ---- lifecycle -------------------------------------------------------- *)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith ("Server: cannot resolve host " ^ host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found -> failwith ("Server: cannot resolve host " ^ host))

let default_session_factory t =
  let session = Repl.create ~cache:t.plan_cache t.db in
  fun ~gov text -> Repl.handle ~gov session text

let start ?(config = default_config) ?session_factory db =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen Unix.SO_REUSEADDR true;
     Unix.bind listen (Unix.ADDR_INET (resolve_host config.host, config.port));
     Unix.listen listen 1024
   with e ->
     (try Unix.close listen with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let factory =
    match session_factory with
    | Some f -> f
    | None -> fun t -> default_session_factory t
  in
  let t =
    {
      config;
      admission =
        admission_create ~max_inflight:config.max_inflight
          ~max_queue:config.max_queue;
      db;
      plan_cache = Pb_sql.Plan_cache.create ~capacity:config.plan_cache_capacity ();
      session_factory = factory;
      listen;
      bound_port;
      stop = Atomic.make false;
      active = Atomic.make 0;
      accept_thread = None;
      finish_mu = Mutex.create ();
      finished = false;
    }
  in
  Trace_store.set_capacity Trace_store.default config.trace_capacity;
  let main =
    match config.serve_mode with
    | Threads -> accept_loop
    | Event -> Event_loop.run
  in
  t.accept_thread <- Some (Thread.create main t);
  t

let port t = t.bound_port

(* ---- pull-based exposition -------------------------------------------- *)

let traces_prefix = "/traces/"

let http_handler t path =
  match path with
  | "/metrics" ->
      Some
        {
          Http.code = 200;
          content_type = "text/plain; version=0.0.4; charset=utf-8";
          body = Metrics.dump ();
        }
  | "/healthz" ->
      Some
        {
          Http.code = 200;
          content_type = "application/json";
          body = health_json t;
        }
  | "/traces" ->
      let ids = Trace_store.ids Trace_store.default in
      Some
        {
          Http.code = 200;
          content_type = "application/json";
          body =
            Printf.sprintf "{\"traces\":[%s]}"
              (String.concat "," (List.map (Printf.sprintf "%S") ids));
        }
  | _ ->
      let n = String.length traces_prefix in
      if String.length path > n && String.sub path 0 n = traces_prefix then
        let id = String.sub path n (String.length path - n) in
        match Trace_store.find Trace_store.default id with
        | Some entry ->
            Some
              {
                Http.code = 200;
                content_type = "application/json";
                body = Trace_store.to_json entry;
              }
        | None -> None
      else None

let request_stop t = Atomic.set t.stop true

let join t =
  Mutex.lock t.finish_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.finish_mu)
    (fun () ->
      if not t.finished then begin
        (match t.accept_thread with
        | Some th -> Thread.join th
        | None -> ());
        (* Drain: every connection closes right after the request it is
           serving; idle ones notice the flag within poll_interval. The
           event loop drains before its thread exits, so this only spins
           in threads mode. *)
        while Atomic.get t.active > 0 do
          Thread.delay 0.01
        done;
        (try Unix.close t.listen with Unix.Unix_error _ -> ());
        t.finished <- true
      end)

let shutdown t =
  request_stop t;
  join t

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> request_stop t) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle

let with_server ?config ?session_factory db f =
  let t = start ?config ?session_factory db in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
