module Repl = Pb_shell.Repl
module Metrics = Pb_obs.Metrics
module Slow_log = Pb_obs.Slow_log
module Trace = Pb_obs.Trace
module Trace_store = Pb_obs.Trace_store
module Progress = Pb_obs.Progress
module Http = Pb_obs.Http
module Gov = Pb_util.Gov

type config = {
  host : string;
  port : int;
  max_connections : int;
  max_inflight : int;
  max_queue : int;
  default_deadline : float option;
  poll_interval : float;
  plan_cache_capacity : int;
  trace_capacity : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7878;
    max_connections = 64;
    max_inflight = 64;
    max_queue = 128;
    default_deadline = None;
    poll_interval = 0.05;
    plan_cache_capacity = 128;
    trace_capacity = 256;
  }

(* ---- request admission ------------------------------------------------ *)

(* Bounded two-stage admission: at most [max_inflight] requests evaluate
   concurrently; up to [max_queue] more wait on a condition variable;
   past that, the request is rejected with [busy] immediately
   (backpressure, not unbounded buffering). Connection threads block
   here, so the queue costs one parked thread per waiter — bounded by
   [max_connections]. *)
type admission = {
  adm_mu : Mutex.t;
  adm_nonfull : Condition.t;
  adm_max_inflight : int;
  adm_max_queue : int;
  mutable adm_inflight : int;
  mutable adm_queued : int;
}

let admission_create ~max_inflight ~max_queue =
  {
    adm_mu = Mutex.create ();
    adm_nonfull = Condition.create ();
    adm_max_inflight = max max_inflight 1;
    adm_max_queue = max max_queue 0;
    adm_inflight = 0;
    adm_queued = 0;
  }

type t = {
  config : config;
  admission : admission;
  db : Pb_sql.Database.t;
  (* One prepared-plan cache for the whole server: sessions are per
     connection, but the cache (and the memos inside it) is thread-safe,
     so every connection benefits from statements any of them prepared. *)
  plan_cache : Pb_sql.Plan_cache.t;
  listen : Unix.file_descr;
  bound_port : int;
  stop : bool Atomic.t;
  active : int Atomic.t;
  mutable accept_thread : Thread.t option;
  finish_mu : Mutex.t;
  mutable finished : bool;
}

(* ---- metrics --------------------------------------------------------- *)

let latency_buckets =
  [ 0.0005; 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 ]

let m_requests =
  Metrics.counter ~help:"requests received over the wire"
    "pb_net_requests_total"

let m_connections =
  Metrics.counter ~help:"connections admitted" "pb_net_connections_total"

let m_busy =
  Metrics.counter
    ~help:"requests or connections rejected with busy (admission queue or \
           connection limit full)"
    "pb_net_busy_rejections_total"

let m_cancelled =
  Metrics.counter
    ~help:"requests whose governance token was cancelled (deadline included)"
    "pb_net_cancelled_total"

let m_deadline =
  Metrics.counter ~help:"requests aborted past their deadline"
    "pb_net_deadline_exceeded_total"

let m_errors =
  Metrics.counter ~help:"protocol or internal request errors"
    "pb_net_errors_total"

let m_active =
  Metrics.gauge ~help:"currently admitted connections"
    "pb_net_active_connections"

let m_inflight =
  Metrics.gauge ~help:"requests currently evaluating"
    "pb_net_inflight_requests"

let m_queue_depth =
  Metrics.gauge ~help:"requests parked in the admission queue"
    "pb_net_queue_depth"

let m_paql_seconds =
  Metrics.histogram ~help:"wall time of PaQL requests"
    ~buckets:latency_buckets "pb_net_paql_request_seconds"

let m_sql_seconds =
  Metrics.histogram ~help:"wall time of SQL requests"
    ~buckets:latency_buckets "pb_net_sql_request_seconds"

let m_command_seconds =
  Metrics.histogram ~help:"wall time of backslash-command requests"
    ~buckets:latency_buckets "pb_net_command_request_seconds"

(* Same dispatch heuristic as the REPL, reduced to metrics granularity:
   backslash commands, PaQL (mentions the PACKAGE keyword), else SQL. *)
let latency_histogram text =
  let trimmed = String.trim text in
  if trimmed = "" || trimmed.[0] = '\\' then m_command_seconds
  else
    let upper = String.uppercase_ascii trimmed in
    let has_package =
      let kw = "PACKAGE" and n = String.length upper in
      let k = String.length kw in
      let rec scan i = i + k <= n && (String.sub upper i k = kw || scan (i + 1)) in
      scan 0
    in
    if has_package then m_paql_seconds else m_sql_seconds

let set_active_gauge t = Metrics.set m_active (float_of_int (Atomic.get t.active))

(* call with adm_mu held *)
let admission_gauges a =
  Metrics.set m_inflight (float_of_int a.adm_inflight);
  Metrics.set m_queue_depth (float_of_int a.adm_queued)

let admit a =
  Mutex.lock a.adm_mu;
  let verdict =
    if a.adm_inflight < a.adm_max_inflight then begin
      a.adm_inflight <- a.adm_inflight + 1;
      `Admitted
    end
    else if a.adm_queued >= a.adm_max_queue then `Busy
    else begin
      a.adm_queued <- a.adm_queued + 1;
      admission_gauges a;
      while a.adm_inflight >= a.adm_max_inflight do
        Condition.wait a.adm_nonfull a.adm_mu
      done;
      a.adm_queued <- a.adm_queued - 1;
      a.adm_inflight <- a.adm_inflight + 1;
      `Admitted
    end
  in
  admission_gauges a;
  Mutex.unlock a.adm_mu;
  verdict

let release a =
  Mutex.lock a.adm_mu;
  a.adm_inflight <- a.adm_inflight - 1;
  admission_gauges a;
  Condition.signal a.adm_nonfull;
  Mutex.unlock a.adm_mu

(* ---- request handling ------------------------------------------------- *)

(* Deadlines are enforced cooperatively: each request evaluates on its
   connection thread under a fresh governance token carrying the
   deadline. Every engine and SQL loop polls the token, so an overrun
   request stops within a few hundred loop iterations of the deadline —
   it is cancelled, not abandoned: no worker thread keeps burning CPU
   behind the client's back (the v1 watchdog did exactly that), and the
   connection slot frees as soon as the cancelled evaluation returns
   its best incumbent. *)

(* Returns (response, close_connection_after). *)
let handle_request t session (req : Protocol.request) =
  Metrics.incr m_requests;
  let deadline =
    match req.Protocol.deadline with
    | Some _ as d -> d
    | None -> t.config.default_deadline
  in
  let gov = Gov.create ?deadline_in:deadline () in
  let start = Unix.gettimeofday () in
  (* Tracing: adopt the client's trace id (or mint one) as the root of
     this request's span tree, and record solver incumbents under the
     governance token's family so progress events survive the hop onto
     pool worker domains. Both are skipped entirely when the store is
     disabled ([trace_capacity = 0]) — evaluation then runs without any
     context and span creation stays on its two-atomic-load fast path. *)
  let tracing = t.config.trace_capacity > 0 in
  let trace_id =
    match req.Protocol.trace with
    | Some id -> id
    | None -> Protocol.fresh_trace_id ()
  in
  let run () =
    match Repl.handle ~gov session req.Protocol.text with
    | reaction -> Ok reaction
    | exception e -> Error e
  in
  let outcome, spans, progress =
    if tracing then
      let (outcome, progress), spans =
        Trace.with_context ~trace_id (fun () ->
            Progress.with_recorder ~key:(Gov.family_id gov) run)
      in
      (outcome, spans, progress)
    else (run (), [], [])
  in
  let elapsed = Unix.gettimeofday () -. start in
  Metrics.observe (latency_histogram req.Protocol.text) elapsed;
  ignore (Slow_log.observe ~query:("net " ^ req.Protocol.text) ~elapsed);
  let resp, close_after =
    match outcome with
    | Ok reaction -> (
        let body = reaction.Repl.output in
        match Gov.fate gov with
        | None -> ({ Protocol.status = Protocol.Ok; body }, reaction.Repl.quit)
        | Some Gov.Deadline ->
            Metrics.incr m_deadline;
            Metrics.incr m_cancelled;
            let d = match deadline with Some d -> d | None -> 0.0 in
            ( {
                Protocol.status = Protocol.Deadline_exceeded;
                body =
                  Printf.sprintf
                    "request exceeded its %gs deadline (evaluation \
                     cancelled)\n%s"
                    d body;
              },
              reaction.Repl.quit )
        | Some reason ->
            Metrics.incr m_cancelled;
            ( {
                Protocol.status = Protocol.Cancelled;
                body =
                  Printf.sprintf "request cancelled (%s)\n%s"
                    (Gov.reason_to_string reason) body;
              },
              reaction.Repl.quit ))
    | Error e ->
        Metrics.incr m_errors;
        ( { Protocol.status = Protocol.Internal; body = Printexc.to_string e },
          false )
  in
  if tracing then
    Trace_store.add Trace_store.default
      {
        Trace_store.trace_id;
        started = start;
        elapsed;
        status = Protocol.status_to_string resp.Protocol.status;
        spans;
        progress;
      };
  (resp, close_after)

(* ---- connection lifecycle --------------------------------------------- *)

(* Read one request frame straight off the fd. The stop flag is polled
   only while waiting for a frame to BEGIN: once the first byte is in,
   the frame is read to completion and the request it carries is served
   (drain semantics). No input buffering — a pipelined second request
   stays in the kernel socket buffer where select can see it. *)
let read_request_frame t fd =
  let one = Bytes.create 1 in
  let block_read_byte () =
    match Unix.read fd one 0 1 with
    | 0 -> None
    | _ -> Some (Bytes.get one 0)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> None
  in
  let rec first_byte () =
    if Atomic.get t.stop then `Stop
    else
      match Unix.select [ fd ] [] [] t.config.poll_interval with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> first_byte ()
      | [], _, _ -> first_byte ()
      | _ -> ( match block_read_byte () with
               | None -> `Eof
               | Some c -> `First c)
  in
  match first_byte () with
  | (`Stop | `Eof) as r -> r
  | `First first ->
      let pending = ref (Some first) in
      let read_byte () =
        match !pending with
        | Some c ->
            pending := None;
            Some c
        | None -> block_read_byte ()
      in
      let read_exact n =
        let buf = Bytes.create n in
        let rec fill off =
          if off = n then Some (Bytes.unsafe_to_string buf)
          else
            match Unix.read fd buf off (n - off) with
            | 0 -> None
            | k -> fill (off + k)
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              ->
                None
        in
        fill 0
      in
      (match Protocol.read_frame_gen ~read_byte ~read_exact with
      | Protocol.Frame payload -> `Frame payload
      | Protocol.Eof -> `Eof
      | Protocol.Bad msg -> `Bad msg)

let conn_main t fd =
  let oc = Unix.out_channel_of_descr fd in
  let session = Repl.create ~cache:t.plan_cache t.db in
  let respond resp =
    match Protocol.write_frame oc (Protocol.encode_response resp) with
    | () -> true
    | exception Sys_error _ -> false
  in
  let send_hello () =
    match Protocol.write_frame oc (Protocol.encode_hello Protocol.version) with
    | () -> true
    | exception Sys_error _ -> false
  in
  let finally () =
    close_out_noerr oc;
    (* close_out closes the underlying fd *)
    Atomic.decr t.active;
    set_active_gauge t
  in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        match read_request_frame t fd with
        | `Stop | `Eof -> ()
        | `Bad msg ->
            (* The stream is out of sync; report once and hang up. *)
            Metrics.incr m_errors;
            ignore
              (respond
                 {
                   Protocol.status = Protocol.Bad_request;
                   body = "framing error: " ^ msg;
                 })
        | `Frame payload -> (
            match Protocol.decode_client_frame payload with
            | Error msg ->
                Metrics.incr m_errors;
                if
                  respond
                    { Protocol.status = Protocol.Bad_request; body = msg }
                then loop ()
            | Ok (Protocol.Hello v) ->
                (* Answer with our version either way; on mismatch the
                   client refuses to proceed, so hang up after telling
                   it who we are. *)
                if send_hello () && v = Protocol.version then loop ()
            | Ok (Protocol.Req req) -> (
                match admit t.admission with
                | `Busy ->
                    Metrics.incr m_busy;
                    if
                      respond
                        {
                          Protocol.status = Protocol.Busy;
                          body =
                            Printf.sprintf
                              "server busy: %d requests in flight and %d \
                               queued; retry later"
                              t.admission.adm_max_inflight
                              t.admission.adm_max_queue;
                        }
                    then loop ()
                | `Admitted ->
                    let resp, close_after =
                      Fun.protect
                        ~finally:(fun () -> release t.admission)
                        (fun () -> handle_request t session req)
                    in
                    if respond resp && not close_after then loop ()))
      in
      loop ())

let reject fd status msg =
  let oc = Unix.out_channel_of_descr fd in
  (try
     Protocol.write_frame oc
       (Protocol.encode_response { Protocol.status; body = msg })
   with Sys_error _ -> ());
  close_out_noerr oc

(* ---- accept loop ------------------------------------------------------ *)

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ t.listen ] [] [] t.config.poll_interval with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ ->
          (match Unix.accept ~cloexec:true t.listen with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              if Atomic.get t.stop then
                reject fd Protocol.Shutting_down "server is shutting down"
              else if Atomic.get t.active >= t.config.max_connections then begin
                Metrics.incr m_busy;
                reject fd Protocol.Busy
                  (Printf.sprintf "server busy: %d connections are live"
                     t.config.max_connections)
              end
              else begin
                Atomic.incr t.active;
                set_active_gauge t;
                Metrics.incr m_connections;
                ignore (Thread.create (fun () -> conn_main t fd) ())
              end);
          loop ()
  in
  loop ()

(* ---- lifecycle -------------------------------------------------------- *)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith ("Server: cannot resolve host " ^ host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found -> failwith ("Server: cannot resolve host " ^ host))

let start ?(config = default_config) db =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen Unix.SO_REUSEADDR true;
     Unix.bind listen (Unix.ADDR_INET (resolve_host config.host, config.port));
     Unix.listen listen 64
   with e ->
     (try Unix.close listen with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let t =
    {
      config;
      admission =
        admission_create ~max_inflight:config.max_inflight
          ~max_queue:config.max_queue;
      db;
      plan_cache = Pb_sql.Plan_cache.create ~capacity:config.plan_cache_capacity ();
      listen;
      bound_port;
      stop = Atomic.make false;
      active = Atomic.make 0;
      accept_thread = None;
      finish_mu = Mutex.create ();
      finished = false;
    }
  in
  Trace_store.set_capacity Trace_store.default config.trace_capacity;
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let port t = t.bound_port

(* ---- pull-based exposition -------------------------------------------- *)

let health_json t =
  let a = t.admission in
  Mutex.lock a.adm_mu;
  let inflight = a.adm_inflight and queued = a.adm_queued in
  Mutex.unlock a.adm_mu;
  let active = Atomic.get t.active in
  let status =
    if Atomic.get t.stop then "draining"
    else if queued >= a.adm_max_queue || active >= t.config.max_connections
    then "saturated"
    else "ok"
  in
  Printf.sprintf
    "{\"status\":%S,\"inflight\":%d,\"max_inflight\":%d,\"queued\":%d,\
     \"max_queue\":%d,\"active_connections\":%d,\"max_connections\":%d}"
    status inflight a.adm_max_inflight queued a.adm_max_queue active
    t.config.max_connections

let traces_prefix = "/traces/"

let http_handler t path =
  match path with
  | "/metrics" ->
      Some
        {
          Http.code = 200;
          content_type = "text/plain; version=0.0.4; charset=utf-8";
          body = Metrics.dump ();
        }
  | "/healthz" ->
      Some
        {
          Http.code = 200;
          content_type = "application/json";
          body = health_json t;
        }
  | "/traces" ->
      let ids = Trace_store.ids Trace_store.default in
      Some
        {
          Http.code = 200;
          content_type = "application/json";
          body =
            Printf.sprintf "{\"traces\":[%s]}"
              (String.concat "," (List.map (Printf.sprintf "%S") ids));
        }
  | _ ->
      let n = String.length traces_prefix in
      if String.length path > n && String.sub path 0 n = traces_prefix then
        let id = String.sub path n (String.length path - n) in
        match Trace_store.find Trace_store.default id with
        | Some entry ->
            Some
              {
                Http.code = 200;
                content_type = "application/json";
                body = Trace_store.to_json entry;
              }
        | None -> None
      else None

let request_stop t = Atomic.set t.stop true

let join t =
  Mutex.lock t.finish_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.finish_mu)
    (fun () ->
      if not t.finished then begin
        (match t.accept_thread with
        | Some th -> Thread.join th
        | None -> ());
        (* Drain: every connection closes right after the request it is
           serving; idle ones notice the flag within poll_interval. *)
        while Atomic.get t.active > 0 do
          Thread.delay 0.01
        done;
        (try Unix.close t.listen with Unix.Unix_error _ -> ());
        t.finished <- true
      end)

let shutdown t =
  request_stop t;
  join t

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> request_stop t) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle

let with_server ?config db f =
  let t = start ?config db in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
