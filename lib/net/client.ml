type t = { fd : Unix.file_descr; ic : in_channel }

exception Net_error of string
exception Rejected of Protocol.status * string

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          raise (Net_error ("cannot resolve host " ^ host))
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found -> raise (Net_error ("cannot resolve host " ^ host)))

(* Write the whole string even when the kernel takes it in pieces: a
   short write is resumed, EINTR retries, and EAGAIN (the socket may be
   non-blocking, e.g. the load generator's connections) parks in select
   until the send buffer drains. The old channel-based sender silently
   assumed completion — wrong exactly when a large request races a full
   send buffer. The wait is bounded: a peer that never drains its
   receive buffer (wedged server, half-dead connection) yields
   consecutive EAGAIN rounds with zero bytes accepted, and after
   [max_stalls] of those we raise Net_error instead of blocking the
   caller forever. Any successful write resets the stall count, so a
   merely slow peer is never cut off. *)
let write_all fd s =
  let n = String.length s in
  let stall_wait = 5.0 and max_stalls = 6 in
  let rec go off stalls =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | k -> go (off + k) 0
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off stalls
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if stalls >= max_stalls then
            raise
              (Net_error
                 (Printf.sprintf
                    "send stalled: peer accepted no bytes for %gs (%d of %d \
                     bytes unsent)"
                    (float_of_int max_stalls *. stall_wait)
                    (n - off) n))
          else begin
            (match Unix.select [] [ fd ] [] stall_wait with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | _ -> ());
            go off (stalls + 1)
          end
  in
  go 0 0

let send_frame t payload =
  let header = string_of_int (String.length payload) ^ "\n" in
  try write_all t.fd (header ^ payload)
  with Unix.Unix_error (e, _, _) ->
    raise (Net_error ("send failed: " ^ Unix.error_message e))

(* Version negotiation: send our hello, require the server's hello with
   the same version back. A server that rejects the connection outright
   (busy / shutting down) answers the hello with an error response
   instead — surface that as [Rejected] so callers can back off and
   retry rather than treating it as protocol damage. *)
let handshake t =
  send_frame t (Protocol.encode_hello Protocol.version);
  match Protocol.read_frame t.ic with
  | Protocol.Eof -> raise (Net_error "server closed during handshake")
  | Protocol.Bad msg -> raise (Net_error ("handshake framing error: " ^ msg))
  | Protocol.Frame payload -> (
      match Protocol.decode_hello payload with
      | Ok v when v = Protocol.version -> ()
      | Ok v ->
          raise
            (Net_error
               (Printf.sprintf
                  "protocol version mismatch: server speaks v%d, this client \
                   speaks v%d"
                  v Protocol.version))
      | Error hello_err -> (
          match Protocol.decode_response payload with
          | Ok { Protocol.status; body } when Protocol.is_error status ->
              raise (Rejected (status, body))
          | Ok _ | Error _ ->
              raise (Net_error ("bad handshake reply: " ^ hello_err))))

(* Bounded connect: non-blocking connect, wait for writability, then
   read the socket error. Without this a dead-but-routing host makes the
   load generator hang for the kernel's multi-minute TCP timeout with no
   diagnosis. *)
let connect_within fd addr timeout =
  Unix.set_nonblock fd;
  let finish_ok () = Unix.clear_nonblock fd in
  match Unix.connect fd addr with
  | () -> finish_ok ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
      match Unix.select [] [ fd ] [] timeout with
      | [], [], [] ->
          raise
            (Net_error (Printf.sprintf "connect timed out after %gs" timeout))
      | _ -> (
          match Unix.getsockopt_error fd with
          | None -> finish_ok ()
          | Some err -> raise (Unix.Unix_error (err, "connect", ""))))

let connect ?(host = "127.0.0.1") ?connect_timeout ~port () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (resolve_host host, port) in
  (try
     match connect_timeout with
     | None -> Unix.connect fd addr
     | Some timeout -> connect_within fd addr timeout
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let t = { fd; ic = Unix.in_channel_of_descr fd } in
  (try handshake t
   with e ->
     close_in_noerr t.ic;
     raise e);
  t

let request ?deadline ?trace ?(data = false) t text =
  send_frame t (Protocol.encode_request { Protocol.text; deadline; trace; data });
  match Protocol.read_frame t.ic with
  | Protocol.Frame payload -> (
      match Protocol.decode_response payload with
      | Ok response -> response
      | Error msg -> raise (Net_error ("bad response: " ^ msg)))
  | Protocol.Eof -> raise (Net_error "server closed the connection")
  | Protocol.Bad msg -> raise (Net_error ("framing error: " ^ msg))

let close t =
  (* closing the in channel closes the shared fd; nothing else holds it *)
  close_in_noerr t.ic

let with_connection ?host ?connect_timeout ~port f =
  let t = connect ?host ?connect_timeout ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
