type t = { ic : in_channel; oc : out_channel }

exception Net_error of string
exception Rejected of Protocol.status * string

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          raise (Net_error ("cannot resolve host " ^ host))
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found -> raise (Net_error ("cannot resolve host " ^ host)))

(* Version negotiation: send our hello, require the server's hello with
   the same version back. A server that rejects the connection outright
   (busy / shutting down) answers the hello with an error response
   instead — surface that as [Rejected] so callers can back off and
   retry rather than treating it as protocol damage. *)
let handshake t =
  (try Protocol.write_frame t.oc (Protocol.encode_hello Protocol.version)
   with Sys_error msg -> raise (Net_error ("handshake send failed: " ^ msg)));
  match Protocol.read_frame t.ic with
  | Protocol.Eof -> raise (Net_error "server closed during handshake")
  | Protocol.Bad msg -> raise (Net_error ("handshake framing error: " ^ msg))
  | Protocol.Frame payload -> (
      match Protocol.decode_hello payload with
      | Ok v when v = Protocol.version -> ()
      | Ok v ->
          raise
            (Net_error
               (Printf.sprintf
                  "protocol version mismatch: server speaks v%d, this client \
                   speaks v%d"
                  v Protocol.version))
      | Error hello_err -> (
          match Protocol.decode_response payload with
          | Ok { Protocol.status; body } when Protocol.is_error status ->
              raise (Rejected (status, body))
          | Ok _ | Error _ ->
              raise (Net_error ("bad handshake reply: " ^ hello_err))))

let connect ?(host = "127.0.0.1") ~port () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (resolve_host host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  in
  (try handshake t
   with e ->
     close_out_noerr t.oc;
     raise e);
  t

let request ?deadline ?trace t text =
  (try
     Protocol.write_frame t.oc
       (Protocol.encode_request { Protocol.text; deadline; trace })
   with Sys_error msg -> raise (Net_error ("send failed: " ^ msg)));
  match Protocol.read_frame t.ic with
  | Protocol.Frame payload -> (
      match Protocol.decode_response payload with
      | Ok response -> response
      | Error msg -> raise (Net_error ("bad response: " ^ msg)))
  | Protocol.Eof -> raise (Net_error "server closed the connection")
  | Protocol.Bad msg -> raise (Net_error ("framing error: " ^ msg))

let close t =
  (* closing the out channel closes the shared fd; the in channel is
     just a buffer over the same fd and must not be closed again *)
  close_out_noerr t.oc

let with_connection ?host ~port f =
  let t = connect ?host ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
