(** Blocking client for the {!Server} wire protocol: one TCP connection,
    strictly one in-flight request at a time. Used by the [pb_client]
    CLI, the bench load generator, and the tests.

    Transport-level failures (server gone, framing desync) raise
    {!Net_error}; protocol-level failures (busy, deadline, bad request)
    come back as [Error] values, because the connection is still usable
    after them — except [busy]/[shutdown], after which the server hangs
    up. *)

type t

exception Net_error of string

val connect : ?host:string -> port:int -> unit -> t
(** Connect to [host] (default 127.0.0.1; dotted quad or hostname).
    Ignores [SIGPIPE] process-wide. Raises [Unix.Unix_error] on refusal. *)

val request : ?deadline:float -> t -> string -> Protocol.response
(** Send one REPL input line and wait for the response. [deadline] is a
    per-request wall-clock budget in seconds, enforced server-side.
    Raises {!Net_error} if the connection dies. *)

val close : t -> unit

val with_connection : ?host:string -> port:int -> (t -> 'a) -> 'a
(** Connect, run, always close. *)
