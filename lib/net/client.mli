(** Blocking client for the {!Server} wire protocol: one TCP connection,
    strictly one in-flight request at a time. Used by the [pb_client]
    CLI, the bench load generator, and the tests.

    {!connect} performs the protocol-v2 handshake: it sends a hello
    frame and requires the server's hello carrying the same version; a
    mismatch (including a v1 server, which answers with an unversioned
    error) raises {!Net_error} naming both versions. A server refusing
    the connection outright (connection limit, shutdown) raises
    {!Rejected} instead, so callers can back off and retry.

    Transport-level failures (server gone, framing desync) raise
    {!Net_error}; request-level outcomes (busy, deadline, cancelled, bad
    request) come back as {!Protocol.response} values with a non-[Ok]
    status, and the connection stays usable after them. *)

type t

exception Net_error of string

exception Rejected of Protocol.status * string
(** The server refused the connection during the handshake (e.g. [busy]
    at the connection limit, [shutdown] while draining) — back off and
    retry rather than treating the stream as broken. *)

val connect : ?host:string -> ?connect_timeout:float -> port:int -> unit -> t
(** Connect to [host] (default 127.0.0.1; dotted quad or hostname) and
    negotiate the protocol version. Ignores [SIGPIPE] process-wide.
    [connect_timeout] bounds TCP connection establishment in seconds
    (via a non-blocking connect); without it a dead-but-routing address
    blocks for the kernel's own timeout. Raises [Unix.Unix_error] on
    refusal, {!Net_error} on version mismatch or connect timeout,
    {!Rejected} when the server turns the connection away. *)

val request :
  ?deadline:float -> ?trace:string -> ?data:bool -> t -> string -> Protocol.response
(** Send one REPL input line and wait for the response. [deadline] is a
    per-request wall-clock budget in seconds, enforced server-side by
    cooperative cancellation. [trace] is a client-generated trace id
    ({!Protocol.valid_trace_id}, see {!Protocol.fresh_trace_id}); the
    server adopts it as the root of the request's span tree, which stays
    retrievable by that id afterwards ([\traces <id>]). [data] requests
    the machine-readable single-SQL-statement mode (the body then decodes
    with {!Wire_data.decode_result}); default false. Raises {!Net_error}
    if the connection dies. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, resuming short writes and retrying
    [EINTR]/[EAGAIN] (waiting for writability on a non-blocking fd).
    Exposed for the load generator's non-blocking connection pool and
    for tests. *)

val close : t -> unit

val with_connection :
  ?host:string -> ?connect_timeout:float -> port:int -> (t -> 'a) -> 'a
(** Connect, run, always close. *)
