(* State machine mirroring Protocol.read_frame_gen byte-for-byte: the
   header is digits then '\n', at most max_header_digits digits, value
   capped by max_frame; then exactly [len] payload bytes. Error strings
   are kept identical to the blocking reader so the two paths stay
   interchangeable in tests and logs. *)

type state =
  | Header of { acc : int; ndigits : int }
  | Payload of { want : int; buf : Buffer.t }
  | Broken of string

type t = {
  mutable state : state;
  ready : string Queue.t;  (* complete frames in arrival order *)
}

let create () = { state = Header { acc = 0; ndigits = 0 }; ready = Queue.create () }

let bad t msg = t.state <- Broken msg

let feed_byte t c =
  match t.state with
  | Broken _ -> ()
  | Header { acc; ndigits } -> (
      match c with
      | '\n' ->
          if ndigits = 0 then bad t "empty frame header"
          else if acc > Protocol.max_frame then
            bad t
              (Printf.sprintf "frame of %d bytes exceeds max_frame %d" acc
                 Protocol.max_frame)
          else if acc = 0 then begin
            (* zero-length frame completes immediately *)
            Queue.add "" t.ready;
            t.state <- Header { acc = 0; ndigits = 0 }
          end
          else t.state <- Payload { want = acc; buf = Buffer.create (min acc 65536) }
      | '0' .. '9' ->
          if ndigits >= Protocol.max_header_digits then
            bad t "oversized frame header"
          else
            t.state <-
              Header
                {
                  acc = (acc * 10) + (Char.code c - Char.code '0');
                  ndigits = ndigits + 1;
                }
      | c -> bad t (Printf.sprintf "bad byte %C in frame header" c))
  | Payload _ -> assert false (* bulk path below handles payload bytes *)

let reset_header t = t.state <- Header { acc = 0; ndigits = 0 }

let feed t ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Assembler.feed";
  let i = ref off in
  let stop = off + len in
  while !i < stop do
    match t.state with
    | Broken _ -> i := stop
    | Header _ ->
        feed_byte t s.[!i];
        incr i
    | Payload { want; buf } ->
        let take = min (want - Buffer.length buf) (stop - !i) in
        Buffer.add_substring buf s !i take;
        i := !i + take;
        if Buffer.length buf = want then begin
          Queue.add (Buffer.contents buf) t.ready;
          reset_header t
        end
  done

let next t =
  match Queue.take_opt t.ready with
  | Some frame -> `Frame frame
  | None -> ( match t.state with Broken msg -> `Bad msg | _ -> `Awaiting)

let buffered t =
  match t.state with Payload { buf; _ } -> Buffer.length buf | _ -> 0
