(** Scalable readiness polling for the event-driven server core.

    A thin wrapper over epoll (Linux) or poll(2) (elsewhere) via C
    stubs, replacing [Unix.select] whose [FD_SETSIZE] cap (~1024
    descriptors) rules it out for the 5k–10k-connection target. One
    poller instance belongs to one event-loop thread; registering and
    waiting from different threads concurrently is not supported
    (the server's workers never touch the poller — they signal it
    through a self-pipe that is itself registered for readability).

    [wait] releases the OCaml runtime lock while blocked, so worker
    threads keep running underneath it. *)

type t

type event = {
  fd : Unix.file_descr;
  readable : bool;
  writable : bool;
  error : bool;  (** error/hangup: the fd needs attention regardless of
                     the registered interest *)
}

val create : unit -> t

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register a descriptor. Raises [Unix.Unix_error] if already
    registered. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change a registered descriptor's interest set. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister; must be called before closing the fd. *)

val wait : t -> timeout:float -> event list
(** Ready descriptors, blocking at most [timeout] seconds (negative =
    forever, [0.] = non-blocking). At most 1024 events are reported per
    call; further ready descriptors surface on the next call
    (level-triggered). An interrupted wait ([EINTR]) reports no
    events. *)

val close : t -> unit
(** Release the kernel handle. The poller must not be used after. *)
