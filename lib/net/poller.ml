type t

type event = {
  fd : Unix.file_descr;
  readable : bool;
  writable : bool;
  error : bool;
}

(* event bits shared with poller_stubs.c *)
let ev_in = 1
let ev_out = 2
let ev_err = 4

external stub_create : unit -> t = "pb_poller_create"

external stub_ctl : t -> int -> Unix.file_descr -> int -> unit
  = "pb_poller_ctl"

external stub_wait : t -> int -> (Unix.file_descr * int) array
  = "pb_poller_wait"

external stub_close : t -> unit = "pb_poller_close"

let create = stub_create

let bits ~read ~write =
  (if read then ev_in else 0) lor if write then ev_out else 0

let add t fd ~read ~write = stub_ctl t 0 fd (bits ~read ~write)
let modify t fd ~read ~write = stub_ctl t 1 fd (bits ~read ~write)
let remove t fd = stub_ctl t 2 fd 0

let wait t ~timeout =
  let ms =
    if timeout < 0.0 then -1
    else
      (* round up so a tiny positive timeout still sleeps *)
      int_of_float (Float.round (timeout *. 1000.0)) |> max (if timeout > 0.0 then 1 else 0)
  in
  stub_wait t ms
  |> Array.to_list
  |> List.map (fun (fd, b) ->
         {
           fd;
           readable = b land ev_in <> 0;
           writable = b land ev_out <> 0;
           error = b land ev_err <> 0;
         })

let close = stub_close
