module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
        | 't' -> Buffer.add_char buf '\t'
        | 'n' -> Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let encode_value = function
  | Value.Null -> "N"
  | Value.Bool b -> if b then "B:true" else "B:false"
  | Value.Int i -> "I:" ^ string_of_int i
  | Value.Float f -> Printf.sprintf "F:%h" f
  | Value.Str s -> "S:" ^ escape s

let decode_value tok =
  if tok = "N" then Ok Value.Null
  else if String.length tok >= 2 && tok.[1] = ':' then
    let rest = String.sub tok 2 (String.length tok - 2) in
    match tok.[0] with
    | 'B' -> (
        match rest with
        | "true" -> Ok (Value.Bool true)
        | "false" -> Ok (Value.Bool false)
        | _ -> Error (Printf.sprintf "bad bool %S" tok))
    | 'I' -> (
        match int_of_string_opt rest with
        | Some i -> Ok (Value.Int i)
        | None -> Error (Printf.sprintf "bad int %S" tok))
    | 'F' -> (
        match float_of_string_opt rest with
        | Some f -> Ok (Value.Float f)
        | None -> Error (Printf.sprintf "bad float %S" tok))
    | 'S' -> Ok (Value.Str (unescape rest))
    | _ -> Error (Printf.sprintf "unknown value tag %S" tok)
  else Error (Printf.sprintf "bad value token %S" tok)

let ty_to_string = function
  | Value.T_bool -> "bool"
  | Value.T_int -> "int"
  | Value.T_float -> "float"
  | Value.T_str -> "str"

let ty_of_string = function
  | "bool" -> Some Value.T_bool
  | "int" -> Some Value.T_int
  | "float" -> Some Value.T_float
  | "str" -> Some Value.T_str
  | _ -> None

let encode_result = function
  | Pb_sql.Executor.Created -> "created"
  | Pb_sql.Executor.Affected n -> Printf.sprintf "affected %d" n
  | Pb_sql.Executor.Rows rel ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf
        (Printf.sprintf "rel %d\n" (Relation.cardinality rel));
      Buffer.add_string buf
        (String.concat "\t"
           (List.map
              (fun { Schema.name; ty } ->
                escape name ^ ":" ^ ty_to_string ty)
              (Schema.columns (Relation.schema rel))));
      Array.iter
        (fun row ->
          Buffer.add_char buf '\n';
          Array.iteri
            (fun i v ->
              if i > 0 then Buffer.add_char buf '\t';
              Buffer.add_string buf (encode_value v))
            row)
        (Relation.rows rel);
      Buffer.contents buf

let encode_error ~kind msg = Printf.sprintf "err %s\n%s" kind msg

let decode_error body =
  let header, rest = Protocol.split_first_line body in
  match String.split_on_char ' ' header with
  | [ "err"; kind ] -> Some (kind, rest)
  | _ -> None

let decode_result body =
  let header, rest = Protocol.split_first_line body in
  match String.split_on_char ' ' header with
  | [ "created" ] -> Ok Pb_sql.Executor.Created
  | [ "affected"; n ] -> (
      match int_of_string_opt n with
      | Some n -> Ok (Pb_sql.Executor.Affected n)
      | None -> Error (Printf.sprintf "bad affected count %S" n))
  | [ "rel"; n ] -> (
      match int_of_string_opt n with
      | None -> Error (Printf.sprintf "bad row count %S" n)
      | Some nrows -> (
          let schema_line, rows_text = Protocol.split_first_line rest in
          let col_of tok =
            match String.rindex_opt tok ':' with
            | None -> Error (Printf.sprintf "bad column %S" tok)
            | Some i -> (
                let name = unescape (String.sub tok 0 i) in
                let ty = String.sub tok (i + 1) (String.length tok - i - 1) in
                match ty_of_string ty with
                | Some ty -> Ok { Schema.name; ty }
                | None -> Error (Printf.sprintf "bad column type %S" tok))
          in
          let rec map_result f = function
            | [] -> Ok []
            | x :: xs -> (
                match f x with
                | Error _ as e -> e
                | Ok y -> Result.map (fun ys -> y :: ys) (map_result f xs))
          in
          match map_result col_of (String.split_on_char '\t' schema_line) with
          | Error msg -> Error msg
          | Ok cols -> (
              let schema =
                try Ok (Schema.make cols)
                with Invalid_argument msg -> Error msg
              in
              match schema with
              | Error msg -> Error msg
              | Ok schema -> (
                  let lines =
                    if rows_text = "" then []
                    else String.split_on_char '\n' rows_text
                  in
                  if List.length lines <> nrows then
                    Error
                      (Printf.sprintf "expected %d rows, got %d" nrows
                         (List.length lines))
                  else
                    let row_of line =
                      let toks = String.split_on_char '\t' line in
                      if List.length toks <> List.length cols then
                        Error
                          (Printf.sprintf "row arity %d, schema arity %d"
                             (List.length toks) (List.length cols))
                      else
                        Result.map Array.of_list (map_result decode_value toks)
                    in
                    match map_result row_of lines with
                    | Error msg -> Error msg
                    | Ok rows -> (
                        try Ok (Pb_sql.Executor.Rows (Relation.create schema rows))
                        with Invalid_argument msg -> Error msg)))))
  | _ -> Error (Printf.sprintf "bad data-mode result header %S" header)
