(** Concurrent TCP server exposing the full {!Pb_shell.Repl} surface
    (PaQL queries, SQL, backslash commands) over the {!Protocol} wire
    format.

    One {!Pb_sql.Database.t} is shared by every connection (it is
    internally thread-safe); each connection gets its own private
    [Repl.state] session, so [\save]/[\packages] bookkeeping like "the
    last query's package" is per-client while the data itself is shared
    — exactly the shared-DBMS, per-session model of the paper.

    Concurrency model: one accept thread plus one thread per live
    connection ([unix] + [threads]; query evaluation inside a request
    still fans out over the {!Pb_par} default domain pool). Admission is
    bounded at two levels: when [max_connections] sessions are live,
    further clients are sent one [busy] frame and closed immediately;
    and at most [max_inflight] requests evaluate concurrently, with up
    to [max_queue] more parked in a bounded admission queue — a request
    arriving past both limits is answered [busy] at once and the
    connection stays usable (backpressure, not unbounded buffering).
    Queue depth and in-flight count are exported as the
    [pb_net_queue_depth] and [pb_net_inflight_requests] gauges.

    Deadlines: a request carrying a deadline (or inheriting
    [default_deadline]) evaluates on its connection thread under a
    per-request {!Pb_util.Gov} token carrying that deadline. Every
    engine and SQL loop polls the token, so an overrun request is
    {e cancelled cooperatively} — it stops consuming CPU within a few
    hundred loop iterations, frees its connection slot, and the client
    gets a [deadline] response carrying the evaluation's best partial
    output. (Protocol v1 instead abandoned a watchdogged worker thread
    that kept burning CPU to completion.) Cancelled requests are counted
    by [pb_net_cancelled_total].

    Shutdown: {!request_stop} (async-signal-safe: it only flips an
    atomic) makes the accept loop exit and every connection close after
    the request it is currently serving — in-flight requests drain,
    idle connections close within one poll interval, no new connections
    are admitted. {!join} blocks until the drain completes. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** TCP port; [0] picks an ephemeral port (see {!port}) *)
  max_connections : int;  (** live-session cap; excess get [busy] *)
  max_inflight : int;
      (** requests evaluating concurrently; clamped to >= 1 *)
  max_queue : int;
      (** requests parked waiting for an in-flight slot; a request
          arriving when the queue is full is answered [busy] *)
  default_deadline : float option;
      (** applied to requests that carry no deadline; [None] = unlimited *)
  poll_interval : float;
      (** seconds between stop-flag checks while idle (accept loop and
          idle connections); bounds shutdown latency *)
  plan_cache_capacity : int;
      (** entries in the shared prepared-plan cache; [0] disables caching
          (every request re-parses — the benchmark baseline) *)
  trace_capacity : int;
      (** completed request traces retained in
          {!Pb_obs.Trace_store.default} (FIFO eviction); [0] disables
          tracing entirely — requests evaluate without a span context or
          progress recorder, leaving span creation on its disabled fast
          path *)
}

val default_config : config
(** [127.0.0.1:7878], 64 connections, 64 in-flight requests with a
    128-deep admission queue, no default deadline, 50ms poll, 128 cached
    plans, 256 retained traces. *)

type t

val start : ?config:config -> Pb_sql.Database.t -> t
(** Bind, listen, and spawn the accept thread; returns immediately.
    Ignores [SIGPIPE] process-wide (a client hanging up mid-response
    must not kill the server). Raises [Unix.Unix_error] if the port is
    taken. *)

val port : t -> int
(** The actual bound port — useful with [config.port = 0]. *)

val health_json : t -> string
(** One-line JSON health summary: admission-queue depth and in-flight
    count against their limits, live connections against theirs, and an
    overall [status] of [ok], [saturated] (a limit is reached) or
    [draining] (shutdown in progress). *)

val http_handler : t -> string -> Pb_obs.Http.response option
(** Route table for the metrics endpoint ({!Pb_obs.Http.start}):
    [/metrics] answers the Prometheus text exposition of the default
    registry, [/healthz] answers {!health_json}, [/traces] lists
    retained trace ids and [/traces/<id>] answers that trace's span tree
    and progress events as JSON. Anything else is [None] (404). *)

val request_stop : t -> unit
(** Begin graceful shutdown. Async-signal-safe; returns immediately. *)

val join : t -> unit
(** Block until the server has fully stopped: accept loop exited, all
    connections drained, listen socket closed. Does {e not} itself
    initiate shutdown. Safe to call from several threads. *)

val shutdown : t -> unit
(** [request_stop] + [join]. Idempotent. *)

val install_signal_handlers : t -> unit
(** Route [SIGINT] and [SIGTERM] to {!request_stop}, so
    [start |> install_signal_handlers |> join] is a complete server
    main loop with graceful termination. *)

val with_server :
  ?config:config -> Pb_sql.Database.t -> (t -> 'a) -> 'a
(** Run [f server] and always {!shutdown}, even on exceptions — the
    test harness's entry point. *)
