(** Concurrent TCP server exposing the full {!Pb_shell.Repl} surface
    (PaQL queries, SQL, backslash commands) over the {!Protocol} wire
    format.

    One {!Pb_sql.Database.t} is shared by every connection (it is
    internally thread-safe); each connection gets its own private
    session, so [\save]/[\packages] bookkeeping like "the last query's
    package" is per-client while the data itself is shared — exactly
    the shared-DBMS, per-session model of the paper.

    {2 Serving modes}

    [Event] (the default): one event-loop thread multiplexes every
    connection over an epoll/poll readiness {!Poller}. Connections are
    non-blocking; incoming bytes feed a per-connection incremental
    {!Assembler}, complete requests go to a bounded job queue served by
    a pool of [max_inflight] worker threads, and responses flow back
    through per-connection write buffers flushed on writability. An
    idle connection costs its buffers — no thread, no stack — so
    thousands of mostly-idle clients are cheap.

    [Threads]: the v2 baseline — one accept thread plus one blocking
    thread per live connection. Kept for comparison benchmarks
    ([--serve-mode threads]) and as the reference semantics.

    Both modes share the same admission limits: when [max_connections]
    sessions are live, further clients are sent one [busy] frame and
    closed immediately; and at most [max_inflight] requests evaluate
    concurrently, with up to [max_queue] more parked (blocked threads in
    [Threads] mode, queued jobs in [Event] mode) — a request arriving
    past both limits is answered [busy] at once and the connection stays
    usable (backpressure, not unbounded buffering). Queue depth and
    in-flight count are exported as the [pb_net_queue_depth] and
    [pb_net_inflight_requests] gauges; the event loop additionally
    exports [pb_net_open_connections] and
    [pb_net_eventloop_wakeups_total].

    Deadlines: a request carrying a deadline (or inheriting
    [default_deadline]) evaluates under a per-request {!Pb_util.Gov}
    token carrying that deadline. Every engine and SQL loop polls the
    token, so an overrun request is {e cancelled cooperatively} — it
    stops consuming CPU within a few hundred loop iterations, frees its
    slot, and the client gets a [deadline] response carrying the
    evaluation's best partial output. Cancelled requests are counted by
    [pb_net_cancelled_total].

    The server-level [\healthz] command is answered with {!health_json}
    {e before} admission in both modes, so a saturated or draining
    server still reports its state over the query wire — the shard
    router's health aggregation relies on this.

    Shutdown: {!request_stop} (async-signal-safe: it only flips an
    atomic) stops accepting and makes every connection close after the
    request it is currently serving — in-flight requests drain, idle
    connections close within one poll interval. {!join} blocks until
    the drain completes. *)

type serve_mode =
  | Threads  (** thread per connection (v2 baseline) *)
  | Event  (** event-driven readiness loop + bounded worker pool *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** TCP port; [0] picks an ephemeral port (see {!port}) *)
  max_connections : int;  (** live-session cap; excess get [busy] *)
  max_inflight : int;
      (** requests evaluating concurrently (the worker-pool size in
          [Event] mode); clamped to >= 1 *)
  max_queue : int;
      (** requests parked waiting for an in-flight slot; a request
          arriving when the queue is full is answered [busy] *)
  default_deadline : float option;
      (** applied to requests that carry no deadline; [None] = unlimited *)
  poll_interval : float;
      (** seconds between stop-flag checks while idle; bounds shutdown
          latency in both modes *)
  plan_cache_capacity : int;
      (** entries in the shared prepared-plan cache; [0] disables caching
          (every request re-parses — the benchmark baseline) *)
  trace_capacity : int;
      (** completed request traces retained in
          {!Pb_obs.Trace_store.default} (FIFO eviction); [0] disables
          tracing entirely — requests evaluate without a span context or
          progress recorder, leaving span creation on its disabled fast
          path *)
  serve_mode : serve_mode;  (** default [Event] *)
}

val default_config : config
(** [127.0.0.1:7878], 64 connections, 64 in-flight requests with a
    128-deep admission queue, no default deadline, 50ms poll, 128 cached
    plans, 256 retained traces, event mode. *)

type t

type session_handler = gov:Pb_util.Gov.t -> string -> Pb_shell.Repl.reaction
(** One connection's session: maps an input line to its reaction under
    the request's governance token. The default factory wraps a private
    {!Pb_shell.Repl} per connection; the shard router substitutes its
    fan-out session here and inherits the whole serving stack
    (framing, admission, deadlines, tracing, metrics) unchanged. *)

val start :
  ?config:config ->
  ?session_factory:(t -> session_handler) ->
  Pb_sql.Database.t ->
  t
(** Bind, listen, and spawn the serving thread; returns immediately.
    [session_factory] is called once per connection, lazily at its first
    request. Ignores [SIGPIPE] process-wide (a client hanging up
    mid-response must not kill the server). Raises [Unix.Unix_error] if
    the port is taken. *)

val port : t -> int
(** The actual bound port — useful with [config.port = 0]. *)

val health_json : t -> string
(** One-line JSON health summary: admission-queue depth and in-flight
    count against their limits, live connections against theirs, and an
    overall [status] of [ok], [saturated] (a limit is reached) or
    [draining] (shutdown in progress). *)

val http_handler : t -> string -> Pb_obs.Http.response option
(** Route table for the metrics endpoint ({!Pb_obs.Http.start}):
    [/metrics] answers the Prometheus text exposition of the default
    registry, [/healthz] answers {!health_json}, [/traces] lists
    retained trace ids and [/traces/<id>] answers that trace's span tree
    and progress events as JSON. Anything else is [None] (404). *)

val request_stop : t -> unit
(** Begin graceful shutdown. Async-signal-safe; returns immediately. *)

val join : t -> unit
(** Block until the server has fully stopped: serving thread exited, all
    connections drained, listen socket closed. Does {e not} itself
    initiate shutdown. Safe to call from several threads. *)

val shutdown : t -> unit
(** [request_stop] + [join]. Idempotent. *)

val install_signal_handlers : t -> unit
(** Route [SIGINT] and [SIGTERM] to {!request_stop}, so
    [start |> install_signal_handlers |> join] is a complete server
    main loop with graceful termination. *)

val with_server :
  ?config:config ->
  ?session_factory:(t -> session_handler) ->
  Pb_sql.Database.t ->
  (t -> 'a) ->
  'a
(** Run [f server] and always {!shutdown}, even on exceptions — the
    test harness's entry point. *)
