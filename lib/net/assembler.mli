(** Incremental wire-v2 frame assembly.

    The event-driven server cannot block in [really_read]: bytes arrive
    in arbitrary slices (a 1-byte trickle, a frame straddling two reads,
    several frames coalesced in one). An assembler is the push-style
    dual of {!Protocol.read_frame_gen}: feed it whatever the socket
    produced, then drain the complete frames it has recognized. The
    byte-split is invisible — any slicing of a valid stream yields the
    same frame sequence as the blocking reader, with the same error
    messages on the same malformed prefixes (locked down by a qcheck
    differential in [test/test_net.ml]).

    A framing error is sticky: the stream is out of sync, so after [`Bad]
    every further [next] returns the same error and fed bytes are
    discarded. *)

type t

val create : unit -> t

val feed : t -> ?off:int -> ?len:int -> string -> unit
(** Append a slice of received bytes ([off]/[len] default to the whole
    string). Cheap: header bytes advance a small state machine, payload
    bytes are blitted once into the frame under construction. *)

val next : t -> [ `Frame of string | `Awaiting | `Bad of string ]
(** Pop the next complete frame. [`Awaiting] means more bytes are
    needed; [`Bad msg] reports a framing error (sticky). Complete frames
    queue up, so call [next] until [`Awaiting] after each [feed]. *)

val buffered : t -> int
(** Bytes held for a frame still being assembled (diagnostics; does not
    count already-complete undrained frames). *)
