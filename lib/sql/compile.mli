(** Expression → closure compilation: the hot-path replacement for the
    tree-walking interpreter ({!Executor.eval_expr}).

    [expr] makes one pass over an {!Ast.expr} and returns a
    [Value.t array -> Value.t] closure in which

    + every column reference is resolved to its integer offset once, at
      compile time (an unknown or ambiguous column compiles to a closure
      that raises the interpreter's exact [Failure] when first invoked,
      so zero-row inputs behave identically);
    + binary operators, CASE ladders and scalar-function argument lists
      are pre-dispatched to direct value-level calls;
    + LIKE patterns are compiled to a token array once instead of being
      re-scanned per row;
    + subqueries ([IN (SELECT …)], [EXISTS]) fall back to the supplied
      interpreter callback — the only nodes that still walk the tree.

    The compiled closure is {e bit-identical} to the interpreter on every
    input, including NULL propagation, type errors and the exception
    raised (property-tested in [test_differential.ml]). Closures are pure
    reads of the row array and are safe to call from pool worker domains.

    The scalar kernel shared by the interpreter and the compiler
    ({!like_match}, {!scalar_function}, {!binop_value}, {!Eval_error})
    lives here; {!Executor} re-exports the public pieces. *)

exception Eval_error of string

val like_match : pattern:string -> string -> bool
(** SQL LIKE with [%] and [_] wildcards — the reference two-pointer
    matcher over the raw pattern string. *)

type like_pattern
(** A LIKE pattern pre-compiled to a token array. *)

val compile_like : string -> like_pattern
val like_match_compiled : like_pattern -> string -> bool
(** [like_match_compiled (compile_like p) s = like_match ~pattern:p s]
    for every [p] and [s] (property-tested). *)

val scalar_function :
  string -> Pb_relation.Value.t list -> Pb_relation.Value.t
(** Scalar function dispatch (abs, lower, upper, length, round, floor,
    ceil, coalesce, sqrt); raises {!Eval_error} on unknown names. *)

val binop_value :
  Ast.binop -> Pb_relation.Value.t -> Pb_relation.Value.t -> Pb_relation.Value.t

val set_enabled : bool -> unit
(** Global toggle (also settable via [PB_SQL_COMPILE=0]): when disabled,
    {!expr} returns a closure that defers every node to the fallback
    interpreter — used by the bench harness to measure the interpreter
    against the compiler on identical plans. *)

val is_enabled : unit -> bool

type fallback = Pb_relation.Value.t array -> Ast.expr -> Pb_relation.Value.t
(** Interpreter callback for subquery nodes, closing over the schema (and
    database, when the caller has one) — normally
    [fun row e -> Executor.eval_expr ?db schema row e]. *)

val expr :
  fallback:fallback ->
  Pb_relation.Schema.t ->
  Ast.expr ->
  Pb_relation.Value.t array ->
  Pb_relation.Value.t
(** Compile an expression against a schema. The first two applications
    perform the compilation; the resulting closure evaluates one row. *)

val predicate :
  fallback:fallback ->
  Pb_relation.Schema.t ->
  Ast.expr ->
  Pb_relation.Value.t array ->
  bool
(** [expr] composed with SQL truthiness ([Bool true] only). *)

(** Memoized compilation for prepared plans: a mutex-guarded table keyed
    by (expression, schema columns), so re-executing a cached statement
    reuses its closures instead of re-resolving offsets. One memo belongs
    to one (statement, database) pair — the {!Plan_cache} invalidates the
    whole entry when the database's schema version moves. *)
module Memo : sig
  type t

  val create : unit -> t
  val size : t -> int

  val expr :
    t ->
    fallback:fallback ->
    Pb_relation.Schema.t ->
    Ast.expr ->
    Pb_relation.Value.t array ->
    Pb_relation.Value.t
  (** Like {!val:Compile.expr}, consulting the memo first. The fallback
      of the {e first} compilation is captured in the cached closure, so
      every caller of a given memo must supply an equivalent fallback
      (same database). *)
end
