open Ast
module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation
module Trace = Pb_obs.Trace
module Metrics = Pb_obs.Metrics
module Pool = Pb_par.Pool
module Gov = Pb_util.Gov

(* Sampled governance poll for executor loops (projection, group-by,
   distinct); a stop raises {!Gov.Interrupted}. *)
let poll gov i =
  if i land 255 = 0 then Gov.tick_opt ~resource:Gov.Sql_rows gov

let m_selects =
  Metrics.counter ~help:"SELECT blocks evaluated (subqueries included)"
    "pb_sql_selects_total"

let m_rows_returned =
  Metrics.counter ~help:"Rows returned by SELECT blocks"
    "pb_sql_rows_returned_total"

(* The scalar kernel (LIKE matcher, scalar functions, binop dispatch) lives
   in [Compile] so the interpreter below and the compiled closures share one
   implementation; re-exported here for existing callers. *)
exception Eval_error = Compile.Eval_error

type result = Rows of Relation.t | Affected of int | Created

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt
let like_match = Compile.like_match
let scalar_function = Compile.scalar_function
let binop_value = Compile.binop_value

(* Mutually recursive with [select] because of IN/EXISTS subqueries.
   [gov] rides along so subquery evaluation inherits the request's
   governance token. *)
let rec eval_expr ?db ?gov schema row e =
  let ev e = eval_expr ?db ?gov schema row e in
  match e with
  | Lit v -> v
  | Col name -> row.(Schema.index_of_exn schema name)
  | Unary_minus e -> Value.neg (ev e)
  | Not e -> Value.logical_not (ev e)
  | Binop (op, a, b) -> binop_value op (ev a) (ev b)
  | Between (e, lo, hi) ->
      let v = ev e in
      Value.logical_and
        (Value.cmp_bool (fun c -> c >= 0) v (ev lo))
        (Value.cmp_bool (fun c -> c <= 0) v (ev hi))
  | In_list (e, items, neg) ->
      let v = ev e in
      let hit = List.exists (fun it -> Value.equal v (ev it)) items in
      Value.Bool (if neg then not hit else hit)
  | In_query (e, q, neg) -> (
      match db with
      | None -> err "IN subquery requires a database context"
      | Some db ->
          let v = ev e in
          let sub = select ?gov db q in
          if Relation.cardinality sub > 0 && Schema.arity (Relation.schema sub) <> 1
          then err "IN subquery must return one column"
          else
            let hit =
              Array.exists (fun r -> Value.equal v r.(0)) (Relation.rows sub)
            in
            Value.Bool (if neg then not hit else hit))
  | Exists q -> (
      match db with
      | None -> err "EXISTS subquery requires a database context"
      | Some db -> Value.Bool (Relation.cardinality (select ?gov db q) > 0))
  | Is_null (e, neg) ->
      let null = Value.is_null (ev e) in
      Value.Bool (if neg then not null else null)
  | Like (e, pattern, neg) -> (
      match ev e with
      | Value.Null -> Value.Null
      | Value.Str s ->
          let hit = like_match ~pattern s in
          Value.Bool (if neg then not hit else hit)
      | v -> err "LIKE on non-string value %s" (Value.to_string v))
  | Agg (f, _) -> err "aggregate %s outside GROUP context" (agg_to_string f)
  | Func (name, args) -> scalar_function name (List.map ev args)
  | Case (branches, default) -> eval_case ev branches default

and eval_case ev branches default =
  let rec walk = function
    | [] -> ( match default with Some e -> ev e | None -> Value.Null)
    | (cond, value) :: rest -> if Value.truthy (ev cond) then ev value else walk rest
  in
  walk branches

and eval_agg_expr ?db ?gov schema group e =
  let representative =
    match group with
    | r :: _ -> r
    | [] -> Array.make (Schema.arity schema) Value.Null
  in
  let rec ev e =
    match e with
    | Agg (Count_star, _) -> Value.Int (List.length group)
    | Agg (f, Some arg) -> reduce f arg
    | Agg (f, None) -> err "%s requires an argument" (agg_to_string f)
    | Lit v -> v
    | Col name -> representative.(Schema.index_of_exn schema name)
    | Unary_minus e -> Value.neg (ev e)
    | Not e -> Value.logical_not (ev e)
    | Binop (op, a, b) -> binop_value op (ev a) (ev b)
    | Between (e, lo, hi) ->
        let v = ev e in
        Value.logical_and
          (Value.cmp_bool (fun c -> c >= 0) v (ev lo))
          (Value.cmp_bool (fun c -> c <= 0) v (ev hi))
    | In_list (e, items, neg) ->
        let v = ev e in
        let hit = List.exists (fun it -> Value.equal v (ev it)) items in
        Value.Bool (if neg then not hit else hit)
    | In_query (lhs, sub, neg) -> (
        match db with
        | None -> err "IN subquery requires a database context"
        | Some db ->
            (* The lhs may itself aggregate over the group. *)
            let v = ev lhs in
            let rel = select ?gov db sub in
            if Relation.cardinality rel > 0 && Schema.arity (Relation.schema rel) <> 1
            then err "IN subquery must return one column"
            else
              let hit =
                Array.exists (fun r -> Value.equal v r.(0)) (Relation.rows rel)
              in
              Value.Bool (if neg then not hit else hit))
    | Exists sub -> (
        match db with
        | None -> err "EXISTS subquery requires a database context"
        | Some db -> Value.Bool (Relation.cardinality (select ?gov db sub) > 0))
    | Is_null (e, neg) ->
        let null = Value.is_null (ev e) in
        Value.Bool (if neg then not null else null)
    | Like (lhs, pattern, neg) -> (
        match ev lhs with
        | Value.Null -> Value.Null
        | Value.Str s ->
            let hit = like_match ~pattern s in
            Value.Bool (if neg then not hit else hit)
        | v -> err "LIKE on non-string value %s" (Value.to_string v))
    | Func (name, args) -> scalar_function name (List.map ev args)
    | Case (branches, default) -> eval_case ev branches default
  and reduce f arg =
    let values =
      List.filter_map
        (fun r ->
          let v = eval_expr ?db ?gov schema r arg in
          if Value.is_null v then None else Some v)
        group
    in
    match (f, values) with
    | Count, vs -> Value.Int (List.length vs)
    | Count_star, _ -> Value.Int (List.length group)
    | _, [] -> Value.Null
    | Sum, vs ->
        let all_int = List.for_all (function Value.Int _ -> true | _ -> false) vs in
        if all_int then
          Value.Int
            (List.fold_left
               (fun acc v -> acc + Option.get (Value.to_int v))
               0 vs)
        else
          Value.Float
            (List.fold_left
               (fun acc v ->
                 match Value.to_float v with
                 | Some x -> acc +. x
                 | None -> err "SUM over non-numeric value")
               0.0 vs)
    | Avg, vs ->
        let total =
          List.fold_left
            (fun acc v ->
              match Value.to_float v with
              | Some x -> acc +. x
              | None -> err "AVG over non-numeric value")
            0.0 vs
        in
        Value.Float (total /. float_of_int (List.length vs))
    | Min, v :: vs ->
        List.fold_left (fun a b -> if Value.compare_values b a < 0 then b else a) v vs
    | Max, v :: vs ->
        List.fold_left (fun a b -> if Value.compare_values b a > 0 then b else a) v vs
  in
  ev e

and select ?memo ?gov db q =
  let base = select_simple ?memo ?gov db q in
  (* Set operations, applied left to right over the first branch. *)
  List.fold_left
    (fun acc (op, rhs) -> set_operation op acc (select_simple ?memo ?gov db rhs))
    base q.compound

(* Compile one row-local expression, through the prepared-plan memo when the
   statement came from the cache. The fallback closes over [db] so subquery
   nodes re-enter the interpreter with the same context. *)
and compile_row ?db ?gov ?memo schema e =
  match memo with
  | Some m ->
      (* Memoized closures are cached across requests by the plan cache,
         so the fallback must NOT close over this request's governance
         token — a stale token baked into a cached plan could cancel a
         later, healthy request.  Subqueries reached through a memoized
         plan therefore run un-governed (the enclosing operator loops
         still poll). *)
      let fallback row e = eval_expr ?db schema row e in
      Compile.Memo.expr m ~fallback schema e
  | None ->
      let fallback row e = eval_expr ?db ?gov schema row e in
      Compile.expr ~fallback schema e

(* Key used for duplicate detection in DISTINCT and set operations:
   numerics normalize (3 = 3.0), types otherwise separate so Int 1 and
   Str "1" stay distinct. *)
and dedup_key row =
  let cell v =
    match (v : Value.t) with
    | Value.Null -> "0"
    | Value.Bool b -> "b" ^ string_of_bool b
    | Value.Int i -> "n" ^ string_of_float (float_of_int i)
    | Value.Float f -> "n" ^ string_of_float f
    | Value.Str s -> "s" ^ s
  in
  String.concat "\x00" (Array.to_list (Array.map cell row))

and set_operation op left right =
  if Schema.arity (Relation.schema left) <> Schema.arity (Relation.schema right)
  then err "set operation over results of different arity";
  let keys_of rel =
    let tbl = Hashtbl.create 64 in
    Array.iter (fun row -> Hashtbl.replace tbl (dedup_key row) ()) (Relation.rows rel);
    tbl
  in
  let dedup rows =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun row ->
        let k = dedup_key row in
        if Hashtbl.mem seen k then false
        else (
          Hashtbl.add seen k ();
          true))
      rows
  in
  let schema = Relation.schema left in
  match op with
  | Union_all ->
      Relation.create schema (Relation.to_list left @ Relation.to_list right)
  | Union ->
      Relation.create schema
        (dedup (Relation.to_list left @ Relation.to_list right))
  | Intersect ->
      let right_keys = keys_of right in
      Relation.create schema
        (dedup
           (List.filter
              (fun row -> Hashtbl.mem right_keys (dedup_key row))
              (Relation.to_list left)))
  | Except ->
      let right_keys = keys_of right in
      Relation.create schema
        (dedup
           (List.filter
              (fun row -> not (Hashtbl.mem right_keys (dedup_key row)))
              (Relation.to_list left)))

and select_simple ?memo ?gov db q =
  Trace.with_span ~name:"sql.select" (fun () ->
  Metrics.incr m_selects;
  match Columnar.try_select ?gov db q with
  | Some rel ->
      (* The columnar engine answered the whole block; result-side
         accounting matches the row path below. *)
      let rows_out = Relation.cardinality rel in
      (match gov with Some g -> Gov.spend g Gov.Sql_rows rows_out | None -> ());
      Metrics.incr ~by:rows_out m_rows_returned;
      Trace.add_count "rows_out" rows_out;
      rel
  | None ->
  let filtered, _plan_stats =
    try
      Planner.execute ?gov db
        ~eval:(fun schema row e -> eval_expr ~db ?gov schema row e)
        ~compile:(fun schema e -> compile_row ~db ?gov ?memo schema e)
        ~from:q.from ~where:q.where
    with Failure msg -> err "%s" msg
  in
  let schema = Relation.schema filtered in
  let items = Shape.expand_items schema q.items in
  let grouped_mode = Shape.grouped q items in
  let out_schema = Shape.output_schema schema items in
  (* Each output row keeps its provenance (source row or group) so that
     ORDER BY can reference source expressions that were not projected. *)
  let pairs =
    if not grouped_mode then begin
      (* Projection items are compiled once; the closures are pure reads of
         the row array, so they are shared across pool worker domains. *)
      let item_fns =
        List.map
          (function
            | Expr_item (e, _) -> compile_row ~db ?gov ?memo schema e
            | Star_item -> assert false)
          items
      in
      let project row =
        (Array.of_list (List.map (fun f -> f row) item_fns), `Row row)
      in
      (* Projection over large inputs is chunked across the domain pool;
         chunk outputs concatenate in order, so the row order (and any
         evaluation error raised) is identical to the sequential map. *)
      let rows = Relation.rows filtered in
      let n = Array.length rows in
      let pool = Pool.get_default () in
      if Pool.size pool > 1 && n >= 512 then
        List.concat
          (Pool.map_chunks pool ~n (fun ~lo ~hi ->
               List.init (hi - lo) (fun k ->
                   poll gov k;
                   project rows.(lo + k))))
      else
        List.mapi
          (fun i row ->
            poll gov i;
            project row)
          (Relation.to_list filtered)
    end
    else begin
      Trace.with_span ~name:"sql.group" (fun () ->
      (* Group rows by the GROUP BY key (single group when absent). *)
      let key_fns = List.map (compile_row ~db ?gov ?memo schema) q.group_by in
      let tbl = Hashtbl.create 64 in
      let order = ref [] in
      let seen_rows = ref 0 in
      List.iter
        (fun row ->
          poll gov !seen_rows;
          incr seen_rows;
          let key = List.map (fun f -> Value.to_string (f row)) key_fns in
          (match Hashtbl.find_opt tbl key with
          | Some cell -> cell := row :: !cell
          | None ->
              Hashtbl.add tbl key (ref [ row ]);
              order := key :: !order))
        (Relation.to_list filtered);
      let groups =
        if q.group_by = [] then
          [ List.rev (match Hashtbl.find_opt tbl [] with Some c -> !c | None -> []) ]
        else
          List.rev_map (fun key -> List.rev !(Hashtbl.find tbl key)) !order
      in
      let groups =
        (* An empty input with no GROUP BY still yields one (empty) group,
           so that a bare SELECT COUNT of everything returns 0. *)
        if q.group_by = [] then groups else List.filter (fun g -> g <> []) groups
      in
      List.filter_map
        (fun group ->
          Gov.tick_opt ~resource:Gov.Sql_rows gov;
          let keep =
            match q.having with
            | None -> true
            | Some pred ->
                Value.truthy (eval_agg_expr ~db ?gov schema group pred)
          in
          if not keep then None
          else
            Some
              ( Array.of_list
                  (List.map
                     (function
                       | Expr_item (e, _) -> eval_agg_expr ~db ?gov schema group e
                       | Star_item -> assert false)
                     items),
                `Group group ))
        groups)
    end
  in
  let pairs =
    if not q.distinct then pairs
    else begin
      let seen = Hashtbl.create 64 in
      let i = ref 0 in
      List.filter
        (fun (row, _) ->
          poll gov !i;
          incr i;
          let key = dedup_key row in
          if Hashtbl.mem seen key then false
          else (
            Hashtbl.add seen key ();
            true))
        pairs
    end
  in
  let pairs =
    match q.order_by with
    | [] -> pairs
    | keys ->
        (* ORDER BY may reference output columns (by alias), or any source
           expression — including ones that were not projected — which is
           resolved against the row's provenance. Source-side keys are
           compiled once instead of per comparison; grouped rows keep the
           aggregate-aware interpreter. *)
        let key_plans =
          List.map
            (fun (e, dir) ->
              let plan =
                match e with
                | Col name when Schema.index_of out_schema name <> None ->
                    `Out (Schema.index_of_exn out_schema name)
                | _ -> `Src (compile_row ~db ?gov ?memo schema e, e)
              in
              (plan, dir))
            keys
        in
        let key_value (out_row, provenance) plan =
          match plan with
          | `Out i -> out_row.(i)
          | `Src (f, e) -> (
              match provenance with
              | `Row src -> f src
              | `Group group -> eval_agg_expr ~db ?gov schema group e)
        in
        let cmp a b =
          let rec walk = function
            | [] -> 0
            | (plan, dir) :: rest ->
                let c = Value.compare_values (key_value a plan) (key_value b plan) in
                let c = match dir with Asc -> c | Desc -> -c in
                if c <> 0 then c else walk rest
          in
          walk key_plans
        in
        Trace.with_span ~name:"sql.sort" (fun () ->
            List.stable_sort cmp pairs)
  in
  let pairs =
    match q.offset with
    | None -> pairs
    | Some skip -> List.filteri (fun i _ -> i >= skip) pairs
  in
  let pairs =
    match q.limit with
    | None -> pairs
    | Some k -> List.filteri (fun i _ -> i < k) pairs
  in
  let rows_out = List.length pairs in
  (match gov with Some g -> Gov.spend g Gov.Sql_rows rows_out | None -> ());
  Metrics.incr ~by:rows_out m_rows_returned;
  Trace.add_count "rows_out" rows_out;
  Relation.create out_schema (List.map fst pairs))

and eval_const ?db e =
  let empty = Schema.make [] in
  eval_expr ?db empty [||] e

let execute ?memo ?gov db stmt =
  match stmt with
  | Select_stmt q -> Rows (select ?memo ?gov db q)
  | Create_table (name, defs) ->
      let schema =
        Schema.make
          (List.map (fun d -> { Schema.name = d.col_name; ty = d.col_ty }) defs)
      in
      Database.put db name (Relation.empty schema);
      Created
  | Insert (name, cols, rows) ->
      let rel = Database.find_exn db name in
      let schema = Relation.schema rel in
      let build row_exprs =
        let values = List.map (fun e -> eval_const ~db e) row_exprs in
        match cols with
        | None ->
            if List.length values <> Schema.arity schema then
              err "INSERT arity mismatch";
            Array.of_list values
        | Some names ->
            if List.length names <> List.length values then
              err "INSERT column/value count mismatch";
            let out = Array.make (Schema.arity schema) Value.Null in
            List.iter2
              (fun n v -> out.(Schema.index_of_exn schema n) <- v)
              names values;
            out
      in
      let new_rows = List.map build rows in
      Database.put db name (Relation.append rel new_rows);
      Affected (List.length new_rows)
  | Delete (name, where) -> (
      let rel = Database.find_exn db name in
      let schema = Relation.schema rel in
      let columnar =
        match where with
        | Some pred -> Columnar.delete_keep ?gov db ~name rel pred
        | None -> None
      in
      match columnar with
      | Some (kept, affected) ->
          Database.put db name kept;
          Affected affected
      | None ->
          let keep =
            match where with
            | None -> fun _row -> false
            | Some pred ->
                let f = compile_row ~db ?gov schema pred in
                fun row -> not (Value.truthy (f row))
          in
          let kept = Relation.filter keep rel in
          Database.put db name kept;
          Affected (Relation.cardinality rel - Relation.cardinality kept))
  | Update (name, sets, where) ->
      let rel = Database.find_exn db name in
      let schema = Relation.schema rel in
      let count = ref 0 in
      let mask =
        match where with
        | Some pred -> Columnar.update_mask ?gov db ~name rel pred
        | None -> None
      in
      let hit_fn =
        match (mask, where) with
        | Some _, _ | None, None -> fun _row -> true
        | None, Some pred ->
            let f = compile_row ~db ?gov schema pred in
            fun row -> Value.truthy (f row)
      in
      let set_fns =
        List.map (fun (col, e) -> (col, compile_row ~db ?gov schema e)) sets
      in
      (* [pos] tracks the row position so a columnar-computed WHERE mask
         can stand in for the per-row predicate. *)
      let pos = ref (-1) in
      let update row =
        incr pos;
        let hit =
          match mask with
          | Some m -> Bytes.get m !pos = '\001'
          | None -> hit_fn row
        in
        if not hit then row
        else begin
          incr count;
          let out = Array.copy row in
          List.iter
            (fun (col, f) -> out.(Schema.index_of_exn schema col) <- f row)
            set_fns;
          out
        end
      in
      Database.put db name (Relation.map_rows schema update rel);
      Affected !count
  | Create_index { table; column } ->
      (try Database.create_index db ~table ~column
       with Failure msg -> err "%s" msg);
      Created
  | Drop_table name ->
      Database.drop db name;
      Created

let execute_sql ?gov db src = execute ?gov db (Parser.parse_statement src)
