open Ast
module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation

module Trace = Pb_obs.Trace
module Metrics = Pb_obs.Metrics
module Pool = Pb_par.Pool
module Gov = Pb_util.Gov

(* Below this many rows a parallel pass costs more in chunk bookkeeping
   than it saves; operators fall back to the plain sequential loop. *)
let par_threshold = 512

(* Governance poll for SQL operator loops, sampled every [poll_mask + 1]
   iterations so the atomic loads stay off the per-row fast path.  SQL
   has no useful partial answer, so a stop raises {!Gov.Interrupted}
   (possibly from a worker domain — [Pool.run_region] re-raises it on
   the submitter). *)
let poll_mask = 255

let poll gov i =
  if i land poll_mask = 0 then Gov.tick_opt ~resource:Gov.Sql_rows gov

(* Order-preserving filter: rows are predicate-tested in parallel chunks
   over the default pool and the surviving rows concatenated in chunk
   order, so the output is identical to [Relation.filter] at any pool
   size.  The predicate must be pure reads (it runs on worker domains). *)
let chunked_filter ?gov pred rel =
  let pool = Pool.get_default () in
  let rows = Relation.rows rel in
  let n = Array.length rows in
  if Pool.size pool <= 1 || n < par_threshold then begin
    let out = ref [] in
    for i = n - 1 downto 0 do
      poll gov i;
      if pred rows.(i) then out := rows.(i) :: !out
    done;
    Relation.create (Relation.schema rel) !out
  end
  else
    let parts =
      Pool.map_chunks pool ~n (fun ~lo ~hi ->
          let out = ref [] in
          for i = hi - 1 downto lo do
            poll gov i;
            if pred rows.(i) then out := rows.(i) :: !out
          done;
          !out)
    in
    Relation.create (Relation.schema rel) (List.concat parts)

let m_rows_scanned =
  Metrics.counter ~help:"Rows read by base-table scans (after index narrowing)"
    "pb_sql_rows_scanned_total"

let m_index_lookups =
  Metrics.counter ~help:"Scans satisfied through a declared index"
    "pb_sql_index_lookups_total"

let m_hash_joins =
  Metrics.counter ~help:"Hash joins executed" "pb_sql_hash_joins_total"

let m_hash_join_build_rows =
  Metrics.counter ~help:"Rows inserted into hash-join build tables"
    "pb_sql_hash_join_build_rows_total"

let m_hash_join_probe_rows =
  Metrics.counter ~help:"Rows probed against hash-join build tables"
    "pb_sql_hash_join_probe_rows_total"

let m_nested_products =
  Metrics.counter ~help:"Nested-loop products (no usable equi-join key)"
    "pb_sql_nested_products_total"

let m_product_rows =
  Metrics.counter
    ~help:"Rows materialized by nested-loop products (cancellation poll point)"
    "pb_sql_product_rows_total"

let m_pushed_predicates =
  Metrics.counter ~help:"Predicates applied below the top of the join tree"
    "pb_sql_pushed_predicates_total"

type eval_fn = Schema.t -> Value.t array -> Ast.expr -> Value.t

type compile_fn = Schema.t -> Ast.expr -> Value.t array -> Value.t

type stats = {
  pushed_predicates : int;
  index_scans : int;
  hash_joins : int;
  nested_products : int;
}

let no_stats =
  { pushed_predicates = 0; index_scans = 0; hash_joins = 0; nested_products = 0 }

let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* All column references of an expression (subqueries excluded: their
   columns resolve against their own FROM). *)
let rec columns_of acc = function
  | Col c -> c :: acc
  | Lit _ | Exists _ -> acc
  | Unary_minus e | Not e | Is_null (e, _) | Like (e, _, _) | In_query (e, _, _)
    ->
      columns_of acc e
  | Binop (_, a, b) -> columns_of (columns_of acc a) b
  | Between (a, b, c) -> columns_of (columns_of (columns_of acc a) b) c
  | In_list (e, es, _) -> List.fold_left columns_of (columns_of acc e) es
  | Agg (_, Some e) -> columns_of acc e
  | Agg (_, None) -> acc
  | Func (_, es) -> List.fold_left columns_of acc es
  | Case (branches, default) ->
      let acc =
        List.fold_left
          (fun acc (c, e) -> columns_of (columns_of acc c) e)
          acc branches
      in
      (match default with Some e -> columns_of acc e | None -> acc)

let resolvable schema expr =
  List.for_all
    (fun col -> Schema.index_of schema col <> None)
    (columns_of [] expr)

let load db { rel_name; alias } =
  let rel =
    match Database.find db rel_name with
    | Some r -> r
    | None -> failwith ("no such table: " ^ rel_name)
  in
  let qualifier = Option.value alias ~default:rel_name in
  (rel_name, Relation.rename qualifier rel)

let naive db ~eval ~from ~where =
  match from with
  | [] -> failwith "empty FROM clause"
  | first :: rest ->
      let source =
        List.fold_left
          (fun acc r -> Relation.product acc (snd (load db r)))
          (snd (load db first))
          rest
      in
      (match where with
      | None -> source
      | Some pred ->
          let schema = Relation.schema source in
          Relation.filter
            (fun row -> Value.truthy (eval schema row pred))
            source)

(* ---- single-table scan with optional index access ------------------- *)

let base_name col =
  match String.rindex_opt col '.' with
  | Some i -> String.sub col (i + 1) (String.length col - i - 1)
  | None -> col

(* Recognize a sargable conjunct over [schema]: (column, bounds). *)
let sargable schema expr =
  let bound_of cmp v =
    match cmp with
    | Eq -> Some (Some (v, true), Some (v, true))
    | Le -> Some (None, Some (v, true))
    | Lt -> Some (None, Some (v, false))
    | Ge -> Some (Some (v, true), None)
    | Gt -> Some (Some (v, false), None)
    | Neq | Add | Sub | Mul | Div | And | Or -> None
  in
  let mirror = function
    | Le -> Ge
    | Lt -> Gt
    | Ge -> Le
    | Gt -> Lt
    | cmp -> cmp
  in
  match expr with
  | Binop (cmp, Col c, Lit v) when Schema.index_of schema c <> None ->
      Option.map (fun b -> (c, b)) (bound_of cmp v)
  | Binop (cmp, Lit v, Col c) when Schema.index_of schema c <> None ->
      Option.map (fun b -> (c, b)) (bound_of (mirror cmp) v)
  | Between (Col c, Lit lo, Lit hi) when Schema.index_of schema c <> None ->
      Some (c, (Some (lo, true), Some (hi, true)))
  | _ -> None

let scan ?gov db ~compile ~stats table_name qualified_rel conjs =
  Trace.with_span ~name:"sql.scan" ~attrs:[ ("table", table_name) ] (fun () ->
  match Columnar.scan ?gov db ~name:table_name qualified_rel conjs with
  | Some out ->
      (* Same accounting as the row path below: every base row is read,
         and each conjunct counts as one pushed predicate. *)
      let npush = List.length conjs in
      stats :=
        { !stats with pushed_predicates = !stats.pushed_predicates + npush };
      Metrics.incr ~by:npush m_pushed_predicates;
      let scanned = Relation.cardinality qualified_rel in
      Metrics.incr ~by:scanned m_rows_scanned;
      Trace.add_count "rows_scanned" scanned;
      Trace.add_count "rows_out" (Relation.cardinality out);
      out
  | None ->
  let schema = Relation.schema qualified_rel in
  (* Try to satisfy one sargable conjunct with a declared index. *)
  let indexed_conjunct =
    List.find_opt
      (fun conj ->
        match sargable schema conj with
        | Some (col, _) ->
            Database.get_index db ~table:table_name ~column:(base_name col)
            <> None
        | None -> false)
      conjs
  in
  let rel, remaining =
    match indexed_conjunct with
    | Some conj ->
        let col, (lo, hi) = Option.get (sargable schema conj) in
        let index =
          Option.get
            (Database.get_index db ~table:table_name ~column:(base_name col))
        in
        stats := { !stats with index_scans = !stats.index_scans + 1 };
        Metrics.incr m_index_lookups;
        Trace.add_count "index_lookups" 1;
        let positions = Index.range ?lo ?hi index in
        let rows = List.map (Relation.row qualified_rel) positions in
        ( Relation.create schema rows,
          List.filter (fun c -> c != conj) conjs )
    | None -> (qualified_rel, conjs)
  in
  let scanned = Relation.cardinality rel in
  Metrics.incr ~by:scanned m_rows_scanned;
  Trace.add_count "rows_scanned" scanned;
  let out =
    List.fold_left
      (fun acc conj ->
        stats := { !stats with pushed_predicates = !stats.pushed_predicates + 1 };
        Metrics.incr m_pushed_predicates;
        (* Compiled once here, then invoked per row on worker domains. *)
        let pred = compile schema conj in
        chunked_filter ?gov (fun row -> Value.truthy (pred row)) acc)
      rel remaining
  in
  Trace.add_count "rows_out" (Relation.cardinality out);
  out)

(* ---- hash join ------------------------------------------------------- *)

(* Equi-join keys linking [left_schema] to [right_schema]: conjuncts of
   the form a = b with one side in each schema. *)
let equi_keys left_schema right_schema conjs =
  List.filter_map
    (fun conj ->
      match conj with
      | Binop (Eq, (Col a as ca), (Col b as cb)) ->
          let in_left c = Schema.index_of left_schema c <> None in
          let in_right c = Schema.index_of right_schema c <> None in
          if in_left a && in_right b && not (in_left b) then Some (conj, ca, cb)
          else if in_left b && in_right a && not (in_left a) then
            Some (conj, cb, ca)
          else None
      | _ -> None)
    conjs

(* Join keys are hashed as Value.t lists directly — no string rendering per
   row. The hash must be consistent with [Value.equal], which normalizes
   numerics (Int 3 = Float 3.), so Int hashes through its float image; the
   rendering collisions of the old string keys (Int 1 vs Str "1" both "1")
   cannot happen, removing the probe-time re-check. *)
module Join_key = struct
  type t = Value.t list

  let equal = List.equal Value.equal

  let norm v =
    match (v : Value.t) with
    | Value.Int i -> Value.Float (float_of_int i)
    | v -> v

  let hash values = Hashtbl.hash (List.map norm values)
end

module Join_tbl = Hashtbl.Make (Join_key)

let hash_join ?gov ~compile left right keys =
  Trace.with_span ~name:"sql.hash_join" (fun () ->
  Metrics.incr m_hash_joins;
  Metrics.incr ~by:(Relation.cardinality right) m_hash_join_build_rows;
  Metrics.incr ~by:(Relation.cardinality left) m_hash_join_probe_rows;
  Trace.add_count "build_rows" (Relation.cardinality right);
  Trace.add_count "probe_rows" (Relation.cardinality left);
  let left_schema = Relation.schema left in
  let right_schema = Relation.schema right in
  let left_exprs = List.map (fun (_, l, _) -> l) keys in
  let right_exprs = List.map (fun (_, _, r) -> r) keys in
  let left_fns = List.map (compile left_schema) left_exprs in
  let right_fns = List.map (compile right_schema) right_exprs in
  let key_values fns row = List.map (fun f -> f row) fns in
  let pool = Pool.get_default () in
  let par n = Pool.size pool > 1 && n >= par_threshold in
  (* Build: key expressions are evaluated over row chunks in parallel
     (pure reads into disjoint array slots), then inserted sequentially
     so the bucket ordering — and hence [find_all] order — matches the
     sequential build exactly. *)
  let rrows = Relation.rows right in
  let rkeys =
    let n = Array.length rrows in
    let out = Array.make n [] in
    let fill i =
      poll gov i;
      out.(i) <- key_values right_fns rrows.(i)
    in
    if par n then Pool.parallel_for pool n fill
    else
      for i = 0 to n - 1 do
        fill i
      done;
    out
  in
  let table = Join_tbl.create (Array.length rrows) in
  Array.iteri
    (fun i row ->
      let values = rkeys.(i) in
      if not (List.exists Value.is_null values) then
        Join_tbl.add table values row)
    rrows;
  (* Probe: read-only against the finished build table, chunked over the
     left rows with chunk outputs concatenated in order. *)
  let lrows = Relation.rows left in
  let probe_chunk ~lo ~hi =
    let out = ref [] in
    for i = lo to hi - 1 do
      poll gov i;
      let lrow = lrows.(i) in
      let values = key_values left_fns lrow in
      if not (List.exists Value.is_null values) then
        List.iter
          (fun rrow -> out := Array.append lrow rrow :: !out)
          (Join_tbl.find_all table values)
    done;
    List.rev !out
  in
  let nleft = Array.length lrows in
  let parts =
    if par nleft then Pool.map_chunks pool ~n:nleft probe_chunk
    else [ probe_chunk ~lo:0 ~hi:nleft ]
  in
  let joined =
    Relation.create (Schema.concat left_schema right_schema) (List.concat parts)
  in
  Trace.add_count "rows_out" (Relation.cardinality joined);
  joined)

(* Nested-loop product with a governance poll and a metered row count.
   This is where a poison cross-join burns its CPU, so it is the single
   most important cancellation point in the SQL engine: the row counter
   is flushed to the metrics registry at every poll, which is what lets
   the abandoned-worker regression test observe "the counter stopped
   incrementing" from outside.  Row order is identical to
   [Relation.product] (outer left, inner right). *)
let governed_product ?gov a b =
  Trace.with_span ~name:"sql.product" (fun () ->
      let arows = Relation.rows a and brows = Relation.rows b in
      let out = ref [] in
      let produced = ref 0 and pending = ref 0 in
      let flush () =
        Metrics.incr ~by:!pending m_product_rows;
        (match gov with
        | Some g -> Gov.spend g Gov.Sql_rows !pending
        | None -> ());
        pending := 0
      in
      (try
         Array.iter
           (fun ra ->
             Array.iter
               (fun rb ->
                 if !produced land poll_mask = 0 then begin
                   flush ();
                   Gov.tick_opt ~resource:Gov.Sql_rows gov
                 end;
                 incr produced;
                 incr pending;
                 out := Array.append ra rb :: !out)
               brows)
           arows
       with e ->
         flush ();
         raise e);
      flush ();
      let p =
        Relation.create
          (Schema.concat (Relation.schema a) (Relation.schema b))
          (List.rev !out)
      in
      Trace.add_count "rows_out" !produced;
      p)

(* ---- the plan -------------------------------------------------------- *)

let execute ?compile ?gov db ~eval ~from ~where =
  (* Callers that don't compile (e.g. the naive ablation in \plan) get a
     degenerate compile_fn that closes over the interpreter. *)
  let compile =
    match compile with
    | Some f -> f
    | None -> fun schema e row -> eval schema row e
  in
  Trace.with_span ~name:"sql.plan" (fun () ->
  match from with
  | [] -> failwith "empty FROM clause"
  | first :: rest ->
      let stats = ref no_stats in
      let all_conjuncts =
        match where with Some e -> conjuncts e | None -> []
      in
      let consumed = ref [] in
      let consume c = consumed := c :: !consumed in
      let is_consumed c = List.memq c !consumed in
      let tables = List.map (load db) (first :: rest) in
      let schemas = List.map (fun (_, rel) -> Relation.schema rel) tables in
      (* A conjunct belongs to table i when its columns resolve there and
         in no other table (unambiguous assignment). *)
      let single_table_conjuncts i =
        List.filter
          (fun conj ->
            (not (is_consumed conj))
            && columns_of [] conj <> []
            && List.for_all
                 (fun col ->
                   let hits =
                     List.filteri
                       (fun j schema ->
                         ignore j;
                         Schema.index_of schema col <> None)
                       schemas
                   in
                   List.length hits = 1)
                 (columns_of [] conj)
            && resolvable (List.nth schemas i) conj)
          all_conjuncts
      in
      let scanned =
        List.mapi
          (fun i (table_name, rel) ->
            let conjs = single_table_conjuncts i in
            List.iter consume conjs;
            scan ?gov db ~compile ~stats table_name rel conjs)
          tables
      in
      let apply_ready acc =
        let schema = Relation.schema acc in
        List.fold_left
          (fun acc conj ->
            if (not (is_consumed conj)) && resolvable schema conj then begin
              consume conj;
              stats :=
                { !stats with pushed_predicates = !stats.pushed_predicates + 1 };
              let pred = compile schema conj in
              chunked_filter ?gov (fun row -> Value.truthy (pred row)) acc
            end
            else acc)
          acc all_conjuncts
      in
      let joined =
        match scanned with
        | [] -> assert false
        | first :: rest ->
            List.fold_left
              (fun acc next ->
                let pending =
                  List.filter (fun c -> not (is_consumed c)) all_conjuncts
                in
                let keys =
                  equi_keys (Relation.schema acc) (Relation.schema next)
                    pending
                in
                let joined =
                  if keys <> [] then begin
                    List.iter (fun (conj, _, _) -> consume conj) keys;
                    stats := { !stats with hash_joins = !stats.hash_joins + 1 };
                    hash_join ?gov ~compile acc next keys
                  end
                  else begin
                    stats :=
                      { !stats with nested_products = !stats.nested_products + 1 };
                    Metrics.incr m_nested_products;
                    governed_product ?gov acc next
                  end
                in
                apply_ready joined)
              (apply_ready first) rest
      in
      (* Anything left (e.g. pure-subquery predicates, or predicates whose
         columns are ambiguous) evaluates against the full schema — the
         same behaviour, including errors, as the naive path. *)
      let final_schema = Relation.schema joined in
      let result =
        List.fold_left
          (fun acc conj ->
            if is_consumed conj then acc
            else
              let pred = compile final_schema conj in
              chunked_filter ?gov (fun row -> Value.truthy (pred row)) acc)
          joined all_conjuncts
      in
      Trace.add_count "rows_out" (Relation.cardinality result);
      (result, !stats))
