(** Mutable catalog of named relations — the "DBMS" whose role PostgreSQL
    plays in the paper. PackageBuilder proper only talks to this through
    SQL (see {!Executor}); the workload generators install relations
    directly. Table names are case-insensitive.

    Indexes are declared per (table, column); they are built lazily on
    first use and invalidated whenever the table is replaced (every DML
    statement replaces the stored relation).

    Every operation below is serialized by an internal mutex, so a
    database may be read from several pool domains at once (parallel
    scans, hash joins, subquery evaluation on worker domains — including
    the lazy index build, which happens at most once per column) while
    another domain installs or drops tables. Relations are immutable, so
    returned values are safe to use without further synchronization. *)

type t

val create : unit -> t

val version : t -> int
(** Schema/DDL generation counter: bumps when a table is created, dropped
    or replaced with a different schema, or an index is declared — but not
    on schema-preserving DML, so {!Plan_cache} entries survive data
    changes and are invalidated by catalog changes. *)

val put : t -> string -> Pb_relation.Relation.t -> unit
(** Install or replace a table; cached indexes on it are invalidated. *)

val find : t -> string -> Pb_relation.Relation.t option
val find_exn : t -> string -> Pb_relation.Relation.t
(** Raises [Failure] naming the missing table. *)

val drop : t -> string -> unit
(** Also forgets the table's index declarations. *)

val table_names : t -> string list
(** Sorted. *)

val create_index : t -> table:string -> column:string -> unit
(** Declare an index (idempotent). Raises [Failure] if the table or
    column does not exist. *)

val indexed_columns : t -> string -> string list
(** Declared index columns of a table (possibly not yet built). *)

val get_index : t -> table:string -> column:string -> Index.t option
(** The index, building and caching it on demand; [None] when not
    declared or the table is missing. *)

val columnar : t -> string -> Pb_relation.Relation.t -> Pb_store.Table.t
(** [columnar db name rel] is the columnar image of table [name]'s
    snapshot [rel]: cached when it was encoded from the same physical row
    store (a {!Pb_relation.Relation.rename} of the stored relation still
    hits), rebuilt from [rel] otherwise. Built under the catalog lock and
    dropped whenever the relation is replaced or dropped. Maintains the
    [pb_store_bytes_resident] gauge. *)

val columnar_cached :
  t -> string -> Pb_relation.Relation.t -> Pb_store.Table.t option
(** The cached columnar image for exactly this snapshot — never triggers
    a build (used by {!Persist} to stream from columns when they are
    already resident). *)

val load_csv : t -> name:string -> string -> unit
(** [load_csv db ~name path] creates table [name] from a CSV file whose
    first row is a header; column types are inferred per column from the
    parsed values (INT if all integral, else FLOAT if numeric, else BOOL,
    else TEXT; empty fields are NULL and don't constrain the type). *)
