(** Vectorized expression kernels over columnar chunks.

    [compile schema tbl e] returns a kernel evaluating [e] over runs of
    consecutive distinct rows of [tbl] ([schema] is the possibly-qualified
    view of the table's schema — column positions must align with the
    table's columns). Compilation is all-or-nothing: it returns [None] for
    any expression whose vectorized evaluation could diverge from the row
    interpreter (subqueries, CASE, boxed columns, mixed-kind comparisons,
    non-literal IN lists, unknown columns or functions), and a kernel that
    does compile never raises — the caller falls back to the row engine on
    [None].

    Numerics run in 64-bit floats (exact for the integer ranges the row
    engine itself compares through the float image); [int_valued] tracks
    statically whether the row engine would produce [Value.Int] results,
    mirroring its dynamic all-int checks in SUM/MIN/MAX. *)

val chunk : int
(** Suggested rows-per-chunk for driving kernels (1024). *)

type vec =
  | Num of float array * Bytes.t option  (** values; side-map byte 1 = NULL *)
  | B3 of Bytes.t  (** three-valued logic: 0 false / 1 true / 2 null *)
  | Sv of string array * int array  (** dictionary, codes; code -1 = NULL *)

type kind = K_num | K_str | K_bool

type t = {
  kind : kind;
  int_valued : bool;
  run : lo:int -> len:int -> vec;
}

val compile : Pb_relation.Schema.t -> Pb_store.Table.t -> Ast.expr -> t option

val as_num : vec -> float array * Bytes.t option
val as_b3 : vec -> Bytes.t
val as_sv : vec -> string array * int array

val null_at : Bytes.t option -> int -> bool
