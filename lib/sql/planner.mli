(** FROM/WHERE planning: predicate pushdown, index scans, hash joins.

    The planner decomposes the WHERE clause into conjuncts and

    + pushes single-table conjuncts below the join, using a declared
      {!Index} for sargable shapes ([col cmp constant],
      [col BETWEEN a AND b]);
    + joins relations left-to-right in FROM order, choosing a hash join
      whenever unconsumed equi-join conjuncts ([a.x = b.y]) link the next
      table to the accumulated prefix, and falling back to a nested-loop
      product otherwise;
    + applies every remaining conjunct as soon as its columns resolve in
      the accumulated schema, and the rest (e.g. uncorrelated-subquery
      predicates) at the end.

    Joining in FROM order keeps the output schema identical to the naive
    [product]-then-[filter] evaluation, so the two paths are
    interchangeable — the test suite checks them against each other, and
    the benchmark harness measures the difference (ablation A1).

    Note the §4.2 claim survives planning: the k-replacement
    neighbourhood query joins on {e inequalities}, which no index or hash
    join accelerates, so its cost still tracks the 2k-way product. *)

type eval_fn =
  Pb_relation.Schema.t -> Pb_relation.Value.t array -> Ast.expr -> Pb_relation.Value.t
(** Row-level expression evaluation, supplied by the executor (closes
    over the database for subquery predicates). *)

type compile_fn =
  Pb_relation.Schema.t -> Ast.expr -> Pb_relation.Value.t array -> Pb_relation.Value.t
(** Expression compilation (see {!Compile}): called once per (schema,
    expression) to obtain the per-row closure used inside scan filters,
    hash-join key evaluation and post-join filters. *)

type stats = {
  pushed_predicates : int;  (** conjuncts applied below the top join *)
  index_scans : int;
  hash_joins : int;
  nested_products : int;
}

val execute :
  ?compile:compile_fn ->
  ?gov:Pb_util.Gov.t ->
  Database.t ->
  eval:eval_fn ->
  from:Ast.table_ref list ->
  where:Ast.expr option ->
  Pb_relation.Relation.t * stats
(** Fully filtered join result, schema in FROM order with each table's
    columns qualified by its alias (or table name). Raises
    {!Executor.Eval_error}-style [Failure]s through the evaluation
    callback on unknown tables/columns.

    [gov] is polled (sampled, every 256 rows) inside every operator loop
    — scan filters, hash-join build/probe, nested-loop products, final
    filters — and a stop raises {!Pb_util.Gov.Interrupted}: a runaway
    cross join is abandoned within a few hundred rows of the deadline
    rather than materialized to completion. Products also meter their
    output through [pb_sql_product_rows_total] and the token's
    [Sql_rows] budget. *)

val naive :
  Database.t ->
  eval:eval_fn ->
  from:Ast.table_ref list ->
  where:Ast.expr option ->
  Pb_relation.Relation.t
(** Reference evaluation — Cartesian product then filter — used by tests
    and the planner-ablation benchmark. *)
