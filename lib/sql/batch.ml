open Ast
module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Column = Pb_store.Column
module Table = Pb_store.Table

(* Batch-at-a-time expression kernels over columnar chunks.

   A kernel evaluates one expression over [len] consecutive distinct rows
   of a columnar table and returns a vector. Compilation is total or
   nothing: any node the vectorized forms cannot reproduce bit-identically
   (subqueries, CASE, mixed-kind comparisons, boxed columns, ...) makes
   [compile] return [None] and the caller falls back to the row
   interpreter — so a kernel that *does* compile never raises at runtime,
   which also makes conjunct evaluation order immaterial.

   Numerics are computed in 64-bit floats. Int arithmetic and comparisons
   are exact below 2^53 (the row engine's own cross-type comparisons
   already go through the float image); a static [int_valued] flag tracks
   whether the row engine would have produced [Value.Int]s, so aggregate
   result types match the interpreter's dynamic all-int test.

   Each kernel node owns its output buffer (get-or-grow, sized to the
   largest chunk seen) and overwrites it on every run, so the hot loops
   allocate nothing. A chunk's vector is therefore only valid until the
   node runs again — fine for the chunk-at-a-time drivers, which consume
   each child's output before advancing. Null positions of a [Num] vector
   may hold stale values; every consumer masks through the side map. *)

let chunk = 1024

(* Hot loops use unsafe array/Bytes/Bigarray accesses: every index is
   [< len], every buffer is [>= len] long (grow_* and the chunk drivers
   guarantee it), and Kleene bytes are always 0/1/2 — the bounds checks
   they elide are predictable but not free at one per access. *)
module BA1 = Bigarray.Array1

type vec =
  | Num of float array * Bytes.t option  (* values; side-map byte 1 = NULL *)
  | B3 of Bytes.t  (* three-valued logic: 0 false / 1 true / 2 null *)
  | Sv of string array * int array  (* dictionary, codes; code -1 = NULL *)

type kind = K_num | K_str | K_bool

type t = {
  kind : kind;
  int_valued : bool;  (* non-null results are Value.Int in the row engine *)
  run : lo:int -> len:int -> vec;
}

let as_num = function Num (v, n) -> (v, n) | _ -> assert false
let as_b3 = function B3 b -> b | _ -> assert false
let as_sv = function Sv (d, c) -> (d, c) | _ -> assert false

(* Per-node scratch buffers: reuse if big enough, else grow. The first
   chunk is the largest, so in practice these allocate once. *)
let grow_f buf len =
  if Array.length !buf >= len then !buf
  else begin
    buf := Array.make len 0.0;
    !buf
  end

let grow_i buf len =
  if Array.length !buf >= len then !buf
  else begin
    buf := Array.make len 0;
    !buf
  end

let grow_b buf len =
  if Bytes.length !buf >= len then !buf
  else begin
    buf := Bytes.make len '\000';
    !buf
  end

(* Union two null maps into [buf] (only when both sides have nulls). *)
let union_nulls buf len a b =
  match (a, b) with
  | None, None -> None
  | Some x, None -> Some x
  | None, Some y -> Some y
  | Some x, Some y ->
      let out = grow_b buf len in
      for i = 0 to len - 1 do
        Bytes.set out i
          (if Bytes.get x i = '\001' || Bytes.get y i = '\001' then '\001'
           else '\000')
      done;
      Some out

let null_at nulls i = Column.is_null nulls i



(* ---- leaf kernels ---------------------------------------------------- *)

let const_num f ~int_valued =
  let buf = ref [||] in
  Some
    {
      kind = K_num;
      int_valued;
      run =
        (fun ~lo:_ ~len ->
          (* Array.make fills with [f]; nothing ever mutates a child's
             output, so the prefilled buffer can be handed out as is. *)
          if Array.length !buf < len then buf := Array.make len f;
          Num (!buf, None));
    }

let const_bool b =
  let byte = if b then '\001' else '\000' in
  let buf = ref Bytes.empty in
  Some
    {
      kind = K_bool;
      int_valued = false;
      run =
        (fun ~lo:_ ~len ->
          if Bytes.length !buf < len then buf := Bytes.make len byte;
          B3 !buf);
    }

let const_str s =
  let buf = ref [||] in
  Some
    {
      kind = K_str;
      int_valued = false;
      run = (fun ~lo:_ ~len -> Sv ([| s |], grow_i buf len));
    }

let col_kernel (tbl : Table.t) i =
  match Table.col tbl i with
  | Column.Ints { data; nulls } ->
      let out = ref [||] and nbuf = ref Bytes.empty in
      Some
        {
          kind = K_num;
          int_valued = true;
          run =
            (fun ~lo ~len ->
              let o = grow_f out len in
              for k = 0 to len - 1 do
                Array.unsafe_set o k (float_of_int (BA1.unsafe_get data (lo + k)))
              done;
              let n =
                match nulls with
                | None -> None
                | Some b ->
                    let s = grow_b nbuf len in
                    Bytes.blit b lo s 0 len;
                    Some s
              in
              Num (o, n));
        }
  | Column.Floats { data; nulls } ->
      let out = ref [||] and nbuf = ref Bytes.empty in
      Some
        {
          kind = K_num;
          int_valued = false;
          run =
            (fun ~lo ~len ->
              let o = grow_f out len in
              for k = 0 to len - 1 do
                Array.unsafe_set o k (BA1.unsafe_get data (lo + k))
              done;
              let n =
                match nulls with
                | None -> None
                | Some b ->
                    let s = grow_b nbuf len in
                    Bytes.blit b lo s 0 len;
                    Some s
              in
              Num (o, n));
        }
  | Column.Strs { dict; codes; _ } ->
      let out = ref [||] in
      Some
        {
          kind = K_str;
          int_valued = false;
          run =
            (fun ~lo ~len ->
              let o = grow_i out len in
              Array.blit codes lo o 0 len;
              Sv (dict, o));
        }
  | Column.Bools { data; nulls } ->
      let out = ref Bytes.empty in
      let run =
        match nulls with
        | None ->
            fun ~lo ~len ->
              let o = grow_b out len in
              for k = 0 to len - 1 do
                Bytes.set o k
                  (if Bytes.get data (lo + k) = '\001' then '\001' else '\000')
              done;
              B3 o
        | Some nb ->
            fun ~lo ~len ->
              let o = grow_b out len in
              for k = 0 to len - 1 do
                Bytes.set o k
                  (if Bytes.get nb (lo + k) = '\001' then '\002'
                   else if Bytes.get data (lo + k) = '\001' then '\001'
                   else '\000')
              done;
              B3 o
      in
      Some { kind = K_bool; int_valued = false; run }
  | Column.Mixed _ -> None

(* ---- three-valued logic ---------------------------------------------- *)

(* Writers fill every byte of [out], so no clearing is needed. The Kleene
   connectives are branchless table lookups indexed by [x * 3 + y] (bytes
   are always 0 false / 1 true / 2 null) — short-circuit forms would
   branch on data-dependent truth values, which mispredicts on ~random
   rows. *)

let not_table = "\001\000\002"
let and_table = "\000\000\000\000\001\002\000\002\002"
let or_table = "\000\001\002\001\001\001\002\001\002"

let kleene_not out a len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set out i
      (String.unsafe_get not_table (Char.code (Bytes.unsafe_get a i)))
  done

let kleene_and out a b len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set out i
      (String.unsafe_get and_table
         ((Char.code (Bytes.unsafe_get a i) * 3)
         + Char.code (Bytes.unsafe_get b i)))
  done

let kleene_or out a b len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set out i
      (String.unsafe_get or_table
         ((Char.code (Bytes.unsafe_get a i) * 3)
         + Char.code (Bytes.unsafe_get b i)))
  done

let cmp_test op =
  match op with
  | Eq -> fun c -> c = 0
  | Neq -> fun c -> c <> 0
  | Lt -> fun c -> c < 0
  | Le -> fun c -> c <= 0
  | Gt -> fun c -> c > 0
  | Ge -> fun c -> c >= 0
  | Add | Sub | Mul | Div | And | Or -> assert false

let mirror_cmp = function
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | o -> o

(* Memoize a per-dictionary computation by physical equality of the
   dictionary array (a column's dict never changes; kernels producing
   fresh dicts produce them once per node). *)
let dict_memo f =
  let memo = ref None in
  fun dict ->
    match !memo with
    | Some (d, m) when d == dict -> m
    | _ ->
        let m = f dict in
        memo := Some (dict, m);
        m

(* ---- compilation ----------------------------------------------------- *)

let rec compile schema (tbl : Table.t) e : t option =
  let c e = compile schema tbl e in
  match e with
  | Lit (Value.Int i) -> const_num (float_of_int i) ~int_valued:true
  | Lit (Value.Float f) -> const_num f ~int_valued:false
  | Lit (Value.Bool b) -> const_bool b
  | Lit (Value.Str s) -> const_str s
  | Lit Value.Null -> None
  | Col name -> (
      match Schema.index_of schema name with
      | Some i -> col_kernel tbl i
      | None -> None)
  | Unary_minus e -> (
      match c e with
      | Some k when k.kind = K_num ->
          let buf = ref [||] in
          Some
            {
              k with
              run =
                (fun ~lo ~len ->
                  let v, n = as_num (k.run ~lo ~len) in
                  let out = grow_f buf len in
                  for i = 0 to len - 1 do
                    out.(i) <- -.v.(i)
                  done;
                  Num (out, n));
            }
      | _ -> None)
  | Not e -> (
      match c e with
      | Some k when k.kind = K_bool ->
          let buf = ref Bytes.empty in
          Some
            {
              k with
              run =
                (fun ~lo ~len ->
                  let b = as_b3 (k.run ~lo ~len) in
                  let out = grow_b buf len in
                  kleene_not out b len;
                  B3 out);
            }
      | _ -> None)
  | Binop ((Add | Sub | Mul) as op, a, b) -> (
      match (c a, c b) with
      | Some ka, Some kb when ka.kind = K_num && kb.kind = K_num ->
          (* One loop per operator: calling [(+.)] through a closure would
             box both floats on every row. *)
          let run_op =
            match op with
            | Add ->
                fun va vb out len ->
                  for i = 0 to len - 1 do
                    Array.unsafe_set out i
                      (Array.unsafe_get va i +. Array.unsafe_get vb i)
                  done
            | Sub ->
                fun va vb out len ->
                  for i = 0 to len - 1 do
                    Array.unsafe_set out i
                      (Array.unsafe_get va i -. Array.unsafe_get vb i)
                  done
            | Mul ->
                fun va vb out len ->
                  for i = 0 to len - 1 do
                    Array.unsafe_set out i
                      (Array.unsafe_get va i *. Array.unsafe_get vb i)
                  done
            | _ -> assert false
          in
          let buf = ref [||] and nbuf = ref Bytes.empty in
          Some
            {
              kind = K_num;
              int_valued = ka.int_valued && kb.int_valued;
              run =
                (fun ~lo ~len ->
                  let va, na = as_num (ka.run ~lo ~len) in
                  let vb, nb = as_num (kb.run ~lo ~len) in
                  let out = grow_f buf len in
                  run_op va vb out len;
                  Num (out, union_nulls nbuf len na nb));
            }
      | _ -> None)
  | Binop (Div, a, (Lit (Value.Int _ | Value.Float _) as lit)) -> (
      (* Division by a non-zero constant can neither trap nor produce new
         NULLs, so the null map passes through untouched and the loop is a
         bare float division. *)
      let d =
        match lit with
        | Lit (Value.Int i) -> float_of_int i
        | Lit (Value.Float f) -> f
        | _ -> assert false
      in
      if d = 0.0 then compile_div schema tbl a lit
      else
        match c a with
        | Some ka when ka.kind = K_num ->
            let buf = ref [||] in
            Some
              {
                kind = K_num;
                int_valued = false;
                run =
                  (fun ~lo ~len ->
                    let va, na = as_num (ka.run ~lo ~len) in
                    let out = grow_f buf len in
                    for i = 0 to len - 1 do
                      Array.unsafe_set out i (Array.unsafe_get va i /. d)
                    done;
                    Num (out, na));
              }
        | _ -> None)
  | Binop (Div, a, b) -> compile_div schema tbl a b
  | Binop (And, a, b) -> (
      match (c a, c b) with
      | Some ka, Some kb when ka.kind = K_bool && kb.kind = K_bool ->
          let buf = ref Bytes.empty in
          Some
            {
              kind = K_bool;
              int_valued = false;
              run =
                (fun ~lo ~len ->
                  let ba = as_b3 (ka.run ~lo ~len) in
                  let bb = as_b3 (kb.run ~lo ~len) in
                  let out = grow_b buf len in
                  kleene_and out ba bb len;
                  B3 out);
            }
      | _ -> None)
  | Binop (Or, a, b) -> (
      match (c a, c b) with
      | Some ka, Some kb when ka.kind = K_bool && kb.kind = K_bool ->
          let buf = ref Bytes.empty in
          Some
            {
              kind = K_bool;
              int_valued = false;
              run =
                (fun ~lo ~len ->
                  let ba = as_b3 (ka.run ~lo ~len) in
                  let bb = as_b3 (kb.run ~lo ~len) in
                  let out = grow_b buf len in
                  kleene_or out ba bb len;
                  B3 out);
            }
      | _ -> None)
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
      compile_cmp schema tbl op a b
  | Between (e, lo_e, hi_e) -> (
      match (c e, c lo_e, c hi_e) with
      | Some ke, Some klo, Some khi
        when ke.kind = K_num && klo.kind = K_num && khi.kind = K_num ->
          let buf = ref Bytes.empty in
          Some
            {
              kind = K_bool;
              int_valued = false;
              run =
                (fun ~lo ~len ->
                  let v, nv = as_num (ke.run ~lo ~len) in
                  let l, nl = as_num (klo.run ~lo ~len) in
                  let h, nh = as_num (khi.run ~lo ~len) in
                  let out = grow_b buf len in
                  (if nv = None && nl = None && nh = None then
                     for i = 0 to len - 1 do
                       (* Direct-float forms of Float.compare >= 0 / <= 0
                          (NaN below everything, NaN = NaN). *)
                       let x = Array.unsafe_get v i in
                       let lo_v = Array.unsafe_get l i
                       and hi_v = Array.unsafe_get h i in
                       let lower = x >= lo_v || lo_v <> lo_v in
                       let upper = x <= hi_v || x <> x in
                       Bytes.unsafe_set out i
                         (if lower && upper then '\001' else '\000')
                     done
                   else
                     for i = 0 to len - 1 do
                       let lower =
                         if null_at nv i || null_at nl i then '\002'
                         else if v.(i) >= l.(i) || l.(i) <> l.(i) then '\001'
                         else '\000'
                       in
                       let upper =
                         if null_at nv i || null_at nh i then '\002'
                         else if v.(i) <= h.(i) || v.(i) <> v.(i) then '\001'
                         else '\000'
                       in
                       Bytes.set out i
                         (if lower = '\000' || upper = '\000' then '\000'
                          else if lower = '\001' && upper = '\001' then '\001'
                          else '\002')
                     done);
                  B3 out);
            }
      | _ -> None)
  | In_list (e, items, neg) -> compile_in_list schema tbl e items neg
  | Is_null (e, neg) -> (
      match c e with
      | Some k ->
          let t_byte = if neg then '\000' else '\001' in
          let f_byte = if neg then '\001' else '\000' in
          let buf = ref Bytes.empty in
          Some
            {
              kind = K_bool;
              int_valued = false;
              run =
                (fun ~lo ~len ->
                  let out = grow_b buf len in
                  Bytes.fill out 0 len f_byte;
                  (match k.run ~lo ~len with
                  | Num (_, n) ->
                      for i = 0 to len - 1 do
                        if null_at n i then Bytes.set out i t_byte
                      done
                  | B3 b ->
                      for i = 0 to len - 1 do
                        if Bytes.get b i = '\002' then Bytes.set out i t_byte
                      done
                  | Sv (_, codes) ->
                      for i = 0 to len - 1 do
                        if codes.(i) < 0 then Bytes.set out i t_byte
                      done);
                  B3 out);
            }
      | None -> None)
  | Like (e, pattern, neg) -> compile_like_kernel schema tbl e pattern neg
  | Func (name, args) -> compile_func schema tbl name args
  | Agg _ | In_query _ | Exists _ | Case _ -> None

and compile_div schema tbl a b =
  match (compile schema tbl a, compile schema tbl b) with
  | Some ka, Some kb when ka.kind = K_num && kb.kind = K_num ->
      let buf = ref [||] and nbuf = ref Bytes.empty in
      Some
        {
          kind = K_num;
          int_valued = false;
          run =
            (fun ~lo ~len ->
              let va, na = as_num (ka.run ~lo ~len) in
              let vb, nb = as_num (kb.run ~lo ~len) in
              let out = grow_f buf len in
              (* Division by (float image) zero is NULL, like Value.div.
                 Input null maps are folded in up front (per-row Option
                 tests are a call per row); if nothing ends up null the
                 map is dropped so downstream kernels skip stamping. *)
              let nulls = grow_b nbuf len in
              Bytes.fill nulls 0 len '\000';
              let any = ref false in
              let fold = function
                | None -> ()
                | Some b ->
                    for i = 0 to len - 1 do
                      if Bytes.get b i = '\001' then begin
                        Bytes.set nulls i '\001';
                        any := true
                      end
                    done
              in
              fold na;
              fold nb;
              for i = 0 to len - 1 do
                if vb.(i) = 0.0 then begin
                  Bytes.set nulls i '\001';
                  any := true
                end
                else out.(i) <- va.(i) /. vb.(i)
              done;
              Num (out, if !any then Some nulls else None));
        }
  | _ -> None

and compile_cmp schema tbl op a b =
  let test = cmp_test op in
  (* String column against a string literal: precompute the verdict per
     dictionary entry, then answer each row by code lookup. *)
  let dict_cmp col_name lit ~flipped =
    match Schema.index_of schema col_name with
    | None -> None
    | Some i -> (
        match Table.col tbl i with
        | Column.Strs { dict; codes; _ } ->
            let hits =
              Array.map
                (fun entry ->
                  let cmp =
                    if flipped then String.compare lit entry
                    else String.compare entry lit
                  in
                  test cmp)
                dict
            in
            let buf = ref Bytes.empty in
            Some
              {
                kind = K_bool;
                int_valued = false;
                run =
                  (fun ~lo ~len ->
                    let out = grow_b buf len in
                    for k = 0 to len - 1 do
                      let code = codes.(lo + k) in
                      Bytes.set out k
                        (if code < 0 then '\002'
                         else if hits.(code) then '\001'
                         else '\000')
                    done;
                    B3 out);
              }
        | _ -> None)
  in
  let special =
    match (a, b) with
    | Col c, Lit (Value.Str s) -> dict_cmp c s ~flipped:false
    | Lit (Value.Str s), Col c -> dict_cmp c s ~flipped:true
    | _ -> None
  in
  match special with
  | Some k -> Some k
  | None -> (
      (* Numeric comparison against a literal: canonicalize [lit op e] to
         [e (mirrored op) lit] (Float.compare's total order is
         antisymmetric) and fuse the scalar into the loop. *)
      let num_lit = function
        | Lit (Value.Int i) -> Some (float_of_int i)
        | Lit (Value.Float f) -> Some f
        | _ -> None
      in
      match (num_lit a, num_lit b) with
      | _, Some y when y = y -> compile_cmp_scalar schema tbl op a y
      | Some y, None when y = y ->
          compile_cmp_scalar schema tbl (mirror_cmp op) b y
      | _ -> compile_cmp_generic schema tbl op a b)

and compile_cmp_scalar schema tbl op e y =
  (* [e op y] with a non-NaN numeric literal [y]: the scalar rides in a
     register instead of a constant vector. With [y = y] known,
     Float.compare's forms collapse to [x op y] plus an [x <> x] term for
     Lt/Le/Neq (NaN orders below any literal, so it satisfies exactly
     those). When [e] is a bare Ints/Floats column the loop reads the
     Bigarray directly, skipping the chunk copy a column kernel would
     make — and int data cannot hold NaN, so those forms drop the NaN
     term as well. *)
  let stamp_col_nulls out nulls lo len =
    match nulls with
    | None -> ()
    | Some b ->
        for k = 0 to len - 1 do
          if Bytes.get b (lo + k) = '\001' then Bytes.set out k '\002'
        done
  in
  let fused =
    match e with
    | Col name -> (
        match Schema.index_of schema name with
        | None -> None
        | Some i -> (
            match Table.col tbl i with
            | Column.Ints { data; nulls } ->
                let run_col =
                  match op with
                  | Eq ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          if float_of_int (BA1.unsafe_get data (lo + k)) = y
                          then Bytes.unsafe_set out k '\001'
                        done
                  | Neq ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          if float_of_int (BA1.unsafe_get data (lo + k)) <> y
                          then Bytes.unsafe_set out k '\001'
                        done
                  | Lt ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          if float_of_int (BA1.unsafe_get data (lo + k)) < y
                          then Bytes.unsafe_set out k '\001'
                        done
                  | Le ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          if float_of_int (BA1.unsafe_get data (lo + k)) <= y
                          then Bytes.unsafe_set out k '\001'
                        done
                  | Gt ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          if float_of_int (BA1.unsafe_get data (lo + k)) > y
                          then Bytes.unsafe_set out k '\001'
                        done
                  | Ge ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          if float_of_int (BA1.unsafe_get data (lo + k)) >= y
                          then Bytes.unsafe_set out k '\001'
                        done
                  | Add | Sub | Mul | Div | And | Or -> assert false
                in
                Some (run_col, nulls)
            | Column.Floats { data; nulls } ->
                let run_col =
                  match op with
                  | Eq ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          if BA1.unsafe_get data (lo + k) = y then
                            Bytes.unsafe_set out k '\001'
                        done
                  | Neq ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          if BA1.unsafe_get data (lo + k) <> y then
                            Bytes.unsafe_set out k '\001'
                        done
                  | Lt ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          let x = BA1.unsafe_get data (lo + k) in
                          if x < y || x <> x then Bytes.unsafe_set out k '\001'
                        done
                  | Le ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          let x = BA1.unsafe_get data (lo + k) in
                          if x <= y || x <> x then
                            Bytes.unsafe_set out k '\001'
                        done
                  | Gt ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          if BA1.unsafe_get data (lo + k) > y then
                            Bytes.unsafe_set out k '\001'
                        done
                  | Ge ->
                      fun out ~lo ~len ->
                        for k = 0 to len - 1 do
                          if BA1.unsafe_get data (lo + k) >= y then
                            Bytes.unsafe_set out k '\001'
                        done
                  | Add | Sub | Mul | Div | And | Or -> assert false
                in
                Some (run_col, nulls)
            | _ -> None))
    | _ -> None
  in
  match fused with
  | Some (run_col, nulls) ->
      let buf = ref Bytes.empty in
      Some
        {
          kind = K_bool;
          int_valued = false;
          run =
            (fun ~lo ~len ->
              let out = grow_b buf len in
              Bytes.fill out 0 len '\000';
              run_col out ~lo ~len;
              stamp_col_nulls out nulls lo len;
              B3 out);
        }
  | None -> (
      match compile schema tbl e with
      | Some k when k.kind = K_num ->
          let run_scalar =
            match op with
            | Eq ->
                fun v out len ->
                  for i = 0 to len - 1 do
                    if Array.unsafe_get v i = y then
                      Bytes.unsafe_set out i '\001'
                  done
            | Neq ->
                fun v out len ->
                  for i = 0 to len - 1 do
                    if Array.unsafe_get v i <> y then
                      Bytes.unsafe_set out i '\001'
                  done
            | Lt ->
                fun v out len ->
                  for i = 0 to len - 1 do
                    let x = Array.unsafe_get v i in
                    if x < y || x <> x then Bytes.unsafe_set out i '\001'
                  done
            | Le ->
                fun v out len ->
                  for i = 0 to len - 1 do
                    let x = Array.unsafe_get v i in
                    if x <= y || x <> x then Bytes.unsafe_set out i '\001'
                  done
            | Gt ->
                fun v out len ->
                  for i = 0 to len - 1 do
                    if Array.unsafe_get v i > y then
                      Bytes.unsafe_set out i '\001'
                  done
            | Ge ->
                fun v out len ->
                  for i = 0 to len - 1 do
                    if Array.unsafe_get v i >= y then
                      Bytes.unsafe_set out i '\001'
                  done
            | Add | Sub | Mul | Div | And | Or -> assert false
          in
          let buf = ref Bytes.empty in
          Some
            {
              kind = K_bool;
              int_valued = false;
              run =
                (fun ~lo ~len ->
                  let v, n = as_num (k.run ~lo ~len) in
                  let out = grow_b buf len in
                  Bytes.fill out 0 len '\000';
                  run_scalar v out len;
                  (match n with
                  | Some b ->
                      for i = 0 to len - 1 do
                        if Bytes.get b i = '\001' then Bytes.set out i '\002'
                      done
                  | None -> ());
                  B3 out);
            }
      | _ -> None)

and compile_cmp_generic schema tbl op a b =
  let test = cmp_test op in
  (
      match (compile schema tbl a, compile schema tbl b) with
      | Some ka, Some kb when ka.kind = K_num && kb.kind = K_num ->
          (* Open-coded per operator: a [test (Float.compare ...)] closure
             chain costs a call (and a C call) per row. Each branch
             reproduces Float.compare's total order — NaN below
             everything, NaN = NaN, -0. = 0. — in direct float ops.
             (Branchy on purpose: materializing the comparison bits
             branchlessly measured ~2x slower here than the predictable
             fill-then-sparse-set form.) *)
          let run_cmp =
            match op with
            | Eq ->
                fun va vb out len ->
                  for i = 0 to len - 1 do
                    let x = Array.unsafe_get va i
                    and y = Array.unsafe_get vb i in
                    if x = y || (x <> x && y <> y) then
                      Bytes.unsafe_set out i '\001'
                  done
            | Neq ->
                fun va vb out len ->
                  for i = 0 to len - 1 do
                    let x = Array.unsafe_get va i
                    and y = Array.unsafe_get vb i in
                    if not (x = y || (x <> x && y <> y)) then
                      Bytes.unsafe_set out i '\001'
                  done
            | Lt ->
                fun va vb out len ->
                  for i = 0 to len - 1 do
                    let x = Array.unsafe_get va i
                    and y = Array.unsafe_get vb i in
                    if x < y || (x <> x && y = y) then
                      Bytes.unsafe_set out i '\001'
                  done
            | Le ->
                fun va vb out len ->
                  for i = 0 to len - 1 do
                    let x = Array.unsafe_get va i
                    and y = Array.unsafe_get vb i in
                    if x <= y || x <> x then Bytes.unsafe_set out i '\001'
                  done
            | Gt ->
                fun va vb out len ->
                  for i = 0 to len - 1 do
                    let x = Array.unsafe_get va i
                    and y = Array.unsafe_get vb i in
                    if x > y || (y <> y && x = x) then
                      Bytes.unsafe_set out i '\001'
                  done
            | Ge ->
                fun va vb out len ->
                  for i = 0 to len - 1 do
                    let x = Array.unsafe_get va i
                    and y = Array.unsafe_get vb i in
                    if x >= y || y <> y then Bytes.unsafe_set out i '\001'
                  done
            | Add | Sub | Mul | Div | And | Or -> assert false
          in
          let buf = ref Bytes.empty in
          Some
            {
              kind = K_bool;
              int_valued = false;
              run =
                (fun ~lo ~len ->
                  let va, na = as_num (ka.run ~lo ~len) in
                  let vb, nb = as_num (kb.run ~lo ~len) in
                  let out = grow_b buf len in
                  Bytes.fill out 0 len '\000';
                  run_cmp va vb out len;
                  (* Null positions hold stale values; stamp them last. *)
                  (match na with
                  | Some b ->
                      for i = 0 to len - 1 do
                        if Bytes.get b i = '\001' then Bytes.set out i '\002'
                      done
                  | None -> ());
                  (match nb with
                  | Some b ->
                      for i = 0 to len - 1 do
                        if Bytes.get b i = '\001' then Bytes.set out i '\002'
                      done
                  | None -> ());
                  B3 out);
            }
      | Some ka, Some kb when ka.kind = K_str && kb.kind = K_str ->
          let buf = ref Bytes.empty in
          Some
            {
              kind = K_bool;
              int_valued = false;
              run =
                (fun ~lo ~len ->
                  let da, ca = as_sv (ka.run ~lo ~len) in
                  let db, cb = as_sv (kb.run ~lo ~len) in
                  let out = grow_b buf len in
                  for i = 0 to len - 1 do
                    Bytes.set out i
                      (if ca.(i) < 0 || cb.(i) < 0 then '\002'
                       else if
                         test (String.compare da.(ca.(i)) db.(cb.(i)))
                       then '\001'
                       else '\000')
                  done;
                  B3 out);
            }
      | Some ka, Some kb when ka.kind = K_bool && kb.kind = K_bool ->
          let buf = ref Bytes.empty in
          Some
            {
              kind = K_bool;
              int_valued = false;
              run =
                (fun ~lo ~len ->
                  let ba = as_b3 (ka.run ~lo ~len) in
                  let bb = as_b3 (kb.run ~lo ~len) in
                  let out = grow_b buf len in
                  for i = 0 to len - 1 do
                    let x = Bytes.get ba i and y = Bytes.get bb i in
                    Bytes.set out i
                      (if x = '\002' || y = '\002' then '\002'
                       else if
                         test (Bool.compare (x = '\001') (y = '\001'))
                       then '\001'
                       else '\000')
                  done;
                  B3 out);
            }
      | _ -> None)

and compile_in_list schema tbl e items neg =
  (* Row semantics: hit = exists item with Value.equal v item — note that
     Value.equal Null Null holds, and the result is always Bool (never
     Null). Only literal item lists vectorize. *)
  let literals =
    List.fold_left
      (fun acc it ->
        match (acc, it) with
        | Some vs, Lit v -> Some (v :: vs)
        | _ -> None)
      (Some []) items
  in
  match (compile schema tbl e, literals) with
  | Some k, Some vs when k.kind = K_num ->
      let has_null = List.exists (fun v -> v = Value.Null) vs in
      let floats =
        List.filter_map
          (function
            | Value.Int i -> Some (float_of_int i)
            | Value.Float f -> Some f
            | _ -> None)
          vs
      in
      let member f = List.exists (fun x -> Float.compare x f = 0) floats in
      let t_byte = if neg then '\000' else '\001' in
      let f_byte = if neg then '\001' else '\000' in
      let buf = ref Bytes.empty in
      Some
        {
          kind = K_bool;
          int_valued = false;
          run =
            (fun ~lo ~len ->
              let v, n = as_num (k.run ~lo ~len) in
              let out = grow_b buf len in
              Bytes.fill out 0 len f_byte;
              for i = 0 to len - 1 do
                let hit =
                  if null_at n i then has_null else member v.(i)
                in
                if hit then Bytes.set out i t_byte
              done;
              B3 out);
        }
  | Some k, Some vs when k.kind = K_str ->
      let has_null = List.exists (fun v -> v = Value.Null) vs in
      let set = Hashtbl.create 8 in
      List.iter
        (function Value.Str s -> Hashtbl.replace set s () | _ -> ())
        vs;
      let t_byte = if neg then '\000' else '\001' in
      let f_byte = if neg then '\001' else '\000' in
      let buf = ref Bytes.empty in
      Some
        {
          kind = K_bool;
          int_valued = false;
          run =
            (fun ~lo ~len ->
              let dict, codes = as_sv (k.run ~lo ~len) in
              let out = grow_b buf len in
              Bytes.fill out 0 len f_byte;
              for i = 0 to len - 1 do
                let hit =
                  if codes.(i) < 0 then has_null
                  else Hashtbl.mem set dict.(codes.(i))
                in
                if hit then Bytes.set out i t_byte
              done;
              B3 out);
        }
  | _ -> None

and compile_like_kernel schema tbl e pattern neg =
  let toks = Compile.compile_like pattern in
  let matcher = Compile.like_match_compiled toks in
  let b3_of_hits out hits codes len lo =
    for k = 0 to len - 1 do
      let code = codes.(lo + k) in
      Bytes.set out k
        (if code < 0 then '\002'
         else if (if neg then not hits.(code) else hits.(code)) then '\001'
         else '\000')
    done
  in
  match e with
  | Col name -> (
      (* Direct column: match each dictionary entry once (memoized on the
         column, so repeated queries pay O(1) per row). *)
      match Schema.index_of schema name with
      | None -> None
      | Some i -> (
          match Table.col tbl i with
          | Column.Strs { codes; _ } as col ->
              let buf = ref Bytes.empty in
              Some
                {
                  kind = K_bool;
                  int_valued = false;
                  run =
                    (fun ~lo ~len ->
                      let hits =
                        Column.like_dict col ~key:pattern (fun dict ->
                            Array.map matcher dict)
                      in
                      let out = grow_b buf len in
                      b3_of_hits out hits codes len lo;
                      B3 out);
                }
          | _ -> None))
  | _ -> (
      match compile schema tbl e with
      | Some k when k.kind = K_str ->
          let buf = ref Bytes.empty in
          let hits_of = dict_memo (fun dict -> Array.map matcher dict) in
          Some
            {
              kind = K_bool;
              int_valued = false;
              run =
                (fun ~lo ~len ->
                  let dict, codes = as_sv (k.run ~lo ~len) in
                  let hits = hits_of dict in
                  let out = grow_b buf len in
                  b3_of_hits out hits codes len 0;
                  B3 out);
            }
      | _ -> None)

and compile_func schema tbl name args =
  let lname = String.lowercase_ascii name in
  let unary_num f ~int_valued:iv =
    match args with
    | [ a ] -> (
        match compile schema tbl a with
        | Some k when k.kind = K_num ->
            let buf = ref [||] in
            Some
              {
                kind = K_num;
                int_valued = iv k.int_valued;
                run =
                  (fun ~lo ~len ->
                    let v, n = as_num (k.run ~lo ~len) in
                    let out = grow_f buf len in
                    for i = 0 to len - 1 do
                      out.(i) <- f v.(i)
                    done;
                    Num (out, n));
              }
        | _ -> None)
    | _ -> None
  in
  match lname with
  | "abs" -> (
      (* Open-coded: Float.abs through a closure boxes per row. *)
      match args with
      | [ a ] -> (
          match compile schema tbl a with
          | Some k when k.kind = K_num ->
              let buf = ref [||] in
              Some
                {
                  kind = K_num;
                  int_valued = k.int_valued;
                  run =
                    (fun ~lo ~len ->
                      let v, n = as_num (k.run ~lo ~len) in
                      let out = grow_f buf len in
                      for i = 0 to len - 1 do
                        out.(i) <- Float.abs v.(i)
                      done;
                      Num (out, n));
                }
          | _ -> None)
      | _ -> None)
  (* round/floor/ceil return Value.Int in the row engine regardless of
     the argument type. *)
  | "round" -> unary_num Float.round ~int_valued:(fun _ -> true)
  | "floor" -> unary_num Float.floor ~int_valued:(fun _ -> true)
  | "ceil" -> unary_num Float.ceil ~int_valued:(fun _ -> true)
  | "sqrt" -> (
      match args with
      | [ a ] -> (
          match compile schema tbl a with
          | Some k when k.kind = K_num ->
              let buf = ref [||] and nbuf = ref Bytes.empty in
              Some
                {
                  kind = K_num;
                  int_valued = false;
                  run =
                    (fun ~lo ~len ->
                      let v, n = as_num (k.run ~lo ~len) in
                      let out = grow_f buf len in
                      (* sqrt of a negative is NULL, like the row engine. *)
                      let nulls = grow_b nbuf len in
                      Bytes.fill nulls 0 len '\000';
                      for i = 0 to len - 1 do
                        if null_at n i || v.(i) < 0.0 then
                          Bytes.set nulls i '\001'
                        else out.(i) <- sqrt v.(i)
                      done;
                      Num (out, Some nulls));
                }
          | _ -> None)
      | _ -> None)
  | "length" -> (
      match args with
      | [ a ] -> (
          match compile schema tbl a with
          | Some k when k.kind = K_str ->
              let buf = ref [||] and nbuf = ref Bytes.empty in
              Some
                {
                  kind = K_num;
                  int_valued = true;
                  run =
                    (fun ~lo ~len ->
                      let dict, codes = as_sv (k.run ~lo ~len) in
                      let out = grow_f buf len in
                      let nulls = grow_b nbuf len in
                      Bytes.fill nulls 0 len '\000';
                      for i = 0 to len - 1 do
                        if codes.(i) < 0 then Bytes.set nulls i '\001'
                        else
                          out.(i) <-
                            float_of_int (String.length dict.(codes.(i)))
                      done;
                      Num (out, Some nulls));
                }
          | _ -> None)
      | _ -> None)
  | "lower" | "upper" -> (
      let f =
        if lname = "lower" then String.lowercase_ascii
        else String.uppercase_ascii
      in
      match args with
      | [ a ] -> (
          match compile schema tbl a with
          | Some k when k.kind = K_str ->
              (* The mapped dictionary is per-node-constant for column
                 inputs; memoized by physical equality of the dict. *)
              let mapped = dict_memo (fun dict -> Array.map f dict) in
              Some
                {
                  kind = K_str;
                  int_valued = false;
                  run =
                    (fun ~lo ~len ->
                      let dict, codes = as_sv (k.run ~lo ~len) in
                      Sv (mapped dict, codes));
                }
          | _ -> None)
      | _ -> None)
  | _ -> None
