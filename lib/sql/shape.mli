(** Output-shape inference for SELECT blocks, shared by the row engine
    ({!Executor}) and the columnar fast path ({!Columnar}) so both derive
    the exact same result schema from a query. *)

val contains_agg : Ast.expr -> bool

val infer_item_name : int -> Ast.select_item -> string

val infer_expr_ty : Pb_relation.Schema.t -> Ast.expr -> Pb_relation.Value.ty

val expand_items :
  Pb_relation.Schema.t -> Ast.select_item list -> Ast.select_item list
(** Expand [*] into one aliased column item per schema column. *)

val grouped : Ast.select -> Ast.select_item list -> bool
(** Whether the query runs in grouped mode (GROUP BY present, or an
    aggregate in the expanded items or HAVING). *)

val output_schema :
  Pb_relation.Schema.t -> Ast.select_item list -> Pb_relation.Schema.t
(** Result schema for the expanded items: inferred names and types, with
    collision fallback to qualified names and positional suffixes. *)
