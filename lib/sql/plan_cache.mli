(** Prepared-plan LRU cache: normalized query text → (parsed statements,
    compiled-closure memo).

    Repeat traffic — the REPL's history replay, every [--loadgen]
    connection hammering the same workload — skips the lexer, parser and
    column resolution entirely on a hit: the cached {!Compile.Memo} hands
    the executor the same closures it built the first time.

    Entries are validated against {!Database.version}, the catalog's
    schema/DDL generation counter: a stale entry (table created/dropped,
    schema changed, index declared since prepare time) is silently dropped
    and re-prepared. Schema-preserving DML does not move the counter, so
    INSERT/DELETE/UPDATE keep the cache warm.

    One cache belongs to one database. The cache is mutex-guarded and the
    memo inside each entry is itself thread-safe, so a single cache may be
    shared by every server connection (the server does exactly that).

    Counters [pb_sql_plan_cache_hits_total] / [pb_sql_plan_cache_misses_total]
    are registered on the default metrics registry; the prepare step runs
    under a [sql.prepare] trace span (compilation itself under
    [sql.compile]). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 128 entries; least-recently-used entries are
    evicted beyond it. [~capacity:0] disables caching (every lookup
    parses) — the benchmark baseline. Negative capacities are rejected
    with [Invalid_argument]. *)

val normalize : string -> string
(** Cache key normalization: surrounding whitespace and trailing [;]
    stripped, nothing else — whitespace inside the text may be load-bearing
    (string literals), so ["SELECT 1"] and ["  SELECT 1; "] share an entry
    but ["SELECT  1"] does not. *)

val lookup :
  t ->
  Database.t ->
  parse:(string -> Ast.statement list) ->
  string ->
  Ast.statement list * Compile.Memo.t
(** The prepared form of a query text: cached when present and still
    valid, otherwise parsed via [parse], cached and returned. Parse errors
    propagate to the caller and are not cached. *)

val size : t -> int
val clear : t -> unit

val hits : unit -> int
val misses : unit -> int
(** Process-wide counter values (exposed for tests and the bench). *)
