open Ast
module Value = Pb_relation.Value
module Schema = Pb_relation.Schema

(* Output-shape inference for SELECT blocks — item expansion, result
   column naming/typing, grouped-mode detection. Factored out of
   [Executor] so the columnar fast path ([Columnar]) derives the exact
   same output schema as the row engine from the same query. *)

let rec contains_agg e =
  match e with
  | Agg _ -> true
  | Lit _ | Col _ -> false
  | Unary_minus e | Not e | Is_null (e, _) | Like (e, _, _) -> contains_agg e
  | Binop (_, a, b) -> contains_agg a || contains_agg b
  | Between (a, b, c) -> contains_agg a || contains_agg b || contains_agg c
  | In_list (e, es, _) -> contains_agg e || List.exists contains_agg es
  | In_query (e, _, _) -> contains_agg e
  | Exists _ -> false
  | Func (_, es) -> List.exists contains_agg es
  | Case (branches, default) ->
      List.exists (fun (c, e) -> contains_agg c || contains_agg e) branches
      || (match default with Some e -> contains_agg e | None -> false)

let infer_item_name i = function
  | Star_item -> Printf.sprintf "col%d" i
  | Expr_item (_, Some alias) -> alias
  | Expr_item (Col c, None) ->
      (* keep only the base name so result columns are addressable *)
      let c = String.lowercase_ascii c in
      (match String.rindex_opt c '.' with
      | Some k -> String.sub c (k + 1) (String.length c - k - 1)
      | None -> c)
  | Expr_item (Agg (Count_star, _), None) -> "count"
  | Expr_item (Agg (f, _), None) -> String.lowercase_ascii (agg_to_string f)
  | Expr_item (_, None) -> Printf.sprintf "col%d" i

let value_ty_fallback = function
  | Some ty -> ty
  | None -> Value.T_float

let rec infer_expr_ty schema e =
  (* Best-effort static type used to label result columns. *)
  match e with
  | Lit v -> value_ty_fallback (Value.ty_of v)
  | Col name -> (
      match Schema.column_ty schema name with
      | Some ty -> ty
      | None -> Value.T_str)
  | Unary_minus e -> infer_expr_ty schema e
  | Not _ | Is_null _ | Like _ | In_list _ | In_query _ | Exists _ ->
      Value.T_bool
  | Binop ((Add | Sub | Mul), a, b) -> (
      match (infer_expr_ty schema a, infer_expr_ty schema b) with
      | Value.T_int, Value.T_int -> Value.T_int
      | _ -> Value.T_float)
  | Binop (Div, _, _) -> Value.T_float
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge | And | Or), _, _) -> Value.T_bool
  | Between _ -> Value.T_bool
  | Agg ((Count_star | Count), _) -> Value.T_int
  | Agg (Avg, _) -> Value.T_float
  | Agg ((Sum | Min | Max), Some e) -> infer_expr_ty schema e
  | Agg ((Sum | Min | Max), None) -> Value.T_float
  | Func (name, _) -> (
      match String.lowercase_ascii name with
      | "length" | "round" | "floor" | "ceil" -> Value.T_int
      | "lower" | "upper" -> Value.T_str
      | _ -> Value.T_float)
  | Case (branches, default) -> (
      match (branches, default) with
      | (_, e) :: _, _ -> infer_expr_ty schema e
      | [], Some e -> infer_expr_ty schema e
      | [], None -> Value.T_str)

let expand_items schema items =
  List.concat_map
    (function
      | Star_item ->
          List.map (fun n -> Expr_item (Col n, Some n)) (Schema.names schema)
      | item -> [ item ])
    items

let grouped (q : select) items =
  q.group_by <> []
  || List.exists
       (function Expr_item (e, _) -> contains_agg e | Star_item -> false)
       items
  || (match q.having with Some e -> contains_agg e | None -> false)

let output_schema schema items =
  (* Base names can collide in self-joins (e1.id, e2.id); fall back to
     the qualified name, then to a positional suffix. *)
  let raw = List.mapi (fun i item -> (infer_item_name i item, item)) items in
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      Hashtbl.replace tally name
        (1 + Option.value (Hashtbl.find_opt tally name) ~default:0))
    raw;
  let named =
    List.map
      (fun (name, item) ->
        if Hashtbl.find tally name <= 1 then (name, item)
        else
          match item with
          | Expr_item (Col c, None) -> (String.lowercase_ascii c, item)
          | _ -> (name, item))
      raw
  in
  let seen = Hashtbl.create 16 in
  let uniquify name =
    match Hashtbl.find_opt seen name with
    | None ->
        Hashtbl.add seen name 1;
        name
    | Some k ->
        Hashtbl.replace seen name (k + 1);
        Printf.sprintf "%s__%d" name (k + 1)
  in
  Schema.make
    (List.map
       (fun (name, item) ->
         let ty =
           match item with
           | Expr_item (e, _) -> infer_expr_ty schema e
           | Star_item -> Value.T_str
         in
         { Schema.name = uniquify name; ty })
       named)
