module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation

let manifest_file = "manifest.txt"

let ty_tag = function
  | Value.T_int -> "INT"
  | Value.T_float -> "FLOAT"
  | Value.T_bool -> "BOOL"
  | Value.T_str -> "TEXT"

let ty_of_tag = function
  | "INT" -> Value.T_int
  | "FLOAT" -> Value.T_float
  | "BOOL" -> Value.T_bool
  | "TEXT" -> Value.T_str
  | tag -> failwith ("Persist: unknown type tag " ^ tag)

let serialize_value v =
  match v with Value.Null -> "" | v -> Value.to_string v

let parse_value ty field =
  if field = "" then Value.Null
  else
    match ty with
    | Value.T_int -> (
        match int_of_string_opt field with
        | Some i -> Value.Int i
        | None -> failwith ("Persist: bad INT field " ^ field))
    | Value.T_float -> (
        match float_of_string_opt field with
        | Some f -> Value.Float f
        | None -> failwith ("Persist: bad FLOAT field " ^ field))
    | Value.T_bool -> (
        match String.lowercase_ascii field with
        | "true" -> Value.Bool true
        | "false" -> Value.Bool false
        | _ -> failwith ("Persist: bad BOOL field " ^ field))
    | Value.T_str -> Value.Str field

(* The manifest uses tab as the field separator and comma as the list
   separator, so a table or column name containing either (or a line
   break) would be torn apart on reload — reject such names up front,
   before anything is written. Values are not affected: they live in the
   CSV files, whose quoting handles commas and newlines. *)
let check_name ~what name =
  if name = "" then failwith (Printf.sprintf "Persist: empty %s name" what);
  String.iter
    (fun c ->
      match c with
      | '\t' | ',' | '\n' | '\r' ->
          failwith
            (Printf.sprintf
               "Persist: %s name %S contains a manifest delimiter (tab, \
                comma, or line break) and cannot be saved"
               what name)
      | _ -> ())
    name

(* Write via a sibling temp file and rename into place: rename within a
   directory is atomic, so a crash mid-save leaves either the old file
   or the new one, never a torn half. *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match output_string oc content with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      raise e);
  Sys.rename tmp path

(* Streaming variant: the writer emits straight to the temp channel, so a
   table is never held as one big string (the old path peaked at roughly
   the relation's size again in serialized text). *)
let write_stream_atomic path writer =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match writer oc with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      raise e);
  Sys.rename tmp path

let output_row oc row =
  output_string oc
    (Pb_util.Csv.row_to_string (Array.to_list (Array.map serialize_value row)));
  output_char oc '\n'

(* One CSV line per original row. When a columnar image of this exact
   snapshot is already resident and compressed, serialize each distinct
   row once and replay the cached line along the order walk — duplicates
   cost a string write, not a re-serialization. *)
let stream_table db table rel oc =
  match Database.columnar_cached db table rel with
  | Some tbl when Pb_store.Table.compressed tbl ->
      let module T = Pb_store.Table in
      let lines = Array.make (T.distinct tbl) None in
      let line id =
        match lines.(id) with
        | Some s -> s
        | None ->
            let s =
              Pb_util.Csv.row_to_string
                (Array.to_list (Array.map serialize_value (T.get_row tbl id)))
              ^ "\n"
            in
            lines.(id) <- Some s;
            s
      in
      Array.iter
        (fun id -> output_string oc (line id))
        (Option.get (T.order tbl))
  | _ -> List.iter (fun row -> output_row oc row) (Relation.to_list rel)

let save_dir db dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let tables = Database.table_names db in
  List.iter
    (fun table ->
      check_name ~what:"table" table;
      let rel = Database.find_exn db table in
      List.iter
        (fun { Schema.name; _ } -> check_name ~what:"column" name)
        (Schema.columns (Relation.schema rel)))
    tables;
  let manifest = Buffer.create 256 in
  List.iter
    (fun table ->
      let rel = Database.find_exn db table in
      let schema = Relation.schema rel in
      let cols =
        String.concat ","
          (List.map
             (fun { Schema.name; ty } -> name ^ ":" ^ ty_tag ty)
             (Schema.columns schema))
      in
      let indexes = String.concat "," (Database.indexed_columns db table) in
      Buffer.add_string manifest
        (Printf.sprintf "%s\t%s\t%s\n" table cols indexes);
      write_stream_atomic
        (Filename.concat dir (table ^ ".csv"))
        (stream_table db table rel))
    tables;
  (* The manifest rename is the commit point: every CSV it names is
     already durably in place when it appears. *)
  write_file_atomic (Filename.concat dir manifest_file)
    (Buffer.contents manifest);
  (* Drop CSVs of tables that no longer exist (otherwise a dropped table
     silently resurrects on the next load) and any temp files a crashed
     earlier save left behind. Table names are stored lowercase, so the
     on-disk name of a live table matches its catalog name exactly. *)
  let live = List.map (fun t -> t ^ ".csv") tables in
  Array.iter
    (fun entry ->
      let stale_csv =
        Filename.check_suffix entry ".csv" && not (List.mem entry live)
      in
      let stale_tmp = Filename.check_suffix entry ".tmp" in
      if stale_csv || stale_tmp then
        try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
    (Sys.readdir dir)

let load_dir dir =
  let path = Filename.concat dir manifest_file in
  if not (Sys.file_exists path) then
    failwith ("Persist: no manifest at " ^ path);
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let db = Database.create () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  List.iter
    (fun line ->
      match String.split_on_char '\t' line with
      | [ table; cols; indexes ] ->
          let columns =
            List.map
              (fun spec ->
                match String.rindex_opt spec ':' with
                | Some i ->
                    {
                      Schema.name = String.sub spec 0 i;
                      ty =
                        ty_of_tag
                          (String.sub spec (i + 1) (String.length spec - i - 1));
                    }
                | None -> failwith ("Persist: bad column spec " ^ spec))
              (String.split_on_char ',' cols)
          in
          let schema = Schema.make columns in
          let tys = List.map (fun c -> c.Schema.ty) (Schema.columns schema) in
          let csv_path = Filename.concat dir (table ^ ".csv") in
          let raw_rows =
            if Sys.file_exists csv_path then Pb_util.Csv.parse_file csv_path
            else []
          in
          let rows =
            List.map
              (fun fields ->
                if List.length fields <> List.length tys then
                  failwith
                    (Printf.sprintf "Persist: row arity mismatch in %s" table)
                else Array.of_list (List.map2 parse_value tys fields))
              raw_rows
          in
          Database.put db table (Relation.create schema rows);
          if indexes <> "" then
            List.iter
              (fun column -> Database.create_index db ~table ~column)
              (String.split_on_char ',' indexes)
      | _ -> failwith ("Persist: malformed manifest line: " ^ line))
    lines;
  db
