module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation

(* All catalog state is guarded by [mu]: queries may run on several pool
   domains at once (chunked filters, hash-join key eval/probe, chunked
   projection), and a subquery evaluated on a worker domain can lazily
   build an index — an unsynchronized Hashtbl mutation without the lock.
   Every public operation holds the lock end to end, so a given
   (table, column) index is built at most once and lookups never observe
   a resizing table. Relations themselves are immutable, so returned
   values are safe to read without the lock. *)
type t = {
  mu : Mutex.t;
  tables : (string, Relation.t) Hashtbl.t;
  declared_indexes : (string, string list ref) Hashtbl.t;  (* table -> cols *)
  index_cache : (string * string, Index.t) Hashtbl.t;
  (* Columnar image of a table, built lazily on first columnar scan and
     dropped whenever the relation is replaced (same lifecycle as the
     index cache). The row store the image was encoded from is kept
     alongside so a caller holding an older snapshot of the relation never
     gets an image of newer data (physical equality check). The global
     pb_store_bytes_resident gauge tracks the sum of cached images across
     catalogs. *)
  columnar_cache :
    (string, Value.t array array * Pb_store.Table.t) Hashtbl.t;
  (* Schema/DDL generation: bumped when the set of tables, a table's
     schema, or the declared indexes change — NOT on schema-preserving DML
     (INSERT/DELETE/UPDATE replace the relation with one of identical
     schema), so prepared plans stay valid across data changes. The
     {!Plan_cache} compares this against the version captured at prepare
     time. *)
  version : int Atomic.t;
}

let create () =
  {
    mu = Mutex.create ();
    tables = Hashtbl.create 16;
    declared_indexes = Hashtbl.create 8;
    index_cache = Hashtbl.create 8;
    columnar_cache = Hashtbl.create 8;
    version = Atomic.make 0;
  }

let version db = Atomic.get db.version

let locked db f =
  Mutex.lock db.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock db.mu) f

let normalize = String.lowercase_ascii

(* The _unlocked helpers assume [db.mu] is held (Mutex is not reentrant). *)

let invalidate_indexes_unlocked db name =
  Hashtbl.filter_map_inplace
    (fun (table, _) index -> if table = name then None else Some index)
    db.index_cache

let forget_columnar_unlocked db name =
  match Hashtbl.find_opt db.columnar_cache name with
  | None -> ()
  | Some (_, t) ->
      Hashtbl.remove db.columnar_cache name;
      Pb_store.Table.add_resident (-Pb_store.Table.bytes t)

let find_unlocked db name = Hashtbl.find_opt db.tables (normalize name)

let put db name rel =
  let name = normalize name in
  locked db (fun () ->
      let schema_changed =
        match find_unlocked db name with
        | Some old -> not (Schema.equal (Relation.schema old) (Relation.schema rel))
        | None -> true
      in
      Hashtbl.replace db.tables name rel;
      invalidate_indexes_unlocked db name;
      forget_columnar_unlocked db name;
      if schema_changed then Atomic.incr db.version)

let find db name = locked db (fun () -> find_unlocked db name)

let find_exn db name =
  match find db name with
  | Some r -> r
  | None -> failwith ("no such table: " ^ name)

let drop db name =
  let name = normalize name in
  locked db (fun () ->
      if Hashtbl.mem db.tables name then Atomic.incr db.version;
      Hashtbl.remove db.tables name;
      Hashtbl.remove db.declared_indexes name;
      invalidate_indexes_unlocked db name;
      forget_columnar_unlocked db name)

let table_names db =
  locked db (fun () ->
      List.sort String.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) db.tables []))

let create_index db ~table ~column =
  let table = normalize table and column = normalize column in
  locked db (fun () ->
      let rel =
        match find_unlocked db table with
        | Some r -> r
        | None -> failwith ("no such table: " ^ table)
      in
      if Schema.index_of (Relation.schema rel) column = None then
        failwith
          (Printf.sprintf "no such column %s in table %s" column table);
      let cols =
        match Hashtbl.find_opt db.declared_indexes table with
        | Some cols -> cols
        | None ->
            let cols = ref [] in
            Hashtbl.add db.declared_indexes table cols;
            cols
      in
      if not (List.mem column !cols) then begin
        cols := column :: !cols;
        (* A new index can change plan shape (index scan vs filter). *)
        Atomic.incr db.version
      end)

let indexed_columns_unlocked db table =
  match Hashtbl.find_opt db.declared_indexes (normalize table) with
  | Some cols -> !cols
  | None -> []

let indexed_columns db table =
  locked db (fun () -> indexed_columns_unlocked db table)

let get_index db ~table ~column =
  let table = normalize table and column = normalize column in
  locked db (fun () ->
      if not (List.mem column (indexed_columns_unlocked db table)) then None
      else
        match Hashtbl.find_opt db.index_cache (table, column) with
        | Some index -> Some index
        | None -> (
            match find_unlocked db table with
            | None -> None
            | Some rel ->
                let index = Index.build rel column in
                Hashtbl.add db.index_cache (table, column) index;
                Some index))

let columnar db name rel =
  let name = normalize name in
  locked db (fun () ->
      match Hashtbl.find_opt db.columnar_cache name with
      | Some (store, t) when store == Relation.rows rel -> t
      | prev ->
          (match prev with
          | Some (_, old) ->
              Pb_store.Table.add_resident (-Pb_store.Table.bytes old)
          | None -> ());
          (* Built under the catalog lock, like lazy index builds, so a
             given snapshot is encoded at most once. [rel] may carry a
             qualified (renamed) schema; only the values matter, and a
             rename shares the row store, so the physical-equality check
             above still hits for any alias of the same snapshot. *)
          let t = Pb_store.Table.of_relation rel in
          Hashtbl.replace db.columnar_cache name (Relation.rows rel, t);
          Pb_store.Table.add_resident (Pb_store.Table.bytes t);
          t)

let columnar_cached db name rel =
  locked db (fun () ->
      match Hashtbl.find_opt db.columnar_cache (normalize name) with
      | Some (store, t) when store == Relation.rows rel -> Some t
      | _ -> None)

let infer_column_ty cells =
  let non_null = List.filter (fun v -> v <> Value.Null) cells in
  if non_null = [] then Value.T_str
  else if List.for_all (function Value.Int _ -> true | _ -> false) non_null
  then Value.T_int
  else if
    List.for_all
      (function Value.Int _ | Value.Float _ -> true | _ -> false)
      non_null
  then Value.T_float
  else if List.for_all (function Value.Bool _ -> true | _ -> false) non_null
  then Value.T_bool
  else Value.T_str

let load_csv db ~name path =
  match Pb_util.Csv.parse_file path with
  | [] -> failwith ("empty CSV file: " ^ path)
  | header :: raw_rows ->
      let ncols = List.length header in
      let parse_row r =
        if List.length r <> ncols then
          failwith
            (Printf.sprintf "CSV row has %d fields, header has %d"
               (List.length r) ncols)
        else Array.of_list (List.map Value.of_literal r)
      in
      let rows = List.map parse_row raw_rows in
      let tys =
        List.mapi
          (fun i _ -> infer_column_ty (List.map (fun r -> r.(i)) rows))
          header
      in
      let as_str v =
        if v = Value.Null then Value.Null else Value.Str (Value.to_string v)
      in
      let coerce ty v =
        (* Re-read mixed columns as text so the relation is homogeneous. *)
        match ty with Value.T_str -> as_str v | _ -> v
      in
      let rows =
        List.map
          (fun r -> Array.of_list (List.map2 coerce tys (Array.to_list r)))
          rows
      in
      let schema =
        Schema.make
          (List.map2 (fun n ty -> { Schema.name = n; ty }) header tys)
      in
      put db name (Relation.create schema rows)
