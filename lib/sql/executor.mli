(** SQL execution over the in-memory catalog.

    The executor is deliberately a straightforward iterator pipeline
    (product → filter → group → project → sort → limit): PackageBuilder's
    §4.2 argument about k-replacement local search — that the neighbourhood
    query is "a selection over a Cartesian product" whose cost explodes as
    a 2k-way join — depends only on this complexity shape, which a fancier
    optimizer would obscure. *)

exception Eval_error of string

type result =
  | Rows of Pb_relation.Relation.t  (** SELECT result *)
  | Affected of int                 (** rows inserted/deleted/updated *)
  | Created                         (** DDL acknowledgement *)

val eval_expr :
  ?db:Database.t ->
  ?gov:Pb_util.Gov.t ->
  Pb_relation.Schema.t ->
  Pb_relation.Value.t array ->
  Ast.expr ->
  Pb_relation.Value.t
(** Evaluate a scalar expression against one row. Aggregate nodes raise
    {!Eval_error} here (they only make sense over a group); subqueries need
    [db] and inherit [gov]. *)

val eval_const : ?db:Database.t -> Ast.expr -> Pb_relation.Value.t
(** Evaluate a row-independent expression (literals/arithmetic). *)

val eval_agg_expr :
  ?db:Database.t ->
  ?gov:Pb_util.Gov.t ->
  Pb_relation.Schema.t ->
  Pb_relation.Value.t array list ->
  Ast.expr ->
  Pb_relation.Value.t
(** Evaluate an expression over a group of rows: aggregate nodes reduce
    the whole group, other column references resolve against the first
    row (the group-by representative). This is exactly the semantics the
    package validator reuses to check SUCH THAT constraints, treating the
    candidate package as one group. *)

val select :
  ?memo:Compile.Memo.t ->
  ?gov:Pb_util.Gov.t ->
  Database.t ->
  Ast.select ->
  Pb_relation.Relation.t
(** Run a SELECT. When [memo] is supplied (by the prepared-plan cache),
    compiled expression closures are reused across executions of the same
    statement instead of being rebuilt.

    [gov] is the request's governance token: it is polled (sampled)
    inside every planner and executor loop, and a stop raises
    {!Pb_util.Gov.Interrupted} — SQL has no useful partial result, so
    cancellation abandons the statement outright. One caveat: the
    fallback interpreter baked into {e memoized} compiled closures is
    deliberately gov-free (those closures are cached across requests by
    the plan cache, and a stale token must not cancel a later request),
    so subqueries reached through a cached plan run un-governed; the
    enclosing operator loops still poll. *)

val execute :
  ?memo:Compile.Memo.t -> ?gov:Pb_util.Gov.t -> Database.t -> Ast.statement -> result
val execute_sql : ?gov:Pb_util.Gov.t -> Database.t -> string -> result
(** Parse then execute a single statement. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE with [%] and [_] wildcards (exposed for tests; the matcher
    itself lives in {!Compile}). *)
