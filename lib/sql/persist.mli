(** Catalog persistence: save a whole database to a directory and load it
    back, schema- and index-exact.

    Layout: [<dir>/manifest.txt] describes each table (name, typed
    columns, declared index columns); [<dir>/<table>.csv] holds the rows,
    serialized per the declared type rather than re-inferred, so a TEXT
    column whose values happen to look numeric round-trips as TEXT
    (unlike {!Database.load_csv}, which must guess).

    NULL is stored as the empty field; consequently a TEXT value that is
    the empty string round-trips as NULL — the one (documented) lossy
    corner.

    Because saved packages ({!Pb_paql.Package_store}) live in ordinary
    tables, persistence makes them durable across CLI invocations for
    free. *)

val save_dir : Database.t -> string -> unit
(** Create [dir] if needed and (over)write the manifest and one CSV per
    table. Crash-safe: every file is written to a sibling temp file and
    renamed into place, with the manifest renamed last as the commit
    point — a crash mid-save leaves the previous consistent state
    loadable. CSVs of tables no longer in the database (and stale [.tmp]
    files from interrupted saves) are deleted, so dropped tables do not
    resurrect on reload. Raises [Failure] before writing anything if a
    table or column name contains a manifest delimiter (tab, comma, or
    line break); raises [Sys_error] on I/O failure. *)

val load_dir : string -> Database.t
(** Load a directory written by {!save_dir}; declared indexes are
    re-registered (and rebuilt lazily on first use). Raises [Failure] on
    a missing or malformed manifest. *)
