module Metrics = Pb_obs.Metrics
module Trace = Pb_obs.Trace

let m_hits =
  Metrics.counter ~help:"Prepared-plan cache hits" "pb_sql_plan_cache_hits_total"

let m_misses =
  Metrics.counter ~help:"Prepared-plan cache misses (first sight or invalidated)"
    "pb_sql_plan_cache_misses_total"

let hits () = Metrics.counter_value m_hits
let misses () = Metrics.counter_value m_misses

type entry = {
  statements : Ast.statement list;
  memo : Compile.Memo.t;
  version : int;  (* Database.version at prepare time *)
  mutable tick : int;  (* last-use stamp for LRU eviction *)
}

type t = {
  mu : Mutex.t;
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable clock : int;
}

(* capacity 0 is a legal degenerate cache: every insertion is immediately
   evicted, so every lookup parses — the "caching off" baseline for
   benchmarks (pb_server --plan-cache 0). *)
let create ?(capacity = 128) () =
  if capacity < 0 then invalid_arg "Plan_cache.create: negative capacity";
  { mu = Mutex.create (); capacity; tbl = Hashtbl.create 64; clock = 0 }

(* Trim surrounding whitespace and trailing semicolons only: collapsing
   interior whitespace could rewrite string literals, and lower-casing
   could change them outright. Conservative normalization misses some
   sharing ("SELECT  1" vs "SELECT 1") but never conflates distinct
   queries. *)
let normalize text =
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let n = String.length text in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < n && is_space text.[!lo] do
    incr lo
  done;
  while !hi >= !lo && (is_space text.[!hi] || text.[!hi] = ';') do
    decr hi
  done;
  String.sub text !lo (!hi - !lo + 1)

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let evict_lru_unlocked t =
  (* O(n) scan; n is the (small) capacity, and eviction only runs on
     insertions past it. *)
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.tick <= entry.tick -> acc
        | _ -> Some (key, entry))
      t.tbl None
  in
  match victim with Some (key, _) -> Hashtbl.remove t.tbl key | None -> ()

let lookup t db ~parse text =
  let key = normalize text in
  let current = Database.version db in
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some entry when entry.version = current ->
            t.clock <- t.clock + 1;
            entry.tick <- t.clock;
            Some entry
        | Some _stale ->
            Hashtbl.remove t.tbl key;
            None
        | None -> None)
  in
  match cached with
  | Some entry ->
      Metrics.incr m_hits;
      (entry.statements, entry.memo)
  | None ->
      Metrics.incr m_misses;
      (* Parse outside the lock so a slow prepare doesn't serialize other
         connections; on a race the first insert wins and both callers get
         functionally identical plans. *)
      let statements =
        Trace.with_span ~name:"sql.prepare" (fun () -> parse key)
      in
      let entry =
        { statements; memo = Compile.Memo.create (); version = current; tick = 0 }
      in
      let entry =
        locked t (fun () ->
            t.clock <- t.clock + 1;
            match Hashtbl.find_opt t.tbl key with
            | Some existing when existing.version = current ->
                existing.tick <- t.clock;
                existing
            | _ ->
                entry.tick <- t.clock;
                Hashtbl.replace t.tbl key entry;
                if Hashtbl.length t.tbl > t.capacity then evict_lru_unlocked t;
                entry)
      in
      (entry.statements, entry.memo)

let size t = locked t (fun () -> Hashtbl.length t.tbl)
let clear t = locked t (fun () -> Hashtbl.reset t.tbl)
