open Ast
module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation
module Column = Pb_store.Column
module Table = Pb_store.Table
module Mode = Pb_store.Mode
module Metrics = Pb_obs.Metrics
module Gov = Pb_util.Gov

(* Columnar fast paths over {!Pb_store.Table} images, driven by the batch
   kernels in {!Batch}. Every entry point is all-or-nothing: it answers
   the statement bit-identically to the row engine or returns [None] and
   the caller falls back. Bailing is always safe — the row interpreter is
   the oracle — so the bail conditions only have to be conservative, not
   mode-independent. *)

let m_selects =
  Metrics.counter ~help:"SELECT blocks answered end-to-end by the columnar engine"
    "pb_store_selects_total"

let m_scans =
  Metrics.counter
    ~help:"Columnar scan fast paths taken (planner scans and DML predicates)"
    "pb_store_scans_total"

let poll gov i =
  if i land 255 = 0 then Gov.tick_opt ~resource:Gov.Sql_rows gov

let bool_kernel schema tbl e =
  match Batch.compile schema tbl e with
  | Some k when k.Batch.kind = Batch.K_bool -> Some k
  | _ -> None

(* ---- selection vectors ------------------------------------------------ *)

(* sel &= (kern = true), chunk at a time. Kernels never raise, so the
   order in which several conjuncts restrict the vector is immaterial. *)
let restrict ?gov tbl sel kern =
  let n = Table.distinct tbl in
  let lo = ref 0 and chunks = ref 0 in
  while !lo < n do
    Gov.tick_opt ~resource:Gov.Sql_rows gov;
    let len = min Batch.chunk (n - !lo) in
    let b = Batch.as_b3 (kern.Batch.run ~lo:!lo ~len) in
    for i = 0 to len - 1 do
      if Bytes.get sel (!lo + i) = '\001' && Bytes.get b i <> '\001' then
        Bytes.set sel (!lo + i) '\000'
    done;
    incr chunks;
    lo := !lo + len
  done;
  Table.tick_chunks !chunks

let selection ?gov tbl kern =
  let sel = Bytes.make (Table.distinct tbl) '\001' in
  restrict ?gov tbl sel kern;
  sel

(* ---- expanded-order iteration ---------------------------------------- *)

(* Visit every original row position in order as [f pos id]. *)
let iter_positions tbl f =
  match Table.order tbl with
  | Some ord -> Array.iteri f ord
  | None ->
      for id = 0 to Table.distinct tbl - 1 do
        f id id
      done

let iter_selected tbl sel f =
  iter_positions tbl (fun pos id ->
      if Bytes.get sel id = '\001' then f pos id)

(* ---- vectorized projection ------------------------------------------- *)

(* Exact per-row values of a kernel for the selected ids (chunks with no
   selected row are skipped). [int_valued] is what makes the Int/Float
   tag reconstruction exact — see the {!Batch} contract. *)
let kernel_values tbl sel (k : Batch.t) =
  let n = Table.distinct tbl in
  let out = Array.make n Value.Null in
  let lo = ref 0 and chunks = ref 0 in
  while !lo < n do
    let len = min Batch.chunk (n - !lo) in
    let any = ref false in
    for i = !lo to !lo + len - 1 do
      if Bytes.get sel i = '\001' then any := true
    done;
    if !any then begin
      incr chunks;
      (match k.Batch.run ~lo:!lo ~len with
      | Batch.Num (v, nulls) ->
          for i = 0 to len - 1 do
            if Bytes.get sel (!lo + i) = '\001' && not (Batch.null_at nulls i)
            then
              out.(!lo + i) <-
                (if k.Batch.int_valued then Value.Int (int_of_float v.(i))
                 else Value.Float v.(i))
          done
      | Batch.B3 b ->
          for i = 0 to len - 1 do
            if Bytes.get sel (!lo + i) = '\001' then
              match Bytes.get b i with
              | '\001' -> out.(!lo + i) <- Value.Bool true
              | '\000' -> out.(!lo + i) <- Value.Bool false
              | _ -> ()
          done
      | Batch.Sv (dict, codes) ->
          for i = 0 to len - 1 do
            if Bytes.get sel (!lo + i) = '\001' && codes.(i) >= 0 then
              out.(!lo + i) <- Value.Str dict.(codes.(i))
          done)
    end;
    lo := !lo + len
  done;
  Table.tick_chunks !chunks;
  out

type item_plan = Direct of int | Kernel of Batch.t

(* Each projected item either reads a column (any layout, [Column.get] is
   always exact) or runs a compiled kernel. Anything else bails. *)
let plan_items schema tbl items =
  let rec walk acc = function
    | [] -> Some (List.rev acc)
    | Expr_item (Col c, _) :: rest -> (
        match Schema.index_of schema c with
        | Some i -> walk (Direct i :: acc) rest
        | None -> None)
    | Expr_item (e, _) :: rest -> (
        match Batch.compile schema tbl e with
        | Some k -> walk (Kernel k :: acc) rest
        | None -> None)
    | Star_item :: _ -> None (* expand_items already removed these *)
  in
  walk [] items

let project_ungrouped ?gov tbl sel plans =
  let sources =
    List.map
      (function
        | Direct i -> `Col (Table.col tbl i)
        | Kernel k -> `Vals (kernel_values tbl sel k))
      plans
  in
  (* Duplicates of a distinct row share one output array, like the row
     materializer (rows are never mutated in place downstream). *)
  let cache = Array.make (Table.distinct tbl) None in
  let out_row id =
    match cache.(id) with
    | Some r -> r
    | None ->
        let r =
          Array.of_list
            (List.map
               (function
                 | `Col c -> Column.get c id
                 | `Vals v -> v.(id))
               sources)
        in
        cache.(id) <- Some r;
        r
  in
  let out = ref [] in
  let i = ref 0 in
  iter_selected tbl sel (fun _pos id ->
      poll gov !i;
      incr i;
      out := out_row id :: !out);
  List.rev !out

(* ---- grouped aggregation ---------------------------------------------- *)

type agg_plan =
  | Rep of int  (* group-representative column read *)
  | Const of Value.t
  | Count_star_p
  | Num_agg of agg_func * Batch.t
  | Str_agg of agg_func * Batch.t
  | Bool_count of Batch.t

(* The row engine accumulates float SUM/AVG sequentially over expanded
   rows; multiplicity-weighted accumulation only reproduces that
   bit-for-bit when the values are integers (exact below 2^53). Float
   aggregates over a compressed table therefore bail to the row path. *)
let plan_agg_items schema tbl items =
  let compressed = Table.compressed tbl in
  let plan_one = function
    | Star_item -> None
    | Expr_item (Col c, _) ->
        Option.map (fun i -> Rep i) (Schema.index_of schema c)
    | Expr_item (Lit v, _) -> Some (Const v)
    | Expr_item (Agg (Count_star, _), _) -> Some Count_star_p
    | Expr_item (Agg (f, Some arg), _) -> (
        match Batch.compile schema tbl arg with
        | None -> None
        | Some k -> (
            match k.Batch.kind with
            | Batch.K_num ->
                if
                  (f = Sum || f = Avg)
                  && (not k.Batch.int_valued)
                  && compressed
                then None
                else Some (Num_agg (f, k))
            | Batch.K_str -> (
                match f with
                | Count | Min | Max -> Some (Str_agg (f, k))
                | _ -> None)
            | Batch.K_bool -> (
                match f with Count -> Some (Bool_count k) | _ -> None)))
    | Expr_item _ -> None
  in
  let rec walk acc = function
    | [] -> Some (List.rev acc)
    | item :: rest -> (
        match plan_one item with
        | Some p -> walk (p :: acc) rest
        | None -> None)
  in
  walk [] items

(* Drive one kernel over the chunks that contain grouped rows, handing
   each (group, in-chunk index, id) to [f]. *)
let iter_agg_chunks tbl gids (k : Batch.t) f =
  let n = Table.distinct tbl in
  let lo = ref 0 and chunks = ref 0 in
  while !lo < n do
    let len = min Batch.chunk (n - !lo) in
    let any = ref false in
    for i = !lo to !lo + len - 1 do
      if gids.(i) >= 0 then any := true
    done;
    if !any then begin
      incr chunks;
      let vec = k.Batch.run ~lo:!lo ~len in
      for i = 0 to len - 1 do
        let id = !lo + i in
        let g = gids.(id) in
        if g >= 0 then f g i id vec
      done
    end;
    lo := !lo + len
  done;
  Table.tick_chunks !chunks

let num_agg_values tbl gids ngroups f (k : Batch.t) =
  let cnt = Array.make ngroups 0 in
  let fsum = Array.make ngroups 0.0 in
  let isum = Array.make ngroups 0 in
  let best = Array.make ngroups 0.0 in
  iter_agg_chunks tbl gids k (fun g i id vec ->
      let v, nulls = Batch.as_num vec in
      if not (Batch.null_at nulls i) then begin
        let x = v.(i) in
        let m = Table.multiplicity tbl id in
        (match f with
        | Min -> if cnt.(g) = 0 || Float.compare x best.(g) < 0 then best.(g) <- x
        | Max -> if cnt.(g) = 0 || Float.compare x best.(g) > 0 then best.(g) <- x
        | Sum | Avg ->
            if k.Batch.int_valued then
              (* Native-int accumulation wraps exactly like the row
                 engine's integer SUM. *)
              isum.(g) <- isum.(g) + (m * int_of_float x);
            fsum.(g) <- fsum.(g) +. (float_of_int m *. x)
        | Count | Count_star -> ());
        cnt.(g) <- cnt.(g) + m
      end);
  Array.init ngroups (fun g ->
      match f with
      | Count -> Value.Int cnt.(g)
      | _ when cnt.(g) = 0 -> Value.Null
      | Sum ->
          if k.Batch.int_valued then Value.Int isum.(g) else Value.Float fsum.(g)
      | Avg -> Value.Float (fsum.(g) /. float_of_int cnt.(g))
      | Min | Max ->
          if k.Batch.int_valued then Value.Int (int_of_float best.(g))
          else Value.Float best.(g)
      | Count_star -> assert false)

let str_agg_values tbl gids ngroups f (k : Batch.t) =
  let cnt = Array.make ngroups 0 in
  let best = Array.make ngroups "" in
  iter_agg_chunks tbl gids k (fun g i id vec ->
      let dict, codes = Batch.as_sv vec in
      if codes.(i) >= 0 then begin
        let s = dict.(codes.(i)) in
        (match f with
        | Min -> if cnt.(g) = 0 || String.compare s best.(g) < 0 then best.(g) <- s
        | Max -> if cnt.(g) = 0 || String.compare s best.(g) > 0 then best.(g) <- s
        | _ -> ());
        cnt.(g) <- cnt.(g) + Table.multiplicity tbl id
      end);
  Array.init ngroups (fun g ->
      match f with
      | Count -> Value.Int cnt.(g)
      | _ when cnt.(g) = 0 -> Value.Null
      | Min | Max -> Value.Str best.(g)
      | _ -> assert false)

let bool_count_values tbl gids ngroups (k : Batch.t) =
  let cnt = Array.make ngroups 0 in
  iter_agg_chunks tbl gids k (fun g i id vec ->
      let b = Batch.as_b3 vec in
      if Bytes.get b i <> '\002' then
        cnt.(g) <- cnt.(g) + Table.multiplicity tbl id);
  Array.init ngroups (fun g -> Value.Int cnt.(g))

let project_grouped ?gov tbl sel key_idxs plans ~single_group =
  let n = Table.distinct tbl in
  let gids = Array.make n (-1) in
  let key_cols = List.map (Table.col tbl) key_idxs in
  let seen = Hashtbl.create 64 in
  let ngroups = ref 0 in
  let reps = ref [] in
  (* Ascending distinct-id order IS first-appearance order over the
     expanded rows (ids are assigned by first occurrence), so both group
     creation order and the group representative (the row engine's first
     row of each group) fall out of a single ascending scan. *)
  let i = ref 0 in
  for id = 0 to n - 1 do
    if Bytes.get sel id = '\001' then begin
      poll gov !i;
      incr i;
      let gid =
        if single_group then
          if !ngroups = 0 then begin
            incr ngroups;
            reps := id :: !reps;
            0
          end
          else 0
        else
          let key =
            List.map (fun c -> Value.to_string (Column.get c id)) key_cols
          in
          match Hashtbl.find_opt seen key with
          | Some g -> g
          | None ->
              let g = !ngroups in
              incr ngroups;
              Hashtbl.add seen key g;
              reps := id :: !reps;
              g
      in
      gids.(id) <- gid
    end
  done;
  (* SELECT aggregates with no GROUP BY see one group even on empty
     input (COUNT of nothing is 0, everything else NULL). *)
  if single_group && !ngroups = 0 then ngroups := 1;
  let ngroups = !ngroups in
  let reps = Array.of_list (List.rev !reps) in
  let star = Array.make ngroups 0 in
  for id = 0 to n - 1 do
    if gids.(id) >= 0 then
      star.(gids.(id)) <- star.(gids.(id)) + Table.multiplicity tbl id
  done;
  let columns =
    List.map
      (function
        | Rep idx ->
            let c = Table.col tbl idx in
            `Fn
              (fun g ->
                if g < Array.length reps then Column.get c reps.(g)
                else Value.Null)
        | Const v -> `Fn (fun _ -> v)
        | Count_star_p -> `Fn (fun g -> Value.Int star.(g))
        | Num_agg (f, k) -> `Arr (num_agg_values tbl gids ngroups f k)
        | Str_agg (f, k) -> `Arr (str_agg_values tbl gids ngroups f k)
        | Bool_count k -> `Arr (bool_count_values tbl gids ngroups k))
      plans
  in
  List.init ngroups (fun g ->
      Gov.tick_opt ~resource:Gov.Sql_rows gov;
      Array.of_list
        (List.map
           (function `Fn f -> f g | `Arr a -> a.(g))
           columns))

(* ---- ORDER BY / OFFSET / LIMIT ---------------------------------------- *)

(* Only output-column keys vectorize (the row path's [`Src] keys re-enter
   the interpreter against row provenance, which we don't carry). *)
let order_plan out_schema order_by =
  let rec walk acc = function
    | [] -> Some (List.rev acc)
    | (Col name, dir) :: rest -> (
        match Schema.index_of out_schema name with
        | Some i -> walk ((i, dir) :: acc) rest
        | None -> None)
    | _ -> None
  in
  walk [] order_by

let order_limit (q : select) keys rows =
  let rows =
    match keys with
    | [] -> rows
    | keys ->
        let cmp a b =
          let rec walk = function
            | [] -> 0
            | (i, dir) :: rest ->
                let c = Value.compare_values a.(i) b.(i) in
                let c = match dir with Asc -> c | Desc -> -c in
                if c <> 0 then c else walk rest
          in
          walk keys
        in
        List.stable_sort cmp rows
  in
  let rows =
    match q.offset with
    | None -> rows
    | Some skip -> List.filteri (fun i _ -> i >= skip) rows
  in
  match q.limit with
  | None -> rows
  | Some k -> List.filteri (fun i _ -> i < k) rows

(* ---- entry points ----------------------------------------------------- *)

let try_select ?gov db (q : select) =
  if not (Mode.columnar ()) then None
  else
    match q.from with
    | [ { rel_name; alias } ] when (not q.distinct) && q.having = None -> (
        match Database.find db rel_name with
        | None -> None (* let the row path raise its usual error *)
        | Some rel ->
            (* A declared index changes the row path's access method (and
               builds the index as a side effect); keep that behavior. *)
            if q.where <> None && Database.indexed_columns db rel_name <> []
            then None
            else
              let qualifier = Option.value alias ~default:rel_name in
              let schema = Schema.qualify qualifier (Relation.schema rel) in
              let items = Shape.expand_items schema q.items in
              let out_schema = Shape.output_schema schema items in
              match order_plan out_schema q.order_by with
              | None -> None
              | Some keys -> (
                  let tbl = Database.columnar db rel_name rel in
                  let wherek =
                    match q.where with
                    | None -> Some None
                    | Some pred -> (
                        match bool_kernel schema tbl pred with
                        | Some k -> Some (Some k)
                        | None -> None)
                  in
                  match wherek with
                  | None -> None
                  | Some wherek -> (
                      let grouped = Shape.grouped q items in
                      let run_plans =
                        if grouped then
                          let key_idxs =
                            List.fold_left
                              (fun acc e ->
                                match (acc, e) with
                                | Some idxs, Col c ->
                                    Option.map
                                      (fun i -> i :: idxs)
                                      (Schema.index_of schema c)
                                | _ -> None)
                              (Some []) q.group_by
                          in
                          match (key_idxs, plan_agg_items schema tbl items) with
                          | Some idxs, Some plans ->
                              Some (`Grouped (List.rev idxs, plans))
                          | _ -> None
                        else
                          Option.map
                            (fun plans -> `Ungrouped plans)
                            (plan_items schema tbl items)
                      in
                      match run_plans with
                      | None -> None
                      | Some run_plans ->
                          let sel =
                            match wherek with
                            | None -> Bytes.make (Table.distinct tbl) '\001'
                            | Some k -> selection ?gov tbl k
                          in
                          let rows =
                            match run_plans with
                            | `Ungrouped plans ->
                                project_ungrouped ?gov tbl sel plans
                            | `Grouped (key_idxs, plans) ->
                                project_grouped ?gov tbl sel key_idxs plans
                                  ~single_group:(q.group_by = [])
                          in
                          Metrics.incr m_selects;
                          Some
                            (Relation.create out_schema
                               (order_limit q keys rows)))))
    | _ -> None

(* Planner base-table scan: all pushed conjuncts must compile; the
   conjunction of their selection vectors equals the row path's
   sequential filters because compiled kernels never raise. *)
let scan ?gov db ~name rel conjs =
  if (not (Mode.columnar ())) || conjs = [] then None
  else if Database.indexed_columns db name <> [] then None
  else
    let schema = Relation.schema rel in
    let tbl = Database.columnar db name rel in
    let kernels = List.map (bool_kernel schema tbl) conjs in
    if List.exists Option.is_none kernels then None
    else begin
      let sel = Bytes.make (Table.distinct tbl) '\001' in
      List.iter (fun k -> restrict ?gov tbl sel (Option.get k)) kernels;
      Metrics.incr m_scans;
      let mat = Table.row_materializer tbl in
      let out = ref [] in
      iter_selected tbl sel (fun _pos id -> out := mat id :: !out);
      Some (Relation.create schema (List.rev !out))
    end

let delete_keep ?gov db ~name rel pred =
  if not (Mode.columnar ()) then None
  else
    let schema = Relation.schema rel in
    let tbl = Database.columnar db name rel in
    match bool_kernel schema tbl pred with
    | None -> None
    | Some k ->
        let hit = selection ?gov tbl k in
        Metrics.incr m_scans;
        let mat = Table.row_materializer tbl in
        let out = ref [] and kept = ref 0 in
        iter_positions tbl (fun _pos id ->
            if Bytes.get hit id <> '\001' then begin
              incr kept;
              out := mat id :: !out
            end);
        Some
          ( Relation.create schema (List.rev !out),
            Table.total tbl - !kept )

let update_mask ?gov db ~name rel pred =
  if not (Mode.columnar ()) then None
  else
    let schema = Relation.schema rel in
    let tbl = Database.columnar db name rel in
    match bool_kernel schema tbl pred with
    | None -> None
    | Some k ->
        let hit = selection ?gov tbl k in
        Metrics.incr m_scans;
        let mask = Bytes.make (Table.total tbl) '\000' in
        iter_positions tbl (fun pos id ->
            if Bytes.get hit id = '\001' then Bytes.set mask pos '\001');
        Some mask
