(** Columnar fast paths over {!Pb_store.Table} images, driven by the
    {!Batch} kernels. Every entry point either answers the statement
    bit-identically to the row engine — values, Int/Float tags, and row
    order included — or returns [None], in which case the caller runs the
    row path. All entry points return [None] immediately when the storage
    mode ({!Pb_store.Mode}) is [Row]. *)

val bool_kernel :
  Pb_relation.Schema.t -> Pb_store.Table.t -> Ast.expr -> Batch.t option
(** [Batch.compile] restricted to boolean results (predicates). *)

val selection :
  ?gov:Pb_util.Gov.t -> Pb_store.Table.t -> Batch.t -> Bytes.t
(** Evaluate a boolean kernel over the whole table: one byte per distinct
    row, 1 where the predicate is true (exported for the PaQL layer's
    candidate generation). *)

val try_select :
  ?gov:Pb_util.Gov.t ->
  Database.t ->
  Ast.select ->
  Pb_relation.Relation.t option
(** End-to-end evaluation of a single-table SELECT block (WHERE,
    projection, GROUP BY + aggregates, ORDER BY over output columns,
    OFFSET/LIMIT). Bails on joins, DISTINCT, HAVING, declared indexes,
    subqueries, and anything the kernels can't reproduce exactly. The
    caller still owns result-side accounting (governance spend, row
    counters, trace counts). *)

val scan :
  ?gov:Pb_util.Gov.t ->
  Database.t ->
  name:string ->
  Pb_relation.Relation.t ->
  Ast.expr list ->
  Pb_relation.Relation.t option
(** Base-table scan for the planner: apply the pushed-down conjuncts as
    one fused selection vector over the columnar image and materialize
    the surviving rows in original order. [rel] is the (possibly renamed)
    snapshot being scanned; [None] when any conjunct fails to compile,
    the conjunct list is empty, or the table has declared indexes. *)

val delete_keep :
  ?gov:Pb_util.Gov.t ->
  Database.t ->
  name:string ->
  Pb_relation.Relation.t ->
  Ast.expr ->
  (Pb_relation.Relation.t * int) option
(** DELETE predicate evaluation: the kept relation (original row order)
    and the number of deleted rows. *)

val update_mask :
  ?gov:Pb_util.Gov.t ->
  Database.t ->
  name:string ->
  Pb_relation.Relation.t ->
  Ast.expr ->
  Bytes.t option
(** UPDATE predicate evaluation: a byte per original row position, 1
    where the WHERE clause is true. *)
