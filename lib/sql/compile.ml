open Ast
module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Trace = Pb_obs.Trace

exception Eval_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* LIKE pattern matching with % (any sequence) and _ (any char), by
   two-pointer backtracking on the last %. This is the reference matcher;
   the compiled form below tokenizes the pattern once and runs the same
   backtracking over the token array. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go p i star_p star_i =
    if i = ns then
      (* consume trailing %s *)
      let rec only_percent p = p = np || (pattern.[p] = '%' && only_percent (p + 1)) in
      if only_percent p then true
      else if star_p >= 0 && star_i < ns then
        go (star_p + 1) (star_i + 1) star_p (star_i + 1)
      else false
    else if p < np && pattern.[p] = '%' then go (p + 1) i p i
    else if p < np && (pattern.[p] = '_' || pattern.[p] = s.[i]) then
      go (p + 1) (i + 1) star_p star_i
    else if star_p >= 0 then go (star_p + 1) (star_i + 1) star_p (star_i + 1)
    else false
  in
  go 0 0 (-1) (-1)

type like_tok = Any_seq | Any_one | Exactly of char

type like_pattern = like_tok array

let compile_like pattern =
  Array.init (String.length pattern) (fun i ->
      match pattern.[i] with
      | '%' -> Any_seq
      | '_' -> Any_one
      | c -> Exactly c)

let like_match_compiled toks s =
  let np = Array.length toks and ns = String.length s in
  let rec go p i star_p star_i =
    if i = ns then
      let rec only_percent p = p = np || (toks.(p) = Any_seq && only_percent (p + 1)) in
      if only_percent p then true
      else if star_p >= 0 && star_i < ns then
        go (star_p + 1) (star_i + 1) star_p (star_i + 1)
      else false
    else if p < np && toks.(p) = Any_seq then go (p + 1) i p i
    else if
      p < np
      && (match toks.(p) with
         | Any_one -> true
         | Exactly c -> c = s.[i]
         | Any_seq -> false)
    then go (p + 1) (i + 1) star_p star_i
    else if star_p >= 0 then go (star_p + 1) (star_i + 1) star_p (star_i + 1)
    else false
  in
  go 0 0 (-1) (-1)

(* [scalar_function_lc] assumes the name is already lowercased — the
   compiler lowercases once per Func node instead of once per row. Error
   messages are unchanged: the interpreter's message also uses the
   lowercased name. *)
let scalar_function_lc lname args =
  match (lname, args) with
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "abs", [ Value.Null ] -> Value.Null
  | "lower", [ Value.Str s ] -> Value.Str (String.lowercase_ascii s)
  | "upper", [ Value.Str s ] -> Value.Str (String.uppercase_ascii s)
  | "length", [ Value.Str s ] -> Value.Int (String.length s)
  | ("lower" | "upper" | "length"), [ Value.Null ] -> Value.Null
  | "round", [ v ] -> (
      match Value.to_float v with
      | Some f -> Value.Int (int_of_float (Float.round f))
      | None -> Value.Null)
  | "floor", [ v ] -> (
      match Value.to_float v with
      | Some f -> Value.Int (int_of_float (Float.floor f))
      | None -> Value.Null)
  | "ceil", [ v ] -> (
      match Value.to_float v with
      | Some f -> Value.Int (int_of_float (Float.ceil f))
      | None -> Value.Null)
  | "coalesce", vs -> (
      match List.find_opt (fun v -> v <> Value.Null) vs with
      | Some v -> v
      | None -> Value.Null)
  | "sqrt", [ v ] -> (
      match Value.to_float v with
      | Some f when f >= 0.0 -> Value.Float (sqrt f)
      | _ -> Value.Null)
  | name, args -> err "unknown function %s/%d" name (List.length args)

let scalar_function name args =
  scalar_function_lc (String.lowercase_ascii name) args

let binop_value op a b =
  match op with
  | Add -> Value.add a b
  | Sub -> Value.sub a b
  | Mul -> Value.mul a b
  | Div -> Value.div a b
  | Eq -> Value.cmp_bool (fun c -> c = 0) a b
  | Neq -> Value.cmp_bool (fun c -> c <> 0) a b
  | Lt -> Value.cmp_bool (fun c -> c < 0) a b
  | Le -> Value.cmp_bool (fun c -> c <= 0) a b
  | Gt -> Value.cmp_bool (fun c -> c > 0) a b
  | Ge -> Value.cmp_bool (fun c -> c >= 0) a b
  | And -> Value.logical_and a b
  | Or -> Value.logical_or a b

let enabled =
  Atomic.make
    (match Sys.getenv_opt "PB_SQL_COMPILE" with
    | Some ("0" | "false" | "off" | "no") -> false
    | _ -> true)

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

type fallback = Value.t array -> Ast.expr -> Value.t

(* The interpreter evaluates n-ary nodes in a specific order (OCaml's
   right-to-left function-argument order for Binop/Between, left-to-right
   List traversal elsewhere). The compiled closures pin the same order with
   explicit lets so that when two subexpressions both raise, the surfaced
   exception is the interpreter's — part of the bit-identical contract. *)
let rec compile ~fallback schema e : Value.t array -> Value.t =
  let c e = compile ~fallback schema e in
  match e with
  | Lit v -> fun _row -> v
  | Col name -> (
      match Schema.index_of schema name with
      | Some i -> fun row -> row.(i)
      | None ->
          (* Unknown/ambiguous column: defer the interpreter's Failure to
             first invocation, so compiling against an empty input does not
             raise where the interpreter would not have evaluated at all. *)
          fun row -> row.(Schema.index_of_exn schema name))
  | Unary_minus e ->
      let ce = c e in
      fun row -> Value.neg (ce row)
  | Not e ->
      let ce = c e in
      fun row -> Value.logical_not (ce row)
  | Binop (op, a, b) ->
      let ca = c a and cb = c b in
      fun row ->
        let vb = cb row in
        let va = ca row in
        binop_value op va vb
  | Between (e, lo, hi) ->
      let ce = c e and clo = c lo and chi = c hi in
      fun row ->
        let v = ce row in
        let upper = Value.cmp_bool (fun c -> c <= 0) v (chi row) in
        let lower = Value.cmp_bool (fun c -> c >= 0) v (clo row) in
        Value.logical_and lower upper
  | In_list (e, items, neg) ->
      let ce = c e and citems = List.map c items in
      fun row ->
        let v = ce row in
        let hit = List.exists (fun ci -> Value.equal v (ci row)) citems in
        Value.Bool (if neg then not hit else hit)
  | In_query _ | Exists _ ->
      (* Subqueries keep the interpreter: they re-enter [select], which may
         be correlated with the database and is not row-local. *)
      fun row -> fallback row e
  | Is_null (e, neg) ->
      let ce = c e in
      fun row ->
        let null = Value.is_null (ce row) in
        Value.Bool (if neg then not null else null)
  | Like (e, pattern, neg) ->
      let ce = c e in
      let toks = compile_like pattern in
      fun row -> (
        match ce row with
        | Value.Null -> Value.Null
        | Value.Str s ->
            let hit = like_match_compiled toks s in
            Value.Bool (if neg then not hit else hit)
        | v -> err "LIKE on non-string value %s" (Value.to_string v))
  | Agg (f, _) -> fun _row -> err "aggregate %s outside GROUP context" (agg_to_string f)
  | Func (name, args) ->
      let lname = String.lowercase_ascii name in
      (* args evaluate left-to-right, as in the interpreter's List.map *)
      (match List.map c args with
      | [ ca ] -> fun row -> scalar_function_lc lname [ ca row ]
      | [ ca; cb ] ->
          fun row ->
            let va = ca row in
            let vb = cb row in
            scalar_function_lc lname [ va; vb ]
      | cargs ->
          fun row -> scalar_function_lc lname (List.map (fun ca -> ca row) cargs))
  | Case (branches, default) ->
      let cbranches = List.map (fun (cond, v) -> (c cond, c v)) branches in
      let cdefault = Option.map c default in
      fun row ->
        let rec walk = function
          | [] -> ( match cdefault with Some ce -> ce row | None -> Value.Null)
          | (ccond, cval) :: rest ->
              if Value.truthy (ccond row) then cval row else walk rest
        in
        walk cbranches

(* No span here: a single expression compiles in microseconds and this
   runs everywhere (including before a query's root span opens); the
   traced compile is the memoized one below, which sits inside a
   statement's span tree. *)
let expr ~fallback schema e =
  if not (Atomic.get enabled) then fun row -> fallback row e
  else compile ~fallback schema e

let predicate ~fallback schema e =
  let f = expr ~fallback schema e in
  fun row -> Value.truthy (f row)

module Memo = struct
  type key = Ast.expr * Schema.column list

  type t = {
    mu : Mutex.t;
    tbl : (key, Value.t array -> Value.t) Hashtbl.t;
  }

  let create () = { mu = Mutex.create (); tbl = Hashtbl.create 32 }

  let size t =
    Mutex.lock t.mu;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.mu;
    n

  let expr t ~fallback schema e =
    let key = (e, Schema.columns schema) in
    Mutex.lock t.mu;
    match Hashtbl.find_opt t.tbl key with
    | Some f ->
        Mutex.unlock t.mu;
        f
    | None ->
        Mutex.unlock t.mu;
        (* Compile outside the lock; on a race the first insert wins so all
           callers share one closure. *)
        let f =
          Trace.with_span ~name:"sql.compile" (fun () ->
              expr ~fallback schema e)
        in
        Mutex.lock t.mu;
        let f =
          match Hashtbl.find_opt t.tbl key with
          | Some g -> g
          | None ->
              Hashtbl.add t.tbl key f;
              f
        in
        Mutex.unlock t.mu;
        f
end
