(* Cooperative governance token. See gov.mli for the contract.

   The representation is built for a poll-at-every-loop-head usage
   pattern: [check] is two atomic loads when nothing has happened
   (latched fate, own cancel flag), the parent chain is walked only for
   cancellation (trees are 2 deep in practice: request token → race-leg
   child), and the wall clock is consulted on a sampled subset of polls
   so a token can be checked every few hundred inner-loop iterations
   without the time syscall dominating. *)

type resource = Milp_nodes | Bf_candidates | Ls_restarts | Sql_rows

let n_resources = 4

let idx = function
  | Milp_nodes -> 0
  | Bf_candidates -> 1
  | Ls_restarts -> 2
  | Sql_rows -> 3

let resource_name = function
  | Milp_nodes -> "milp_nodes"
  | Bf_candidates -> "bf_candidates"
  | Ls_restarts -> "ls_restarts"
  | Sql_rows -> "sql_rows"

type reason = Cancelled | Deadline | Budget of resource

exception Interrupted of reason

let reason_to_string = function
  | Cancelled -> "cancelled"
  | Deadline -> "deadline"
  | Budget r -> "budget:" ^ resource_name r

type t = {
  family : int;  (* unique per root token; children inherit it *)
  deadline : float;  (* absolute gettimeofday instant; infinity = none *)
  limits : int array;  (* per-resource; max_int = unlimited *)
  spent_counters : int Atomic.t array;  (* shared across the family *)
  cancel_flag : bool Atomic.t;
  parent : t option;
  latched : reason option Atomic.t;
  polls : int Atomic.t;  (* throttles clock reads in [check] *)
}

let family_counter = Atomic.make 0

let norm_limit = function
  | Some n when n > 0 -> n
  | Some _ -> max_int (* <= 0 means unlimited *)
  | None -> max_int

let make ~deadline ~limits =
  {
    family = Atomic.fetch_and_add family_counter 1;
    deadline;
    limits;
    spent_counters = Array.init n_resources (fun _ -> Atomic.make 0);
    cancel_flag = Atomic.make false;
    parent = None;
    latched = Atomic.make None;
    polls = Atomic.make 0;
  }

let create ?deadline_in ?deadline_at ?milp_nodes ?bf_candidates ?ls_restarts
    ?sql_rows () =
  let deadline =
    let from_in =
      match deadline_in with
      | Some s -> Unix.gettimeofday () +. s
      | None -> infinity
    in
    let from_at = match deadline_at with Some t -> t | None -> infinity in
    Float.min from_in from_at
  in
  let limits = Array.make n_resources max_int in
  limits.(idx Milp_nodes) <-
    norm_limit (match milp_nodes with Some _ -> milp_nodes | None -> Some 200_000);
  limits.(idx Bf_candidates) <-
    norm_limit
      (match bf_candidates with Some _ -> bf_candidates | None -> Some 5_000_000);
  limits.(idx Ls_restarts) <- norm_limit ls_restarts;
  limits.(idx Sql_rows) <- norm_limit sql_rows;
  make ~deadline ~limits

let unlimited () = make ~deadline:infinity ~limits:(Array.make n_resources max_int)

let child t =
  {
    t with
    cancel_flag = Atomic.make false;
    parent = Some t;
    latched = Atomic.make None;
    polls = Atomic.make 0;
  }

let family_id t = t.family

let cancel t = Atomic.set t.cancel_flag true

let rec cancelled t =
  Atomic.get t.cancel_flag
  || match t.parent with Some p -> cancelled p | None -> false

(* Latch the first observed stop reason; every later poll reports it. *)
let latch t r =
  ignore (Atomic.compare_and_set t.latched None (Some r));
  Atomic.get t.latched

let fate t = Atomic.get t.latched

let over_budget t r =
  let i = idx r in
  t.limits.(i) <> max_int && Atomic.get t.spent_counters.(i) >= t.limits.(i)

(* Consult the clock on the first poll and every 32nd thereafter: loop
   heads poll every couple hundred iterations, so deadline detection
   granularity stays well under a millisecond of work while the common
   poll stays syscall-free. *)
let deadline_passed t =
  t.deadline < infinity
  && Atomic.fetch_and_add t.polls 1 land 31 = 0
  && Unix.gettimeofday () > t.deadline

(* Cancellation and deadline are request-global, so they latch: once
   seen, every later poll (any resource) reports them.  Budget
   exhaustion is deliberately NOT latched and only consulted for the
   resource the caller names: the MILP leg running out of nodes must not
   read as a stop signal to the local-search or SQL loops sharing the
   same token — that per-strategy fallback is the paper's whole hybrid
   design.  Budget checks stay sticky anyway because spend counters only
   grow. *)
let check ?resource t =
  match Atomic.get t.latched with
  | Some _ as r -> r
  | None ->
      if cancelled t then latch t Cancelled
      else if deadline_passed t then latch t Deadline
      else (
        match resource with
        | Some r when over_budget t r -> Some (Budget r)
        | _ -> None)

(* Boundary poll: unlike [check], the clock is read unconditionally —
   this runs once per request/run, not at loop heads, so sampling would
   only cost correctness (a deadline observed solely by child tokens
   must still latch here). *)
let refresh t =
  match Atomic.get t.latched with
  | Some _ as r -> r
  | None ->
      if cancelled t then latch t Cancelled
      else if t.deadline < infinity && Unix.gettimeofday () > t.deadline then
        latch t Deadline
      else None

let tick ?resource t =
  match check ?resource t with None -> () | Some r -> raise (Interrupted r)

let tick_opt ?resource = function None -> () | Some t -> tick ?resource t

let spend t r n =
  ignore (Atomic.fetch_and_add t.spent_counters.(idx r) n)

let spent t r = Atomic.get t.spent_counters.(idx r)

let budget_left t r =
  let i = idx r in
  if t.limits.(i) = max_int then None
  else Some (max 0 (t.limits.(i) - Atomic.get t.spent_counters.(i)))

let remaining_time t =
  if t.deadline = infinity then None
  else Some (Float.max 0.0 (t.deadline -. Unix.gettimeofday ()))
