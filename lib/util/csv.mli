(** Minimal RFC-4180-style CSV support, used by the CLI to load user data
    and by the workload generators to export generated relations. *)

val parse_string : string -> string list list
(** Parse CSV text into rows of fields. Handles quoted fields, embedded
    commas, doubled quotes, and both [\n] and [\r\n] line endings. The
    final row needs no trailing newline. Raises [Failure] on an unclosed
    quote. *)

val parse_file : string -> string list list
(** [parse_string] over a whole file. *)

val escape_field : string -> string
(** Quote a field if it contains a comma, quote, or newline. *)

val row_to_string : string list -> string
(** One record, escaped and comma-joined, without the line ending — the
    streaming unit of {!to_string} (writers append ["\n"] per row). *)

val to_string : string list list -> string
(** Render rows as CSV text with [\n] line endings. *)

val write_file : string -> string list list -> unit
