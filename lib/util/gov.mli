(** Cooperative governance token: one value that carries everything a
    long-running evaluation needs to know about when it must stop —
    a wall-clock deadline, a cancellation flag settable from another
    thread or domain, and per-resource budgets (MILP branch-and-bound
    nodes, brute-force candidates, local-search restarts, SQL rows
    produced).

    Every evaluation loop in the engine polls a token at its loop head:
    MILP node pops, brute-force candidate visits, local-search rounds,
    SQL scan/join/aggregate chunks, and the domain pool between chunks.
    Polling is cheap (two atomic loads on the fast path; the wall clock
    is consulted only on a sampled subset of polls) so the granularity can be
    fine enough that a poison query stops within milliseconds of its
    deadline instead of burning a core to completion.

    Stopping is {e cooperative}: nothing is killed. A strategy that
    observes a stop reason returns its best incumbent so far (the
    serving contract of Brucato et al.'s SIGMOD'16 "Scalable Package
    Queries": bounded resources, interruptible evaluation, best-so-far
    answers), and the engine reports the result as [Cancelled] /
    [Feasible] rather than proven optimal. SQL loops, which have no
    useful partial answer, raise {!Interrupted} instead.

    Tokens form a tree: {!child} makes a token that inherits the
    parent's deadline and {e shares} its budget counters (resources
    spent by any child count against the family total) but has its own
    cancellation flag, so the hybrid race can cancel one leg without
    stopping the other, while cancelling the parent stops everyone. *)

type resource =
  | Milp_nodes  (** branch-and-bound nodes popped *)
  | Bf_candidates  (** brute-force candidate packages checked *)
  | Ls_restarts  (** local-search random restarts begun *)
  | Sql_rows  (** rows produced by SQL operators (scan/join/project) *)

type reason =
  | Cancelled  (** {!cancel} was called on this token or an ancestor *)
  | Deadline  (** the wall-clock deadline passed *)
  | Budget of resource  (** that resource's budget is exhausted *)

exception Interrupted of reason
(** Raised by {!tick} (and by SQL evaluation loops) when the token says
    stop. Strategies with a meaningful best-so-far catch it or use
    {!check} instead. *)

type t

val create :
  ?deadline_in:float ->
  ?deadline_at:float ->
  ?milp_nodes:int ->
  ?bf_candidates:int ->
  ?ls_restarts:int ->
  ?sql_rows:int ->
  unit ->
  t
(** [deadline_in] is seconds from now; [deadline_at] an absolute
    [Unix.gettimeofday] instant (when both are given the earlier wins).
    Budgets [<= 0] mean unlimited. Defaults: [milp_nodes = 200_000] and
    [bf_candidates = 5_000_000] (the engine's historical ad-hoc budgets);
    everything else unlimited, no deadline. So [create ()] reproduces the
    engine's pre-governance behaviour exactly. *)

val unlimited : unit -> t
(** No deadline, no budgets at all — for callers (tests, oracles) that
    must see a complete run. *)

val child : t -> t
(** A token with its own cancellation flag, the parent's deadline and
    budgets, and the parent's {e shared} spend counters. Cancelling the
    parent (or any ancestor) also stops the child; cancelling the child
    does not stop the parent. *)

val family_id : t -> int
(** Process-unique id of the token's root family; {!child} tokens share
    their root's id. Observability keys per-run event streams by it
    (progress recorders survive the hybrid race because both legs'
    child tokens map back to the request's family). *)

val cancel : t -> unit
(** Flip the cancellation flag. Thread/domain/signal-safe; idempotent. *)

val cancelled : t -> bool
(** True once this token or any ancestor has been cancelled. *)

val check : ?resource:resource -> t -> reason option
(** The fast-path poll: [None] = keep going. Cancellation and deadline
    are request-global, so the first observation is latched and every
    later poll reports it. Budget exhaustion is consulted only for the
    [resource] the caller names and is {e not} latched: MILP running out
    of nodes must not read as a stop signal to the local-search or SQL
    loops sharing the token — each strategy polls its own meter. (Budget
    answers stay sticky regardless, because spend counters only grow.) *)

val tick : ?resource:resource -> t -> unit
(** [check] then raise {!Interrupted} on a stop reason. *)

val tick_opt : ?resource:resource -> t option -> unit
(** [tick] when the token is present; no-op on [None] — for plumbing
    through optional [?gov] parameters without a branch at each site. *)

val fate : t -> reason option
(** The latched stop reason — [Cancelled] or [Deadline] — if any poll
    has observed one; never consults the clock itself. This is what the
    engine uses to decide between reporting [Cancelled] and a mere
    budget-exhausted [Feasible] (budget stops are reported by each
    strategy's own outcome, not latched here). *)

val refresh : t -> reason option
(** Like {!check} with no resource, but always consults the wall clock
    (ordinary polls sample it). Called once at a run boundary it makes
    {!fate} reliable even when the run only ever polled {e child}
    tokens — the hybrid race runs its legs under children, whose
    latches are private, so a stop that originated on the request token
    itself would otherwise go unlatched on it. *)

val spend : t -> resource -> int -> unit
(** Record consumption. Counters are shared across the whole token
    family (atomic; safe from worker domains). *)

val spent : t -> resource -> int
val budget_left : t -> resource -> int option
(** Remaining budget, [None] = unlimited. Never negative. *)

val remaining_time : t -> float option
(** Seconds until the deadline, [None] = no deadline. Never negative. *)

val reason_to_string : reason -> string
(** ["cancelled"], ["deadline"], ["budget:milp_nodes"], ... — stable
    strings used by logs, metrics and the wire protocol. *)
