let parse_string text =
  let n = String.length text in
  let rows = ref [] and fields = ref [] in
  let buf = Buffer.create 64 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let rec plain i =
    if i >= n then (if Buffer.length buf > 0 || !fields <> [] then flush_row ())
    else
      match text.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '\n' ->
          flush_row ();
          plain (i + 1)
      | '\r' when i + 1 < n && text.[i + 1] = '\n' ->
          flush_row ();
          plain (i + 2)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv.parse_string: unclosed quote"
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let escape_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quote then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let row_to_string row = String.concat "," (List.map escape_field row)

let to_string rows =
  match rows with
  | [] -> ""
  | _ -> String.concat "\n" (List.map row_to_string rows) ^ "\n"

let write_file path rows =
  let oc = open_out_bin path in
  output_string oc (to_string rows);
  close_out oc
