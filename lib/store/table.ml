module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation
module Metrics = Pb_obs.Metrics

(* A table is its distinct rows, stored column-wise, plus a multiplicity
   per distinct row. Packages are multisets (REPEAT semantics), so
   collapsing duplicates is semantically free — but SQL results must stay
   bit-identical to the row engine, including row *order*, so [order]
   records, for every original position, which distinct row sat there.
   [None] means the relation had no duplicates and the mapping is the
   identity (the common case: it costs nothing). *)
type t = {
  schema : Schema.t;
  total : int;  (* original (expanded) row count *)
  nrows : int;  (* distinct row count *)
  cols : Column.t array;
  mult : int array;  (* per distinct row; all 1 when order = None *)
  order : int array option;  (* original position -> distinct row id *)
  bytes : int;  (* resident-size estimate, fixed at build time *)
}

let m_built =
  Metrics.counter ~help:"Columnar tables built from row relations"
    "pb_store_tables_built_total"

let m_chunks =
  Metrics.counter ~help:"Column chunks scanned by batch kernels"
    "pb_store_chunks_scanned_total"

let bytes_gauge =
  Metrics.gauge ~help:"Bytes resident in columnar tables cached by catalogs"
    "pb_store_bytes_resident"

let resident = Atomic.make 0

let add_resident n =
  let now = Atomic.fetch_and_add resident n + n in
  Metrics.set bytes_gauge (float_of_int (max 0 now))

let tick_chunks n = Metrics.incr ~by:n m_chunks

(* Rows collapse iff bit-identical: floats compare by IEEE bit pattern,
   so two copies of the same nan still collapse while 0. and -0. stay
   distinct — [to_relation] must replay exactly the value that was
   stored, sign bit included. Non-float cells use structural [compare]. *)
module Row_tbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal_cell a b =
    match (a, b) with
    | Value.Float x, Value.Float y ->
        Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
    | _ -> Stdlib.compare a b = 0

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (equal_cell a.(i) b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  let hash row =
    Array.fold_left
      (fun acc cell ->
        let h =
          match cell with
          | Value.Float f -> Hashtbl.hash (Int64.bits_of_float f)
          | c -> Hashtbl.hash c
        in
        (acc * 31) + h)
      17 row
end)

let schema t = t.schema
let total t = t.total
let distinct t = t.nrows
let multiplicity t id = t.mult.(id)
let order t = t.order
let col t j = t.cols.(j)
let arity t = Array.length t.cols
let bytes t = t.bytes
let compressed t = t.order <> None

let of_relation rel =
  let rows = Relation.rows rel in
  let total = Array.length rows in
  let tbl = Row_tbl.create (max 16 total) in
  let order = Array.make total 0 in
  let distinct_rows = Array.make total [||] in
  let mult = Array.make total 0 in
  let next = ref 0 in
  Array.iteri
    (fun pos row ->
      let id =
        match Row_tbl.find_opt tbl row with
        | Some id -> id
        | None ->
            let id = !next in
            incr next;
            Row_tbl.add tbl row id;
            distinct_rows.(id) <- row;
            id
      in
      mult.(id) <- mult.(id) + 1;
      order.(pos) <- id)
    rows;
  let nrows = !next in
  let schema = Relation.schema rel in
  let ncols = Schema.arity schema in
  let cols =
    Array.init ncols (fun j ->
        Column.of_values (Array.init nrows (fun i -> distinct_rows.(i).(j))))
  in
  let mult = Array.sub mult 0 nrows in
  let order = if nrows = total then None else Some order in
  let bytes =
    Array.fold_left (fun acc c -> acc + Column.bytes c) 0 cols
    + (8 * nrows)
    + (match order with Some o -> 8 * Array.length o | None -> 0)
  in
  Metrics.incr m_built;
  { schema; total; nrows; cols; mult; order; bytes }

let get_row t id = Array.init (arity t) (fun j -> Column.get t.cols.(j) id)

(* Shared lazy materialization of distinct rows: duplicates reuse one
   array (relations never mutate rows in place, so sharing is safe). *)
let row_materializer t =
  let cache = Array.make t.nrows None in
  fun id ->
    match cache.(id) with
    | Some row -> row
    | None ->
        let row = get_row t id in
        cache.(id) <- Some row;
        row

let to_relation t =
  let row = row_materializer t in
  let store =
    match t.order with
    | None -> List.init t.nrows row
    | Some order -> Array.to_list (Array.map row order)
  in
  Relation.create t.schema store
