(** Process-wide storage-engine toggle, seeded from the [PB_STORE]
    environment variable ([row] or [columnar]; default [columnar]).
    The row interpreter is the differential oracle: every columnar fast
    path must produce results identical to what the row engine returns
    for the same statement. *)

type t = Row | Columnar

val of_string : string -> t option
val to_string : t -> string

val current : unit -> t
val set : t -> unit

val columnar : unit -> bool
(** [current () = Columnar]. *)
