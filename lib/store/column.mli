(** One attribute of a columnar table over its distinct rows, in a typed
    unboxed layout: [Bigarray] int/float vectors, a byte vector for
    booleans, dictionary-encoded strings, or a boxed [Mixed] fallback for
    columns whose cells mix value constructors. Nulls live in an optional
    byte-per-row side map so the data arrays stay dense. *)

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type like_memo

type t =
  | Ints of { data : ints; nulls : Bytes.t option }
  | Floats of { data : floats; nulls : Bytes.t option }
  | Bools of { data : Bytes.t; nulls : Bytes.t option }
  | Strs of { dict : string array; codes : int array; memo : like_memo }
  | Mixed of Pb_relation.Value.t array

val of_values : Pb_relation.Value.t array -> t
(** Choose the layout from the values present (not the declared type):
    any constructor mix falls back to [Mixed] so reconstruction is always
    exact. Dictionary codes are assigned in first-occurrence order. *)

val get : t -> int -> Pb_relation.Value.t
(** Exact reconstruction of the stored value (including the Int/Float
    distinction). *)

val length : t -> int

val is_null : Bytes.t option -> int -> bool
(** Read a null side map ([None] = no nulls). *)

val like_dict : t -> key:string -> (string array -> bool array) -> bool array
(** Memoized per-dictionary-entry computation (used for LIKE): runs [f]
    over the dictionary once per distinct [key] and caches the result.
    Thread-safe. Raises [Invalid_argument] on non-[Strs] columns. *)

val bytes : t -> int
(** Estimated resident size in bytes. *)
