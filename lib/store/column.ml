module Value = Pb_relation.Value

(* A column holds the values of one attribute over the distinct rows of a
   table, in one of four unboxed typed layouts plus a boxed fallback.  The
   typed layout is chosen from the values actually present, not from the
   declared schema type: DML can smuggle a Float into an INT-declared
   column, and such a column must still round-trip exactly, so any mix of
   value constructors falls back to [Mixed].  Null is represented out of
   band (a byte-per-row map, allocated only when the column has nulls),
   which keeps the data arrays dense for the batch kernels. *)

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Dictionary-encoded strings memoize LIKE-over-dictionary scans: a LIKE
   kernel matches each dictionary entry once and then answers per row by
   code lookup, so the memo turns repeated queries on a high-cardinality
   column from O(rows) matches into O(1) lookups. Guarded by a mutex
   because server threads can scan the same cached table concurrently. *)
type like_memo = { mu : Mutex.t; tbl : (string, bool array) Hashtbl.t }

type t =
  | Ints of { data : ints; nulls : Bytes.t option }
  | Floats of { data : floats; nulls : Bytes.t option }
  | Bools of { data : Bytes.t; nulls : Bytes.t option }
  | Strs of { dict : string array; codes : int array; memo : like_memo }
  | Mixed of Value.t array

let length = function
  | Ints { data; _ } -> Bigarray.Array1.dim data
  | Floats { data; _ } -> Bigarray.Array1.dim data
  | Bools { data; _ } -> Bytes.length data
  | Strs { codes; _ } -> Array.length codes
  | Mixed a -> Array.length a

let of_values (values : Value.t array) =
  let n = Array.length values in
  let ints = ref true
  and floats = ref true
  and bools = ref true
  and strs = ref true
  and has_null = ref false in
  Array.iter
    (fun v ->
      match v with
      | Value.Null -> has_null := true
      | Value.Int _ ->
          floats := false;
          bools := false;
          strs := false
      | Value.Float _ ->
          ints := false;
          bools := false;
          strs := false
      | Value.Bool _ ->
          ints := false;
          floats := false;
          strs := false
      | Value.Str _ ->
          ints := false;
          floats := false;
          bools := false)
    values;
  let nulls () =
    if not !has_null then None
    else begin
      let b = Bytes.make n '\000' in
      Array.iteri
        (fun i v -> if v = Value.Null then Bytes.set b i '\001')
        values;
      Some b
    end
  in
  if !ints then begin
    let data = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
    Array.iteri
      (fun i v -> data.{i} <- (match v with Value.Int x -> x | _ -> 0))
      values;
    Ints { data; nulls = nulls () }
  end
  else if !floats then begin
    let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
    Array.iteri
      (fun i v -> data.{i} <- (match v with Value.Float x -> x | _ -> 0.0))
      values;
    Floats { data; nulls = nulls () }
  end
  else if !bools then begin
    let data = Bytes.make n '\000' in
    Array.iteri
      (fun i v ->
        if (match v with Value.Bool b -> b | _ -> false) then
          Bytes.set data i '\001')
      values;
    Bools { data; nulls = nulls () }
  end
  else if !strs then begin
    let dict_tbl = Hashtbl.create 64 in
    let rev_dict = ref [] and next = ref 0 in
    let codes =
      Array.map
        (fun v ->
          match v with
          | Value.Null -> -1
          | Value.Str s -> (
              match Hashtbl.find_opt dict_tbl s with
              | Some c -> c
              | None ->
                  let c = !next in
                  incr next;
                  Hashtbl.add dict_tbl s c;
                  rev_dict := s :: !rev_dict;
                  c)
          | _ -> -1)
        values
    in
    let dict = Array.of_list (List.rev !rev_dict) in
    Strs
      {
        dict;
        codes;
        memo = { mu = Mutex.create (); tbl = Hashtbl.create 4 };
      }
  end
  else Mixed (Array.copy values)

let is_null nulls i =
  match nulls with None -> false | Some b -> Bytes.get b i = '\001'

let get t i =
  match t with
  | Ints { data; nulls } ->
      if is_null nulls i then Value.Null else Value.Int data.{i}
  | Floats { data; nulls } ->
      if is_null nulls i then Value.Null else Value.Float data.{i}
  | Bools { data; nulls } ->
      if is_null nulls i then Value.Null
      else Value.Bool (Bytes.get data i = '\001')
  | Strs { dict; codes; _ } ->
      let c = codes.(i) in
      if c < 0 then Value.Null else Value.Str dict.(c)
  | Mixed a -> a.(i)

(* [like_dict col ~key f] memoizes [f dict] (a per-dictionary-code match
   table) under [key] (the LIKE pattern). Only valid on [Strs]. *)
let like_dict t ~key f =
  match t with
  | Strs { dict; memo; _ } ->
      Mutex.lock memo.mu;
      let cached = Hashtbl.find_opt memo.tbl key in
      Mutex.unlock memo.mu;
      (match cached with
      | Some hits -> hits
      | None ->
          let hits = f dict in
          Mutex.lock memo.mu;
          (* First writer wins; a racing duplicate computed the same table. *)
          if not (Hashtbl.mem memo.tbl key) then Hashtbl.add memo.tbl key hits;
          Mutex.unlock memo.mu;
          hits)
  | _ -> invalid_arg "Column.like_dict: not a dictionary column"

(* Resident-size estimate in bytes; strings count header + payload, boxed
   fallback values a coarse per-cell figure. Used for the
   pb_store_bytes_resident gauge, not for allocation decisions. *)
let bytes t =
  let word = 8 in
  let null_bytes = function Some b -> Bytes.length b | None -> 0 in
  match t with
  | Ints { data; nulls } -> (word * Bigarray.Array1.dim data) + null_bytes nulls
  | Floats { data; nulls } ->
      (word * Bigarray.Array1.dim data) + null_bytes nulls
  | Bools { data; nulls } -> Bytes.length data + null_bytes nulls
  | Strs { dict; codes; _ } ->
      (word * Array.length codes)
      + Array.fold_left (fun acc s -> acc + String.length s + 24) 0 dict
  | Mixed a ->
      Array.fold_left
        (fun acc v ->
          acc + word
          +
          match v with
          | Value.Str s -> String.length s + 24
          | Value.Float _ -> 16
          | _ -> 0)
        0 a
