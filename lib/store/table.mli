(** A relation stored column-wise with duplicate tuples collapsed into a
    multiplicity column. Reconstruction ({!to_relation}, {!get_row}) is
    exact — values, Int/Float tags, and original row order all survive the
    round trip, which is what lets the columnar engine stay bit-identical
    to the row interpreter. *)

type t

val of_relation : Pb_relation.Relation.t -> t
val to_relation : t -> Pb_relation.Relation.t

val schema : t -> Pb_relation.Schema.t

val total : t -> int
(** Original (expanded) row count. *)

val distinct : t -> int
(** Distinct row count; kernels iterate over this many rows. *)

val multiplicity : t -> int -> int
(** Copies of distinct row [id] in the original relation. *)

val order : t -> int array option
(** Original position -> distinct row id; [None] when the relation had no
    duplicates (identity mapping, multiplicities all 1). *)

val compressed : t -> bool
(** [order t <> None]. *)

val col : t -> int -> Column.t
val arity : t -> int

val get_row : t -> int -> Pb_relation.Value.t array
(** Materialize distinct row [id]. *)

val row_materializer : t -> int -> Pb_relation.Value.t array
(** Like {!get_row} but memoized: duplicates share one array. *)

val bytes : t -> int
(** Resident-size estimate, fixed at build time. *)

val add_resident : int -> unit
(** Adjust the global [pb_store_bytes_resident] gauge (catalogs call this
    when caching / evicting columnar tables; negative to release). *)

val tick_chunks : int -> unit
(** Bump the [pb_store_chunks_scanned_total] counter. *)
