type t = Row | Columnar

let of_string s =
  match String.lowercase_ascii s with
  | "row" | "rows" -> Some Row
  | "columnar" | "column" | "col" -> Some Columnar
  | _ -> None

let to_string = function Row -> "row" | Columnar -> "columnar"

(* Same shape as PB_SQL_COMPILE: an env-seeded Atomic so benches and tests
   flip it at runtime. Columnar is the default; the row interpreter stays
   available as the differential oracle via PB_STORE=row. *)
let mode =
  Atomic.make
    (match Sys.getenv_opt "PB_STORE" with
    | Some s -> ( match of_string s with Some m -> m | None -> Columnar)
    | None -> Columnar)

let current () = Atomic.get mode
let set m = Atomic.set mode m
let columnar () = Atomic.get mode = Columnar
