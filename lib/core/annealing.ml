module Ast = Pb_paql.Ast
module Semantics = Pb_paql.Semantics
module Prng = Pb_util.Prng
module Gov = Pb_util.Gov

type params = {
  seed : int;
  steps : int;
  initial_temperature : float;
  cooling : float;
  objective_weight : float;
}

let default_params =
  {
    seed = 42;
    steps = 20_000;
    initial_temperature = 1.0;
    cooling = 0.9995;
    objective_weight = 0.1;
  }

type outcome = {
  best : Pb_paql.Package.t option;
  best_objective : float option;
  steps_taken : int;
  accepted : int;
  valid_visits : int;
}

(* Violation measured with the same normalization as Local_search, but
   recomputed from scratch: annealing steps are cheap (single-tuple
   deltas) and n is the only scale factor. *)
let violation (c : Coeffs.t) mult =
  match c.formula with
  | Error _ -> if Coeffs.check_mult c mult then 0.0 else 1.0
  | Ok f ->
      let card = Array.fold_left ( + ) 0 mult in
      let rec go = function
        | Coeffs.C_true -> 0.0
        | Coeffs.C_false -> 1.0
        | Coeffs.C_and fs -> List.fold_left (fun a f -> a +. go f) 0.0 fs
        | Coeffs.C_or fs ->
            List.fold_left (fun a f -> Float.min a (go f)) infinity fs
        | Coeffs.C_atom atom -> atom_violation atom card
      and atom_violation atom card =
        let dist cmp lhs rhs =
          let raw =
            match cmp with
            | Pb_paql.Analyze.Le -> lhs -. rhs
            | Pb_paql.Analyze.Lt -> lhs -. rhs +. 1e-12
            | Pb_paql.Analyze.Ge -> rhs -. lhs
            | Pb_paql.Analyze.Gt -> rhs -. lhs +. 1e-12
          in
          Float.max 0.0 (raw /. (1.0 +. Float.abs rhs))
        in
        match atom with
        | Coeffs.C_linear { coef; cmp; rhs; has_sum } ->
            if card = 0 && has_sum then 1.0
            else begin
              let s = ref 0.0 in
              Array.iteri
                (fun i m -> if m > 0 then s := !s +. (float_of_int m *. coef.(i)))
                mult;
              dist cmp !s rhs
            end
        | Coeffs.C_avg { arg; cmp; rhs } ->
            if card = 0 then 1.0
            else begin
              let s = ref 0.0 in
              Array.iteri
                (fun i m -> if m > 0 then s := !s +. (float_of_int m *. arg.(i)))
                mult;
              dist cmp (!s /. float_of_int card) rhs
            end
        | Coeffs.C_ext { maximum; arg; cmp; rhs } ->
            let best = ref nan and seen = ref false in
            Array.iteri
              (fun i m ->
                if m > 0 then
                  if not !seen then (best := arg.(i); seen := true)
                  else if maximum then best := Float.max !best arg.(i)
                  else best := Float.min !best arg.(i))
              mult;
            if not !seen then 1.0 else dist cmp !best rhs
      in
      go f

let objective_term (c : Coeffs.t) mult =
  match c.objective with
  | None | Some None -> 0.0
  | Some (Some (dir, coef)) ->
      let s = ref 0.0 and scale = ref 1.0 in
      Array.iter (fun x -> scale := Float.max !scale (Float.abs x)) coef;
      Array.iteri
        (fun i m -> if m > 0 then s := !s +. (float_of_int m *. coef.(i)))
        mult;
      let normalized = !s /. (!scale *. float_of_int (max 1 c.n)) in
      (match dir with Ast.Maximize -> -.normalized | Ast.Minimize -> normalized)

let energy params c mult =
  violation c mult +. (params.objective_weight *. objective_term c mult)

let search ?(params = default_params) ?gov (c : Coeffs.t) =
  let rng = Prng.create params.seed in
  let n = c.Coeffs.n in
  if n = 0 then
    { best = None; best_objective = None; steps_taken = 0; accepted = 0; valid_visits = 0 }
  else begin
    let bounds = Pruning.cardinality_bounds c in
    let lo = max 0 bounds.Pruning.lo
    and hi = min (n * c.Coeffs.max_mult) bounds.Pruning.hi in
    if lo > hi then
      { best = None; best_objective = None; steps_taken = 0; accepted = 0; valid_visits = 0 }
    else begin
      (* Random start within the pruning bounds. *)
      let mult = Array.make n 0 in
      let start_card = if lo >= hi then lo else Prng.int_in rng lo (min hi (lo + 32)) in
      let placed = ref 0 and attempts = ref 0 in
      while !placed < start_card && !attempts < 50 * (start_card + 1) do
        incr attempts;
        let i = Prng.int rng n in
        if mult.(i) < c.Coeffs.max_mult then begin
          mult.(i) <- mult.(i) + 1;
          incr placed
        end
      done;
      let temperature = ref params.initial_temperature in
      let current_energy = ref (energy params c mult) in
      let accepted = ref 0 and valid_visits = ref 0 in
      let best_mult = ref None and best_obj = ref None in
      let consider () =
        if Coeffs.check_mult c mult then begin
          incr valid_visits;
          let obj = Coeffs.objective_of_mult c mult in
          let dir =
            match c.Coeffs.query.Ast.objective with
            | Some (d, _) -> Some d
            | None -> None
          in
          match (dir, obj, !best_obj) with
          | None, _, _ -> if !best_mult = None then best_mult := Some (Array.copy mult)
          | Some _, None, _ ->
              if !best_mult = None then best_mult := Some (Array.copy mult)
          | Some d, Some v, prev ->
              let better =
                match prev with None -> true | Some p -> Semantics.better d v p
              in
              if better then begin
                best_mult := Some (Array.copy mult);
                best_obj := Some v
              end
        end
      in
      consider ();
      let card = ref (Array.fold_left ( + ) 0 mult) in
      let steps_taken = ref 0 in
      let stopped () =
        match gov with Some g -> Gov.check g <> None | None -> false
      in
      let step = ref 1 in
      while !step <= params.steps && not (!step land 255 = 0 && stopped ()) do
        (* Propose: replace (common), add, or remove. *)
        let kind = Prng.int rng 4 in
        let proposal =
          if kind <= 1 && !card > 0 then begin
            (* replacement: random selected out, random in *)
            let outs = ref [] in
            Array.iteri (fun i m -> if m > 0 then outs := i :: !outs) mult;
            let out = List.nth !outs (Prng.int rng (List.length !outs)) in
            let inn = Prng.int rng n in
            if inn <> out && mult.(inn) < c.Coeffs.max_mult then
              Some ([ out ], [ inn ])
            else None
          end
          else if kind = 2 && !card < hi then begin
            let inn = Prng.int rng n in
            if mult.(inn) < c.Coeffs.max_mult then Some ([], [ inn ]) else None
          end
          else if !card > lo && !card > 0 then begin
            let outs = ref [] in
            Array.iteri (fun i m -> if m > 0 then outs := i :: !outs) mult;
            Some ([ List.nth !outs (Prng.int rng (List.length !outs)) ], [])
          end
          else None
        in
        (match proposal with
        | None -> ()
        | Some (outs, ins) ->
            List.iter (fun i -> mult.(i) <- mult.(i) - 1) outs;
            List.iter (fun i -> mult.(i) <- mult.(i) + 1) ins;
            let delta_card = List.length ins - List.length outs in
            card := !card + delta_card;
            let proposed_energy = energy params c mult in
            let delta = proposed_energy -. !current_energy in
            let accept =
              delta <= 0.0
              || Prng.float rng 1.0 < exp (-.delta /. Float.max 1e-9 !temperature)
            in
            if accept then begin
              incr accepted;
              current_energy := proposed_energy;
              consider ()
            end
            else begin
              (* undo *)
              List.iter (fun i -> mult.(i) <- mult.(i) + 1) outs;
              List.iter (fun i -> mult.(i) <- mult.(i) - 1) ins;
              card := !card - delta_card
            end);
        temperature := !temperature *. params.cooling;
        incr steps_taken;
        incr step
      done;
      {
        best = Option.map (Coeffs.package_of_mult c) !best_mult;
        best_objective = !best_obj;
        steps_taken = !steps_taken;
        accepted = !accepted;
        valid_visits = !valid_visits;
      }
    end
  end
