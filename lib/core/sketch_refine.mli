(** SketchRefine: partition–sketch–refine evaluation for PaQL queries
    over relations far beyond whole-relation MILP reach (Brucato et
    al., SIGMOD'16 "Scalable Package Queries in Relational Database
    Systems").

    Pipeline:

    + {b Partition} (offline, {!Partition}): recursive median splits
      over the constraint attributes ({!Pb_paql.Analyze.aggregate_arguments})
      group the [n] candidates into ~[sqrt n] (or [params.partitions])
      clusters; each cluster is summarised by one representative whose
      constraint coefficients are the cluster means, available in
      multiplicity up to [|cluster| · max_mult].
    + {b Sketch}: two small representative-level MILPs. The {e mean}
      sketch seeds refinement with a per-partition multiplicity vector.
      The {e bound} sketch replaces each partition's coefficient by its
      loosest member value (row-sense-wise min/max, objective-wise
      best), so every real package maps to a feasible bound-sketch
      point: its optimum is a {e sound} bound on the true optimum, and
      its infeasibility {e proves} the query infeasible.
    + {b Refine}: repeatedly pick the unrefined partitions carrying the
      most sketch mass (up to [params.fanout] per round), and for each
      solve a small MILP over that partition's {e real} tuples plus the
      other partitions' representatives, with already-refined tuples
      frozen as constants. Legs fan out on the {!Pb_par.Pool} under
      {!Pb_util.Gov.child} tokens; the deterministic merge commits the
      best leg (ties to the lowest partition), so results are
      bit-identical at any pool size. After every commit the remaining
      representative mass is greedily materialised into nearest-centroid
      real tuples and validated against the compiled constraints —
      the {e anytime incumbent} a governed stop returns.

    Proof semantics: [proven_optimal] is only claimed when it is sound —
    the bound sketch proved infeasibility, an objective-less query got a
    valid package, or the refined objective meets the sound bound (gap
    ≤ 1e-9). Otherwise the result is feasible-with-reported-gap:
    [bound]/[gap] tell the caller how far the answer can be from the
    true optimum ([|bound - objective| / max(1, |objective|)], the
    {!Pb_obs.Progress.gap_of} formula).

    Applicability: conjunctions of linear atoms (COUNT/SUM comparisons,
    AVG folded to linear form). MIN/MAX atoms, disjunctions, opaque
    formulas and non-linear objectives report [applicable = false] with
    a reason, like {!Sql_generate}.

    Determinism caveat (shared with the hybrid race): child tokens share
    the family's budget meters, so when a budget or deadline fires {e
    mid-run} the stopping point depends on leg interleaving. Runs that
    finish within budget are bit-identical at any [PB_DOMAINS]. *)

type params = {
  partitions : int option;
      (** partition count; [None] = ~sqrt of the candidate count *)
  fanout : int;  (** refine legs per round (deterministic, pool-independent) *)
  prepartition : int array array option;
      (** caller-imposed coarse grouping of the candidate indices (the
          shard router passes its hash partitions): each group is
          sub-split by the usual median-split build over its own members,
          so no refine leg straddles a group boundary. The bound sketch
          relaxes {e any} partitioning, so proof semantics are unchanged.
          Unknown/duplicate indices are dropped and uncovered candidates
          form one extra group; [None] = unconstrained build. *)
}

val default_params : params
(** [{ partitions = None; fanout = 4; prepartition = None }] *)

type outcome = {
  best : Pb_paql.Package.t option;
  best_objective : float option;  (** compiled objective of [best] *)
  bound : float option;
      (** sound bound on the true optimum (bound sketch solved to
          proven optimality); [None] when unavailable *)
  gap : float option;  (** relative gap of [best_objective] vs [bound] *)
  proven_optimal : bool;
  applicable : bool;
  reason : string;  (** why not applicable; [""] when applicable *)
  partitions_built : int;
  refine_steps : int;  (** refine-leg MILPs solved *)
  refined_partitions : int;  (** partitions committed to real tuples *)
  stuck_partitions : int;
      (** partitions whose refine legs found no solution *)
  sketch_status : string;  (** mean-sketch MILP status *)
  partition_seconds : float;
  sketch_seconds : float;
  refine_seconds : float;
}

val search :
  params:params ->
  pool:Pb_par.Pool.t ->
  gov:Pb_util.Gov.t ->
  Coeffs.t ->
  outcome
(** Run the pipeline. Cooperative: polls [gov] at round boundaries and
    threads child tokens into every MILP, so cancellation, deadline and
    the [Milp_nodes] budget stop in-flight legs; all legs are joined
    before returning (no orphaned solves). On a governed stop the best
    incumbent found so far is returned. *)
