module Analyze = Pb_paql.Analyze
module Ast = Pb_paql.Ast
module Package = Pb_paql.Package
module Semantics = Pb_paql.Semantics
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Value = Pb_relation.Value
module Prng = Pb_util.Prng
module Progress = Pb_obs.Progress
module Gov = Pb_util.Gov

type params = {
  seed : int;
  restarts : int;
  max_rounds : int;
  replacement_k : int;
  use_sql_neighborhood : bool;
  sample_cap : int;
}

let default_params =
  {
    seed = 42;
    restarts = 3;
    max_rounds = 200;
    replacement_k = 1;
    use_sql_neighborhood = true;
    sample_cap = 4096;
  }

type stats = {
  rounds : int;
  sql_queries : int;
  pairs_examined : int;
  restarts_used : int;
}

type outcome = {
  best : Pb_paql.Package.t option;
  best_objective : float option;
  stats : stats;
}

(* ---- Indexed formula: atoms pulled into a flat array so that running
   aggregate sums can be maintained incrementally across moves. -------- *)

type iformula =
  | I_true
  | I_false
  | I_atom of int
  | I_and of iformula list
  | I_or of iformula list

type indexed = { slots : Coeffs.compiled_atom array; body : iformula }

let index_formula f =
  let slots = ref [] and count = ref 0 in
  let rec go = function
    | Coeffs.C_true -> I_true
    | Coeffs.C_false -> I_false
    | Coeffs.C_atom a ->
        let id = !count in
        incr count;
        slots := a :: !slots;
        I_atom id
    | Coeffs.C_and fs -> I_and (List.map go fs)
    | Coeffs.C_or fs -> I_or (List.map go fs)
  in
  let body = go f in
  { slots = Array.of_list (List.rev !slots); body }

(* Per-atom running sum for a multiplicity vector: Σ mult·coef for linear
   atoms, Σ mult·arg for AVG; extremum atoms are evaluated from scratch. *)
let recompute_sums indexed mult =
  Array.map
    (fun atom ->
      match atom with
      | Coeffs.C_linear { coef; _ } ->
          let s = ref 0.0 in
          Array.iteri
            (fun i m -> if m > 0 then s := !s +. (float_of_int m *. coef.(i)))
            mult;
          !s
      | Coeffs.C_avg { arg; _ } ->
          let s = ref 0.0 in
          Array.iteri
            (fun i m -> if m > 0 then s := !s +. (float_of_int m *. arg.(i)))
            mult;
          !s
      | Coeffs.C_ext _ -> 0.0)
    indexed.slots

let atom_delta atom ~outs ~ins =
  let per_tuple =
    match atom with
    | Coeffs.C_linear { coef; _ } -> Some coef
    | Coeffs.C_avg { arg; _ } -> Some arg
    | Coeffs.C_ext _ -> None
  in
  match per_tuple with
  | None -> 0.0
  | Some values ->
      let d = ref 0.0 in
      List.iter (fun i -> d := !d -. values.(i)) outs;
      List.iter (fun i -> d := !d +. values.(i)) ins;
      !d

(* Violation of one atom given its (possibly shifted) sum, the package
   cardinality, and — for extremum atoms — the multiplicity vector. All
   violations are normalized by 1 + |rhs| so constraints on different
   scales mix sanely in the repair objective. *)
let atom_violation atom ~sum ~card ~mult =
  let dist cmp lhs rhs =
    let raw =
      match cmp with
      | Analyze.Le -> lhs -. rhs
      | Analyze.Lt -> lhs -. rhs +. 1e-12
      | Analyze.Ge -> rhs -. lhs
      | Analyze.Gt -> rhs -. lhs +. 1e-12
    in
    Float.max 0.0 (raw /. (1.0 +. Float.abs rhs))
  in
  match atom with
  | Coeffs.C_linear { cmp; rhs; has_sum; _ } ->
      if card = 0 && has_sum then 1.0 else dist cmp sum rhs
  | Coeffs.C_avg { cmp; rhs; _ } ->
      if card = 0 then 1.0 else dist cmp (sum /. float_of_int card) rhs
  | Coeffs.C_ext { maximum; arg; cmp; rhs } ->
      let best = ref nan and seen = ref false in
      Array.iteri
        (fun i m ->
          if m > 0 then
            if not !seen then begin
              best := arg.(i);
              seen := true
            end
            else if maximum then best := Float.max !best arg.(i)
            else best := Float.min !best arg.(i))
        mult;
      if not !seen then 1.0 else dist cmp !best rhs

let rec formula_violation indexed sums ~card ~mult = function
  | I_true -> 0.0
  | I_false -> 1.0
  | I_atom id ->
      atom_violation indexed.slots.(id) ~sum:sums.(id) ~card ~mult
  | I_and fs ->
      List.fold_left
        (fun acc f -> acc +. formula_violation indexed sums ~card ~mult f)
        0.0 fs
  | I_or fs ->
      List.fold_left
        (fun acc f -> Float.min acc (formula_violation indexed sums ~card ~mult f))
        infinity fs

(* ---- SQL neighbourhood (§4.2) -------------------------------------- *)

let tmp_p0 = "__pb_p0"
let tmp_cand = "__pb_cand"

(* Per-atom value column name in the temp tables. *)
let acol j = Printf.sprintf "a%d" j

let install_temp_tables db (c : Coeffs.t) indexed pkg =
  let natoms = Array.length indexed.slots in
  let per_tuple j i =
    match indexed.slots.(j) with
    | Coeffs.C_linear { coef; _ } -> coef.(i)
    | Coeffs.C_avg { arg; _ } -> arg.(i)
    | Coeffs.C_ext { arg; _ } -> arg.(i)
  in
  let atom_cols =
    List.init natoms (fun j -> { Schema.name = acol j; ty = Value.T_float })
  in
  let p0_schema =
    Schema.make
      ({ Schema.name = "pos"; ty = Value.T_int }
       :: { Schema.name = "cand"; ty = Value.T_int }
       :: atom_cols)
  in
  let p0_rows =
    List.mapi
      (fun pos i ->
        Array.of_list
          (Value.Int pos :: Value.Int i
          :: List.init natoms (fun j -> Value.Float (per_tuple j i))))
      (Package.indices pkg)
  in
  Pb_sql.Database.put db tmp_p0 (Relation.create p0_schema p0_rows);
  let cand_schema =
    Schema.make
      ({ Schema.name = "cand"; ty = Value.T_int }
       :: { Schema.name = "mult"; ty = Value.T_int }
       :: atom_cols)
  in
  let cand_rows =
    List.init c.n (fun i ->
        Array.of_list
          (Value.Int i
          :: Value.Int (Package.multiplicity pkg i)
          :: List.init natoms (fun j -> Value.Float (per_tuple j i))))
  in
  Pb_sql.Database.put db tmp_cand (Relation.create cand_schema cand_rows)

let fnum x = Printf.sprintf "%.12g" x

(* WHERE fragment expressing that the k-replacement keeps (the SQL-
   expressible part of) the formula satisfied. [sums] and [card] describe
   the current package. *)
let rec sql_condition indexed sums ~card ~k body =
  let delta j =
    let outs =
      List.init k (fun t -> Printf.sprintf " - o%d.%s" (t + 1) (acol j))
    in
    let ins =
      List.init k (fun t -> Printf.sprintf " + i%d.%s" (t + 1) (acol j))
    in
    fnum sums.(j) ^ String.concat "" outs ^ String.concat "" ins
  in
  match body with
  | I_true -> "TRUE"
  | I_false -> "FALSE"
  | I_and fs ->
      "("
      ^ String.concat " AND "
          (List.map (sql_condition indexed sums ~card ~k) fs)
      ^ ")"
  | I_or fs ->
      "("
      ^ String.concat " OR "
          (List.map (sql_condition indexed sums ~card ~k) fs)
      ^ ")"
  | I_atom j -> (
      match indexed.slots.(j) with
      | Coeffs.C_linear { cmp; rhs; _ } ->
          Printf.sprintf "(%s %s %s)" (delta j) (Analyze.cmp_to_string cmp)
            (fnum rhs)
      | Coeffs.C_avg { cmp; rhs; _ } ->
          (* Cardinality is unchanged by a replacement, so AVG cmp rhs
             becomes SUM cmp rhs*card. *)
          Printf.sprintf "(%s %s %s)" (delta j) (Analyze.cmp_to_string cmp)
            (fnum (rhs *. float_of_int card))
      | Coeffs.C_ext _ ->
          (* Not expressible as a join predicate; over-approximate and let
             the compiled re-validation filter the results. *)
          "TRUE")

let build_neighborhood_sql indexed sums ~card ~k ~max_mult body =
  let froms =
    List.init k (fun t -> Printf.sprintf "%s o%d" tmp_p0 (t + 1))
    @ List.init k (fun t -> Printf.sprintf "%s i%d" tmp_cand (t + 1))
  in
  let selects =
    List.init k (fun t -> Printf.sprintf "o%d.pos AS out%d" (t + 1) (t + 1))
    @ List.init k (fun t -> Printf.sprintf "i%d.cand AS in%d" (t + 1) (t + 1))
  in
  let guards = ref [] in
  (* Distinct package positions leave, in canonical order. *)
  for t = 1 to k - 1 do
    guards := Printf.sprintf "o%d.pos < o%d.pos" t (t + 1) :: !guards
  done;
  (* Distinct candidates enter, in canonical order. *)
  for t = 1 to k - 1 do
    guards := Printf.sprintf "i%d.cand < i%d.cand" t (t + 1) :: !guards
  done;
  (* Entering tuples must have spare multiplicity and differ from every
     leaving occurrence (a conservative under-approximation for REPEAT;
     see the interface documentation). *)
  for t = 1 to k do
    guards := Printf.sprintf "i%d.mult < %d" t max_mult :: !guards;
    for s = 1 to k do
      guards := Printf.sprintf "i%d.cand <> o%d.cand" t s :: !guards
    done
  done;
  let condition = sql_condition indexed sums ~card ~k body in
  Printf.sprintf "SELECT %s FROM %s WHERE %s"
    (String.concat ", " selects)
    (String.concat ", " froms)
    (String.concat " AND " (condition :: List.rev !guards))

let sql_replacements ?gov _db (c : Coeffs.t) pkg ~k =
  if k < 1 || k > 3 then invalid_arg "sql_replacements: k must be in 1..3";
  if Package.cardinality pkg < k then
    invalid_arg "sql_replacements: package smaller than k";
  let indexed =
    match c.formula with
    | Ok f -> index_formula f
    | Error _ -> index_formula Coeffs.C_true
  in
  let mult = Package.multiplicities pkg in
  let sums = recompute_sums indexed mult in
  let card = Package.cardinality pkg in
  (* The neighbourhood query's FROM references only the two temp tables
     (every needed per-tuple value is precomputed into their columns), so
     they live in a private scratch database: the shared catalog is never
     mutated, which lets the engine's hybrid strategy run this search on
     one domain while an exact leg reads the shared database on another. *)
  let scratch = Pb_sql.Database.create () in
  install_temp_tables scratch c indexed pkg;
  let sql =
    build_neighborhood_sql indexed sums ~card ~k ~max_mult:c.max_mult
      indexed.body
  in
  let result =
    match Pb_sql.Executor.execute_sql ?gov scratch sql with
    | Pb_sql.Executor.Rows rel -> rel
    | _ -> assert false
  in
  let positions = Array.of_list (Package.indices pkg) in
  let moves =
    List.filter_map
      (fun row ->
        let int_at idx =
          match Value.to_int row.(idx) with Some v -> v | None -> assert false
        in
        let outs = List.init k (fun t -> positions.(int_at t)) in
        let ins = List.init k (fun t -> int_at (k + t)) in
        (* Re-validate against the full (possibly non-linear) semantics. *)
        let trial = Array.copy mult in
        List.iter (fun i -> trial.(i) <- trial.(i) - 1) outs;
        List.iter (fun i -> trial.(i) <- trial.(i) + 1) ins;
        if Array.exists (fun m -> m < 0) trial then None
        else if Coeffs.check_mult c trial then Some (outs, ins)
        else None)
      (Relation.to_list result)
  in
  (moves, sql)

(* ---- Hill-climbing driver ------------------------------------------ *)

type search_state = {
  coeffs : Coeffs.t;
  indexed : indexed;
  mult : int array;
  mutable card : int;
  mutable sums : float array;
  mutable total_rounds : int;
  mutable sql_queries : int;
  mutable pairs : int;
}

let state_violation st =
  formula_violation st.indexed st.sums ~card:st.card ~mult:st.mult
    st.indexed.body

let apply_move st ~outs ~ins =
  List.iter (fun i -> st.mult.(i) <- st.mult.(i) - 1) outs;
  List.iter (fun i -> st.mult.(i) <- st.mult.(i) + 1) ins;
  st.card <- st.card - List.length outs + List.length ins;
  Array.iteri
    (fun j _ ->
      st.sums.(j) <-
        st.sums.(j) +. atom_delta st.indexed.slots.(j) ~outs ~ins)
    st.sums

let move_ok st ~outs ~ins =
  (* Multiplicity legality only; constraint quality is scored separately. *)
  let trial = Hashtbl.create 8 in
  let get i =
    match Hashtbl.find_opt trial i with
    | Some v -> v
    | None -> st.mult.(i)
  in
  List.for_all
    (fun i ->
      let v = get i - 1 in
      Hashtbl.replace trial i v;
      v >= 0)
    outs
  && List.for_all
       (fun i ->
         let v = get i + 1 in
         Hashtbl.replace trial i v;
         v <= st.coeffs.max_mult)
       ins

(* Score a move by (violation after, objective after); lower violation
   wins, objective breaks ties. *)
let move_score st dir_opt ~outs ~ins =
  apply_move st ~outs ~ins;
  let v = state_violation st in
  let obj =
    match dir_opt with
    | None -> 0.0
    | Some dir -> (
        match Coeffs.objective_of_mult st.coeffs st.mult with
        | Some x -> ( match dir with Ast.Maximize -> x | Ast.Minimize -> -.x)
        | None -> (
            match
              Semantics.objective_value ~db:st.coeffs.Coeffs.db st.coeffs.query
                (Coeffs.package_of_mult st.coeffs st.mult)
            with
            | Some x -> (
                match dir with Ast.Maximize -> x | Ast.Minimize -> -.x)
            | None -> neg_infinity))
  in
  (* Undo. *)
  apply_move st ~outs:ins ~ins:outs;
  (v, obj)

let candidate_moves st rng ~bounds ~sample_cap =
  let n = st.coeffs.n in
  let support = ref [] in
  Array.iteri (fun i m -> if m > 0 then support := i :: !support) st.mult;
  let support = Array.of_list !support in
  let moves = ref [] and count = ref 0 in
  let push m =
    if !count < sample_cap then begin
      moves := m :: !moves;
      incr count
    end
  in
  let out_budget = max 1 (sample_cap / (max 1 n)) in
  let outs =
    if Array.length support <= out_budget then support
    else begin
      let copy = Array.copy support in
      Prng.shuffle rng copy;
      Array.sub copy 0 out_budget
    end
  in
  (* Replacements. *)
  Array.iter
    (fun out ->
      for inn = 0 to n - 1 do
        if inn <> out && st.mult.(inn) < st.coeffs.max_mult then
          push ([ out ], [ inn ])
      done)
    outs;
  (* Cardinality moves, when the pruning bounds leave room. *)
  if st.card + 1 <= bounds.Pruning.hi then
    for inn = 0 to n - 1 do
      if st.mult.(inn) < st.coeffs.max_mult then push ([], [ inn ])
    done;
  if st.card - 1 >= bounds.Pruning.lo then
    Array.iter (fun out -> push ([ out ], [])) support;
  !moves

let random_start (c : Coeffs.t) rng ~bounds =
  let nm = c.n * c.max_mult in
  let lo = max 0 bounds.Pruning.lo and hi = min nm bounds.Pruning.hi in
  let card = if lo >= hi then lo else Prng.int_in rng lo (min hi (lo + 64)) in
  let mult = Array.make c.n 0 in
  let placed = ref 0 and attempts = ref 0 in
  while !placed < card && !attempts < 100 * (card + 1) do
    incr attempts;
    let i = Prng.int rng (max 1 c.n) in
    if c.n > 0 && mult.(i) < c.max_mult then begin
      mult.(i) <- mult.(i) + 1;
      incr placed
    end
  done;
  mult

let search ?(params = default_params) ?gov db (c : Coeffs.t) =
  (* Round-level poll: cancellation or deadline only.  The restart loop
     additionally meters the token's [Ls_restarts] budget. *)
  let cancel () = match gov with Some g -> Gov.check g <> None | None -> false in
  let restart_stopped () =
    match gov with
    | Some g -> Gov.check ~resource:Gov.Ls_restarts g <> None
    | None -> false
  in
  let rng = Prng.create params.seed in
  let indexed =
    match c.formula with
    | Ok f -> index_formula f
    | Error _ -> index_formula Coeffs.C_true
  in
  let opaque = Result.is_error c.formula in
  let bounds = Pruning.cardinality_bounds c in
  let dir_opt =
    match c.query.objective with Some (d, _) -> Some d | None -> None
  in
  let best_mult = ref None and best_obj = ref None in
  let st =
    {
      coeffs = c;
      indexed;
      mult = Array.make c.n 0;
      card = 0;
      sums = [||];
      total_rounds = 0;
      sql_queries = 0;
      pairs = 0;
    }
  in
  let is_valid_now () =
    if opaque then Coeffs.check_mult c st.mult
    else state_violation st <= 1e-12 && Coeffs.check_mult c st.mult
  in
  let consider_current () =
    if is_valid_now () then begin
      let obj = Coeffs.objective_of_mult c st.mult in
      let obj =
        match (obj, dir_opt) with
        | None, Some _ ->
            Semantics.objective_value ~db:c.Coeffs.db c.query
              (Coeffs.package_of_mult c st.mult)
        | o, _ -> o
      in
      match (dir_opt, obj, !best_obj) with
      | None, _, _ ->
          if !best_mult = None then best_mult := Some (Array.copy st.mult)
      | Some _, None, _ ->
          if !best_mult = None then best_mult := Some (Array.copy st.mult)
      | Some dir, Some v, prev ->
          let better_than_prev =
            match prev with None -> true | Some p -> Semantics.better dir v p
          in
          if better_than_prev then begin
            best_mult := Some (Array.copy st.mult);
            best_obj := Some v;
            match gov with
            | Some g ->
                Progress.incumbent ~key:(Gov.family_id g)
                  ~strategy:"local-search" ~nodes:st.total_rounds v
            | None -> ()
          end
    end
  in
  let restarts_used = ref 0 in
  (try
  if bounds.Pruning.lo <= bounds.Pruning.hi && c.n > 0 then
    for _restart = 1 to params.restarts do
      if not (restart_stopped ()) then begin
      incr restarts_used;
      (match gov with Some g -> Gov.spend g Gov.Ls_restarts 1 | None -> ());
      let start = random_start c rng ~bounds in
      Array.blit start 0 st.mult 0 c.n;
      st.card <- Array.fold_left ( + ) 0 st.mult;
      st.sums <- recompute_sums indexed st.mult;
      (* Repair phase: greedy violation descent. *)
      let rounds = ref 0 in
      let stuck = ref false in
      while
        (not (is_valid_now ()))
        && !rounds < params.max_rounds
        && (not !stuck)
        && not (cancel ())
      do
        incr rounds;
        st.total_rounds <- st.total_rounds + 1;
        let current = state_violation st in
        let moves =
          candidate_moves st rng ~bounds ~sample_cap:params.sample_cap
        in
        st.pairs <- st.pairs + List.length moves;
        let best_move = ref None and best_v = ref current in
        List.iter
          (fun (outs, ins) ->
            if move_ok st ~outs ~ins then begin
              let v, _ = move_score st None ~outs ~ins in
              if v < !best_v -. 1e-12 then begin
                best_v := v;
                best_move := Some (outs, ins)
              end
            end)
          moves;
        match !best_move with
        | Some (outs, ins) -> apply_move st ~outs ~ins
        | None ->
            if opaque then begin
              (* No gradient to follow: random restart-ish kick. *)
              match moves with
              | [] -> stuck := true
              | ms ->
                  let arr = Array.of_list ms in
                  let outs, ins = Prng.choice rng arr in
                  if move_ok st ~outs ~ins then apply_move st ~outs ~ins
                  else stuck := true
            end
            else stuck := true
      done;
      consider_current ();
      (* Improvement phase: best objective-improving valid replacement. *)
      if is_valid_now () && dir_opt <> None then begin
        let improving = ref true and rounds = ref 0 in
        while !improving && !rounds < params.max_rounds && not (cancel ()) do
          incr rounds;
          st.total_rounds <- st.total_rounds + 1;
          improving := false;
          let replacement_moves =
            if params.use_sql_neighborhood && st.card >= params.replacement_k
            then begin
              st.sql_queries <- st.sql_queries + 1;
              let pkg = Coeffs.package_of_mult c st.mult in
              let moves, _ =
                sql_replacements ?gov db c pkg ~k:params.replacement_k
              in
              moves
            end
            else
              List.filter
                (fun (outs, ins) ->
                  outs <> [] && ins <> []
                  && move_ok st ~outs ~ins
                  &&
                  let v, _ = move_score st None ~outs ~ins in
                  v <= 1e-12)
                (candidate_moves st rng ~bounds ~sample_cap:params.sample_cap)
          in
          (* Also consider growing/shrinking the package when the COUNT
             constraints leave slack — the paper notes the neighbourhood
             query "can be modified to explore packages of different
             cardinalities in a straightforward way". *)
          let cardinality_moves =
            let moves = ref [] in
            if st.card + 1 <= bounds.Pruning.hi then
              for inn = 0 to c.Coeffs.n - 1 do
                if st.mult.(inn) < c.Coeffs.max_mult then
                  moves := ([], [ inn ]) :: !moves
              done;
            if st.card - 1 >= bounds.Pruning.lo then
              Array.iteri
                (fun out m -> if m > 0 then moves := ([ out ], []) :: !moves)
                st.mult;
            List.filter
              (fun (outs, ins) ->
                move_ok st ~outs ~ins
                &&
                let v, _ = move_score st None ~outs ~ins in
                v <= 1e-12)
              !moves
          in
          let valid_moves = replacement_moves @ cardinality_moves in
          st.pairs <- st.pairs + List.length valid_moves;
          let dir = Option.get dir_opt in
          let current_obj =
            match Coeffs.objective_of_mult c st.mult with
            | Some v -> ( match dir with Ast.Maximize -> v | Ast.Minimize -> -.v)
            | None -> neg_infinity
          in
          let best_move = ref None and best_gain = ref current_obj in
          List.iter
            (fun (outs, ins) ->
              if move_ok st ~outs ~ins then begin
                let v, obj = move_score st (Some dir) ~outs ~ins in
                if v <= 1e-12 && obj > !best_gain +. 1e-9 then begin
                  best_gain := obj;
                  best_move := Some (outs, ins)
                end
              end)
            valid_moves;
          match !best_move with
          | Some (outs, ins) ->
              apply_move st ~outs ~ins;
              improving := true;
              consider_current ()
          | None -> ()
        done
      end
      end
    done
  with Gov.Interrupted _ ->
    (* The neighbourhood SQL query hit the stop mid-statement; keep the
       best package found so far, like any other cancellation. *)
    ());
  {
    best = Option.map (Coeffs.package_of_mult c) !best_mult;
    best_objective = !best_obj;
    stats =
      {
        rounds = st.total_rounds;
        sql_queries = st.sql_queries;
        pairs_examined = st.pairs;
        restarts_used = !restarts_used;
      };
  }
