module Analyze = Pb_paql.Analyze
module Ast = Pb_paql.Ast
module Gov = Pb_util.Gov
module Semantics = Pb_paql.Semantics
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Value = Pb_relation.Value

type params = { max_width : int; max_join_rows : float }

let default_params = { max_width = 4; max_join_rows = 2e6 }

type outcome = {
  best : Pb_paql.Package.t option;
  best_objective : float option;
  queries_issued : int;
  sql : string list;
  applicable : bool;
  reason : string;
}

let not_applicable reason =
  {
    best = None;
    best_objective = None;
    queries_issued = 0;
    sql = [];
    applicable = false;
    reason;
  }

let tmp_table = "__pb_gen"

let acol j = Printf.sprintf "a%d" j

let fnum x = Printf.sprintf "%.12g" x

(* Flatten the compiled formula's atoms so each gets a value column. *)
let rec collect_atoms acc = function
  | Coeffs.C_true | Coeffs.C_false -> acc
  | Coeffs.C_atom a -> a :: acc
  | Coeffs.C_and fs | Coeffs.C_or fs -> List.fold_left collect_atoms acc fs

let atom_values atom =
  match atom with
  | Coeffs.C_linear { coef; _ } -> coef
  | Coeffs.C_avg { arg; _ } -> arg
  | Coeffs.C_ext { arg; _ } -> arg

(* SQL condition for a formula over aliases r1..rc; [atom_id] maps the
   physical atom to its column index. *)
let rec condition_of ~atom_col ~card formula =
  match formula with
  | Coeffs.C_true -> "TRUE"
  | Coeffs.C_false -> "FALSE"
  | Coeffs.C_and fs ->
      "("
      ^ String.concat " AND " (List.map (condition_of ~atom_col ~card) fs)
      ^ ")"
  | Coeffs.C_or fs ->
      "("
      ^ String.concat " OR " (List.map (condition_of ~atom_col ~card) fs)
      ^ ")"
  | Coeffs.C_atom atom -> (
      let j = atom_col atom in
      let sum =
        String.concat " + "
          (List.init card (fun t -> Printf.sprintf "r%d.%s" (t + 1) (acol j)))
      in
      match atom with
      | Coeffs.C_linear { cmp; rhs; _ } ->
          Printf.sprintf "(%s %s %s)" sum (Analyze.cmp_to_string cmp) (fnum rhs)
      | Coeffs.C_avg { cmp; rhs; _ } ->
          Printf.sprintf "(%s %s %s)" sum (Analyze.cmp_to_string cmp)
            (fnum (rhs *. float_of_int card))
      | Coeffs.C_ext { maximum; cmp; rhs; _ } ->
          let witness_side =
            match (maximum, cmp) with
            | false, (Analyze.Le | Analyze.Lt) -> true
            | true, (Analyze.Ge | Analyze.Gt) -> true
            | _ -> false
          in
          let per_alias t =
            Printf.sprintf "r%d.%s %s %s" (t + 1) (acol j)
              (Analyze.cmp_to_string cmp) (fnum rhs)
          in
          let parts = List.init card per_alias in
          if witness_side then "(" ^ String.concat " OR " parts ^ ")"
          else "(" ^ String.concat " AND " parts ^ ")")

let search ?(params = default_params) ?gov db (c : Coeffs.t) =
  match c.Coeffs.formula with
  | Error reason -> not_applicable ("formula not linearizable: " ^ reason)
  | Ok formula -> (
      if c.Coeffs.max_mult > 1 then not_applicable "REPEAT not supported"
      else
        match c.Coeffs.objective with
        | Some None -> not_applicable "objective not linearizable"
        | (None | Some (Some _)) as objective -> (
            let bounds = Pruning.cardinality_bounds c in
            let lo = max 0 bounds.Pruning.lo
            and hi = min c.Coeffs.n bounds.Pruning.hi in
            if lo > hi then
              {
                (not_applicable "") with
                applicable = true;
                reason = "pruning bounds empty";
              }
            else if hi > params.max_width then
              not_applicable
                (Printf.sprintf "cardinality bound %d exceeds max join width %d"
                   hi params.max_width)
            else if
              float_of_int c.Coeffs.n ** float_of_int hi > params.max_join_rows
            then
              not_applicable
                (Printf.sprintf "n^%d exceeds the join-row budget" hi)
            else begin
              (* Install the candidate table with per-atom value columns
                 and the objective column. *)
              let atoms = List.rev (collect_atoms [] formula) in
              let atom_col atom =
                let rec find i = function
                  | [] -> assert false
                  | a :: rest -> if a == atom then i else find (i + 1) rest
                in
                find 0 atoms
              in
              let natoms = List.length atoms in
              let obj_coef =
                match objective with
                | Some (Some (_, coef)) -> Some coef
                | _ -> None
              in
              let columns =
                { Schema.name = "cand"; ty = Value.T_int }
                :: List.init natoms (fun j ->
                       { Schema.name = acol j; ty = Value.T_float })
                @ [ { Schema.name = "obj"; ty = Value.T_float } ]
              in
              let values = List.map atom_values atoms in
              let rows =
                List.init c.Coeffs.n (fun i ->
                    Array.of_list
                      (Value.Int i
                      :: List.map (fun v -> Value.Float v.(i)) values
                      @ [
                          Value.Float
                            (match obj_coef with
                            | Some coef -> coef.(i)
                            | None -> 0.0);
                        ]))
              in
              Pb_sql.Database.put db tmp_table
                (Relation.create (Schema.make columns) rows);
              let issued = ref [] in
              let best_mult = ref None and best_obj = ref None in
              let dir =
                match c.Coeffs.query.Ast.objective with
                | Some (d, _) -> Some d
                | None -> None
              in
              let consider mult =
                if Coeffs.check_mult c mult then begin
                  let obj = Coeffs.objective_of_mult c mult in
                  match (dir, obj, !best_obj) with
                  | None, _, _ ->
                      if !best_mult = None then best_mult := Some mult
                  | Some _, None, _ ->
                      if !best_mult = None then best_mult := Some mult
                  | Some d, Some v, prev ->
                      let better =
                        match prev with
                        | None -> true
                        | Some p -> Semantics.better d v p
                      in
                      if better then begin
                        best_mult := Some mult;
                        best_obj := Some v
                      end
                end
              in
              let interrupted = ref false in
              Fun.protect
                ~finally:(fun () -> Pb_sql.Database.drop db tmp_table)
                (fun () ->
                  try
                  for card = lo to hi do
                    (match gov with
                    | Some g when Gov.check g <> None ->
                        raise (Gov.Interrupted (Option.get (Gov.check g)))
                    | _ -> ());
                    if card = 0 then
                      (* The empty package needs no query. *)
                      consider (Array.make c.Coeffs.n 0)
                    else begin
                      let aliases =
                        List.init card (fun t ->
                            Printf.sprintf "%s r%d" tmp_table (t + 1))
                      in
                      let selects =
                        List.init card (fun t ->
                            Printf.sprintf "r%d.cand AS c%d" (t + 1) (t + 1))
                      in
                      let dedup =
                        List.init (card - 1) (fun t ->
                            Printf.sprintf "r%d.cand < r%d.cand" (t + 1) (t + 2))
                      in
                      let where =
                        String.concat " AND "
                          (condition_of ~atom_col ~card formula :: dedup)
                      in
                      let order =
                        match dir with
                        | Some Ast.Maximize ->
                            Printf.sprintf " ORDER BY %s DESC"
                              (String.concat " + "
                                 (List.init card (fun t ->
                                      Printf.sprintf "r%d.obj" (t + 1))))
                        | Some Ast.Minimize ->
                            Printf.sprintf " ORDER BY %s ASC"
                              (String.concat " + "
                                 (List.init card (fun t ->
                                      Printf.sprintf "r%d.obj" (t + 1))))
                        | None -> ""
                      in
                      let sql =
                        Printf.sprintf "SELECT %s FROM %s WHERE %s%s LIMIT 1"
                          (String.concat ", " selects)
                          (String.concat ", " aliases)
                          where order
                      in
                      issued := sql :: !issued;
                      match Pb_sql.Executor.execute_sql ?gov db sql with
                      | Pb_sql.Executor.Rows rel
                        when Relation.cardinality rel > 0 ->
                          let row = Relation.row rel 0 in
                          let mult = Array.make c.Coeffs.n 0 in
                          Array.iter
                            (fun v ->
                              match Value.to_int v with
                              | Some i -> mult.(i) <- mult.(i) + 1
                              | None -> ())
                            row;
                          consider mult
                      | _ -> ()
                    end
                  done
                  with Gov.Interrupted _ ->
                    (* Stop mid-sweep: whatever cardinalities completed
                       still yield their exact per-cardinality winners,
                       but the sweep as a whole is no longer exhaustive. *)
                    interrupted := true);
              {
                best = Option.map (Coeffs.package_of_mult c) !best_mult;
                best_objective = !best_obj;
                queries_issued = List.length !issued;
                sql = List.rev !issued;
                applicable = not !interrupted;
                reason = (if !interrupted then "interrupted" else "");
              }
            end))
