module Ast = Pb_paql.Ast
module Analyze = Pb_paql.Analyze
module Package = Pb_paql.Package
module Model = Pb_lp.Model
module Milp = Pb_lp.Milp
module Gov = Pb_util.Gov
module Pool = Pb_par.Pool
module Progress = Pb_obs.Progress
module Trace = Pb_obs.Trace

type params = {
  partitions : int option;
  fanout : int;
  prepartition : int array array option;
}

let default_params = { partitions = None; fanout = 4; prepartition = None }

(* Partitioning constrained to caller-supplied groups (the shard
   router's hash partitions): each prepartition group is sub-split by
   the usual median-split build over its own members — so refine legs
   never straddle a shard boundary — then the pieces are re-canonicalised
   (ascending members, groups ordered by smallest member) and centroids
   recomputed over the original features, restoring every Partition.build
   invariant. Indices out of range or repeated are dropped; candidates
   the prepartition misses form one extra group, so the result always
   covers [0, n) exactly. *)
let partition_within ~target ~features ~n (pre : int array array) =
  let seen = Array.make (max n 1) false in
  let clean =
    Array.to_list pre
    |> List.filter_map (fun g ->
           let members =
             Array.to_list g
             |> List.filter_map (fun i ->
                    if i >= 0 && i < n && not seen.(i) then begin
                      seen.(i) <- true;
                      Some i
                    end
                    else None)
           in
           if members = [] then None else Some (Array.of_list members))
  in
  let leftover =
    List.init n Fun.id |> List.filter (fun i -> not seen.(i))
  in
  let clean =
    match leftover with
    | [] -> clean
    | l -> clean @ [ Array.of_list l ]
  in
  let total = List.fold_left (fun acc g -> acc + Array.length g) 0 clean in
  let groups =
    List.concat_map
      (fun g ->
        let m = Array.length g in
        let sub_target =
          max 1
            (int_of_float
               (Float.round (float_of_int (target * m) /. float_of_int (max total 1))))
        in
        let sub_features =
          Array.map (fun f -> Array.map (fun i -> f.(i)) g) features
        in
        let sub = Partition.build ~target:sub_target ~features:sub_features ~n:m in
        Array.to_list sub.Partition.groups
        |> List.map (fun sg ->
               let mapped = Array.map (fun j -> g.(j)) sg in
               Array.sort compare mapped;
               mapped))
      clean
  in
  let groups =
    List.sort (fun a b -> compare a.(0) b.(0)) groups |> Array.of_list
  in
  let nfeat = Array.length features in
  let centroids =
    Array.map
      (fun g ->
        Array.init nfeat (fun d ->
            let acc = ref 0.0 in
            Array.iter (fun i -> acc := !acc +. features.(d).(i)) g;
            !acc /. float_of_int (Array.length g)))
      groups
  in
  { Partition.groups; centroids }

type outcome = {
  best : Package.t option;
  best_objective : float option;
  bound : float option;
  gap : float option;
  proven_optimal : bool;
  applicable : bool;
  reason : string;
  partitions_built : int;
  refine_steps : int;
  refined_partitions : int;
  stuck_partitions : int;
  sketch_status : string;
  partition_seconds : float;
  sketch_seconds : float;
  refine_seconds : float;
}

let empty_outcome =
  {
    best = None;
    best_objective = None;
    bound = None;
    gap = None;
    proven_optimal = false;
    applicable = true;
    reason = "";
    partitions_built = 0;
    refine_steps = 0;
    refined_partitions = 0;
    stuck_partitions = 0;
    sketch_status = "-";
    partition_seconds = 0.0;
    sketch_seconds = 0.0;
    refine_seconds = 0.0;
  }

let not_applicable reason = { empty_outcome with applicable = false; reason }

(* ---- Applicability ------------------------------------------------ *)

(* A solver row over the candidate multiplicities: Σ coef.(i)·x_i sense
   rhs, with strict comparisons already eps-tightened by
   {!Translate.cmp_to_row} so both model builders agree. [nonempty]
   carries SQL NULL semantics: the source aggregate rejects the empty
   package. *)
type row = {
  coef : float array;
  sense : Model.sense;
  rhs : float;
  nonempty : bool;
}

let rows_of_formula (c : Coeffs.t) =
  let rec go acc = function
    | Coeffs.C_true -> Ok acc
    | Coeffs.C_false ->
        (* constant-false SUCH THAT: an unsatisfiable row keeps the
           pipeline uniform and lets the bound sketch prove it *)
        Ok
          ({ coef = Array.make c.n 0.0; sense = Model.Ge; rhs = 1.0; nonempty = false }
          :: acc)
    | Coeffs.C_atom (Coeffs.C_linear { coef; cmp; rhs; has_sum }) ->
        let sense, rhs = Translate.cmp_to_row cmp rhs in
        Ok ({ coef; sense; rhs; nonempty = has_sum } :: acc)
    | Coeffs.C_atom (Coeffs.C_avg { arg; cmp; rhs }) ->
        (* AVG(e) cmp c  ==>  Σ (e_i - c)·x_i cmp 0, empty rejected. *)
        let shifted = Array.map (fun v -> v -. rhs) arg in
        let sense, rhs = Translate.cmp_to_row cmp 0.0 in
        Ok ({ coef = shifted; sense; rhs; nonempty = true } :: acc)
    | Coeffs.C_atom (Coeffs.C_ext _) ->
        Error "MIN/MAX constraints need per-tuple witnesses"
    | Coeffs.C_and fs ->
        List.fold_left (fun acc f -> Result.bind acc (fun a -> go a f)) (Ok acc) fs
    | Coeffs.C_or _ -> Error "disjunctive constraints"
  in
  match c.formula with
  | Error reason -> Error ("SUCH THAT is not linearizable: " ^ reason)
  | Ok f -> Result.map List.rev (go [] f)

type obj = No_obj | Linear of Ast.direction * float array

let objective_of_coeffs (c : Coeffs.t) =
  match c.objective with
  | None -> Ok No_obj
  | Some None -> Error "objective is not linearizable"
  | Some (Some (dir, coef)) -> Ok (Linear (dir, coef))

(* ---- Per-partition coefficient aggregation ------------------------ *)

let agg_mean groups coef =
  Array.map
    (fun g ->
      Array.fold_left (fun acc i -> acc +. coef.(i)) 0.0 g
      /. float_of_int (Array.length g))
    groups

(* The loosest member value for a row of the given sense: the smallest
   coefficient can only help a <= row, the largest a >= row. Any real
   package therefore maps to a feasible point of the bound sketch. *)
let agg_loose groups coef sense =
  Array.map
    (fun g ->
      match sense with
      | Model.Le ->
          Array.fold_left (fun acc i -> Float.min acc coef.(i)) infinity g
      | Model.Ge ->
          Array.fold_left (fun acc i -> Float.max acc coef.(i)) neg_infinity g
      | Model.Eq -> assert false (* cmp_to_row never yields Eq *))
    groups

let terms_of coefs vars =
  let out = ref [] in
  Array.iteri (fun p v -> if coefs.(p) <> 0.0 then out := (coefs.(p), v) :: !out) vars;
  !out

(* ---- Search ------------------------------------------------------- *)

let milp_status_to_string = function
  | Milp.Optimal -> "optimal"
  | Milp.Feasible -> "feasible"
  | Milp.Infeasible -> "infeasible"
  | Milp.Unbounded -> "unbounded"

(* Cap on how much representative mass the greedy incumbent
   materialisation will expand per round; keeps the anytime path
   O(package size), not O(relation). Deterministic: a pure function of
   the state, never of the pool or the clock. *)
let materialize_cap = 200_000

let search ~params ~pool ~gov (c : Coeffs.t) : outcome =
  match (rows_of_formula c, objective_of_coeffs c) with
  | Error reason, _ | _, Error reason -> not_applicable reason
  | Ok rows, Ok obj when c.n = 0 ->
      (* No candidates: the empty package is the only one. *)
      ignore rows;
      ignore obj;
      let valid = Coeffs.check_mult c [||] in
      let best = if valid then Some (Coeffs.package_of_mult c [||]) else None in
      {
        empty_outcome with
        best;
        best_objective = (if valid then Coeffs.objective_of_mult c [||] else None);
        proven_optimal = true;
        sketch_status = "empty";
      }
  | Ok rows, Ok obj ->
      let n = c.n in
      let rows_a = Array.of_list rows in
      let nrows = Array.length rows_a in
      let needs_nonempty = Array.exists (fun r -> r.nonempty) rows_a in
      (* -- Partition ------------------------------------------------ *)
      let (part, features), partition_seconds =
        Trace.timed ~name:"sketch-refine.partition" (fun () ->
            let features =
              Analyze.aggregate_arguments c.query
              |> List.map (fun e -> Coeffs.tuple_values c e)
              |> Array.of_list
            in
            let target =
              match params.partitions with
              | Some k -> k
              | None -> int_of_float (Float.round (sqrt (float_of_int n)))
            in
            let part =
              match params.prepartition with
              | None -> Partition.build ~target ~features ~n
              | Some pre -> partition_within ~target ~features ~n pre
            in
            (part, features))
      in
      let groups = part.groups in
      let k = Array.length groups in
      let ub = Array.map (fun g -> Array.length g * c.max_mult) groups in
      (* Per-partition coefficients for both sketches. *)
      let mean_rows = Array.map (fun r -> agg_mean groups r.coef) rows_a in
      let loose_rows =
        Array.map (fun r -> agg_loose groups r.coef r.sense) rows_a
      in
      let mean_obj, loose_obj =
        match obj with
        | No_obj -> (None, None)
        | Linear (dir, coef) ->
            let loose_sense =
              match dir with Ast.Maximize -> Model.Ge | Ast.Minimize -> Model.Le
            in
            (Some (agg_mean groups coef), Some (agg_loose groups coef loose_sense))
      in
      let sketch_model row_coefs obj_coefs =
        let model = Model.create () in
        let yvars =
          Array.init k (fun p ->
              Model.add_var model ~integer:true ~lower:0.0
                ~upper:(float_of_int ub.(p))
                (Printf.sprintf "y%d" p))
        in
        Array.iteri
          (fun ri r ->
            Model.add_constr model
              ~name:(Printf.sprintf "row%d" ri)
              (terms_of row_coefs.(ri) yvars)
              r.sense r.rhs)
          rows_a;
        if needs_nonempty then
          Model.add_constr model ~name:"nonempty"
            (Array.to_list (Array.map (fun v -> (1.0, v)) yvars))
            Model.Ge 1.0;
        (match (obj, obj_coefs) with
        | No_obj, _ | _, None -> Model.set_objective model (Model.Maximize [])
        | Linear (dir, _), Some coefs ->
            let terms = terms_of coefs yvars in
            Model.set_objective model
              (match dir with
              | Ast.Maximize -> Model.Maximize terms
              | Ast.Minimize -> Model.Minimize terms));
        (model, yvars)
      in
      (* -- Sketch --------------------------------------------------- *)
      let ((bound_sol, bound_vars), (rep_sol, rep_vars)), sketch_seconds =
        Trace.timed ~name:"sketch-refine.sketch" (fun () ->
            let bound_model, bound_vars = sketch_model loose_rows loose_obj in
            let bound_sol = Milp.solve ~gov:(Gov.child gov) bound_model in
            let rep_model, rep_vars = sketch_model mean_rows mean_obj in
            let rep_sol = Milp.solve ~gov:(Gov.child gov) rep_model in
            ((bound_sol, bound_vars), (rep_sol, rep_vars)))
      in
      if bound_sol.Milp.status = Milp.Infeasible then
        (* Sound: the bound sketch relaxes every real package. *)
        {
          empty_outcome with
          best = None;
          proven_optimal = true;
          partitions_built = k;
          sketch_status = "bound-infeasible";
          partition_seconds;
          sketch_seconds;
        }
      else begin
        let bound =
          match (obj, bound_sol.Milp.status) with
          | Linear _, Milp.Optimal -> Some bound_sol.Milp.objective
          | _ -> None
        in
        let y_of sol vars =
          if Array.length sol.Milp.x = 0 then None
          else
            Some
              (Array.map
                 (fun v -> int_of_float (Float.round sol.Milp.x.(v)))
                 vars)
        in
        let y0 =
          (* seed refinement from the mean sketch; if it produced no
             point (e.g. mean-level infeasible), fall back to the bound
             sketch's — refinement re-solves anyway, the seed only ranks
             which partitions to refine first *)
          match y_of rep_sol rep_vars with
          | Some y -> y
          | None -> (
              match y_of bound_sol bound_vars with
              | Some y -> y
              | None -> Array.make k 0)
        in
        let sketch_status = milp_status_to_string rep_sol.Milp.status in
        (* -- Refine --------------------------------------------------- *)
        let result, refine_seconds =
          Trace.timed ~name:"sketch-refine.refine" (fun () ->
              let refined = Array.make k false in
              let stuck = Array.make k false in
              let repy = Array.copy y0 in
              let fixed_rows = Array.make nrows 0.0 in
              let fixed_count = ref 0 in
              let fixed_obj = ref 0.0 in
              let fixed_sparse = ref [] in
              let refine_steps = ref 0 in
              let stopped = ref false in
              (* Greedy materialisation order: nearest the centroid
                 first; computed lazily per partition, once. *)
              let mat_order = Array.make k None in
              let order_of p =
                match mat_order.(p) with
                | Some o -> o
                | None ->
                    let cent = part.centroids.(p) in
                    let dist i =
                      let acc = ref 0.0 in
                      Array.iteri
                        (fun d f ->
                          let dv = f.(i) -. cent.(d) in
                          acc := !acc +. (dv *. dv))
                        features;
                      !acc
                    in
                    let keyed =
                      Array.map (fun i -> (dist i, i)) groups.(p)
                    in
                    Array.sort compare keyed;
                    let o = Array.map snd keyed in
                    mat_order.(p) <- Some o;
                    o
              in
              let row_ok v (r : row) =
                match r.sense with
                | Model.Le -> v <= r.rhs
                | Model.Ge -> v >= r.rhs
                | Model.Eq -> Float.abs (v -. r.rhs) <= Translate.strict_eps
              in
              (* Expand the current hybrid state (fixed tuples +
                 representative mass) into a concrete candidate package
                 and check it against the real per-tuple coefficients. *)
              let materialize () =
                let mass = ref 0 in
                Array.iteri
                  (fun p y -> if not refined.(p) then mass := !mass + y)
                  repy;
                if !mass > materialize_cap then None
                else begin
                  let extra = ref [] in
                  let row_vals = Array.copy fixed_rows in
                  let cnt = ref !fixed_count in
                  let ob = ref !fixed_obj in
                  for p = 0 to k - 1 do
                    if (not refined.(p)) && repy.(p) > 0 then begin
                      let order = order_of p in
                      let remaining = ref repy.(p) in
                      Array.iter
                        (fun i ->
                          if !remaining > 0 then begin
                            let m = min c.max_mult !remaining in
                            remaining := !remaining - m;
                            extra := (i, m) :: !extra;
                            let fm = float_of_int m in
                            Array.iteri
                              (fun ri r ->
                                row_vals.(ri) <-
                                  row_vals.(ri) +. (r.coef.(i) *. fm))
                              rows_a;
                            cnt := !cnt + m;
                            match obj with
                            | Linear (_, coef) ->
                                ob := !ob +. (coef.(i) *. fm)
                            | No_obj -> ()
                          end)
                        order
                    end
                  done;
                  let valid =
                    (try
                       Array.iteri
                         (fun ri r ->
                           if not (row_ok row_vals.(ri) r) then raise Exit)
                         rows_a;
                       true
                     with Exit -> false)
                    && ((not needs_nonempty) || !cnt >= 1)
                  in
                  if not valid then None
                  else
                    let objective =
                      match obj with
                      | No_obj -> None
                      | Linear _ -> if !cnt = 0 then None else Some !ob
                    in
                    Some (!extra @ !fixed_sparse, objective)
                end
              in
              let best = ref None in
              let improves cand_obj =
                match (!best, cand_obj) with
                | None, _ -> true
                | Some (_, None), Some _ -> true
                | Some (_, Some cur), Some v -> (
                    match obj with
                    | Linear (Ast.Maximize, _) -> v > cur +. 1e-12
                    | Linear (Ast.Minimize, _) -> v < cur -. 1e-12
                    | No_obj -> false)
                | Some _, None -> false
              in
              let try_incumbent () =
                match materialize () with
                | Some (sparse, objective) when improves objective ->
                    best := Some (sparse, objective);
                    (match objective with
                    | Some v ->
                        Progress.incumbent ~key:(Gov.family_id gov)
                          ~strategy:"sketch-refine" ?bound ~nodes:!refine_steps
                          v
                    | None -> ())
                | _ -> ()
              in
              (* One refine leg: re-solve with partition [p]'s real
                 tuples, other unrefined partitions as representatives,
                 refined tuples frozen into the right-hand sides. *)
              let solve_leg p =
                let model = Model.create () in
                let xvars =
                  Array.map
                    (fun i ->
                      ( i,
                        Model.add_var model ~integer:true ~lower:0.0
                          ~upper:(float_of_int c.max_mult)
                          (Printf.sprintf "x%d" i) ))
                    groups.(p)
                in
                let yvars = ref [] in
                for q = k - 1 downto 0 do
                  if (not refined.(q)) && q <> p then
                    yvars :=
                      ( q,
                        Model.add_var model ~integer:true ~lower:0.0
                          ~upper:(float_of_int ub.(q))
                          (Printf.sprintf "y%d" q) )
                      :: !yvars
                done;
                let yvars = !yvars in
                Array.iteri
                  (fun ri r ->
                    let terms = ref [] in
                    Array.iter
                      (fun (i, v) ->
                        if r.coef.(i) <> 0.0 then
                          terms := (r.coef.(i), v) :: !terms)
                      xvars;
                    List.iter
                      (fun (q, v) ->
                        let cq = mean_rows.(ri).(q) in
                        if cq <> 0.0 then terms := (cq, v) :: !terms)
                      yvars;
                    Model.add_constr model
                      ~name:(Printf.sprintf "row%d" ri)
                      !terms r.sense
                      (r.rhs -. fixed_rows.(ri)))
                  rows_a;
                if needs_nonempty && !fixed_count < 1 then begin
                  let terms =
                    Array.to_list (Array.map (fun (_, v) -> (1.0, v)) xvars)
                    @ List.map (fun (_, v) -> (1.0, v)) yvars
                  in
                  Model.add_constr model ~name:"nonempty" terms Model.Ge 1.0
                end;
                (match obj with
                | No_obj -> Model.set_objective model (Model.Maximize [])
                | Linear (dir, coef) ->
                    let terms = ref [] in
                    Array.iter
                      (fun (i, v) ->
                        if coef.(i) <> 0.0 then terms := (coef.(i), v) :: !terms)
                      xvars;
                    let mobj = Option.get mean_obj in
                    List.iter
                      (fun (q, v) ->
                        if mobj.(q) <> 0.0 then terms := (mobj.(q), v) :: !terms)
                      yvars;
                    Model.set_objective model
                      (match dir with
                      | Ast.Maximize -> Model.Maximize !terms
                      | Ast.Minimize -> Model.Minimize !terms));
                let sol = Milp.solve ~gov:(Gov.child gov) model in
                match sol.Milp.status with
                | (Milp.Optimal | Milp.Feasible)
                  when Array.length sol.Milp.x > 0 ->
                    Some
                      ( p,
                        sol.Milp.objective,
                        Array.map
                          (fun (i, v) ->
                            (i, int_of_float (Float.round sol.Milp.x.(v))))
                          xvars,
                        List.map
                          (fun (q, v) ->
                            (q, int_of_float (Float.round sol.Milp.x.(v))))
                          yvars )
                | _ -> None
              in
              let commit (p, _, xs, ys) =
                refined.(p) <- true;
                repy.(p) <- 0;
                Array.iter
                  (fun (i, m) ->
                    if m > 0 then begin
                      fixed_sparse := (i, m) :: !fixed_sparse;
                      fixed_count := !fixed_count + m;
                      let fm = float_of_int m in
                      Array.iteri
                        (fun ri r ->
                          fixed_rows.(ri) <-
                            fixed_rows.(ri) +. (r.coef.(i) *. fm))
                        rows_a;
                      match obj with
                      | Linear (_, coef) ->
                          fixed_obj := !fixed_obj +. (coef.(i) *. fm)
                      | No_obj -> ()
                    end)
                  xs;
                List.iter (fun (q, y) -> repy.(q) <- y) ys
              in
              try_incumbent ();
              let no_obj_done () = obj = No_obj && !best <> None in
              let candidates () =
                let s = ref [] in
                for p = k - 1 downto 0 do
                  if (not refined.(p)) && (not stuck.(p)) && repy.(p) > 0 then
                    s := p :: !s
                done;
                (* biggest representative mass first, ties to the lowest
                   partition index *)
                List.stable_sort
                  (fun a b -> compare (-repy.(a), a) (-repy.(b), b))
                  !s
              in
              let rec loop () =
                if !stopped || no_obj_done () then ()
                else
                  match Gov.refresh gov with
                  | Some _ -> stopped := true
                  | None when Gov.check ~resource:Gov.Milp_nodes gov <> None ->
                      (* node budget exhausted: further legs could not
                         search, stop with the incumbent (reported as a
                         plain Feasible, not Cancelled — budget stops
                         are not latched as fate) *)
                      stopped := true
                  | None -> (
                      match candidates () with
                      | [] -> ()
                      | all ->
                          let batch =
                            List.filteri (fun i _ -> i < params.fanout) all
                          in
                          let batch_a = Array.of_list batch in
                          let legs =
                            Pool.map_chunks pool ~chunk_size:1
                              ~n:(Array.length batch_a)
                              (fun ~lo ~hi ->
                                let out = ref [] in
                                for i = hi - 1 downto lo do
                                  out := solve_leg batch_a.(i) :: !out
                                done;
                                !out)
                            |> List.concat
                          in
                          refine_steps := !refine_steps + List.length legs;
                          let winner =
                            List.fold_left
                              (fun acc leg ->
                                match (acc, leg) with
                                | None, l -> l
                                | Some _, None -> acc
                                | ( Some (_, bo, _, _),
                                    Some (_, lo_, _, _) ) -> (
                                    (* strict improvement only: ties keep
                                       the earlier (lower-mass-rank) leg *)
                                    match obj with
                                    | Linear (Ast.Maximize, _) ->
                                        if lo_ > bo then leg else acc
                                    | Linear (Ast.Minimize, _) ->
                                        if lo_ < bo then leg else acc
                                    | No_obj -> acc))
                              None legs
                          in
                          (match winner with
                          | Some leg -> commit leg
                          | None ->
                              List.iter (fun p -> stuck.(p) <- true) batch);
                          try_incumbent ();
                          loop ())
              in
              loop ();
              let refined_partitions =
                Array.fold_left (fun a r -> if r then a + 1 else a) 0 refined
              in
              let stuck_partitions =
                Array.fold_left (fun a s -> if s then a + 1 else a) 0 stuck
              in
              (!best, !refine_steps, refined_partitions, stuck_partitions))
        in
        let best_state, refine_steps, refined_partitions, stuck_partitions =
          result
        in
        let best, best_objective =
          match best_state with
          | None -> (None, None)
          | Some (sparse, objective) ->
              let m = Array.make n 0 in
              List.iter (fun (i, mm) -> m.(i) <- mm) sparse;
              (Some (Coeffs.package_of_mult c m), objective)
        in
        let proven_optimal, gap =
          match obj with
          | No_obj -> (best <> None, None)
          | Linear _ -> (
              match (bound, best_objective) with
              | Some b, Some v ->
                  let g = Float.abs (b -. v) /. Float.max 1.0 (Float.abs v) in
                  (g <= 1e-9, Some g)
              | _ -> (false, None))
        in
        {
          best;
          best_objective;
          bound;
          gap;
          proven_optimal;
          applicable = true;
          reason = "";
          partitions_built = k;
          refine_steps;
          refined_partitions;
          stuck_partitions;
          sketch_status;
          partition_seconds;
          sketch_seconds;
          refine_seconds;
        }
      end
