type t = {
  groups : int array array;
  centroids : float array array;
}

let group_count t = Array.length t.groups

let group_of t i =
  let found = ref (-1) in
  Array.iteri
    (fun p g -> if !found < 0 && Array.exists (fun j -> j = i) g then found := p)
    t.groups;
  if !found < 0 then invalid_arg "Partition.group_of: index out of range";
  !found

(* Dimension with the widest [max - min] over the group; ties go to the
   lowest dimension, and a group constant in every feature returns None
   (unsplittable). *)
let widest_dim features idx =
  let best = ref (-1) and best_spread = ref 0.0 in
  Array.iteri
    (fun dim f ->
      let lo = ref f.(idx.(0)) and hi = ref f.(idx.(0)) in
      Array.iter
        (fun i ->
          let v = f.(i) in
          if v < !lo then lo := v;
          if v > !hi then hi := v)
        idx;
      let s = !hi -. !lo in
      if s > !best_spread then begin
        best := dim;
        best_spread := s
      end)
    features;
  if !best < 0 then None else Some !best

let sort_asc a = Array.sort compare (a : int array)

let build ~target ~features ~n =
  if n = 0 then { groups = [||]; centroids = [||] }
  else begin
    let target = max 1 (min target n) in
    (* [splittable] and [final] together always partition [0, n). *)
    let splittable = ref [ Array.init n Fun.id ] and final = ref [] in
    let count () = List.length !splittable + List.length !final in
    let rec pick best = function
      | [] -> best
      | g :: rest ->
          let better =
            match best with
            | None -> true
            | Some b ->
                Array.length g > Array.length b
                || (Array.length g = Array.length b && g.(0) < b.(0))
          in
          pick (if better then Some g else best) rest
    in
    while count () < target && !splittable <> [] do
      let g = Option.get (pick None !splittable) in
      splittable := List.filter (fun h -> h != g) !splittable;
      match widest_dim features g with
      | None -> final := g :: !final
      | Some dim ->
          let f = features.(dim) in
          let by_value = Array.copy g in
          Array.sort
            (fun i j -> compare (f.(i), i) (f.(j), j))
            by_value;
          let m = Array.length by_value in
          let left = Array.sub by_value 0 (m / 2)
          and right = Array.sub by_value (m / 2) (m - (m / 2)) in
          sort_asc left;
          sort_asc right;
          splittable := left :: right :: !splittable
    done;
    let groups = Array.of_list (!splittable @ !final) in
    Array.sort (fun a b -> compare a.(0) b.(0)) groups;
    let d = Array.length features in
    let centroids =
      Array.map
        (fun g ->
          Array.init d (fun dim ->
              let f = features.(dim) in
              Array.fold_left (fun acc i -> acc +. f.(i)) 0.0 g
              /. float_of_int (Array.length g)))
        groups
    in
    { groups; centroids }
  end
