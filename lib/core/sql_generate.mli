(** SQL-based candidate-package generation — the paper's evaluation
    option (i): "The system either: (i) uses SQL statements to generate
    and validate candidate packages; or (ii) translates package queries
    to constraint optimization problems" (§4).

    For each cardinality c inside the §4.1 pruning bounds, one SQL query
    enumerates the valid packages of that cardinality directly in the
    DBMS: a c-way self-join of the candidate relation with
    [r1.cand < r2.cand < ...] to avoid permutations, the global
    constraints rewritten over per-alias aggregate columns
    ([r1.a0 + r2.a0 + r3.a0 BETWEEN 2000 AND 2500]), and
    [ORDER BY objective LIMIT 1] to fetch the best package per
    cardinality. The best answer across cardinalities is exact.

    Applicability is the method's point — and its weakness, which is why
    the paper pairs it with solvers: the join materializes O(n^c) rows,
    so the strategy declines when the §4.1 bounds allow cardinalities
    above [max_width] or when n^c exceeds [max_join_rows]; it also
    requires a linearized formula (MIN/MAX atoms become per-alias
    conjunctions / disjunctions, so the whole compiled formula class is
    expressible) and no REPEAT. Experiment T9 measures the crossover
    against the ILP path. *)

type params = {
  max_width : int;  (** largest cardinality attempted (default 4) *)
  max_join_rows : float;  (** n^c budget per query (default 2e6) *)
}

val default_params : params

type outcome = {
  best : Pb_paql.Package.t option;
  best_objective : float option;
  queries_issued : int;
  sql : string list;  (** the generation queries, for EXPLAIN/tests *)
  applicable : bool;
  reason : string;  (** why not applicable, or "" *)
}

val search :
  ?params:params -> ?gov:Pb_util.Gov.t -> Pb_sql.Database.t -> Coeffs.t -> outcome
(** Exact when [applicable] is true: every cardinality within the pruning
    bounds is enumerated by a query. Temporary tables are installed under
    [__pb_gen] and dropped afterwards. [gov] is polled between
    cardinalities and inside each generation query; a stop keeps the
    best package found by the completed queries and reports
    [applicable = false] with reason ["interrupted"], since the sweep is
    no longer exhaustive. *)
