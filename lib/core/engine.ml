module Ast = Pb_paql.Ast
module Package = Pb_paql.Package
module Semantics = Pb_paql.Semantics
module Model = Pb_lp.Model
module Milp = Pb_lp.Milp
module Trace = Pb_obs.Trace
module Metrics = Pb_obs.Metrics
module Progress = Pb_obs.Progress
module Pool = Pb_par.Pool
module Gov = Pb_util.Gov

(* Typed strategy counters. Each run bumps the process-wide metric and
   the enclosing span, and still renders the (key, value) pair into the
   report's display stats. *)
let m_runs =
  Metrics.counter ~help:"Strategy runs (hybrid legs counted individually)"
    "pb_engine_strategy_runs_total"

let m_candidates_examined =
  Metrics.counter ~help:"Brute-force candidate packages examined"
    "pb_engine_candidates_examined_total"

let m_ls_rounds =
  Metrics.counter ~help:"Local-search repair/improvement rounds"
    "pb_engine_local_search_rounds_total"

let m_ls_sql_queries =
  Metrics.counter ~help:"Local-search SQL neighbourhood queries issued"
    "pb_engine_local_search_sql_queries_total"

let m_ls_pairs =
  Metrics.counter ~help:"Local-search replacement moves examined"
    "pb_engine_local_search_pairs_total"

let m_anneal_steps =
  Metrics.counter ~help:"Simulated-annealing steps taken"
    "pb_engine_anneal_steps_total"

let m_sqlgen_queries =
  Metrics.counter ~help:"SQL-generation per-cardinality queries issued"
    "pb_engine_sqlgen_queries_total"

let m_pruning_cutoffs =
  Metrics.counter ~help:"Queries proven infeasible by cardinality bounds alone"
    "pb_engine_pruning_cutoffs_total"

let m_sr_partitions =
  Metrics.counter ~help:"Sketch-refine partitions built"
    "pb_engine_sketch_partitions_total"

let m_sr_refine_steps =
  Metrics.counter ~help:"Sketch-refine refine-leg MILPs solved"
    "pb_engine_sketch_refine_steps_total"

let m_verification_failures =
  Metrics.counter ~help:"Answers rejected by the semantic safety net"
    "pb_engine_verification_failures_total"

let stat_count ~key metric v =
  Metrics.incr ~by:v metric;
  Trace.add_count key v;
  (key, string_of_int v)

type strategy =
  | Brute_force of { use_pruning : bool }
  | Ilp
  | Local_search of Local_search.params
  | Anneal of Annealing.params
  | Sql_generation of Sql_generate.params
  | Sketch_refine of Sketch_refine.params
  | Hybrid

let strategy_name = function
  | Brute_force { use_pruning = true } -> "brute-force+pruning"
  | Brute_force { use_pruning = false } -> "brute-force"
  | Ilp -> "ilp"
  | Local_search _ -> "local-search"
  | Anneal _ -> "annealing"
  | Sql_generation _ -> "sql-generation"
  | Sketch_refine _ -> "sketch-refine"
  | Hybrid -> "hybrid"

type proof = Optimal | Feasible | Infeasible | Cancelled

let proof_to_string = function
  | Optimal -> "optimal"
  | Feasible -> "feasible"
  | Infeasible -> "infeasible"
  | Cancelled -> "cancelled"

type result = {
  package : Package.t option;
  objective : float option;
  proof : proof;
  strategy_used : string;
  elapsed : float;
  stats : (string * string) list;
  progress : Progress.event list;
      (* incumbent trajectory of this run, oldest first; kept out of
         [stats] because the speculative hybrid leg makes the event
         count pool-size-dependent while the stats fingerprint must stay
         bit-identical at any pool size *)
}

(* Internal per-strategy report; [proven_optimal] means "this answer is
   exact" (a proof of optimality when a package is present, a proof of
   infeasibility when none is).  The public [result] is derived from it
   plus the governance token's fate. *)
type report = {
  package : Package.t option;
  objective : float option;
  proven_optimal : bool;
  strategy_used : string;
  elapsed : float;
  stats : (string * string) list;
  anytime : bool;
      (* the strategy's governed-stop answer is a deliberate best-so-far
         incumbent (SketchRefine's serving contract): a deadline or
         cancellation that still yielded a package downgrades to
         [Feasible] instead of [Cancelled] *)
}

let linearizable (c : Coeffs.t) =
  Result.is_ok c.formula
  && match c.objective with None | Some (Some _) -> true | Some None -> false

(* Final safety net: never hand the user a package the reference
   semantics rejects. *)
let verified db (c : Coeffs.t) report =
  match report.package with
  | None -> report
  | Some pkg ->
      if Semantics.is_valid ~db c.query pkg then report
      else begin
        Metrics.incr m_verification_failures;
        {
          report with
          package = None;
          objective = None;
          proven_optimal = false;
          stats = ("verification", "answer failed semantic check") :: report.stats;
        }
      end

let objective_of db (c : Coeffs.t) pkg =
  match c.query.objective with
  | None -> None
  | Some _ -> Semantics.objective_value ~db c.query pkg

let run_brute_force ~pool ~gov ~use_pruning (c : Coeffs.t) =
  let name = if use_pruning then "brute-force+pruning" else "brute-force" in
  let report, elapsed =
    Trace.timed
      ~name:("strategy." ^ name)
      ~attrs:[ ("candidates", string_of_int c.n) ]
      (fun () ->
        Metrics.incr m_runs;
        let out = Brute_force.search ~pool ~gov ~use_pruning c in
        {
          package = out.best;
          objective = out.best_objective;
          proven_optimal = out.complete;
          strategy_used = name;
          elapsed = 0.0;
          anytime = false;
          stats =
            [
              stat_count ~key:"candidates_examined" m_candidates_examined
                out.examined;
              ("complete", string_of_bool out.complete);
            ];
        })
  in
  { report with elapsed }

let run_ilp ~gov db (c : Coeffs.t) =
  let report, elapsed =
    Trace.timed ~name:"strategy.ilp"
      ~attrs:[ ("candidates", string_of_int c.n) ]
      (fun () ->
        Metrics.incr m_runs;
        if not (linearizable c) then
          let reason =
            match c.formula with
            | Error r -> r
            | Ok _ -> "objective is not linearizable"
          in
          {
            package = None;
            objective = None;
            proven_optimal = false;
            strategy_used = "ilp";
            elapsed = 0.0;
            anytime = false;
            stats = [ ("not_applicable", reason) ];
          }
        else begin
          let t = Translate.build c in
          let sol = Milp.solve ~gov t.model in
          let package, proven =
            match sol.status with
            | Milp.Optimal ->
                (Some (Translate.package_of_solution c t sol.x), true)
            | Milp.Feasible when Array.length sol.x > 0 ->
                (Some (Translate.package_of_solution c t sol.x), false)
            | Milp.Feasible | Milp.Unbounded -> (None, false)
            | Milp.Infeasible -> (None, true)
          in
          {
            package;
            objective = Option.map (fun _ -> sol.objective) package;
            proven_optimal = proven;
            strategy_used = "ilp";
            elapsed = 0.0;
            anytime = false;
            stats =
              [
                (* bb_nodes/lp_iterations are metered inside Pb_lp. *)
                ("bb_nodes", string_of_int sol.nodes);
                ("lp_iterations", string_of_int sol.lp_iterations);
                ( "milp_status",
                  match sol.status with
                  | Milp.Optimal -> "optimal"
                  | Milp.Feasible -> "feasible"
                  | Milp.Infeasible -> "infeasible"
                  | Milp.Unbounded -> "unbounded" );
              ];
          }
          |> fun report ->
          match report.package with
          | Some pkg -> { report with objective = objective_of db c pkg }
          | None -> report
        end)
  in
  { report with elapsed }

let run_local_search ~gov ~params db (c : Coeffs.t) =
  let report, elapsed =
    Trace.timed ~name:"strategy.local-search"
      ~attrs:[ ("candidates", string_of_int c.n) ]
      (fun () ->
        Metrics.incr m_runs;
        let out = Local_search.search ~params ~gov db c in
        let objective =
          match out.best with Some pkg -> objective_of db c pkg | None -> None
        in
        {
          package = out.best;
          objective;
          proven_optimal = false;
          strategy_used = "local-search";
          elapsed = 0.0;
          anytime = false;
          stats =
            [
              stat_count ~key:"rounds" m_ls_rounds out.stats.rounds;
              stat_count ~key:"sql_queries" m_ls_sql_queries
                out.stats.sql_queries;
              stat_count ~key:"pairs_examined" m_ls_pairs
                out.stats.pairs_examined;
              ("restarts", string_of_int out.stats.restarts_used);
            ];
        })
  in
  { report with elapsed }

let run_anneal ~gov ~params db (c : Coeffs.t) =
  let report, elapsed =
    Trace.timed ~name:"strategy.annealing"
      ~attrs:[ ("candidates", string_of_int c.n) ]
      (fun () ->
        Metrics.incr m_runs;
        let out = Annealing.search ~params ~gov c in
        let objective =
          match out.Annealing.best with
          | Some pkg -> objective_of db c pkg
          | None -> None
        in
        {
          package = out.Annealing.best;
          objective;
          proven_optimal = false;
          strategy_used = "annealing";
          elapsed = 0.0;
          anytime = false;
          stats =
            [
              stat_count ~key:"steps" m_anneal_steps out.Annealing.steps_taken;
              ("accepted", string_of_int out.Annealing.accepted);
              ("valid_visits", string_of_int out.Annealing.valid_visits);
            ];
        })
  in
  { report with elapsed }

let run_sql_generation ~gov ~params db (c : Coeffs.t) =
  let report, elapsed =
    Trace.timed ~name:"strategy.sql-generation"
      ~attrs:[ ("candidates", string_of_int c.n) ]
      (fun () ->
        Metrics.incr m_runs;
        let out = Sql_generate.search ~params ~gov db c in
        {
          package = out.Sql_generate.best;
          objective = out.Sql_generate.best_objective;
          (* The per-cardinality queries enumerate the pruned space
             exhaustively, so an applicable run is exact — including
             proving infeasibility. *)
          proven_optimal = out.Sql_generate.applicable;
          strategy_used = "sql-generation";
          elapsed = 0.0;
          anytime = false;
          stats =
            (stat_count ~key:"queries_issued" m_sqlgen_queries
               out.Sql_generate.queries_issued
            ::
            (if out.Sql_generate.applicable then []
             else [ ("not_applicable", out.Sql_generate.reason) ]));
        })
  in
  { report with elapsed }

let run_sketch_refine ~pool ~gov ~params db (c : Coeffs.t) =
  let report, elapsed =
    Trace.timed ~name:"strategy.sketch-refine"
      ~attrs:[ ("candidates", string_of_int c.n) ]
      (fun () ->
        Metrics.incr m_runs;
        let out = Sketch_refine.search ~params ~pool ~gov c in
        if not out.Sketch_refine.applicable then
          {
            package = None;
            objective = None;
            proven_optimal = false;
            strategy_used = "sketch-refine";
            elapsed = 0.0;
            anytime = false;
            stats = [ ("not_applicable", out.Sketch_refine.reason) ];
          }
        else
          let objective =
            match out.Sketch_refine.best with
            | Some pkg -> objective_of db c pkg
            | None -> None
          in
          {
            package = out.Sketch_refine.best;
            objective;
            proven_optimal = out.Sketch_refine.proven_optimal;
            strategy_used = "sketch-refine";
            elapsed = 0.0;
            anytime = true;
            stats =
              [
                stat_count ~key:"partitions" m_sr_partitions
                  out.Sketch_refine.partitions_built;
                stat_count ~key:"refine_steps" m_sr_refine_steps
                  out.Sketch_refine.refine_steps;
                ( "refined_partitions",
                  string_of_int out.Sketch_refine.refined_partitions );
                ( "stuck_partitions",
                  string_of_int out.Sketch_refine.stuck_partitions );
                ("sketch_status", out.Sketch_refine.sketch_status);
              ]
              @ (match out.Sketch_refine.bound with
                | Some b -> [ ("bound", Printf.sprintf "%.9g" b) ]
                | None -> [])
              @
              (match out.Sketch_refine.gap with
              | Some g -> [ ("gap", Printf.sprintf "%.9g" g) ]
              | None -> []);
          })
  in
  { report with elapsed }

let better_report (c : Coeffs.t) a b =
  match (a.package, b.package) with
  | _, None -> a
  | None, _ -> b
  | Some pa, Some pb ->
      if Pb_paql.Semantics.compare_quality c.query pa pb >= 0 then a else b

let run_hybrid ~pool ~gov db (c : Coeffs.t) =
  let tag report reason =
    { report with stats = ("hybrid_choice", reason) :: report.stats }
  in
  (* The chosen leg (and the local-search fallback leg, when the budget
     runs out) each time themselves through their own strategy span; the
     hybrid span wraps both, and the final report carries the combined
     wall clock so report.elapsed agrees with the span tree. *)
  let report, elapsed =
    Trace.timed ~name:"strategy.hybrid"
      ~attrs:[ ("candidates", string_of_int c.n) ]
      (fun () ->
        if Cost_model.proven_infeasible c then begin
          Metrics.incr m_pruning_cutoffs;
          Trace.add_count "pruning_cutoffs" 1;
          {
            package = None;
            objective = None;
            proven_optimal = true;
            strategy_used = "hybrid(pruning)";
            elapsed = 0.0;
            anytime = false;
            stats =
              [ ("hybrid_choice", "pruning bounds empty: proven infeasible") ];
          }
        end
        else begin
          (* Sec 5 "optimizing PaQL queries": choose by cost estimate
             rather than fixed thresholds. *)
          let choice = Cost_model.pick c in
          let reason =
            Printf.sprintf "cost model chose %s (%s)"
              choice.Cost_model.strategy_label choice.Cost_model.note
          in
          let run gov = function
            | "brute-force" -> run_brute_force ~pool ~gov ~use_pruning:false c
            | "brute-force+pruning" ->
                run_brute_force ~pool ~gov ~use_pruning:true c
            | "ilp" -> run_ilp ~gov db c
            | _ -> run_local_search ~gov ~params:Local_search.default_params db c
          in
          if Pool.size pool > 1 && choice.Cost_model.exact then begin
            (* Race the exact leg against a speculative local search on
               separate domains instead of running them back-to-back.
               Both legs may read the shared database — local search
               through subquery evaluation and the semantic oracle, the
               exact legs when re-deriving an objective the compiler
               could not linearize — but neither writes it: local
               search keeps its temp neighbourhood tables in a private
               scratch database, and every Database operation (lazy
               index builds included) is serialized by its internal
               mutex, so the legs share no unsynchronized mutable state.
               Each leg runs under its own child of the request token:
               children share the parent's budgets and deadline but add
               a private cancellation flag, so the winning exact leg can
               cancel the speculative search without poisoning the
               parent.  The merge is deterministic: a proven-optimal leg
               wins outright and the speculative search is cancelled
               (its result discarded), otherwise local search was never
               cancelled, ran to its seeded deterministic end, and the
               merge equals the sequential fallback — bit-identical
               reports at any pool size.  Note the invariance covers
               the *report* only: a cancelled speculative leg has
               already bumped metrics counters and emitted trace spans,
               so metrics/trace totals may differ between pool sizes
               even though reports are identical. *)
            let g_exact = Gov.child gov and g_ls = Gov.child gov in
            match
              Pool.race pool
                [
                  (fun _cancelled ->
                    let r = run g_exact choice.Cost_model.strategy_label in
                    if r.proven_optimal then Gov.cancel g_ls;
                    (r, r.proven_optimal));
                  (fun _cancelled ->
                    ( run_local_search ~gov:g_ls
                        ~params:Local_search.default_params db c,
                      false ));
                ]
            with
            | [ leg; ls ] ->
                if not leg.proven_optimal then
                  tag (better_report c leg ls)
                    (reason
                   ^ "; budget exhausted, kept best of it and local-search")
                else tag leg reason
            | _ -> assert false
          end
          else begin
            let report = run gov choice.Cost_model.strategy_label in
            if
              choice.Cost_model.exact
              && (not report.proven_optimal)
              && Gov.fate gov = None
            then
              (* Budget ran out before a proof: keep the better of the
                 partial answer and a local-search pass.  When the token
                 itself stopped the leg (cancellation or deadline) the
                 fallback would stop at its first poll too, so skip it. *)
              let ls =
                run_local_search ~gov ~params:Local_search.default_params db c
              in
              tag (better_report c report ls)
                (reason ^ "; budget exhausted, kept best of it and local-search")
            else tag report reason
          end
        end)
  in
  { report with elapsed }

let run_coeffs ?pool ?gov ?(strategy = Hybrid) db (c : Coeffs.t) =
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  let gov = match gov with Some g -> g | None -> Gov.create () in
  (* Every run_* times itself through its strategy span, so the report's
     elapsed is the strategy's own wall clock (hybrid: both legs); the
     engine.run span around it additionally covers verification. The
     progress recorder is keyed by the token's family, so incumbents
     emitted by hybrid race legs running under child tokens on pool
     domains still land in this run's trajectory. *)
  let result, progress =
    Progress.with_recorder ~key:(Gov.family_id gov) (fun () ->
        Trace.with_span ~name:"engine.run" (fun () ->
            let report =
              match strategy with
              | Brute_force { use_pruning } ->
                  run_brute_force ~pool ~gov ~use_pruning c
              | Ilp -> run_ilp ~gov db c
              | Local_search params -> run_local_search ~gov ~params db c
              | Anneal params -> run_anneal ~gov ~params db c
              | Sql_generation params -> run_sql_generation ~gov ~params db c
              | Sketch_refine params ->
                  run_sketch_refine ~pool ~gov ~params db c
              | Hybrid -> run_hybrid ~pool ~gov db c
            in
            let report = verified db c report in
            (* The hybrid race polls child tokens only, so a stop that
               originated on the request token (pre-cancellation, its
               deadline) may not have latched on it yet — one boundary
               poll makes [fate] below reliable at any pool size. *)
            ignore (Gov.refresh gov);
            let proof =
              match Gov.fate gov with
              | Some _ when report.anytime && report.package <> None ->
                  (* Anytime strategies treat a governed stop with an
                     incumbent in hand as a legitimate best-so-far
                     answer: Feasible, with ("stopped", reason) in the
                     stats recording why refinement ended early. *)
                  Feasible
              | Some _ -> Cancelled
              | None -> (
                  if not report.proven_optimal then Feasible
                  else
                    match report.package with
                    | Some _ -> Optimal
                    | None -> Infeasible)
            in
            let stats =
              match Gov.fate gov with
              | Some r -> ("stopped", Gov.reason_to_string r) :: report.stats
              | None -> report.stats
            in
            {
              package = report.package;
              objective = report.objective;
              proof;
              strategy_used = report.strategy_used;
              elapsed = report.elapsed;
              stats;
              progress = [];
            }))
  in
  { result with progress }

let run ?pool ?gov ?strategy db query =
  run_coeffs ?pool ?gov ?strategy db (Coeffs.make db query)

let next_packages ?gov ?(limit = 5) db query =
  let c = Coeffs.make db query in
  if linearizable c && c.max_mult = 1 then begin
    let t = Translate.build c in
    let cut_count = ref 0 in
    let rec loop acc k =
      if k = 0 then List.rev acc
      else
        let sol = Milp.solve ?gov t.model in
        match sol.status with
        | Milp.Optimal | Milp.Feasible when Array.length sol.x > 0 ->
            let pkg = Translate.package_of_solution c t sol.x in
            if not (Semantics.is_valid ~db query pkg) then List.rev acc
            else begin
              (* No-good cut over the tuple variables only, so that two
                 solver points differing only in indicator variables do
                 not yield the same package twice. *)
              let terms = ref [] and ones = ref 0 in
              Array.iter
                (fun v ->
                  if Float.round sol.x.(v) >= 0.5 then begin
                    terms := (-1.0, v) :: !terms;
                    incr ones
                  end
                  else terms := (1.0, v) :: !terms)
                t.vars;
              incr cut_count;
              Model.add_constr t.model
                ~name:(Printf.sprintf "pkg_nogood%d" !cut_count)
                !terms Model.Ge
                (1.0 -. float_of_int !ones);
              loop (pkg :: acc) (k - 1)
            end
        | _ -> List.rev acc
    in
    loop [] limit
  end
  else begin
    (* Enumeration fallback: collect valid packages and sort by quality. *)
    let all = Brute_force.enumerate_valid ~limit:50_000 c in
    let sorted =
      List.stable_sort
        (fun a b -> Semantics.compare_quality query b a)
        all
    in
    List.filteri (fun i _ -> i < limit) sorted
  end
