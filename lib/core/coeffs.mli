(** Compiled query context shared by every evaluation strategy.

    [make] runs the base constraints once (via {!Pb_paql.Semantics}),
    linearizes the SUCH THAT formula and the objective (via
    {!Pb_paql.Analyze}), and precomputes one dense coefficient vector per
    linear atom — the per-candidate-tuple contribution to each global
    aggregate. A package's aggregates are then inner products with its
    multiplicity vector, which is what makes pruning-bound derivation, the
    compiled validity check, ILP translation, and local-search delta
    evaluation all cheap and mutually consistent. *)

type compiled_atom =
  | C_linear of {
      coef : float array;
      cmp : Pb_paql.Analyze.cmp;
      rhs : float;
      has_sum : bool;
          (** the atom mentions a SUM term, so — like every SQL aggregate
              except COUNT — it is NULL (hence unsatisfied) on the empty
              package *)
    }  (** Σ coef.(i)·mult.(i) cmp rhs *)
  | C_avg of { arg : float array; cmp : Pb_paql.Analyze.cmp; rhs : float }
      (** AVG over selected tuples (with multiplicity) cmp rhs; empty
          packages fail *)
  | C_ext of {
      maximum : bool;
      arg : float array;
      cmp : Pb_paql.Analyze.cmp;
      rhs : float;
    }  (** MIN/MAX over the support cmp rhs; empty packages fail *)

type compiled_formula =
  | C_true
  | C_false
  | C_atom of compiled_atom
  | C_and of compiled_formula list
  | C_or of compiled_formula list

type t = {
  db : Pb_sql.Database.t;
      (** connection the query was prepared against — threaded into the
          semantic oracle so opaque formulas with subqueries evaluate *)
  query : Pb_paql.Ast.t;
  candidates : Pb_relation.Relation.t;
      (** base-constraint survivors, input-alias-qualified *)
  batch : Pb_paql.Semantics.batch option;
      (** columnar view of [candidates] when the storage mode is columnar
          and the base predicate vectorized — coefficient vectors are then
          extracted by batch kernels (bit-identical floats) *)
  n : int;  (** number of candidate tuples *)
  max_mult : int;  (** per-tuple multiplicity cap (1 + REPEAT) *)
  formula : (compiled_formula, string) result;
      (** [Error reason] when SUCH THAT is not linearizable — strategies
          then fall back to the {!Pb_paql.Semantics} oracle *)
  objective : (Pb_paql.Ast.direction * float array) option option;
      (** [None]: no objective; [Some None]: objective present but not
          linear; [Some (Some (dir, coef))]: compiled *)
}

val make : Pb_sql.Database.t -> Pb_paql.Ast.t -> t
(** Raises [Failure] on missing tables or ill-formed queries (see
    {!Pb_paql.Analyze.validate_query}). *)

val tuple_values : t -> Pb_sql.Ast.expr -> float array
(** Per-candidate value of a package-level expression argument (e.g. the
    [e] of SUM(e)); NULL and non-numeric evaluate to 0 with a warning
    logged. *)

val check : t -> Pb_paql.Package.t -> bool
(** Compiled validity (multiplicity cap + formula). Falls back to the
    semantic oracle when the formula is opaque. *)

val check_mult : t -> int array -> bool
(** Same, on a raw multiplicity vector (no Package allocation). *)

val objective_of_mult : t -> int array -> float option
(** Compiled objective; [None] when the query has none, when it is not
    linear (callers should then use {!Pb_paql.Semantics.objective_value}),
    or when the package is empty (SQL NULL). *)

val package_of_mult : t -> int array -> Pb_paql.Package.t
