(** Exhaustive package enumeration — the paper's strawman ("a brute-force
    approach that generates and evaluates all candidate packages is thus
    impractical"), kept both as a correctness oracle for the other
    strategies and as the baseline of experiments T1/T2.

    With [use_pruning] the enumeration only visits cardinalities inside
    the §4.1 bounds and cuts branches that cannot reach the lower bound;
    without, it walks the full multiplicity space. *)

type outcome = {
  best : Pb_paql.Package.t option;
      (** a valid package, objective-optimal among those examined *)
  best_objective : float option;
  examined : int;  (** candidate packages fully checked *)
  complete : bool;
      (** false when the candidate budget, a cancellation, or a deadline
          stopped the walk early, in which case [best] is only
          best-so-far *)
}

val search :
  ?pool:Pb_par.Pool.t ->
  ?gov:Pb_util.Gov.t ->
  ?use_pruning:bool ->
  Coeffs.t ->
  outcome
(** [use_pruning] defaults to true. The number of candidate packages
    checked is bounded by [gov]'s remaining [Bf_candidates] budget
    (captured once at entry, spent back on return); without a token the
    historical default of 5_000_000 applies. The token's cancellation
    flag and deadline are polled every 256 candidates — a stop returns
    the best-so-far with [complete = false]. For queries without an
    objective the walk stops at the first valid package.

    [pool] (default {!Pb_par.Pool.get_default}) parallelises the walk by
    partitioning the multiplicity space on a lexicographic prefix; for
    runs that are not cancelled mid-walk the outcome is bit-identical to
    the sequential walk at any pool size (same [best], [best_objective],
    [examined] and [complete]), and pool size 1 runs the sequential code
    path unchanged. *)

val enumerate_valid :
  ?use_pruning:bool ->
  ?limit:int ->
  Coeffs.t ->
  Pb_paql.Package.t list
(** All valid packages (up to [limit], default 10_000), in enumeration
    order. Intended for small candidate sets: tests and the visual
    summary of the exploration interface. *)
