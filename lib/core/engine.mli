(** Package-query evaluation engine.

    Entry point for running a PaQL query against a database with one of
    the paper's strategies, or with the hybrid policy that "heuristically
    combines all of them" (§5):

    + derive §4.1 cardinality bounds — an empty interval proves
      infeasibility outright;
    + otherwise ask {!Cost_model} for per-strategy cost estimates and run
      the cheapest exact strategy when one is affordable (within 10× of
      the overall cheapest), else the cheapest heuristic;
    + when the chosen strategy exhausts its budget without a proof, fall
      back to heuristic local search and keep the better answer.

    With a {!Pb_par.Pool} of size > 1 the hybrid strategy races the
    chosen exact leg against a speculative local search on separate
    domains instead of running them back-to-back; the merge rule is the
    same as the sequential fallback, so reports are bit-identical at any
    pool size. *)

type strategy =
  | Brute_force of { use_pruning : bool }
  | Ilp
  | Local_search of Local_search.params
  | Anneal of Annealing.params
      (** simulated annealing (ablation alternative to local search) *)
  | Sql_generation of Sql_generate.params
      (** §4 option (i): enumerate candidate packages with SQL self-joins;
          exact but only applicable for narrow cardinality bounds *)
  | Hybrid

val strategy_name : strategy -> string

type report = {
  package : Pb_paql.Package.t option;  (** None: no valid package found *)
  objective : float option;
  proven_optimal : bool;
      (** true when the strategy proves optimality (or, for objective-less
          queries, when a package is found / infeasibility is proven) *)
  strategy_used : string;  (** strategy that produced the answer *)
  elapsed : float;
      (** wall-clock seconds of the strategy run itself, measured through
          its {!Pb_obs.Trace} span (for [Hybrid], both legs of a
          budget-exhausted fallback) *)
  stats : (string * string) list;
      (** per-strategy counters for display; each also feeds a typed
          [pb_engine_*] counter in {!Pb_obs.Metrics} *)
}

val evaluate :
  ?pool:Pb_par.Pool.t ->
  ?strategy:strategy ->
  ?ilp_max_nodes:int ->
  ?bf_max_examined:int ->
  Pb_sql.Database.t ->
  Pb_paql.Ast.t ->
  report
(** Parse-tree-in, package-out evaluation ([strategy] defaults to
    [Hybrid]). Every returned package has been re-checked against the
    {!Pb_paql.Semantics} oracle; a strategy whose answer fails the oracle
    is reported as having found nothing (with a ["verification"] stat),
    rather than returning a wrong package.

    [pool] (default {!Pb_par.Pool.get_default}, i.e. sized by
    [PB_DOMAINS]) parallelises brute-force enumeration and the hybrid
    strategy's exact-vs-local-search fallback; pool size 1 runs the
    sequential code paths unchanged. *)

val evaluate_coeffs :
  ?pool:Pb_par.Pool.t ->
  ?strategy:strategy ->
  ?ilp_max_nodes:int ->
  ?bf_max_examined:int ->
  Pb_sql.Database.t ->
  Coeffs.t ->
  report
(** Same, reusing a prepared {!Coeffs.t} (benchmarks call this to keep
    candidate generation out of the measured region). *)

val next_packages :
  ?limit:int ->
  ?ilp_max_nodes:int ->
  Pb_sql.Database.t ->
  Pb_paql.Ast.t ->
  Pb_paql.Package.t list
(** Successive packages, best first (§5 "retrieving more packages
    requires modifying and re-evaluating the query"): re-solves the ILP
    adding a no-good cut over the tuple variables after each answer, so
    indicator variables never spuriously differentiate packages. Falls
    back to pruned enumeration when the query is not linearizable.
    [limit] defaults to 5. Requires a query without REPEAT for the ILP
    path (cuts are binary); REPEAT queries use the enumeration path. *)
