(** Package-query evaluation engine.

    Entry point for running a PaQL query against a database with one of
    the paper's strategies, or with the hybrid policy that "heuristically
    combines all of them" (§5):

    + derive §4.1 cardinality bounds — an empty interval proves
      infeasibility outright;
    + otherwise ask {!Cost_model} for per-strategy cost estimates and run
      the cheapest exact strategy when one is affordable (within 10× of
      the overall cheapest), else the cheapest heuristic;
    + when the chosen strategy exhausts its budget without a proof, fall
      back to heuristic local search and keep the better answer.

    With a {!Pb_par.Pool} of size > 1 the hybrid strategy races the
    chosen exact leg against a speculative local search on separate
    domains instead of running them back-to-back; each leg runs under a
    {!Pb_util.Gov.child} of the request token and a proven-optimal exact
    leg cancels the speculative one. The merge rule is the same as the
    sequential fallback, so results are bit-identical at any pool size.

    Every run is governed by a {!Pb_util.Gov.t} token carrying the
    deadline, cancellation flag and resource budgets; when the caller
    does not supply one, [Gov.create ()] provides the historical default
    budgets (200k branch-and-bound nodes, 5M brute-force candidates) with
    no deadline. *)

type strategy =
  | Brute_force of { use_pruning : bool }
  | Ilp
  | Local_search of Local_search.params
  | Anneal of Annealing.params
      (** simulated annealing (ablation alternative to local search) *)
  | Sql_generation of Sql_generate.params
      (** §4 option (i): enumerate candidate packages with SQL self-joins;
          exact but only applicable for narrow cardinality bounds *)
  | Sketch_refine of Sketch_refine.params
      (** partition–sketch–refine (Brucato et al., SIGMOD'16): cluster
          the candidates over the constraint attributes, solve a small
          representative-level MILP, then refine one partition at a time
          with its real tuples — refine legs fan out on the domain pool
          under {!Pb_util.Gov.child} tokens. Scales to relations where a
          whole-relation MILP cannot even build its model; reports a
          sound optimality bound and gap when available (see
          {!Sketch_refine}) *)
  | Hybrid

val strategy_name : strategy -> string

type proof =
  | Optimal
      (** the returned package is proven optimal (or, for objective-less
          queries, proven valid) *)
  | Feasible
      (** best answer found within the budgets; no proof of optimality.
          [package = None] here means the strategy found nothing but
          infeasibility was not proven either *)
  | Infeasible  (** proven: no valid package exists *)
  | Cancelled
      (** the governance token was cancelled or its deadline passed;
          [package], if any, is the best incumbent at the stop.
          {e Anytime} strategies ([Sketch_refine]) instead report a
          governed stop that still has an incumbent in hand as
          [Feasible] — the partial answer is their serving contract —
          with a [("stopped", reason)] stat recording the early end;
          [Cancelled] then only appears when the stop left no package *)

val proof_to_string : proof -> string

type result = {
  package : Pb_paql.Package.t option;  (** None: no valid package found *)
  objective : float option;
  proof : proof;
  strategy_used : string;  (** strategy that produced the answer *)
  elapsed : float;
      (** wall-clock seconds of the strategy run itself, measured through
          its {!Pb_obs.Trace} span (for [Hybrid], both legs of a
          budget-exhausted fallback) *)
  stats : (string * string) list;
      (** per-strategy counters for display; each also feeds a typed
          [pb_engine_*] counter in {!Pb_obs.Metrics}. A governed stop
          adds a [("stopped", reason)] entry. *)
  progress : Pb_obs.Progress.event list;
      (** incumbent trajectory of this run, oldest first: one event per
          improvement of the best-known package, recorded by every
          strategy (branch-and-bound, brute force, local search —
          hybrid race legs included). Deliberately not part of [stats]:
          speculative hybrid legs make the event {e count} depend on the
          pool size even though the report itself is bit-identical. *)
}

val run :
  ?pool:Pb_par.Pool.t ->
  ?gov:Pb_util.Gov.t ->
  ?strategy:strategy ->
  Pb_sql.Database.t ->
  Pb_paql.Ast.t ->
  result
(** Parse-tree-in, package-out evaluation ([strategy] defaults to
    [Hybrid]). Every returned package has been re-checked against the
    {!Pb_paql.Semantics} oracle; a strategy whose answer fails the oracle
    is reported as having found nothing (with a ["verification"] stat),
    rather than returning a wrong package.

    [gov] governs the whole run — budgets, deadline and cancellation are
    observed inside every strategy loop and inside governed SQL
    evaluation. A cancellation or deadline stop yields
    [proof = Cancelled] with the best incumbent found so far; a plain
    budget stop yields [Feasible] (and, under [Hybrid], still triggers
    the local-search fallback, exactly as the un-governed engine did).

    [pool] (default {!Pb_par.Pool.get_default}, i.e. sized by
    [PB_DOMAINS]) parallelises brute-force enumeration and the hybrid
    strategy's exact-vs-local-search race; pool size 1 runs the
    sequential code paths unchanged. *)

val run_coeffs :
  ?pool:Pb_par.Pool.t ->
  ?gov:Pb_util.Gov.t ->
  ?strategy:strategy ->
  Pb_sql.Database.t ->
  Coeffs.t ->
  result
(** Same, reusing a prepared {!Coeffs.t} (benchmarks call this to keep
    candidate generation out of the measured region). *)

val next_packages :
  ?gov:Pb_util.Gov.t ->
  ?limit:int ->
  Pb_sql.Database.t ->
  Pb_paql.Ast.t ->
  Pb_paql.Package.t list
(** Successive packages, best first (§5 "retrieving more packages
    requires modifying and re-evaluating the query"): re-solves the ILP
    adding a no-good cut over the tuple variables after each answer, so
    indicator variables never spuriously differentiate packages. Falls
    back to pruned enumeration when the query is not linearizable.
    [limit] defaults to 5. [gov] is shared across the successive solves
    (so a node budget bounds their total, and cancellation stops the
    sequence). Requires a query without REPEAT for the ILP path (cuts
    are binary); REPEAT queries use the enumeration path. *)
