(** Offline candidate partitioner for the SketchRefine strategy.

    Recursive median splitting over the constraint-attribute feature
    space (a kd-tree-style quantile grid, the "offline partitioning" of
    Brucato et al.'s SIGMOD'16 SketchRefine): starting from one group
    holding every candidate, repeatedly split the largest group along
    the feature dimension with the widest value spread at its median,
    until [target] groups exist or no group can be split further. A
    group whose members agree on every feature is never split, so
    all-identical inputs (or an empty feature list, e.g. a COUNT-only
    query) yield a single partition and the group count never exceeds
    the number of distinct feature vectors.

    Guarantees, relied on by the sketch models and locked down by
    [test/test_partition.ml]:

    - groups are disjoint, nonempty, and cover [0, n) exactly;
    - each group's index array is ascending, and groups are ordered by
      their smallest member, so the output is canonical;
    - centroids are per-feature means, hence always inside the group's
      per-feature [min, max] envelope;
    - the construction is purely sequential and deterministic: no
      randomness, no domain pool, so the same inputs give bit-identical
      partitions at any [PB_DOMAINS]. *)

type t = {
  groups : int array array;
      (** [groups.(p)] = candidate indices of partition [p], ascending *)
  centroids : float array array;
      (** [centroids.(p).(d)] = mean of feature [d] over group [p] *)
}

val build : target:int -> features:float array array -> n:int -> t
(** [build ~target ~features ~n] partitions candidates [0, n) using
    [features] (each a per-candidate value array of length [n]).
    [target] is clamped to [1, n]; [n = 0] yields zero groups. *)

val group_count : t -> int

val group_of : t -> int -> int
(** [group_of t i] = the partition holding candidate [i].
    O(groups); intended for tests and materialization setup. *)
