(** Simulated annealing over packages — an alternative heuristic to the
    §4.2 greedy local search, provided for the ablation study (the paper:
    "each of the evaluation techniques we adopted have different
    strengths and weaknesses").

    The state space is the multiplicity vector; moves are the same
    replacement / add / remove set as {!Local_search}. The energy of a
    state combines normalized constraint violation with a (scaled,
    negated for MAXIMIZE) objective term, so the walk first finds the
    feasible region and then drifts toward good objectives while still
    escaping the local optima that stop hill climbing. Geometric cooling;
    the best {e valid} state visited is returned, never the final one. *)

type params = {
  seed : int;
  steps : int;  (** total proposals (default 20_000) *)
  initial_temperature : float;  (** default 1.0 *)
  cooling : float;  (** geometric factor per step (default 0.9995) *)
  objective_weight : float;
      (** weight of the objective in the energy relative to one unit of
          constraint violation (default 0.1) *)
}

val default_params : params

type outcome = {
  best : Pb_paql.Package.t option;
  best_objective : float option;
  steps_taken : int;
      (** proposals actually made; less than [params.steps] when the
          governance token stopped the walk early *)
  accepted : int;  (** proposals accepted *)
  valid_visits : int;  (** states passing the compiled validity check *)
}

val search : ?params:params -> ?gov:Pb_util.Gov.t -> Coeffs.t -> outcome
(** [gov]'s cancellation flag and deadline are polled every 256 steps;
    a stop ends the walk early, keeping the best valid state visited. *)
