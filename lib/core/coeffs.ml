module Analyze = Pb_paql.Analyze
module Ast = Pb_paql.Ast
module Package = Pb_paql.Package
module Semantics = Pb_paql.Semantics
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Value = Pb_relation.Value

let src = Logs.Src.create "pb.core" ~doc:"PackageBuilder evaluation engine"

module Log = (val Logs.src_log src : Logs.LOG)

type compiled_atom =
  | C_linear of {
      coef : float array;
      cmp : Analyze.cmp;
      rhs : float;
      has_sum : bool;
    }
  | C_avg of { arg : float array; cmp : Analyze.cmp; rhs : float }
  | C_ext of {
      maximum : bool;
      arg : float array;
      cmp : Analyze.cmp;
      rhs : float;
    }

type compiled_formula =
  | C_true
  | C_false
  | C_atom of compiled_atom
  | C_and of compiled_formula list
  | C_or of compiled_formula list

type t = {
  db : Pb_sql.Database.t;
  query : Ast.t;
  candidates : Relation.t;
  batch : Semantics.batch option;
  n : int;
  max_mult : int;
  formula : (compiled_formula, string) result;
  objective : (Ast.direction * float array) option option;
}

(* Package-level expression arguments reference the package alias; the
   candidate relation is qualified by the input alias, so evaluate against
   a re-qualified view. *)
let tuple_values_of ?batch ~pkg_schema ~rows expr =
  let by_rows () =
    (* One compile per aggregate argument, one closure call per tuple. No
       db in the fallback: validation arguments are row-local (a subquery
       here errors identically to the old interpreter call). *)
    let eval_row =
      Pb_sql.Compile.expr
        ~fallback:(fun row e -> Pb_sql.Executor.eval_expr pkg_schema row e)
        pkg_schema expr
    in
    Array.map
      (fun row ->
        match Value.to_float (eval_row row) with
        | Some x -> x
        | None ->
            Log.warn (fun m ->
                m "non-numeric aggregate argument %s; treating as 0"
                  (Pb_sql.Ast.expr_to_string expr));
            0.0)
      rows
  in
  (* Columnar candidates: run the argument as a batch kernel (coefficient
     extraction is the hot loop of [make] on large inputs). Kernel floats
     are the same float image the row path computes, so the vectors are
     bit-identical; the kernel bails (e.g. string-valued arguments,
     subqueries) back to the per-row interpreter. *)
  match batch with
  | Some b -> (
      match Semantics.batch_values b ~schema:pkg_schema expr with
      | Some vals -> vals
      | None -> by_rows ())
  | None -> by_rows ()

let compile_atom ?batch ~pkg_schema ~rows ~n = function
  | Analyze.Linear { terms; cmp; rhs } ->
      let coef = Array.make n 0.0 in
      let has_sum = ref false in
      List.iter
        (fun (c, term) ->
          match term with
          | Analyze.Count_term ->
              Array.iteri (fun i x -> coef.(i) <- x +. c) coef
          | Analyze.Sum_term e ->
              has_sum := true;
              let vals = tuple_values_of ?batch ~pkg_schema ~rows e in
              Array.iteri (fun i x -> coef.(i) <- coef.(i) +. (c *. x)) vals)
        terms;
      C_linear { coef; cmp; rhs; has_sum = !has_sum }
  | Analyze.Avg_atom { arg; cmp; rhs } ->
      C_avg { arg = tuple_values_of ?batch ~pkg_schema ~rows arg; cmp; rhs }
  | Analyze.Extremum { maximum; arg; cmp; rhs } ->
      C_ext
        { maximum; arg = tuple_values_of ?batch ~pkg_schema ~rows arg; cmp; rhs }

let rec compile_formula ?batch ~pkg_schema ~rows ~n = function
  | Analyze.True -> C_true
  | Analyze.False -> C_false
  | Analyze.Atom a -> C_atom (compile_atom ?batch ~pkg_schema ~rows ~n a)
  | Analyze.And fs ->
      C_and (List.map (compile_formula ?batch ~pkg_schema ~rows ~n) fs)
  | Analyze.Or fs ->
      C_or (List.map (compile_formula ?batch ~pkg_schema ~rows ~n) fs)

let make db (query : Ast.t) =
  (match Analyze.validate_query query with
  | Ok () -> ()
  | Error msg -> failwith ("ill-formed PaQL query: " ^ msg));
  let batch = Semantics.candidates_batch db query in
  let candidates =
    match batch with
    | Some b -> Semantics.batch_candidates b
    | None -> Semantics.candidates db query
  in
  let n = Relation.cardinality candidates in
  let rows = Relation.rows candidates in
  let pkg_schema =
    Schema.qualify query.package_alias (Relation.schema candidates)
  in
  let formula =
    match query.such_that with
    | None -> Ok C_true
    | Some e -> (
        match Analyze.linearize e with
        | Ok f -> Ok (compile_formula ?batch ~pkg_schema ~rows ~n f)
        | Error reason -> Error reason)
  in
  let objective =
    match query.objective with
    | None -> None
    | Some (dir, e) -> (
        match Analyze.linearize_objective e with
        | Error _ -> Some None
        | Ok terms ->
            let coef = Array.make n 0.0 in
            List.iter
              (fun (c, term) ->
                match term with
                | Analyze.Count_term ->
                    Array.iteri (fun i x -> coef.(i) <- x +. c) coef
                | Analyze.Sum_term arg ->
                    let vals = tuple_values_of ?batch ~pkg_schema ~rows arg in
                    Array.iteri
                      (fun i x -> coef.(i) <- coef.(i) +. (c *. x))
                      vals)
              terms;
            Some (Some (dir, coef)))
  in
  { db; query; candidates; batch; n; max_mult = Ast.max_multiplicity query;
    formula; objective }

let tuple_values t expr =
  let pkg_schema =
    Schema.qualify t.query.package_alias (Relation.schema t.candidates)
  in
  tuple_values_of ?batch:t.batch ~pkg_schema
    ~rows:(Relation.rows t.candidates) expr

let atom_holds atom mult =
  let n = Array.length mult in
  match atom with
  | C_linear { coef; cmp; rhs; has_sum } ->
      let total = ref 0.0 and any = ref false in
      for i = 0 to n - 1 do
        if mult.(i) > 0 then begin
          any := true;
          total := !total +. (float_of_int mult.(i) *. coef.(i))
        end
      done;
      (* SUM over the empty package is NULL in SQL: unsatisfied. *)
      ((not has_sum) || !any) && Analyze.eval_cmp cmp !total rhs
  | C_avg { arg; cmp; rhs } ->
      let total = ref 0.0 and count = ref 0 in
      for i = 0 to n - 1 do
        if mult.(i) > 0 then begin
          total := !total +. (float_of_int mult.(i) *. arg.(i));
          count := !count + mult.(i)
        end
      done;
      !count > 0 && Analyze.eval_cmp cmp (!total /. float_of_int !count) rhs
  | C_ext { maximum; arg; cmp; rhs } ->
      let best = ref nan and seen = ref false in
      for i = 0 to n - 1 do
        if mult.(i) > 0 then
          if not !seen then begin
            best := arg.(i);
            seen := true
          end
          else if maximum then best := Float.max !best arg.(i)
          else best := Float.min !best arg.(i)
      done;
      !seen && Analyze.eval_cmp cmp !best rhs

let rec formula_holds f mult =
  match f with
  | C_true -> true
  | C_false -> false
  | C_atom a -> atom_holds a mult
  | C_and fs -> List.for_all (fun f -> formula_holds f mult) fs
  | C_or fs -> List.exists (fun f -> formula_holds f mult) fs

let check_mult t mult =
  Array.for_all (fun m -> m <= t.max_mult && m >= 0) mult
  &&
  match t.formula with
  | Ok f -> formula_holds f mult
  | Error _ ->
      Semantics.is_valid ~db:t.db t.query
        (Package.of_multiplicities t.candidates ~alias:t.query.package_alias
           mult)

let package_of_mult t mult =
  Package.of_multiplicities t.candidates ~alias:t.query.package_alias mult

let check t pkg = check_mult t (Package.multiplicities pkg)

let objective_of_mult t mult =
  match t.objective with
  | None | Some None -> None
  | Some (Some (_, coef)) ->
      let total = ref 0.0 and any = ref false in
      Array.iteri
        (fun i m ->
          if m > 0 then begin
            any := true;
            total := !total +. (float_of_int m *. coef.(i))
          end)
        mult;
      if !any then Some !total else None
