(** PaQL → integer linear program (the §4 solver path: "a PaQL query is
    translated into a linear program and then solved using existing
    constraint solvers").

    One integer decision variable per candidate tuple holds its package
    multiplicity (binary without REPEAT, [0, 1+k] with REPEAT k). The
    SUCH THAT formula maps to rows as follows:

    - a linear atom becomes one constraint whose coefficients are the
      precomputed per-tuple aggregate contributions;
    - AVG(e) cmp c becomes Σ (eᵢ - c)·xᵢ cmp 0 together with COUNT ≥ 1;
    - MIN(e) ≥ c (resp. MAX(e) ≤ c) zeroes out the variables of tuples
      violating the bound, plus COUNT ≥ 1;
    - MIN(e) ≤ c (resp. MAX(e) ≥ c) requires a witness:
      Σ_{i : eᵢ ≤ c} xᵢ ≥ 1;
    - disjunctions introduce one binary indicator per branch with
      Σ indicators ≥ 1, and every atom inside a branch is big-M-relaxed
      against its indicator (the big-M is computed per atom from the
      variable bounds, so the relaxation stays as tight as the data
      allows). Nested And/Or structures recurse with indicator linking.

    Strict comparisons are tightened by a small epsilon (1e-6); with
    integer-valued data this is exact.

    Raises [Failure] when the formula or the objective is not
    linearizable — callers check {!Coeffs.t.formula} first. *)

type t = {
  model : Pb_lp.Model.t;
  vars : int array;  (** vars.(i) = model variable of candidate tuple i *)
}

val strict_eps : float
(** Epsilon used to tighten strict comparisons (1e-6). *)

val cmp_to_row : Pb_paql.Analyze.cmp -> float -> Pb_lp.Model.sense * float
(** Map a comparison to a solver row sense: [Le]/[Ge] pass through,
    [Lt]/[Gt] tighten the right-hand side by {!strict_eps}. Shared with
    {!Sketch_refine} so both model builders agree on strictness. *)

val build : Coeffs.t -> t
(** Model with multiplicity variables, all constraint rows, and the
    (possibly zero) objective. *)

val package_of_solution : Coeffs.t -> t -> float array -> Pb_paql.Package.t
(** Round the solver point's tuple variables to a package (indicator
    variables are ignored). *)
