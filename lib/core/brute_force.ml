module Ast = Pb_paql.Ast
module Semantics = Pb_paql.Semantics
module Pool = Pb_par.Pool
module Progress = Pb_obs.Progress
module Gov = Pb_util.Gov

(* Cancellation/deadline poll (budget is enforced through the captured
   [max_examined], not through the token's meter, so the walk stays
   bit-identical at any pool size for non-cancelled runs — the poll only
   changes behaviour once a stop has actually been requested). *)
let stopped gov () =
  match gov with Some g -> Gov.check g <> None | None -> false

(* Incumbent improvements go to the progress stream keyed by the token's
   family. Emission points sit on the deterministic side of the search —
   the sequential walk and the parallel replay merge, never inside
   speculative chunks — so the trajectory is identical at any pool size. *)
let emit_incumbent gov ~nodes obj =
  match gov with
  | Some g ->
      Progress.incumbent ~key:(Gov.family_id g) ~strategy:"brute-force" ~nodes
        obj
  | None -> ()

type outcome = {
  best : Pb_paql.Package.t option;
  best_objective : float option;
  examined : int;
  complete : bool;
}

exception Stop

type walk_state = {
  mutable examined : int;
  mutable best_mult : int array option;
  mutable best_obj : float option;
  mutable truncated : bool;
}

(* Enumerate multiplicity vectors of total cardinality within [lo, hi]
   and call [visit] on each. Branches that cannot reach [lo] with the
   remaining positions are cut. *)
let walk ~n ~max_mult ~lo ~hi visit =
  let mult = Array.make n 0 in
  let rec go i total =
    let remaining = (n - i) * max_mult in
    if total > hi || total + remaining < lo then ()
    else if i = n then visit mult
    else
      for m = 0 to max_mult do
        mult.(i) <- m;
        go (i + 1) (total + m);
        mult.(i) <- 0
      done
  in
  if lo <= hi then go 0 0

let objective_dir (c : Coeffs.t) =
  match c.query.objective with Some (dir, _) -> Some dir | None -> None

(* Objective of a candidate multiplicity vector, by compiled coefficients
   when linear, otherwise through the semantic oracle. *)
let objective_of c mult =
  match (c : Coeffs.t).objective with
  | None -> None
  | Some (Some _) -> Coeffs.objective_of_mult c mult
  | Some None -> Semantics.objective_value ~db:c.Coeffs.db c.query (Coeffs.package_of_mult c mult)

let search_sequential ~gov ~max_examined ~lo ~hi (c : Coeffs.t) =
  let st =
    { examined = 0; best_mult = None; best_obj = None; truncated = false }
  in
  let dir = objective_dir c in
  let visit mult =
    if st.examined land 255 = 0 && stopped gov () then begin
      st.truncated <- true;
      raise Stop
    end;
    if st.examined >= max_examined then begin
      st.truncated <- true;
      raise Stop
    end;
    st.examined <- st.examined + 1;
    if Coeffs.check_mult c mult then begin
      match dir with
      | None ->
          st.best_mult <- Some (Array.copy mult);
          raise Stop
      | Some dir -> (
          let obj = objective_of c mult in
          match (obj, st.best_obj) with
          | None, _ ->
              (* NULL objective (e.g. empty package): keep only if nothing
                 else was found. *)
              if st.best_mult = None then st.best_mult <- Some (Array.copy mult)
          | Some v, None ->
              st.best_mult <- Some (Array.copy mult);
              st.best_obj <- Some v;
              emit_incumbent gov ~nodes:st.examined v
          | Some v, Some best ->
              if Semantics.better dir v best then begin
                st.best_mult <- Some (Array.copy mult);
                st.best_obj <- Some v;
                emit_incumbent gov ~nodes:st.examined v
              end)
    end
  in
  (try walk ~n:c.n ~max_mult:c.max_mult ~lo ~hi visit with Stop -> ());
  {
    best = Option.map (Coeffs.package_of_mult c) st.best_mult;
    best_objective = st.best_obj;
    examined = st.examined;
    complete = not st.truncated;
  }

(* ---- parallel search ------------------------------------------------- *)

(* The lexicographic walk is partitioned by fixing the first [plen]
   multiplicities: every prefix (enumerated in walk order, with the same
   cardinality cut) becomes one chunk that walks the remaining suffix.
   Chunks run speculatively on the pool with a per-chunk budget of
   [max_examined]; a sequential *replay* over the chunk results in chunk
   order then reconstructs exactly what the sequential walk would have
   produced — same best package (first-best merge over an ordered
   partition = global first-best), same [examined] count, same
   truncation point.  Chunks abort early (and are marked dirty) when the
   pooled visit count passes the global budget or, for objective-free
   queries, when a lower-indexed chunk already found a package; a dirty
   or over-budget chunk is re-run sequentially during the replay with
   the exact remaining budget, so the boundary chunk behaves just as it
   would have in the sequential walk. *)

type chunk_res = {
  cr_examined : int;
  cr_best_mult : int array option;
  cr_best_obj : float option;
  cr_found : bool;  (* objective-free query: stopped at first valid *)
  cr_truncated : bool;  (* local budget exhausted *)
  cr_dirty : bool;  (* aborted early: counts unusable, must re-run *)
}

let search_parallel pool ~gov ~max_examined ~lo ~hi (c : Coeffs.t) =
  let n = c.n and max_mult = c.max_mult in
  let dir = objective_dir c in
  (* Prefix length: enough chunks to keep every domain busy. *)
  let plen =
    let target = Pool.size pool * 4 in
    let rec go p count =
      if count >= target || p >= n then p else go (p + 1) (count * (max_mult + 1))
    in
    go 0 1
  in
  let prefixes = ref [] in
  let pre = Array.make (max plen 1) 0 in
  let rec gen i total =
    let remaining = (n - i) * max_mult in
    if total > hi || total + remaining < lo then ()
    else if i = plen then
      prefixes := (Array.sub pre 0 plen, total) :: !prefixes
    else
      for m = 0 to max_mult do
        pre.(i) <- m;
        gen (i + 1) (total + m);
        pre.(i) <- 0
      done
  in
  gen 0 0;
  let chunks = Array.of_list (List.rev !prefixes) in
  let nchunks = Array.length chunks in
  if nchunks = 0 then
    { best = None; best_objective = None; examined = 0; complete = true }
  else begin
    let global_examined = Atomic.make 0 in
    let found_idx = Atomic.make max_int in
    let publish_found j =
      let rec cas () =
        let cur = Atomic.get found_idx in
        if j < cur && not (Atomic.compare_and_set found_idx cur j) then cas ()
      in
      cas ()
    in
    let run_chunk ~speculative idx ~budget =
      let prefix, ptotal = chunks.(idx) in
      let mult = Array.make n 0 in
      Array.blit prefix 0 mult 0 plen;
      let st =
        { examined = 0; best_mult = None; best_obj = None; truncated = false }
      in
      let found = ref false and dirty = ref false in
      let pending = ref 0 in
      let flush () =
        if !pending > 0 then begin
          ignore (Atomic.fetch_and_add global_examined !pending);
          pending := 0
        end
      in
      let visit mult =
        if st.examined land 255 = 0 then
          if speculative then begin
            flush ();
            if
              Atomic.get global_examined >= max_examined
              || Atomic.get found_idx < idx
              || stopped gov ()
            then begin
              dirty := true;
              raise Stop
            end
          end
          else if stopped gov () then begin
            st.truncated <- true;
            raise Stop
          end;
        if st.examined >= budget then begin
          st.truncated <- true;
          raise Stop
        end;
        st.examined <- st.examined + 1;
        incr pending;
        if Coeffs.check_mult c mult then begin
          match dir with
          | None ->
              st.best_mult <- Some (Array.copy mult);
              found := true;
              if speculative then publish_found idx;
              raise Stop
          | Some dir -> (
              let obj = objective_of c mult in
              match (obj, st.best_obj) with
              | None, _ ->
                  if st.best_mult = None then
                    st.best_mult <- Some (Array.copy mult)
              | Some v, None ->
                  st.best_mult <- Some (Array.copy mult);
                  st.best_obj <- Some v
              | Some v, Some best ->
                  if Semantics.better dir v best then begin
                    st.best_mult <- Some (Array.copy mult);
                    st.best_obj <- Some v
                  end)
        end
      in
      let rec go i total =
        let remaining = (n - i) * max_mult in
        if total > hi || total + remaining < lo then ()
        else if i = n then visit mult
        else
          for m = 0 to max_mult do
            mult.(i) <- m;
            go (i + 1) (total + m);
            mult.(i) <- 0
          done
      in
      (try go plen ptotal with Stop -> ());
      if speculative then flush ();
      {
        cr_examined = st.examined;
        cr_best_mult = st.best_mult;
        cr_best_obj = st.best_obj;
        cr_found = !found;
        cr_truncated = st.truncated;
        cr_dirty = !dirty;
      }
    in
    let results = Array.make nchunks None in
    (* [should_stop] skips chunks still queued once a cancellation or
       deadline lands; the replay below notices the stop before it would
       ever need a skipped chunk's result. *)
    Pool.parallel_for pool ~chunk_size:1 ~should_stop:(stopped gov) nchunks
      (fun idx ->
        results.(idx) <- Some (run_chunk ~speculative:true idx ~budget:max_examined));
    (* Replay in chunk order. *)
    let remaining = ref max_examined in
    let acc_examined = ref 0 in
    let g_mult = ref None and g_obj = ref None in
    let truncated = ref false in
    let stop = ref false in
    let idx = ref 0 in
    while (not !stop) && !idx < nchunks do
      if stopped gov () then begin
        (* A cancelled walk reports what it merged so far; replay (and
           any dirty-chunk re-run) must not keep burning CPU. *)
        truncated := true;
        stop := true
      end
      else begin
      let r =
        match results.(!idx) with
        | Some r -> r
        | None ->
            (* Chunk skipped by [should_stop] on a stop that has since
               been observed here only in a racy interleaving; re-run it
               within the remaining budget. *)
            run_chunk ~speculative:false !idx ~budget:!remaining
      in
      let r =
        if r.cr_dirty || r.cr_examined > !remaining then
          run_chunk ~speculative:false !idx ~budget:!remaining
        else r
      in
      acc_examined := !acc_examined + r.cr_examined;
      remaining := !remaining - r.cr_examined;
      (match dir with
      | None -> if r.cr_found then begin
          g_mult := r.cr_best_mult;
          stop := true
        end
      | Some d -> (
          match (r.cr_best_mult, !g_mult) with
          | None, _ -> ()
          | Some _, None ->
              g_mult := r.cr_best_mult;
              g_obj := r.cr_best_obj;
              (match r.cr_best_obj with
              | Some v -> emit_incumbent gov ~nodes:!acc_examined v
              | None -> ())
          | Some _, Some _ -> (
              match (r.cr_best_obj, !g_obj) with
              | None, _ ->
                  (* chunk best has NULL objective: a later NULL-objective
                     candidate never replaces an existing best *)
                  ()
              | Some v, None ->
                  g_mult := r.cr_best_mult;
                  g_obj := Some v;
                  emit_incumbent gov ~nodes:!acc_examined v
              | Some v, Some best ->
                  if Semantics.better d v best then begin
                    g_mult := r.cr_best_mult;
                    g_obj := Some v;
                    emit_incumbent gov ~nodes:!acc_examined v
                  end)));
      if r.cr_truncated then begin
        truncated := true;
        stop := true
      end;
      incr idx
      end
    done;
    {
      best = Option.map (Coeffs.package_of_mult c) !g_mult;
      best_objective = !g_obj;
      examined = !acc_examined;
      complete = not !truncated;
    }
  end

(* Below this many candidate positions the chunked walk cannot win: the
   prefix split would dominate the suffix work. *)
let par_min_n = 10

let search ?pool ?gov ?(use_pruning = true) (c : Coeffs.t) =
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  (* The candidate budget comes from the governance token (remaining
     family-wide [Bf_candidates] allowance), captured once up front so
     the walk's truncation point is deterministic; no token means the
     historical 5M default. *)
  let max_examined =
    match gov with
    | Some g -> (
        match Gov.budget_left g Gov.Bf_candidates with
        | Some left -> left
        | None -> max_int)
    | None -> 5_000_000
  in
  let nm = c.n * c.max_mult in
  let b =
    if use_pruning then Pruning.cardinality_bounds c
    else { Pruning.lo = 0; hi = nm }
  in
  let lo = max 0 b.lo and hi = min nm b.hi in
  let out =
    if lo > hi then
      { best = None; best_objective = None; examined = 0; complete = true }
    else if Pool.size pool > 1 && c.n >= par_min_n then
      search_parallel pool ~gov ~max_examined ~lo ~hi c
    else search_sequential ~gov ~max_examined ~lo ~hi c
  in
  (match gov with
  | Some g -> Gov.spend g Gov.Bf_candidates out.examined
  | None -> ());
  out

let enumerate_valid ?(use_pruning = true) ?(limit = 10_000) (c : Coeffs.t) =
  let nm = c.n * c.max_mult in
  let b =
    if use_pruning then Pruning.cardinality_bounds c
    else { Pruning.lo = 0; hi = nm }
  in
  let out = ref [] and count = ref 0 in
  let visit mult =
    if Coeffs.check_mult c mult then begin
      out := Coeffs.package_of_mult c (Array.copy mult) :: !out;
      incr count;
      if !count >= limit then raise Stop
    end
  in
  (try walk ~n:c.n ~max_mult:c.max_mult ~lo:(max 0 b.lo) ~hi:(min nm b.hi) visit
   with Stop -> ());
  List.rev !out
