(* Course packages with prerequisite constraints — the §6 related-work
   claim: "Package queries can be used to provide set-based
   recommendations, such as those available in CourseRank. PaQL offers a
   more general framework for package recommendations. For instance, it
   can easily express pre-requisite constraints typical of course package
   recommendation systems."

   A prerequisite "cs201 requires cs101" is the linear global constraint
   SUM(P.is_cs201) <= SUM(P.is_cs101): a schedule may only include the
   later course when it also includes the earlier one. Chaining these
   gives multi-level prerequisite trees — all on the exact ILP path.

   Run with:  dune exec examples/courses.exe *)

let schedule_query ~require_cs301 =
  Printf.sprintf
    "SELECT PACKAGE(C) AS S FROM courses C WHERE C.credits >= 2 SUCH THAT \
     COUNT(*) = 5 AND SUM(S.credits) BETWEEN 14 AND 20 AND SUM(S.hours) <= \
     50 AND SUM(S.is_cs201) <= SUM(S.is_cs101) AND SUM(S.is_cs301) <= \
     SUM(S.is_cs201) AND SUM(S.is_cs401) <= SUM(S.is_cs301)%s MAXIMIZE \
     SUM(S.rating)"
    (if require_cs301 then " AND SUM(S.is_cs301) = 1" else "")

let show_schedule db query_text =
  let query = Pb_paql.Parser.parse query_text in
  let report = Pb_core.Engine.run db query in
  (match report.Pb_core.Engine.package with
  | Some pkg ->
      print_string
        (Pb_relation.Relation.to_table
           (Pb_relation.Relation.project
              (Pb_paql.Package.materialize pkg)
              [ "s.code"; "s.dept"; "s.credits"; "s.level"; "s.rating"; "s.hours" ]));
      Printf.printf "total rating %s, strategy %s%s\n"
        (match report.Pb_core.Engine.objective with
        | Some v -> Printf.sprintf "%g" v
        | None -> "-")
        report.Pb_core.Engine.strategy_used
        (if (report.Pb_core.Engine.proof = Pb_core.Engine.Optimal) then " (proven optimal)" else "")
  | None -> print_endline "no feasible schedule");
  report

let () =
  let db = Pb_sql.Database.create () in
  Pb_workload.Workload.install ~seed:23 ~electives:30 db;

  print_endline "Five-course schedule, 14-20 credits, <= 50 weekly hours,";
  print_endline "prerequisite chain cs101 -> cs201 -> cs301 -> cs401:\n";
  let unconstrained = show_schedule db (schedule_query ~require_cs301:false) in

  print_endline "\nNow the student insists on taking cs301 this term —";
  print_endline "the prerequisites must come along:\n";
  let with_core = show_schedule db (schedule_query ~require_cs301:true) in

  (* Check the prerequisite closure explicitly. *)
  (match with_core.Pb_core.Engine.package with
  | Some pkg ->
      let have code =
        Pb_paql.Package.sum_column pkg ("is_" ^ code) > 0.5
      in
      Printf.printf "\ncs301 in schedule: %b; cs201 pulled in: %b; cs101 \
                     pulled in: %b; cs401 optional: %b\n"
        (have "cs301") (have "cs201") (have "cs101")
        (not (have "cs401") || have "cs401")
  | None -> ());

  (* The objective trade-off: forcing the chain usually costs rating. *)
  match
    ( unconstrained.Pb_core.Engine.objective,
      with_core.Pb_core.Engine.objective )
  with
  | Some free, Some core ->
      Printf.printf
        "\nrating cost of requiring the core chain: %g (%g -> %g)\n"
        (free -. core) free core
  | _ -> ()
