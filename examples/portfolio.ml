(* Investment portfolio — the paper's third motivating scenario.

   "The client has a budget of $50K, wants to invest at least 30% of the
   assets in technology, and wants a balance of short-term and long-term
   options."

   The 30%-in-tech requirement is a ratio of two package SUMs — naively
   non-linear — but PaQL can state it as the equivalent linear form
   SUM(price·is_tech) - 0.3·SUM(price) >= 0, which the analyzer
   recognizes as a linear combination of SUM aggregates, so the exact ILP
   path applies. The short/long balance bounds the difference of two
   indicator sums.

   Run with:  dune exec examples/portfolio.exe *)

let query_text =
  "SELECT PACKAGE(S) AS F FROM stocks S WHERE S.risk <= 0.7 \
   SUCH THAT COUNT(*) BETWEEN 5 AND 12 \
   AND SUM(F.price) <= 50000 \
   AND SUM(F.price * F.is_tech) - 0.3 * SUM(F.price) >= 0 \
   AND SUM(F.is_short) - SUM(F.is_long) BETWEEN -1 AND 1 \
   MAXIMIZE SUM(F.expected_return)"

let () =
  let db = Pb_sql.Database.create () in
  Pb_workload.Workload.install ~seed:55 ~stocks_n:150 db;

  let query = Pb_paql.Parser.parse query_text in
  print_endline "Broker's query:";
  Printf.printf "  %s\n\n" (Pb_paql.Ast.to_string query);
  print_string (Pb_explore.Describe.describe_query query);
  print_newline ();

  let report = Pb_core.Engine.run db query in
  match report.Pb_core.Engine.package with
  | None -> print_endline "no feasible portfolio"
  | Some pkg ->
      print_endline "Selected portfolio:";
      print_string (Pb_paql.Package.to_string pkg);
      let total = Pb_paql.Package.sum_column pkg "price" in
      let tech =
        (* SUM(price * is_tech): weight each selected stock's price by the
           tech flag. *)
        List.fold_left
          (fun acc i ->
            let base = Pb_paql.Package.base pkg in
            let price =
              Option.value ~default:0.0
                (Pb_relation.Value.to_float
                   (Pb_relation.Relation.get base i "price"))
            in
            let flag =
              Option.value ~default:0.0
                (Pb_relation.Value.to_float
                   (Pb_relation.Relation.get base i "is_tech"))
            in
            acc
            +. (float_of_int (Pb_paql.Package.multiplicity pkg i)
               *. price *. flag))
          0.0
          (Pb_paql.Package.support pkg)
      in
      Printf.printf "\ntotal invested: $%.2f (budget $50,000)\n" total;
      Printf.printf "tech share:     %.1f%% (required >= 30%%)\n"
        (100.0 *. tech /. total);
      Printf.printf "short/long:     %g / %g\n"
        (Pb_paql.Package.sum_column pkg "is_short")
        (Pb_paql.Package.sum_column pkg "is_long");
      (match report.Pb_core.Engine.objective with
      | Some r -> Printf.printf "expected return: %g%% (summed)\n" r
      | None -> ());
      Printf.printf "strategy: %s%s\n" report.Pb_core.Engine.strategy_used
        (if (report.Pb_core.Engine.proof = Pb_core.Engine.Optimal) then " (proven optimal)"
         else "");

      (* Compare against the heuristic to illustrate §4's trade-off. *)
      let ls =
        Pb_core.Engine.run
          ~strategy:
            (Pb_core.Engine.Local_search Pb_core.Local_search.default_params)
          db query
      in
      (match (report.Pb_core.Engine.objective, ls.Pb_core.Engine.objective) with
      | Some exact, Some heur ->
          Printf.printf
            "\nlocal search reaches %.1f%% of the exact optimum (%g vs %g)\n"
            (100.0 *. heur /. exact) heur exact
      | _ -> print_endline "\nlocal search found no portfolio")
