(* Vacation planner — the paper's second motivating scenario.

   "A couple wants to organize a relaxing vacation at a tropical
   destination. They do not want to spend more than $2,000 on flights and
   hotels combined. They also want to be in walking distance from the
   beach, unless their budget can fit a rental car, in which case they
   are willing to stay farther away."

   The package mixes heterogeneous items (flights, hotels, cars) from one
   relation with 0/1 indicator columns, and the beach-unless-car clause is
   a genuine disjunction over global constraints — it exercises the
   indicator-variable ILP translation.

   Run with:  dune exec examples/vacation.exe *)

let () =
  let db = Pb_sql.Database.create () in
  Pb_workload.Workload.install ~seed:33 ~destinations:6 db;

  (* Exactly one flight and one hotel; at most one car; total <= $2000;
     within 1.5 km of the beach OR a rental car in the package. *)
  let base_query destination =
    Printf.sprintf
      "SELECT PACKAGE(T) AS V FROM travel_items T WHERE T.destination = '%s' \
       SUCH THAT SUM(V.is_flight) = 1 AND SUM(V.is_hotel) = 1 AND \
       SUM(V.is_car) <= 1 AND SUM(V.price) <= 2000 AND (MAX(V.beach_distance) \
       <= 1.5 OR SUM(V.is_car) = 1) MAXIMIZE SUM(V.rating)"
      destination
  in

  (* Which destinations exist in this workload? Ask the SQL engine. *)
  let destinations =
    match
      Pb_sql.Executor.execute_sql db
        "SELECT DISTINCT destination FROM travel_items ORDER BY destination"
    with
    | Pb_sql.Executor.Rows rel ->
        List.map
          (fun row -> Pb_relation.Value.to_string row.(0))
          (Pb_relation.Relation.to_list rel)
    | _ -> []
  in
  Printf.printf "destinations: %s\n\n" (String.concat ", " destinations);

  (* Evaluate the package query per destination and keep the best trip. *)
  let best = ref None in
  List.iter
    (fun dest ->
      let query = Pb_paql.Parser.parse (base_query dest) in
      let report = Pb_core.Engine.run db query in
      match (report.Pb_core.Engine.package, report.Pb_core.Engine.objective) with
      | Some pkg, Some rating ->
          Printf.printf "%-12s rating %-5g $%-8g %s\n" dest rating
            (Pb_paql.Package.sum_column pkg "price")
            (if Pb_paql.Package.sum_column pkg "is_car" > 0.5 then
               "(with rental car)"
             else "(walking distance)");
          (match !best with
          | Some (_, _, r) when r >= rating -> ()
          | _ -> best := Some (dest, pkg, rating))
      | _ -> Printf.printf "%-12s no package within budget\n" dest)
    destinations;

  match !best with
  | None -> print_endline "\nno feasible vacation"
  | Some (dest, pkg, rating) ->
      Printf.printf "\nBest vacation: %s (total rating %g)\n" dest rating;
      print_string (Pb_paql.Package.to_string pkg);
      (* Show the paper's trade-off concretely: what happens if the
         budget cannot fit a car? *)
      let tight =
        Pb_paql.Parser.parse
          (Printf.sprintf
             "SELECT PACKAGE(T) AS V FROM travel_items T WHERE T.destination \
              = '%s' SUCH THAT SUM(V.is_flight) = 1 AND SUM(V.is_hotel) = 1 \
              AND SUM(V.is_car) <= 1 AND SUM(V.price) <= 1500 AND \
              (MAX(V.beach_distance) <= 1.5 OR SUM(V.is_car) = 1) MAXIMIZE \
              SUM(V.rating)"
             dest)
      in
      let report = Pb_core.Engine.run db tight in
      print_endline "\nSame trip with a $1,500 budget:";
      (match report.Pb_core.Engine.package with
      | Some pkg2 ->
          Printf.printf "%s"
            (Pb_paql.Package.to_string pkg2);
          Printf.printf "car included: %b  max beach distance: %g km\n"
            (Pb_paql.Package.sum_column pkg2 "is_car" > 0.5)
            (List.fold_left
               (fun acc i ->
                 match
                   Pb_relation.Value.to_float
                     (Pb_relation.Relation.get
                        (Pb_paql.Package.base pkg2) i "beach_distance")
                 with
                 | Some d -> Float.max acc d
                 | None -> acc)
               0.0
               (Pb_paql.Package.support pkg2))
      | None -> print_endline "no package fits $1,500")
