(* Meal planner — the paper's §7 demo scenario, scripted.

   Walks through what a booth visitor would do: see the package template,
   get constraint suggestions from highlighted cells, refine the query,
   navigate the visual summary, and run adaptive exploration.

   Run with:  dune exec examples/mealplanner.exe *)

module Suggest = Pb_explore.Suggest
module Session = Pb_explore.Session
module Template = Pb_explore.Template
module Package = Pb_paql.Package

let banner title =
  Printf.printf "\n======== %s ========\n" title

let () =
  let db = Pb_sql.Database.create () in
  Pb_workload.Workload.install ~seed:21 ~recipes_n:80 db;

  (* A visitor starts from a loose specification. *)
  let query =
    Pb_paql.Parser.parse
      "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH \
       THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
       SUM(P.protein)"
  in

  banner "Package template (sec 3.1)";
  let template = Template.create db query in
  print_string (Template.render db template);

  let sample =
    match template.Template.sample with
    | Some pkg -> pkg
    | None -> failwith "no sample package"
  in

  banner "Constraint suggestions for the 'fat' column (sec 3.1)";
  (* "when the user selects a cell within the fats column, the system
     proposes several constraints that would restrict the amount of fat in
     each meal, and objectives that would minimize the total amount of
     fat" *)
  let suggestions =
    Suggest.suggest query ~sample (Suggest.Cell { row = 0; column = "fat" })
  in
  List.iter
    (fun s ->
      Printf.printf "  [%s] %s\n        %s\n"
        (match s.Suggest.kind with
        | Suggest.Base_constraint -> "base"
        | Suggest.Global_constraint -> "global"
        | Suggest.Objective -> "objective")
        s.Suggest.paql_fragment s.Suggest.description)
    suggestions;

  banner "Applying the MINIMIZE-fat objective";
  let minimize_fat =
    List.find
      (fun s ->
        s.Suggest.kind = Suggest.Objective
        &&
        let frag = s.Suggest.paql_fragment in
        String.length frag >= 8 && String.sub frag 0 8 = "MINIMIZE")
      suggestions
  in
  let refined = minimize_fat.Suggest.refined in
  Printf.printf "refined query: %s\n" (Pb_paql.Ast.to_string refined);
  let report = Pb_core.Engine.run db refined in
  (match report.Pb_core.Engine.package with
  | Some pkg -> print_string (Package.to_string pkg)
  | None -> print_endline "no valid package");

  banner "Visual summary of the result space (sec 3.2)";
  let summary =
    Pb_explore.Summary.build ?current:report.Pb_core.Engine.package db refined
  in
  print_string (Pb_explore.Summary.render summary);

  banner "Adaptive exploration (sec 3.3)";
  (match Session.start ~seed:3 db query with
  | Error e -> Printf.printf "session error: %s\n" e
  | Ok session ->
      let show label session =
        Printf.printf "%s\n%s" label
          (Package.to_string (Session.current session))
      in
      show "Initial sample:" session;
      (* The visitor likes the first meal and asks for a new plan around
         it. *)
      let keep =
        match Package.support (Session.current session) with
        | first :: _ -> [ first ]
        | [] -> []
      in
      Printf.printf "\nKeeping tuple(s) %s and resampling...\n"
        (String.concat ", " (List.map string_of_int keep));
      let session, status = Session.keep_and_resample session ~keep in
      (match status with
      | `Fresh -> show "New sample (kept tuples pinned):" session
      | `Exhausted -> print_endline "no other package extends the kept tuples");
      (* The system infers what the kept tuples have in common. *)
      let inferred = Session.infer_constraints session ~keep in
      if inferred <> [] then begin
        print_endline "\nInferred constraint suggestions:";
        List.iter
          (fun s -> Printf.printf "  %s -- %s\n" s.Suggest.paql_fragment s.Suggest.description)
          inferred
      end);

  banner "Next-best packages (sec 5, no-good cuts)";
  List.iteri
    (fun i pkg ->
      Printf.printf "#%d objective=%s  meals=%s\n" (i + 1)
        (match Pb_paql.Semantics.objective_value ~db query pkg with
        | Some v -> Printf.sprintf "%g" v
        | None -> "-")
        (String.concat ", " (List.map string_of_int (Package.support pkg))))
    (Pb_core.Engine.next_packages ~limit:5 db query)
