(* Quickstart: the paper's §2 example end to end.

   Build a small synthetic recipe table, run the athlete's meal-plan
   query, and print the best package — first through the high-level
   engine, then showing the individual strategies agree.

   Run with:  dune exec examples/quickstart.exe *)

let meal_plan_query =
  "SELECT PACKAGE(R) AS P \
   FROM Recipes R \
   WHERE R.gluten = 'free' \
   SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
   MAXIMIZE SUM(P.protein)"

let () =
  (* 1. a database with a synthetic recipes table *)
  let db = Pb_sql.Database.create () in
  Pb_workload.Workload.install ~seed:7 ~recipes_n:120 db;

  (* 2. parse the PaQL query *)
  let query = Pb_paql.Parser.parse meal_plan_query in
  print_endline "Query:";
  Printf.printf "  %s\n\n" (Pb_paql.Ast.to_string query);
  print_endline "In English:";
  print_string (Pb_explore.Describe.describe_query query);
  print_newline ();

  (* 3. evaluate with the default (hybrid) strategy *)
  let report = Pb_core.Engine.run db query in
  (match report.Pb_core.Engine.package with
  | Some pkg ->
      print_endline "Best package:";
      print_string (Pb_paql.Package.to_string pkg)
  | None -> print_endline "No valid package.");
  (match report.Pb_core.Engine.objective with
  | Some v -> Printf.printf "Total protein: %g g\n" v
  | None -> ());
  Printf.printf "Strategy: %s (%.3f s)\n\n" report.Pb_core.Engine.strategy_used
    report.Pb_core.Engine.elapsed;

  (* 4. the strategies of §4 agree on the optimum *)
  print_endline "Strategy comparison:";
  List.iter
    (fun strategy ->
      let r = Pb_core.Engine.run ~strategy db query in
      Printf.printf "  %-22s objective=%-8s optimal=%-5b %.3f s\n"
        r.Pb_core.Engine.strategy_used
        (match r.Pb_core.Engine.objective with
        | Some v -> Printf.sprintf "%g" v
        | None -> "-")
        (r.Pb_core.Engine.proof = Pb_core.Engine.Optimal) r.Pb_core.Engine.elapsed)
    [
      Pb_core.Engine.Brute_force { use_pruning = true };
      Pb_core.Engine.Ilp;
      Pb_core.Engine.Local_search Pb_core.Local_search.default_params;
    ]
