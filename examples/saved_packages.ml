(* Stored packages — the paper's §2 argument (a) for supporting packages
   at the database level: "packages themselves are structured data
   objects that should naturally be stored in and manipulated by a
   database system."

   This example solves the meal-plan query, saves the answer as a
   first-class database object, manipulates it with plain SQL, shows how
   revalidation reacts when the base data changes underneath it, and
   finishes with the §5 diverse-packages extension.

   Run with:  dune exec examples/saved_packages.exe *)

module Store = Pb_paql.Package_store

let banner title = Printf.printf "\n======== %s ========\n" title

let run_sql db sql =
  Printf.printf "sql> %s\n" sql;
  match Pb_sql.Executor.execute_sql db sql with
  | Pb_sql.Executor.Rows rel ->
      print_string (Pb_relation.Relation.to_table ~max_rows:10 rel)
  | Pb_sql.Executor.Affected n -> Printf.printf "%d row(s) affected\n" n
  | Pb_sql.Executor.Created -> print_endline "ok"

let () =
  let db = Pb_sql.Database.create () in
  Pb_workload.Workload.install ~seed:19 ~recipes_n:80 db;

  let query =
    Pb_paql.Parser.parse
      "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH \
       THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
       SUM(P.protein)"
  in

  banner "Solve and save";
  let pkg =
    match (Pb_core.Engine.run db query).Pb_core.Engine.package with
    | Some pkg -> pkg
    | None -> failwith "no valid meal plan"
  in
  Store.save db ~name:"monday_plan" ~query pkg;
  List.iter
    (fun e ->
      Printf.printf "saved: %s (%d tuples from %s)\n" e.Store.name
        e.Store.cardinality e.Store.source_relation)
    (Store.list_saved db);

  banner "The package is an ordinary table now";
  run_sql db "SELECT pkg_pos, name, calories, protein FROM pkg_monday_plan ORDER BY pkg_pos";
  run_sql db "SELECT COUNT(*) AS meals, SUM(calories) AS kcal, SUM(protein) AS protein FROM pkg_monday_plan";
  (* ... and joins against base data work too *)
  run_sql db
    "SELECT r.cuisine, COUNT(*) AS n FROM pkg_monday_plan p, recipes r WHERE \
     p.id = r.id GROUP BY r.cuisine";

  banner "Revalidation after the base data changes";
  (match Store.revalidate db ~name:"monday_plan" with
  | Ok ok -> Printf.printf "before change: still valid? %b\n" ok
  | Error e -> Printf.printf "before change: %s\n" e);
  (* A recipe in the plan is retracted from the catalog. *)
  let victim =
    Pb_relation.Value.to_string
      (Pb_relation.Relation.get
         (Pb_paql.Package.base pkg)
         (List.hd (Pb_paql.Package.support pkg))
         "id")
  in
  run_sql db (Printf.sprintf "DELETE FROM recipes WHERE id = %s" victim);
  (match Store.revalidate db ~name:"monday_plan" with
  | Ok ok -> Printf.printf "after change: still valid? %b\n" ok
  | Error e -> Printf.printf "after change: %s\n" e);

  banner "Diverse alternatives (sec 5 extension)";
  let alternatives = Pb_explore.Diverse.diverse_packages ~k:3 db query in
  List.iteri
    (fun i alt ->
      Printf.printf "alternative %d: tuples %s, protein %s\n" (i + 1)
        (String.concat ","
           (List.map string_of_int (Pb_paql.Package.support alt)))
        (match Pb_paql.Semantics.objective_value ~db query alt with
        | Some v -> Printf.sprintf "%g" v
        | None -> "-"))
    alternatives;

  banner "Auto-suggest (Figure 1)";
  List.iter
    (fun prefix ->
      Printf.printf "%-58s -> %s\n"
        (Printf.sprintf "%S" prefix)
        (String.concat " | " (Pb_explore.Complete.suggest db prefix)))
    [
      "";
      "SELECT ";
      "SELECT PACKAGE(R) AS P FROM ";
      "SELECT PACKAGE(R) AS P FROM recipes R WHERE r.glu";
      "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT ";
    ]
