(* Tests for the SQL substrate: lexer, parser, LIKE matcher, executor
   semantics (joins, aggregates, group-by, subqueries, DML). *)

module Lexer = Pb_sql.Lexer
module Parser = Pb_sql.Parser
module Ast = Pb_sql.Ast
module Executor = Pb_sql.Executor
module Database = Pb_sql.Database
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT a.b, 'it''s', 4.5e2 <= 12 -- comment\n<>" in
  (match toks with
  | Lexer.Keyword "SELECT" :: Lexer.Ident "a" :: Lexer.Dot :: Lexer.Ident "b"
    :: Lexer.Comma :: Lexer.Str_lit "it's" :: Lexer.Comma
    :: Lexer.Float_lit 450.0 :: Lexer.Le_tok :: Lexer.Int_lit 12 :: rest ->
      (* the comment runs to end of line; <> on the next line survives *)
      Alcotest.(check bool) "tail" true (rest = [ Lexer.Neq_tok; Lexer.Eof ])
  | _ -> Alcotest.fail "unexpected token stream");
  Alcotest.(check int) "token count" 12 (List.length toks)

let test_lexer_paql_keywords () =
  let toks = Lexer.tokenize "PACKAGE SUCH THAT REPEAT MAXIMIZE" in
  Alcotest.(check int) "5 keywords + eof" 6 (List.length toks);
  List.iteri
    (fun i t ->
      if i < 5 then
        match t with
        | Lexer.Keyword _ -> ()
        | _ -> Alcotest.fail "expected keyword")
    toks

let test_lexer_error () =
  (match Lexer.tokenize "SELECT #" with
  | exception Lexer.Lex_error (_, pos) -> Alcotest.(check int) "position" 7 pos
  | _ -> Alcotest.fail "expected lex error")

let test_parse_roundtrip () =
  let cases =
    [
      "SELECT * FROM t";
      "SELECT a, b AS c FROM t u WHERE u.a > 3 AND b <= 5";
      "SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2";
      "SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 3";
      "SELECT DISTINCT a FROM t WHERE a BETWEEN 1 AND 2 OR b IN (1, 2, 3)";
      "SELECT a FROM t WHERE a IS NOT NULL AND name LIKE 'ab%'";
      "SELECT SUM(a + b * 2) FROM t WHERE NOT a = 3";
      "SELECT a FROM t WHERE EXISTS (SELECT b FROM s)";
      "SELECT a FROM t WHERE a NOT IN (SELECT b FROM s)";
    ]
  in
  List.iter
    (fun src ->
      let q1 = Parser.parse_select src in
      let printed = Ast.select_to_string q1 in
      let q2 = Parser.parse_select printed in
      Alcotest.(check string) ("roundtrip: " ^ src) printed
        (Ast.select_to_string q2))
    cases

let test_parse_statements () =
  let cases =
    [
      "CREATE TABLE t (a INT, b TEXT, c FLOAT, d BOOL)";
      "INSERT INTO t VALUES (1, 'x', 2.5, TRUE), (2, 'y', 0.5, FALSE)";
      "INSERT INTO t (a, b) VALUES (3, 'z')";
      "DELETE FROM t WHERE a = 1";
      "UPDATE t SET b = 'w', c = 9.0 WHERE a = 2";
      "DROP TABLE t";
    ]
  in
  List.iter
    (fun src ->
      let s = Parser.parse_statement src in
      let printed = Ast.statement_to_string s in
      let s2 = Parser.parse_statement printed in
      Alcotest.(check string) src printed (Ast.statement_to_string s2))
    cases

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse_statement src with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail ("expected parse error: " ^ src))
    [
      "SELECT";
      "SELECT a FROM";
      "SELECT a FROM t WHERE";
      "FROB x";
      "SELECT a FROM t LIMIT x";
      "SELECT a FROM t trailing garbage here ,";
    ]

let test_like () =
  let cases =
    [
      ("abc", "abc", true);
      ("a%", "abc", true);
      ("%c", "abc", true);
      ("%b%", "abc", true);
      ("a_c", "abc", true);
      ("a_c", "abbc", false);
      ("%", "", true);
      ("", "", true);
      ("", "a", false);
      ("a%b%c", "aXXbYYc", true);
      ("a%b%c", "acb", false);
      ("%%", "anything", true);
      ("x%", "abc", false);
    ]
  in
  List.iter
    (fun (pattern, s, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "LIKE %s ~ %s" pattern s)
        expected
        (Executor.like_match ~pattern s))
    cases

let setup_db () =
  let db = Database.create () in
  List.iter
    (fun sql -> ignore (Executor.execute_sql db sql))
    [
      "CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary INT)";
      "INSERT INTO emp VALUES (1, 'ada', 'eng', 120), (2, 'bob', 'eng', 100), \
       (3, 'cyd', 'ops', 90), (4, 'dan', 'ops', 80), (5, 'eve', 'mgmt', 150)";
      "CREATE TABLE dept (dname TEXT, floor INT)";
      "INSERT INTO dept VALUES ('eng', 3), ('ops', 1), ('mgmt', 5)";
    ];
  db

let select db sql =
  match Executor.execute_sql db sql with
  | Executor.Rows r -> r
  | _ -> Alcotest.fail "expected rows"

let test_select_where () =
  let db = setup_db () in
  let r = select db "SELECT name FROM emp WHERE salary >= 100" in
  Alcotest.(check int) "3 rows" 3 (Relation.cardinality r)

let test_select_expressions () =
  let db = setup_db () in
  let r = select db "SELECT salary * 2 AS double FROM emp WHERE id = 1" in
  Alcotest.(check bool) "doubled" true
    (Value.equal (Value.Int 240) (Relation.get r 0 "double"))

let test_join () =
  let db = setup_db () in
  let r =
    select db
      "SELECT e.name, d.floor FROM emp e, dept d WHERE e.dept = d.dname AND \
       d.floor >= 3"
  in
  Alcotest.(check int) "eng(2) + mgmt(1)" 3 (Relation.cardinality r)

let test_aggregates_single_group () =
  let db = setup_db () in
  let r = select db "SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp" in
  Alcotest.(check bool) "count" true (Value.equal (Value.Int 5) (Relation.row r 0).(0));
  Alcotest.(check bool) "sum" true (Value.equal (Value.Int 540) (Relation.row r 0).(1));
  Alcotest.(check bool) "avg" true (Value.equal (Value.Float 108.0) (Relation.row r 0).(2));
  Alcotest.(check bool) "min" true (Value.equal (Value.Int 80) (Relation.row r 0).(3));
  Alcotest.(check bool) "max" true (Value.equal (Value.Int 150) (Relation.row r 0).(4))

let test_count_empty () =
  let db = setup_db () in
  let r = select db "SELECT COUNT(*) FROM emp WHERE salary > 1000" in
  Alcotest.(check bool) "zero" true (Value.equal (Value.Int 0) (Relation.row r 0).(0))

let test_group_by_having () =
  let db = setup_db () in
  let r =
    select db
      "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp GROUP BY \
       dept HAVING COUNT(*) >= 2 ORDER BY total DESC"
  in
  Alcotest.(check int) "two groups" 2 (Relation.cardinality r);
  Alcotest.(check bool) "eng first (220)" true
    (Value.equal (Value.Str "eng") (Relation.get r 0 "dept"))

let test_order_limit () =
  let db = setup_db () in
  let r = select db "SELECT name FROM emp ORDER BY salary DESC LIMIT 2" in
  Alcotest.(check int) "2 rows" 2 (Relation.cardinality r);
  Alcotest.(check bool) "eve first" true
    (Value.equal (Value.Str "eve") (Relation.get r 0 "name"))

let test_distinct () =
  let db = setup_db () in
  let r = select db "SELECT DISTINCT dept FROM emp" in
  Alcotest.(check int) "3 depts" 3 (Relation.cardinality r)

let test_in_subquery () =
  let db = setup_db () in
  let r =
    select db
      "SELECT name FROM emp WHERE dept IN (SELECT dname FROM dept WHERE \
       floor = 1)"
  in
  Alcotest.(check int) "ops members" 2 (Relation.cardinality r)

let test_not_in_subquery () =
  let db = setup_db () in
  let r =
    select db
      "SELECT name FROM emp WHERE dept NOT IN (SELECT dname FROM dept WHERE \
       floor = 1)"
  in
  Alcotest.(check int) "non-ops" 3 (Relation.cardinality r)

let test_exists () =
  let db = setup_db () in
  let r =
    select db
      "SELECT name FROM emp WHERE EXISTS (SELECT dname FROM dept WHERE floor \
       > 10)"
  in
  Alcotest.(check int) "empty exists" 0 (Relation.cardinality r)

let test_between_and_like () =
  let db = setup_db () in
  let r =
    select db
      "SELECT name FROM emp WHERE salary BETWEEN 90 AND 120 AND name LIKE \
       '%a%'"
  in
  (* ada(120), dan(80 out), cyd(90, no 'a')... ada only? dan salary 80 is
     out of range; 'dan' has an a but 80 < 90. So ada. *)
  Alcotest.(check int) "ada" 1 (Relation.cardinality r)

let test_scalar_functions () =
  let db = setup_db () in
  let r =
    select db
      "SELECT UPPER(name) AS u, LENGTH(name) AS l, ABS(0 - salary) AS a FROM \
       emp WHERE id = 1"
  in
  Alcotest.(check bool) "upper" true (Value.equal (Value.Str "ADA") (Relation.get r 0 "u"));
  Alcotest.(check bool) "length" true (Value.equal (Value.Int 3) (Relation.get r 0 "l"));
  Alcotest.(check bool) "abs" true (Value.equal (Value.Int 120) (Relation.get r 0 "a"))

let test_insert_delete_update () =
  let db = setup_db () in
  (match Executor.execute_sql db "DELETE FROM emp WHERE dept = 'ops'" with
  | Executor.Affected 2 -> ()
  | _ -> Alcotest.fail "expected 2 deleted");
  (match Executor.execute_sql db "UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'" with
  | Executor.Affected 2 -> ()
  | _ -> Alcotest.fail "expected 2 updated");
  let r = select db "SELECT SUM(salary) FROM emp" in
  (* 120+10 + 100+10 + 150 = 390 *)
  Alcotest.(check bool) "updated total" true
    (Value.equal (Value.Int 390) (Relation.row r 0).(0))

let test_insert_with_columns () =
  let db = setup_db () in
  ignore (Executor.execute_sql db "INSERT INTO emp (id, name) VALUES (9, 'zed')");
  let r = select db "SELECT dept FROM emp WHERE id = 9" in
  Alcotest.(check bool) "missing cols are null" true
    (Value.is_null (Relation.row r 0).(0))

let test_null_filtering () =
  let db = setup_db () in
  ignore (Executor.execute_sql db "INSERT INTO emp (id, name) VALUES (9, 'zed')");
  (* NULL salary comparisons are unknown -> filtered out *)
  let r = select db "SELECT name FROM emp WHERE salary > 0" in
  Alcotest.(check int) "null excluded" 5 (Relation.cardinality r);
  let r2 = select db "SELECT name FROM emp WHERE salary IS NULL" in
  Alcotest.(check int) "is null" 1 (Relation.cardinality r2)

let test_missing_table () =
  let db = setup_db () in
  match Executor.execute_sql db "SELECT * FROM nope" with
  | exception Executor.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected eval error"

let test_csv_load () =
  let path = Filename.temp_file "pb_test" ".csv" in
  let oc = open_out path in
  output_string oc "id,name,score\n1,ada,3.5\n2,bob,\n";
  close_out oc;
  let db = Database.create () in
  Database.load_csv db ~name:"people" path;
  Sys.remove path;
  let r = select db "SELECT COUNT(*) FROM people" in
  Alcotest.(check bool) "2 rows" true (Value.equal (Value.Int 2) (Relation.row r 0).(0));
  let r2 = select db "SELECT score FROM people WHERE name = 'bob'" in
  Alcotest.(check bool) "empty is null" true (Value.is_null (Relation.row r2 0).(0))

let test_cartesian_growth () =
  (* The §4.2 complexity claim rests on products growing multiplicatively. *)
  let db = setup_db () in
  let r = select db "SELECT e1.id, e2.id FROM emp e1, emp e2" in
  Alcotest.(check int) "5x5" 25 (Relation.cardinality r);
  let r3 = select db "SELECT e1.id FROM emp e1, emp e2, emp e3" in
  Alcotest.(check int) "5^3" 125 (Relation.cardinality r3)

(* ---- prepared-plan cache ---------------------------------------------- *)

let test_plan_cache_hit_and_normalize () =
  let db = setup_db () in
  let cache = Pb_sql.Plan_cache.create () in
  let h0 = Pb_sql.Plan_cache.hits () and m0 = Pb_sql.Plan_cache.misses () in
  let parse = Parser.parse_script in
  let s1, memo1 = Pb_sql.Plan_cache.lookup cache db ~parse "SELECT * FROM emp" in
  (* whitespace/trailing-semicolon variants share the entry... *)
  let s2, memo2 =
    Pb_sql.Plan_cache.lookup cache db ~parse "  SELECT * FROM emp; "
  in
  Alcotest.(check int) "one miss" 1 (Pb_sql.Plan_cache.misses () - m0);
  Alcotest.(check int) "one hit" 1 (Pb_sql.Plan_cache.hits () - h0);
  Alcotest.(check bool) "same statements" true (s1 == s2);
  Alcotest.(check bool) "same memo" true (memo1 == memo2);
  (* ...but interior whitespace is preserved (string literals) *)
  let _, memo3 =
    Pb_sql.Plan_cache.lookup cache db ~parse "SELECT  * FROM emp"
  in
  Alcotest.(check bool) "distinct entry" true (memo3 != memo1);
  Alcotest.(check int) "two entries" 2 (Pb_sql.Plan_cache.size cache)

let test_plan_cache_ddl_invalidation () =
  let db = setup_db () in
  let cache = Pb_sql.Plan_cache.create () in
  let parse = Parser.parse_script in
  let v0 = Database.version db in
  let _, memo1 = Pb_sql.Plan_cache.lookup cache db ~parse "SELECT * FROM emp" in
  (* schema-preserving DML keeps the entry warm *)
  ignore (Executor.execute_sql db "INSERT INTO emp VALUES (9, 'zed', 'ops', 100)");
  Alcotest.(check int) "DML does not bump version" v0 (Database.version db);
  let h0 = Pb_sql.Plan_cache.hits () in
  let _, memo2 = Pb_sql.Plan_cache.lookup cache db ~parse "SELECT * FROM emp" in
  Alcotest.(check bool) "warm after DML" true (memo2 == memo1);
  Alcotest.(check int) "hit after DML" 1 (Pb_sql.Plan_cache.hits () - h0);
  (* DDL bumps the version and drops the stale entry *)
  ignore (Executor.execute_sql db "CREATE TABLE scratch (a INT)");
  Alcotest.(check bool) "DDL bumps version" true (Database.version db > v0);
  let m0 = Pb_sql.Plan_cache.misses () in
  let _, memo3 = Pb_sql.Plan_cache.lookup cache db ~parse "SELECT * FROM emp" in
  Alcotest.(check bool) "stale entry replaced" true (memo3 != memo1);
  Alcotest.(check int) "miss after DDL" 1 (Pb_sql.Plan_cache.misses () - m0);
  (* DROP TABLE and CREATE INDEX are DDL too *)
  let v1 = Database.version db in
  ignore (Executor.execute_sql db "DROP TABLE scratch");
  Alcotest.(check bool) "drop bumps" true (Database.version db > v1);
  let v2 = Database.version db in
  ignore (Executor.execute_sql db "CREATE INDEX ON emp (salary)");
  Alcotest.(check bool) "index bumps" true (Database.version db > v2)

let test_plan_cache_eviction () =
  let db = setup_db () in
  let cache = Pb_sql.Plan_cache.create ~capacity:2 () in
  let parse = Parser.parse_script in
  let lookup text = ignore (Pb_sql.Plan_cache.lookup cache db ~parse text) in
  lookup "SELECT id FROM emp";
  lookup "SELECT name FROM emp";
  (* touch the first so the second is the LRU victim *)
  lookup "SELECT id FROM emp";
  lookup "SELECT dept FROM emp";
  Alcotest.(check int) "capacity respected" 2 (Pb_sql.Plan_cache.size cache);
  let h0 = Pb_sql.Plan_cache.hits () in
  lookup "SELECT id FROM emp";
  Alcotest.(check int) "recently-used survived" 1 (Pb_sql.Plan_cache.hits () - h0);
  let m0 = Pb_sql.Plan_cache.misses () in
  lookup "SELECT name FROM emp";
  Alcotest.(check int) "LRU was evicted" 1 (Pb_sql.Plan_cache.misses () - m0)

let test_prepared_execution_matches_fresh () =
  let db = setup_db () in
  let cache = Pb_sql.Plan_cache.create () in
  let sql = "SELECT name, salary * 2 FROM emp WHERE salary >= 100 ORDER BY name" in
  let stmts, memo =
    Pb_sql.Plan_cache.lookup cache db ~parse:Parser.parse_script sql
  in
  let run () =
    List.map
      (fun stmt ->
        match Executor.execute ~memo db stmt with
        | Executor.Rows rel -> Relation.to_table rel
        | _ -> Alcotest.fail "expected rows")
      stmts
  in
  let fresh =
    match Executor.execute_sql db sql with
    | Executor.Rows rel -> Relation.to_table rel
    | _ -> Alcotest.fail "expected rows"
  in
  Alcotest.(check (list string)) "first prepared run" [ fresh ] (run ());
  Alcotest.(check (list string)) "repeat prepared run" [ fresh ] (run ())

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer paql keywords" `Quick test_lexer_paql_keywords;
    Alcotest.test_case "lexer error position" `Quick test_lexer_error;
    Alcotest.test_case "parser roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parser statements" `Quick test_parse_statements;
    Alcotest.test_case "parser errors" `Quick test_parse_errors;
    Alcotest.test_case "like matcher" `Quick test_like;
    Alcotest.test_case "select where" `Quick test_select_where;
    Alcotest.test_case "select expressions" `Quick test_select_expressions;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "aggregates single group" `Quick test_aggregates_single_group;
    Alcotest.test_case "count empty" `Quick test_count_empty;
    Alcotest.test_case "group by + having" `Quick test_group_by_having;
    Alcotest.test_case "order by + limit" `Quick test_order_limit;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "in subquery" `Quick test_in_subquery;
    Alcotest.test_case "not in subquery" `Quick test_not_in_subquery;
    Alcotest.test_case "exists" `Quick test_exists;
    Alcotest.test_case "between + like" `Quick test_between_and_like;
    Alcotest.test_case "scalar functions" `Quick test_scalar_functions;
    Alcotest.test_case "insert/delete/update" `Quick test_insert_delete_update;
    Alcotest.test_case "insert with columns" `Quick test_insert_with_columns;
    Alcotest.test_case "null filtering" `Quick test_null_filtering;
    Alcotest.test_case "missing table" `Quick test_missing_table;
    Alcotest.test_case "csv load + inference" `Quick test_csv_load;
    Alcotest.test_case "cartesian growth" `Quick test_cartesian_growth;
    Alcotest.test_case "plan cache hit + normalization" `Quick
      test_plan_cache_hit_and_normalize;
    Alcotest.test_case "plan cache DDL invalidation" `Quick
      test_plan_cache_ddl_invalidation;
    Alcotest.test_case "plan cache LRU eviction" `Quick
      test_plan_cache_eviction;
    Alcotest.test_case "prepared execution matches fresh" `Quick
      test_prepared_execution_matches_fresh;
  ]
