(* Tests for catalog persistence and the interactive shell engine. *)

module Persist = Pb_sql.Persist
module Database = Pb_sql.Database
module Executor = Pb_sql.Executor
module Repl = Pb_shell.Repl
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let temp_dir () =
  let path = Filename.temp_file "pb_persist" "" in
  Sys.remove path;
  path

let rec remove_dir path =
  if Sys.file_exists path then begin
    if Sys.is_directory path then begin
      Array.iter
        (fun entry -> remove_dir (Filename.concat path entry))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  end

(* ---- persistence ------------------------------------------------------ *)

let test_persist_roundtrip () =
  let db = Database.create () in
  ignore (Executor.execute_sql db "CREATE TABLE t (a INT, b TEXT, c FLOAT, d BOOL)");
  ignore
    (Executor.execute_sql db
       "INSERT INTO t VALUES (1, 'x', 1.5, TRUE), (2, 'has,comma', 2.25, FALSE)");
  ignore (Executor.execute_sql db "INSERT INTO t (a) VALUES (3)");
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      Persist.save_dir db dir;
      let db2 = Persist.load_dir dir in
      let r1 = Database.find_exn db "t" and r2 = Database.find_exn db2 "t" in
      Alcotest.(check bool) "same schema" true
        (Schema.equal (Relation.schema r1) (Relation.schema r2));
      Alcotest.(check int) "same rows" (Relation.cardinality r1)
        (Relation.cardinality r2);
      for i = 0 to Relation.cardinality r1 - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "row %d equal" i)
          true
          (Array.for_all2 Value.equal (Relation.row r1 i) (Relation.row r2 i))
      done)

let test_persist_preserves_text_type () =
  (* A TEXT column with numeric-looking values must stay TEXT. *)
  let db = Database.create () in
  ignore (Executor.execute_sql db "CREATE TABLE codes (code TEXT)");
  ignore (Executor.execute_sql db "INSERT INTO codes VALUES ('007'), ('42')");
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      Persist.save_dir db dir;
      let db2 = Persist.load_dir dir in
      let rel = Database.find_exn db2 "codes" in
      Alcotest.(check bool) "still TEXT" true
        (Schema.column_ty (Relation.schema rel) "code" = Some Value.T_str);
      Alcotest.(check bool) "leading zero kept" true
        (Value.equal (Value.Str "007") (Relation.row rel 0).(0)))

let test_persist_preserves_indexes () =
  let db = Database.create () in
  ignore (Executor.execute_sql db "CREATE TABLE t (a INT)");
  ignore (Executor.execute_sql db "INSERT INTO t VALUES (1), (2)");
  ignore (Executor.execute_sql db "CREATE INDEX ON t (a)");
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      Persist.save_dir db dir;
      let db2 = Persist.load_dir dir in
      Alcotest.(check (list string)) "index declared" [ "a" ]
        (Database.indexed_columns db2 "t"))

let test_persist_empty_table () =
  let db = Database.create () in
  ignore (Executor.execute_sql db "CREATE TABLE empty (a INT, b TEXT)");
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      Persist.save_dir db dir;
      let db2 = Persist.load_dir dir in
      Alcotest.(check int) "still empty" 0
        (Relation.cardinality (Database.find_exn db2 "empty")))

let test_persist_missing_manifest () =
  match Persist.load_dir "/nonexistent-dir-xyz" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure"

let test_persist_tricky_values () =
  (* String values full of CSV- and manifest-hostile characters must
     round-trip exactly through the quoting layer. *)
  let tricky =
    [ "has,comma"; "has\nnewline"; "has\ttab"; "has\"quote"; "a,b\n\"c\"" ]
  in
  let db = Database.create () in
  let schema =
    Schema.make [ { Schema.name = "id"; ty = Value.T_int };
                  { Schema.name = "s"; ty = Value.T_str } ]
  in
  let rows =
    List.mapi (fun i s -> [| Value.Int i; Value.Str s |]) tricky
  in
  Database.put db "tricky" (Relation.create schema rows);
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      Persist.save_dir db dir;
      let db2 = Persist.load_dir dir in
      let rel = Database.find_exn db2 "tricky" in
      Alcotest.(check int) "all rows" (List.length tricky)
        (Relation.cardinality rel);
      List.iteri
        (fun i s ->
          Alcotest.(check bool)
            (Printf.sprintf "value %d round-trips" i)
            true
            (Value.equal (Value.Str s) (Relation.row rel i).(1)))
        tricky)

let test_persist_rejects_delimiter_names () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      let expect_reject label db =
        (match Persist.save_dir db dir with
        | exception Failure msg ->
            Alcotest.(check bool)
              (label ^ " message names the delimiter")
              true
              (contains msg "delimiter")
        | () -> Alcotest.fail (label ^ ": expected save_dir to fail"));
        (* rejection happens before anything is written: no manifest *)
        Alcotest.(check bool) (label ^ " wrote nothing") false
          (Sys.file_exists (Filename.concat dir "manifest.txt"))
      in
      let table_db name =
        let db = Database.create () in
        let schema = Schema.make [ { Schema.name = "a"; ty = Value.T_int } ] in
        Database.put db name (Relation.create schema [ [| Value.Int 1 |] ]);
        db
      in
      let column_db col =
        let db = Database.create () in
        let schema = Schema.make [ { Schema.name = col; ty = Value.T_int } ] in
        Database.put db "t" (Relation.create schema [ [| Value.Int 1 |] ]);
        db
      in
      expect_reject "comma table" (table_db "bad,name");
      expect_reject "tab table" (table_db "bad\tname");
      expect_reject "newline table" (table_db "bad\nname");
      expect_reject "comma column" (column_db "b,c");
      expect_reject "tab column" (column_db "b\tc");
      expect_reject "newline column" (column_db "b\nc"))

let test_persist_drops_stale_files () =
  let db = Database.create () in
  ignore (Executor.execute_sql db "CREATE TABLE keepme (a INT)");
  ignore (Executor.execute_sql db "CREATE TABLE dropme (a INT)");
  ignore (Executor.execute_sql db "INSERT INTO keepme VALUES (1)");
  ignore (Executor.execute_sql db "INSERT INTO dropme VALUES (2)");
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      Persist.save_dir db dir;
      Alcotest.(check bool) "dropme.csv written" true
        (Sys.file_exists (Filename.concat dir "dropme.csv"));
      (* leave debris a crashed save could have produced *)
      let stray = Filename.concat dir "manifest.txt.tmp" in
      let oc = open_out stray in
      output_string oc "torn";
      close_out oc;
      Database.drop db "dropme";
      Persist.save_dir db dir;
      Alcotest.(check bool) "stale csv removed" false
        (Sys.file_exists (Filename.concat dir "dropme.csv"));
      Alcotest.(check bool) "stray tmp removed" false (Sys.file_exists stray);
      let db2 = Persist.load_dir dir in
      Alcotest.(check bool) "dropped table stays dropped" true
        (Database.find db2 "dropme" = None);
      Alcotest.(check bool) "live table survives" true
        (Database.find db2 "keepme" <> None))

let test_repl_dump_reports_bad_name () =
  (* \dump must report a rejected name as output, not raise. *)
  let db = Database.create () in
  let schema = Schema.make [ { Schema.name = "a"; ty = Value.T_int } ] in
  Database.put db "bad,name" (Relation.create schema [ [| Value.Int 1 |] ]);
  let st = Repl.create db in
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      let r = Repl.handle st ("\\dump " ^ dir) in
      Alcotest.(check bool) "reported in output" true
        (contains r.Repl.output "dump failed"))

(* ---- repl -------------------------------------------------------------- *)

let shell () =
  let db = Pb_sql.Database.create () in
  Pb_workload.Workload.install ~seed:13 ~recipes_n:40 ~destinations:2
    ~stocks_n:20 db;
  Repl.create db

let paql_line =
  "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 2 AND SUM(P.calories) <= 1600 MAXIMIZE SUM(P.protein)"

let test_repl_help_and_quit () =
  let st = shell () in
  Alcotest.(check bool) "help text" true
    (contains (Repl.handle st "\\help").Repl.output "\\tables");
  Alcotest.(check bool) "quit" true (Repl.handle st "\\quit").Repl.quit;
  Alcotest.(check bool) "blank" true ((Repl.handle st "   ").Repl.output = "")

let test_repl_tables_and_schema () =
  let st = shell () in
  Alcotest.(check bool) "tables" true
    (contains (Repl.handle st "\\tables").Repl.output "recipes");
  Alcotest.(check bool) "schema" true
    (contains (Repl.handle st "\\schema recipes").Repl.output "calories");
  Alcotest.(check bool) "schema miss" true
    (contains (Repl.handle st "\\schema nope").Repl.output "no such table")

let test_repl_sql () =
  let st = shell () in
  let r = Repl.handle st "SELECT COUNT(*) AS n FROM recipes" in
  Alcotest.(check bool) "counts" true (contains r.Repl.output "40");
  let bad = Repl.handle st "SELECT FROM" in
  Alcotest.(check bool) "sql error reported" true
    (contains bad.Repl.output "error")

let test_repl_paql_and_save () =
  let st = shell () in
  let r = Repl.handle st paql_line in
  Alcotest.(check bool) "found objective" true (contains r.Repl.output "objective:");
  let saved = Repl.handle st "\\save lunch" in
  Alcotest.(check bool) "saved" true (contains saved.Repl.output "pkg_lunch");
  let listing = Repl.handle st "\\packages" in
  Alcotest.(check bool) "listed" true (contains listing.Repl.output "lunch");
  (* the stored table is queryable through the same session *)
  let q = Repl.handle st "SELECT COUNT(*) FROM pkg_lunch" in
  Alcotest.(check bool) "queryable" true (contains q.Repl.output "2");
  let reval = Repl.handle st "\\revalidate lunch" in
  Alcotest.(check bool) "valid" true (contains reval.Repl.output "still valid");
  let dropped = Repl.handle st "\\drop lunch" in
  Alcotest.(check bool) "dropped" true (contains dropped.Repl.output "dropped")

let test_repl_strategy () =
  let st = shell () in
  Alcotest.(check bool) "default is hybrid" true
    (contains (Repl.handle st "\\strategy").Repl.output "strategy: hybrid");
  Alcotest.(check bool) "set sketch-refine" true
    (contains (Repl.handle st "\\strategy sketch-refine").Repl.output
       "strategy set to sketch-refine");
  (* the sticky strategy drives subsequent PaQL evaluation *)
  let r = Repl.handle st paql_line in
  Alcotest.(check bool) "footer names sketch-refine" true
    (contains r.Repl.output "strategy: sketch-refine");
  Alcotest.(check bool) "query found a package" true
    (contains r.Repl.output "objective:");
  Alcotest.(check bool) "unknown strategy rejected" true
    (contains (Repl.handle st "\\strategy bogus").Repl.output
       "unknown strategy");
  Alcotest.(check bool) "bogus name did not stick" true
    (contains (Repl.handle st "\\strategy").Repl.output
       "strategy: sketch-refine");
  Alcotest.(check bool) "help lists it" true
    (contains (Repl.handle st "\\help").Repl.output "\\strategy")

let test_repl_save_without_query () =
  let st = shell () in
  Alcotest.(check bool) "nothing to save" true
    (contains (Repl.handle st "\\save x").Repl.output "nothing to save")

let test_repl_explain_and_complete () =
  let st = shell () in
  let e = Repl.handle st ("\\explain " ^ paql_line) in
  Alcotest.(check bool) "bounds shown" true
    (contains e.Repl.output "cardinality bounds");
  Alcotest.(check bool) "cost model shown" true (contains e.Repl.output "strategy");
  let c = Repl.handle st "\\complete SELECT " in
  Alcotest.(check bool) "package suggested" true
    (contains c.Repl.output "PACKAGE(")

let test_repl_next () =
  let st = shell () in
  let r = Repl.handle st ("\\next 3 " ^ paql_line) in
  Alcotest.(check bool) "ranked" true (contains r.Repl.output "#1");
  Alcotest.(check bool) "three results" true (contains r.Repl.output "#3")

let test_repl_unknown_command () =
  let st = shell () in
  Alcotest.(check bool) "unknown" true
    (contains (Repl.handle st "\\frob").Repl.output "unknown command")

let test_repl_paql_parse_error () =
  let st = shell () in
  let r = Repl.handle st "SELECT PACKAGE(R) FROM" in
  Alcotest.(check bool) "reported" true (contains r.Repl.output "paql error")

let test_repl_plan () =
  let st = shell () in
  let r =
    Repl.handle st
      "\\plan SELECT * FROM recipes r, stocks s WHERE r.id = s.id AND \
       r.calories > 500"
  in
  Alcotest.(check bool) "hash join reported" true
    (contains r.Repl.output "hash joins: 1");
  Alcotest.(check bool) "pushdown reported" true
    (contains r.Repl.output "pushed predicates: 1")

let test_repl_dump () =
  let st = shell () in
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      let r = Repl.handle st ("\\dump " ^ dir) in
      Alcotest.(check bool) "written" true (contains r.Repl.output "written");
      let db2 = Persist.load_dir dir in
      Alcotest.(check bool) "recipes survived" true
        (Database.find db2 "recipes" <> None))

let suite =
  [
    Alcotest.test_case "persist roundtrip" `Quick test_persist_roundtrip;
    Alcotest.test_case "persist keeps TEXT type" `Quick
      test_persist_preserves_text_type;
    Alcotest.test_case "persist keeps indexes" `Quick test_persist_preserves_indexes;
    Alcotest.test_case "persist empty table" `Quick test_persist_empty_table;
    Alcotest.test_case "persist missing manifest" `Quick
      test_persist_missing_manifest;
    Alcotest.test_case "persist tricky values" `Quick test_persist_tricky_values;
    Alcotest.test_case "persist rejects delimiter names" `Quick
      test_persist_rejects_delimiter_names;
    Alcotest.test_case "persist drops stale files" `Quick
      test_persist_drops_stale_files;
    Alcotest.test_case "repl dump reports bad name" `Quick
      test_repl_dump_reports_bad_name;
    Alcotest.test_case "repl help/quit/blank" `Quick test_repl_help_and_quit;
    Alcotest.test_case "repl tables + schema" `Quick test_repl_tables_and_schema;
    Alcotest.test_case "repl sql" `Quick test_repl_sql;
    Alcotest.test_case "repl paql + save/revalidate/drop" `Quick
      test_repl_paql_and_save;
    Alcotest.test_case "repl save without query" `Quick
      test_repl_save_without_query;
    Alcotest.test_case "repl sticky strategy" `Quick test_repl_strategy;
    Alcotest.test_case "repl explain + complete" `Quick
      test_repl_explain_and_complete;
    Alcotest.test_case "repl next" `Quick test_repl_next;
    Alcotest.test_case "repl unknown command" `Quick test_repl_unknown_command;
    Alcotest.test_case "repl paql parse error" `Quick test_repl_paql_parse_error;
    Alcotest.test_case "repl plan" `Quick test_repl_plan;
    Alcotest.test_case "repl dump" `Quick test_repl_dump;
  ]
