(* Edge cases and failure injection across the stack: degenerate sizes,
   graceful errors on malformed input, and semantic corner cases. *)

module Parser = Pb_paql.Parser
module Executor = Pb_sql.Executor
module Database = Pb_sql.Database
module Engine = Pb_core.Engine
module Semantics = Pb_paql.Semantics
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Model = Pb_lp.Model

let db_with rows =
  let db = Database.create () in
  Database.put db "t"
    (Relation.create
       (Schema.make
          [
            { Schema.name = "v"; ty = Value.T_int };
            { Schema.name = "w"; ty = Value.T_int };
          ])
       (List.map (fun (v, w) -> [| Value.Int v; Value.Int w |]) rows));
  db

let all_strategies =
  [
    Engine.Brute_force { use_pruning = true };
    Engine.Brute_force { use_pruning = false };
    Engine.Ilp;
    Engine.Local_search Pb_core.Local_search.default_params;
    Engine.Anneal Pb_core.Annealing.default_params;
    Engine.Sql_generation Pb_core.Sql_generate.default_params;
    Engine.Hybrid;
  ]

(* ---- degenerate sizes --------------------------------------------------- *)

let test_empty_table_all_strategies () =
  let db = db_with [] in
  let query =
    Parser.parse "SELECT PACKAGE(t) AS p FROM t SUCH THAT COUNT(*) = 1"
  in
  List.iter
    (fun strategy ->
      let r = Engine.run ~strategy db query in
      Alcotest.(check bool)
        (Engine.strategy_name strategy)
        true
        (r.Engine.package = None))
    all_strategies

let test_single_row_table () =
  let db = db_with [ (5, 2) ] in
  let query =
    Parser.parse
      "SELECT PACKAGE(t) AS p FROM t SUCH THAT COUNT(*) = 1 MAXIMIZE SUM(p.v)"
  in
  List.iter
    (fun strategy ->
      let r = Engine.run ~strategy db query in
      match r.Engine.package with
      | Some pkg ->
          Alcotest.(check int)
            (Engine.strategy_name strategy)
            1
            (Pb_paql.Package.cardinality pkg)
      | None ->
          (* heuristics are allowed to miss, exact strategies are not *)
          if
            List.mem (Engine.strategy_name strategy)
              [ "brute-force"; "brute-force+pruning"; "ilp"; "sql-generation"; "hybrid" ]
          then Alcotest.fail (Engine.strategy_name strategy ^ " missed"))
    all_strategies

let test_repeat_zero_equals_absent () =
  let db = db_with [ (1, 1); (2, 2) ] in
  let q1 =
    Parser.parse "SELECT PACKAGE(t) AS p FROM t REPEAT 0 SUCH THAT COUNT(*) = 2"
  in
  let q2 = Parser.parse "SELECT PACKAGE(t) AS p FROM t SUCH THAT COUNT(*) = 2" in
  Alcotest.(check int) "same multiplicity" (Pb_paql.Ast.max_multiplicity q1)
    (Pb_paql.Ast.max_multiplicity q2);
  let r1 = Engine.run db q1 and r2 = Engine.run db q2 in
  Alcotest.(check bool) "same feasibility" (r1.Engine.package <> None)
    (r2.Engine.package <> None)

let test_all_tuples_package () =
  (* COUNT = n selects everything. *)
  let db = db_with [ (1, 1); (2, 2); (3, 3) ] in
  let query =
    Parser.parse "SELECT PACKAGE(t) AS p FROM t SUCH THAT COUNT(*) = 3"
  in
  match (Engine.run db query).Engine.package with
  | Some pkg -> Alcotest.(check int) "all" 3 (Pb_paql.Package.cardinality pkg)
  | None -> Alcotest.fail "expected the full relation"

(* ---- graceful SQL errors ------------------------------------------------- *)

let test_nested_aggregate_rejected () =
  let db = db_with [ (1, 1) ] in
  match Executor.execute_sql db "SELECT SUM(SUM(v)) FROM t" with
  | exception Executor.Eval_error _ -> ()
  | _ -> Alcotest.fail "nested aggregate should fail"

let test_unknown_column_message () =
  let db = db_with [ (1, 1) ] in
  match Executor.execute_sql db "SELECT nope FROM t" with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions column" true
        (String.length msg > 0)
  | exception Executor.Eval_error _ -> ()
  | _ -> Alcotest.fail "unknown column should fail"

let test_division_by_zero_projection () =
  let db = db_with [ (1, 0) ] in
  match Executor.execute_sql db "SELECT v / w AS q FROM t" with
  | Executor.Rows rel ->
      Alcotest.(check bool) "NULL result" true
        (Value.is_null (Relation.row rel 0).(0))
  | _ -> Alcotest.fail "expected rows"

let test_limit_zero_and_big_offset () =
  let db = db_with [ (1, 1); (2, 2) ] in
  (match Executor.execute_sql db "SELECT v FROM t LIMIT 0" with
  | Executor.Rows rel -> Alcotest.(check int) "limit 0" 0 (Relation.cardinality rel)
  | _ -> Alcotest.fail "rows");
  match Executor.execute_sql db "SELECT v FROM t OFFSET 10" with
  | Executor.Rows rel -> Alcotest.(check int) "offset 10" 0 (Relation.cardinality rel)
  | _ -> Alcotest.fail "rows"

let test_group_by_expression () =
  let db = db_with [ (1, 1); (2, 1); (3, 2) ] in
  match Executor.execute_sql db "SELECT w * 10, COUNT(*) FROM t GROUP BY w * 10" with
  | Executor.Rows rel -> Alcotest.(check int) "two groups" 2 (Relation.cardinality rel)
  | _ -> Alcotest.fail "rows"

let test_having_without_group_by () =
  let db = db_with [ (1, 1); (2, 2) ] in
  match Executor.execute_sql db "SELECT COUNT(*) FROM t HAVING COUNT(*) > 5" with
  | Executor.Rows rel -> Alcotest.(check int) "filtered out" 0 (Relation.cardinality rel)
  | _ -> Alcotest.fail "rows"

let test_string_with_quotes_roundtrip () =
  let db = Database.create () in
  ignore (Executor.execute_sql db "CREATE TABLE s (x TEXT)");
  ignore (Executor.execute_sql db "INSERT INTO s VALUES ('it''s ok')");
  match Executor.execute_sql db "SELECT x FROM s WHERE x = 'it''s ok'" with
  | Executor.Rows rel -> Alcotest.(check int) "found" 1 (Relation.cardinality rel)
  | _ -> Alcotest.fail "rows"

(* ---- PaQL corner cases ---------------------------------------------------- *)

let test_conflicting_constraints_proven_infeasible () =
  let db = db_with [ (1, 1); (2, 2); (3, 3) ] in
  let query =
    Parser.parse
      "SELECT PACKAGE(t) AS p FROM t SUCH THAT COUNT(*) = 2 AND COUNT(*) = 3"
  in
  let r = Engine.run db query in
  Alcotest.(check bool) "no package" true (r.Engine.package = None);
  Alcotest.(check bool) "proven" true (r.Engine.proof = Engine.Infeasible)

let test_negative_values_in_sums () =
  let db = Database.create () in
  Database.put db "t"
    (Relation.create
       (Schema.make [ { Schema.name = "x"; ty = Value.T_int } ])
       [ [| Value.Int (-5) |]; [| Value.Int 3 |]; [| Value.Int (-2) |] ]);
  let query =
    Parser.parse
      "SELECT PACKAGE(t) AS p FROM t SUCH THAT SUM(p.x) <= -6 MAXIMIZE COUNT(*)"
  in
  (* valid: {-5,-2} sum -7; {-5,-2,3} sum -4 invalid *)
  let bf =
    Engine.run ~strategy:(Engine.Brute_force { use_pruning = true }) db query
  in
  let ilp = Engine.run ~strategy:Engine.Ilp db query in
  (match (bf.Engine.objective, ilp.Engine.objective) with
  | Some a, Some b -> Alcotest.(check (float 1e-9)) "agree" a b
  | _ -> Alcotest.fail "expected packages");
  match bf.Engine.package with
  | Some pkg ->
      Alcotest.(check bool) "valid" true (Semantics.is_valid ~db query pkg)
  | None -> Alcotest.fail "expected"

let test_strict_inequalities () =
  let db = db_with [ (10, 2); (20, 3); (30, 4) ] in
  let query =
    Parser.parse
      "SELECT PACKAGE(t) AS p FROM t SUCH THAT COUNT(*) = 2 AND SUM(p.w) < 7 \
       AND SUM(p.w) > 5 MAXIMIZE SUM(p.v)"
  in
  (* sums of pairs: 5 (2+3), 6 (2+4), 7 (3+4): only 6 qualifies strictly *)
  let bf =
    Engine.run ~strategy:(Engine.Brute_force { use_pruning = true }) db query
  in
  let ilp = Engine.run ~strategy:Engine.Ilp db query in
  (match bf.Engine.package with
  | Some pkg ->
      Alcotest.(check (float 1e-9)) "w sum 6" 6.0 (Pb_paql.Package.sum_column pkg "w")
  | None -> Alcotest.fail "bf missed");
  match (bf.Engine.objective, ilp.Engine.objective) with
  | Some a, Some b -> Alcotest.(check (float 1e-6)) "agree" a b
  | _ -> Alcotest.fail "expected objectives"

let test_objective_count_star () =
  let db = db_with [ (1, 1); (2, 2); (3, 3) ] in
  let query =
    Parser.parse
      "SELECT PACKAGE(t) AS p FROM t SUCH THAT SUM(p.w) <= 4 MAXIMIZE COUNT(*)"
  in
  (* best: {1,3} or {1,2}: cardinality 2 *)
  match Engine.run ~strategy:Engine.Ilp db query with
  | { Engine.objective = Some v; _ } -> Alcotest.(check (float 1e-9)) "2" 2.0 v
  | _ -> Alcotest.fail "expected"

let test_case_in_paql_objective () =
  (* CASE gives per-tuple conditional weights inside SUM: linearizable
     because the argument is still a per-tuple expression. *)
  let db = db_with [ (1, 1); (2, 2); (3, 3) ] in
  let query =
    Parser.parse
      "SELECT PACKAGE(t) AS p FROM t SUCH THAT COUNT(*) = 2 MAXIMIZE SUM(CASE \
       WHEN p.w >= 2 THEN p.v ELSE 0 END)"
  in
  let c = Pb_core.Coeffs.make db query in
  (match c.Pb_core.Coeffs.objective with
  | Some (Some _) -> ()
  | _ -> Alcotest.fail "CASE objective should be linear");
  let bf =
    Engine.run ~strategy:(Engine.Brute_force { use_pruning = true }) db query
  in
  let ilp = Engine.run ~strategy:Engine.Ilp db query in
  match (bf.Engine.objective, ilp.Engine.objective) with
  | Some a, Some b ->
      Alcotest.(check (float 1e-6)) "agree" a b;
      (* {2,3}: 2 + 3 -> v 2+3 = 5 *)
      Alcotest.(check (float 1e-6)) "value" 5.0 a
  | _ -> Alcotest.fail "expected objectives"

(* ---- LP corner cases ------------------------------------------------------ *)

let test_lp_empty_model () =
  let m = Model.create () in
  Model.set_objective m (Model.Maximize []);
  let s = Pb_lp.Simplex.solve m in
  Alcotest.(check bool) "optimal" true (s.Pb_lp.Simplex.status = Pb_lp.Simplex.Optimal);
  Alcotest.(check (float 1e-9)) "objective 0" 0.0 s.Pb_lp.Simplex.objective

let test_lp_variable_no_constraints () =
  let m = Model.create () in
  let x = Model.add_var m ~upper:3.0 "x" in
  Model.set_objective m (Model.Maximize [ (2.0, x) ]);
  let s = Pb_lp.Simplex.solve m in
  Alcotest.(check (float 1e-9)) "at upper bound" 6.0 s.Pb_lp.Simplex.objective

let test_milp_budget_returns_feasible () =
  (* A tiny node budget still yields a usable answer when one exists. *)
  let m = Model.create () in
  let vars =
    Array.init 10 (fun i ->
        Model.add_var m ~integer:true ~upper:1.0 (Printf.sprintf "x%d" i))
  in
  Model.add_constr m
    (Array.to_list (Array.mapi (fun i v -> (float_of_int (i + 1), v)) vars))
    Model.Le 17.0;
  Model.set_objective m
    (Model.Maximize
       (Array.to_list (Array.mapi (fun i v -> (float_of_int (10 - i), v)) vars)));
  let s = Pb_lp.Milp.solve ~gov:(Pb_util.Gov.create ~milp_nodes:1 ()) m in
  Alcotest.(check bool) "not optimal status" true
    (s.Pb_lp.Milp.status = Pb_lp.Milp.Feasible
    || s.Pb_lp.Milp.status = Pb_lp.Milp.Optimal)

(* ---- misc ------------------------------------------------------------------ *)

let test_csv_malformed_row () =
  let path = Filename.temp_file "pb_bad" ".csv" in
  let oc = open_out path in
  output_string oc "a,b\n1,2\n3\n";
  close_out oc;
  let db = Database.create () in
  (match Database.load_csv db ~name:"bad" path with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected arity failure");
  Sys.remove path

let test_workload_tiny_sizes () =
  let r = Pb_workload.Workload.recipes ~seed:1 ~n:0 () in
  Alcotest.(check int) "empty ok" 0 (Relation.cardinality r);
  let r1 = Pb_workload.Workload.recipes ~seed:1 ~n:1 () in
  Alcotest.(check int) "single ok" 1 (Relation.cardinality r1)

let suite =
  [
    Alcotest.test_case "empty table, all strategies" `Quick
      test_empty_table_all_strategies;
    Alcotest.test_case "single-row table" `Quick test_single_row_table;
    Alcotest.test_case "REPEAT 0 = absent" `Quick test_repeat_zero_equals_absent;
    Alcotest.test_case "whole-relation package" `Quick test_all_tuples_package;
    Alcotest.test_case "nested aggregate rejected" `Quick
      test_nested_aggregate_rejected;
    Alcotest.test_case "unknown column" `Quick test_unknown_column_message;
    Alcotest.test_case "division by zero is NULL" `Quick
      test_division_by_zero_projection;
    Alcotest.test_case "limit 0 / big offset" `Quick test_limit_zero_and_big_offset;
    Alcotest.test_case "group by expression" `Quick test_group_by_expression;
    Alcotest.test_case "having without group by" `Quick
      test_having_without_group_by;
    Alcotest.test_case "escaped quotes" `Quick test_string_with_quotes_roundtrip;
    Alcotest.test_case "conflicting constraints proven infeasible" `Quick
      test_conflicting_constraints_proven_infeasible;
    Alcotest.test_case "negative values in sums" `Quick test_negative_values_in_sums;
    Alcotest.test_case "strict inequalities" `Quick test_strict_inequalities;
    Alcotest.test_case "MAXIMIZE COUNT(*)" `Quick test_objective_count_star;
    Alcotest.test_case "CASE inside SUM objective" `Quick test_case_in_paql_objective;
    Alcotest.test_case "lp: empty model" `Quick test_lp_empty_model;
    Alcotest.test_case "lp: unconstrained bounded var" `Quick
      test_lp_variable_no_constraints;
    Alcotest.test_case "milp: tiny budget still feasible" `Quick
      test_milp_budget_returns_feasible;
    Alcotest.test_case "csv malformed row" `Quick test_csv_malformed_row;
    Alcotest.test_case "workload tiny sizes" `Quick test_workload_tiny_sizes;
  ]
