(* Tests for the optimization extensions: MILP presolve, LP-format
   export, best-bound node order, the §5 cost model, and simulated
   annealing. *)

module Model = Pb_lp.Model
module Milp = Pb_lp.Milp
module Presolve = Pb_lp.Presolve
module Lp_format = Pb_lp.Lp_format
module Parser = Pb_paql.Parser
module Coeffs = Pb_core.Coeffs
module Cost_model = Pb_core.Cost_model
module Annealing = Pb_core.Annealing
module Engine = Pb_core.Engine
module Semantics = Pb_paql.Semantics

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ---- presolve -------------------------------------------------------- *)

let knapsack () =
  let m = Model.create () in
  let vars =
    Array.init 4 (fun i ->
        Model.add_var m ~integer:true ~upper:1.0 (Printf.sprintf "v%d" i))
  in
  Model.add_constr m
    (Array.to_list (Array.mapi (fun i v -> (float_of_int (i + 1), v)) vars))
    Model.Le 6.0;
  Model.set_objective m
    (Model.Maximize (Array.to_list (Array.map (fun v -> (1.0, v)) vars)));
  (m, vars)

let test_presolve_drops_redundant_rows () =
  let m, vars = knapsack () in
  (* Always-true row: sum of binaries <= 100. *)
  Model.add_constr m
    (Array.to_list (Array.map (fun v -> (1.0, v)) vars))
    Model.Le 100.0;
  match Presolve.presolve m with
  | Presolve.Reduced { rows_dropped; model; _ } ->
      Alcotest.(check bool) "dropped" true (rows_dropped >= 1);
      Alcotest.(check int) "one row left" 1
        (List.length (Model.constraints model))
  | Presolve.Proven_infeasible -> Alcotest.fail "feasible model"

let test_presolve_singleton_to_bound () =
  let m, vars = knapsack () in
  Model.add_constr m [ (2.0, vars.(0)) ] Model.Le 1.0;  (* x0 <= 0.5 -> 0 *)
  match Presolve.presolve m with
  | Presolve.Reduced { model; bounds_tightened; _ } ->
      Alcotest.(check bool) "tightened" true (bounds_tightened >= 1);
      let _, hi = Model.bounds model vars.(0) in
      (* integer rounding: x0 <= floor(0.5) = 0 *)
      Alcotest.(check (float 1e-9)) "upper 0" 0.0 hi
  | Presolve.Proven_infeasible -> Alcotest.fail "feasible model"

let test_presolve_detects_infeasible () =
  let m, vars = knapsack () in
  (* Sum of 4 binaries >= 5: max activity is 4. *)
  Model.add_constr m
    (Array.to_list (Array.map (fun v -> (1.0, v)) vars))
    Model.Ge 5.0;
  match Presolve.presolve m with
  | Presolve.Proven_infeasible -> ()
  | Presolve.Reduced _ -> Alcotest.fail "should be infeasible"

let test_presolve_preserves_optimum () =
  let rng = Pb_util.Prng.create 31 in
  for _ = 1 to 20 do
    let n = Pb_util.Prng.int_in rng 2 7 in
    let m = Model.create () in
    let vars =
      Array.init n (fun i ->
          Model.add_var m ~integer:true ~upper:1.0 (Printf.sprintf "v%d" i))
    in
    let w = Array.init n (fun _ -> float_of_int (Pb_util.Prng.int_in rng 1 9)) in
    let v = Array.init n (fun _ -> float_of_int (Pb_util.Prng.int_in rng 0 9)) in
    Model.add_constr m
      (Array.to_list (Array.mapi (fun i x -> (w.(i), x)) vars))
      Model.Le
      (float_of_int (Pb_util.Prng.int_in rng 3 25));
    (* plus a redundant and a singleton row to give presolve work *)
    Model.add_constr m
      (Array.to_list (Array.map (fun x -> (1.0, x)) vars))
      Model.Le 99.0;
    Model.add_constr m [ (1.0, vars.(0)) ] Model.Le 1.0;
    Model.set_objective m
      (Model.Maximize (Array.to_list (Array.mapi (fun i x -> (v.(i), x)) vars)));
    let plain = Milp.solve m in
    let presolved = Milp.solve ~presolve:true m in
    match (plain.Milp.status, presolved.Milp.status) with
    | Milp.Optimal, Milp.Optimal ->
        Alcotest.(check (float 1e-6)) "same optimum" plain.Milp.objective
          presolved.Milp.objective
    | a, b ->
        Alcotest.(check bool) "same status" true (a = b)
  done

(* ---- lp format -------------------------------------------------------- *)

let test_lp_format_sections () =
  let m, _ = knapsack () in
  let text = Lp_format.to_string m in
  List.iter
    (fun section ->
      Alcotest.(check bool) section true (contains text section))
    [ "Maximize"; "Subject To"; "Bounds"; "Generals"; "End" ]

let test_lp_format_sanitizes () =
  let m = Model.create () in
  let _ = Model.add_var m "weird name!" in
  let _ = Model.add_var m "weird name?" in
  let text = Lp_format.to_string m in
  Alcotest.(check bool) "sanitized" true (contains text "weird_name_");
  (* the second one must be uniquified *)
  Alcotest.(check bool) "uniquified" true (contains text "weird_name__1")

(* ---- node order -------------------------------------------------------- *)

let test_best_bound_same_answer () =
  let rng = Pb_util.Prng.create 77 in
  for _ = 1 to 15 do
    let n = Pb_util.Prng.int_in rng 3 8 in
    let m = Model.create () in
    let vars =
      Array.init n (fun i ->
          Model.add_var m ~integer:true ~upper:1.0 (Printf.sprintf "v%d" i))
    in
    let w = Array.init n (fun _ -> float_of_int (Pb_util.Prng.int_in rng 1 9)) in
    let v = Array.init n (fun _ -> float_of_int (Pb_util.Prng.int_in rng 0 9)) in
    Model.add_constr m
      (Array.to_list (Array.mapi (fun i x -> (w.(i), x)) vars))
      Model.Le
      (float_of_int (Pb_util.Prng.int_in rng 3 20));
    Model.set_objective m
      (Model.Maximize (Array.to_list (Array.mapi (fun i x -> (v.(i), x)) vars)));
    let dfs = Milp.solve ~node_order:Milp.Dfs m in
    let bb = Milp.solve ~node_order:Milp.Best_bound m in
    Alcotest.(check bool) "same status" true (dfs.Milp.status = bb.Milp.status);
    if dfs.Milp.status = Milp.Optimal then
      Alcotest.(check (float 1e-6)) "same optimum" dfs.Milp.objective
        bb.Milp.objective
  done

(* ---- cost model --------------------------------------------------------- *)

let items_db n =
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "recipes" (Pb_workload.Workload.recipes ~seed:3 ~n ());
  db

let meal_query =
  "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
   SUM(P.protein)"

let test_cost_model_estimates () =
  let db = items_db 100 in
  let c = Coeffs.make db (Parser.parse meal_query) in
  let es = Cost_model.estimates c in
  Alcotest.(check int) "four strategies" 4 (List.length es);
  let by_label label = List.find (fun e -> e.Cost_model.strategy_label = label) es in
  Alcotest.(check bool) "bf is exact" true (by_label "brute-force").Cost_model.exact;
  Alcotest.(check bool) "ls not exact" false
    (by_label "local-search").Cost_model.exact;
  Alcotest.(check bool) "pruning cheaper than plain bf" true
    ((by_label "brute-force+pruning").Cost_model.cost
    <= (by_label "brute-force").Cost_model.cost)

let test_cost_model_pick_prefers_exact () =
  let db = items_db 20 in
  let c = Coeffs.make db (Parser.parse meal_query) in
  let choice = Cost_model.pick c in
  Alcotest.(check bool) "exact choice" true choice.Cost_model.exact

let test_cost_model_opaque_query () =
  let db = items_db 30 in
  let c =
    Coeffs.make db
      (Parser.parse
         "SELECT PACKAGE(r) AS p FROM recipes r SUCH THAT SUM(p.calories) IN \
          (SELECT calories FROM recipes) MAXIMIZE SUM(p.protein)")
  in
  let es = Cost_model.estimates c in
  let ilp = List.find (fun e -> e.Cost_model.strategy_label = "ilp") es in
  Alcotest.(check bool) "ilp inapplicable" false ilp.Cost_model.applicable

let test_cost_model_infeasible () =
  let db = items_db 4 in
  let c =
    Coeffs.make db
      (Parser.parse "SELECT PACKAGE(r) AS p FROM recipes r SUCH THAT COUNT(*) = 50")
  in
  Alcotest.(check bool) "proven infeasible" true (Cost_model.proven_infeasible c)

let test_cost_model_table_renders () =
  let db = items_db 25 in
  let c = Coeffs.make db (Parser.parse meal_query) in
  Alcotest.(check bool) "has header" true
    (contains (Cost_model.to_table c) "strategy")

(* ---- annealing ----------------------------------------------------------- *)

let test_annealing_finds_valid () =
  let db = items_db 60 in
  let query = Parser.parse meal_query in
  let r =
    Engine.run ~strategy:(Engine.Anneal Annealing.default_params) db query
  in
  match r.Engine.package with
  | Some pkg ->
      Alcotest.(check bool) "oracle-valid" true (Semantics.is_valid ~db query pkg)
  | None -> Alcotest.fail "annealing found nothing"

let test_annealing_near_optimal () =
  let db = items_db 60 in
  let query = Parser.parse meal_query in
  let exact = Engine.run ~strategy:Engine.Ilp db query in
  let anneal =
    Engine.run ~strategy:(Engine.Anneal Annealing.default_params) db query
  in
  match (exact.Engine.objective, anneal.Engine.objective) with
  | Some e, Some a ->
      Alcotest.(check bool)
        (Printf.sprintf "within 20%% (%g vs %g)" a e)
        true
        (a >= 0.8 *. e)
  | _ -> Alcotest.fail "expected objectives from both"

let test_annealing_empty_candidates () =
  let db = items_db 10 in
  let query =
    Parser.parse
      "SELECT PACKAGE(r) AS p FROM recipes r WHERE r.calories > 100000 SUCH \
       THAT COUNT(*) = 1"
  in
  let r =
    Engine.run ~strategy:(Engine.Anneal Annealing.default_params) db query
  in
  Alcotest.(check bool) "no package" true (r.Engine.package = None)

let test_annealing_deterministic () =
  let db = items_db 40 in
  let query = Parser.parse meal_query in
  let run () =
    (Engine.run ~strategy:(Engine.Anneal Annealing.default_params) db query)
      .Engine.objective
  in
  Alcotest.(check (option (float 1e-9))) "same seed, same answer" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "presolve drops redundant rows" `Quick
      test_presolve_drops_redundant_rows;
    Alcotest.test_case "presolve singleton to bound" `Quick
      test_presolve_singleton_to_bound;
    Alcotest.test_case "presolve detects infeasible" `Quick
      test_presolve_detects_infeasible;
    Alcotest.test_case "presolve preserves optimum" `Quick
      test_presolve_preserves_optimum;
    Alcotest.test_case "lp format sections" `Quick test_lp_format_sections;
    Alcotest.test_case "lp format sanitizes names" `Quick test_lp_format_sanitizes;
    Alcotest.test_case "best-bound = dfs answers" `Quick
      test_best_bound_same_answer;
    Alcotest.test_case "cost model estimates" `Quick test_cost_model_estimates;
    Alcotest.test_case "cost model prefers exact" `Quick
      test_cost_model_pick_prefers_exact;
    Alcotest.test_case "cost model opaque query" `Quick test_cost_model_opaque_query;
    Alcotest.test_case "cost model infeasible" `Quick test_cost_model_infeasible;
    Alcotest.test_case "cost model table" `Quick test_cost_model_table_renders;
    Alcotest.test_case "annealing finds valid" `Quick test_annealing_finds_valid;
    Alcotest.test_case "annealing near optimal" `Quick test_annealing_near_optimal;
    Alcotest.test_case "annealing empty candidates" `Quick
      test_annealing_empty_candidates;
    Alcotest.test_case "annealing deterministic" `Quick test_annealing_deterministic;
  ]
