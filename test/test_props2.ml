(* Property-based tests for the extension subsystems: SQL set operations,
   the query planner, presolve, SQL candidate generation, annealing,
   persistence, and the interface helpers. *)

module Gen = QCheck.Gen
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Database = Pb_sql.Database
module Executor = Pb_sql.Executor
module Parser = Pb_paql.Parser
module Model = Pb_lp.Model

(* ---- random small tables ---------------------------------------------- *)

type tables = {
  t1 : (int * int) list;  (* (a, b) *)
  t2 : (int * int) list;  (* (c, d) *)
}

let tables_gen : tables Gen.t =
  let open Gen in
  let* n1 = int_range 0 7 in
  let* n2 = int_range 0 7 in
  let* t1 = list_repeat n1 (pair (int_range 0 4) (int_range 0 9)) in
  let* t2 = list_repeat n2 (pair (int_range 0 4) (int_range 0 9)) in
  return { t1; t2 }

let db_of_tables { t1; t2 } =
  let db = Database.create () in
  let mk cols rows =
    Relation.create
      (Schema.make
         (List.map (fun name -> { Schema.name; ty = Value.T_int }) cols))
      (List.map (fun (x, y) -> [| Value.Int x; Value.Int y |]) rows)
  in
  Database.put db "t1" (mk [ "a"; "b" ] t1);
  Database.put db "t2" (mk [ "c"; "d" ] t2);
  db

let rows_of db sql =
  match Executor.execute_sql db sql with
  | Executor.Rows rel ->
      List.sort compare
        (List.map
           (fun row -> Array.to_list (Array.map Value.to_string row))
           (Relation.to_list rel))
  | _ -> []

(* ---- set-operation algebra -------------------------------------------- *)

let prop_union_commutative =
  QCheck.Test.make ~count:100 ~name:"UNION is commutative (as sets)"
    (QCheck.make tables_gen) (fun t ->
      let db = db_of_tables t in
      rows_of db "SELECT a FROM t1 UNION SELECT c FROM t2"
      = rows_of db "SELECT c FROM t2 UNION SELECT a FROM t1")

let prop_union_idempotent =
  QCheck.Test.make ~count:100 ~name:"X UNION X = DISTINCT X"
    (QCheck.make tables_gen) (fun t ->
      let db = db_of_tables t in
      rows_of db "SELECT a FROM t1 UNION SELECT a FROM t1"
      = rows_of db "SELECT DISTINCT a FROM t1")

let prop_except_subset =
  QCheck.Test.make ~count:100 ~name:"EXCEPT result is a subset of the left side"
    (QCheck.make tables_gen) (fun t ->
      let db = db_of_tables t in
      let left = rows_of db "SELECT DISTINCT a FROM t1" in
      let diff = rows_of db "SELECT a FROM t1 EXCEPT SELECT c FROM t2" in
      List.for_all (fun row -> List.mem row left) diff)

let prop_intersect_in_both =
  QCheck.Test.make ~count:100 ~name:"INTERSECT rows appear in both sides"
    (QCheck.make tables_gen) (fun t ->
      let db = db_of_tables t in
      let left = rows_of db "SELECT DISTINCT a FROM t1" in
      let right = rows_of db "SELECT DISTINCT c FROM t2" in
      let inter = rows_of db "SELECT a FROM t1 INTERSECT SELECT c FROM t2" in
      List.for_all (fun row -> List.mem row left && List.mem row right) inter)

let prop_union_all_cardinality =
  QCheck.Test.make ~count:100 ~name:"UNION ALL cardinality adds up"
    (QCheck.make tables_gen) (fun t ->
      let db = db_of_tables t in
      List.length (rows_of db "SELECT a FROM t1 UNION ALL SELECT c FROM t2")
      = List.length t.t1 + List.length t.t2)

(* ---- planner equivalence (property form) ------------------------------- *)

let where_gen =
  Gen.oneofl
    [
      "t1.a = t2.c";
      "t1.a = t2.c AND t1.b <= 5";
      "t1.b >= 3 AND t2.d < 8";
      "t1.a = t2.c AND t1.b + t2.d < 12";
      "t1.b BETWEEN 2 AND 7";
      "t1.a < t2.c OR t1.b = t2.d";
      "t1.a = t2.c AND t2.d = t1.b";
    ]

let prop_planner_equivalent =
  QCheck.Test.make ~count:150 ~name:"planner = naive product+filter"
    (QCheck.make (Gen.pair tables_gen where_gen)) (fun (t, where) ->
      let db = db_of_tables t in
      ignore (Executor.execute_sql db "CREATE INDEX ON t1 (b)");
      let q = Pb_sql.Parser.parse_select ("SELECT * FROM t1, t2 WHERE " ^ where) in
      let eval schema row e = Executor.eval_expr ~db schema row e in
      let planned, _ =
        Pb_sql.Planner.execute db ~eval ~from:q.Pb_sql.Ast.from
          ~where:q.Pb_sql.Ast.where
      in
      let naive =
        Pb_sql.Planner.naive db ~eval ~from:q.Pb_sql.Ast.from
          ~where:q.Pb_sql.Ast.where
      in
      let canon rel =
        List.sort compare
          (List.map
             (fun row -> Array.to_list (Array.map Value.to_string row))
             (Relation.to_list rel))
      in
      canon planned = canon naive)

(* ---- presolve --------------------------------------------------------- *)

let milp_gen : (int array * int array * int) Gen.t =
  let open Gen in
  let* n = int_range 1 7 in
  let* w = array_repeat n (int_range 1 9) in
  let* v = array_repeat n (int_range 0 9) in
  let* budget = int_range 1 30 in
  return (w, v, budget)

let build_knapsack (w, v, budget) =
  let m = Model.create () in
  let n = Array.length w in
  let vars =
    Array.init n (fun i ->
        Model.add_var m ~integer:true ~upper:1.0 (Printf.sprintf "x%d" i))
  in
  Model.add_constr m
    (Array.to_list (Array.mapi (fun i x -> (float_of_int w.(i), x)) vars))
    Model.Le (float_of_int budget);
  (* Redundant and singleton rows to exercise presolve. *)
  Model.add_constr m
    (Array.to_list (Array.map (fun x -> (1.0, x)) vars))
    Model.Le 1000.0;
  Model.add_constr m [ (1.0, vars.(0)) ] Model.Le 1.0;
  Model.set_objective m
    (Model.Maximize
       (Array.to_list (Array.mapi (fun i x -> (float_of_int v.(i), x)) vars)));
  m

let prop_presolve_preserves_optimum =
  QCheck.Test.make ~count:100 ~name:"presolve preserves the MILP optimum"
    (QCheck.make milp_gen) (fun inst ->
      let plain = Pb_lp.Milp.solve (build_knapsack inst) in
      let reduced = Pb_lp.Milp.solve ~presolve:true (build_knapsack inst) in
      plain.Pb_lp.Milp.status = reduced.Pb_lp.Milp.status
      && (plain.Pb_lp.Milp.status <> Pb_lp.Milp.Optimal
         || Float.abs (plain.Pb_lp.Milp.objective -. reduced.Pb_lp.Milp.objective)
            < 1e-6))

let prop_node_orders_agree =
  QCheck.Test.make ~count:100 ~name:"DFS and best-bound agree"
    (QCheck.make milp_gen) (fun inst ->
      let dfs = Pb_lp.Milp.solve ~node_order:Pb_lp.Milp.Dfs (build_knapsack inst) in
      let bb =
        Pb_lp.Milp.solve ~node_order:Pb_lp.Milp.Best_bound (build_knapsack inst)
      in
      dfs.Pb_lp.Milp.status = bb.Pb_lp.Milp.status
      && (dfs.Pb_lp.Milp.status <> Pb_lp.Milp.Optimal
         || Float.abs (dfs.Pb_lp.Milp.objective -. bb.Pb_lp.Milp.objective) < 1e-6))

(* ---- package strategies over random tables ----------------------------- *)

type pkg_instance = { rows : (int * int) list; count : int; budget : int }

let pkg_gen : pkg_instance Gen.t =
  let open Gen in
  let* n = int_range 1 8 in
  let* rows = list_repeat n (pair (int_range 0 20) (int_range 1 9)) in
  let* count = int_range 1 3 in
  let* budget = int_range 3 20 in
  return { rows; count; budget }

let pkg_db inst =
  let db = Database.create () in
  Database.put db "t"
    (Relation.create
       (Schema.make
          [
            { Schema.name = "v"; ty = Value.T_int };
            { Schema.name = "w"; ty = Value.T_int };
          ])
       (List.map (fun (v, w) -> [| Value.Int v; Value.Int w |]) inst.rows));
  db

let pkg_query inst =
  Parser.parse
    (Printf.sprintf
       "SELECT PACKAGE(t) AS p FROM t SUCH THAT COUNT(*) = %d AND SUM(p.w) \
        <= %d MAXIMIZE SUM(p.v)"
       inst.count inst.budget)

let prop_sql_generation_exact =
  QCheck.Test.make ~count:80 ~name:"sql-generation = brute force"
    (QCheck.make pkg_gen) (fun inst ->
      let db = pkg_db inst in
      let c = Pb_core.Coeffs.make db (pkg_query inst) in
      let gen = Pb_core.Sql_generate.search db c in
      let bf = Pb_core.Brute_force.search c in
      gen.Pb_core.Sql_generate.applicable
      &&
      match (gen.Pb_core.Sql_generate.best_objective, bf.Pb_core.Brute_force.best_objective) with
      | Some a, Some b -> Float.abs (a -. b) < 1e-6
      | None, None ->
          gen.Pb_core.Sql_generate.best = None = (bf.Pb_core.Brute_force.best = None)
      | _ -> false)

let prop_annealing_valid =
  QCheck.Test.make ~count:50 ~name:"annealing answers are oracle-valid"
    (QCheck.make pkg_gen) (fun inst ->
      let db = pkg_db inst in
      let query = pkg_query inst in
      let r =
        Pb_core.Engine.run
          ~strategy:(Pb_core.Engine.Anneal Pb_core.Annealing.default_params)
          db query
      in
      match r.Pb_core.Engine.package with
      | Some pkg -> Pb_paql.Semantics.is_valid ~db query pkg
      | None -> true)

(* ---- persistence -------------------------------------------------------- *)

let prop_persist_roundtrip =
  QCheck.Test.make ~count:40 ~name:"persist: save/load is identity"
    (QCheck.make tables_gen) (fun t ->
      let db = db_of_tables t in
      let dir = Filename.temp_file "pb_prop" "" in
      Sys.remove dir;
      let result =
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists dir then begin
              Array.iter
                (fun f -> Sys.remove (Filename.concat dir f))
                (Sys.readdir dir);
              Sys.rmdir dir
            end)
          (fun () ->
            Pb_sql.Persist.save_dir db dir;
            let db2 = Pb_sql.Persist.load_dir dir in
            List.for_all
              (fun table ->
                let r1 = Database.find_exn db table in
                let r2 = Database.find_exn db2 table in
                Schema.equal (Relation.schema r1) (Relation.schema r2)
                && Relation.to_list r1 = Relation.to_list r2)
              (Database.table_names db))
      in
      result)

(* ---- interface helpers --------------------------------------------------- *)

let paql_text_gen : string Gen.t =
  let open Gen in
  let* where = opt (oneofl [ "t.a > 3"; "t.b BETWEEN 1 AND 9" ]) in
  let* such_that =
    opt
      (oneofl
         [
           "COUNT(*) = 3";
           "SUM(p.a) <= 50 AND AVG(p.b) >= 2";
           "MIN(p.a) >= 1 OR MAX(p.b) <= 7";
         ])
  in
  let* obj = opt (oneofl [ "MAXIMIZE SUM(p.a)"; "MINIMIZE SUM(p.b)" ]) in
  let parts =
    [ "SELECT PACKAGE(t) AS p FROM tbl t" ]
    @ (match where with Some w -> [ "WHERE " ^ w ] | None -> [])
    @ (match such_that with Some s -> [ "SUCH THAT " ^ s ] | None -> [])
    @ match obj with Some o -> [ o ] | None -> []
  in
  return (String.concat " " parts)

let prop_describe_total =
  QCheck.Test.make ~count:200 ~name:"describe_query never raises"
    (QCheck.make paql_text_gen) (fun src ->
      let q = Parser.parse src in
      String.length (Pb_explore.Describe.describe_query q) > 0)

let prop_complete_prefix_of_itself =
  (* Feeding any prefix of a valid query to the completer never raises,
     and every suggestion is non-empty. *)
  QCheck.Test.make ~count:100 ~name:"complete is total on query prefixes"
    (QCheck.make
       Gen.(pair paql_text_gen (int_range 0 80)))
    (fun (src, cut) ->
      let db = Database.create () in
      Database.put db "tbl"
        (Relation.create
           (Schema.make
              [
                { Schema.name = "a"; ty = Value.T_int };
                { Schema.name = "b"; ty = Value.T_int };
              ])
           []);
      let prefix = String.sub src 0 (min cut (String.length src)) in
      List.for_all
        (fun s -> String.length s > 0)
        (Pb_explore.Complete.suggest db prefix))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_union_commutative;
      prop_union_idempotent;
      prop_except_subset;
      prop_intersect_in_both;
      prop_union_all_cardinality;
      prop_planner_equivalent;
      prop_presolve_preserves_optimum;
      prop_node_orders_agree;
      prop_sql_generation_exact;
      prop_annealing_valid;
      prop_persist_roundtrip;
      prop_describe_total;
      prop_complete_prefix_of_itself;
    ]
