(* Tests for the observability layer: span tracing, the metrics
   registry's exposition format, the slow-query log, and the REPL's
   EXPLAIN ANALYZE surface built on top of them. *)

module Trace = Pb_obs.Trace
module Metrics = Pb_obs.Metrics
module Clock = Pb_obs.Clock
module Slow_log = Pb_obs.Slow_log

(* A deterministic clock that advances a fixed step per reading, so span
   timings are exact. *)
let with_fake_clock ?(step = 0.5) f =
  let t = ref 0.0 in
  Clock.set_source (fun () ->
      let v = !t in
      t := v +. step;
      v);
  Fun.protect ~finally:Clock.reset_source f

let with_tracing f =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

(* ---- tracing --------------------------------------------------------- *)

let test_span_nesting () =
  with_tracing (fun () ->
      let v =
        Trace.with_span ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
            Trace.with_span ~name:"first" (fun () -> ());
            Trace.with_span ~name:"second" (fun () -> Trace.add_count "hits" 2);
            41 + 1)
      in
      Alcotest.(check int) "value threaded through" 42 v;
      match Trace.spans () with
      | [ outer; first; second ] ->
          Alcotest.(check string) "open order" "outer" outer.Trace.name;
          Alcotest.(check string) "first child" "first" first.Trace.name;
          Alcotest.(check string) "second child" "second" second.Trace.name;
          Alcotest.(check int) "root parent" (-1) outer.Trace.parent;
          Alcotest.(check int) "first nests" outer.Trace.id first.Trace.parent;
          Alcotest.(check int) "second nests" outer.Trace.id second.Trace.parent;
          Alcotest.(check (list (pair string string)))
            "attrs kept" [ ("k", "v") ] outer.Trace.attrs;
          Alcotest.(check (list (pair string int)))
            "counter on innermost span" [ ("hits", 2) ] second.Trace.counters
      | spans ->
          Alcotest.fail (Printf.sprintf "expected 3 spans, got %d" (List.length spans)))

let test_span_timing () =
  with_fake_clock ~step:0.5 (fun () ->
      with_tracing (fun () ->
          Trace.with_span ~name:"a" (fun () -> ());
          match Trace.spans () with
          | [ sp ] ->
              (* open reads the clock once, close once: 0.5s apart *)
              Alcotest.(check (float 1e-9)) "elapsed" 0.5 sp.Trace.elapsed
          | _ -> Alcotest.fail "expected one span"))

let test_disabled_is_noop () =
  Trace.reset ();
  Trace.set_enabled false;
  let v = Trace.with_span ~name:"ghost" (fun () -> 7) in
  Alcotest.(check int) "thunk still runs" 7 v;
  Trace.add_count "ignored" 3;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()))

let test_timed_measures_when_disabled () =
  with_fake_clock ~step:0.25 (fun () ->
      Trace.reset ();
      Trace.set_enabled false;
      let v, elapsed = Trace.timed ~name:"t" (fun () -> "x") in
      Alcotest.(check string) "value" "x" v;
      Alcotest.(check (float 1e-9)) "elapsed without spans" 0.25 elapsed;
      Alcotest.(check int) "no span recorded" 0 (List.length (Trace.spans ())))

let test_span_survives_exception () =
  with_tracing (fun () ->
      (try
         Trace.with_span ~name:"outer" (fun () ->
             Trace.with_span ~name:"boom" (fun () -> failwith "kaboom"))
       with Failure _ -> ());
      (* both spans recorded, and the stack is clean for the next span *)
      Alcotest.(check (list string))
        "both recorded" [ "outer"; "boom" ]
        (List.map (fun sp -> sp.Trace.name) (Trace.spans ()));
      Trace.with_span ~name:"after" (fun () -> ());
      let after =
        List.find (fun sp -> sp.Trace.name = "after") (Trace.spans ())
      in
      Alcotest.(check int) "clean stack afterwards" (-1) after.Trace.parent)

let test_ring_overwrites_oldest () =
  with_tracing (fun () ->
      Trace.reset ~capacity:4 ();
      for i = 1 to 6 do
        Trace.with_span ~name:(Printf.sprintf "s%d" i) (fun () -> ())
      done;
      Alcotest.(check int) "dropped count" 2 (Trace.dropped ());
      Alcotest.(check (list string))
        "newest survive" [ "s3"; "s4"; "s5"; "s6" ]
        (List.map (fun sp -> sp.Trace.name) (Trace.spans ()));
      Trace.reset ~capacity:4096 ())

let test_render_tree () =
  with_fake_clock ~step:0.001 (fun () ->
      with_tracing (fun () ->
          Trace.with_span ~name:"engine.evaluate" (fun () ->
              Trace.with_span ~name:"milp.solve" (fun () ->
                  Trace.add_count "bb_nodes" 3));
          let tree = Trace.render_tree () in
          let lines = String.split_on_char '\n' (String.trim tree) in
          match lines with
          | [ root; child ] ->
              Alcotest.(check bool)
                "root unindented" true
                (String.length root > 0 && root.[0] <> ' ');
              Alcotest.(check bool)
                "root named" true
                (String.length root >= 15
                && String.sub root 0 15 = "engine.evaluate");
              Alcotest.(check bool)
                "child indented" true
                (String.length child > 2 && String.sub child 0 2 = "  ");
              let contains needle hay =
                let n = String.length needle and h = String.length hay in
                let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
                go 0
              in
              Alcotest.(check bool)
                "counter rendered" true (contains "bb_nodes=3" child)
          | _ -> Alcotest.fail ("unexpected tree:\n" ^ tree)))

let test_json_lines () =
  with_fake_clock (fun () ->
      with_tracing (fun () ->
          Trace.with_span ~name:"a\"b" (fun () -> ());
          let json = Trace.to_json_lines () in
          let contains needle hay =
            let n = String.length needle and h = String.length hay in
            let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            "name escaped" true (contains "\"name\":\"a\\\"b\"" json);
          Alcotest.(check bool) "parent field" true (contains "\"parent\":-1" json)))

(* ---- metrics --------------------------------------------------------- *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "pb_test_ops_total" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "accumulates" 5 (Metrics.counter_value c);
  let again = Metrics.counter ~registry:r "pb_test_ops_total" in
  Metrics.incr again;
  Alcotest.(check int) "same instrument by name" 6 (Metrics.counter_value c);
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr ~by:(-1) c);
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Metrics: pb_test_ops_total is already registered as another kind")
    (fun () -> ignore (Metrics.gauge ~registry:r "pb_test_ops_total"))

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h =
    Metrics.histogram ~registry:r ~buckets:[ 0.1; 1.0; 10.0 ] "pb_test_seconds"
  in
  (* le-inclusive: an observation exactly on a bound lands in that bucket *)
  List.iter (Metrics.observe h) [ 0.05; 0.1; 0.5; 1.0; 2.0; 99.0 ];
  Alcotest.(check (list (pair (float 0.0) int)))
    "bucket boundaries"
    [ (0.1, 2); (1.0, 2); (10.0, 1); (infinity, 1) ]
    (Metrics.bucket_counts h);
  Alcotest.(check int) "count" 6 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 102.65 (Metrics.histogram_sum h);
  Alcotest.check_raises "empty buckets"
    (Invalid_argument "Metrics.histogram: empty bucket list") (fun () ->
      ignore (Metrics.histogram ~registry:r ~buckets:[] "pb_test_empty"))

(* Parse the exposition text back into (name-with-labels, value) samples;
   '#' comment lines are skipped. *)
let parse_exposition text =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None
      else
        match String.rindex_opt line ' ' with
        | None -> Alcotest.fail ("unparseable sample line: " ^ line)
        | Some i ->
            let name = String.sub line 0 i in
            let raw = String.sub line (i + 1) (String.length line - i - 1) in
            (match float_of_string_opt raw with
            | Some v -> Some (name, v)
            | None -> Alcotest.fail ("unparseable value: " ^ line)))
    (String.split_on_char '\n' text)

let test_dump_round_trip () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"test ops" "pb_test_ops_total" in
  let g = Metrics.gauge ~registry:r "pb_test_queue_depth" in
  let h =
    Metrics.histogram ~registry:r ~buckets:[ 0.5; 2.0 ] "pb_test_latency"
  in
  Metrics.incr ~by:7 c;
  Metrics.set g 3.25;
  List.iter (Metrics.observe h) [ 0.25; 1.5; 9.0 ];
  let parsed = parse_exposition (Metrics.dump ~registry:r ()) in
  (* every snapshot sample round-trips through the exposition text *)
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name parsed with
      | Some v' -> Alcotest.(check (float 1e-9)) ("round-trip " ^ name) v v'
      | None -> Alcotest.fail ("sample missing from dump: " ^ name))
    (Metrics.snapshot ~registry:r ());
  (* histogram series are cumulative and end at the total count *)
  let bucket le = List.assoc ("pb_test_latency_bucket{le=\"" ^ le ^ "\"}") parsed in
  Alcotest.(check (float 0.0)) "le=0.5" 1.0 (bucket "0.5");
  Alcotest.(check (float 0.0)) "le=2" 2.0 (bucket "2");
  Alcotest.(check (float 0.0)) "le=+Inf" 3.0 (bucket "+Inf");
  Alcotest.(check (float 0.0))
    "+Inf equals _count" (bucket "+Inf")
    (List.assoc "pb_test_latency_count" parsed);
  (* TYPE headers are present for scrapers *)
  let dump = Metrics.dump ~registry:r () in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun header ->
      Alcotest.(check bool) ("has " ^ header) true (contains header dump))
    [
      "# HELP pb_test_ops_total test ops";
      "# TYPE pb_test_ops_total counter";
      "# TYPE pb_test_queue_depth gauge";
      "# TYPE pb_test_latency histogram";
    ]

let test_reset_keeps_registrations () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "pb_test_ops_total" in
  Metrics.incr ~by:9 c;
  Metrics.reset ~registry:r ();
  Alcotest.(check int) "zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check (list (pair string (float 0.0))))
    "still registered"
    [ ("pb_test_ops_total", 0.0) ]
    (Metrics.snapshot ~registry:r ())

(* ---- slow-query log -------------------------------------------------- *)

let test_slow_log () =
  Fun.protect
    ~finally:(fun () ->
      Slow_log.set_threshold None;
      Slow_log.clear ())
    (fun () ->
      Slow_log.clear ();
      Alcotest.(check bool)
        "off by default: not logged" false
        (Slow_log.observe ~query:"SELECT 1" ~elapsed:99.0);
      Slow_log.set_threshold (Some 0.5);
      Alcotest.(check bool)
        "under threshold" false
        (Slow_log.observe ~query:"fast" ~elapsed:0.4);
      Alcotest.(check bool)
        "at threshold" true
        (Slow_log.observe ~query:"slow1" ~elapsed:0.5);
      Alcotest.(check bool)
        "over threshold" true
        (Slow_log.observe ~query:"slow2" ~elapsed:0.9);
      Alcotest.(check (list string))
        "most recent first" [ "slow2"; "slow1" ]
        (List.map (fun e -> e.Slow_log.query) (Slow_log.entries ()));
      Slow_log.clear ();
      Alcotest.(check int) "cleared" 0 (List.length (Slow_log.entries ())))

(* ---- EXPLAIN ANALYZE through the REPL -------------------------------- *)

let demo_db () =
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "recipes"
    (Pb_workload.Workload.recipes ~seed:7 ~n:40 ());
  db

let meal_query =
  "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
   SUM(P.protein)"

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_explain_analyze () =
  with_fake_clock ~step:0.001 (fun () ->
      let st = Pb_shell.Repl.create (demo_db ()) in
      let reaction =
        Pb_shell.Repl.handle st ("\\explain analyze " ^ meal_query)
      in
      let out = reaction.Pb_shell.Repl.output in
      let lines = String.split_on_char '\n' out in
      (* the span tree leads with the evaluation root, unindented *)
      (match lines with
      | first :: _ ->
          Alcotest.(check bool)
            "root span first" true
            (String.length first >= 10
            && String.sub first 0 10 = "engine.run")
      | [] -> Alcotest.fail "empty output");
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("output has " ^ needle) true (contains needle out))
        [
          "  strategy.";  (* nested strategy span *)
          "counters:";
          "pb_engine_strategy_runs_total +";
          "objective:";
          "strategy: ";
        ];
      (* tracing was only on for the analyzed run *)
      Alcotest.(check bool) "tracing restored off" false (Trace.is_enabled ());
      (* the run is remembered like a plain query, so \save works *)
      let save = Pb_shell.Repl.handle st "\\save plan" in
      Alcotest.(check bool)
        "package saved" true
        (contains "saved as plan" save.Pb_shell.Repl.output))

let test_explain_analyze_bad_query () =
  let st = Pb_shell.Repl.create (demo_db ()) in
  let reaction = Pb_shell.Repl.handle st "\\explain analyze SELECT PACKAGE(" in
  Alcotest.(check bool)
    "parse error reported" true
    (contains "paql error" reaction.Pb_shell.Repl.output);
  Alcotest.(check bool) "tracing left off" false (Trace.is_enabled ())

let test_metrics_command () =
  let st = Pb_shell.Repl.create (demo_db ()) in
  let reaction = Pb_shell.Repl.handle st "\\metrics" in
  Alcotest.(check bool)
    "exposition format" true
    (contains "# TYPE pb_engine_strategy_runs_total counter"
       reaction.Pb_shell.Repl.output)

let test_slowlog_command () =
  Fun.protect
    ~finally:(fun () ->
      Slow_log.set_threshold None;
      Slow_log.clear ())
    (fun () ->
      let st = Pb_shell.Repl.create (demo_db ()) in
      let out line = (Pb_shell.Repl.handle st line).Pb_shell.Repl.output in
      Alcotest.(check bool) "off by default" true (contains "off" (out "\\slowlog"));
      Alcotest.(check bool)
        "enable" true
        (contains "logging queries slower than 0s" (out "\\slowlog 0"));
      ignore (out meal_query);
      Alcotest.(check bool)
        "query logged" true
        (contains "PACKAGE" (out "\\slowlog"));
      Alcotest.(check bool) "clear" true (contains "cleared" (out "\\slowlog clear"));
      Alcotest.(check bool)
        "empty after clear" true
        (contains "empty" (out "\\slowlog"));
      Alcotest.(check bool)
        "disable" true
        (contains "disabled" (out "\\slowlog off"));
      Alcotest.(check bool)
        "bad argument" true
        (contains "usage" (out "\\slowlog nonsense")))

let suite =
  [
    ("span nesting, attrs and counters.", `Quick, test_span_nesting);
    ("span timing under a fake clock.", `Quick, test_span_timing);
    ("disabled tracing records nothing.", `Quick, test_disabled_is_noop);
    ("timed measures even when disabled.", `Quick, test_timed_measures_when_disabled);
    ("spans are recorded on exceptions.", `Quick, test_span_survives_exception);
    ("ring buffer overwrites oldest.", `Quick, test_ring_overwrites_oldest);
    ("render_tree indents children.", `Quick, test_render_tree);
    ("json lines escape names.", `Quick, test_json_lines);
    ("counter basics and kind clash.", `Quick, test_counter_basics);
    ("histogram bucket boundaries.", `Quick, test_histogram_buckets);
    ("dump round-trips the snapshot.", `Quick, test_dump_round_trip);
    ("reset keeps registrations.", `Quick, test_reset_keeps_registrations);
    ("slow log thresholds and ordering.", `Quick, test_slow_log);
    ("EXPLAIN ANALYZE prints tree and counters.", `Quick, test_explain_analyze);
    ("EXPLAIN ANALYZE parse error is safe.", `Quick, test_explain_analyze_bad_query);
    ("\\metrics dumps the registry.", `Quick, test_metrics_command);
    ("\\slowlog command cycle.", `Quick, test_slowlog_command);
  ]
