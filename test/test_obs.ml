(* Tests for the observability layer: span tracing, the metrics
   registry's exposition format, the slow-query log, and the REPL's
   EXPLAIN ANALYZE surface built on top of them. *)

module Trace = Pb_obs.Trace
module Metrics = Pb_obs.Metrics
module Clock = Pb_obs.Clock
module Slow_log = Pb_obs.Slow_log

(* A deterministic clock that advances a fixed step per reading, so span
   timings are exact. *)
let with_fake_clock ?(step = 0.5) f =
  let t = ref 0.0 in
  Clock.set_source (fun () ->
      let v = !t in
      t := v +. step;
      v);
  Fun.protect ~finally:Clock.reset_source f

let with_tracing f =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

(* ---- tracing --------------------------------------------------------- *)

let test_span_nesting () =
  with_tracing (fun () ->
      let v =
        Trace.with_span ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
            Trace.with_span ~name:"first" (fun () -> ());
            Trace.with_span ~name:"second" (fun () -> Trace.add_count "hits" 2);
            41 + 1)
      in
      Alcotest.(check int) "value threaded through" 42 v;
      match Trace.spans () with
      | [ outer; first; second ] ->
          Alcotest.(check string) "open order" "outer" outer.Trace.name;
          Alcotest.(check string) "first child" "first" first.Trace.name;
          Alcotest.(check string) "second child" "second" second.Trace.name;
          Alcotest.(check int) "root parent" (-1) outer.Trace.parent;
          Alcotest.(check int) "first nests" outer.Trace.id first.Trace.parent;
          Alcotest.(check int) "second nests" outer.Trace.id second.Trace.parent;
          Alcotest.(check (list (pair string string)))
            "attrs kept" [ ("k", "v") ] outer.Trace.attrs;
          Alcotest.(check (list (pair string int)))
            "counter on innermost span" [ ("hits", 2) ] second.Trace.counters
      | spans ->
          Alcotest.fail (Printf.sprintf "expected 3 spans, got %d" (List.length spans)))

let test_span_timing () =
  with_fake_clock ~step:0.5 (fun () ->
      with_tracing (fun () ->
          Trace.with_span ~name:"a" (fun () -> ());
          match Trace.spans () with
          | [ sp ] ->
              (* open reads the clock once, close once: 0.5s apart *)
              Alcotest.(check (float 1e-9)) "elapsed" 0.5 sp.Trace.elapsed
          | _ -> Alcotest.fail "expected one span"))

let test_disabled_is_noop () =
  Trace.reset ();
  Trace.set_enabled false;
  let v = Trace.with_span ~name:"ghost" (fun () -> 7) in
  Alcotest.(check int) "thunk still runs" 7 v;
  Trace.add_count "ignored" 3;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()))

let test_timed_measures_when_disabled () =
  with_fake_clock ~step:0.25 (fun () ->
      Trace.reset ();
      Trace.set_enabled false;
      let v, elapsed = Trace.timed ~name:"t" (fun () -> "x") in
      Alcotest.(check string) "value" "x" v;
      Alcotest.(check (float 1e-9)) "elapsed without spans" 0.25 elapsed;
      Alcotest.(check int) "no span recorded" 0 (List.length (Trace.spans ())))

let test_span_survives_exception () =
  with_tracing (fun () ->
      (try
         Trace.with_span ~name:"outer" (fun () ->
             Trace.with_span ~name:"boom" (fun () -> failwith "kaboom"))
       with Failure _ -> ());
      (* both spans recorded, and the stack is clean for the next span *)
      Alcotest.(check (list string))
        "both recorded" [ "outer"; "boom" ]
        (List.map (fun sp -> sp.Trace.name) (Trace.spans ()));
      Trace.with_span ~name:"after" (fun () -> ());
      let after =
        List.find (fun sp -> sp.Trace.name = "after") (Trace.spans ())
      in
      Alcotest.(check int) "clean stack afterwards" (-1) after.Trace.parent)

let test_ring_overwrites_oldest () =
  with_tracing (fun () ->
      Trace.reset ~capacity:4 ();
      for i = 1 to 6 do
        Trace.with_span ~name:(Printf.sprintf "s%d" i) (fun () -> ())
      done;
      Alcotest.(check int) "dropped count" 2 (Trace.dropped ());
      Alcotest.(check (list string))
        "newest survive" [ "s3"; "s4"; "s5"; "s6" ]
        (List.map (fun sp -> sp.Trace.name) (Trace.spans ()));
      Trace.reset ~capacity:4096 ())

let test_render_tree () =
  with_fake_clock ~step:0.001 (fun () ->
      with_tracing (fun () ->
          Trace.with_span ~name:"engine.evaluate" (fun () ->
              Trace.with_span ~name:"milp.solve" (fun () ->
                  Trace.add_count "bb_nodes" 3));
          let tree = Trace.render_tree () in
          let lines = String.split_on_char '\n' (String.trim tree) in
          match lines with
          | [ root; child ] ->
              Alcotest.(check bool)
                "root unindented" true
                (String.length root > 0 && root.[0] <> ' ');
              Alcotest.(check bool)
                "root named" true
                (String.length root >= 15
                && String.sub root 0 15 = "engine.evaluate");
              Alcotest.(check bool)
                "child indented" true
                (String.length child > 2 && String.sub child 0 2 = "  ");
              let contains needle hay =
                let n = String.length needle and h = String.length hay in
                let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
                go 0
              in
              Alcotest.(check bool)
                "counter rendered" true (contains "bb_nodes=3" child)
          | _ -> Alcotest.fail ("unexpected tree:\n" ^ tree)))

let test_json_lines () =
  with_fake_clock (fun () ->
      with_tracing (fun () ->
          Trace.with_span ~name:"a\"b" (fun () -> ());
          let json = Trace.to_json_lines () in
          let contains needle hay =
            let n = String.length needle and h = String.length hay in
            let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            "name escaped" true (contains "\"name\":\"a\\\"b\"" json);
          Alcotest.(check bool) "parent field" true (contains "\"parent\":-1" json)))

(* ---- metrics --------------------------------------------------------- *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "pb_test_ops_total" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "accumulates" 5 (Metrics.counter_value c);
  let again = Metrics.counter ~registry:r "pb_test_ops_total" in
  Metrics.incr again;
  Alcotest.(check int) "same instrument by name" 6 (Metrics.counter_value c);
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr ~by:(-1) c);
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Metrics: pb_test_ops_total is already registered as another kind")
    (fun () -> ignore (Metrics.gauge ~registry:r "pb_test_ops_total"))

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h =
    Metrics.histogram ~registry:r ~buckets:[ 0.1; 1.0; 10.0 ] "pb_test_seconds"
  in
  (* le-inclusive: an observation exactly on a bound lands in that bucket *)
  List.iter (Metrics.observe h) [ 0.05; 0.1; 0.5; 1.0; 2.0; 99.0 ];
  Alcotest.(check (list (pair (float 0.0) int)))
    "bucket boundaries"
    [ (0.1, 2); (1.0, 2); (10.0, 1); (infinity, 1) ]
    (Metrics.bucket_counts h);
  Alcotest.(check int) "count" 6 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 102.65 (Metrics.histogram_sum h);
  Alcotest.check_raises "empty buckets"
    (Invalid_argument "Metrics.histogram: empty bucket list") (fun () ->
      ignore (Metrics.histogram ~registry:r ~buckets:[] "pb_test_empty"))

(* Parse the exposition text back into (name-with-labels, value) samples;
   '#' comment lines are skipped. *)
let parse_exposition text =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None
      else
        match String.rindex_opt line ' ' with
        | None -> Alcotest.fail ("unparseable sample line: " ^ line)
        | Some i ->
            let name = String.sub line 0 i in
            let raw = String.sub line (i + 1) (String.length line - i - 1) in
            (match float_of_string_opt raw with
            | Some v -> Some (name, v)
            | None -> Alcotest.fail ("unparseable value: " ^ line)))
    (String.split_on_char '\n' text)

let test_dump_round_trip () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"test ops" "pb_test_ops_total" in
  let g = Metrics.gauge ~registry:r "pb_test_queue_depth" in
  let h =
    Metrics.histogram ~registry:r ~buckets:[ 0.5; 2.0 ] "pb_test_latency"
  in
  Metrics.incr ~by:7 c;
  Metrics.set g 3.25;
  List.iter (Metrics.observe h) [ 0.25; 1.5; 9.0 ];
  let parsed = parse_exposition (Metrics.dump ~registry:r ()) in
  (* every snapshot sample round-trips through the exposition text *)
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name parsed with
      | Some v' -> Alcotest.(check (float 1e-9)) ("round-trip " ^ name) v v'
      | None -> Alcotest.fail ("sample missing from dump: " ^ name))
    (Metrics.snapshot ~registry:r ());
  (* histogram series are cumulative and end at the total count *)
  let bucket le = List.assoc ("pb_test_latency_bucket{le=\"" ^ le ^ "\"}") parsed in
  Alcotest.(check (float 0.0)) "le=0.5" 1.0 (bucket "0.5");
  Alcotest.(check (float 0.0)) "le=2" 2.0 (bucket "2");
  Alcotest.(check (float 0.0)) "le=+Inf" 3.0 (bucket "+Inf");
  Alcotest.(check (float 0.0))
    "+Inf equals _count" (bucket "+Inf")
    (List.assoc "pb_test_latency_count" parsed);
  (* TYPE headers are present for scrapers *)
  let dump = Metrics.dump ~registry:r () in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun header ->
      Alcotest.(check bool) ("has " ^ header) true (contains header dump))
    [
      "# HELP pb_test_ops_total test ops";
      "# TYPE pb_test_ops_total counter";
      "# TYPE pb_test_queue_depth gauge";
      "# TYPE pb_test_latency histogram";
    ]

let test_reset_keeps_registrations () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "pb_test_ops_total" in
  Metrics.incr ~by:9 c;
  Metrics.reset ~registry:r ();
  Alcotest.(check int) "zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check (list (pair string (float 0.0))))
    "still registered"
    [ ("pb_test_ops_total", 0.0) ]
    (Metrics.snapshot ~registry:r ())

(* ---- slow-query log -------------------------------------------------- *)

let test_slow_log () =
  Fun.protect
    ~finally:(fun () ->
      Slow_log.set_threshold None;
      Slow_log.clear ())
    (fun () ->
      Slow_log.clear ();
      Alcotest.(check bool)
        "off by default: not logged" false
        (Slow_log.observe ~query:"SELECT 1" ~elapsed:99.0);
      Slow_log.set_threshold (Some 0.5);
      Alcotest.(check bool)
        "under threshold" false
        (Slow_log.observe ~query:"fast" ~elapsed:0.4);
      Alcotest.(check bool)
        "at threshold" true
        (Slow_log.observe ~query:"slow1" ~elapsed:0.5);
      Alcotest.(check bool)
        "over threshold" true
        (Slow_log.observe ~query:"slow2" ~elapsed:0.9);
      Alcotest.(check (list string))
        "most recent first" [ "slow2"; "slow1" ]
        (List.map (fun e -> e.Slow_log.query) (Slow_log.entries ()));
      Slow_log.clear ();
      Alcotest.(check int) "cleared" 0 (List.length (Slow_log.entries ())))

(* ---- EXPLAIN ANALYZE through the REPL -------------------------------- *)

let demo_db () =
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "recipes"
    (Pb_workload.Workload.recipes ~seed:7 ~n:40 ());
  db

let meal_query =
  "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
   SUM(P.protein)"

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_explain_analyze () =
  with_fake_clock ~step:0.001 (fun () ->
      let st = Pb_shell.Repl.create (demo_db ()) in
      let reaction =
        Pb_shell.Repl.handle st ("\\explain analyze " ^ meal_query)
      in
      let out = reaction.Pb_shell.Repl.output in
      let lines = String.split_on_char '\n' out in
      (* the span tree leads with the evaluation root, unindented *)
      (match lines with
      | first :: _ ->
          Alcotest.(check bool)
            "root span first" true
            (String.length first >= 10
            && String.sub first 0 10 = "engine.run")
      | [] -> Alcotest.fail "empty output");
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("output has " ^ needle) true (contains needle out))
        [
          "  strategy.";  (* nested strategy span *)
          "counters:";
          "pb_engine_strategy_runs_total +";
          "objective:";
          "strategy: ";
        ];
      (* tracing was only on for the analyzed run *)
      Alcotest.(check bool) "tracing restored off" false (Trace.is_enabled ());
      (* the run is remembered like a plain query, so \save works *)
      let save = Pb_shell.Repl.handle st "\\save plan" in
      Alcotest.(check bool)
        "package saved" true
        (contains "saved as plan" save.Pb_shell.Repl.output))

let test_explain_analyze_bad_query () =
  let st = Pb_shell.Repl.create (demo_db ()) in
  let reaction = Pb_shell.Repl.handle st "\\explain analyze SELECT PACKAGE(" in
  Alcotest.(check bool)
    "parse error reported" true
    (contains "paql error" reaction.Pb_shell.Repl.output);
  Alcotest.(check bool) "tracing left off" false (Trace.is_enabled ())

let test_metrics_command () =
  let st = Pb_shell.Repl.create (demo_db ()) in
  let reaction = Pb_shell.Repl.handle st "\\metrics" in
  Alcotest.(check bool)
    "exposition format" true
    (contains "# TYPE pb_engine_strategy_runs_total counter"
       reaction.Pb_shell.Repl.output)

let test_slowlog_command () =
  Fun.protect
    ~finally:(fun () ->
      Slow_log.set_threshold None;
      Slow_log.clear ())
    (fun () ->
      let st = Pb_shell.Repl.create (demo_db ()) in
      let out line = (Pb_shell.Repl.handle st line).Pb_shell.Repl.output in
      Alcotest.(check bool) "off by default" true (contains "off" (out "\\slowlog"));
      Alcotest.(check bool)
        "enable" true
        (contains "logging queries slower than 0s" (out "\\slowlog 0"));
      ignore (out meal_query);
      Alcotest.(check bool)
        "query logged" true
        (contains "PACKAGE" (out "\\slowlog"));
      Alcotest.(check bool) "clear" true (contains "cleared" (out "\\slowlog clear"));
      Alcotest.(check bool)
        "empty after clear" true
        (contains "empty" (out "\\slowlog"));
      Alcotest.(check bool)
        "disable" true
        (contains "disabled" (out "\\slowlog off"));
      Alcotest.(check bool)
        "bad argument" true
        (contains "usage" (out "\\slowlog nonsense")))

(* ---- exposition escaping --------------------------------------------- *)

(* Exact-format locks: Prometheus scrapers parse HELP text and label
   values byte-by-byte, so the escaping rules are wire format, not
   cosmetics. *)
let test_exposition_escaping () =
  Alcotest.(check string)
    "help: backslash doubled" "a\\\\b"
    (Metrics.escape_help "a\\b");
  Alcotest.(check string)
    "help: newline becomes \\n" "x\\ny"
    (Metrics.escape_help "x\ny");
  Alcotest.(check string)
    "help: quotes untouched" "say \"hi\""
    (Metrics.escape_help "say \"hi\"");
  Alcotest.(check string)
    "label: quote gains a backslash" "say \\\"hi\\\""
    (Metrics.escape_label "say \"hi\"");
  Alcotest.(check string)
    "label: all three at once" "\\\\ \\\" \\n"
    (Metrics.escape_label "\\ \" \n");
  (* dump applies the rules: a raw newline in HELP text would split the
     comment line and corrupt every sample after it *)
  let r = Metrics.create () in
  ignore
    (Metrics.counter ~registry:r ~help:"line1\nline2 \\ slash"
       "pb_test_esc_total");
  Alcotest.(check bool)
    "HELP line escaped in the dump" true
    (contains "# HELP pb_test_esc_total line1\\nline2 \\\\ slash"
       (Metrics.dump ~registry:r ()))

(* ---- request trace contexts ------------------------------------------ *)

let tid_a = String.make 32 'a'
let tid_b = String.make 32 'b'

let test_with_context () =
  Trace.reset ();
  Trace.set_enabled false;
  let v, spans =
    Trace.with_context ~trace_id:tid_a (fun () ->
        Alcotest.(check (option string))
          "context visible inside" (Some tid_a)
          (Trace.current_trace_id ());
        Trace.with_span ~name:"engine.run" (fun () ->
            Trace.with_span ~name:"milp.solve" (fun () -> ()));
        42)
  in
  Alcotest.(check int) "value threaded through" 42 v;
  Alcotest.(check (option string))
    "context uninstalled after" None
    (Trace.current_trace_id ());
  (match spans with
  | [ root; engine; milp ] ->
      Alcotest.(check string) "root is the request span" "request"
        root.Trace.name;
      Alcotest.(check int) "root has no parent" (-1) root.Trace.parent;
      Alcotest.(check (option string))
        "root carries the trace id" (Some tid_a)
        (List.assoc_opt "trace_id" root.Trace.attrs);
      Alcotest.(check int) "engine under root" root.Trace.id
        engine.Trace.parent;
      Alcotest.(check int) "milp under engine" engine.Trace.id
        milp.Trace.parent
  | spans ->
      Alcotest.fail
        (Printf.sprintf "expected 3 spans, got %d" (List.length spans)));
  (* context spans bypass the global ring while tracing is disabled *)
  Alcotest.(check int) "global ring untouched" 0
    (List.length (Trace.spans ()))

let test_with_context_reentrant () =
  Trace.reset ();
  Trace.set_enabled false;
  let (), outer_spans =
    Trace.with_context ~trace_id:tid_a (fun () ->
        Trace.with_span ~name:"outer.op" (fun () -> ());
        let (), inner_spans =
          Trace.with_context ~trace_id:tid_b (fun () ->
              Trace.with_span ~name:"inner.op" (fun () -> ()))
        in
        Alcotest.(check bool)
          "inner context collected its own span" true
          (List.exists (fun sp -> sp.Trace.name = "inner.op") inner_spans);
        Alcotest.(check (option string))
          "outer context restored" (Some tid_a)
          (Trace.current_trace_id ()))
  in
  Alcotest.(check bool)
    "outer kept its span" true
    (List.exists (fun sp -> sp.Trace.name = "outer.op") outer_spans);
  Alcotest.(check bool)
    "outer did not swallow the inner tree" false
    (List.exists (fun sp -> sp.Trace.name = "inner.op") outer_spans);
  (* exception safety: the context is gone after a raise *)
  (try
     ignore (Trace.with_context ~trace_id:tid_a (fun () -> failwith "kaboom"))
   with Failure _ -> ());
  Alcotest.(check (option string))
    "context uninstalled on raise" None
    (Trace.current_trace_id ())

(* ---- trace store ------------------------------------------------------ *)

module Trace_store = Pb_obs.Trace_store

let mk_entry ?(spans = []) ?(progress = []) ?(status = "ok") id =
  {
    Trace_store.trace_id = id;
    started = 0.0;
    elapsed = 0.125;
    status;
    spans;
    progress;
  }

let test_trace_store_fifo () =
  let s = Trace_store.create ~capacity:2 () in
  Trace_store.add s (mk_entry "id1");
  Trace_store.add s (mk_entry "id2");
  Trace_store.add s (mk_entry "id3");
  Alcotest.(check int) "capped" 2 (Trace_store.length s);
  Alcotest.(check (list string))
    "oldest evicted, oldest first" [ "id2"; "id3" ]
    (Trace_store.ids s);
  Alcotest.(check bool) "evicted id gone" true
    (Trace_store.find s "id1" = None);
  (* re-adding an id replaces its entry in place *)
  Trace_store.add s (mk_entry ~status:"deadline" "id3");
  Alcotest.(check int) "replace does not grow" 2 (Trace_store.length s);
  (match Trace_store.find s "id3" with
  | Some e -> Alcotest.(check string) "replaced" "deadline" e.Trace_store.status
  | None -> Alcotest.fail "replaced entry vanished");
  (* shrinking evicts immediately; zero disables the store *)
  Trace_store.set_capacity s 1;
  Alcotest.(check (list string)) "shrunk to newest" [ "id3" ] (Trace_store.ids s);
  Trace_store.set_capacity s 0;
  Trace_store.add s (mk_entry "id4");
  Alcotest.(check int) "capacity 0 stores nothing" 0 (Trace_store.length s);
  Trace_store.set_capacity s 4;
  Trace_store.add s (mk_entry "id5");
  Trace_store.clear s;
  Alcotest.(check int) "clear empties" 0 (Trace_store.length s)

let test_trace_store_json_root_id () =
  let root =
    {
      Trace.id = 7;
      parent = -1;
      name = "request";
      attrs = [ ("trace_id", tid_a) ];
      counters = [];
      start = 0.0;
      elapsed = 0.5;
    }
  in
  let child =
    {
      Trace.id = 8;
      parent = 7;
      name = "engine.run";
      attrs = [];
      counters = [];
      start = 0.1;
      elapsed = 0.3;
    }
  in
  let entry = mk_entry ~spans:[ root; child ] tid_a in
  let json = Trace_store.to_json entry in
  (* the root span's internal id is replaced by the wire trace id, so a
     client can verify the tree is rooted at the id it generated *)
  Alcotest.(check bool)
    "root id is the trace id" true
    (contains (Printf.sprintf "\"id\":%S" tid_a) json);
  Alcotest.(check bool) "root parent is null" true
    (contains "\"parent\":null" json);
  Alcotest.(check bool)
    "child's parent names the root by trace id" true
    (contains (Printf.sprintf "\"parent\":%S" tid_a) json);
  Alcotest.(check bool)
    "status field" true
    (contains "\"status\":\"ok\"" json);
  (* and the human rendering leads with the id *)
  let text = Trace_store.render entry in
  Alcotest.(check bool) "render header" true (contains ("trace " ^ tid_a) text);
  Alcotest.(check bool) "render has spans" true (contains "engine.run" text)

(* ---- solver progress telemetry ---------------------------------------- *)

module Progress = Pb_obs.Progress

let test_progress_recorder () =
  let (), events =
    Progress.with_recorder ~key:42 (fun () ->
        Progress.incumbent ~key:42 ~strategy:"test" ~bound:10.0 ~nodes:5 8.0;
        Progress.incumbent ~key:42 ~strategy:"test" ~nodes:9 9.5;
        (* infinite bounds are dropped, not recorded as infinities *)
        Progress.incumbent ~key:42 ~strategy:"test" ~bound:Float.infinity
          ~nodes:12 9.9;
        (* a different family's events do not leak in *)
        Progress.incumbent ~key:7 ~strategy:"other" ~nodes:1 1.0)
  in
  (match events with
  | [ a; b; c ] ->
      Alcotest.(check (list int)) "seq numbering" [ 0; 1; 2 ]
        [ a.Progress.seq; b.Progress.seq; c.Progress.seq ];
      Alcotest.(check (float 0.0)) "objective" 8.0 a.Progress.objective;
      Alcotest.(check (option (float 0.0))) "bound kept" (Some 10.0)
        a.Progress.bound;
      Alcotest.(check (option (float 1e-9)))
        "gap = |bound-obj| / max(1,|obj|)" (Some 0.25) a.Progress.gap;
      Alcotest.(check int) "nodes" 5 a.Progress.nodes;
      Alcotest.(check string) "strategy" "test" a.Progress.strategy;
      Alcotest.(check (option (float 0.0))) "no bound -> none" None
        b.Progress.bound;
      Alcotest.(check (option (float 0.0))) "no bound -> no gap" None
        b.Progress.gap;
      Alcotest.(check (option (float 0.0))) "infinite bound dropped" None
        c.Progress.bound
  | evs ->
      Alcotest.fail (Printf.sprintf "expected 3 events, got %d" (List.length evs)));
  (* emission with no recorder installed is a silent no-op *)
  Progress.incumbent ~key:999 ~strategy:"ghost" ~nodes:0 1.0

let test_progress_capacity_and_nesting () =
  (* the buffer keeps the newest events; seq exposes the loss *)
  let (), events =
    Progress.with_recorder ~capacity:2 ~key:5 (fun () ->
        for i = 1 to 4 do
          Progress.incumbent ~key:5 ~strategy:"t" ~nodes:i (float_of_int i)
        done)
  in
  Alcotest.(check (list int)) "newest kept, seq shows drops" [ 2; 3 ]
    (List.map (fun e -> e.Progress.seq) events);
  (* nested recorders (server outside, engine inside) both hear events *)
  let (((), inner), outer) =
    Progress.with_recorder ~key:5 (fun () ->
        Progress.with_recorder ~key:5 (fun () ->
            Progress.incumbent ~key:5 ~strategy:"t" ~nodes:1 1.0))
  in
  Alcotest.(check int) "inner recorder heard it" 1 (List.length inner);
  Alcotest.(check int) "outer recorder heard it too" 1 (List.length outer)

let test_progress_rendering () =
  Alcotest.(check (option (float 1e-9)))
    "gap_of clamps small objectives" (Some 0.5)
    (Progress.gap_of ~objective:0.5 (Some 1.0));
  Alcotest.(check (option (float 1e-9)))
    "gap_of on negatives" (Some 0.25)
    (Progress.gap_of ~objective:(-8.0) (Some (-10.0)));
  let ev =
    {
      Progress.seq = 3;
      elapsed = 1.25;
      objective = 42.0;
      bound = Some 45.5;
      gap = Some 0.0833;
      nodes = 17;
      strategy = "ilp";
    }
  in
  Alcotest.(check string)
    "event line format"
    "#3 +1.250s ilp obj=42 bound=45.5 gap=0.0833 nodes=17"
    (Progress.event_to_string ev);
  let bare = { ev with seq = 0; elapsed = 0.5; bound = None; gap = None } in
  Alcotest.(check string)
    "bound and gap omitted together" "#0 +0.500s ilp obj=42 nodes=17"
    (Progress.event_to_string bare);
  let json = Progress.to_json [ bare ] in
  Alcotest.(check bool) "json nulls absent bound" true
    (contains "\"bound\":null" json);
  Alcotest.(check bool) "json array" true
    (String.length json >= 2 && json.[0] = '[')

(* ---- http exposition server ------------------------------------------- *)

let http_raw port data =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc data;
  flush oc;
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file | Sys_error _ -> ());
  close_out_noerr oc;
  Buffer.contents buf

let http_get port path =
  http_raw port ("GET " ^ path ^ " HTTP/1.1\r\nHost: t\r\n\r\n")

let test_http_server () =
  let handler path =
    match path with
    | "/ok" ->
        Some
          {
            Pb_obs.Http.code = 200;
            content_type = "text/plain";
            body = "hello\n";
          }
    | "/boom" -> failwith "handler crash"
    | _ -> None
  in
  let h = Pb_obs.Http.start ~port:0 handler in
  Fun.protect
    ~finally:(fun () -> Pb_obs.Http.stop h)
    (fun () ->
      let port = Pb_obs.Http.port h in
      let ok = http_get port "/ok" in
      Alcotest.(check bool) "200 status line" true
        (contains "HTTP/1.1 200 OK" ok);
      Alcotest.(check bool) "content type" true
        (contains "Content-Type: text/plain" ok);
      Alcotest.(check bool) "content length" true
        (contains "Content-Length: 6" ok);
      Alcotest.(check bool) "one-shot connection" true
        (contains "Connection: close" ok);
      Alcotest.(check bool) "body" true (contains "hello" ok);
      (* query strings are stripped before routing *)
      Alcotest.(check bool) "query string ignored" true
        (contains "HTTP/1.1 200 OK" (http_get port "/ok?x=1"));
      Alcotest.(check bool) "unknown path is 404" true
        (contains "HTTP/1.1 404" (http_get port "/nope"));
      Alcotest.(check bool) "handler exception is 500" true
        (contains "HTTP/1.1 500" (http_get port "/boom"));
      Alcotest.(check bool) "non-GET is 405" true
        (contains "HTTP/1.1 405"
           (http_raw port "POST /ok HTTP/1.1\r\nHost: t\r\n\r\n"));
      Alcotest.(check bool) "garbage request line is 400" true
        (contains "HTTP/1.1 400" (http_raw port "gremlins\r\n\r\n")))

let suite =
  [
    ("span nesting, attrs and counters.", `Quick, test_span_nesting);
    ("span timing under a fake clock.", `Quick, test_span_timing);
    ("disabled tracing records nothing.", `Quick, test_disabled_is_noop);
    ("timed measures even when disabled.", `Quick, test_timed_measures_when_disabled);
    ("spans are recorded on exceptions.", `Quick, test_span_survives_exception);
    ("ring buffer overwrites oldest.", `Quick, test_ring_overwrites_oldest);
    ("render_tree indents children.", `Quick, test_render_tree);
    ("json lines escape names.", `Quick, test_json_lines);
    ("counter basics and kind clash.", `Quick, test_counter_basics);
    ("histogram bucket boundaries.", `Quick, test_histogram_buckets);
    ("dump round-trips the snapshot.", `Quick, test_dump_round_trip);
    ("reset keeps registrations.", `Quick, test_reset_keeps_registrations);
    ("slow log thresholds and ordering.", `Quick, test_slow_log);
    ("EXPLAIN ANALYZE prints tree and counters.", `Quick, test_explain_analyze);
    ("EXPLAIN ANALYZE parse error is safe.", `Quick, test_explain_analyze_bad_query);
    ("\\metrics dumps the registry.", `Quick, test_metrics_command);
    ("\\slowlog command cycle.", `Quick, test_slowlog_command);
    ("exposition escaping exact format.", `Quick, test_exposition_escaping);
    ("request trace contexts collect spans.", `Quick, test_with_context);
    ("trace contexts nest and survive raises.", `Quick,
     test_with_context_reentrant);
    ("trace store FIFO eviction and capacity.", `Quick, test_trace_store_fifo);
    ("trace store json roots at the trace id.", `Quick,
     test_trace_store_json_root_id);
    ("progress recorder captures incumbents.", `Quick, test_progress_recorder);
    ("progress capacity and nested recorders.", `Quick,
     test_progress_capacity_and_nesting);
    ("progress gap and rendering format.", `Quick, test_progress_rendering);
    ("http server GET/404/405/500.", `Quick, test_http_server);
  ]
