(* Tests for the evaluation engine: compiled checks, §4.1 pruning bounds,
   brute force, ILP translation, local search, hybrid policy, and cross-
   strategy agreement. *)

module Parser = Pb_paql.Parser
module Ast = Pb_paql.Ast
module Package = Pb_paql.Package
module Semantics = Pb_paql.Semantics
module Coeffs = Pb_core.Coeffs
module Pruning = Pb_core.Pruning
module Brute_force = Pb_core.Brute_force
module Engine = Pb_core.Engine
module Local_search = Pb_core.Local_search
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema

(* A tiny deterministic table: items with value v = 10(i+1) and weight
   w = i+1 for i in 0..n-1. *)
let items_db n =
  let db = Pb_sql.Database.create () in
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "v"; ty = Value.T_int };
        { Schema.name = "w"; ty = Value.T_int };
        { Schema.name = "tag"; ty = Value.T_str };
      ]
  in
  let rows =
    List.init n (fun i ->
        [|
          Value.Int (i + 1);
          Value.Int (10 * (i + 1));
          Value.Int (i + 1);
          Value.Str (if (i + 1) mod 2 = 0 then "even" else "odd");
        |])
  in
  Pb_sql.Database.put db "items" (Relation.create schema rows);
  db

let q src = Parser.parse src

let test_coeffs_basic () =
  let db = items_db 5 in
  let c =
    Coeffs.make db
      (q
         "SELECT PACKAGE(i) AS p FROM items i WHERE i.tag = 'odd' SUCH THAT \
          SUM(p.w) <= 7 MAXIMIZE SUM(p.v)")
  in
  Alcotest.(check int) "3 odd candidates" 3 c.Coeffs.n;
  Alcotest.(check bool) "formula linear" true (Result.is_ok c.Coeffs.formula);
  (* objective coefficients follow candidate order: v = 10, 30, 50 *)
  match c.Coeffs.objective with
  | Some (Some (Ast.Maximize, coef)) ->
      Alcotest.(check (array (float 1e-9))) "coef" [| 10.0; 30.0; 50.0 |] coef
  | _ -> Alcotest.fail "expected linear objective"

let test_coeffs_check () =
  let db = items_db 4 in
  let c =
    Coeffs.make db
      (q "SELECT PACKAGE(i) AS p FROM items i SUCH THAT SUM(p.w) BETWEEN 3 AND 5")
  in
  Alcotest.(check bool) "w={1,2}=3 ok" true (Coeffs.check_mult c [| 1; 1; 0; 0 |]);
  Alcotest.(check bool) "w={1}=1 low" false (Coeffs.check_mult c [| 1; 0; 0; 0 |]);
  Alcotest.(check bool) "w={3,4}=7 high" false (Coeffs.check_mult c [| 0; 0; 1; 1 |]);
  Alcotest.(check bool) "multiplicity cap" false (Coeffs.check_mult c [| 2; 1; 0; 0 |])

let test_coeffs_agrees_with_semantics () =
  let db = items_db 6 in
  let query =
    q
      "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) BETWEEN 1 AND \
       3 AND SUM(p.w) <= 9 AND AVG(p.v) >= 20 AND MIN(p.w) >= 1"
  in
  let c = Coeffs.make db query in
  (* exhaustively compare compiled check against the oracle *)
  for mask = 0 to (1 lsl 6) - 1 do
    let mult = Array.init 6 (fun i -> (mask lsr i) land 1) in
    let pkg = Coeffs.package_of_mult c mult in
    Alcotest.(check bool)
      (Printf.sprintf "mask %d" mask)
      (Semantics.is_valid ~db query pkg)
      (Coeffs.check_mult c mult)
  done

let test_pruning_count_bounds () =
  let db = items_db 8 in
  let c =
    Coeffs.make db
      (q "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) BETWEEN 2 AND 4")
  in
  let b = Pruning.cardinality_bounds c in
  Alcotest.(check int) "lo" 2 b.Pruning.lo;
  Alcotest.(check int) "hi" 4 b.Pruning.hi

let test_pruning_sum_bounds () =
  (* §4.1: 2000 <= SUM(cal) <= 2500 with cal in [150, 1200]:
     lo = ceil(2000/1200) = 2, hi = floor(2500/150) = 16. *)
  let db = Pb_sql.Database.create () in
  let schema =
    Schema.make [ { Schema.name = "calories"; ty = Value.T_int } ]
  in
  let rows =
    List.map (fun c -> [| Value.Int c |]) [ 150; 400; 800; 1200; 300; 900 ]
  in
  Pb_sql.Database.put db "meals" (Relation.create schema rows);
  let c =
    Coeffs.make db
      (q
         "SELECT PACKAGE(m) AS p FROM meals m SUCH THAT SUM(p.calories) \
          BETWEEN 2000 AND 2500")
  in
  let b = Pruning.cardinality_bounds c in
  Alcotest.(check int) "lo = ceil(2000/1200)" 2 b.Pruning.lo;
  (* n = 6 so hi clamps to 6 even though 2500/150 = 16 *)
  Alcotest.(check int) "hi clamped to n" 6 b.Pruning.hi

let test_pruning_infeasible () =
  let db = items_db 3 in
  let c =
    Coeffs.make db
      (q "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 5")
  in
  let b = Pruning.cardinality_bounds c in
  Alcotest.(check bool) "empty" true (b.Pruning.lo > b.Pruning.hi)

let test_pruning_or_hull () =
  let db = items_db 8 in
  let c =
    Coeffs.make db
      (q
         "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2 OR \
          COUNT(*) = 5")
  in
  let b = Pruning.cardinality_bounds c in
  Alcotest.(check int) "hull lo" 2 b.Pruning.lo;
  Alcotest.(check int) "hull hi" 5 b.Pruning.hi

let test_pruning_soundness_exhaustive () =
  (* No valid package may fall outside the derived bounds. *)
  let db = items_db 7 in
  let queries =
    [
      "SELECT PACKAGE(i) AS p FROM items i SUCH THAT SUM(p.w) BETWEEN 6 AND 10";
      "SELECT PACKAGE(i) AS p FROM items i SUCH THAT SUM(p.v) >= 100 AND COUNT(*) <= 4";
      "SELECT PACKAGE(i) AS p FROM items i SUCH THAT AVG(p.w) <= 3";
      "SELECT PACKAGE(i) AS p FROM items i SUCH THAT MIN(p.w) >= 2 AND SUM(p.w) <= 9";
      "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3 OR SUM(p.w) <= 4";
    ]
  in
  List.iter
    (fun src ->
      let query = q src in
      let c = Coeffs.make db query in
      let b = Pruning.cardinality_bounds c in
      for mask = 0 to (1 lsl 7) - 1 do
        let mult = Array.init 7 (fun i -> (mask lsr i) land 1) in
        if Coeffs.check_mult c mult then begin
          let card = Array.fold_left ( + ) 0 mult in
          if card < b.Pruning.lo || card > b.Pruning.hi then
            Alcotest.fail
              (Printf.sprintf "%s: valid package of size %d outside %s" src
                 card
                 (Pruning.bounds_to_string b))
        end
      done)
    queries

let test_pruning_search_space_numbers () =
  let db = items_db 10 in
  let c =
    Coeffs.make db
      (q "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3")
  in
  let b = Pruning.cardinality_bounds c in
  Alcotest.(check (float 1e-9)) "unpruned 2^10" 10.0 (Pruning.log2_unpruned c);
  (* C(10,3) = 120 *)
  Alcotest.(check (float 1e-6)) "pruned log2 C(10,3)"
    (log 120.0 /. log 2.0)
    (Pruning.log2_pruned c b)

let test_pruning_repeat_space () =
  let db = items_db 4 in
  let c =
    Coeffs.make db
      (q "SELECT PACKAGE(i) AS p FROM items i REPEAT 1 SUCH THAT COUNT(*) = 2")
  in
  let b = Pruning.cardinality_bounds c in
  (* multisets of size 2 over 4 items with max mult 2: C(5,2) = 10 *)
  Alcotest.(check (float 1e-6)) "bounded multisets"
    (log 10.0 /. log 2.0)
    (Pruning.log2_pruned c b)

(* ---- strategies ----------------------------------------------------- *)

let knapsack_query =
  "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3 AND SUM(p.w) \
   <= 12 MAXIMIZE SUM(p.v)"

let test_brute_force_exact () =
  let db = items_db 8 in
  let c = Coeffs.make db (q knapsack_query) in
  let out = Brute_force.search c in
  Alcotest.(check bool) "complete" true out.Brute_force.complete;
  (* best: weights must sum <= 12 with 3 items; take 3+4+5=12 -> v=120 *)
  Alcotest.(check (option (float 1e-9))) "objective" (Some 120.0)
    out.Brute_force.best_objective

let test_brute_force_pruning_reduces_work () =
  let db = items_db 10 in
  let c =
    Coeffs.make db
      (q "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2 MAXIMIZE SUM(p.v)")
  in
  let pruned = Brute_force.search ~use_pruning:true c in
  let unpruned = Brute_force.search ~use_pruning:false c in
  Alcotest.(check (option (float 1e-9))) "same answer"
    unpruned.Brute_force.best_objective pruned.Brute_force.best_objective;
  Alcotest.(check bool) "fewer candidates" true
    (pruned.Brute_force.examined < unpruned.Brute_force.examined)

let test_brute_force_no_objective_stops_early () =
  let db = items_db 10 in
  let c =
    Coeffs.make db
      (q "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2")
  in
  let out = Brute_force.search c in
  Alcotest.(check bool) "found" true (out.Brute_force.best <> None);
  Alcotest.(check bool) "stopped early" true (out.Brute_force.examined < 45)

let test_brute_force_truncation_flag () =
  let db = items_db 18 in
  let c =
    Coeffs.make db
      (q "SELECT PACKAGE(i) AS p FROM items i SUCH THAT SUM(p.w) >= 1 MAXIMIZE SUM(p.v)")
  in
  let out =
    Brute_force.search ~gov:(Pb_util.Gov.create ~bf_candidates:100 ()) c
  in
  Alcotest.(check bool) "incomplete" false out.Brute_force.complete

let test_enumerate_valid () =
  let db = items_db 5 in
  let c =
    Coeffs.make db
      (q "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2")
  in
  let all = Brute_force.enumerate_valid c in
  Alcotest.(check int) "C(5,2)" 10 (List.length all);
  List.iter
    (fun pkg -> Alcotest.(check int) "card 2" 2 (Package.cardinality pkg))
    all

let strategies_to_test db query_src =
  let query = q query_src in
  let exact = Engine.run ~strategy:(Engine.Brute_force { use_pruning = true }) db query in
  let ilp = Engine.run ~strategy:Engine.Ilp db query in
  let hybrid = Engine.run db query in
  (exact, ilp, hybrid)

let check_same_objective name (a : Engine.result) (b : Engine.result) =
  match (a.Engine.objective, b.Engine.objective) with
  | Some x, Some y -> Alcotest.(check (float 1e-6)) name x y
  | None, None -> ()
  | _ ->
      Alcotest.fail
        (Printf.sprintf "%s: one strategy found a package, the other did not" name)

let test_strategies_agree_knapsack () =
  let db = items_db 9 in
  let exact, ilp, hybrid = strategies_to_test db knapsack_query in
  Alcotest.(check bool) "bf proves" true (exact.Engine.proof = Engine.Optimal);
  Alcotest.(check bool) "ilp proves" true (ilp.Engine.proof = Engine.Optimal);
  check_same_objective "bf = ilp" exact ilp;
  check_same_objective "bf = hybrid" exact hybrid

let test_strategies_agree_disjunction () =
  let db = items_db 8 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT (COUNT(*) = 2 AND \
     SUM(p.v) >= 100) OR (COUNT(*) = 4 AND SUM(p.w) <= 10) MAXIMIZE SUM(p.v)"
  in
  let exact, ilp, _ = strategies_to_test db src in
  check_same_objective "bf = ilp (or-formula)" exact ilp

let test_strategies_agree_extremum () =
  let db = items_db 8 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3 AND \
     MIN(p.w) >= 2 AND MAX(p.w) <= 7 MAXIMIZE SUM(p.v)"
  in
  let exact, ilp, _ = strategies_to_test db src in
  check_same_objective "bf = ilp (min/max)" exact ilp

let test_strategies_agree_avg () =
  let db = items_db 8 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) BETWEEN 2 AND 4 \
     AND AVG(p.w) <= 4 MAXIMIZE SUM(p.v)"
  in
  let exact, ilp, _ = strategies_to_test db src in
  check_same_objective "bf = ilp (avg)" exact ilp

let test_strategies_agree_repeat () =
  let db = items_db 5 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i REPEAT 2 SUCH THAT COUNT(*) = 4 AND \
     SUM(p.w) <= 8 MAXIMIZE SUM(p.v)"
  in
  let exact, ilp, _ = strategies_to_test db src in
  check_same_objective "bf = ilp (repeat)" exact ilp

let test_strategies_minimize () =
  let db = items_db 8 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3 AND SUM(p.v) \
     >= 120 MINIMIZE SUM(p.w)"
  in
  let exact, ilp, _ = strategies_to_test db src in
  check_same_objective "bf = ilp (minimize)" exact ilp

let test_infeasible_all_strategies () =
  let db = items_db 4 in
  let src = "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 9" in
  let query = q src in
  List.iter
    (fun strategy ->
      let r = Engine.run ~strategy db query in
      Alcotest.(check bool) "no package" true (r.Engine.package = None))
    [
      Engine.Brute_force { use_pruning = true };
      Engine.Ilp;
      Engine.Local_search Local_search.default_params;
      Engine.Hybrid;
    ]

let test_engine_result_is_valid () =
  let db = items_db 10 in
  let query = q knapsack_query in
  List.iter
    (fun strategy ->
      let r = Engine.run ~strategy db query in
      match r.Engine.package with
      | Some pkg ->
          Alcotest.(check bool) "oracle-valid" true
            (Semantics.is_valid ~db query pkg)
      | None -> Alcotest.fail "expected a package")
    [
      Engine.Brute_force { use_pruning = true };
      Engine.Ilp;
      Engine.Local_search Local_search.default_params;
      Engine.Hybrid;
    ]

let test_local_search_finds_valid () =
  let db = items_db 30 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 4 AND SUM(p.w) \
     BETWEEN 40 AND 70 MAXIMIZE SUM(p.v)"
  in
  let query = q src in
  let r =
    Engine.run ~strategy:(Engine.Local_search Local_search.default_params)
      db query
  in
  match r.Engine.package with
  | Some pkg ->
      Alcotest.(check bool) "valid" true (Semantics.is_valid ~db query pkg)
  | None -> Alcotest.fail "local search found nothing"

let test_local_search_nonlinear_fallback () =
  (* A subquery makes SUCH THAT opaque; only search strategies apply. *)
  let db = items_db 8 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2 AND \
     SUM(p.w) IN (SELECT w FROM items WHERE w >= 7)"
  in
  let query = q src in
  let c = Coeffs.make db query in
  Alcotest.(check bool) "opaque" true (Result.is_error c.Coeffs.formula);
  let r = Engine.run db query in
  (match r.Engine.package with
  | Some pkg ->
      Alcotest.(check bool) "valid" true (Semantics.is_valid ~db query pkg)
  | None -> Alcotest.fail "hybrid should still answer via search");
  Alcotest.(check bool) "hybrid did not use ilp" true
    (r.Engine.strategy_used <> "ilp")

let test_sql_replacements_match_paper_example () =
  let db = items_db 6 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2 AND SUM(p.w) \
     <= 7"
  in
  let query = q src in
  let c = Coeffs.make db query in
  let pkg = Package.of_indices (Semantics.candidates db query) ~alias:"p" [ 4; 5 ] in
  (* w = 5 + 6 = 11 > 7: invalid; single replacements fixing it *)
  let moves, sql = Local_search.sql_replacements db c pkg ~k:1 in
  Alcotest.(check bool) "query is a 2-way join" true
    (String.length sql > 0);
  (* valid fixes: replace 5 (idx 4) or 6 (idx 5) with something small
     enough. Replacing idx 5 (w=6) with idx 0 (w=1): 5+1=6 <= 7 ok. *)
  Alcotest.(check bool) "found moves" true (List.length moves > 0);
  List.iter
    (fun (outs, ins) ->
      let next =
        List.fold_left
          (fun acc out -> Package.remove acc out)
          pkg outs
      in
      let next = List.fold_left Package.add next ins in
      Alcotest.(check bool) "every move yields a valid package" true
        (Semantics.is_valid ~db query next))
    moves

let test_sql_replacements_k2 () =
  let db = items_db 6 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3 AND SUM(p.w) \
     <= 7"
  in
  let query = q src in
  let c = Coeffs.make db query in
  (* start = {4,5,6} (indices 3,4,5), w = 15: the best single replacement
     reaches 1+5+6 = 12, still invalid, but two replacements can reach
     4+1+2 = 7 *)
  let pkg = Package.of_indices (Semantics.candidates db query) ~alias:"p" [ 3; 4; 5 ] in
  let moves1, _ = Local_search.sql_replacements db c pkg ~k:1 in
  Alcotest.(check int) "k=1 cannot fix it" 0 (List.length moves1);
  let moves2, _ = Local_search.sql_replacements db c pkg ~k:2 in
  Alcotest.(check bool) "k=2 finds fixes" true (List.length moves2 > 0)

let test_hybrid_choices () =
  (* Small space -> brute force; bigger linear -> ilp. *)
  let db_small = items_db 6 in
  let r_small = Engine.run db_small (q knapsack_query) in
  Alcotest.(check string) "small goes exhaustive" "brute-force+pruning"
    r_small.Engine.strategy_used;
  let db_big = items_db 200 in
  let r_big = Engine.run db_big (q knapsack_query) in
  Alcotest.(check string) "big linear goes ilp" "ilp" r_big.Engine.strategy_used;
  Alcotest.(check bool) "still optimal" true (r_big.Engine.proof = Engine.Optimal)

let test_next_packages_distinct_and_ordered () =
  let db = items_db 8 in
  let query = q knapsack_query in
  let packages = Engine.next_packages ~limit:4 db query in
  Alcotest.(check int) "4 packages" 4 (List.length packages);
  let objs =
    List.map
      (fun p -> Option.get (Semantics.objective_value ~db query p))
      packages
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "descending quality" true (decreasing objs);
  let keys = List.map (fun p -> Package.support p) packages in
  Alcotest.(check int) "all distinct" 4 (List.length (List.sort_uniq compare keys))

let test_next_packages_nonlinear_path () =
  let db = items_db 6 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2 AND \
     SUM(p.w) IN (SELECT w FROM items WHERE w >= 5) MAXIMIZE SUM(p.v)"
  in
  let query = q src in
  let packages = Engine.next_packages ~limit:3 db query in
  Alcotest.(check bool) "found some" true (List.length packages > 0);
  List.iter
    (fun p ->
      Alcotest.(check bool) "valid" true (Semantics.is_valid ~db query p))
    packages

let test_precancelled_gov () =
  (* A token cancelled before the run starts: every strategy returns
     promptly, reports [Cancelled], and claims no proof. *)
  let db = items_db 8 in
  let query = q knapsack_query in
  List.iter
    (fun strategy ->
      let gov = Pb_util.Gov.create () in
      Pb_util.Gov.cancel gov;
      let r = Engine.run ~gov ~strategy db query in
      Alcotest.(check bool) "proof is cancelled" true
        (r.Engine.proof = Engine.Cancelled);
      Alcotest.(check bool) "stop reason recorded" true
        (List.mem_assoc "stopped" r.Engine.stats))
    [
      Engine.Brute_force { use_pruning = true };
      Engine.Ilp;
      Engine.Local_search Local_search.default_params;
      Engine.Hybrid;
    ]

let test_empty_candidates () =
  let db = items_db 5 in
  let src =
    "SELECT PACKAGE(i) AS p FROM items i WHERE i.w > 100 SUCH THAT COUNT(*) = 1"
  in
  let query = q src in
  List.iter
    (fun strategy ->
      let r = Engine.run ~strategy db query in
      Alcotest.(check bool) "nothing" true (r.Engine.package = None))
    [
      Engine.Brute_force { use_pruning = true };
      Engine.Ilp;
      Engine.Local_search Local_search.default_params;
      Engine.Hybrid;
    ]

(* Acceptance for the progress telemetry: a governed solve must leave an
   incumbent trajectory — at least two improvements, each strictly better
   than the last, work counters never going backwards, and (for
   branch-and-bound) an optimality gap that never widens. *)
let test_progress_trajectory () =
  let db = items_db 12 in
  let query =
    q
      "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3 AND \
       SUM(p.w) <= 30 MAXIMIZE SUM(p.v)"
  in
  let check_improving ~better evs =
    let rec go = function
      | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "objective strictly improves" true
            (better b.Pb_obs.Progress.objective a.Pb_obs.Progress.objective);
          Alcotest.(check bool) "work counter monotone" true
            (b.Pb_obs.Progress.nodes >= a.Pb_obs.Progress.nodes);
          (match (a.Pb_obs.Progress.gap, b.Pb_obs.Progress.gap) with
          | Some ga, Some gb ->
              Alcotest.(check bool) "gap never widens" true (gb <= ga +. 1e-9)
          | _ -> ());
          go rest
      | _ -> ()
    in
    go evs
  in
  (* brute force on a MINIMIZE query: the enumeration reaches the most
     expensive triple first, so the incumbent must improve repeatedly on
     the way down to the cheapest one *)
  let min_query =
    q "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3 MINIMIZE \
       SUM(p.v)"
  in
  let gov = Pb_util.Gov.create ~bf_candidates:5_000_000 () in
  let r =
    Engine.run ~gov
      ~strategy:(Engine.Brute_force { use_pruning = false })
      db min_query
  in
  let evs = r.Engine.progress in
  Alcotest.(check bool)
    (Printf.sprintf "at least two incumbents (got %d)" (List.length evs))
    true
    (List.length evs >= 2);
  check_improving ~better:(fun b a -> b < a) evs;
  List.iter
    (fun e ->
      Alcotest.(check string) "strategy tag" "brute-force"
        e.Pb_obs.Progress.strategy)
    evs;
  (match (r.Engine.objective, List.rev evs) with
  | Some obj, last :: _ ->
      Alcotest.(check (float 1e-6))
        "last incumbent is the returned objective" obj
        last.Pb_obs.Progress.objective
  | _ -> Alcotest.fail "no objective from a maximize query");
  (* branch-and-bound: incumbents carry a proven bound and a gap *)
  let r2 = Engine.run ~gov:(Pb_util.Gov.create ()) ~strategy:Engine.Ilp db query in
  let evs2 = r2.Engine.progress in
  Alcotest.(check bool) "ilp records incumbents" true (List.length evs2 >= 1);
  List.iter
    (fun e ->
      Alcotest.(check string) "ilp tag" "ilp" e.Pb_obs.Progress.strategy;
      match e.Pb_obs.Progress.bound with
      | Some b ->
          Alcotest.(check bool) "bound dominates the incumbent" true
            (b >= e.Pb_obs.Progress.objective -. 1e-6)
      | None -> ())
    evs2;
  check_improving ~better:(fun b a -> b > a) evs2

let suite =
  [
    Alcotest.test_case "coeffs basic" `Quick test_coeffs_basic;
    Alcotest.test_case "coeffs check" `Quick test_coeffs_check;
    Alcotest.test_case "coeffs = semantics (exhaustive)" `Quick
      test_coeffs_agrees_with_semantics;
    Alcotest.test_case "pruning count bounds" `Quick test_pruning_count_bounds;
    Alcotest.test_case "pruning sum bounds (paper formula)" `Quick
      test_pruning_sum_bounds;
    Alcotest.test_case "pruning infeasible" `Quick test_pruning_infeasible;
    Alcotest.test_case "pruning or hull" `Quick test_pruning_or_hull;
    Alcotest.test_case "pruning soundness (exhaustive)" `Quick
      test_pruning_soundness_exhaustive;
    Alcotest.test_case "pruning search-space size" `Quick
      test_pruning_search_space_numbers;
    Alcotest.test_case "pruning repeat space" `Quick test_pruning_repeat_space;
    Alcotest.test_case "brute force exact" `Quick test_brute_force_exact;
    Alcotest.test_case "pruning reduces bf work" `Quick
      test_brute_force_pruning_reduces_work;
    Alcotest.test_case "bf stops at first (no objective)" `Quick
      test_brute_force_no_objective_stops_early;
    Alcotest.test_case "bf truncation flag" `Quick test_brute_force_truncation_flag;
    Alcotest.test_case "enumerate valid" `Quick test_enumerate_valid;
    Alcotest.test_case "strategies agree: knapsack" `Quick
      test_strategies_agree_knapsack;
    Alcotest.test_case "strategies agree: disjunction" `Quick
      test_strategies_agree_disjunction;
    Alcotest.test_case "strategies agree: min/max" `Quick
      test_strategies_agree_extremum;
    Alcotest.test_case "strategies agree: avg" `Quick test_strategies_agree_avg;
    Alcotest.test_case "strategies agree: repeat" `Quick
      test_strategies_agree_repeat;
    Alcotest.test_case "strategies agree: minimize" `Quick
      test_strategies_minimize;
    Alcotest.test_case "infeasible across strategies" `Quick
      test_infeasible_all_strategies;
    Alcotest.test_case "engine results oracle-valid" `Quick
      test_engine_result_is_valid;
    Alcotest.test_case "local search finds valid" `Quick
      test_local_search_finds_valid;
    Alcotest.test_case "non-linear fallback" `Quick
      test_local_search_nonlinear_fallback;
    Alcotest.test_case "sql replacements (paper example)" `Quick
      test_sql_replacements_match_paper_example;
    Alcotest.test_case "sql replacements k=2" `Quick test_sql_replacements_k2;
    Alcotest.test_case "hybrid strategy choices" `Quick test_hybrid_choices;
    Alcotest.test_case "pre-cancelled governance token" `Quick
      test_precancelled_gov;
    Alcotest.test_case "next packages ordered+distinct" `Quick
      test_next_packages_distinct_and_ordered;
    Alcotest.test_case "next packages non-linear path" `Quick
      test_next_packages_nonlinear_path;
    Alcotest.test_case "empty candidate set" `Quick test_empty_candidates;
    Alcotest.test_case "progress trajectory on governed solves" `Quick
      test_progress_trajectory;
  ]
