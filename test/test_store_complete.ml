(* Tests for stored packages (§2 point (a)) and PaQL auto-suggest
   (Figure 1). *)

module Parser = Pb_paql.Parser
module Package = Pb_paql.Package
module Store = Pb_paql.Package_store
module Complete = Pb_explore.Complete
module Engine = Pb_core.Engine
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation

let demo_db () =
  let db = Pb_sql.Database.create () in
  Pb_workload.Workload.install ~seed:9 ~recipes_n:50 ~destinations:2
    ~stocks_n:20 db;
  db

let meal_query =
  "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
   SUM(P.protein)"

let solved db =
  let query = Parser.parse meal_query in
  match (Engine.run db query).Engine.package with
  | Some pkg -> (query, pkg)
  | None -> Alcotest.fail "no package to store"

let test_save_and_list () =
  let db = demo_db () in
  let query, pkg = solved db in
  Store.save db ~name:"MealPlan" ~query pkg;
  match Store.list_saved db with
  | [ entry ] ->
      Alcotest.(check string) "lower-cased" "mealplan" entry.Store.name;
      Alcotest.(check int) "cardinality" 3 entry.Store.cardinality;
      Alcotest.(check string) "source" "recipes" entry.Store.source_relation;
      (* the stored query text reparses *)
      ignore (Parser.parse entry.Store.query_text)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length other))

let test_saved_package_queryable_by_sql () =
  (* The paper's point: packages are data objects the DBMS can query. *)
  let db = demo_db () in
  let query, pkg = solved db in
  Store.save db ~name:"mealplan" ~query pkg;
  match
    Pb_sql.Executor.execute_sql db
      "SELECT COUNT(*), SUM(calories) FROM pkg_mealplan"
  with
  | Pb_sql.Executor.Rows rel ->
      Alcotest.(check bool) "count 3" true
        (Value.equal (Value.Int 3) (Relation.row rel 0).(0));
      let total = Option.get (Value.to_float (Relation.row rel 0).(1)) in
      Alcotest.(check bool) "calories within window" true
        (total >= 2000.0 && total <= 2500.0)
  | _ -> Alcotest.fail "expected rows"

let test_save_overwrites () =
  let db = demo_db () in
  let query, pkg = solved db in
  Store.save db ~name:"x" ~query pkg;
  Store.save db ~name:"x" ~query pkg;
  Alcotest.(check int) "one entry" 1 (List.length (Store.list_saved db))

let test_load_and_delete () =
  let db = demo_db () in
  let query, pkg = solved db in
  Store.save db ~name:"trip" ~query pkg;
  (match Store.load db ~name:"trip" with
  | Some (entry, rows) ->
      Alcotest.(check int) "rows = cardinality" entry.Store.cardinality
        (Relation.cardinality rows)
  | None -> Alcotest.fail "expected load to succeed");
  Alcotest.(check bool) "deleted" true (Store.delete db ~name:"trip");
  Alcotest.(check bool) "second delete is false" false (Store.delete db ~name:"trip");
  Alcotest.(check bool) "data table gone" true
    (Pb_sql.Database.find db "pkg_trip" = None)

let test_invalid_name () =
  let db = demo_db () in
  let query, pkg = solved db in
  match Store.save db ~name:"bad name!" ~query pkg with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected failure"

let test_revalidate_ok () =
  let db = demo_db () in
  let query, pkg = solved db in
  Store.save db ~name:"plan" ~query pkg;
  match Store.revalidate db ~name:"plan" with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "package should still be valid"
  | Error e -> Alcotest.fail e

let test_revalidate_detects_data_change () =
  let db = demo_db () in
  let query, pkg = solved db in
  Store.save db ~name:"plan" ~query pkg;
  (* Mutate the base data: one stored tuple vanishes. *)
  let victim =
    match Package.support pkg with
    | i :: _ ->
        Option.get
          (Value.to_int (Relation.get (Package.base pkg) i "id"))
    | [] -> Alcotest.fail "empty package"
  in
  ignore
    (Pb_sql.Executor.execute_sql db
       (Printf.sprintf "DELETE FROM recipes WHERE id = %d" victim));
  (match Store.revalidate db ~name:"plan" with
  | Error _ -> ()  (* stored tuple no longer exists *)
  | Ok _ -> Alcotest.fail "expected a missing-tuple error");
  (* And a softer change: tuple still there but query now unsatisfied. *)
  ()

let test_revalidate_missing () =
  let db = demo_db () in
  match Store.revalidate db ~name:"ghost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

(* ---- completion ------------------------------------------------------- *)

let contains xs x = List.mem x xs

let test_complete_start () =
  let db = demo_db () in
  Alcotest.(check (list string)) "empty" [ "SELECT" ] (Complete.suggest db "");
  Alcotest.(check (list string)) "partial" [ "SELECT" ] (Complete.suggest db "SEL")

let test_complete_after_select () =
  let db = demo_db () in
  Alcotest.(check (list string)) "package" [ "PACKAGE(" ]
    (Complete.suggest db "SELECT ")

let test_complete_tables_after_from () =
  let db = demo_db () in
  let suggestions = Complete.suggest db "SELECT PACKAGE(R) AS P FROM " in
  Alcotest.(check bool) "recipes" true (contains suggestions "recipes");
  Alcotest.(check bool) "stocks" true (contains suggestions "stocks");
  let filtered = Complete.suggest db "SELECT PACKAGE(R) AS P FROM rec" in
  Alcotest.(check (list string)) "prefix filter" [ "recipes" ] filtered

let test_complete_clause_keywords () =
  let db = demo_db () in
  let s = Complete.suggest db "SELECT PACKAGE(R) AS P FROM recipes R " in
  List.iter
    (fun kw -> Alcotest.(check bool) kw true (contains s kw))
    [ "WHERE"; "SUCH THAT"; "MAXIMIZE"; "MINIMIZE" ]

let test_complete_where_columns () =
  let db = demo_db () in
  let s = Complete.suggest db "SELECT PACKAGE(R) AS P FROM recipes R WHERE " in
  Alcotest.(check bool) "qualified column" true (contains s "r.gluten");
  let filtered =
    Complete.suggest db "SELECT PACKAGE(R) AS P FROM recipes R WHERE r.cal"
  in
  Alcotest.(check (list string)) "column prefix" [ "r.calories" ] filtered

let test_complete_where_operators () =
  let db = demo_db () in
  let s =
    Complete.suggest db "SELECT PACKAGE(R) AS P FROM recipes R WHERE r.gluten "
  in
  Alcotest.(check bool) "=" true (contains s "=");
  Alcotest.(check bool) "BETWEEN" true (contains s "BETWEEN")

let test_complete_such_that () =
  let db = demo_db () in
  let s =
    Complete.suggest db
      "SELECT PACKAGE(R) AS P FROM recipes R WHERE r.gluten = 'free' SUCH THAT "
  in
  Alcotest.(check bool) "COUNT(*)" true (contains s "COUNT(*)");
  Alcotest.(check bool) "SUM(" true (contains s "SUM(");
  Alcotest.(check bool) "package columns" true (contains s "p.calories")

let test_complete_objective () =
  let db = demo_db () in
  let s =
    Complete.suggest db
      "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 3 MAXIMIZE "
  in
  Alcotest.(check bool) "aggregates" true (contains s "SUM(")

let test_complete_bad_input () =
  let db = demo_db () in
  Alcotest.(check (list string)) "unlexable" [] (Complete.suggest db "SELECT #$%")

let suite =
  [
    Alcotest.test_case "store: save and list" `Quick test_save_and_list;
    Alcotest.test_case "store: SQL over saved package" `Quick
      test_saved_package_queryable_by_sql;
    Alcotest.test_case "store: overwrite" `Quick test_save_overwrites;
    Alcotest.test_case "store: load and delete" `Quick test_load_and_delete;
    Alcotest.test_case "store: invalid name" `Quick test_invalid_name;
    Alcotest.test_case "store: revalidate ok" `Quick test_revalidate_ok;
    Alcotest.test_case "store: revalidate after data change" `Quick
      test_revalidate_detects_data_change;
    Alcotest.test_case "store: revalidate missing" `Quick test_revalidate_missing;
    Alcotest.test_case "complete: start" `Quick test_complete_start;
    Alcotest.test_case "complete: after select" `Quick test_complete_after_select;
    Alcotest.test_case "complete: tables after from" `Quick
      test_complete_tables_after_from;
    Alcotest.test_case "complete: clause keywords" `Quick
      test_complete_clause_keywords;
    Alcotest.test_case "complete: where columns" `Quick test_complete_where_columns;
    Alcotest.test_case "complete: where operators" `Quick
      test_complete_where_operators;
    Alcotest.test_case "complete: such that" `Quick test_complete_such_that;
    Alcotest.test_case "complete: objective" `Quick test_complete_objective;
    Alcotest.test_case "complete: bad input" `Quick test_complete_bad_input;
  ]
