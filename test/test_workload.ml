(* Tests for the synthetic workload generators: determinism, schema,
   ranges, and the structural properties the scenario queries rely on. *)

module Workload = Pb_workload.Workload
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Value = Pb_relation.Value

let float_of v = Option.get (Value.to_float v)

let test_recipes_deterministic () =
  let a = Workload.recipes ~seed:9 ~n:50 () in
  let b = Workload.recipes ~seed:9 ~n:50 () in
  Alcotest.(check int) "same size" (Relation.cardinality a) (Relation.cardinality b);
  for i = 0 to Relation.cardinality a - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "row %d equal" i)
      true
      (Array.for_all2 Value.equal (Relation.row a i) (Relation.row b i))
  done;
  let c = Workload.recipes ~seed:10 ~n:50 () in
  let identical = ref true in
  for i = 0 to 49 do
    if not (Array.for_all2 Value.equal (Relation.row a i) (Relation.row c i))
    then identical := false
  done;
  Alcotest.(check bool) "different seed differs" false !identical

let test_recipes_ranges () =
  let r = Workload.recipes ~seed:1 ~n:200 () in
  Alcotest.(check int) "size" 200 (Relation.cardinality r);
  for i = 0 to 199 do
    let cal = float_of (Relation.get r i "calories") in
    let protein = float_of (Relation.get r i "protein") in
    let fat = float_of (Relation.get r i "fat") in
    let carbs = float_of (Relation.get r i "carbs") in
    let sugar = float_of (Relation.get r i "sugar") in
    let rating = float_of (Relation.get r i "rating") in
    Alcotest.(check bool) "calories floor" true (cal >= 150.0);
    Alcotest.(check bool) "protein range" true (protein >= 4.0 && protein <= 60.0);
    Alcotest.(check bool) "sugar <= carbs" true (sugar <= carbs);
    Alcotest.(check bool) "rating 1..5" true (rating >= 1.0 && rating <= 5.0);
    (* calories roughly tracks the macronutrients *)
    let expected = (4.0 *. protein) +. (4.0 *. carbs) +. (9.0 *. fat) in
    Alcotest.(check bool) "kcal correlation" true
      (Float.abs (cal -. expected) <= 130.0 || cal = 150.0)
  done

let test_recipes_gluten_mix () =
  let r = Workload.recipes ~seed:2 ~n:300 () in
  let free = ref 0 in
  for i = 0 to 299 do
    match Relation.get r i "gluten" with
    | Value.Str "free" -> incr free
    | Value.Str "full" -> ()
    | v -> Alcotest.fail ("unexpected gluten value " ^ Value.to_string v)
  done;
  Alcotest.(check bool) "both classes present" true (!free > 30 && !free < 270)

let test_travel_structure () =
  let r = Workload.travel_items ~seed:3 ~n_destinations:4 () in
  let kinds = Hashtbl.create 4 in
  let destinations = Hashtbl.create 8 in
  for i = 0 to Relation.cardinality r - 1 do
    let kind = Value.to_string (Relation.get r i "kind") in
    Hashtbl.replace kinds kind
      (1 + Option.value (Hashtbl.find_opt kinds kind) ~default:0);
    Hashtbl.replace destinations
      (Value.to_string (Relation.get r i "destination"))
      ();
    (* indicator columns are consistent with kind *)
    let flag name = float_of (Relation.get r i name) in
    let expected_flag k = if kind = k then 1.0 else 0.0 in
    Alcotest.(check (float 0.0)) "is_flight" (expected_flag "flight") (flag "is_flight");
    Alcotest.(check (float 0.0)) "is_hotel" (expected_flag "hotel") (flag "is_hotel");
    Alcotest.(check (float 0.0)) "is_car" (expected_flag "car") (flag "is_car");
    Alcotest.(check bool) "price positive" true (float_of (Relation.get r i "price") > 0.0);
    (* beach distance only for hotels *)
    if kind <> "hotel" then
      Alcotest.(check (float 0.0)) "no beach distance" 0.0
        (float_of (Relation.get r i "beach_distance"))
  done;
  Alcotest.(check int) "4 destinations" 4 (Hashtbl.length destinations);
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (Hashtbl.mem kinds k))
    [ "flight"; "hotel"; "car" ]

let test_travel_beach_price_anticorrelation () =
  let r = Workload.travel_items ~seed:4 ~n_destinations:6 () in
  (* average price of hotels within 2km vs beyond 6km *)
  let near = ref [] and far = ref [] in
  for i = 0 to Relation.cardinality r - 1 do
    if Value.to_string (Relation.get r i "kind") = "hotel" then begin
      let beach = float_of (Relation.get r i "beach_distance") in
      let price = float_of (Relation.get r i "price") in
      if beach <= 2.0 then near := price :: !near
      else if beach >= 6.0 then far := price :: !far
    end
  done;
  if !near <> [] && !far <> [] then
    Alcotest.(check bool) "near beach costs more" true
      (Pb_util.Stats.mean !near > Pb_util.Stats.mean !far)

let test_stocks_structure () =
  let r = Workload.stocks ~seed:5 ~n:150 () in
  Alcotest.(check int) "size" 150 (Relation.cardinality r);
  let tech = ref 0 in
  for i = 0 to 149 do
    let sector = Value.to_string (Relation.get r i "sector") in
    let is_tech = float_of (Relation.get r i "is_tech") in
    if sector = "tech" then begin
      incr tech;
      Alcotest.(check (float 0.0)) "tech flag" 1.0 is_tech
    end
    else Alcotest.(check (float 0.0)) "non-tech flag" 0.0 is_tech;
    let horizon = Value.to_string (Relation.get r i "horizon") in
    let s = float_of (Relation.get r i "is_short") in
    let l = float_of (Relation.get r i "is_long") in
    Alcotest.(check (float 0.0)) "short+long = 1" 1.0 (s +. l);
    Alcotest.(check bool) "horizon consistent" true
      ((horizon = "short" && s = 1.0) || (horizon = "long" && l = 1.0));
    Alcotest.(check bool) "risk in (0,1]" true
      (float_of (Relation.get r i "risk") > 0.0
      && float_of (Relation.get r i "risk") <= 1.0)
  done;
  Alcotest.(check bool) "tech present" true (!tech > 5)

let test_courses_structure () =
  let r = Workload.courses ~seed:5 ~n_electives:20 () in
  Alcotest.(check int) "chain + electives" 24 (Relation.cardinality r);
  (* chain indicator columns are one-hot on the chain, zero elsewhere *)
  let chain = [ "cs101"; "cs201"; "cs301"; "cs401" ] in
  for i = 0 to Relation.cardinality r - 1 do
    let code = Value.to_string (Relation.get r i "code") in
    List.iter
      (fun c ->
        let flag = float_of (Relation.get r i ("is_" ^ c)) in
        if code = c then Alcotest.(check (float 0.0)) (c ^ " flagged") 1.0 flag
        else Alcotest.(check (float 0.0)) (c ^ " unflagged") 0.0 flag)
      chain;
    let credits = float_of (Relation.get r i "credits") in
    Alcotest.(check bool) "credits 2..5" true (credits >= 2.0 && credits <= 5.0)
  done

let test_courses_prerequisites_enforced () =
  (* The §6 claim: a prerequisite is one linear global constraint, and the
     exact path honours it. *)
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "courses" (Workload.courses ~seed:6 ~n_electives:15 ());
  let query =
    Pb_paql.Parser.parse
      "SELECT PACKAGE(C) AS S FROM courses C SUCH THAT COUNT(*) = 4 AND \
       SUM(S.is_cs201) <= SUM(S.is_cs101) AND SUM(S.is_cs301) <= \
       SUM(S.is_cs201) AND SUM(S.is_cs301) = 1 MAXIMIZE SUM(S.rating)"
  in
  let r = Pb_core.Engine.run ~strategy:Pb_core.Engine.Ilp db query in
  match r.Pb_core.Engine.package with
  | None -> Alcotest.fail "expected a schedule"
  | Some pkg ->
      Alcotest.(check bool) "optimal" true
        (r.Pb_core.Engine.proof = Pb_core.Engine.Optimal);
      List.iter
        (fun code ->
          Alcotest.(check bool) (code ^ " present") true
            (Pb_paql.Package.sum_column pkg ("is_" ^ code) > 0.5))
        [ "cs101"; "cs201"; "cs301" ]

let test_install () =
  let db = Pb_sql.Database.create () in
  Workload.install ~recipes_n:30 ~destinations:2 ~stocks_n:20 ~electives:10 db;
  Alcotest.(check (list string)) "tables"
    [ "courses"; "recipes"; "stocks"; "travel_items" ]
    (Pb_sql.Database.table_names db);
  (* tables are queryable through SQL *)
  match
    Pb_sql.Executor.execute_sql db
      "SELECT COUNT(*) AS n FROM recipes WHERE gluten = 'free'"
  with
  | Pb_sql.Executor.Rows rel ->
      Alcotest.(check bool) "some free recipes" true
        (float_of (Relation.row rel 0).(0) > 0.0)
  | _ -> Alcotest.fail "expected rows"

let suite =
  [
    Alcotest.test_case "recipes deterministic" `Quick test_recipes_deterministic;
    Alcotest.test_case "recipes ranges" `Quick test_recipes_ranges;
    Alcotest.test_case "recipes gluten mix" `Quick test_recipes_gluten_mix;
    Alcotest.test_case "travel structure" `Quick test_travel_structure;
    Alcotest.test_case "travel beach/price anti-correlation" `Quick
      test_travel_beach_price_anticorrelation;
    Alcotest.test_case "stocks structure" `Quick test_stocks_structure;
    Alcotest.test_case "courses structure" `Quick test_courses_structure;
    Alcotest.test_case "courses prerequisites" `Quick
      test_courses_prerequisites_enforced;
    Alcotest.test_case "install" `Quick test_install;
  ]
