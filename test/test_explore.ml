(* Tests for the interface abstractions: descriptions, suggestions,
   template, visual summary, adaptive exploration, diversity. *)

module Parser = Pb_paql.Parser
module Ast = Pb_paql.Ast
module Package = Pb_paql.Package
module Semantics = Pb_paql.Semantics
module Describe = Pb_explore.Describe
module Suggest = Pb_explore.Suggest
module Template = Pb_explore.Template
module Summary = Pb_explore.Summary
module Session = Pb_explore.Session
module Diverse = Pb_explore.Diverse

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let demo_db () =
  let db = Pb_sql.Database.create () in
  Pb_workload.Workload.install ~seed:5 ~recipes_n:40 ~destinations:2
    ~stocks_n:30 db;
  db

let paper_query =
  "SELECT PACKAGE(R) AS P FROM Recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
   SUM(P.protein)"

let test_describe_query () =
  let q = Parser.parse paper_query in
  let text = Describe.describe_query q in
  Alcotest.(check bool) "mentions exactly 3" true (contains text "exactly 3");
  Alcotest.(check bool) "mentions calories range" true
    (contains text "between 2000 and 2500");
  Alcotest.(check bool) "mentions objective" true (contains text "largest total of protein");
  Alcotest.(check bool) "mentions gluten" true (contains text "gluten");
  Alcotest.(check bool) "no repeat sentence" true (contains text "at most once")

let test_describe_repeat_and_or () =
  let q =
    Parser.parse
      "SELECT PACKAGE(r) AS p FROM recipes r REPEAT 2 SUCH THAT COUNT(*) = 2 \
       OR COUNT(*) = 4"
  in
  let text = Describe.describe_query q in
  Alcotest.(check bool) "repeat" true (contains text "repeated up to 2");
  Alcotest.(check bool) "either/or" true (contains text "either")

let sample_of db q =
  match (Pb_core.Engine.run db q).Pb_core.Engine.package with
  | Some pkg -> pkg
  | None -> Alcotest.fail "no sample package"

let test_suggest_cell_numeric () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  let sample = sample_of db q in
  let suggestions = Suggest.suggest q ~sample (Suggest.Cell { row = 0; column = "fat" }) in
  Alcotest.(check bool) "several" true (List.length suggestions >= 4);
  (* The paper's example: constraints restricting fat per meal and
     objectives minimizing total fat. *)
  Alcotest.(check bool) "has base constraint" true
    (List.exists (fun s -> s.Suggest.kind = Suggest.Base_constraint) suggestions);
  Alcotest.(check bool) "has minimize objective" true
    (List.exists
       (fun s ->
         s.Suggest.kind = Suggest.Objective
         && contains s.Suggest.paql_fragment "MINIMIZE")
       suggestions);
  (* refined queries parse back *)
  List.iter
    (fun s ->
      let printed = Ast.to_string s.Suggest.refined in
      ignore (Parser.parse printed))
    suggestions

let test_suggest_cell_categorical () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  let sample = sample_of db q in
  let suggestions =
    Suggest.suggest q ~sample (Suggest.Cell { row = 0; column = "cuisine" })
  in
  Alcotest.(check int) "one equality suggestion" 1 (List.length suggestions);
  Alcotest.(check bool) "is base" true
    ((List.hd suggestions).Suggest.kind = Suggest.Base_constraint)

let test_suggest_column () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  let sample = sample_of db q in
  let suggestions = Suggest.suggest q ~sample (Suggest.Column "protein") in
  Alcotest.(check bool) "has global band" true
    (List.exists
       (fun s ->
         s.Suggest.kind = Suggest.Global_constraint
         && contains s.Suggest.paql_fragment "BETWEEN")
       suggestions)

let test_suggest_row () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  let sample = sample_of db q in
  let suggestions = Suggest.suggest q ~sample (Suggest.Row 0) in
  Alcotest.(check bool) "categorical generalizations" true
    (List.length suggestions >= 1);
  List.iter
    (fun s ->
      Alcotest.(check bool) "base kind" true
        (s.Suggest.kind = Suggest.Base_constraint))
    suggestions

let test_suggest_unknown_column () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  let sample = sample_of db q in
  match Suggest.suggest q ~sample (Suggest.Column "nope") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure"

let test_suggestion_application_refines () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  let sample = sample_of db q in
  let s =
    List.find
      (fun s -> s.Suggest.kind = Suggest.Base_constraint)
      (Suggest.suggest q ~sample (Suggest.Cell { row = 0; column = "fat" }))
  in
  (* the refined query keeps all original clauses plus the new conjunct *)
  let refined = s.Suggest.refined in
  Alcotest.(check bool) "where grew" true
    (String.length (Ast.to_string refined) > String.length (Ast.to_string q))

let test_template_render () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  let t = Template.create db q in
  let text = Template.render db t in
  Alcotest.(check bool) "has sample" true (contains text "Sample package");
  Alcotest.(check bool) "has base section" true (contains text "Base constraints");
  Alcotest.(check bool) "has global section" true
    (contains text "Global constraints");
  Alcotest.(check bool) "has objective" true (contains text "MAXIMIZE")

let test_template_refine_keeps_sample_on_failure () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  let t = Template.create db q in
  let impossible =
    Parser.parse
      "SELECT PACKAGE(r) AS p FROM recipes r SUCH THAT COUNT(*) = 1000"
  in
  let t2 = Template.refine db t impossible in
  Alcotest.(check bool) "sample kept" true (t2.Template.sample = t.Template.sample)

let test_summary_axes () =
  let q = Parser.parse paper_query in
  let x, y = Summary.pick_axes q in
  Alcotest.(check string) "y is objective" "SUM(p.protein)" y.Summary.label;
  Alcotest.(check string) "x is sum constraint" "SUM(p.calories)" x.Summary.label

let test_summary_axes_no_objective () =
  let q =
    Parser.parse "SELECT PACKAGE(r) AS p FROM recipes r SUCH THAT COUNT(*) = 2"
  in
  let x, y = Summary.pick_axes q in
  Alcotest.(check string) "y count" "COUNT(*)" y.Summary.label;
  Alcotest.(check string) "x count" "COUNT(*)" x.Summary.label

let test_summary_build_and_render () =
  let db = demo_db () in
  let q =
    Parser.parse
      "SELECT PACKAGE(r) AS p FROM recipes r WHERE r.gluten = 'free' SUCH \
       THAT COUNT(*) = 2 AND SUM(p.calories) <= 1200 MAXIMIZE SUM(p.protein)"
  in
  let current = sample_of db q in
  let s = Summary.build ~current db q in
  Alcotest.(check bool) "points found" true (List.length s.Summary.points > 0);
  let text = Summary.render s in
  Alcotest.(check bool) "current highlighted" true (contains text "@");
  Alcotest.(check bool) "axes labelled" true (contains text "SUM(p.protein)")

let test_summary_incomplete_marker () =
  let db = demo_db () in
  let q =
    Parser.parse "SELECT PACKAGE(r) AS p FROM recipes r SUCH THAT COUNT(*) = 3"
  in
  let s = Summary.build ~max_packages:5 db q in
  Alcotest.(check bool) "truncated" false s.Summary.complete;
  Alcotest.(check bool) "says running" true (contains (Summary.render s) "running")

let test_session_resample_progress () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  match Session.start db q with
  | Error e -> Alcotest.fail e
  | Ok session ->
      let first = Session.current session in
      let keep =
        match Package.support first with i :: _ -> [ i ] | [] -> []
      in
      let session2, status = Session.keep_and_resample session ~keep in
      (match status with
      | `Fresh ->
          let second = Session.current session2 in
          Alcotest.(check bool) "different package" false
            (Package.equal first second);
          (* kept tuple still present *)
          List.iter
            (fun i ->
              Alcotest.(check bool) "kept" true
                (Package.multiplicity second i >= 1))
            keep;
          Alcotest.(check bool) "still valid" true
            (Semantics.is_valid ~db q second)
      | `Exhausted -> Alcotest.fail "expected a fresh package");
      Alcotest.(check int) "round counted" 1 (Session.rounds session2)

let test_session_exhaustion () =
  (* A query with exactly one valid package exhausts immediately. *)
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "t"
    (Pb_relation.Relation.create
       (Pb_relation.Schema.make
          [ { Pb_relation.Schema.name = "x"; ty = Pb_relation.Value.T_int } ])
       [ [| Pb_relation.Value.Int 1 |]; [| Pb_relation.Value.Int 2 |] ]);
  let q =
    Parser.parse "SELECT PACKAGE(t) AS p FROM t SUCH THAT SUM(p.x) = 3"
  in
  match Session.start db q with
  | Error e -> Alcotest.fail e
  | Ok session -> (
      let _, status = Session.keep_and_resample session ~keep:[] in
      match status with
      | `Exhausted -> ()
      | `Fresh -> Alcotest.fail "only one valid package exists")

let test_session_infer_constraints () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  match Session.start db q with
  | Error e -> Alcotest.fail e
  | Ok session ->
      let keep = Package.support (Session.current session) in
      let suggestions = Session.infer_constraints session ~keep in
      (* gluten = 'free' is shared by construction *)
      Alcotest.(check bool) "gluten inferred" true
        (List.exists
           (fun s -> contains s.Suggest.paql_fragment "gluten")
           suggestions)

let test_session_simulation_converges () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  (* target: the optimum package's support *)
  let target =
    Package.support (sample_of db q)
  in
  match Session.simulate db q ~target with
  | Some (rounds, converged) ->
      Alcotest.(check bool) "converged" true converged;
      Alcotest.(check bool) "bounded rounds" true (rounds <= 50)
  | None -> Alcotest.fail "no initial package"

let test_session_no_package () =
  let db = demo_db () in
  let q =
    Parser.parse "SELECT PACKAGE(r) AS p FROM recipes r SUCH THAT COUNT(*) = 999"
  in
  match Session.start db q with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_jaccard () =
  let rel =
    Pb_relation.Relation.create
      (Pb_relation.Schema.make
         [ { Pb_relation.Schema.name = "x"; ty = Pb_relation.Value.T_int } ])
      (List.init 4 (fun i -> [| Pb_relation.Value.Int i |]))
  in
  let p1 = Package.of_indices rel ~alias:"p" [ 0; 1 ] in
  let p2 = Package.of_indices rel ~alias:"p" [ 0; 1 ] in
  let p3 = Package.of_indices rel ~alias:"p" [ 2; 3 ] in
  let p4 = Package.of_indices rel ~alias:"p" [ 1; 2 ] in
  Alcotest.(check (float 1e-9)) "identical" 0.0 (Diverse.jaccard_distance p1 p2);
  Alcotest.(check (float 1e-9)) "disjoint" 1.0 (Diverse.jaccard_distance p1 p3);
  Alcotest.(check (float 1e-9)) "overlap 1/3" (1.0 -. (1.0 /. 3.0))
    (Diverse.jaccard_distance p1 p4)

let test_diverse_selection () =
  let db = demo_db () in
  let q =
    Parser.parse
      "SELECT PACKAGE(r) AS p FROM recipes r WHERE r.gluten = 'free' SUCH \
       THAT COUNT(*) = 2 MAXIMIZE SUM(p.protein)"
  in
  let picks = Diverse.diverse_packages ~pool_size:300 ~k:4 db q in
  Alcotest.(check int) "4 picks" 4 (List.length picks);
  (* first pick is the best package of the pool *)
  let best = List.hd picks in
  List.iter
    (fun other ->
      Alcotest.(check bool) "seed is best" true
        (Semantics.compare_quality q best other >= 0))
    (List.tl picks);
  (* pairwise distinct *)
  let supports = List.map Package.support picks in
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare supports))

let suite =
  [
    Alcotest.test_case "describe query" `Quick test_describe_query;
    Alcotest.test_case "describe repeat + or" `Quick test_describe_repeat_and_or;
    Alcotest.test_case "suggest: numeric cell" `Quick test_suggest_cell_numeric;
    Alcotest.test_case "suggest: categorical cell" `Quick
      test_suggest_cell_categorical;
    Alcotest.test_case "suggest: column" `Quick test_suggest_column;
    Alcotest.test_case "suggest: row" `Quick test_suggest_row;
    Alcotest.test_case "suggest: unknown column" `Quick test_suggest_unknown_column;
    Alcotest.test_case "suggestion application" `Quick
      test_suggestion_application_refines;
    Alcotest.test_case "template render" `Quick test_template_render;
    Alcotest.test_case "template refine failure keeps sample" `Quick
      test_template_refine_keeps_sample_on_failure;
    Alcotest.test_case "summary axes" `Quick test_summary_axes;
    Alcotest.test_case "summary axes (no objective)" `Quick
      test_summary_axes_no_objective;
    Alcotest.test_case "summary build + render" `Quick test_summary_build_and_render;
    Alcotest.test_case "summary incomplete marker" `Quick
      test_summary_incomplete_marker;
    Alcotest.test_case "session resample progress" `Quick
      test_session_resample_progress;
    Alcotest.test_case "session exhaustion" `Quick test_session_exhaustion;
    Alcotest.test_case "session infers constraints" `Quick
      test_session_infer_constraints;
    Alcotest.test_case "session simulation converges" `Quick
      test_session_simulation_converges;
    Alcotest.test_case "session no package" `Quick test_session_no_package;
    Alcotest.test_case "jaccard distance" `Quick test_jaccard;
    Alcotest.test_case "diverse selection" `Quick test_diverse_selection;
  ]
