(* Unit tests for pb_util: PRNG determinism, statistics, table rendering,
   CSV round-trips. *)

module Prng = Pb_util.Prng
module Stats = Pb_util.Stats
module Table = Pb_util.Table
module Csv = Pb_util.Csv

let check_float = Alcotest.(check (float 1e-9))

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_int_range () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done

let test_prng_int_in_inclusive () =
  let rng = Prng.create 8 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 2000 do
    let v = Prng.int_in rng 3 5 in
    Alcotest.(check bool) "in [3,5]" true (v >= 3 && v <= 5);
    if v = 3 then seen_lo := true;
    if v = 5 then seen_hi := true
  done;
  Alcotest.(check bool) "bounds reachable" true (!seen_lo && !seen_hi)

let test_prng_float_range () =
  let rng = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_split_independent () =
  let a = Prng.create 42 in
  let b = Prng.split a in
  Alcotest.(check bool) "split streams differ" true
    (Prng.bits64 a <> Prng.bits64 b)

let test_prng_gaussian_moments () =
  let rng = Prng.create 10 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Prng.gaussian rng ~mean:5.0 ~stddev:2.0) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  Alcotest.(check bool) "mean near 5" true (Float.abs (m -. 5.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (sd -. 2.0) < 0.1)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 11 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_prng_sample_without_replacement () =
  let rng = Prng.create 12 in
  for _ = 1 to 50 do
    let sample = Prng.sample_without_replacement rng 5 20 in
    Alcotest.(check int) "size" 5 (List.length sample);
    Alcotest.(check int) "distinct" 5
      (List.length (List.sort_uniq compare sample));
    List.iter
      (fun i -> Alcotest.(check bool) "range" true (i >= 0 && i < 20))
      sample
  done

let test_mean_median () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean [])

let test_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 2.0; 2.0; 2.0 ]);
  check_float "simple" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50.0 (Stats.percentile 50.0 xs);
  check_float "p95" 95.0 (Stats.percentile 95.0 xs);
  check_float "p100" 100.0 (Stats.percentile 100.0 xs)

let test_log_binomial () =
  check_float "C(5,2)" (log 10.0) (Stats.log_binomial 5 2);
  check_float "C(10,0)" 0.0 (Stats.log_binomial 10 0);
  check_float "C(10,10)" 0.0 (Stats.log_binomial 10 10);
  Alcotest.(check bool) "C(5,7) empty" true
    (Stats.log_binomial 5 7 = neg_infinity);
  (* C(50,25) = 126410606437752 *)
  Alcotest.(check bool) "C(50,25) accurate" true
    (Float.abs (Stats.log_binomial 50 25 -. log 1.26410606437752e14) < 1e-9)

let test_binomial_range () =
  (* Σ_{c=0..5} C(5,c) = 32 *)
  check_float "full range" (log 32.0) (Stats.binomial_range_log 5 0 5);
  (* Σ_{c=2..3} C(5,c) = 10 + 10 = 20 *)
  check_float "middle" (log 20.0) (Stats.binomial_range_log 5 2 3);
  Alcotest.(check bool) "empty range" true
    (Stats.binomial_range_log 5 4 2 = neg_infinity);
  (* clamping: l < 0, u > n *)
  check_float "clamped" (log 32.0) (Stats.binomial_range_log 5 (-3) 10)

let test_log_sum_exp () =
  check_float "two equal" (log 2.0) (Stats.log_sum_exp [ 0.0; 0.0 ]);
  Alcotest.(check bool) "empty" true (Stats.log_sum_exp [] = neg_infinity);
  (* huge magnitudes stay finite *)
  let v = Stats.log_sum_exp [ 1000.0; 1000.0 ] in
  Alcotest.(check bool) "stable" true (Float.abs (v -. (1000.0 +. log 2.0)) < 1e-9)

let test_table_render () =
  let s =
    Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check bool) "header contains names" true
        (String.length header >= 6);
      Alcotest.(check bool) "rule is dashes" true
        (String.for_all (fun c -> c = '-' || c = '+') rule)
  | _ -> Alcotest.fail "unexpected shape");
  (* right alignment pads on the left *)
  let right =
    Table.render ~align:[ Table.Right ] ~header:[ "num" ] [ [ "7" ] ]
  in
  Alcotest.(check bool) "right aligned" true
    (String.length right > 0)

let test_table_ragged_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "padded" true (String.length s > 0)

let test_csv_roundtrip () =
  let rows =
    [
      [ "plain"; "with,comma"; "with\"quote" ];
      [ "multi\nline"; ""; "end" ];
    ]
  in
  let parsed = Csv.parse_string (Csv.to_string rows) in
  Alcotest.(check (list (list string))) "roundtrip" rows parsed

let test_csv_crlf () =
  let parsed = Csv.parse_string "a,b\r\nc,d\r\n" in
  Alcotest.(check (list (list string))) "crlf" [ [ "a"; "b" ]; [ "c"; "d" ] ] parsed

let test_csv_quoted () =
  let parsed = Csv.parse_string "\"a,b\",\"say \"\"hi\"\"\"\n" in
  Alcotest.(check (list (list string))) "quoted" [ [ "a,b"; "say \"hi\"" ] ] parsed

let test_csv_unclosed_quote () =
  Alcotest.check_raises "unclosed" (Failure "Csv.parse_string: unclosed quote")
    (fun () -> ignore (Csv.parse_string "\"oops"))

let test_timeit () =
  let (value : int), elapsed = Stats.timeit (fun () -> 41 + 1) in
  Alcotest.(check int) "value" 42 value;
  Alcotest.(check bool) "non-negative time" true (elapsed >= 0.0)

(* ---- governance tokens ------------------------------------------------ *)

module Gov = Pb_util.Gov

let test_gov_unlimited () =
  let g = Gov.unlimited () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "never stops" true (Gov.check g = None)
  done;
  Gov.spend g Gov.Milp_nodes 10_000_000;
  Alcotest.(check bool) "no budgets at all" true
    (Gov.check ~resource:Gov.Milp_nodes g = None);
  Alcotest.(check bool) "no fate" true (Gov.fate g = None);
  Alcotest.(check bool) "no deadline" true (Gov.remaining_time g = None)

let test_gov_cancel_latches () =
  let g = Gov.create () in
  Alcotest.(check bool) "starts clean" true (Gov.check g = None);
  Gov.cancel g;
  Gov.cancel g (* idempotent *);
  Alcotest.(check bool) "cancelled" true (Gov.cancelled g);
  Alcotest.(check bool) "check reports it" true
    (Gov.check g = Some Gov.Cancelled);
  Alcotest.(check bool) "fate latched" true (Gov.fate g = Some Gov.Cancelled);
  Alcotest.check_raises "tick raises" (Gov.Interrupted Gov.Cancelled) (fun () ->
      Gov.tick g)

let test_gov_budget_not_latched () =
  let g = Gov.create ~milp_nodes:10 ~bf_candidates:5 () in
  Gov.spend g Gov.Milp_nodes 10;
  (* the exhausted meter answers only when asked about that resource *)
  Alcotest.(check bool) "milp meter exhausted" true
    (Gov.check ~resource:Gov.Milp_nodes g = Some (Gov.Budget Gov.Milp_nodes));
  Alcotest.(check bool) "other meters unaffected" true
    (Gov.check ~resource:Gov.Bf_candidates g = None);
  Alcotest.(check bool) "plain poll unaffected" true (Gov.check g = None);
  (* budget exhaustion is a strategy-local outcome, not a request fate *)
  Alcotest.(check bool) "no fate from budgets" true (Gov.fate g = None);
  Alcotest.(check int) "spend recorded" 10 (Gov.spent g Gov.Milp_nodes);
  Alcotest.(check bool) "nothing left" true
    (Gov.budget_left g Gov.Milp_nodes = Some 0);
  Alcotest.(check bool) "others still budgeted" true
    (Gov.budget_left g Gov.Bf_candidates = Some 5)

let test_gov_child_cancellation () =
  let parent = Gov.create () in
  let a = Gov.child parent and b = Gov.child parent in
  (* cancelling one leg leaves the sibling and the parent running *)
  Gov.cancel a;
  Alcotest.(check bool) "a stopped" true (Gov.cancelled a);
  Alcotest.(check bool) "b unaffected" false (Gov.cancelled b);
  Alcotest.(check bool) "parent unaffected" false (Gov.cancelled parent);
  (* cancelling the parent stops every descendant *)
  Gov.cancel parent;
  Alcotest.(check bool) "b sees ancestor cancel" true (Gov.cancelled b);
  Alcotest.(check bool) "check agrees" true (Gov.check b = Some Gov.Cancelled)

let test_gov_shared_spend () =
  let parent = Gov.create ~bf_candidates:100 () in
  let a = Gov.child parent and b = Gov.child parent in
  Gov.spend a Gov.Bf_candidates 60;
  Alcotest.(check int) "family total" 60 (Gov.spent parent Gov.Bf_candidates);
  Alcotest.(check bool) "b shares the meter" true
    (Gov.budget_left b Gov.Bf_candidates = Some 40);
  Gov.spend b Gov.Bf_candidates 40;
  Alcotest.(check bool) "a sees the family exhaust the budget" true
    (Gov.check ~resource:Gov.Bf_candidates a
    = Some (Gov.Budget Gov.Bf_candidates))

let test_gov_deadline () =
  let g = Gov.create ~deadline_in:0.005 () in
  Thread.delay 0.02;
  (* the clock is sampled on a subset of polls; a short poll loop must
     still observe the deadline promptly *)
  let rec poll n =
    if n > 10_000 then None
    else match Gov.check g with None -> poll (n + 1) | some -> some
  in
  Alcotest.(check bool) "deadline observed" true (poll 0 = Some Gov.Deadline);
  Alcotest.(check bool) "fate latched" true (Gov.fate g = Some Gov.Deadline);
  Alcotest.(check bool) "no time left" true
    (Gov.remaining_time g = Some 0.0)

let test_gov_cross_thread_cancel () =
  let g = Gov.create () in
  let t = Thread.create (fun () -> Thread.delay 0.01; Gov.cancel g) () in
  (* poll like an evaluation loop until the other thread stops us *)
  let rec loop n =
    match Gov.check g with
    | Some r -> Some r
    | None ->
        if n mod 1024 = 0 then Thread.yield ();
        loop (n + 1)
  in
  let stopped = loop 0 in
  Thread.join t;
  Alcotest.(check bool) "stopped by the other thread" true
    (stopped = Some Gov.Cancelled)

let test_gov_reason_strings () =
  Alcotest.(check string) "cancelled" "cancelled"
    (Gov.reason_to_string Gov.Cancelled);
  Alcotest.(check string) "deadline" "deadline"
    (Gov.reason_to_string Gov.Deadline);
  Alcotest.(check string) "budget" "budget:milp_nodes"
    (Gov.reason_to_string (Gov.Budget Gov.Milp_nodes));
  Alcotest.(check string) "budget sql" "budget:sql_rows"
    (Gov.reason_to_string (Gov.Budget Gov.Sql_rows))

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_different_seeds;
    Alcotest.test_case "prng int range" `Quick test_prng_int_range;
    Alcotest.test_case "prng int_in inclusive" `Quick test_prng_int_in_inclusive;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng gaussian moments" `Quick test_prng_gaussian_moments;
    Alcotest.test_case "prng shuffle permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "prng sample w/o replacement" `Quick
      test_prng_sample_without_replacement;
    Alcotest.test_case "mean/median" `Quick test_mean_median;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "log_binomial" `Quick test_log_binomial;
    Alcotest.test_case "binomial_range_log" `Quick test_binomial_range;
    Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table ragged rows" `Quick test_table_ragged_rows;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv crlf" `Quick test_csv_crlf;
    Alcotest.test_case "csv quoted" `Quick test_csv_quoted;
    Alcotest.test_case "csv unclosed quote" `Quick test_csv_unclosed_quote;
    Alcotest.test_case "timeit" `Quick test_timeit;
    Alcotest.test_case "gov unlimited" `Quick test_gov_unlimited;
    Alcotest.test_case "gov cancel latches" `Quick test_gov_cancel_latches;
    Alcotest.test_case "gov budgets not latched" `Quick
      test_gov_budget_not_latched;
    Alcotest.test_case "gov child cancellation" `Quick
      test_gov_child_cancellation;
    Alcotest.test_case "gov shared spend counters" `Quick test_gov_shared_spend;
    Alcotest.test_case "gov deadline" `Quick test_gov_deadline;
    Alcotest.test_case "gov cross-thread cancel" `Quick
      test_gov_cross_thread_cancel;
    Alcotest.test_case "gov reason strings" `Quick test_gov_reason_strings;
  ]
