(* Aggregated test entry point: `dune runtest` runs every suite. *)

let () =
  Alcotest.run "packagebuilder"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("relation", Test_relation.suite);
      ("sql", Test_sql.suite);
      ("planner", Test_planner.suite);
      ("lp", Test_lp.suite);
      ("paql", Test_paql.suite);
      ("core", Test_core.suite);
      ("explore", Test_explore.suite);
      ("workload", Test_workload.suite);
      ("extensions", Test_extensions.suite);
      ("sql-generation", Test_sql_generate.suite);
      ("store-complete", Test_store_complete.suite);
      ("shell", Test_shell.suite);
      ("edge", Test_edge.suite);
      ("properties", Test_props.suite);
      ("properties-ext", Test_props2.suite);
      ("differential", Test_differential.suite);
      ("partition", Test_partition.suite);
      ("par", Test_par.suite);
      ("net", Test_net.suite);
      ("shard", Test_shard.suite);
      ("columnar", Test_columnar.suite);
    ]
