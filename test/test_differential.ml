(* Differential property tests across evaluation strategies: on random
   tiny instances, brute force (the oracle), ILP and SQL-generation must
   agree on feasibility and on the optimal objective value, and local
   search must only produce feasible packages that never beat the proven
   optimum. *)

module Gen = QCheck.Gen
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Parser = Pb_paql.Parser
module Engine = Pb_core.Engine

type direction = Max | Min | NoObj

type inst = {
  rows : (int * int) list;  (* (a, b) per tuple *)
  k : int;  (* cardinality between 1 and k *)
  bound : int option;  (* SUM(P.a) <= bound *)
  dir : direction;
}

let inst_gen : inst Gen.t =
  let open Gen in
  let* nrows = int_range 2 7 in
  let* rows = list_repeat nrows (pair (int_range 1 9) (int_range 0 9)) in
  let* k = int_range 1 3 in
  let* bound = opt (int_range 1 20) in
  let* dir = oneofl [ Max; Min; NoObj ] in
  return { rows; k; bound; dir }

let print_inst i =
  Printf.sprintf "rows=[%s] k=%d bound=%s dir=%s"
    (String.concat ";"
       (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) i.rows))
    i.k
    (match i.bound with None -> "-" | Some b -> string_of_int b)
    (match i.dir with Max -> "max" | Min -> "min" | NoObj -> "none")

let db_of i =
  let db = Pb_sql.Database.create () in
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "a"; ty = Value.T_int };
        { Schema.name = "b"; ty = Value.T_int };
      ]
  in
  let rows =
    List.mapi
      (fun idx (a, b) -> [| Value.Int (idx + 1); Value.Int a; Value.Int b |])
      i.rows
  in
  Pb_sql.Database.put db "t" (Relation.create schema rows);
  db

let query_of i =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT PACKAGE(R) AS P FROM t R SUCH THAT ";
  Buffer.add_string buf (Printf.sprintf "COUNT(*) BETWEEN 1 AND %d" i.k);
  (match i.bound with
  | Some b -> Buffer.add_string buf (Printf.sprintf " AND SUM(P.a) <= %d" b)
  | None -> ());
  (match i.dir with
  | Max -> Buffer.add_string buf " MAXIMIZE SUM(P.b)"
  | Min -> Buffer.add_string buf " MINIMIZE SUM(P.b)"
  | NoObj -> ());
  Buffer.contents buf

let evaluate i strategy =
  Engine.evaluate ~strategy ~ilp_max_nodes:500_000 (db_of i)
    (Parser.parse (query_of i))

let oracle i = evaluate i (Engine.Brute_force { use_pruning = true })
let feasible (r : Engine.report) = Option.is_some r.package
let tol = 1e-6

let objectives_agree (a : Engine.report) (b : Engine.report) =
  match (a.objective, b.objective) with
  | Some x, Some y -> Float.abs (x -. y) <= tol
  | None, None -> true
  | _ -> false

(* Feasibility and optimal objective must match between the oracle and a
   competing exact strategy, whenever both runs carry a proof. *)
let check_exact name strategy ~skip =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "%s agrees with brute force" name)
    (QCheck.make ~print:print_inst inst_gen)
    (fun i ->
      let bf = oracle i in
      let other = evaluate i strategy in
      if (not bf.proven_optimal) || (not other.proven_optimal) || skip other
      then true
      else if feasible bf <> feasible other then
        QCheck.Test.fail_reportf "feasibility: bf=%b %s=%b on %s" (feasible bf)
          name (feasible other) (print_inst i)
      else if not (objectives_agree bf other) then
        QCheck.Test.fail_reportf "objective: bf=%s %s=%s on %s"
          (match bf.objective with
          | None -> "-"
          | Some v -> string_of_float v)
          name
          (match other.objective with
          | None -> "-"
          | Some v -> string_of_float v)
          (print_inst i)
      else true)

let prop_ilp = check_exact "ilp" Engine.Ilp ~skip:(fun _ -> false)

let prop_sqlgen =
  check_exact "sql-generation"
    (Engine.Sql_generation Pb_core.Sql_generate.default_params)
    ~skip:(fun (r : Engine.report) ->
      List.mem_assoc "not_applicable" r.stats)

let prop_pruning =
  check_exact "unpruned brute force"
    (Engine.Brute_force { use_pruning = false })
    ~skip:(fun _ -> false)

(* Local search is heuristic: any package it returns has already passed
   the engine's semantic re-check, so we assert the two things it can
   still get wrong relative to the oracle — inventing a package for an
   infeasible query, or "beating" the proven optimum. *)
let prop_local_search =
  QCheck.Test.make ~count:60 ~name:"local search feasible and never beats optimum"
    (QCheck.make ~print:print_inst inst_gen)
    (fun i ->
      let bf = oracle i in
      if not bf.proven_optimal then true
      else
        let ls = evaluate i (Engine.Local_search Pb_core.Local_search.default_params) in
        if (not (feasible bf)) && feasible ls then
          QCheck.Test.fail_reportf
            "local search found a package on an infeasible query %s"
            (print_inst i)
        else
          match (i.dir, bf.objective, ls.objective) with
          | Max, Some opt, Some got when got > opt +. tol ->
              QCheck.Test.fail_reportf "ls beat the max optimum %g > %g on %s"
                got opt (print_inst i)
          | Min, Some opt, Some got when got < opt -. tol ->
              QCheck.Test.fail_reportf "ls beat the min optimum %g < %g on %s"
                got opt (print_inst i)
          | _ -> true)

(* The hybrid policy may pick any strategy, but its answer must carry the
   same objective as the oracle whenever it claims a proof. *)
let prop_hybrid =
  check_exact "hybrid" Engine.Hybrid ~skip:(fun (r : Engine.report) ->
      not r.proven_optimal)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ilp; prop_sqlgen; prop_pruning; prop_local_search; prop_hybrid ]
