(* Differential property tests across evaluation strategies: on random
   tiny instances, brute force (the oracle), ILP and SQL-generation must
   agree on feasibility and on the optimal objective value, and local
   search must only produce feasible packages that never beat the proven
   optimum. *)

module Gen = QCheck.Gen
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Parser = Pb_paql.Parser
module Engine = Pb_core.Engine

type direction = Max | Min | NoObj

type inst = {
  rows : (int * int) list;  (* (a, b) per tuple *)
  k : int;  (* cardinality between 1 and k *)
  bound : int option;  (* SUM(P.a) <= bound *)
  dir : direction;
}

let inst_gen : inst Gen.t =
  let open Gen in
  let* nrows = int_range 2 7 in
  let* rows = list_repeat nrows (pair (int_range 1 9) (int_range 0 9)) in
  let* k = int_range 1 3 in
  let* bound = opt (int_range 1 20) in
  let* dir = oneofl [ Max; Min; NoObj ] in
  return { rows; k; bound; dir }

let print_inst i =
  Printf.sprintf "rows=[%s] k=%d bound=%s dir=%s"
    (String.concat ";"
       (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) i.rows))
    i.k
    (match i.bound with None -> "-" | Some b -> string_of_int b)
    (match i.dir with Max -> "max" | Min -> "min" | NoObj -> "none")

let db_of i =
  let db = Pb_sql.Database.create () in
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "a"; ty = Value.T_int };
        { Schema.name = "b"; ty = Value.T_int };
      ]
  in
  let rows =
    List.mapi
      (fun idx (a, b) -> [| Value.Int (idx + 1); Value.Int a; Value.Int b |])
      i.rows
  in
  Pb_sql.Database.put db "t" (Relation.create schema rows);
  db

let query_of i =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT PACKAGE(R) AS P FROM t R SUCH THAT ";
  Buffer.add_string buf (Printf.sprintf "COUNT(*) BETWEEN 1 AND %d" i.k);
  (match i.bound with
  | Some b -> Buffer.add_string buf (Printf.sprintf " AND SUM(P.a) <= %d" b)
  | None -> ());
  (match i.dir with
  | Max -> Buffer.add_string buf " MAXIMIZE SUM(P.b)"
  | Min -> Buffer.add_string buf " MINIMIZE SUM(P.b)"
  | NoObj -> ());
  Buffer.contents buf

let evaluate i strategy =
  Engine.run ~strategy
    ~gov:(Pb_util.Gov.create ~milp_nodes:500_000 ())
    (db_of i)
    (Parser.parse (query_of i))

let oracle i = evaluate i (Engine.Brute_force { use_pruning = true })
let feasible (r : Engine.result) = Option.is_some r.package

let proven (r : Engine.result) =
  match r.proof with
  | Engine.Optimal | Engine.Infeasible -> true
  | Engine.Feasible | Engine.Cancelled -> false
let tol = 1e-6

let objectives_agree (a : Engine.result) (b : Engine.result) =
  match (a.objective, b.objective) with
  | Some x, Some y -> Float.abs (x -. y) <= tol
  | None, None -> true
  | _ -> false

(* Feasibility and optimal objective must match between the oracle and a
   competing exact strategy, whenever both runs carry a proof. *)
let check_exact name strategy ~skip =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "%s agrees with brute force" name)
    (QCheck.make ~print:print_inst inst_gen)
    (fun i ->
      let bf = oracle i in
      let other = evaluate i strategy in
      if (not (proven bf)) || (not (proven other)) || skip other
      then true
      else if feasible bf <> feasible other then
        QCheck.Test.fail_reportf "feasibility: bf=%b %s=%b on %s" (feasible bf)
          name (feasible other) (print_inst i)
      else if not (objectives_agree bf other) then
        QCheck.Test.fail_reportf "objective: bf=%s %s=%s on %s"
          (match bf.objective with
          | None -> "-"
          | Some v -> string_of_float v)
          name
          (match other.objective with
          | None -> "-"
          | Some v -> string_of_float v)
          (print_inst i)
      else true)

let prop_ilp = check_exact "ilp" Engine.Ilp ~skip:(fun _ -> false)

let prop_sqlgen =
  check_exact "sql-generation"
    (Engine.Sql_generation Pb_core.Sql_generate.default_params)
    ~skip:(fun (r : Engine.result) ->
      List.mem_assoc "not_applicable" r.stats)

let prop_pruning =
  check_exact "unpruned brute force"
    (Engine.Brute_force { use_pruning = false })
    ~skip:(fun _ -> false)

(* Local search is heuristic: any package it returns has already passed
   the engine's semantic re-check, so we assert the two things it can
   still get wrong relative to the oracle — inventing a package for an
   infeasible query, or "beating" the proven optimum. *)
let prop_local_search =
  QCheck.Test.make ~count:60 ~name:"local search feasible and never beats optimum"
    (QCheck.make ~print:print_inst inst_gen)
    (fun i ->
      let bf = oracle i in
      if not (proven bf) then true
      else
        let ls = evaluate i (Engine.Local_search Pb_core.Local_search.default_params) in
        if (not (feasible bf)) && feasible ls then
          QCheck.Test.fail_reportf
            "local search found a package on an infeasible query %s"
            (print_inst i)
        else
          match (i.dir, bf.objective, ls.objective) with
          | Max, Some opt, Some got when got > opt +. tol ->
              QCheck.Test.fail_reportf "ls beat the max optimum %g > %g on %s"
                got opt (print_inst i)
          | Min, Some opt, Some got when got < opt -. tol ->
              QCheck.Test.fail_reportf "ls beat the min optimum %g < %g on %s"
                got opt (print_inst i)
          | _ -> true)

(* The hybrid policy may pick any strategy, but its answer must carry the
   same objective as the oracle whenever it claims a proof. *)
let prop_hybrid =
  check_exact "hybrid" Engine.Hybrid ~skip:(fun (r : Engine.result) ->
      not (proven r))

(* Governance monotonicity: starving a run of resources may cost it the
   proof, or the package altogether — but whatever package it does
   return can never be BETTER than the unlimited run's proven optimum
   (every returned package passes the semantic oracle, so a "better"
   one would disprove the optimum). *)
let prop_gov_never_better =
  QCheck.Test.make ~count:60
    ~name:"a resource-limited run never beats the unlimited one"
    (QCheck.make
       ~print:(fun (i, nodes, cands) ->
         Printf.sprintf "%s milp_nodes=%d bf_candidates=%d" (print_inst i)
           nodes cands)
       Gen.(triple inst_gen (int_range 1 40) (int_range 1 30)))
    (fun (i, nodes, cands) ->
      let db = db_of i in
      let q = Parser.parse (query_of i) in
      let full = Engine.run ~gov:(Pb_util.Gov.unlimited ()) db q in
      let limited =
        Engine.run
          ~gov:(Pb_util.Gov.create ~milp_nodes:nodes ~bf_candidates:cands ())
          db q
      in
      if not (proven full) then true
      else if (not (feasible full)) && feasible limited then
        QCheck.Test.fail_reportf
          "limited run found a package on an infeasible query %s"
          (print_inst i)
      else
        match (i.dir, full.objective, limited.objective) with
        | Max, Some opt, Some got when got > opt +. tol ->
            QCheck.Test.fail_reportf
              "limited run beat the max optimum %g > %g on %s" got opt
              (print_inst i)
        | Min, Some opt, Some got when got < opt -. tol ->
            QCheck.Test.fail_reportf
              "limited run beat the min optimum %g < %g on %s" got opt
              (print_inst i)
        | _ -> true)

(* ---- SketchRefine oracle suite ---------------------------------------- *)

(* SketchRefine is heuristic-with-a-sound-bound, so the differential
   contract is three-fold, checked over random (instance, partition
   count) pairs against the brute-force oracle:

   1. every package it returns satisfies every constraint — validated
      through the compiled coefficients ([Coeffs.check]), not by asking
      another solver;
   2. whenever it claims a proof (Optimal / Infeasible), the claim
      agrees with the oracle;
   3. its reported bound really bounds the true optimum, so the true
      optimum always lies within the strategy's own reported gap of the
      returned objective. *)

let sr_params parts = { Pb_core.Sketch_refine.partitions = Some parts; fanout = 2; prepartition = None }

let print_sr (i, parts) = Printf.sprintf "%s partitions=%d" (print_inst i) parts

let sr_gen = Gen.pair inst_gen (Gen.int_range 1 5)

let prop_sketch_refine_valid =
  QCheck.Test.make ~count:60
    ~name:"sketch-refine packages valid (Coeffs.check); proofs agree with bf"
    (QCheck.make ~print:print_sr sr_gen)
    (fun (i, parts) ->
      let db = db_of i in
      let q = Parser.parse (query_of i) in
      let c = Pb_core.Coeffs.make db q in
      let r =
        Engine.run_coeffs
          ~gov:(Pb_util.Gov.create ~milp_nodes:500_000 ())
          ~strategy:(Engine.Sketch_refine (sr_params parts))
          db c
      in
      if List.mem_assoc "not_applicable" r.stats then true
      else begin
        (match r.package with
        | Some pkg when not (Pb_core.Coeffs.check c pkg) ->
            QCheck.Test.fail_reportf
              "sketch-refine package violates a constraint on %s"
              (print_sr (i, parts))
        | _ -> ());
        let bf = oracle i in
        if not (proven bf) then true
        else if (not (feasible bf)) && feasible r then
          QCheck.Test.fail_reportf
            "sketch-refine found a package on an infeasible query %s"
            (print_sr (i, parts))
        else
          match r.proof with
          | Engine.Infeasible when feasible bf ->
              QCheck.Test.fail_reportf
                "sketch-refine claimed Infeasible on a feasible query %s"
                (print_sr (i, parts))
          | Engine.Optimal when not (objectives_agree bf r) ->
              QCheck.Test.fail_reportf
                "sketch-refine claimed Optimal at %s but bf says %s on %s"
                (match r.objective with
                | None -> "-"
                | Some v -> string_of_float v)
                (match bf.objective with
                | None -> "-"
                | Some v -> string_of_float v)
                (print_sr (i, parts))
          | _ -> (
              (* a heuristic answer can be suboptimal but never better
                 than the proven optimum *)
              match (i.dir, bf.objective, r.objective) with
              | Max, Some opt, Some got when got > opt +. tol ->
                  QCheck.Test.fail_reportf
                    "sketch-refine beat the max optimum %g > %g on %s" got opt
                    (print_sr (i, parts))
              | Min, Some opt, Some got when got < opt -. tol ->
                  QCheck.Test.fail_reportf
                    "sketch-refine beat the min optimum %g < %g on %s" got opt
                    (print_sr (i, parts))
              | _ -> true)
      end)

(* The bound must truly bound, and the gap must truly contain: wherever
   the exact oracle ran to a proof, the true optimum is on the right
   side of [bound], hence within [gap * max(1, |objective|)] of the
   returned objective — the "within its own reported gap" guarantee. *)
let prop_sketch_refine_gap =
  QCheck.Test.make ~count:60 ~name:"sketch-refine bound and gap are sound"
    (QCheck.make ~print:print_sr sr_gen)
    (fun (i, parts) ->
      let bf = oracle i in
      if not (proven bf) then true
      else
        let db = db_of i in
        let q = Parser.parse (query_of i) in
        let c = Pb_core.Coeffs.make db q in
        let out =
          Pb_core.Sketch_refine.search ~params:(sr_params parts)
            ~pool:(Pb_par.Pool.get_default ())
            ~gov:(Pb_util.Gov.unlimited ()) c
        in
        if not out.applicable then true
        else begin
          (match out.best with
          | Some pkg when not (Pb_core.Coeffs.check c pkg) ->
              QCheck.Test.fail_reportf
                "search returned an invalid package on %s" (print_sr (i, parts))
          | _ -> ());
          if out.proven_optimal && out.best = None && feasible bf then
            QCheck.Test.fail_reportf
              "search proved infeasibility of a feasible query %s"
              (print_sr (i, parts))
          else
            match (i.dir, bf.objective, out.bound) with
            | Max, Some opt, Some b when opt > b +. tol ->
                QCheck.Test.fail_reportf
                  "bound %g below the true max optimum %g on %s" b opt
                  (print_sr (i, parts))
            | Min, Some opt, Some b when opt < b -. tol ->
                QCheck.Test.fail_reportf
                  "bound %g above the true min optimum %g on %s" b opt
                  (print_sr (i, parts))
            | _ -> (
                match (bf.objective, out.best_objective, out.gap) with
                | Some opt, Some v, Some g
                  when Float.abs (opt -. v)
                       > (g *. Float.max 1.0 (Float.abs v)) +. tol ->
                    QCheck.Test.fail_reportf
                      "true optimum %g outside reported gap %g of %g on %s"
                      opt g v (print_sr (i, parts))
                | _ -> true)
        end)

(* ---- compiled expression evaluation vs the interpreter ---------------- *)

(* Random expressions over a schema with qualified columns (so suffix and
   ambiguity resolution are exercised) evaluated against rows of random —
   deliberately ill-typed — values: the compiled closure must reproduce the
   interpreter bit for bit, including NULL propagation, Eval_error/Failure
   messages, and which exception surfaces when several subexpressions
   would raise. *)

module Compile = Pb_sql.Compile
module Sql_ast = Pb_sql.Ast
module Executor = Pb_sql.Executor

let expr_schema =
  Schema.make
    [
      { Schema.name = "r.id"; ty = Value.T_int };
      { Schema.name = "r.a"; ty = Value.T_int };
      { Schema.name = "s.a"; ty = Value.T_float };
      { Schema.name = "name"; ty = Value.T_str };
      { Schema.name = "flag"; ty = Value.T_bool };
      { Schema.name = "x"; ty = Value.T_float };
    ]

(* "id" resolves by suffix, "a" is ambiguous (r.a vs s.a), "missing" is
   unknown, "NAME" checks case-insensitivity. *)
let col_gen =
  Gen.oneofl
    [ "r.id"; "id"; "a"; "r.a"; "s.a"; "name"; "NAME"; "flag"; "x"; "missing" ]

let value_gen : Value.t Gen.t =
  let open Gen in
  frequency
    [
      (2, return Value.Null);
      (2, map (fun b -> Value.Bool b) bool);
      (4, map (fun i -> Value.Int i) (int_range (-5) 5));
      (3, map (fun f -> Value.Float f) (oneofl [ -2.5; -1.0; 0.0; 0.5; 1.0; 3.0 ]));
      (3, map (fun s -> Value.Str s) (string_size ~gen:(oneofl [ 'a'; 'b'; '%' ]) (int_range 0 3)));
    ]

let like_pattern_gen =
  Gen.string_size ~gen:(Gen.oneofl [ 'a'; 'b'; '%'; '_' ]) (Gen.int_range 0 6)

let binop_gen : Sql_ast.binop Gen.t =
  Gen.oneofl
    [
      Sql_ast.Add; Sql_ast.Sub; Sql_ast.Mul; Sql_ast.Div; Sql_ast.Eq;
      Sql_ast.Neq; Sql_ast.Lt; Sql_ast.Le; Sql_ast.Gt; Sql_ast.Ge;
      Sql_ast.And; Sql_ast.Or;
    ]

let func_name_gen =
  Gen.oneofl
    [ "abs"; "lower"; "upper"; "length"; "round"; "floor"; "ceil"; "coalesce";
      "sqrt"; "bogus" ]

let expr_gen : Sql_ast.expr Gen.t =
  let open Gen in
  sized (fun size ->
      fix
        (fun self n ->
          let leaf =
            oneof
              [
                map (fun v -> Sql_ast.Lit v) value_gen;
                map (fun c -> Sql_ast.Col c) col_gen;
              ]
          in
          if n <= 0 then leaf
          else
            let sub = self (n / 2) in
            frequency
              [
                (2, leaf);
                (1, map (fun e -> Sql_ast.Unary_minus e) sub);
                (1, map (fun e -> Sql_ast.Not e) sub);
                ( 3,
                  map3 (fun op a b -> Sql_ast.Binop (op, a, b)) binop_gen sub sub
                );
                ( 1,
                  map3
                    (fun a b c -> Sql_ast.Between (a, b, c))
                    sub sub sub );
                ( 1,
                  map3
                    (fun e items neg -> Sql_ast.In_list (e, items, neg))
                    sub
                    (list_size (int_range 0 3) sub)
                    bool );
                (1, map2 (fun e neg -> Sql_ast.Is_null (e, neg)) sub bool);
                ( 1,
                  map3
                    (fun e pat neg -> Sql_ast.Like (e, pat, neg))
                    sub like_pattern_gen bool );
                ( 1,
                  map2
                    (fun name args -> Sql_ast.Func (name, args))
                    func_name_gen
                    (list_size (int_range 0 3) sub) );
                ( 1,
                  map2
                    (fun branches default -> Sql_ast.Case (branches, default))
                    (list_size (int_range 1 2) (pair sub sub))
                    (opt sub) );
                (* aggregate outside GROUP: must raise identically *)
                (1, return (Sql_ast.Agg (Sql_ast.Sum, Some (Sql_ast.Col "x"))));
              ])
        (min size 5))

let row_gen = Gen.array_size (Gen.return 6) value_gen

let case_gen = Gen.pair expr_gen (Gen.list_size (Gen.int_range 1 4) row_gen)

let print_case (e, rows) =
  Printf.sprintf "%s over [%s]"
    (Sql_ast.expr_to_string e)
    (String.concat "; "
       (List.map
          (fun row ->
            "[|"
            ^ String.concat ","
                (Array.to_list
                   (Array.map
                      (fun v ->
                        match (v : Value.t) with
                        | Value.Null -> "NULL"
                        | Value.Str s -> Printf.sprintf "%S" s
                        | v -> Value.to_string v)
                      row))
            ^ "|]")
          rows))

let outcome f = match f () with v -> Ok v | exception e -> Error (Printexc.to_string e)

let outcome_to_string = function
  | Ok v -> "Ok " ^ Value.to_string (v : Value.t)
  | Error msg -> "Error " ^ msg

let prop_compiled_eq_interpreted =
  QCheck.Test.make ~count:500 ~name:"compiled expression == interpreter"
    (QCheck.make ~print:print_case case_gen)
    (fun (e, rows) ->
      (* no db: subquery nodes are not generated, and the fallback must
         behave exactly like the interpreter call the executor makes *)
      let fallback row e = Executor.eval_expr expr_schema row e in
      let compiled = Compile.expr ~fallback expr_schema e in
      List.for_all
        (fun row ->
          let reference = outcome (fun () -> Executor.eval_expr expr_schema row e) in
          let got = outcome (fun () -> compiled row) in
          let same =
            match (reference, got) with
            | Ok a, Ok b -> Stdlib.compare a b = 0
            | Error a, Error b -> a = b
            | _ -> false
          in
          if same then true
          else
            QCheck.Test.fail_reportf "interpreter=%s compiled=%s on %s"
              (outcome_to_string reference) (outcome_to_string got)
              (print_case (e, [ row ])))
        rows)

(* The tokenized LIKE matcher used by compiled closures vs the reference
   two-pointer matcher, over patterns dense in % and _ edge shapes. *)
let prop_like_compiled =
  QCheck.Test.make ~count:1000 ~name:"compiled LIKE == reference matcher"
    (QCheck.make
       ~print:(fun (p, s) -> Printf.sprintf "pattern=%S subject=%S" p s)
       (Gen.pair
          (Gen.string_size ~gen:(Gen.oneofl [ 'a'; 'b'; '%'; '_' ]) (Gen.int_range 0 8))
          (Gen.string_size ~gen:(Gen.oneofl [ 'a'; 'b'; 'c' ]) (Gen.int_range 0 8))))
    (fun (pattern, s) ->
      Compile.like_match_compiled (Compile.compile_like pattern) s
      = Compile.like_match ~pattern s)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_ilp; prop_sqlgen; prop_pruning; prop_local_search; prop_hybrid;
      prop_gov_never_better;
      prop_sketch_refine_valid; prop_sketch_refine_gap;
      prop_compiled_eq_interpreted; prop_like_compiled;
    ]
