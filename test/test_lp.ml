(* Tests for the LP/MILP substrate: simplex correctness on known
   instances, degenerate/infeasible/unbounded cases, branch & bound, and
   solution enumeration. *)

module Model = Pb_lp.Model
module Simplex = Pb_lp.Simplex
module Milp = Pb_lp.Milp

let check_float = Alcotest.(check (float 1e-6))

let lp_status =
  Alcotest.testable
    (fun ppf s ->
      Format.pp_print_string ppf
        (match s with
        | Simplex.Optimal -> "optimal"
        | Simplex.Infeasible -> "infeasible"
        | Simplex.Unbounded -> "unbounded"
        | Simplex.Iteration_limit -> "limit"))
    ( = )

let test_lp_basic () =
  (* max 3x+2y st x+y<=4, x+3y<=6, x<=3 -> (3,1), 11 *)
  let m = Model.create () in
  let x = Model.add_var m ~upper:3.0 "x" in
  let y = Model.add_var m "y" in
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Le 4.0;
  Model.add_constr m [ (1.0, x); (3.0, y) ] Model.Le 6.0;
  Model.set_objective m (Model.Maximize [ (3.0, x); (2.0, y) ]);
  let s = Simplex.solve m in
  Alcotest.check lp_status "status" Simplex.Optimal s.status;
  check_float "objective" 11.0 s.objective;
  check_float "x" 3.0 s.x.(x);
  check_float "y" 1.0 s.x.(y)

let test_lp_minimize () =
  (* min x+y st x+2y=4 -> (0,2), 2 *)
  let m = Model.create () in
  let x = Model.add_var m "x" in
  let y = Model.add_var m "y" in
  Model.add_constr m [ (1.0, x); (2.0, y) ] Model.Eq 4.0;
  Model.set_objective m (Model.Minimize [ (1.0, x); (1.0, y) ]);
  let s = Simplex.solve m in
  Alcotest.check lp_status "status" Simplex.Optimal s.status;
  check_float "objective" 2.0 s.objective

let test_lp_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m ~upper:2.0 "x" in
  Model.add_constr m [ (1.0, x) ] Model.Ge 5.0;
  Model.set_objective m (Model.Maximize [ (1.0, x) ]);
  Alcotest.check lp_status "status" Simplex.Infeasible (Simplex.solve m).status

let test_lp_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m "x" in
  Model.add_constr m [ (1.0, x) ] Model.Ge 1.0;
  Model.set_objective m (Model.Maximize [ (1.0, x) ]);
  Alcotest.check lp_status "status" Simplex.Unbounded (Simplex.solve m).status

let test_lp_negative_lower_bounds () =
  (* max x st -3 <= x <= -1 -> -1 *)
  let m = Model.create () in
  let x = Model.add_var m ~lower:(-3.0) ~upper:(-1.0) "x" in
  Model.set_objective m (Model.Maximize [ (1.0, x) ]);
  let s = Simplex.solve m in
  Alcotest.check lp_status "status" Simplex.Optimal s.status;
  check_float "objective" (-1.0) s.objective

let test_lp_equality_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m ~upper:1.0 "x" in
  Model.add_constr m [ (1.0, x) ] Model.Eq 3.0;
  Model.set_objective m (Model.Maximize [ (1.0, x) ]);
  Alcotest.check lp_status "status" Simplex.Infeasible (Simplex.solve m).status

let test_lp_degenerate () =
  (* Multiple constraints meeting at a vertex; should still terminate. *)
  let m = Model.create () in
  let x = Model.add_var m "x" in
  let y = Model.add_var m "y" in
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Le 1.0;
  Model.add_constr m [ (1.0, x) ] Model.Le 1.0;
  Model.add_constr m [ (1.0, y) ] Model.Le 1.0;
  Model.add_constr m [ (2.0, x); (1.0, y) ] Model.Le 2.0;
  Model.set_objective m (Model.Maximize [ (1.0, x); (1.0, y) ]);
  let s = Simplex.solve m in
  Alcotest.check lp_status "status" Simplex.Optimal s.status;
  check_float "objective" 1.0 s.objective

let test_lp_feasible_point () =
  (* The returned point always satisfies the model. *)
  let m = Model.create () in
  let x = Model.add_var m ~upper:10.0 "x" in
  let y = Model.add_var m ~upper:10.0 "y" in
  let z = Model.add_var m ~upper:10.0 "z" in
  Model.add_constr m [ (2.0, x); (1.0, y); (3.0, z) ] Model.Le 20.0;
  Model.add_constr m [ (1.0, x); (2.0, y); (1.0, z) ] Model.Ge 4.0;
  Model.add_constr m [ (1.0, x); (-1.0, y) ] Model.Eq 1.0;
  Model.set_objective m (Model.Maximize [ (5.0, x); (4.0, y); (3.0, z) ]);
  let s = Simplex.solve m in
  Alcotest.check lp_status "status" Simplex.Optimal s.status;
  Alcotest.(check bool) "feasible" true (Model.check_feasible m s.x)

let test_milp_knapsack () =
  let m = Model.create () in
  let a = Model.add_var m ~integer:true ~upper:1.0 "a" in
  let b = Model.add_var m ~integer:true ~upper:1.0 "b" in
  let c = Model.add_var m ~integer:true ~upper:1.0 "c" in
  Model.add_constr m [ (1.0, a); (1.0, b); (1.0, c) ] Model.Le 2.0;
  Model.add_constr m [ (5.0, a); (4.0, b); (1.0, c) ] Model.Le 8.0;
  Model.set_objective m (Model.Maximize [ (10.0, a); (6.0, b); (4.0, c) ]);
  (* count <= 2 and weight <= 8 exclude a+b (weight 9); optimum is a+c. *)
  let s = Milp.solve m in
  Alcotest.(check bool) "optimal" true (s.status = Milp.Optimal);
  check_float "objective" 14.0 s.objective;
  Alcotest.(check bool) "integral" true (Model.check_integral m s.x)

let test_milp_vs_enumeration () =
  (* Random small binary programs: B&B must match exhaustive search. *)
  let rng = Pb_util.Prng.create 99 in
  for _trial = 1 to 25 do
    let n = 6 in
    let m = Model.create () in
    let vars =
      Array.init n (fun i ->
          Model.add_var m ~integer:true ~upper:1.0 (Printf.sprintf "v%d" i))
    in
    let weights = Array.init n (fun _ -> float_of_int (Pb_util.Prng.int_in rng 1 9)) in
    let values = Array.init n (fun _ -> float_of_int (Pb_util.Prng.int_in rng 1 9)) in
    let budget = float_of_int (Pb_util.Prng.int_in rng 5 25) in
    Model.add_constr m
      (Array.to_list (Array.mapi (fun i v -> (weights.(i), v)) vars))
      Model.Le budget;
    Model.add_constr m
      (Array.to_list (Array.map (fun v -> (1.0, v)) vars))
      Model.Ge 1.0;
    Model.set_objective m
      (Model.Maximize (Array.to_list (Array.mapi (fun i v -> (values.(i), v)) vars)));
    let s = Milp.solve m in
    (* exhaustive reference *)
    let best = ref neg_infinity in
    for mask = 1 to (1 lsl n) - 1 do
      let w = ref 0.0 and v = ref 0.0 in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then begin
          w := !w +. weights.(i);
          v := !v +. values.(i)
        end
      done;
      if !w <= budget && !v > !best then best := !v
    done;
    if !best = neg_infinity then
      Alcotest.(check bool) "infeasible detected" true (s.status = Milp.Infeasible)
    else begin
      Alcotest.(check bool) "optimal" true (s.status = Milp.Optimal);
      check_float "matches enumeration" !best s.objective
    end
  done

let test_milp_integer_general () =
  (* Non-binary integers: max x + y, x <= 2.5, y <= 3.7, x,y int -> 5 *)
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~upper:2.5 "x" in
  let y = Model.add_var m ~integer:true ~upper:3.7 "y" in
  Model.set_objective m (Model.Maximize [ (1.0, x); (1.0, y) ]);
  let s = Milp.solve m in
  check_float "objective" 5.0 s.objective

let test_milp_fractional_lp_relaxation () =
  (* LP relaxation is fractional; MILP must branch: max x+y st
     2x+2y <= 3, binary -> 1 (LP gives 1.5). *)
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~upper:1.0 "x" in
  let y = Model.add_var m ~integer:true ~upper:1.0 "y" in
  Model.add_constr m [ (2.0, x); (2.0, y) ] Model.Le 3.0;
  Model.set_objective m (Model.Maximize [ (1.0, x); (1.0, y) ]);
  let s = Milp.solve m in
  check_float "objective" 1.0 s.objective;
  Alcotest.(check bool) "branched" true (s.nodes >= 2)

let test_milp_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~upper:1.0 "x" in
  Model.add_constr m [ (1.0, x) ] Model.Ge 2.0;
  Model.set_objective m (Model.Maximize [ (1.0, x) ]);
  Alcotest.(check bool) "infeasible" true
    ((Milp.solve m).status = Milp.Infeasible)

let test_milp_minimize () =
  (* min 3x + 2y st x + y >= 3, binary-ish ints in [0,5] -> y=3, obj 6 *)
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~upper:5.0 "x" in
  let y = Model.add_var m ~integer:true ~upper:5.0 "y" in
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Ge 3.0;
  Model.set_objective m (Model.Minimize [ (3.0, x); (2.0, y) ]);
  let s = Milp.solve m in
  check_float "objective" 6.0 s.objective

let test_milp_bounds_restored () =
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~upper:1.0 "x" in
  let y = Model.add_var m ~integer:true ~upper:1.0 "y" in
  Model.add_constr m [ (2.0, x); (2.0, y) ] Model.Le 3.0;
  Model.set_objective m (Model.Maximize [ (1.0, x); (1.0, y) ]);
  ignore (Milp.solve m);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "x bounds" (0.0, 1.0)
    (Model.bounds m x);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "y bounds" (0.0, 1.0)
    (Model.bounds m y)

let test_solve_all_descending () =
  let m = Model.create () in
  let vars =
    Array.init 4 (fun i ->
        Model.add_var m ~integer:true ~upper:1.0 (Printf.sprintf "v%d" i))
  in
  Model.add_constr m
    (Array.to_list (Array.map (fun v -> (1.0, v)) vars))
    Model.Eq 2.0;
  Model.set_objective m
    (Model.Maximize
       [ (4.0, vars.(0)); (3.0, vars.(1)); (2.0, vars.(2)); (1.0, vars.(3)) ]);
  let sols = Milp.solve_all ~max_solutions:6 m in
  Alcotest.(check int) "C(4,2)=6 solutions" 6 (List.length sols);
  let objs = List.map snd sols in
  Alcotest.(check (list (float 1e-6))) "descending objectives"
    [ 7.0; 6.0; 5.0; 5.0; 4.0; 3.0 ] objs

let test_solve_all_distinct () =
  let m = Model.create () in
  let vars =
    Array.init 3 (fun i ->
        Model.add_var m ~integer:true ~upper:1.0 (Printf.sprintf "v%d" i))
  in
  Model.add_constr m
    (Array.to_list (Array.map (fun v -> (1.0, v)) vars))
    Model.Ge 1.0;
  Model.set_objective m (Model.Maximize []);
  let sols = Milp.solve_all ~max_solutions:10 m in
  (* 2^3 - 1 = 7 non-empty subsets *)
  Alcotest.(check int) "7 solutions" 7 (List.length sols);
  let keys =
    List.map
      (fun (x, _) ->
        String.concat ""
          (Array.to_list (Array.map (fun v -> string_of_float (Float.round v)) x)))
      sols
  in
  Alcotest.(check int) "all distinct" 7 (List.length (List.sort_uniq compare keys))

let test_model_validation () =
  let m = Model.create () in
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Model.add_var x: lower 2 > upper 1") (fun () ->
      ignore (Model.add_var m ~lower:2.0 ~upper:1.0 "x"))

let test_check_feasible () =
  let m = Model.create () in
  let x = Model.add_var m ~upper:1.0 "x" in
  Model.add_constr m [ (1.0, x) ] Model.Ge 0.5;
  Alcotest.(check bool) "ok" true (Model.check_feasible m [| 0.7 |]);
  Alcotest.(check bool) "violates constr" false (Model.check_feasible m [| 0.2 |]);
  Alcotest.(check bool) "violates bound" false (Model.check_feasible m [| 1.5 |])

(* ---- governance ------------------------------------------------------- *)

module Gov = Pb_util.Gov

(* A strongly correlated knapsack (value = weight + 1, capacity at half
   the total weight): B&B needs hundreds of thousands of nodes to close
   the gap, so a cancellation fired a few hundred nodes in always lands
   long before the proof does. *)
let hard_knapsack n =
  let m = Model.create () in
  let w = Array.init n (fun i -> float_of_int (20 + ((i * 37) mod 51))) in
  let vars =
    Array.init n (fun i ->
        Model.add_var m ~integer:true ~upper:1.0 (Printf.sprintf "x%d" i))
  in
  let total = Array.fold_left ( +. ) 0.0 w in
  Model.add_constr m
    (Array.to_list (Array.mapi (fun i v -> (w.(i), v)) vars))
    Model.Le (Float.of_int (int_of_float (total /. 2.0)) +. 0.5);
  Model.set_objective m
    (Model.Maximize
       (Array.to_list (Array.mapi (fun i v -> (w.(i) +. 1.0, v)) vars)));
  m

let test_milp_cancel_mid_search () =
  let m = hard_knapsack 24 in
  let gov = Gov.create () in
  let finished = Atomic.make false in
  (* cancel from another thread once the search is demonstrably deep *)
  let canceller =
    Thread.create
      (fun () ->
        while
          (not (Atomic.get finished)) && Gov.spent gov Gov.Milp_nodes < 200
        do
          Thread.yield ()
        done;
        Gov.cancel gov)
      ()
  in
  let s = Milp.solve ~gov m in
  Atomic.set finished true;
  Thread.join canceller;
  Alcotest.(check bool) "cancelled mid-search" true (s.status = Milp.Feasible);
  Alcotest.(check bool) "kept the best incumbent" true
    (Array.length s.x = Model.num_vars m);
  Alcotest.(check bool) "incumbent is feasible" true (Model.check_feasible m s.x);
  Alcotest.(check bool) "made progress before the cancel" true (s.nodes >= 200)

let test_milp_precancelled_returns_immediately () =
  let m = hard_knapsack 24 in
  let gov = Gov.create () in
  Gov.cancel gov;
  let s = Milp.solve ~gov m in
  Alcotest.(check bool) "no proof claim" true (s.status = Milp.Feasible);
  Alcotest.(check int) "no nodes explored" 0 s.nodes

let test_milp_deadline_returns_quickly () =
  let m = hard_knapsack 24 in
  let t0 = Unix.gettimeofday () in
  let s = Milp.solve ~gov:(Gov.create ~deadline_in:0.05 ()) m in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "deadline stop" true (s.status = Milp.Feasible);
  (* the full solve takes seconds; a 50ms deadline must cut it well
     short (generous bound for slow CI) *)
  Alcotest.(check bool) "returned quickly" true (elapsed < 1.0);
  Alcotest.(check bool) "best incumbent returned" true
    (Model.check_feasible m s.x)

let suite =
  [
    Alcotest.test_case "lp basic" `Quick test_lp_basic;
    Alcotest.test_case "lp minimize + equality" `Quick test_lp_minimize;
    Alcotest.test_case "lp infeasible" `Quick test_lp_infeasible;
    Alcotest.test_case "lp unbounded" `Quick test_lp_unbounded;
    Alcotest.test_case "lp negative bounds" `Quick test_lp_negative_lower_bounds;
    Alcotest.test_case "lp equality infeasible" `Quick test_lp_equality_infeasible;
    Alcotest.test_case "lp degenerate vertex" `Quick test_lp_degenerate;
    Alcotest.test_case "lp returns feasible point" `Quick test_lp_feasible_point;
    Alcotest.test_case "milp knapsack" `Quick test_milp_knapsack;
    Alcotest.test_case "milp vs enumeration" `Quick test_milp_vs_enumeration;
    Alcotest.test_case "milp general integers" `Quick test_milp_integer_general;
    Alcotest.test_case "milp fractional relaxation" `Quick
      test_milp_fractional_lp_relaxation;
    Alcotest.test_case "milp infeasible" `Quick test_milp_infeasible;
    Alcotest.test_case "milp minimize" `Quick test_milp_minimize;
    Alcotest.test_case "milp restores bounds" `Quick test_milp_bounds_restored;
    Alcotest.test_case "solve_all descending" `Quick test_solve_all_descending;
    Alcotest.test_case "solve_all distinct" `Quick test_solve_all_distinct;
    Alcotest.test_case "model validation" `Quick test_model_validation;
    Alcotest.test_case "check_feasible" `Quick test_check_feasible;
    Alcotest.test_case "milp cancel mid-search" `Quick
      test_milp_cancel_mid_search;
    Alcotest.test_case "milp pre-cancelled token" `Quick
      test_milp_precancelled_returns_immediately;
    Alcotest.test_case "milp deadline returns quickly" `Quick
      test_milp_deadline_returns_quickly;
  ]
